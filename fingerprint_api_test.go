package wmxml

import (
	"math/rand"
	"testing"
)

// TestFingerprinterPublicAPI pins the distribution-chain surface:
// fingerprint three recipients, collude two, trace the pirate copy.
func TestFingerprinterPublicAPI(t *testing.T) {
	ds := PublicationsDataset(300, 501)
	fp, err := NewFingerprinter(FingerprintOptions{
		Key: "api-owner-key", Schema: ds.Schema, Catalog: ds.Catalog,
		Targets: ds.Targets, Gamma: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	recipients := []string{"alice", "bob", "carol"}
	copies := map[string]*Document{}
	for _, r := range recipients {
		doc := ds.Doc.Clone()
		receipt, err := fp.Fingerprint(doc, r)
		if err != nil {
			t.Fatal(err)
		}
		if receipt.Carriers == 0 {
			t.Fatalf("fingerprint %s selected no carriers", r)
		}
		copies[r] = doc
	}
	if fp.RecipientCode("alice").Equal(fp.RecipientCode("bob")) {
		t.Fatal("recipient codes collide")
	}

	// Single leaker.
	res, err := fp.Trace(copies["carol"], recipients, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Accused) != 1 || res.Accused[0] != "carol" {
		t.Fatalf("single-leak trace accused %v, want [carol]", res.Accused)
	}

	// Two colluders mix; the innocent must stay clear.
	pirate, err := NewCollusionAttack([]*Document{copies["bob"]}, "db/book", CollusionMix).
		Apply(copies["alice"].Clone(), rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	ix := NewDocumentIndex(pirate)
	pres, err := fp.TraceIndexed(pirate, recipients, nil, nil, ix)
	if err != nil {
		t.Fatal(err)
	}
	if len(pres.Accused) == 0 {
		t.Errorf("collusion trace accused nobody: %+v", pres.Accusations)
	}
	for _, id := range pres.Accused {
		if id == "carol" {
			t.Error("innocent carol accused")
		}
	}
}
