package wmxml

// Batch processing: embed and detect watermarks across corpora of
// documents with a bounded worker pool. This is the public face of
// internal/pipeline; see DESIGN.md ("Batch pipeline") and the
// `wmxml batch` command.

import (
	"context"
	"fmt"
	"io"
	"iter"

	"wmxml/internal/pipeline"
)

// PipelineOptions configures a Pipeline.
type PipelineOptions struct {
	// Workers bounds how many documents are processed concurrently.
	// 0 means GOMAXPROCS; 1 processes sequentially.
	Workers int
	// Verify re-runs detection with the freshly generated query set on
	// each successfully embedded document, reusing the per-document
	// index built for embedding. The result lands in BatchEmbed.Verify.
	Verify bool
}

// Pipeline embeds and detects watermarks across many documents
// concurrently: per-document isolation (one bad document does not abort
// the batch), input-order results for the Batch methods,
// completion-order results for the Seq streams, and context
// cancellation throughout. It is safe for concurrent use.
type Pipeline struct {
	sys *System
	eng *pipeline.Engine
}

// NewPipeline builds a batch pipeline over a configured System.
func NewPipeline(sys *System, opts PipelineOptions) *Pipeline {
	return &Pipeline{
		sys: sys,
		eng: pipeline.New(sys.cfg, pipeline.Options{Workers: opts.Workers, Verify: opts.Verify}),
	}
}

// Workers reports the effective worker bound.
func (p *Pipeline) Workers() int { return p.eng.Workers() }

// BatchEmbed is the embedding outcome of one document in a batch.
type BatchEmbed struct {
	// ID names the document: the Seq source's tag, or "#<index>" for
	// the slice-based Batch call.
	ID string
	// Index is the document's position in the batch (arrival order for
	// streams).
	Index int
	// Receipt is the embed receipt; nil when Err is set.
	Receipt *EmbedReceipt
	// Err is this document's failure: its own embed error, or
	// ErrBatchSkipped when the batch was cancelled before the document
	// started.
	Err error
	// Verify is the immediate post-embed detection when
	// PipelineOptions.Verify is set (nil otherwise, or when VerifyErr is
	// set).
	Verify *Detection
	// VerifyErr is the verification pass's own failure.
	VerifyErr error
}

// BatchDetection is the detection outcome of one document in a batch.
type BatchDetection struct {
	ID        string
	Index     int
	Detection *Detection
	Err       error
}

// DetectInput pairs a suspect document with its detection inputs for
// batch detection.
type DetectInput struct {
	// ID tags the outcome; empty IDs are filled with "#<index>" by
	// DetectBatch.
	ID  string
	Doc *Document
	// Records is this document's safeguarded query set Q; nil runs
	// blind detection.
	Records []QueryRecord
	// Rewriter translates queries for a re-organized suspect; nil when
	// the layout is unchanged. Rewriters from NewRewriter are stateless
	// and may be shared by every input.
	Rewriter Rewriter
}

// ErrBatchSkipped marks outcomes of documents that were never started
// because the batch context was cancelled first.
var ErrBatchSkipped = pipeline.ErrSkipped

// EmbedBatch embeds the watermark into every document in place and
// returns one outcome per document, in input order. The returned error
// is nil or ctx.Err(); per-document failures are in the outcomes.
func (p *Pipeline) EmbedBatch(ctx context.Context, docs []*Document) ([]BatchEmbed, error) {
	jobs := make([]pipeline.Job, len(docs))
	for i, d := range docs {
		jobs[i] = pipeline.Job{ID: fmt.Sprintf("#%d", i), Doc: d}
	}
	outs, err := p.eng.EmbedAll(ctx, jobs)
	res := make([]BatchEmbed, len(outs))
	for i, o := range outs {
		res[i] = toBatchEmbed(o)
	}
	return res, err
}

// DetectBatch runs detection on every input and returns one outcome per
// input, in input order. The returned error is nil or ctx.Err().
func (p *Pipeline) DetectBatch(ctx context.Context, inputs []DetectInput) ([]BatchDetection, error) {
	jobs := make([]pipeline.DetectJob, len(inputs))
	for i, in := range inputs {
		id := in.ID
		if id == "" {
			id = fmt.Sprintf("#%d", i)
		}
		jobs[i] = pipeline.DetectJob{
			Job:      pipeline.Job{ID: id, Doc: in.Doc},
			Records:  in.Records,
			Rewriter: in.Rewriter,
		}
	}
	outs, err := p.eng.DetectAll(ctx, jobs)
	res := make([]BatchDetection, len(outs))
	for i, o := range outs {
		res[i] = toBatchDetection(o)
	}
	return res, err
}

// DetectBatchBlind runs blind detection (no stored query sets) over a
// document slice; every document must still follow the original schema.
func (p *Pipeline) DetectBatchBlind(ctx context.Context, docs []*Document) ([]BatchDetection, error) {
	inputs := make([]DetectInput, len(docs))
	for i, d := range docs {
		inputs[i] = DetectInput{Doc: d}
	}
	return p.DetectBatch(ctx, inputs)
}

// EmbedSeq embeds a streaming corpus: documents are drawn from src as
// workers free up, and outcomes are yielded in completion order. The
// stream stops early when ctx is cancelled or the consumer breaks out
// of the range loop.
func (p *Pipeline) EmbedSeq(ctx context.Context, src iter.Seq2[string, *Document]) iter.Seq[BatchEmbed] {
	return func(yield func(BatchEmbed) bool) {
		ctx, cancel := context.WithCancel(ctx)
		defer cancel()
		in := make(chan pipeline.Job)
		go func() {
			defer close(in)
			for id, doc := range src {
				select {
				case in <- pipeline.Job{ID: id, Doc: doc}:
				case <-ctx.Done():
					return
				}
			}
		}()
		for o := range p.eng.EmbedStream(ctx, in) {
			if !yield(toBatchEmbed(o)) {
				return
			}
		}
	}
}

// DetectSeq detects over a streaming corpus of inputs, yielding
// outcomes in completion order.
func (p *Pipeline) DetectSeq(ctx context.Context, src iter.Seq[DetectInput]) iter.Seq[BatchDetection] {
	return func(yield func(BatchDetection) bool) {
		ctx, cancel := context.WithCancel(ctx)
		defer cancel()
		in := make(chan pipeline.DetectJob)
		go func() {
			defer close(in)
			for di := range src {
				j := pipeline.DetectJob{
					Job:      pipeline.Job{ID: di.ID, Doc: di.Doc},
					Records:  di.Records,
					Rewriter: di.Rewriter,
				}
				select {
				case in <- j:
				case <-ctx.Done():
					return
				}
			}
		}()
		for o := range p.eng.DetectStream(ctx, in) {
			if !yield(toBatchDetection(o)) {
				return
			}
		}
	}
}

// EmbedReader embeds a single streamed document through the pipeline's
// isolation (panics become the outcome's error; ctx cancels
// mid-document, between chunks): the document is read from r and the
// marked document — byte-identical to the in-memory path — is written
// to w incrementally, with peak memory bounded by chunk size instead
// of document size.
func (p *Pipeline) EmbedReader(ctx context.Context, id string, r io.Reader, w io.Writer, opts StreamOptions) (BatchEmbed, StreamStats) {
	out := p.eng.EmbedReader(ctx, pipeline.StreamEmbedJob{ID: id, In: r, Out: w, Options: opts.internal()})
	var stats StreamStats
	if out.Stream != nil {
		stats = *out.Stream
	}
	return toBatchEmbed(out), stats
}

// DetectReader detects over a single streamed document (blind when
// records is nil) with the same isolation and cancellation contract as
// EmbedReader.
func (p *Pipeline) DetectReader(ctx context.Context, id string, r io.Reader, records []QueryRecord, rw Rewriter, opts StreamOptions) (BatchDetection, StreamStats) {
	out := p.eng.DetectReader(ctx, pipeline.StreamDetectJob{ID: id, In: r, Records: records, Rewriter: rw, Options: opts.internal()})
	var stats StreamStats
	if out.Stream != nil {
		stats = *out.Stream
	}
	return toBatchDetection(out), stats
}

// BatchEmbedSummary aggregates a batch of embed outcomes.
type BatchEmbedSummary = pipeline.EmbedSummary

// BatchDetectSummary aggregates a batch of detect outcomes.
type BatchDetectSummary = pipeline.DetectSummary

// SummarizeEmbedBatch folds outcomes into corpus-level statistics.
func SummarizeEmbedBatch(outs []BatchEmbed) BatchEmbedSummary {
	var s BatchEmbedSummary
	for _, o := range outs {
		if o.Receipt != nil {
			s.Add(o.Err, o.Receipt.BandwidthUnits, o.Receipt.Carriers, o.Receipt.ValuesWritten)
		} else {
			s.Add(o.Err, 0, 0, 0)
		}
	}
	return s
}

// SummarizeDetectBatch folds outcomes into corpus-level statistics.
func SummarizeDetectBatch(outs []BatchDetection) BatchDetectSummary {
	var s BatchDetectSummary
	for _, o := range outs {
		if o.Detection != nil {
			s.Add(o.Err, o.Detection.Detected, o.Detection.MatchFraction, o.Detection.Coverage)
		} else {
			s.Add(o.Err, false, 0, 0)
		}
	}
	s.Finalize()
	return s
}

func toBatchEmbed(o pipeline.EmbedOutcome) BatchEmbed {
	out := BatchEmbed{ID: o.ID, Index: o.Index, Err: o.Err, VerifyErr: o.VerifyErr}
	if o.Verify != nil {
		out.Verify = toDetection(o.Verify)
	}
	if o.Result != nil {
		out.Receipt = &EmbedReceipt{
			Records:        o.Result.Records,
			BandwidthUnits: o.Result.Bandwidth.Units,
			Carriers:       o.Result.Carriers,
			ValuesWritten:  o.Result.Embedded,
		}
	}
	return out
}

func toBatchDetection(o pipeline.DetectOutcome) BatchDetection {
	out := BatchDetection{ID: o.ID, Index: o.Index, Err: o.Err}
	if o.Result != nil {
		out.Detection = toDetection(o.Result)
	}
	return out
}
