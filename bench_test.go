package wmxml

// One benchmark per experiment of EXPERIMENTS.md (E1–E8, F1): each bench
// regenerates its table, so `go test -bench=.` reproduces the full
// evaluation. Micro-benchmarks for the substrate hot paths (parse,
// query, embed, detect) follow.
//
// Experiment benches report two custom metrics where meaningful:
// match (detection bit-match fraction) and usability.

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"wmxml/internal/experiments"
	"wmxml/internal/xmltree"
	"wmxml/internal/xpath"
)

// benchParams keeps experiment benches fast enough to iterate while
// preserving the shapes (the committed EXPERIMENTS.md uses the full
// defaults via cmd/wmbench).
func benchParams() experiments.Params {
	return experiments.Params{Books: 150, Trials: 3, MarkBits: 24, Seed: 2005}
}

func benchTable(b *testing.B, run func(experiments.Params) (*experiments.Table, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		tab, err := run(benchParams())
		if err != nil {
			b.Fatal(err)
		}
		if len(tab.Rows) == 0 {
			b.Fatalf("experiment %s produced no rows", tab.ID)
		}
	}
}

func BenchmarkE1CapacityUsability(b *testing.B)  { benchTable(b, experiments.E1Capacity) }
func BenchmarkE2Alteration(b *testing.B)         { benchTable(b, experiments.E2Alteration) }
func BenchmarkE3Reduction(b *testing.B)          { benchTable(b, experiments.E3Reduction) }
func BenchmarkE4Reorganization(b *testing.B)     { benchTable(b, experiments.E4Reorganization) }
func BenchmarkE5RedundancyRemoval(b *testing.B)  { benchTable(b, experiments.E5RedundancyRemoval) }
func BenchmarkE6RewriteFidelity(b *testing.B)    { benchTable(b, experiments.E6RewriteFidelity) }
func BenchmarkE7Frontier(b *testing.B)           { benchTable(b, experiments.E7Frontier) }
func BenchmarkE8FalsePositive(b *testing.B)      { benchTable(b, experiments.E8FalsePositive) }
func BenchmarkF1ReorgInfoPreserved(b *testing.B) { benchTable(b, experiments.F1InfoPreservation) }
func BenchmarkA1ChannelComparison(b *testing.B)  { benchTable(b, experiments.A1ChannelComparison) }
func BenchmarkA2TauSweep(b *testing.B)           { benchTable(b, experiments.A2TauSweep) }
func BenchmarkA3XiBitFlip(b *testing.B)          { benchTable(b, experiments.A3XiBitFlip) }
func BenchmarkS1Scalability(b *testing.B)        { benchTable(b, experiments.S1Scalability) }
func BenchmarkC1Collusion(b *testing.B)          { benchTable(b, experiments.C1Collusion) }

// --- substrate micro-benchmarks ---

func benchDataset(b *testing.B, books int) *Dataset {
	b.Helper()
	return PublicationsDataset(books, 2005)
}

func BenchmarkParseXML(b *testing.B) {
	ds := benchDataset(b, 1000)
	src := SerializeXMLString(ds.Doc)
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ParseXMLString(src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSerializeXML(b *testing.B) {
	ds := benchDataset(b, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := SerializeXMLString(ds.Doc); len(out) == 0 {
			b.Fatal("empty serialization")
		}
	}
}

func BenchmarkXPathKeyLookup(b *testing.B) {
	ds := benchDataset(b, 1000)
	// A representative identity query: key-predicated lookup.
	title := ds.Doc.Root().ChildElements()[500].FirstChildNamed("title").Text()
	q, err := CompileQuery("/db/book[title='" + title + "']/year")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if items := q.Select(ds.Doc); len(items) != 1 {
			b.Fatalf("items = %d", len(items))
		}
	}
}

func BenchmarkXPathDescendantScan(b *testing.B) {
	ds := benchDataset(b, 1000)
	q := xpath.MustCompile("//book[year>1995]/title")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if items := q.Select(ds.Doc); len(items) == 0 {
			b.Fatal("no matches")
		}
	}
}

func BenchmarkEmbed(b *testing.B) {
	ds := benchDataset(b, 1000)
	sys, err := New(Options{
		Key: "bench-key", Mark: "bench-mark-2005", Schema: ds.Schema,
		Catalog: ds.Catalog, Targets: ds.Targets, Gamma: 10,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		doc := ds.Doc.Clone()
		b.StartTimer()
		if _, err := sys.Embed(doc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDetectWithQueries(b *testing.B) {
	ds := benchDataset(b, 1000)
	sys, err := New(Options{
		Key: "bench-key", Mark: "bench-mark-2005", Schema: ds.Schema,
		Catalog: ds.Catalog, Targets: ds.Targets, Gamma: 10,
	})
	if err != nil {
		b.Fatal(err)
	}
	doc := ds.Doc.Clone()
	receipt, err := sys.Embed(doc)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		det, err := sys.Detect(doc, receipt.Records, nil)
		if err != nil {
			b.Fatal(err)
		}
		if !det.Detected {
			b.Fatal("not detected")
		}
	}
}

func BenchmarkDetectBlind(b *testing.B) {
	ds := benchDataset(b, 1000)
	sys, err := New(Options{
		Key: "bench-key", Mark: "bench-mark-2005", Schema: ds.Schema,
		Catalog: ds.Catalog, Targets: ds.Targets, Gamma: 10,
	})
	if err != nil {
		b.Fatal(err)
	}
	doc := ds.Doc.Clone()
	if _, err := sys.Embed(doc); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		det, err := sys.DetectBlind(doc)
		if err != nil {
			b.Fatal(err)
		}
		if !det.Detected {
			b.Fatal("not detected")
		}
	}
}

func BenchmarkReorganize(b *testing.B) {
	ds := benchDataset(b, 1000)
	m := Figure1Mapping()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Reorganize(ds.Doc, m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQueryRewrite(b *testing.B) {
	rw, err := NewRewriter(Figure1Mapping())
	if err != nil {
		b.Fatal(err)
	}
	q, err := CompileQuery("/db/book[title='Readings in Database Systems']/@publisher")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rw.RewriteQuery(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUsabilityMeasure(b *testing.B) {
	ds := benchDataset(b, 500)
	meter, err := NewUsabilityMeter(ds.Doc, ds.Templates)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if sc := meter.Measure(ds.Doc, nil); sc.Usability() != 1.0 {
			b.Fatalf("usability = %.3f", sc.Usability())
		}
	}
}

func BenchmarkAlterationAttack(b *testing.B) {
	ds := benchDataset(b, 500)
	atk := NewAlterationAttack(0.3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		doc := ds.Doc.Clone()
		r := rand.New(rand.NewSource(int64(i)))
		b.StartTimer()
		if _, err := atk.Apply(doc, r); err != nil {
			b.Fatal(err)
		}
	}
}

// --- batch pipeline benchmarks ---
//
// BenchmarkPipelineEmbed and BenchmarkPipelineDetect compare worker
// counts on a multi-document corpus; on multi-core hardware the
// embedding and detection work is CPU-bound (HMAC selection per unit),
// so throughput scales near-linearly until the core count is reached.
// Run with `go test -bench 'Pipeline' -cpu 1,2,4,8` to sweep GOMAXPROCS
// alongside the worker count.

var pipelineWorkerSweep = []int{1, 2, 4, 8}

// pipelineBenchCorpus builds a corpus of distinct documents sharing one
// schema, plus the pipeline system.
func pipelineBenchCorpus(b *testing.B, docs, books int) ([]*Document, *System) {
	b.Helper()
	base := PublicationsDataset(books, 1)
	sys, err := New(Options{
		Key: "bench-key", Mark: "bench-mark-2005", Schema: base.Schema,
		Catalog: base.Catalog, Targets: base.Targets, Gamma: 10,
	})
	if err != nil {
		b.Fatal(err)
	}
	corpus := make([]*Document, docs)
	for i := range corpus {
		corpus[i] = PublicationsDataset(books, int64(i+1)).Doc
	}
	return corpus, sys
}

func BenchmarkPipelineEmbed(b *testing.B) {
	corpus, sys := pipelineBenchCorpus(b, 16, 300)
	for _, w := range pipelineWorkerSweep {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			pl := NewPipeline(sys, PipelineOptions{Workers: w})
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				batch := make([]*Document, len(corpus))
				for j, d := range corpus {
					batch[j] = d.Clone()
				}
				b.StartTimer()
				outs, err := pl.EmbedBatch(context.Background(), batch)
				if err != nil {
					b.Fatal(err)
				}
				if s := SummarizeEmbedBatch(outs); s.Succeeded != len(batch) {
					b.Fatalf("summary = %+v", s)
				}
			}
		})
	}
}

func BenchmarkPipelineDetect(b *testing.B) {
	corpus, sys := pipelineBenchCorpus(b, 16, 300)
	pl4 := NewPipeline(sys, PipelineOptions{Workers: 4})
	embeds, err := pl4.EmbedBatch(context.Background(), corpus)
	if err != nil {
		b.Fatal(err)
	}
	inputs := make([]DetectInput, len(corpus))
	for i, o := range embeds {
		if o.Err != nil {
			b.Fatal(o.Err)
		}
		inputs[i] = DetectInput{Doc: corpus[i], Records: o.Receipt.Records}
	}
	for _, w := range pipelineWorkerSweep {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			pl := NewPipeline(sys, PipelineOptions{Workers: w})
			for i := 0; i < b.N; i++ {
				outs, err := pl.DetectBatch(context.Background(), inputs)
				if err != nil {
					b.Fatal(err)
				}
				if s := SummarizeDetectBatch(outs); s.Detected != len(inputs) {
					b.Fatalf("summary = %+v", s)
				}
			}
		})
	}
}

// BenchmarkCoreConcurrency measures the per-document Concurrency option
// on one large document (single big doc, no batch parallelism).
func BenchmarkCoreConcurrency(b *testing.B) {
	ds := benchDataset(b, 3000)
	for _, conc := range pipelineWorkerSweep {
		b.Run(fmt.Sprintf("embed/concurrency=%d", conc), func(b *testing.B) {
			sys, err := New(Options{
				Key: "bench-key", Mark: "bench-mark-2005", Schema: ds.Schema,
				Catalog: ds.Catalog, Targets: ds.Targets, Gamma: 10, Concurrency: conc,
			})
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				doc := ds.Doc.Clone()
				b.StartTimer()
				if _, err := sys.Embed(doc); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkDOMClone(b *testing.B) {
	ds := benchDataset(b, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if cp := ds.Doc.Clone(); cp == nil {
			b.Fatal("nil clone")
		}
	}
}

func BenchmarkCanonicalize(b *testing.B) {
	ds := benchDataset(b, 500)
	opts := xmltree.CompareOptions{IgnoreChildOrder: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s := xmltree.Canonical(ds.Doc, opts); !strings.HasPrefix(s, "#doc") {
			b.Fatal("bad canonical form")
		}
	}
}
