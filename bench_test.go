package wmxml

// One benchmark per experiment of EXPERIMENTS.md (E1–E8, F1): each bench
// regenerates its table, so `go test -bench=.` reproduces the full
// evaluation. Micro-benchmarks for the substrate hot paths (parse,
// query, embed, detect) follow.
//
// Experiment benches report two custom metrics where meaningful:
// match (detection bit-match fraction) and usability.

import (
	"math/rand"
	"strings"
	"testing"

	"wmxml/internal/experiments"
	"wmxml/internal/xmltree"
	"wmxml/internal/xpath"
)

// benchParams keeps experiment benches fast enough to iterate while
// preserving the shapes (the committed EXPERIMENTS.md uses the full
// defaults via cmd/wmbench).
func benchParams() experiments.Params {
	return experiments.Params{Books: 150, Trials: 3, MarkBits: 24, Seed: 2005}
}

func benchTable(b *testing.B, run func(experiments.Params) (*experiments.Table, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		tab, err := run(benchParams())
		if err != nil {
			b.Fatal(err)
		}
		if len(tab.Rows) == 0 {
			b.Fatalf("experiment %s produced no rows", tab.ID)
		}
	}
}

func BenchmarkE1CapacityUsability(b *testing.B)  { benchTable(b, experiments.E1Capacity) }
func BenchmarkE2Alteration(b *testing.B)         { benchTable(b, experiments.E2Alteration) }
func BenchmarkE3Reduction(b *testing.B)          { benchTable(b, experiments.E3Reduction) }
func BenchmarkE4Reorganization(b *testing.B)     { benchTable(b, experiments.E4Reorganization) }
func BenchmarkE5RedundancyRemoval(b *testing.B)  { benchTable(b, experiments.E5RedundancyRemoval) }
func BenchmarkE6RewriteFidelity(b *testing.B)    { benchTable(b, experiments.E6RewriteFidelity) }
func BenchmarkE7Frontier(b *testing.B)           { benchTable(b, experiments.E7Frontier) }
func BenchmarkE8FalsePositive(b *testing.B)      { benchTable(b, experiments.E8FalsePositive) }
func BenchmarkF1ReorgInfoPreserved(b *testing.B) { benchTable(b, experiments.F1InfoPreservation) }
func BenchmarkA1ChannelComparison(b *testing.B)  { benchTable(b, experiments.A1ChannelComparison) }
func BenchmarkA2TauSweep(b *testing.B)           { benchTable(b, experiments.A2TauSweep) }
func BenchmarkA3XiBitFlip(b *testing.B)          { benchTable(b, experiments.A3XiBitFlip) }
func BenchmarkS1Scalability(b *testing.B)        { benchTable(b, experiments.S1Scalability) }

// --- substrate micro-benchmarks ---

func benchDataset(b *testing.B, books int) *Dataset {
	b.Helper()
	return PublicationsDataset(books, 2005)
}

func BenchmarkParseXML(b *testing.B) {
	ds := benchDataset(b, 1000)
	src := SerializeXMLString(ds.Doc)
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ParseXMLString(src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSerializeXML(b *testing.B) {
	ds := benchDataset(b, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := SerializeXMLString(ds.Doc); len(out) == 0 {
			b.Fatal("empty serialization")
		}
	}
}

func BenchmarkXPathKeyLookup(b *testing.B) {
	ds := benchDataset(b, 1000)
	// A representative identity query: key-predicated lookup.
	title := ds.Doc.Root().ChildElements()[500].FirstChildNamed("title").Text()
	q, err := CompileQuery("/db/book[title='" + title + "']/year")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if items := q.Select(ds.Doc); len(items) != 1 {
			b.Fatalf("items = %d", len(items))
		}
	}
}

func BenchmarkXPathDescendantScan(b *testing.B) {
	ds := benchDataset(b, 1000)
	q := xpath.MustCompile("//book[year>1995]/title")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if items := q.Select(ds.Doc); len(items) == 0 {
			b.Fatal("no matches")
		}
	}
}

func BenchmarkEmbed(b *testing.B) {
	ds := benchDataset(b, 1000)
	sys, err := New(Options{
		Key: "bench-key", Mark: "bench-mark-2005", Schema: ds.Schema,
		Catalog: ds.Catalog, Targets: ds.Targets, Gamma: 10,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		doc := ds.Doc.Clone()
		b.StartTimer()
		if _, err := sys.Embed(doc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDetectWithQueries(b *testing.B) {
	ds := benchDataset(b, 1000)
	sys, err := New(Options{
		Key: "bench-key", Mark: "bench-mark-2005", Schema: ds.Schema,
		Catalog: ds.Catalog, Targets: ds.Targets, Gamma: 10,
	})
	if err != nil {
		b.Fatal(err)
	}
	doc := ds.Doc.Clone()
	receipt, err := sys.Embed(doc)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		det, err := sys.Detect(doc, receipt.Records, nil)
		if err != nil {
			b.Fatal(err)
		}
		if !det.Detected {
			b.Fatal("not detected")
		}
	}
}

func BenchmarkDetectBlind(b *testing.B) {
	ds := benchDataset(b, 1000)
	sys, err := New(Options{
		Key: "bench-key", Mark: "bench-mark-2005", Schema: ds.Schema,
		Catalog: ds.Catalog, Targets: ds.Targets, Gamma: 10,
	})
	if err != nil {
		b.Fatal(err)
	}
	doc := ds.Doc.Clone()
	if _, err := sys.Embed(doc); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		det, err := sys.DetectBlind(doc)
		if err != nil {
			b.Fatal(err)
		}
		if !det.Detected {
			b.Fatal("not detected")
		}
	}
}

func BenchmarkReorganize(b *testing.B) {
	ds := benchDataset(b, 1000)
	m := Figure1Mapping()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Reorganize(ds.Doc, m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQueryRewrite(b *testing.B) {
	rw, err := NewRewriter(Figure1Mapping())
	if err != nil {
		b.Fatal(err)
	}
	q, err := CompileQuery("/db/book[title='Readings in Database Systems']/@publisher")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rw.RewriteQuery(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUsabilityMeasure(b *testing.B) {
	ds := benchDataset(b, 500)
	meter, err := NewUsabilityMeter(ds.Doc, ds.Templates)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if sc := meter.Measure(ds.Doc, nil); sc.Usability() != 1.0 {
			b.Fatalf("usability = %.3f", sc.Usability())
		}
	}
}

func BenchmarkAlterationAttack(b *testing.B) {
	ds := benchDataset(b, 500)
	atk := NewAlterationAttack(0.3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		doc := ds.Doc.Clone()
		r := rand.New(rand.NewSource(int64(i)))
		b.StartTimer()
		if _, err := atk.Apply(doc, r); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDOMClone(b *testing.B) {
	ds := benchDataset(b, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if cp := ds.Doc.Clone(); cp == nil {
			b.Fatal("nil clone")
		}
	}
}

func BenchmarkCanonicalize(b *testing.B) {
	ds := benchDataset(b, 500)
	opts := xmltree.CompareOptions{IgnoreChildOrder: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s := xmltree.Canonical(ds.Doc, opts); !strings.HasPrefix(s, "#doc") {
			b.Fatal("bad canonical form")
		}
	}
}
