// Package wmxml is a system for watermarking XML data, reproducing
// Zhou, Pang, Tan and Mangla, "WmXML: A System for Watermarking XML
// Data" (VLDB 2005).
//
// WmXML protects the copyright of XML documents by embedding an
// imperceptible, key-controlled watermark into their values. What makes
// XML hard to watermark — and what this system solves — is that an
// adversary can re-organize the document under a new schema, alter or
// delete parts of it, or normalize its internal redundancies without
// reducing its usefulness. WmXML counters those attacks with three
// ideas from the paper:
//
//   - Usability is measured by the correctness of user-supplied query
//     templates: an attack only "wins" if the watermark dies while the
//     templates still answer correctly.
//   - Watermark carriers are identified by queries built from the
//     document's keys and functional dependencies, not by position; the
//     queries can be rewritten under a schema mapping, so detection
//     survives re-organization.
//   - Values duplicated because of a functional dependency share one
//     identity — and therefore one watermark bit — so removing the
//     redundancy removes nothing.
//
// # Quick start
//
//	doc, _ := wmxml.ParseXMLString(xmlData)
//	sys, _ := wmxml.New(wmxml.Options{
//		Key:     "my-secret-key",
//		Mark:    "(C) ACME 2005",
//		Schema:  sch,                 // structure + value types
//		Catalog: cat,                 // keys and FDs
//		Targets: []string{"db/book/year", "db/book/price"},
//	})
//	receipt, _ := sys.Embed(doc)      // doc now carries the mark
//	// … safeguard receipt.Records together with the key …
//	res, _ := sys.Detect(suspectDoc, receipt.Records, nil)
//	if res.Detected { … }
//
// See the examples directory for complete programs: a quickstart, the
// paper's job-agent scenario under alteration attack, a digital library
// with image payloads under reduction, and the figure-1 re-organization
// countered by query rewriting.
//
// The implementation is structured exactly as the paper's figure 4: an
// XML query engine (internal/xmltree + internal/xpath) under an encoder
// and a decoder (internal/core), with per-type plug-in embedding
// algorithms (internal/wa) and a query rewriter for re-organized
// documents (internal/rewrite). DESIGN.md maps every subsystem and
// every reproduced experiment; EXPERIMENTS.md records the results.
package wmxml
