package wmxml

// Integration tests: full embed → attack → detect pipelines through the
// public API across all three datasets, plus property-based checks over
// random keys and marks.

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// pipelineCase is one dataset with its record scope for reduction.
type pipelineCase struct {
	name  string
	ds    *Dataset
	scope string
}

func pipelineCases() []pipelineCase {
	return []pipelineCase{
		{"publications", PublicationsDataset(250, 101), "db/book"},
		{"jobs", JobsDataset(250, 102), "jobs/job"},
		{"library", LibraryDataset(250, 103), "library/item"},
		{"nested", NestedDataset(250, 104), "catalog/publisher/book"},
	}
}

func TestIntegrationAllDatasetsAllAttacks(t *testing.T) {
	for _, pc := range pipelineCases() {
		pc := pc
		t.Run(pc.name, func(t *testing.T) {
			sys, err := New(Options{
				Key:      "integration-" + pc.name,
				MarkBits: RandomMark("int-"+pc.name, 48),
				Schema:   pc.ds.Schema,
				Catalog:  pc.ds.Catalog,
				Targets:  pc.ds.Targets,
				Gamma:    2,
			})
			if err != nil {
				t.Fatal(err)
			}
			marked := pc.ds.Doc.Clone()
			receipt, err := sys.Embed(marked)
			if err != nil {
				t.Fatal(err)
			}
			meter, err := NewUsabilityMeter(pc.ds.Doc, pc.ds.Templates)
			if err != nil {
				t.Fatal(err)
			}
			if u := meter.Measure(marked, nil).Usability(); u < 0.97 {
				t.Fatalf("embedding degraded usability to %.3f", u)
			}

			attacks := []struct {
				name       string
				attack     Attack
				mustDetect bool
			}{
				{"none", nil, true},
				{"alteration-15", NewAlterationAttack(0.15), true},
				{"reduction-60", NewReductionAttack(pc.scope, 0.6), true},
				{"reorder", NewReorderAttack(), true},
				{"alteration-90", NewAlterationAttack(0.9), false},
			}
			if len(pc.ds.Catalog.FDs) > 0 {
				attacks = append(attacks, struct {
					name       string
					attack     Attack
					mustDetect bool
				}{"redundancy", NewRedundancyRemovalAttack(pc.ds.Catalog.FDs), true})
			}
			for _, ac := range attacks {
				t.Run(ac.name, func(t *testing.T) {
					doc := marked.Clone()
					if ac.attack != nil {
						r := rand.New(rand.NewSource(777))
						var err error
						doc, err = ac.attack.Apply(doc, r)
						if err != nil {
							t.Fatal(err)
						}
					}
					det, err := sys.Detect(doc, receipt.Records, nil)
					if err != nil {
						t.Fatal(err)
					}
					if det.Detected != ac.mustDetect {
						t.Errorf("detected=%v want %v (match %.3f coverage %.3f)",
							det.Detected, ac.mustDetect, det.MatchFraction, det.Coverage)
					}
					if !ac.mustDetect {
						// When the mark dies, the data must be dead too
						// (claim ii). Usability under 90% alteration:
						u := meter.Measure(doc, nil).Usability()
						if u > 0.3 {
							t.Errorf("watermark destroyed but usability %.3f survives", u)
						}
					}
				})
			}
		})
	}
}

func TestIntegrationReorganizationAcrossAPI(t *testing.T) {
	ds := PublicationsDataset(300, 202)
	sys, err := New(Options{
		Key: "reorg-int", Mark: "reorg-int-mark", Schema: ds.Schema,
		Catalog: ds.Catalog, Targets: ds.Targets, Gamma: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	marked := ds.Doc.Clone()
	receipt, err := sys.Embed(marked)
	if err != nil {
		t.Fatal(err)
	}
	m := PublicationsMapping()
	// Serialize the mapping through JSON (as a user storing it would).
	data, err := ExportMapping(m)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := LoadMapping(data)
	if err != nil {
		t.Fatal(err)
	}
	reorg, err := Reorganize(marked, m2)
	if err != nil {
		t.Fatal(err)
	}
	rw, err := NewRewriter(m2)
	if err != nil {
		t.Fatal(err)
	}
	det, err := sys.Detect(reorg, receipt.Records, rw)
	if err != nil {
		t.Fatal(err)
	}
	if !det.Detected || det.MatchFraction != 1.0 {
		t.Errorf("detection through JSON-round-tripped mapping: %+v", det)
	}
}

func TestIntegrationSpecDrivesSystem(t *testing.T) {
	// Export a dataset as a spec, reload it, and run the whole pipeline
	// from the reloaded definition.
	ds := JobsDataset(200, 203)
	data, err := ExportSpec(ds.Name, ds.Schema, ds.Catalog, ds.Targets, ds.Templates)
	if err != nil {
		t.Fatal(err)
	}
	parts, err := LoadSpec(data)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := New(Options{
		Key: "spec-int", Mark: "spec-mark", Schema: parts.Schema,
		Catalog: parts.Catalog, Targets: parts.Targets, Gamma: 2,
		ValidateInput: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	doc := ds.Doc.Clone()
	receipt, err := sys.Embed(doc)
	if err != nil {
		t.Fatal(err)
	}
	det, err := sys.Detect(doc, receipt.Records, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !det.Detected {
		t.Errorf("spec-driven pipeline failed: %+v", det)
	}
}

func TestQuickRandomKeysAndMarks(t *testing.T) {
	// Property: for arbitrary keys and marks, embedding then detecting on
	// the same document succeeds, and detecting with a different key does
	// not reach the threshold.
	ds := PublicationsDataset(200, 204)
	f := func(keySeed, markSeed uint32) bool {
		key := fmt.Sprintf("k-%08x", keySeed)
		sys, err := New(Options{
			Key: key, MarkBits: RandomMark(fmt.Sprintf("m-%08x", markSeed), 32),
			Schema: ds.Schema, Catalog: ds.Catalog, Targets: ds.Targets, Gamma: 2,
		})
		if err != nil {
			return false
		}
		doc := ds.Doc.Clone()
		receipt, err := sys.Embed(doc)
		if err != nil {
			return false
		}
		det, err := sys.Detect(doc, receipt.Records, nil)
		if err != nil || !det.Detected || det.MatchFraction != 1.0 {
			return false
		}
		other, err := New(Options{
			Key: key + "-other", MarkBits: RandomMark(fmt.Sprintf("m-%08x", markSeed), 32),
			Schema: ds.Schema, Catalog: ds.Catalog, Targets: ds.Targets, Gamma: 2,
		})
		if err != nil {
			return false
		}
		wrong, err := other.Detect(doc, receipt.Records, nil)
		if err != nil {
			return false
		}
		return !wrong.Detected
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Errorf("random key/mark property failed: %v", err)
	}
}

func TestQuickSerializeDetect(t *testing.T) {
	// Property: detection commutes with XML serialization.
	ds := JobsDataset(120, 205)
	sys, err := New(Options{
		Key: "ser-prop", Mark: "ser-prop-mark", Schema: ds.Schema,
		Catalog: ds.Catalog, Targets: ds.Targets, Gamma: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	doc := ds.Doc.Clone()
	receipt, err := sys.Embed(doc)
	if err != nil {
		t.Fatal(err)
	}
	f := func(pad uint8) bool {
		// Serialize with varying indentation-triggering content.
		xml := SerializeXMLString(doc)
		doc2, err := ParseXMLString(xml)
		if err != nil {
			return false
		}
		det, err := sys.Detect(doc2, receipt.Records, nil)
		return err == nil && det.Detected && det.MatchFraction == 1.0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5}); err != nil {
		t.Errorf("serialize-detect property failed: %v", err)
	}
}

func TestIntegrationChainAttackWithRewriter(t *testing.T) {
	// The hardest composite: alter, reduce, reorder AND reorganize; the
	// rewriter plus majority voting still find the mark.
	ds := PublicationsDataset(500, 206)
	sys, err := New(Options{
		Key: "chain-int", MarkBits: RandomMark("chain-mark", 48),
		Schema: ds.Schema, Catalog: ds.Catalog, Targets: ds.Targets, Gamma: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	marked := ds.Doc.Clone()
	receipt, err := sys.Embed(marked)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(999))
	doc, err := NewAlterationAttack(0.1).Apply(marked, r)
	if err != nil {
		t.Fatal(err)
	}
	doc, err = NewReductionAttack("db/book", 0.7).Apply(doc, r)
	if err != nil {
		t.Fatal(err)
	}
	doc, err = NewReorderAttack().Apply(doc, r)
	if err != nil {
		t.Fatal(err)
	}
	m := PublicationsMapping()
	doc, err = NewReorganizationAttack(m).Apply(doc, r)
	if err != nil {
		t.Fatal(err)
	}
	rw, err := NewRewriter(m)
	if err != nil {
		t.Fatal(err)
	}
	det, err := sys.Detect(doc, receipt.Records, rw)
	if err != nil {
		t.Fatal(err)
	}
	if !det.Detected {
		t.Errorf("composite attack defeated detection: match=%.3f coverage=%.3f",
			det.MatchFraction, det.Coverage)
	}
}
