package wmxml

// Benchmarks for the PR-2 index layer. BenchmarkDetect10k is the
// acceptance benchmark: indexed vs unindexed DetectWithQueries on a
// 10k-record document (the indexed path must be >= 5x faster; measured
// results live in README.md and BENCH_PR2.json).

import (
	"fmt"
	"testing"

	"wmxml/internal/index"
)

// detectBenchSetup embeds a mark into a books-sized document and returns
// the system pair (indexed / unindexed), the marked document and Q.
func detectBenchSetup(b *testing.B, books int) (fast, slow *System, doc *Document, records []QueryRecord) {
	b.Helper()
	ds := PublicationsDataset(books, 2005)
	mk := func(disable bool) *System {
		sys, err := New(Options{
			Key: "bench-key", Mark: "bench-mark-2005", Schema: ds.Schema,
			Catalog: ds.Catalog, Targets: ds.Targets, Gamma: 10, DisableIndex: disable,
		})
		if err != nil {
			b.Fatal(err)
		}
		return sys
	}
	fast, slow = mk(false), mk(true)
	doc = ds.Doc.Clone()
	receipt, err := fast.Embed(doc)
	if err != nil {
		b.Fatal(err)
	}
	return fast, slow, doc, receipt.Records
}

func benchDetect(b *testing.B, sys *System, doc *Document, records []QueryRecord) {
	b.Helper()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		det, err := sys.Detect(doc, records, nil)
		if err != nil {
			b.Fatal(err)
		}
		if !det.Detected {
			b.Fatal("not detected")
		}
	}
}

// BenchmarkDetect10k compares detection cost on a 10k-record document:
// "indexed" resolves each identity query through the document index,
// "unindexed" walks the DOM from the root for each query.
func BenchmarkDetect10k(b *testing.B) {
	fast, slow, doc, records := detectBenchSetup(b, 10000)
	b.Run("indexed", func(b *testing.B) { benchDetect(b, fast, doc, records) })
	b.Run("unindexed", func(b *testing.B) { benchDetect(b, slow, doc, records) })
}

// BenchmarkDetectScaling shows how the two paths diverge with document
// size (the unindexed path is quadratic in records, the indexed one
// near-linear).
func BenchmarkDetectScaling(b *testing.B) {
	for _, books := range []int{1000, 4000, 10000} {
		fast, slow, doc, records := detectBenchSetup(b, books)
		b.Run(fmt.Sprintf("indexed/books=%d", books), func(b *testing.B) { benchDetect(b, fast, doc, records) })
		b.Run(fmt.Sprintf("unindexed/books=%d", books), func(b *testing.B) { benchDetect(b, slow, doc, records) })
	}
}

// BenchmarkIndexBuild10k isolates the one-time indexing pass the fast
// path pays per document.
func BenchmarkIndexBuild10k(b *testing.B) {
	ds := PublicationsDataset(10000, 2005)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix := index.New(ds.Doc)
		if ix.Stats().Elements == 0 {
			b.Fatal("empty index")
		}
	}
}

// BenchmarkIndexedKeyLookup is BenchmarkXPathKeyLookup through the
// index: one identity query against a 1000-record document.
func BenchmarkIndexedKeyLookup(b *testing.B) {
	ds := PublicationsDataset(1000, 2005)
	title := ds.Doc.Root().ChildElements()[500].FirstChildNamed("title").Text()
	q, err := CompileQuery("/db/book[title='" + title + "']/year")
	if err != nil {
		b.Fatal(err)
	}
	ix := NewDocumentIndex(ds.Doc)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if items := q.SelectIndexed(ds.Doc, ix); len(items) != 1 {
			b.Fatalf("items = %d", len(items))
		}
	}
}

// BenchmarkEmbed10k measures the encoder side with and without the
// index (enumeration is index-accelerated; value writing dominates).
func BenchmarkEmbed10k(b *testing.B) {
	ds := PublicationsDataset(10000, 2005)
	for _, disable := range []bool{false, true} {
		name := "indexed"
		if disable {
			name = "unindexed"
		}
		sys, err := New(Options{
			Key: "bench-key", Mark: "bench-mark-2005", Schema: ds.Schema,
			Catalog: ds.Catalog, Targets: ds.Targets, Gamma: 10, DisableIndex: disable,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				doc := ds.Doc.Clone()
				b.StartTimer()
				if _, err := sys.Embed(doc); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
