package wmxml

import (
	"math/rand"
	"strconv"
	"strings"
	"testing"
)

// TestXiByTargetShallowDepth shows the per-target embedding depth doing
// its job: the library's rating field (values like "3.7") is far too
// small for the default xi=4 but carries bits imperceptibly at xi=1.
func TestXiByTargetShallowDepth(t *testing.T) {
	ds := LibraryDataset(300, 55)
	targets := []string{"library/item/rating", "library/item/thumb"}
	sys, err := New(Options{
		Key:      "xi-key",
		MarkBits: RandomMark("xi-mark", 32),
		Schema:   ds.Schema,
		Catalog:  ds.Catalog,
		Targets:  targets,
		Gamma:    2,
		// rating is stored as d.d -> scaled tenths; one low bit changes
		// the value by at most 0.1 (2.5% of a 4.0 rating).
		XiByTarget: map[string]int{"library/item/rating": 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	doc := ds.Doc.Clone()
	receipt, err := sys.Embed(doc)
	if err != nil {
		t.Fatal(err)
	}
	// Every rating moved by at most one tenth.
	orig := ds.Doc.Root().ChildElementsNamed("item")
	marked := doc.Root().ChildElementsNamed("item")
	changed := 0
	for i := range orig {
		ov := parseTenths(t, orig[i].FirstChildNamed("rating").Text())
		mv := parseTenths(t, marked[i].FirstChildNamed("rating").Text())
		d := ov - mv
		if d < -1 || d > 1 {
			t.Errorf("rating moved by %d tenths: %s -> %s", d,
				orig[i].FirstChildNamed("rating").Text(), marked[i].FirstChildNamed("rating").Text())
		}
		if d != 0 {
			changed++
		}
	}
	if changed == 0 {
		t.Errorf("no rating carried a bit")
	}
	// Detection round-trips with the same override.
	det, err := sys.Detect(doc, receipt.Records, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !det.Detected || det.MatchFraction != 1.0 {
		t.Errorf("detection with per-target xi: %+v", det)
	}
	// A decoder without the override misreads the rating carriers.
	plain, err := New(Options{
		Key: "xi-key", MarkBits: RandomMark("xi-mark", 32),
		Schema: ds.Schema, Catalog: ds.Catalog, Targets: targets, Gamma: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	mis, err := plain.Detect(doc, receipt.Records, nil)
	if err != nil {
		t.Fatal(err)
	}
	if mis.MatchFraction >= det.MatchFraction {
		t.Errorf("xi override had no effect on decoding: %.3f vs %.3f",
			mis.MatchFraction, det.MatchFraction)
	}
}

func parseTenths(t *testing.T, s string) int {
	t.Helper()
	parts := strings.SplitN(s, ".", 2)
	if len(parts) != 2 || len(parts[1]) != 1 {
		t.Fatalf("rating shape %q", s)
	}
	whole, err := strconv.Atoi(parts[0])
	if err != nil {
		t.Fatal(err)
	}
	frac, err := strconv.Atoi(parts[1])
	if err != nil {
		t.Fatal(err)
	}
	return whole*10 + frac
}

func TestStructureChannelFacade(t *testing.T) {
	ds := PublicationsDataset(300, 66)
	opts := StructureOptions{
		Key:     "struct-facade-key",
		Mark:    RandomMark("struct-facade", 24),
		Scope:   "db/book",
		KeyPath: "title",
		Child:   "author",
	}
	doc := ds.Doc.Clone()
	carriers, err := StructureEmbed(doc, opts)
	if err != nil {
		t.Fatal(err)
	}
	if carriers == 0 {
		t.Fatalf("no structural carriers")
	}
	ok, match, err := StructureDetect(doc, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !ok || match != 1.0 {
		t.Errorf("structure self-detect: %v %.3f", ok, match)
	}
	// Values untouched: the usability meter sees a perfect document.
	meter, err := NewUsabilityMeter(ds.Doc, ds.Templates)
	if err != nil {
		t.Fatal(err)
	}
	if u := meter.Measure(doc, nil).Usability(); u != 1.0 {
		t.Errorf("structural embedding cost usability: %.3f", u)
	}
	// Reorder erases it.
	shuffled, err := NewReorderAttack().Apply(doc, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	ok, _, err = StructureDetect(shuffled, opts)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Errorf("structural mark survived reorder")
	}
}
