package wmxml

// Public-surface coverage of the streaming API: System.EmbedStream /
// DetectStream (now record-chunked) stay byte- and verdict-identical
// to the tree-based methods, and the Pipeline reader jobs expose the
// same behavior with isolation.

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

func streamTestSystem(t *testing.T) (*System, []byte) {
	t.Helper()
	ds := PublicationsDataset(120, 7)
	sys, err := New(Options{
		Key: "api-stream-key", Mark: "(C) api", Gamma: 2,
		Schema: ds.Schema, Catalog: ds.Catalog, Targets: ds.Targets,
	})
	if err != nil {
		t.Fatal(err)
	}
	var src bytes.Buffer
	if err := SerializeXML(&src, ds.Doc); err != nil {
		t.Fatal(err)
	}
	return sys, src.Bytes()
}

func TestEmbedStreamMatchesEmbed(t *testing.T) {
	sys, src := streamTestSystem(t)

	doc, err := ParseXML(bytes.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	wantReceipt, err := sys.Embed(doc)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := SerializeXML(&want, doc); err != nil {
		t.Fatal(err)
	}

	var got bytes.Buffer
	gotReceipt, stats, err := sys.EmbedStreamContext(context.Background(), bytes.NewReader(src), &got, StreamOptions{ChunkSize: 9, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Streamed {
		t.Fatalf("fell back: %s", stats.FallbackReason)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatal("EmbedStream output differs from Embed+SerializeXML")
	}
	gotQ, _ := MarshalReceipt(gotReceipt.Records)
	wantQ, _ := MarshalReceipt(wantReceipt.Records)
	if !bytes.Equal(gotQ, wantQ) {
		t.Fatal("EmbedStream receipt differs from Embed receipt")
	}

	// Verdict parity across the three detection surfaces.
	det, err := sys.DetectStream(bytes.NewReader(got.Bytes()), gotReceipt.Records, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !det.Detected {
		t.Fatalf("DetectStream missed: %+v", det)
	}
	blind, stats2, err := sys.DetectBlindStreamContext(context.Background(), bytes.NewReader(got.Bytes()), StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !blind.Detected || !stats2.Streamed {
		t.Fatalf("blind stream detect: %+v / %+v", blind, stats2)
	}
}

func TestPipelineReaderJobs(t *testing.T) {
	sys, src := streamTestSystem(t)
	p := NewPipeline(sys, PipelineOptions{Workers: 2})

	var marked bytes.Buffer
	out, stats := p.EmbedReader(context.Background(), "huge-1", bytes.NewReader(src), &marked, StreamOptions{ChunkSize: 16})
	if out.Err != nil {
		t.Fatal(out.Err)
	}
	if out.ID != "huge-1" || out.Receipt == nil || out.Receipt.Carriers == 0 {
		t.Fatalf("outcome: %+v", out)
	}
	if !stats.Streamed || stats.Records != 120 {
		t.Fatalf("stats: %+v", stats)
	}

	det, _ := p.DetectReader(context.Background(), "huge-1", bytes.NewReader(marked.Bytes()), out.Receipt.Records, nil, StreamOptions{})
	if det.Err != nil || !det.Detection.Detected {
		t.Fatalf("detect reader: %+v", det)
	}
	blind, _ := p.DetectReader(context.Background(), "huge-1", bytes.NewReader(marked.Bytes()), nil, nil, StreamOptions{})
	if blind.Err != nil || !blind.Detection.Detected {
		t.Fatalf("blind detect reader: %+v", blind)
	}

	// Malformed input surfaces as the job's error, not a panic or a
	// batch failure.
	bad, _ := p.DetectReader(context.Background(), "bad", strings.NewReader("<db><book>"), nil, nil, StreamOptions{})
	if bad.Err == nil {
		t.Fatal("malformed stream job succeeded")
	}
}
