package pipeline

// Mid-batch cancellation coverage: workers drain their in-flight
// documents, the partial outcome set is internally consistent, and no
// goroutine outlives the call.

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"wmxml/internal/datagen"
)

// goroutineBaseline snapshots the goroutine count and returns a
// checker that fails the test if the count has not returned to the
// baseline within two seconds — a goleak-style leak assertion with no
// external dependency.
func goroutineBaseline(t *testing.T) func() {
	t.Helper()
	before := runtime.NumGoroutine()
	return func() {
		t.Helper()
		deadline := time.Now().Add(2 * time.Second)
		for {
			if n := runtime.NumGoroutine(); n <= before {
				return
			}
			if time.Now().After(deadline) {
				buf := make([]byte, 1<<20)
				n := runtime.Stack(buf, true)
				t.Fatalf("goroutine leak: %d before, %d after; stacks:\n%s",
					before, runtime.NumGoroutine(), buf[:n])
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
}

// checkPartialEmbedOutcomes asserts the invariants every outcome set
// must satisfy after a cancelled batch: one outcome per job, correct
// identity, and exactly one of (receipt, error) per outcome, with
// skipped documents carrying ErrSkipped and no receipt.
func checkPartialEmbedOutcomes(t *testing.T, jobs []Job, outs []EmbedOutcome) (done, skipped int) {
	t.Helper()
	if len(outs) != len(jobs) {
		t.Fatalf("outcomes = %d, want %d", len(outs), len(jobs))
	}
	for i, o := range outs {
		if o.Index != i || o.ID != jobs[i].ID {
			t.Errorf("outcome %d misattributed: ID=%s Index=%d", i, o.ID, o.Index)
		}
		switch {
		case errors.Is(o.Err, ErrSkipped):
			skipped++
			if o.Result != nil {
				t.Errorf("doc %s: skipped but has a result", o.ID)
			}
		case o.Err != nil:
			t.Errorf("doc %s: unexpected error %v", o.ID, o.Err)
		default:
			done++
			if o.Result == nil || len(o.Result.Records) == 0 {
				t.Errorf("doc %s: success without receipt", o.ID)
			}
		}
	}
	return done, skipped
}

// TestEmbedAllCancelMidBatch cancels a large batch shortly after it
// starts: the call returns ctx.Err(), in-flight documents finish
// cleanly, unfed documents report ErrSkipped, the summary classifies
// every document, and the worker pool leaves no goroutines behind.
func TestEmbedAllCancelMidBatch(t *testing.T) {
	leakCheck := goroutineBaseline(t)
	// 256 documents of 200 records each take far longer than the cancel
	// delay, so cancellation lands mid-batch with a wide margin.
	jobs, cfg := corpus(t, 256, 200)
	eng := New(cfg, Options{Workers: 2})

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	outs, err := eng.EmbedAll(ctx, jobs)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	leakCheck()

	done, skipped := checkPartialEmbedOutcomes(t, jobs, outs)
	if skipped == 0 {
		t.Fatalf("cancellation skipped nothing (done=%d): batch completed before cancel", done)
	}
	t.Logf("cancelled mid-batch: %d done, %d skipped of %d", done, skipped, len(jobs))

	// The summary must classify every document, consistently with the
	// outcome partition.
	sum := SummarizeEmbed(outs)
	if sum.Docs != len(jobs) || sum.Succeeded+sum.Failed+sum.Skipped != sum.Docs {
		t.Fatalf("summary inconsistent: %+v", sum)
	}
	if sum.Succeeded != done || sum.Skipped != skipped {
		t.Fatalf("summary disagrees with outcomes: %+v vs done=%d skipped=%d", sum, done, skipped)
	}
}

// TestDetectAllCancelMidBatch is the detection-side twin.
func TestDetectAllCancelMidBatch(t *testing.T) {
	leakCheck := goroutineBaseline(t)
	jobs, cfg := corpus(t, 256, 200)
	// Blind detection jobs (no stored queries): enumeration per doc is
	// as heavy as embedding, so the cancel lands mid-batch.
	djobs := make([]DetectJob, len(jobs))
	for i, j := range jobs {
		djobs[i] = DetectJob{Job: j}
	}
	eng := New(cfg, Options{Workers: 2})
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	outs, err := eng.DetectAll(ctx, djobs)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	leakCheck()

	var done, skipped int
	for i, o := range outs {
		if o.Index != i || o.ID != djobs[i].ID {
			t.Errorf("outcome %d misattributed: ID=%s Index=%d", i, o.ID, o.Index)
		}
		switch {
		case errors.Is(o.Err, ErrSkipped):
			skipped++
			if o.Result != nil {
				t.Errorf("doc %s: skipped but has a result", o.ID)
			}
		case o.Err != nil:
			t.Errorf("doc %s: unexpected error %v", o.ID, o.Err)
		default:
			done++
			if o.Result == nil {
				t.Errorf("doc %s: success without result", o.ID)
			}
		}
	}
	if skipped == 0 {
		t.Fatalf("cancellation skipped nothing (done=%d)", done)
	}
	sum := SummarizeDetect(outs)
	if sum.Docs != len(djobs) || sum.Succeeded+sum.Failed+sum.Skipped != sum.Docs {
		t.Fatalf("summary inconsistent: %+v", sum)
	}
	if sum.Succeeded != done || sum.Skipped != skipped {
		t.Fatalf("summary disagrees with outcomes: %+v vs done=%d skipped=%d", sum, done, skipped)
	}
}

// TestEmbedStreamCancelDrains cancels a stream fed from an endless
// generator: the outcome channel must close promptly, consumed
// outcomes must all be complete (a started document is never reported
// half-done), and every pipeline goroutine must exit.
func TestEmbedStreamCancelDrains(t *testing.T) {
	leakCheck := goroutineBaseline(t)
	_, cfg := corpus(t, 1, 40)
	eng := New(cfg, Options{Workers: 4})

	ctx, cancel := context.WithCancel(context.Background())
	in := make(chan Job)
	feederDone := make(chan struct{})
	go func() {
		// Endless feed: only cancellation can stop the stream.
		defer close(feederDone)
		for i := 0; ; i++ {
			ds := datagen.Publications(datagen.PubConfig{Books: 40, Seed: int64(i + 1)})
			select {
			case in <- Job{ID: fmt.Sprintf("doc-%03d", i), Doc: ds.Doc}:
			case <-ctx.Done():
				return
			}
		}
	}()

	out := eng.EmbedStream(ctx, in)
	var got []EmbedOutcome
	for o := range out {
		got = append(got, o)
		if len(got) == 5 {
			cancel()
		}
	}
	// The loop exiting proves the channel closed after cancel. Every
	// outcome delivered before the cancel is a finished document; a job
	// a worker picked up after the cancel may surface as ErrSkipped,
	// but never half-done (result and skip error together).
	if len(got) < 5 {
		t.Fatalf("stream closed after %d outcomes, before the cancel trigger", len(got))
	}
	for i, o := range got {
		skippedOK := i >= 5 && errors.Is(o.Err, ErrSkipped) && o.Result == nil
		completeOK := o.Err == nil && o.Result != nil
		if !skippedOK && !completeOK {
			t.Errorf("outcome %d (doc %s): err=%v result=%v — neither complete nor cleanly skipped",
				i, o.ID, o.Err, o.Result != nil)
		}
	}
	<-feederDone
	cancel()
	leakCheck()
}
