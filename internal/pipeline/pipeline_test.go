package pipeline

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"wmxml/internal/core"
	"wmxml/internal/datagen"
	"wmxml/internal/identity"
	"wmxml/internal/wmark"
	"wmxml/internal/xmltree"
	"wmxml/internal/xpath"
)

// corpus builds n publication documents of one schema with distinct
// content (different seeds), plus the shared core config.
func corpus(t testing.TB, n, books int) ([]Job, core.Config) {
	t.Helper()
	base := datagen.Publications(datagen.PubConfig{Books: books, Seed: 1})
	cfg := core.Config{
		Key:      []byte("pipeline-key"),
		Mark:     wmark.Random("pipeline-mark", 24),
		Gamma:    2,
		Schema:   base.Schema,
		Catalog:  base.Catalog,
		Identity: identity.Options{Targets: base.Targets},
	}
	jobs := make([]Job, n)
	for i := range jobs {
		ds := datagen.Publications(datagen.PubConfig{Books: books, Seed: int64(i + 1)})
		jobs[i] = Job{ID: fmt.Sprintf("doc-%03d", i), Doc: ds.Doc}
	}
	return jobs, cfg
}

func cloneJobs(jobs []Job) []Job {
	out := make([]Job, len(jobs))
	for i, j := range jobs {
		out[i] = Job{ID: j.ID, Doc: j.Doc.Clone()}
	}
	return out
}

// TestEmbedAllMatchesSequential: the pooled engine must produce, for
// every document, exactly the marked tree and query set a standalone
// core.Embed produces.
func TestEmbedAllMatchesSequential(t *testing.T) {
	jobs, cfg := corpus(t, 12, 60)
	seq := cloneJobs(jobs)
	wantXML := make([]string, len(seq))
	wantRecs := make([][]core.QueryRecord, len(seq))
	for i, j := range seq {
		res, err := core.Embed(j.Doc, cfg)
		if err != nil {
			t.Fatal(err)
		}
		wantXML[i] = xmltree.SerializeString(j.Doc)
		wantRecs[i] = res.Records
	}

	eng := New(cfg, Options{Workers: 8})
	outs, err := eng.EmbedAll(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != len(jobs) {
		t.Fatalf("outcomes = %d, want %d", len(outs), len(jobs))
	}
	for i, o := range outs {
		if o.Err != nil {
			t.Fatalf("doc %s: %v", o.ID, o.Err)
		}
		if o.Index != i || o.ID != jobs[i].ID {
			t.Errorf("outcome %d misordered: ID=%s Index=%d", i, o.ID, o.Index)
		}
		if got := xmltree.SerializeString(jobs[i].Doc); got != wantXML[i] {
			t.Errorf("doc %s: marked tree differs from sequential embed", o.ID)
		}
		if !reflect.DeepEqual(o.Result.Records, wantRecs[i]) {
			t.Errorf("doc %s: query set differs from sequential embed", o.ID)
		}
	}
	sum := SummarizeEmbed(outs)
	if sum.Succeeded != len(jobs) || sum.Failed != 0 || sum.Skipped != 0 {
		t.Errorf("summary = %+v", sum)
	}
	if sum.Carriers == 0 || sum.ValuesWritten == 0 {
		t.Errorf("summary has empty capacity: %+v", sum)
	}
}

// TestDetectAllBothModes runs query-based and blind detection through
// the pool and checks every document detects with a perfect match.
func TestDetectAllBothModes(t *testing.T) {
	jobs, cfg := corpus(t, 10, 60)
	eng := New(cfg, Options{Workers: 6})
	embeds, err := eng.EmbedAll(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}

	withQ := make([]DetectJob, len(jobs))
	blind := make([]DetectJob, len(jobs))
	for i, j := range jobs {
		withQ[i] = DetectJob{Job: j, Records: embeds[i].Result.Records}
		blind[i] = DetectJob{Job: j}
	}
	for name, batch := range map[string][]DetectJob{"queries": withQ, "blind": blind} {
		outs, err := eng.DetectAll(context.Background(), batch)
		if err != nil {
			t.Fatal(err)
		}
		for _, o := range outs {
			if o.Err != nil {
				t.Fatalf("%s %s: %v", name, o.ID, o.Err)
			}
			if !o.Result.Detected || o.Result.MatchFraction != 1.0 {
				t.Errorf("%s %s: detected=%v match=%.3f", name, o.ID, o.Result.Detected, o.Result.MatchFraction)
			}
		}
		sum := SummarizeDetect(outs)
		if sum.Detected != len(batch) || sum.MeanMatch != 1.0 {
			t.Errorf("%s summary = %+v", name, sum)
		}
	}
}

// TestErrorIsolation poisons two documents in a batch (one nil, one
// failing schema validation) and requires every other document to embed
// exactly as it would alone.
func TestErrorIsolation(t *testing.T) {
	jobs, cfg := corpus(t, 8, 40)
	cfg.ValidateInput = true
	bad, err := xmltree.ParseString("<not><the/><schema/></not>")
	if err != nil {
		t.Fatal(err)
	}
	jobs[2] = Job{ID: "bad-schema", Doc: bad}
	jobs[5] = Job{ID: "nil-doc", Doc: nil}

	eng := New(cfg, Options{Workers: 4})
	outs, err := eng.EmbedAll(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range outs {
		switch i {
		case 2, 5:
			if o.Err == nil {
				t.Errorf("doc %s: expected failure", o.ID)
			}
		default:
			if o.Err != nil {
				t.Errorf("doc %s: %v", o.ID, o.Err)
			}
		}
	}
	sum := SummarizeEmbed(outs)
	if sum.Succeeded != 6 || sum.Failed != 2 || sum.Skipped != 0 {
		t.Errorf("summary = %+v", sum)
	}
}

// panicRewriter triggers the engine's panic isolation from inside a
// detection job.
type panicRewriter struct{}

func (panicRewriter) RewriteQuery(*xpath.Query) (*xpath.Query, error) { panic("boom") }

func TestPanicIsolation(t *testing.T) {
	jobs, cfg := corpus(t, 4, 30)
	eng := New(cfg, Options{Workers: 2})
	embeds, err := eng.EmbedAll(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	det := make([]DetectJob, len(jobs))
	for i, j := range jobs {
		det[i] = DetectJob{Job: j, Records: embeds[i].Result.Records}
	}
	det[1].Rewriter = panicRewriter{}
	outs, err := eng.DetectAll(context.Background(), det)
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range outs {
		if i == 1 {
			if o.Err == nil || o.Result != nil {
				t.Errorf("panicking doc: err=%v result=%v", o.Err, o.Result)
			}
			continue
		}
		if o.Err != nil || !o.Result.Detected {
			t.Errorf("doc %s: err=%v", o.ID, o.Err)
		}
	}
}

// TestCancellationSkipsRemainder: a cancelled context must mark
// unstarted documents ErrSkipped and surface ctx.Err() from the batch.
func TestCancellationSkipsRemainder(t *testing.T) {
	jobs, cfg := corpus(t, 6, 30)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before the batch starts: everything skips
	eng := New(cfg, Options{Workers: 3})
	outs, err := eng.EmbedAll(ctx, jobs)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	sum := SummarizeEmbed(outs)
	if sum.Skipped != len(jobs) {
		t.Errorf("summary = %+v, want all skipped", sum)
	}
	for _, o := range outs {
		if !errors.Is(o.Err, ErrSkipped) {
			t.Errorf("doc %s: err = %v, want ErrSkipped", o.ID, o.Err)
		}
	}
}

// TestEmbedStream drains a streaming source and checks completeness and
// per-document correctness, then checks cancellation closes the stream.
func TestEmbedStream(t *testing.T) {
	jobs, cfg := corpus(t, 9, 30)
	eng := New(cfg, Options{Workers: 3})

	in := make(chan Job)
	go func() {
		for _, j := range jobs {
			in <- j
		}
		close(in)
	}()
	seen := make(map[string]bool)
	for o := range eng.EmbedStream(context.Background(), in) {
		if o.Err != nil {
			t.Fatalf("doc %s: %v", o.ID, o.Err)
		}
		if o.Result.Carriers == 0 {
			t.Errorf("doc %s: no carriers", o.ID)
		}
		seen[o.ID] = true
	}
	if len(seen) != len(jobs) {
		t.Fatalf("stream yielded %d outcomes, want %d", len(seen), len(jobs))
	}

	// Cancellation: the output channel must close without draining in.
	ctx, cancel := context.WithCancel(context.Background())
	in2 := make(chan Job) // never closed; cancellation is the only exit
	out := eng.EmbedStream(ctx, in2)
	in2 <- jobs[0]
	<-out // first outcome arrived, workers are live
	cancel()
	for range out {
	} // must terminate: channel closes after cancel
}

// TestStreamDetect mirrors the batch detection result over the
// streaming interface.
func TestStreamDetect(t *testing.T) {
	jobs, cfg := corpus(t, 5, 30)
	eng := New(cfg, Options{Workers: 2})
	embeds, err := eng.EmbedAll(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	in := make(chan DetectJob)
	go func() {
		for i, j := range jobs {
			in <- DetectJob{Job: j, Records: embeds[i].Result.Records}
		}
		close(in)
	}()
	n := 0
	for o := range eng.DetectStream(context.Background(), in) {
		if o.Err != nil || !o.Result.Detected {
			t.Errorf("doc %s: err=%v", o.ID, o.Err)
		}
		n++
	}
	if n != len(jobs) {
		t.Fatalf("stream yielded %d outcomes, want %d", n, len(jobs))
	}
}

// TestWorkerDefaults pins the Workers resolution rules.
func TestWorkerDefaults(t *testing.T) {
	_, cfg := corpus(t, 1, 10)
	if w := New(cfg, Options{}).Workers(); w < 1 {
		t.Errorf("default workers = %d", w)
	}
	if w := New(cfg, Options{Workers: 7}).Workers(); w != 7 {
		t.Errorf("workers = %d, want 7", w)
	}
}
