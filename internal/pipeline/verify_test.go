package pipeline

import (
	"context"
	"reflect"
	"testing"

	"wmxml/internal/core"
	"wmxml/internal/datagen"
	"wmxml/internal/identity"
	"wmxml/internal/wmark"
	"wmxml/internal/xmltree"
)

func verifyCfg(ds *datagen.Dataset) core.Config {
	return core.Config{
		Key:      []byte("verify-key"),
		Mark:     wmark.Random("verify-mark", 48),
		Gamma:    4,
		Schema:   ds.Schema,
		Catalog:  ds.Catalog,
		Identity: identity.Options{Targets: ds.Targets},
	}
}

// The Verify option runs detection on the freshly embedded document,
// reusing its index, and must match a standalone detection exactly.
func TestEmbedVerify(t *testing.T) {
	ds := datagen.Publications(datagen.PubConfig{Books: 120, Editors: 12, Publishers: 4, Seed: 31})
	cfg := verifyCfg(ds)
	docs := []*xmltree.Node{ds.Doc.Clone(), ds.Doc.Clone(), ds.Doc.Clone()}
	jobs := make([]Job, len(docs))
	for i, d := range docs {
		jobs[i] = Job{ID: string(rune('a' + i)), Doc: d}
	}
	eng := New(cfg, Options{Workers: 2, Verify: true})
	outs, err := eng.EmbedAll(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range outs {
		if o.Err != nil || o.VerifyErr != nil {
			t.Fatalf("outcome %q: err=%v verifyErr=%v", o.ID, o.Err, o.VerifyErr)
		}
		if o.Verify == nil {
			t.Fatalf("outcome %q: no verify result", o.ID)
		}
		if !o.Verify.Detected || o.Verify.MatchFraction != 1.0 || o.Verify.QueryMisses != 0 {
			t.Fatalf("outcome %q: verify = %+v", o.ID, o.Verify.Result)
		}
		standalone, err := core.DetectWithQueries(docs[o.Index], cfg, o.Result.Records, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(o.Verify, standalone) {
			t.Fatalf("outcome %q: verify %+v != standalone %+v", o.ID, o.Verify, standalone)
		}
	}
}

// Without the option no verification runs.
func TestEmbedVerifyOff(t *testing.T) {
	ds := datagen.Publications(datagen.PubConfig{Books: 60, Seed: 32})
	eng := New(verifyCfg(ds), Options{Workers: 1})
	outs, err := eng.EmbedAll(context.Background(), []Job{{ID: "x", Doc: ds.Doc.Clone()}})
	if err != nil {
		t.Fatal(err)
	}
	if outs[0].Err != nil || outs[0].Verify != nil || outs[0].VerifyErr != nil {
		t.Fatalf("unexpected verify fields: %+v", outs[0])
	}
}
