package pipeline

// Streaming job kind: single documents too large to materialize run
// through internal/stream under the engine's panic isolation and
// cancellation contract. Unlike the batch jobs, a streaming job owns an
// io.Reader/io.Writer pair instead of a parsed tree, and cancellation
// takes effect *mid-document* — between chunks — rather than between
// documents.

import (
	"fmt"
	"io"

	"context"

	"wmxml/internal/core"
	"wmxml/internal/stream"
)

// StreamEmbedJob is one streamed embedding: the document is read from
// In and the marked document written to Out incrementally.
type StreamEmbedJob struct {
	// ID names the document in outcomes.
	ID string
	// In supplies the XML document.
	In io.Reader
	// Out receives the watermarked document, byte-identical to the
	// in-memory path's output.
	Out io.Writer
	// Options tunes chunking; the zero value uses the stream defaults.
	Options stream.Options
}

// StreamDetectJob is one streamed detection. Records nil runs blind
// detection, mirroring DetectJob.
type StreamDetectJob struct {
	ID string
	In io.Reader
	// Records is the safeguarded query set Q; nil decodes blind.
	Records []core.QueryRecord
	// Rewriter translates queries for a re-organized suspect; only
	// chunk-local rewrites stream (others fall back in-memory).
	Rewriter core.Rewriter
	Options  stream.Options
}

// EmbedReader embeds a single streamed document. Panics in tree or
// plug-in code become the job's error; ctx cancels mid-document (the
// stream stops between chunks, drains its workers and returns
// ctx.Err()). The outcome's Stream field reports chunking stats.
// Options.Verify does not apply: a streamed document is not retained,
// so there is no tree to re-detect against.
func (e *Engine) EmbedReader(ctx context.Context, j StreamEmbedJob) (out EmbedOutcome) {
	out = EmbedOutcome{ID: j.ID}
	if err := ctx.Err(); err != nil {
		out.Err = ErrSkipped
		return out
	}
	defer func() {
		if r := recover(); r != nil {
			out.Result = nil
			out.Err = fmt.Errorf("pipeline: stream embed %q panicked: %v", j.ID, r)
		}
	}()
	if j.In == nil || j.Out == nil {
		out.Err = fmt.Errorf("pipeline: stream job %q needs In and Out", j.ID)
		return out
	}
	res, err := stream.Embed(ctx, j.In, j.Out, e.cfg, j.Options)
	if err != nil {
		out.Err = err
		return out
	}
	out.Result = res.EmbedResult
	out.Stream = &res.Stats
	return out
}

// DetectReader detects over a single streamed document (blind when
// Records is nil) with the same isolation and cancellation contract as
// EmbedReader.
func (e *Engine) DetectReader(ctx context.Context, j StreamDetectJob) (out DetectOutcome) {
	out = DetectOutcome{ID: j.ID}
	if err := ctx.Err(); err != nil {
		out.Err = ErrSkipped
		return out
	}
	defer func() {
		if r := recover(); r != nil {
			out.Result = nil
			out.Err = fmt.Errorf("pipeline: stream detect %q panicked: %v", j.ID, r)
		}
	}()
	if j.In == nil {
		out.Err = fmt.Errorf("pipeline: stream job %q needs In", j.ID)
		return out
	}
	var (
		res   *core.DetectResult
		stats stream.Stats
		err   error
	)
	if j.Records == nil {
		res, stats, err = stream.DetectBlind(ctx, j.In, e.cfg, j.Options)
	} else {
		res, stats, err = stream.Detect(ctx, j.In, e.cfg, j.Records, j.Rewriter, j.Options)
	}
	if err != nil {
		out.Err = err
		return out
	}
	out.Result = res
	out.Stream = &stats
	return out
}
