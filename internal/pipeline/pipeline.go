// Package pipeline runs WmXML embedding and detection over whole
// corpora of XML documents — the batch engine behind wmxml.Pipeline and
// the `wmxml batch` command.
//
// The paper's encoder and decoder (internal/core) process one document
// per call. A publisher protecting a catalog, or an auditor sweeping a
// crawl for leaked marks, has thousands; the pipeline fans those out
// over a bounded worker pool. Design points:
//
//   - Bounded concurrency: at most Workers documents are in flight; the
//     default is GOMAXPROCS. Each document may additionally use the
//     core Concurrency option internally; the two multiply, so corpus
//     runs usually keep per-document concurrency at 1.
//   - Per-document isolation: a document that fails to embed or detect
//     (invalid against the schema, unparseable values, a panic in a
//     plug-in) yields an outcome with Err set; the rest of the batch is
//     unaffected.
//   - Deterministic outcomes: batch results are returned in input
//     order, and each document's result is bit-for-bit what a
//     standalone core.Embed / core.Detect* call would produce, because
//     documents share no mutable state.
//   - Cancellation: the context stops the batch between documents;
//     outcomes for documents never started carry ErrSkipped and the
//     batch call returns ctx.Err().
package pipeline

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"wmxml/internal/core"
	"wmxml/internal/index"
	"wmxml/internal/obs"
	"wmxml/internal/stream"
	"wmxml/internal/xmltree"
)

// ErrSkipped marks outcomes of documents the engine never started
// because the batch context was cancelled first.
var ErrSkipped = errors.New("pipeline: document skipped (batch cancelled)")

// Job is one document entering the pipeline, tagged for reporting.
type Job struct {
	// ID names the document in outcomes — a file name, a database key.
	ID string
	// Doc is the document. Embedding mutates it in place.
	Doc *xmltree.Node
}

// DetectJob pairs a suspect document with its detection inputs.
type DetectJob struct {
	Job
	// Records is the safeguarded query set Q for this document; nil
	// runs blind detection (the document must follow the original
	// schema).
	Records []core.QueryRecord
	// Rewriter translates queries for a re-organized suspect; nil when
	// the suspect kept the original layout. Rewriters built by
	// internal/rewrite are stateless and may be shared across jobs.
	Rewriter core.Rewriter
	// Index is an optional caller-built document index over Doc (it
	// must be current — see internal/index for the invalidation
	// contract). The server's suspect-document cache passes one here so
	// repeated detections skip both the reparse and the index build;
	// nil lets the core build its own per call.
	Index *index.Index
	// Plan is an optional precompiled decode plan for this job's query
	// set. When set, Records and Rewriter are ignored — the plan already
	// embodies them — and detection skips query parsing, plan
	// compilation and the per-record HMACs entirely (the warm-path win;
	// see core.DecodePlan). The plan's config must match the engine's.
	Plan *core.DecodePlan
}

// EmbedOutcome is the embedding result of one job.
type EmbedOutcome struct {
	// ID and Index identify the job (Index is its position in the
	// batch, or arrival order for streams).
	ID    string
	Index int
	// Result is the embed receipt; nil when Err is set.
	Result *core.EmbedResult
	// Err is the document's own failure, ErrSkipped when the batch was
	// cancelled before the document started, or nil.
	Err error
	// Verify is the immediate post-embed detection result when
	// Options.Verify is set (nil otherwise, or when VerifyErr is set).
	Verify *core.DetectResult
	// VerifyErr is the verification pass's own failure.
	VerifyErr error
	// Stream reports chunking stats for jobs run through EmbedReader
	// (nil for tree jobs).
	Stream *stream.Stats
}

// DetectOutcome is the detection result of one job.
type DetectOutcome struct {
	ID    string
	Index int
	// Result is the detection outcome; nil when Err is set.
	Result *core.DetectResult
	Err    error
	// Stream reports chunking stats for jobs run through DetectReader
	// (nil for tree jobs).
	Stream *stream.Stats
}

// Options configures an Engine.
type Options struct {
	// Workers bounds how many documents are processed concurrently.
	// 0 means GOMAXPROCS; 1 is sequential.
	Workers int
	// Verify re-runs detection with the freshly generated query set on
	// each successfully embedded document, reusing the document index
	// built for embedding (the index's value tables are invalidated by
	// the embed phase, so verification reads post-embed values). The
	// outcome lands in EmbedOutcome.Verify.
	Verify bool
}

// Engine embeds and detects watermarks across document corpora. It is
// immutable after New and safe for concurrent use.
type Engine struct {
	cfg     core.Config
	workers int
	verify  bool
}

// New builds an Engine from a core configuration. The configuration is
// validated lazily by core.Embed / core.Detect* per document, so an
// invalid config surfaces as per-document errors rather than a
// constructor failure — batch callers handle outcome errors anyway.
func New(cfg core.Config, opts Options) *Engine {
	w := opts.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	return &Engine{cfg: cfg, workers: w, verify: opts.Verify}
}

// Workers reports the effective worker bound.
func (e *Engine) Workers() int { return e.workers }

// EmbedAll embeds the watermark into every job's document in place and
// returns one outcome per job, in input order. The returned error is
// nil or ctx.Err(); per-document failures live in the outcomes.
func (e *Engine) EmbedAll(ctx context.Context, jobs []Job) ([]EmbedOutcome, error) {
	outs := make([]EmbedOutcome, len(jobs))
	for i, j := range jobs {
		outs[i] = EmbedOutcome{ID: j.ID, Index: i, Err: ErrSkipped}
	}
	err := e.fanOut(ctx, len(jobs), func(i int) {
		outs[i] = e.embedOne(ctx, i, jobs[i])
	})
	return outs, err
}

// DetectAll runs detection on every job and returns one outcome per
// job, in input order. The returned error is nil or ctx.Err().
func (e *Engine) DetectAll(ctx context.Context, jobs []DetectJob) ([]DetectOutcome, error) {
	outs := make([]DetectOutcome, len(jobs))
	for i, j := range jobs {
		outs[i] = DetectOutcome{ID: j.ID, Index: i, Err: ErrSkipped}
	}
	err := e.fanOut(ctx, len(jobs), func(i int) {
		outs[i] = e.detectOne(ctx, i, jobs[i])
	})
	return outs, err
}

// EmbedStream embeds documents as they arrive on in and delivers
// outcomes on the returned channel, which closes when in is drained or
// ctx is cancelled. Outcome order is completion order; Index records
// arrival order. Up to Workers documents are in flight at once.
func (e *Engine) EmbedStream(ctx context.Context, in <-chan Job) <-chan EmbedOutcome {
	return fanStream(ctx, e.workers, in, e.embedOne)
}

// DetectStream is EmbedStream for detection jobs.
func (e *Engine) DetectStream(ctx context.Context, in <-chan DetectJob) <-chan DetectOutcome {
	return fanStream(ctx, e.workers, in, e.detectOne)
}

// embedOne processes one document, converting panics in value plug-ins
// or tree code into per-document errors so a poisoned document cannot
// take down the batch.
func (e *Engine) embedOne(ctx context.Context, jobIndex int, j Job) (out EmbedOutcome) {
	out = EmbedOutcome{ID: j.ID, Index: jobIndex}
	if err := ctx.Err(); err != nil {
		out.Err = ErrSkipped
		return out
	}
	defer func() {
		if r := recover(); r != nil {
			out.Result = nil
			out.Err = fmt.Errorf("pipeline: embed %q panicked: %v", j.ID, r)
		}
	}()
	if j.Doc == nil {
		out.Err = fmt.Errorf("pipeline: job %q has no document", j.ID)
		return out
	}
	// One index per document, shared across embed and (optionally)
	// verify: embedding invalidates its value tables, so the verify
	// detection reads post-embed values through still-valid structure.
	tr := obs.FromContext(ctx)
	var ix *index.Index
	if !e.cfg.DisableIndex {
		isp := tr.StartSpan("index")
		ix = index.New(j.Doc)
		isp.End()
	}
	esp := tr.StartSpan("embed")
	out.Result, out.Err = core.EmbedIndexed(j.Doc, e.cfg, ix)
	esp.End()
	if e.verify && out.Err == nil {
		out.Verify, out.VerifyErr = core.DetectWithQueriesIndexed(j.Doc, e.cfg, out.Result.Records, nil, ix)
	}
	return out
}

func (e *Engine) detectOne(ctx context.Context, jobIndex int, j DetectJob) (out DetectOutcome) {
	out = DetectOutcome{ID: j.ID, Index: jobIndex}
	if err := ctx.Err(); err != nil {
		out.Err = ErrSkipped
		return out
	}
	defer func() {
		if r := recover(); r != nil {
			out.Result = nil
			out.Err = fmt.Errorf("pipeline: detect %q panicked: %v", j.ID, r)
		}
	}()
	if j.Doc == nil {
		out.Err = fmt.Errorf("pipeline: job %q has no document", j.ID)
		return out
	}
	tr := obs.FromContext(ctx)
	switch {
	case j.Plan != nil:
		out.Result = j.Plan.DetectTraced(j.Doc, j.Index, tr)
	case j.Records == nil:
		dsp := tr.StartSpan("decode")
		out.Result, out.Err = core.DetectBlindIndexed(j.Doc, e.cfg, j.Index)
		dsp.End()
	default:
		dsp := tr.StartSpan("decode")
		out.Result, out.Err = core.DetectWithQueriesIndexed(j.Doc, e.cfg, j.Records, j.Rewriter, j.Index)
		dsp.End()
	}
	return out
}

// fanOut distributes indices [0, n) over the engine's worker pool,
// stopping the feed when ctx is cancelled. In-flight documents finish;
// unfed indices keep whatever the caller pre-filled (ErrSkipped).
func (e *Engine) fanOut(ctx context.Context, n int, fn func(i int)) error {
	workers := e.workers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			fn(i)
		}
		return ctx.Err()
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				fn(i)
			}
		}()
	}
feed:
	for i := 0; i < n; i++ {
		select {
		case idx <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(idx)
	wg.Wait()
	return ctx.Err()
}

// fanStream is the shared worker loop behind EmbedStream and DetectStream.
// A single dispatcher goroutine drains in and stamps each job with its
// arrival index before any worker can race for the next receive, so
// Index reflects true arrival order even with many workers.
func fanStream[J any, O any](ctx context.Context, workers int, in <-chan J, fn func(context.Context, int, J) O) <-chan O {
	type numbered struct {
		i int
		j J
	}
	seq := make(chan numbered)
	go func() {
		defer close(seq)
		for i := 0; ; i++ {
			var j J
			var ok bool
			select {
			case <-ctx.Done():
				return
			case j, ok = <-in:
				if !ok {
					return
				}
			}
			select {
			case seq <- numbered{i, j}:
			case <-ctx.Done():
				return
			}
		}
	}()
	out := make(chan O)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for nj := range seq {
				o := fn(ctx, nj.i, nj.j)
				select {
				case out <- o:
				case <-ctx.Done():
					return
				}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(out)
	}()
	return out
}

// EmbedSummary aggregates a batch of embed outcomes.
type EmbedSummary struct {
	// Docs is the batch size; Succeeded + Failed + Skipped == Docs.
	Docs, Succeeded, Failed, Skipped int
	// BandwidthUnits, Carriers and ValuesWritten sum the receipts of
	// the successful documents.
	BandwidthUnits, Carriers, ValuesWritten int
}

// Add folds one outcome into the summary: err classifies the document
// (skipped / failed / succeeded) and the capacity figures accumulate
// only on success. This is the single classification point shared by
// the internal and public summarizers.
func (s *EmbedSummary) Add(err error, bandwidthUnits, carriers, valuesWritten int) {
	s.Docs++
	switch {
	case errors.Is(err, ErrSkipped):
		s.Skipped++
	case err != nil:
		s.Failed++
	default:
		s.Succeeded++
		s.BandwidthUnits += bandwidthUnits
		s.Carriers += carriers
		s.ValuesWritten += valuesWritten
	}
}

// SummarizeEmbed folds outcomes into corpus-level statistics.
func SummarizeEmbed(outs []EmbedOutcome) EmbedSummary {
	var s EmbedSummary
	for _, o := range outs {
		if o.Result != nil {
			s.Add(o.Err, o.Result.Bandwidth.Units, o.Result.Carriers, o.Result.Embedded)
		} else {
			s.Add(o.Err, 0, 0, 0)
		}
	}
	return s
}

// DetectSummary aggregates a batch of detect outcomes.
type DetectSummary struct {
	Docs, Succeeded, Failed, Skipped int
	// Detected counts successful documents whose watermark was found.
	Detected int
	// MeanMatch and MeanCoverage average over successful documents
	// (0 when none succeeded).
	MeanMatch, MeanCoverage float64
}

// Add folds one outcome into the summary. Call Finalize after the last
// Add to turn the accumulated match/coverage sums into means.
func (s *DetectSummary) Add(err error, detected bool, match, coverage float64) {
	s.Docs++
	switch {
	case errors.Is(err, ErrSkipped):
		s.Skipped++
	case err != nil:
		s.Failed++
	default:
		s.Succeeded++
		if detected {
			s.Detected++
		}
		s.MeanMatch += match
		s.MeanCoverage += coverage
	}
}

// Finalize converts the accumulated sums into means over the
// successful documents.
func (s *DetectSummary) Finalize() {
	if s.Succeeded > 0 {
		s.MeanMatch /= float64(s.Succeeded)
		s.MeanCoverage /= float64(s.Succeeded)
	}
}

// SummarizeDetect folds outcomes into corpus-level statistics.
func SummarizeDetect(outs []DetectOutcome) DetectSummary {
	var s DetectSummary
	for _, o := range outs {
		if o.Result != nil {
			s.Add(o.Err, o.Result.Detected, o.Result.MatchFraction, o.Result.Coverage)
		} else {
			s.Add(o.Err, false, 0, 0)
		}
	}
	s.Finalize()
	return s
}
