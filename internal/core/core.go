// Package core implements the WmXML encoder and decoder — the primary
// contribution of the paper (§2.2, figure 4).
//
// The scheme has three phases:
//
//  1. Initialization: a schema, a semantic catalog (keys and FDs), a set
//     of usability query templates, a secret key and a watermark.
//  2. Watermark insertion (Embed): the bandwidth units of the document
//     are enumerated (internal/identity); a keyed HMAC selects roughly
//     1/gamma of them as carriers; each carrier's value receives one
//     watermark bit through the plug-in algorithm for its data type
//     (internal/wa); finally the identifying queries Q are generated and
//     returned for the user to safeguard alongside the key.
//  3. Watermark detection (Detect*): the queries in Q — rewritten for a
//     re-organized document if necessary (internal/rewrite) — retrieve
//     the carrier values; each value votes for its watermark bit; the
//     majority-voted watermark is compared to the expected mark and the
//     match fraction decides detection.
//
// Two detection modes are provided. DetectWithQueries is the paper's
// workflow (the user kept Q). DetectBlind re-derives the carriers from
// the suspect document itself using the schema and catalog, which works
// whenever the suspect document kept the original schema.
package core

import (
	"bytes"
	"encoding/json"
	"fmt"

	"wmxml/internal/identity"
	"wmxml/internal/index"
	"wmxml/internal/schema"
	"wmxml/internal/semantics"
	"wmxml/internal/wa"
	"wmxml/internal/wmark"
	"wmxml/internal/xmltree"
	"wmxml/internal/xpath"
)

// Config carries everything both the encoder and decoder need.
type Config struct {
	// Key is the secret key. Detection with a different key reads noise.
	Key []byte
	// Mark is the watermark to embed / verify.
	Mark wmark.Bits
	// Gamma is the selection ratio: on average one in Gamma bandwidth
	// units carries a bit. Default 10.
	Gamma int
	// Xi is the number of candidate low-order embedding positions.
	// Default 4.
	Xi int
	// XiByTarget overrides Xi per target field (key: "scope/field" name
	// path, e.g. "library/item/rating"). Small-scale numeric fields need
	// a shallower depth to stay inside the usability tolerance; see the
	// A3 ablation.
	XiByTarget map[string]int
	// Tau is the detection threshold on the bit-match fraction.
	// Default 0.85.
	Tau float64
	// MinCoverage is the minimum fraction of watermark bits that must
	// receive votes for a positive detection. Default 0.5.
	MinCoverage float64
	// Schema describes the document type.
	Schema *schema.Schema
	// Catalog supplies the keys and FDs identities are built from.
	Catalog semantics.Catalog
	// Identity selects targets and identity mode.
	Identity identity.Options
	// ValidateInput, when set, validates the document against Schema
	// before embedding and refuses invalid input.
	ValidateInput bool
	// Concurrency bounds the worker goroutines used for the per-unit
	// work inside Embed, DetectWithQueries and DetectBlind: carrier
	// selection and value writing on the encoder side, query execution
	// and bit extraction on the decoder side. 0 and 1 run sequentially
	// on the calling goroutine; N > 1 uses up to N workers. The result
	// is bit-for-bit identical to a sequential run at any setting:
	// units of distinct targets and of distinct key/FD groups address
	// disjoint tree nodes, and decoder votes merge commutatively.
	Concurrency int
	// DisableIndex turns off the per-document index and compiled query
	// plans, forcing every query through the tree-walking evaluator.
	// Results are bit-for-bit identical either way; the knob exists for
	// benchmarking and the indexed/unindexed equivalence tests.
	DisableIndex bool
}

// WithDefaults returns the configuration with zero-valued knobs
// replaced by their documented defaults (the form every entry point
// normalizes to).
func (c Config) WithDefaults() Config { return c.withDefaults() }

// Validate reports whether the configuration carries the required
// pieces (key, mark, schema).
func (c Config) Validate() error { return c.validate() }

func (c Config) withDefaults() Config {
	if c.Gamma == 0 {
		c.Gamma = 10
	}
	if c.Xi == 0 {
		c.Xi = 4
	}
	if c.Tau == 0 {
		c.Tau = 0.85
	}
	if c.MinCoverage == 0 {
		c.MinCoverage = 0.5
	}
	return c
}

func (c Config) validate() error {
	if len(c.Key) == 0 {
		return fmt.Errorf("core: secret key is required")
	}
	if len(c.Mark) == 0 {
		return fmt.Errorf("core: watermark is required")
	}
	if c.Schema == nil {
		return fmt.Errorf("core: schema is required")
	}
	return nil
}

func (c Config) selector() (*wmark.Selector, error) {
	return wmark.NewSelector(c.Key, c.Gamma, len(c.Mark), c.Xi)
}

// QueryRecord is one entry of the safeguarded query set Q: the identity
// query addressing a carrier, the canonical identity (HMAC input), the
// value type (which selects the extraction plug-in) and the target the
// carrier belongs to (which selects any per-target embedding depth).
type QueryRecord struct {
	ID     string `json:"id"`
	Query  string `json:"query"`
	Type   string `json:"type"`
	Target string `json:"target,omitempty"`
}

// QuerySetVersion is the current on-disk receipt format version.
// History: version 0 (unmarked) was a bare JSON array of records;
// version 1 wraps the array in an envelope carrying this field, so the
// format can evolve without breaking safeguarded receipts.
const QuerySetVersion = 1

// querySetEnvelope is the versioned on-disk form of Q.
type querySetEnvelope struct {
	Version int           `json:"version"`
	Records []QueryRecord `json:"records"`
}

// MarshalQuerySet renders Q as JSON for safekeeping. A nil record set
// marshals as an empty array, never "null" — the unmarshal side treats
// a missing records field as a wrong file.
func MarshalQuerySet(records []QueryRecord) ([]byte, error) {
	if records == nil {
		records = []QueryRecord{}
	}
	return json.MarshalIndent(querySetEnvelope{Version: QuerySetVersion, Records: records}, "", "  ")
}

// UnmarshalQuerySet parses a JSON query set: the current versioned
// envelope, or the legacy bare-array form, which is accepted and
// treated as version 0 — receipts safeguarded before the envelope
// existed keep working verbatim.
func UnmarshalQuerySet(data []byte) ([]QueryRecord, error) {
	trimmed := bytes.TrimLeft(data, " \t\r\n")
	if len(trimmed) > 0 && trimmed[0] == '[' {
		var out []QueryRecord
		if err := json.Unmarshal(trimmed, &out); err != nil {
			return nil, fmt.Errorf("core: parse query set: %w", err)
		}
		return out, nil
	}
	// Records is captured raw so an envelope without the field is
	// distinguishable from one carrying an empty (or explicit null)
	// array: a wrong file (or a typo'd "records" key) must fail loudly,
	// not detect against zero queries.
	var env struct {
		Version int             `json:"version"`
		Records json.RawMessage `json:"records"`
	}
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, fmt.Errorf("core: parse query set: %w", err)
	}
	if env.Version > QuerySetVersion {
		return nil, fmt.Errorf("core: query set version %d is newer than this build supports (%d)", env.Version, QuerySetVersion)
	}
	if env.Records == nil {
		return nil, fmt.Errorf("core: parse query set: no \"records\" field — not a query set envelope")
	}
	var out []QueryRecord
	if err := json.Unmarshal(env.Records, &out); err != nil {
		return nil, fmt.Errorf("core: parse query set: %w", err)
	}
	return out, nil
}

// EmbedResult reports what insertion did.
type EmbedResult struct {
	// Records is Q — safeguard it with the key.
	Records []QueryRecord
	// Bandwidth is the capacity report from identity enumeration.
	Bandwidth identity.Report
	// Carriers is the number of selected units.
	Carriers int
	// Embedded is the number of physical values written.
	Embedded int
	// Unembeddable counts selected values the plug-in had to skip
	// (value outside the algorithm's domain).
	Unembeddable int
}

// Embed inserts the watermark into doc in place and returns the query
// set Q.
func Embed(doc *xmltree.Node, cfg Config) (*EmbedResult, error) {
	return EmbedIndexed(doc, cfg, nil)
}

// docIndex materializes the shared per-document index: an explicit one
// wins, otherwise one is built unless the config disables indexing. The
// xpath.DocIndex return is nil (untyped) when there is no index, so
// SelectIndexed degrades cleanly.
func docIndex(doc *xmltree.Node, cfg Config, ix *index.Index) (*index.Index, xpath.DocIndex) {
	if ix == nil && !cfg.DisableIndex {
		ix = index.New(doc)
	}
	if ix == nil {
		return nil, nil
	}
	return ix, ix
}

// EmbedIndexed is Embed reusing a caller-provided document index (built
// over doc). The index's key-value tables are invalidated after the
// value-writing phase, so the caller can keep using it — the pipeline
// shares one index per document across embed and verify. A nil ix
// builds one internally (unless cfg.DisableIndex is set).
func EmbedIndexed(doc *xmltree.Node, cfg Config, ix *index.Index) (*EmbedResult, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	sel, err := cfg.selector()
	if err != nil {
		return nil, err
	}
	if cfg.ValidateInput {
		if vs := cfg.Schema.Validate(doc); len(vs) > 0 {
			return nil, fmt.Errorf("core: document invalid against schema %q: %s (and %d more)",
				cfg.Schema.Name, vs[0], len(vs)-1)
		}
	}
	ix, dix := docIndex(doc, cfg, ix)
	builder := identity.NewBuilder(cfg.Schema, cfg.Catalog, cfg.Identity)
	units, rep, err := builder.UnitsIndexed(doc, dix)
	if err != nil {
		return nil, err
	}
	res := &EmbedResult{Bandwidth: rep}

	// Phase 1: select carriers and embed values. Site selection is the
	// shared enumeration (selectSites) so a precompiled delivery plan
	// and a direct embedding agree site-for-site. Units address disjoint
	// tree nodes (distinct targets are distinct fields; within a target,
	// key instances and FD groups partition the items), so per-site work
	// parallelizes without locks; per-site tallies are indexed by site
	// and folded in order afterwards, keeping the result deterministic.
	sites := selectSites(units, sel, cfg)
	type unitEmbed struct {
		wrote, unembeddable int
	}
	tallies := make([]unitEmbed, len(sites))
	forEachWorker(cfg.Concurrency, len(sites), func(_, i int) {
		site := sites[i]
		if site.Alg == nil {
			tallies[i].unembeddable = len(site.Unit.Items)
			return
		}
		bit := cfg.Mark[site.BitIndex]
		for _, item := range site.Unit.Items {
			v := item.Value()
			if !site.Alg.CanEmbed(v) {
				tallies[i].unembeddable++
				continue
			}
			nv, err := site.Alg.Embed(v, bit, site.Params)
			if err != nil {
				tallies[i].unembeddable++
				continue
			}
			item.SetValue(nv)
			tallies[i].wrote++
		}
	})
	var selected []identity.Unit
	for i, t := range tallies {
		res.Unembeddable += t.unembeddable
		if t.wrote > 0 {
			res.Carriers++
			res.Embedded += t.wrote
			selected = append(selected, sites[i].Unit)
		}
	}
	// Embedding changed document values, so any key-value tables built
	// during enumeration are stale; the structural tables stay valid
	// (value writes do not move elements).
	ix.Invalidate()

	// Phase 2: generate Q from the post-insertion document (marking can
	// change selector values of det-units). All writes are done, so the
	// rebuilds are read-only and parallelize freely.
	recs := make([]QueryRecord, len(selected))
	forEachWorker(cfg.Concurrency, len(selected), func(_, i int) {
		u := selected[i]
		q, err := u.Rebuild()
		if err != nil {
			// The value became unquotable or the selector vanished;
			// fall back to the pre-embedding query, which still works
			// unless the selector value itself was marked.
			q = u.Query
		}
		recs[i] = QueryRecord{
			ID:     u.ID,
			Query:  q.String(),
			Type:   u.Type.String(),
			Target: u.Scope + "/" + u.Field,
		}
	})
	if len(recs) > 0 {
		res.Records = recs
	}
	return res, nil
}

// Rewriter adapts a detection query to a re-organized document. The
// rewrite package provides implementations from schema mappings; custom
// implementations can be plugged in.
type Rewriter interface {
	RewriteQuery(q *xpath.Query) (*xpath.Query, error)
}

// DetectResult is a detection outcome.
type DetectResult struct {
	wmark.Result
	// QueriesRun is the number of identity queries executed.
	QueriesRun int
	// QueryMisses counts queries that selected nothing (deleted or
	// unreachable carriers).
	QueryMisses int
	// RewriteErrors counts queries the rewriter could not translate.
	RewriteErrors int
}

// DecodeResult is the raw outcome of one decoding pass: the per-bit
// vote table before it is scored against any particular mark. Tracing
// (internal/fingerprint) decodes a suspect document once and correlates
// the same vote table against every recipient's code, which is what
// makes an N-recipient sweep cost one decode plus N bit comparisons.
type DecodeResult struct {
	// Votes is the per-bit evidence table, sized len(cfg.Mark).
	Votes *wmark.Votes
	// QueriesRun, QueryMisses and RewriteErrors mirror DetectResult.
	QueriesRun, QueryMisses, RewriteErrors int
}

// DetectWithQueries runs the paper's detection: execute the safeguarded
// queries (optionally rewritten through rw) against the suspect document,
// extract one bit per retrieved value, majority-vote and score against
// cfg.Mark. rw may be nil when the suspect document kept the original
// schema.
func DetectWithQueries(doc *xmltree.Node, cfg Config, records []QueryRecord, rw Rewriter) (*DetectResult, error) {
	return DetectWithQueriesIndexed(doc, cfg, records, rw, nil)
}

// DetectWithQueriesIndexed is DetectWithQueries reusing a
// caller-provided document index (built over doc and current — call
// Invalidate/Rebuild after mutating the document). A nil ix builds one
// internally (unless cfg.DisableIndex is set). The index is what makes
// detection near-linear: each identity query resolves through a
// key-value lookup instead of a root-down tree scan.
func DetectWithQueriesIndexed(doc *xmltree.Node, cfg Config, records []QueryRecord, rw Rewriter, ix *index.Index) (*DetectResult, error) {
	dec, err := DecodeWithQueriesIndexed(doc, cfg, records, rw, ix)
	if err != nil {
		return nil, err
	}
	return ScoreDecode(dec, cfg), nil
}

// ScoreDecode turns a decoded vote table into a detection verdict
// against cfg.Mark — the scoring half detection shares with the
// streaming layer, which merges vote tables across chunks before
// scoring once.
func ScoreDecode(dec *DecodeResult, cfg Config) *DetectResult {
	cfg = cfg.withDefaults()
	res := &DetectResult{
		QueriesRun:    dec.QueriesRun,
		QueryMisses:   dec.QueryMisses,
		RewriteErrors: dec.RewriteErrors,
	}
	res.Result = dec.Votes.Score(cfg.Mark, cfg.Tau, cfg.MinCoverage)
	return res
}

// CompiledRecord is one safeguarded query record compiled for decoding:
// the parsed query (rewritten if a Rewriter was supplied), the
// extraction plug-in and the keyed bit assignment. Compiling once and
// executing many times is what lets the streaming decoder run the same
// record against every chunk without recompiling.
type CompiledRecord struct {
	// Record is the source record.
	Record QueryRecord

	alg           wa.Algorithm
	q             *xpath.Query
	bitIndex      int
	params        wa.Params
	rewriteFailed bool
}

// Runnable reports whether the record participates in decoding: its
// type has an extraction plug-in and its query survived rewriting.
func (cr *CompiledRecord) Runnable() bool { return cr.alg != nil && !cr.rewriteFailed }

// RewriteFailed reports whether the rewriter could not translate the
// record's query (the record votes one miss and counts as a rewrite
// error).
func (cr *CompiledRecord) RewriteFailed() bool { return cr.rewriteFailed }

// Query returns the compiled (possibly rewritten) query, nil when the
// record is not runnable.
func (cr *CompiledRecord) Query() *xpath.Query { return cr.q }

// DecodeInto executes the record's query against doc and folds one vote
// (or extraction miss) per selected item into v. It returns the number
// of selected items; the zero-selection miss bookkeeping is the
// caller's, because only the caller knows whether "nothing here" is
// final (whole document) or partial (one chunk of many).
func (cr *CompiledRecord) DecodeInto(doc *xmltree.Node, dix xpath.DocIndex, v *wmark.Votes) int {
	items := cr.q.SelectIndexed(doc, dix)
	for _, item := range items {
		bit, ok := cr.alg.Extract(item.Value(), cr.params)
		if !ok {
			v.AddMiss()
			continue
		}
		v.Add(cr.bitIndex, bit)
	}
	return len(items)
}

// CompileRecords compiles a query set for decoding under cfg. Rewriting
// (when rw is non-nil) happens here, once per record. Unparseable types
// and queries are reported lowest-record-first, as a sequential
// left-to-right pass would; rewrite failures are not errors — they mark
// the record RewriteFailed, mirroring detection's tolerance for
// partially translatable query sets.
func CompileRecords(cfg Config, records []QueryRecord, rw Rewriter) ([]CompiledRecord, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	sel, err := cfg.selector()
	if err != nil {
		return nil, err
	}
	out := make([]CompiledRecord, len(records))
	errs := make([]error, len(records))
	forEachWorker(cfg.Concurrency, len(records), func(_, i int) {
		rec := records[i]
		out[i].Record = rec
		dt, err := schema.ParseDataType(rec.Type)
		if err != nil {
			errs[i] = fmt.Errorf("core: record %q: %w", rec.ID, err)
			return
		}
		alg := wa.ForType(dt)
		if alg == nil {
			return
		}
		q, err := xpath.Compile(rec.Query)
		if err != nil {
			errs[i] = fmt.Errorf("core: record query %q: %w", rec.Query, err)
			return
		}
		if rw != nil {
			rq, err := rw.RewriteQuery(q)
			if err != nil {
				out[i].rewriteFailed = true
				return
			}
			q = rq
		}
		out[i].alg = alg
		out[i].q = q
		out[i].bitIndex = sel.BitIndex(rec.ID)
		out[i].params = wa.Params{BitPosition: sel.PositionIn(rec.ID, cfg.XiByTarget[rec.Target])}
	})
	if err := firstError(errs); err != nil {
		return nil, err
	}
	return out, nil
}

// DecodeWithQueriesIndexed runs the query-execution and bit-extraction
// phase of detection and returns the raw vote table: cfg.Mark supplies
// only the bit length and the keyed bit-index mapping, its values are
// not compared. A nil ix builds an index internally (unless
// cfg.DisableIndex is set).
func DecodeWithQueriesIndexed(doc *xmltree.Node, cfg Config, records []QueryRecord, rw Rewriter, ix *index.Index) (*DecodeResult, error) {
	// Compile-and-throw-away form of the plan API: queries only read the
	// suspect document, so records fan out over workers inside
	// DecodePlan.Decode; each worker accumulates into its own vote
	// counter and the counters merge commutatively, reproducing the
	// sequential tally exactly. Callers decoding the same receipt
	// repeatedly should compile the plan once and keep it.
	plan, err := CompileDecodePlan(cfg, records, rw)
	if err != nil {
		return nil, err
	}
	return plan.Decode(doc, ix), nil
}

// detectAcc is one decoder worker's private tally.
type detectAcc struct {
	votes                                  *wmark.Votes
	queriesRun, queryMisses, rewriteErrors int
}

// detectWorkers caps the decoder worker count at the number of work
// items; <= 1 (including the zero default) stays sequential.
func detectWorkers(concurrency, n int) int {
	w := concurrency
	if w < 1 {
		w = 1
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// mergeAccs folds per-worker tallies into one decode result.
func mergeAccs(accs []*detectAcc) *DecodeResult {
	res := &DecodeResult{
		Votes:         accs[0].votes,
		QueriesRun:    accs[0].queriesRun,
		QueryMisses:   accs[0].queryMisses,
		RewriteErrors: accs[0].rewriteErrors,
	}
	for _, acc := range accs[1:] {
		res.Votes.Merge(acc.votes)
		res.QueriesRun += acc.queriesRun
		res.QueryMisses += acc.queryMisses
		res.RewriteErrors += acc.rewriteErrors
	}
	return res
}

// DetectBlind re-derives the carriers from the suspect document itself
// (no stored Q): it enumerates bandwidth units exactly as the encoder
// did and reads bits from the units the key selects. It requires the
// suspect document to still follow the original schema; value alteration
// only adds vote noise.
func DetectBlind(doc *xmltree.Node, cfg Config) (*DetectResult, error) {
	return DetectBlindIndexed(doc, cfg, nil)
}

// DetectBlindIndexed is DetectBlind reusing a caller-provided document
// index (built over doc and current). A nil ix builds one internally
// (unless cfg.DisableIndex is set).
func DetectBlindIndexed(doc *xmltree.Node, cfg Config, ix *index.Index) (*DetectResult, error) {
	dec, err := DecodeBlindIndexed(doc, cfg, ix)
	if err != nil {
		return nil, err
	}
	return ScoreDecode(dec, cfg), nil
}

// BlindDecoder is the unit-level half of blind detection: given an
// enumerated bandwidth unit, it applies the keyed carrier selection and
// reads the unit's items into a vote table. DecodeBlindIndexed drives
// it over a whole document's units; the streaming layer drives the very
// same code over each chunk's units, which is what keeps the two
// bit-for-bit identical.
type BlindDecoder struct {
	cfg Config
	sel *wmark.Selector
}

// NewBlindDecoder validates cfg and builds the decoder.
func NewBlindDecoder(cfg Config) (*BlindDecoder, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	sel, err := cfg.selector()
	if err != nil {
		return nil, err
	}
	return &BlindDecoder{cfg: cfg, sel: sel}, nil
}

// Config returns the decoder's defaulted configuration.
func (d *BlindDecoder) Config() Config { return d.cfg }

// DecodeUnit reads one unit: if the key selects it and its type has an
// extraction plug-in, every item votes (or misses) into v. ran reports
// whether the unit participated (it counts as one executed query);
// extracted reports whether at least one item yielded a bit (a
// participating unit with none is a query miss — but for a unit split
// across chunks only the caller can total that across its parts).
func (d *BlindDecoder) DecodeUnit(u identity.Unit, v *wmark.Votes) (ran, extracted bool) {
	if !d.sel.Selected(u.ID) {
		return false, false
	}
	alg := wa.ForType(u.Type)
	if alg == nil {
		return false, false
	}
	idx := d.sel.BitIndex(u.ID)
	params := wa.Params{BitPosition: d.sel.PositionIn(u.ID, d.cfg.XiByTarget[u.Scope+"/"+u.Field])}
	for _, item := range u.Items {
		bit, ok := alg.Extract(item.Value(), params)
		if !ok {
			v.AddMiss()
			continue
		}
		v.Add(idx, bit)
		extracted = true
	}
	return true, extracted
}

// DecodeBlindIndexed is the blind counterpart of
// DecodeWithQueriesIndexed: it re-derives the carriers from the suspect
// document itself and returns the raw vote table unscored.
func DecodeBlindIndexed(doc *xmltree.Node, cfg Config, ix *index.Index) (*DecodeResult, error) {
	dec, err := NewBlindDecoder(cfg)
	if err != nil {
		return nil, err
	}
	cfg = dec.cfg
	_, dix := docIndex(doc, cfg, ix)
	builder := identity.NewBuilder(cfg.Schema, cfg.Catalog, cfg.Identity)
	units, _, err := builder.UnitsIndexed(doc, dix)
	if err != nil {
		return nil, err
	}
	// Blind detection only reads the document, so units fan out over
	// workers exactly like query records do in DetectWithQueries. Extra
	// workers' vote tables come from the pool (worker 0's becomes the
	// result and must stay fresh).
	workers := detectWorkers(cfg.Concurrency, len(units))
	accs := make([]*detectAcc, workers)
	for w := range accs {
		if w == 0 {
			accs[w] = &detectAcc{votes: wmark.NewVotes(len(cfg.Mark))}
		} else {
			v := votesPool.Get().(*wmark.Votes)
			v.Reset(len(cfg.Mark))
			accs[w] = &detectAcc{votes: v}
		}
	}
	forEachWorker(workers, len(units), func(worker, i int) {
		acc := accs[worker]
		ran, extracted := dec.DecodeUnit(units[i], acc.votes)
		if !ran {
			return
		}
		acc.queriesRun++
		if !extracted {
			acc.queryMisses++
		}
	})
	res := mergeAccs(accs)
	for w := 1; w < len(accs); w++ {
		votesPool.Put(accs[w].votes)
	}
	return res, nil
}
