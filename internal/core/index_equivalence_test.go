package core

// The acceptance contract of the index/planner layer: with or without
// the per-document index, every phase — embedding, query detection,
// blind detection — produces byte-identical output. These tests compare
// the two paths on marked, attacked and re-organized documents.

import (
	"math/rand"
	"reflect"
	"testing"

	"wmxml/internal/attack"
	"wmxml/internal/datagen"
	"wmxml/internal/index"
	"wmxml/internal/rewrite"
	"wmxml/internal/xmltree"
)

// embedBoth embeds the same watermark into two clones, one indexed and
// one not, and verifies the marked documents and query sets match
// bit-for-bit. It returns the indexed clone and its records.
func embedBoth(t *testing.T, ds *datagen.Dataset, cfg Config) (*xmltree.Node, []QueryRecord) {
	t.Helper()
	indexed := ds.Doc.Clone()
	walked := ds.Doc.Clone()
	cfgWalk := cfg
	cfgWalk.DisableIndex = true
	ri, err := Embed(indexed, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rw, err := Embed(walked, cfgWalk)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ri.Records, rw.Records) {
		t.Fatalf("query sets differ: indexed %d records, walked %d", len(ri.Records), len(rw.Records))
	}
	si := xmltree.SerializeIndentString(indexed)
	sw := xmltree.SerializeIndentString(walked)
	if si != sw {
		t.Fatal("indexed and unindexed embedding produced different documents")
	}
	if ri.Carriers == 0 {
		t.Fatal("nothing embedded")
	}
	return indexed, ri.Records
}

// detectBoth compares DetectWithQueries with the index on and off.
func detectBoth(t *testing.T, doc *xmltree.Node, cfg Config, records []QueryRecord, rw Rewriter, what string) *DetectResult {
	t.Helper()
	cfgWalk := cfg
	cfgWalk.DisableIndex = true
	di, err := DetectWithQueries(doc, cfg, records, rw)
	if err != nil {
		t.Fatalf("%s indexed: %v", what, err)
	}
	dw, err := DetectWithQueries(doc, cfgWalk, records, rw)
	if err != nil {
		t.Fatalf("%s walked: %v", what, err)
	}
	if !reflect.DeepEqual(di, dw) {
		t.Fatalf("%s: indexed %+v != walked %+v", what, di, dw)
	}
	return di
}

func TestIndexedDetectEquivalence(t *testing.T) {
	ds := datagen.Publications(datagen.PubConfig{Books: 300, Editors: 30, Publishers: 6, Seed: 2005})
	cfg := pubConfig(ds, "equiv-key", "equiv-mark")
	doc, records := embedBoth(t, ds, cfg)

	// Pristine marked document: full match.
	dr := detectBoth(t, doc, cfg, records, nil, "pristine")
	if !dr.Detected || dr.MatchFraction != 1.0 {
		t.Fatalf("pristine detection: %+v", dr.Result)
	}

	// Value alteration: vote noise, missed extractions.
	altered := doc.Clone()
	if _, err := (attack.ValueAlteration{Fraction: 0.3}).Apply(altered, rand.New(rand.NewSource(7))); err != nil {
		t.Fatal(err)
	}
	detectBoth(t, altered, cfg, records, nil, "altered")

	// Reduction: query misses.
	reduced := doc.Clone()
	if _, err := (attack.Reduction{Scope: "db/book", KeepFraction: 0.5}).Apply(reduced, rand.New(rand.NewSource(8))); err != nil {
		t.Fatal(err)
	}
	red := detectBoth(t, reduced, cfg, records, nil, "reduced")
	if red.QueryMisses == 0 {
		t.Error("reduction should miss queries")
	}

	// Re-organization + rewriter: different document layout, rewritten
	// queries, rewrite errors counted identically.
	m := rewrite.PublicationsMapping()
	reorg, err := rewrite.Transform(doc, m)
	if err != nil {
		t.Fatal(err)
	}
	qrw, err := rewrite.NewQueryRewriter(m)
	if err != nil {
		t.Fatal(err)
	}
	detectBoth(t, reorg, cfg, records, qrw, "reorganized")
}

func TestIndexedDetectEquivalenceConcurrent(t *testing.T) {
	ds := datagen.Publications(datagen.PubConfig{Books: 200, Editors: 20, Publishers: 5, Seed: 6})
	cfg := pubConfig(ds, "conc-key", "conc-mark")
	doc, records := embedBoth(t, ds, cfg)
	want := detectBoth(t, doc, cfg, records, nil, "sequential")
	for _, workers := range []int{2, 4, 8} {
		c := cfg
		c.Concurrency = workers
		got := detectBoth(t, doc, c, records, nil, "concurrent")
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("concurrency %d: %+v != %+v", workers, got, want)
		}
	}
}

func TestIndexedBlindEquivalence(t *testing.T) {
	ds := datagen.Publications(datagen.PubConfig{Books: 250, Editors: 25, Publishers: 5, Seed: 13})
	cfg := pubConfig(ds, "blind-key", "blind-mark")
	doc, _ := embedBoth(t, ds, cfg)
	cfgWalk := cfg
	cfgWalk.DisableIndex = true
	bi, err := DetectBlind(doc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	bw, err := DetectBlind(doc, cfgWalk)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(bi, bw) {
		t.Fatalf("blind: indexed %+v != walked %+v", bi, bw)
	}
	if !bi.Detected {
		t.Fatal("blind detection failed")
	}
}

// A caller-provided index is reused across embed and detect; embedding
// must invalidate its value tables so detection reads post-embed
// values.
func TestSharedIndexAcrossEmbedAndDetect(t *testing.T) {
	ds := datagen.Publications(datagen.PubConfig{Books: 150, Editors: 15, Publishers: 4, Seed: 21})
	cfg := pubConfig(ds, "shared-key", "shared-mark")
	doc := ds.Doc.Clone()
	ix := index.New(doc)
	er, err := EmbedIndexed(doc, cfg, ix)
	if err != nil {
		t.Fatal(err)
	}
	dr, err := DetectWithQueriesIndexed(doc, cfg, er.Records, nil, ix)
	if err != nil {
		t.Fatal(err)
	}
	if !dr.Detected || dr.MatchFraction != 1.0 || dr.QueryMisses != 0 {
		t.Fatalf("shared-index detection: %+v", dr)
	}
	// Must equal a detection with a fresh index.
	fresh, err := DetectWithQueries(doc, cfg, er.Records, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dr, fresh) {
		t.Fatalf("shared %+v != fresh %+v", dr, fresh)
	}
}

// The positional (ablation) identity mode must also be equivalent: its
// queries use numeric predicates, exercising the planner's positional
// path.
func TestIndexedPositionalEquivalence(t *testing.T) {
	ds := datagen.Publications(datagen.PubConfig{Books: 200, Seed: 17})
	cfg := pubConfig(ds, "pos-key", "pos-mark")
	cfg.Identity.Mode = 1 // identity.ModePositional
	doc, records := embedBoth(t, ds, cfg)
	dr := detectBoth(t, doc, cfg, records, nil, "positional")
	if !dr.Detected {
		t.Fatalf("positional detection: %+v", dr.Result)
	}
}
