package core

// DecodePlan equivalence and allocation discipline. The plan is an
// optimization with a hard contract: votes, counters and verdicts must
// be bit-for-bit identical to the one-shot decode path at any
// concurrency, and the warm sequential decode (cached index, compiled
// plan) must stay near zero allocations — the property the serving
// layer's latency target rests on.

import (
	"sync"
	"testing"

	"wmxml/internal/datagen"
	"wmxml/internal/index"
	"wmxml/internal/wmark"
	"wmxml/internal/xmltree"
)

// sameVotes compares two vote tables bit by bit.
func sameVotes(t *testing.T, got, want *wmark.Votes) {
	t.Helper()
	if got.Len() != want.Len() || got.Total() != want.Total() || got.Misses() != want.Misses() {
		t.Fatalf("vote table shape: got len=%d total=%d misses=%d, want len=%d total=%d misses=%d",
			got.Len(), got.Total(), got.Misses(), want.Len(), want.Total(), want.Misses())
	}
	for i := 0; i < want.Len(); i++ {
		go1, gz := got.Counts(i)
		wo, wz := want.Counts(i)
		if go1 != wo || gz != wz {
			t.Fatalf("bit %d: got %d/%d, want %d/%d", i, go1, gz, wo, wz)
		}
	}
}

func sameDecode(t *testing.T, got, want *DecodeResult) {
	t.Helper()
	sameVotes(t, got.Votes, want.Votes)
	if got.QueriesRun != want.QueriesRun || got.QueryMisses != want.QueryMisses || got.RewriteErrors != want.RewriteErrors {
		t.Fatalf("decode counters: got %d/%d/%d, want %d/%d/%d",
			got.QueriesRun, got.QueryMisses, got.RewriteErrors,
			want.QueriesRun, want.QueryMisses, want.RewriteErrors)
	}
}

// planFixture embeds a pubs document and returns the marked doc, its
// index, the compiled plan, and the baseline decode produced with the
// index (and therefore the scratch evaluator) disabled — the
// tree-walking path the fast machinery must agree with exactly.
type planFixtureOut struct {
	cfg      Config
	doc      *xmltree.Node
	ix       *index.Index
	records  []QueryRecord
	plan     *DecodePlan
	baseline *DecodeResult
}

func planFixture(t *testing.T, books int) planFixtureOut {
	t.Helper()
	ds := datagen.Publications(datagen.PubConfig{Books: books, Editors: 20, Publishers: 5, Seed: 11})
	cfg := pubConfig(ds, "plan-key", "plan-mark")
	doc := ds.Doc.Clone()
	er, err := Embed(doc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	refCfg := cfg
	refCfg.DisableIndex = true
	baseline, err := DecodeWithQueriesIndexed(doc, refCfg, er.Records, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := CompileDecodePlan(cfg, er.Records, nil)
	if err != nil {
		t.Fatal(err)
	}
	return planFixtureOut{cfg: cfg, doc: doc, ix: index.New(doc), records: er.Records, plan: plan, baseline: baseline}
}

func TestDecodePlanMatchesBaseline(t *testing.T) {
	fx := planFixture(t, 200)
	// Repeated decodes through the same plan, index and pools: every
	// one must reproduce the tree-walking baseline exactly.
	for i := 0; i < 5; i++ {
		sameDecode(t, fx.plan.Decode(fx.doc, fx.ix), fx.baseline)
	}
	det := fx.plan.Detect(fx.doc, fx.ix)
	if !det.Detected || det.MatchFraction != 1.0 {
		t.Fatalf("plan verdict: %+v", det.Result)
	}
	// The concurrent decode path (workers > 1, pooled vote tables)
	// must produce the same table.
	ccfg := fx.cfg
	ccfg.Concurrency = 4
	cplan, err := CompileDecodePlan(ccfg, fx.records, nil)
	if err != nil {
		t.Fatal(err)
	}
	sameDecode(t, cplan.Decode(fx.doc, fx.ix), fx.baseline)
}

func TestDecodePlanConcurrentDecodesIdentical(t *testing.T) {
	fx := planFixture(t, 120)
	const goroutines, reps = 8, 25
	var wg sync.WaitGroup
	errs := make(chan string, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < reps; i++ {
				dec := fx.plan.Decode(fx.doc, fx.ix)
				if dec.Votes.Total() != fx.baseline.Votes.Total() || dec.QueriesRun != fx.baseline.QueriesRun {
					errs <- "diverged"
					return
				}
				for b := 0; b < dec.Votes.Len(); b++ {
					o, z := dec.Votes.Counts(b)
					wo, wz := fx.baseline.Votes.Counts(b)
					if o != wo || z != wz {
						errs <- "vote mismatch"
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

// BenchmarkDecodePlanWarm measures the steady-state warm decode:
// compiled plan, cached index, pooled buffers.
func BenchmarkDecodePlanWarm(b *testing.B) {
	ds := datagen.Publications(datagen.PubConfig{Books: 200, Editors: 20, Publishers: 5, Seed: 11})
	cfg := pubConfig(ds, "plan-key", "plan-mark")
	doc := ds.Doc.Clone()
	er, err := Embed(doc, cfg)
	if err != nil {
		b.Fatal(err)
	}
	plan, err := CompileDecodePlan(cfg, er.Records, nil)
	if err != nil {
		b.Fatal(err)
	}
	ix := index.New(doc)
	plan.Decode(doc, ix)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plan.Decode(doc, ix)
	}
}

// TestDecodePlanWarmAllocs pins the steady-state allocation budget of
// the warm path: compiled plan, cached index, sequential decode. The
// remaining allocations are the result objects that outlive the call
// (DecodeResult + its vote table's three pieces) plus small per-call
// residue; 16 is the ceiling the serving-layer perf gate assumes.
func TestDecodePlanWarmAllocs(t *testing.T) {
	fx := planFixture(t, 200)
	fx.plan.Decode(fx.doc, fx.ix) // warm pools and lazy kv tables
	avg := testing.AllocsPerRun(100, func() {
		fx.plan.Decode(fx.doc, fx.ix)
	})
	if avg > 16 {
		t.Fatalf("warm plan decode allocates %.1f objects/op, budget is 16", avg)
	}
	t.Logf("warm plan decode: %.1f allocs/op", avg)
}

// TestDecodePlanTracedNoopAllocs pins the cost of the tracing hooks
// when tracing is off: DetectTraced with a nil *obs.Trace must cost no
// more than two allocations over the plain warm Detect. The span calls
// compile to nil-receiver checks; budget +2 absorbs run-to-run noise,
// not real work.
func TestDecodePlanTracedNoopAllocs(t *testing.T) {
	fx := planFixture(t, 200)
	fx.plan.Detect(fx.doc, fx.ix) // warm pools and lazy kv tables
	base := testing.AllocsPerRun(100, func() {
		fx.plan.Detect(fx.doc, fx.ix)
	})
	traced := testing.AllocsPerRun(100, func() {
		fx.plan.DetectTraced(fx.doc, fx.ix, nil)
	})
	if traced > base+2 {
		t.Fatalf("nil-trace DetectTraced allocates %.1f objects/op vs %.1f plain — telemetry must be free when off", traced, base)
	}
	t.Logf("warm detect: %.1f allocs/op plain, %.1f with nil trace", base, traced)
}
