package core

// DecodePlan: the compile-once / decode-many form of query-set
// detection — the decoder-side twin of internal/deliver's patch plans.
//
// DecodeWithQueriesIndexed pays for query parsing, plan compilation and
// two HMACs per record on every call, which dominates warm detection
// once the document itself is cached and indexed. A DecodePlan hoists
// all of that into CompileDecodePlan and leaves Decode with only the
// per-document work: one index lookup and one bit extraction per
// record, accumulated through pooled scratch buffers so the steady
// state allocates almost nothing (the returned vote table is the one
// unavoidable allocation — it outlives the call by design, since
// tracing correlates it against every recipient's code).
//
// A DecodePlan is immutable after compilation and safe for concurrent
// use: every mutable buffer lives in package-level sync.Pools.

import (
	"sync"

	"wmxml/internal/index"
	"wmxml/internal/obs"
	"wmxml/internal/wmark"
	"wmxml/internal/xmltree"
	"wmxml/internal/xpath"
)

// DecodePlan is a compiled query set bound to its decoding
// configuration. Build with CompileDecodePlan; evaluate with Decode or
// Detect.
type DecodePlan struct {
	cfg      Config
	compiled []CompiledRecord
}

// CompileDecodePlan validates cfg, compiles the query set once
// (parsing, rewriting, plug-in resolution, keyed bit assignment) and
// returns the reusable plan.
func CompileDecodePlan(cfg Config, records []QueryRecord, rw Rewriter) (*DecodePlan, error) {
	cfg = cfg.withDefaults()
	compiled, err := CompileRecords(cfg, records, rw)
	if err != nil {
		return nil, err
	}
	return &DecodePlan{cfg: cfg, compiled: compiled}, nil
}

// Config returns the plan's defaulted configuration.
func (p *DecodePlan) Config() Config { return p.cfg }

// MarkLen returns the bit length of the mark the plan decodes against.
func (p *DecodePlan) MarkLen() int { return len(p.cfg.Mark) }

// Records returns the number of compiled query records.
func (p *DecodePlan) Records() int { return len(p.compiled) }

// scratchPool recycles per-worker xpath evaluation buffers across
// decode calls (a Scratch serves one goroutine at a time).
var scratchPool = sync.Pool{New: func() any { return new(xpath.Scratch) }}

// votesPool recycles the extra workers' vote accumulators. Worker 0's
// table is never pooled: it becomes DecodeResult.Votes and outlives the
// call.
var votesPool = sync.Pool{New: func() any { return new(wmark.Votes) }}

// decodeRecord folds one compiled record into acc — the shared
// per-record switch of the sequential and concurrent paths.
func decodeRecord(cr *CompiledRecord, doc *xmltree.Node, dix xpath.DocIndex, acc *detectAcc, sc *xpath.Scratch) {
	switch {
	case cr.rewriteFailed:
		acc.rewriteErrors++
		acc.votes.AddMiss()
	case cr.alg == nil:
		// No extraction plug-in for the type: the record is inert.
	default:
		acc.queriesRun++
		if cr.DecodeIntoScratch(doc, dix, acc.votes, sc) == 0 {
			acc.queryMisses++
			acc.votes.AddMiss()
		}
	}
}

// Decode executes the plan against doc and returns the raw vote table.
// ix must be an index over doc (or nil to build one per call; pass the
// cached index to stay on the zero-alloc path). The result is
// bit-for-bit identical to DecodeWithQueriesIndexed with the plan's
// config and records.
func (p *DecodePlan) Decode(doc *xmltree.Node, ix *index.Index) *DecodeResult {
	_, dix := docIndex(doc, p.cfg, ix)
	n := len(p.compiled)
	workers := detectWorkers(p.cfg.Concurrency, n)
	if workers <= 1 {
		// Sequential warm path: one scratch, one accumulator, no fan-out
		// bookkeeping. This is what the server's detect workers run.
		sc := scratchPool.Get().(*xpath.Scratch)
		acc := detectAcc{votes: wmark.NewVotes(len(p.cfg.Mark))}
		for i := range p.compiled {
			decodeRecord(&p.compiled[i], doc, dix, &acc, sc)
		}
		scratchPool.Put(sc)
		return &DecodeResult{
			Votes:         acc.votes,
			QueriesRun:    acc.queriesRun,
			QueryMisses:   acc.queryMisses,
			RewriteErrors: acc.rewriteErrors,
		}
	}
	accs := make([]*detectAcc, workers)
	scratches := make([]*xpath.Scratch, workers)
	markLen := len(p.cfg.Mark)
	for w := range accs {
		if w == 0 {
			accs[w] = &detectAcc{votes: wmark.NewVotes(markLen)}
		} else {
			v := votesPool.Get().(*wmark.Votes)
			v.Reset(markLen)
			accs[w] = &detectAcc{votes: v}
		}
		scratches[w] = scratchPool.Get().(*xpath.Scratch)
	}
	forEachWorker(workers, n, func(worker, i int) {
		decodeRecord(&p.compiled[i], doc, dix, accs[worker], scratches[worker])
	})
	res := mergeAccs(accs)
	for w := range accs {
		if w > 0 {
			votesPool.Put(accs[w].votes)
		}
		scratchPool.Put(scratches[w])
	}
	return res
}

// Detect is Decode scored against the plan's mark.
func (p *DecodePlan) Detect(doc *xmltree.Node, ix *index.Index) *DetectResult {
	return p.DetectTraced(doc, ix, nil)
}

// DetectTraced is Detect emitting "decode" and "vote" stage spans on
// tr. A nil tr records nothing and adds no allocations over Detect
// (pinned by TestDecodePlanTracedNoopAllocs) — this is the entry point
// instrumented callers use unconditionally.
func (p *DecodePlan) DetectTraced(doc *xmltree.Node, ix *index.Index, tr *obs.Trace) *DetectResult {
	dsp := tr.StartSpan("decode")
	dec := p.Decode(doc, ix)
	dsp.End()
	vsp := tr.StartSpan("vote")
	res := ScoreDecode(dec, p.cfg)
	vsp.End()
	return res
}

// DecodeTraced is Decode wrapped in a "decode" stage span on tr (nil
// tr records nothing).
func (p *DecodePlan) DecodeTraced(doc *xmltree.Node, ix *index.Index, tr *obs.Trace) *DecodeResult {
	dsp := tr.StartSpan("decode")
	dec := p.Decode(doc, ix)
	dsp.End()
	return dec
}

// DecodeIntoScratch is DecodeInto evaluating the query through sc's
// reusable buffers (see xpath.Scratch for the aliasing contract — the
// selected items are consumed before sc's next use).
func (cr *CompiledRecord) DecodeIntoScratch(doc *xmltree.Node, dix xpath.DocIndex, v *wmark.Votes, sc *xpath.Scratch) int {
	items := cr.q.SelectIndexedScratch(doc, dix, sc)
	for _, item := range items {
		bit, ok := cr.alg.Extract(item.Value(), cr.params)
		if !ok {
			v.AddMiss()
			continue
		}
		v.Add(cr.bitIndex, bit)
	}
	return len(items)
}
