package core

import (
	"sync"
	"sync/atomic"
)

// forEachWorker runs fn(worker, i) for every i in [0, n), distributing
// indices dynamically over the given number of workers. fn receives the
// worker's ordinal so callers can keep per-worker accumulators and merge
// them deterministically afterwards. With workers <= 1 the loop runs
// inline on the calling goroutine — the sequential path allocates
// nothing and takes no locks. A panic in fn is re-raised on the calling
// goroutine (first one wins), matching sequential semantics so callers'
// recover — e.g. the pipeline's per-document isolation — still works.
func forEachWorker(workers, n int, fn func(worker, i int)) {
	if workers <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	if workers > n {
		workers = n
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	var panicOnce sync.Once
	var panicked any
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicOnce.Do(func() { panicked = r })
				}
			}()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(worker, i)
			}
		}(w)
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
}

// firstError returns the lowest-index non-nil error, so concurrent runs
// report the same error a sequential left-to-right pass would.
func firstError(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
