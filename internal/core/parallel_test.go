package core

import (
	"reflect"
	"testing"

	"wmxml/internal/datagen"
	"wmxml/internal/xmltree"
)

// TestConcurrentEmbedMatchesSequential proves the Concurrency option is
// purely an execution detail: at every worker count the marked document
// and the query set Q are bit-for-bit those of the sequential encoder.
func TestConcurrentEmbedMatchesSequential(t *testing.T) {
	ds := datagen.Publications(datagen.PubConfig{Books: 300, Editors: 25, Publishers: 5, Seed: 11})
	cfg := pubConfig(ds, "conc-key", "conc-mark")

	seqDoc := ds.Doc.Clone()
	seqRes, err := Embed(seqDoc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	seqXML := xmltree.SerializeString(seqDoc)

	for _, workers := range []int{2, 4, 8, 100} {
		ccfg := cfg
		ccfg.Concurrency = workers
		doc := ds.Doc.Clone()
		res, err := Embed(doc, ccfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got := xmltree.SerializeString(doc); got != seqXML {
			t.Errorf("workers=%d: marked document differs from sequential", workers)
		}
		if !reflect.DeepEqual(res.Records, seqRes.Records) {
			t.Errorf("workers=%d: query set differs from sequential", workers)
		}
		if res.Carriers != seqRes.Carriers || res.Embedded != seqRes.Embedded ||
			res.Unembeddable != seqRes.Unembeddable {
			t.Errorf("workers=%d: tallies %d/%d/%d, want %d/%d/%d", workers,
				res.Carriers, res.Embedded, res.Unembeddable,
				seqRes.Carriers, seqRes.Embedded, seqRes.Unembeddable)
		}
	}
}

// TestConcurrentDetectMatchesSequential checks both detection modes at
// several worker counts against the sequential decoder's exact result.
func TestConcurrentDetectMatchesSequential(t *testing.T) {
	ds := datagen.Publications(datagen.PubConfig{Books: 300, Editors: 25, Publishers: 5, Seed: 12})
	cfg := pubConfig(ds, "conc-key-2", "conc-mark-2")
	doc := ds.Doc.Clone()
	er, err := Embed(doc, cfg)
	if err != nil {
		t.Fatal(err)
	}

	seqQ, err := DetectWithQueries(doc, cfg, er.Records, nil)
	if err != nil {
		t.Fatal(err)
	}
	seqB, err := DetectBlind(doc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8, 1000} {
		ccfg := cfg
		ccfg.Concurrency = workers
		dq, err := DetectWithQueries(doc, ccfg, er.Records, nil)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(dq, seqQ) {
			t.Errorf("workers=%d: DetectWithQueries = %+v, want %+v", workers, dq, seqQ)
		}
		db, err := DetectBlind(doc, ccfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(db, seqB) {
			t.Errorf("workers=%d: DetectBlind = %+v, want %+v", workers, db, seqB)
		}
	}
}

// TestConcurrentDetectErrorIsFirstByIndex pins down error determinism:
// with several corrupt records the concurrent decoder must report the
// lowest-index one, exactly like a sequential left-to-right pass.
func TestConcurrentDetectErrorIsFirstByIndex(t *testing.T) {
	ds := datagen.Publications(datagen.PubConfig{Books: 60, Seed: 13})
	cfg := pubConfig(ds, "err-key", "err-mark")
	doc := ds.Doc.Clone()
	er, err := Embed(doc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	records := er.Records
	if len(records) < 4 {
		t.Fatalf("need >= 4 records, got %d", len(records))
	}
	records[1].Query = "(((" // lowest corrupt index: expect this one reported
	records[3].Query = ")))"

	cfg.Concurrency = 8
	_, err = DetectWithQueries(doc, cfg, records, nil)
	if err == nil {
		t.Fatal("expected an error for corrupt record queries")
	}
	want := `core: record query "((("`
	if got := err.Error(); len(got) < len(want) || got[:len(want)] != want {
		t.Errorf("error = %q, want prefix %q", got, want)
	}
}

// TestForEachWorkerPanicPropagates: a panic inside a worker must
// re-raise on the calling goroutine (sequential semantics), so callers'
// recover — e.g. the pipeline's per-document isolation — still works
// when Concurrency > 1.
func TestForEachWorkerPanicPropagates(t *testing.T) {
	defer func() {
		if r := recover(); r != "boom" {
			t.Fatalf("recovered %v, want the worker's panic", r)
		}
	}()
	forEachWorker(4, 100, func(_, i int) {
		if i == 37 {
			panic("boom")
		}
	})
	t.Fatal("panic did not propagate")
}

// TestDuplicateTargetsDeduped: a repeated target must not double-embed
// (sequential) nor race on shared nodes (concurrent); results equal the
// single-occurrence run bit-for-bit.
func TestDuplicateTargetsDeduped(t *testing.T) {
	ds := datagen.Publications(datagen.PubConfig{Books: 80, Seed: 21})
	cfg := pubConfig(ds, "dup-key", "dup-mark")
	cfg.Identity.Targets = []string{"db/book/year", "db/book/price"}
	wantDoc := ds.Doc.Clone()
	want, err := Embed(wantDoc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	dcfg := cfg
	dcfg.Identity.Targets = []string{"db/book/year", "db/book/price", "db/book/year", "db/book/price"}
	dcfg.Concurrency = 8
	gotDoc := ds.Doc.Clone()
	got, err := Embed(gotDoc, dcfg)
	if err != nil {
		t.Fatal(err)
	}
	if xmltree.SerializeString(gotDoc) != xmltree.SerializeString(wantDoc) {
		t.Error("duplicated targets changed the marked document")
	}
	if !reflect.DeepEqual(got.Records, want.Records) {
		t.Error("duplicated targets changed the query set")
	}
}

// TestDetectEmptyRecords guards the zero-work edge of the worker pool.
func TestDetectEmptyRecords(t *testing.T) {
	ds := datagen.Publications(datagen.PubConfig{Books: 20, Seed: 14})
	cfg := pubConfig(ds, "empty-key", "empty-mark")
	cfg.Concurrency = 4
	res, err := DetectWithQueries(ds.Doc, cfg, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Detected {
		t.Error("detected a mark with no records")
	}
}
