package core

// Failure-injection tests: corrupted query sets, hostile inputs, and
// degraded documents must produce errors or graceful misses, never
// panics or silent wrong answers.

import (
	"strings"
	"testing"

	"wmxml/internal/datagen"
	"wmxml/internal/identity"
	"wmxml/internal/wmark"
	"wmxml/internal/xmltree"
	"wmxml/internal/xpath"
)

func validRecords(t *testing.T) (*datagen.Dataset, Config, []QueryRecord, *xmltree.Node) {
	t.Helper()
	ds := datagen.Publications(datagen.PubConfig{Books: 120, Seed: 51})
	cfg := Config{
		Key: []byte("fail-key"), Mark: wmark.Random("fail-mark", 32),
		Gamma: 3, Schema: ds.Schema, Catalog: ds.Catalog,
		Identity: identity.Options{Targets: ds.Targets},
	}
	doc := ds.Doc.Clone()
	er, err := Embed(doc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ds, cfg, er.Records, doc
}

func TestDetectCorruptQueryInRecord(t *testing.T) {
	_, cfg, records, doc := validRecords(t)
	bad := append([]QueryRecord(nil), records...)
	bad[0].Query = "/db/[[[broken"
	if _, err := DetectWithQueries(doc, cfg, bad, nil); err == nil {
		t.Errorf("corrupt query accepted")
	}
}

func TestDetectCorruptTypeInRecord(t *testing.T) {
	_, cfg, records, doc := validRecords(t)
	bad := append([]QueryRecord(nil), records...)
	bad[0].Type = "hologram"
	if _, err := DetectWithQueries(doc, cfg, bad, nil); err == nil {
		t.Errorf("corrupt type accepted")
	}
}

func TestDetectTruncatedQuerySet(t *testing.T) {
	_, cfg, records, doc := validRecords(t)
	half := records[:len(records)/2]
	dr, err := DetectWithQueries(doc, cfg, half, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Half the records still vote perfectly; match stays 1.0, coverage
	// shrinks.
	if dr.MatchFraction != 1.0 {
		t.Errorf("truncated Q match = %.3f", dr.MatchFraction)
	}
	if dr.QueriesRun != len(half) {
		t.Errorf("queries run = %d", dr.QueriesRun)
	}
}

func TestDetectRecordsAgainstWrongDocument(t *testing.T) {
	_, cfg, records, _ := validRecords(t)
	other := datagen.Publications(datagen.PubConfig{Books: 120, Seed: 999}).Doc
	dr, err := DetectWithQueries(other, cfg, records, nil)
	if err != nil {
		t.Fatal(err)
	}
	if dr.Detected {
		t.Errorf("records from one document detected on an unrelated one: %+v", dr.Result)
	}
	// Different titles -> near-total query misses.
	if dr.QueryMisses < len(records)/2 {
		t.Errorf("query misses = %d of %d, expected most to miss", dr.QueryMisses, len(records))
	}
}

func TestDetectEmptyRecordSet(t *testing.T) {
	_, cfg, _, doc := validRecords(t)
	dr, err := DetectWithQueries(doc, cfg, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if dr.Detected || dr.VotedBits != 0 {
		t.Errorf("empty Q produced detection: %+v", dr.Result)
	}
}

type failingRewriter struct{}

func (failingRewriter) RewriteQuery(*xpath.Query) (*xpath.Query, error) {
	return nil, errRewriteDown{}
}

type errRewriteDown struct{}

func (errRewriteDown) Error() string { return "rewriter down" }

func TestDetectRewriterFailuresAreMisses(t *testing.T) {
	_, cfg, records, doc := validRecords(t)
	dr, err := DetectWithQueries(doc, cfg, records, failingRewriter{})
	if err != nil {
		t.Fatal(err)
	}
	if dr.RewriteErrors != len(records) {
		t.Errorf("rewrite errors = %d, want %d", dr.RewriteErrors, len(records))
	}
	if dr.Detected {
		t.Errorf("detection with a dead rewriter")
	}
}

func TestEmbedOnEmptyDocument(t *testing.T) {
	ds := datagen.Publications(datagen.PubConfig{Books: 10, Seed: 1})
	cfg := Config{
		Key: []byte("k"), Mark: wmark.Random("m", 16),
		Schema: ds.Schema, Catalog: ds.Catalog,
		Identity: identity.Options{Targets: ds.Targets},
	}
	doc := xmltree.MustParseString(`<db/>`)
	er, err := Embed(doc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if er.Carriers != 0 || er.Bandwidth.Units != 0 {
		t.Errorf("empty document produced carriers: %+v", er)
	}
}

func TestDetectBlindSchemalessDocument(t *testing.T) {
	// Blind detection on a document of a completely different shape:
	// zero units, no detection, no panic.
	ds := datagen.Publications(datagen.PubConfig{Books: 10, Seed: 1})
	cfg := Config{
		Key: []byte("k"), Mark: wmark.Random("m", 16),
		Schema: ds.Schema, Catalog: ds.Catalog,
		Identity: identity.Options{Targets: ds.Targets},
	}
	doc := xmltree.MustParseString(`<html><body>nothing here</body></html>`)
	dr, err := DetectBlind(doc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if dr.Detected || dr.QueriesRun != 0 {
		t.Errorf("foreign document produced votes: %+v", dr)
	}
}

func TestXiByTargetRoundTrip(t *testing.T) {
	ds := datagen.Publications(datagen.PubConfig{Books: 150, Seed: 53})
	cfg := Config{
		Key: []byte("xik"), Mark: wmark.Random("xim", 32),
		Gamma: 2, Xi: 4,
		XiByTarget: map[string]int{"db/book/year": 1, "db/book/price": 2},
		Schema:     ds.Schema, Catalog: ds.Catalog,
		Identity: identity.Options{Targets: ds.Targets},
	}
	doc := ds.Doc.Clone()
	er, err := Embed(doc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Year perturbation bounded by 2^1.
	orig := ds.Doc.Root().ChildElementsNamed("book")
	marked := doc.Root().ChildElementsNamed("book")
	for i := range orig {
		oy := orig[i].FirstChildNamed("year").Text()
		my := marked[i].FirstChildNamed("year").Text()
		if oy != my && !adjacentInt(oy, my, 1) {
			t.Errorf("year moved beyond xi=1: %s -> %s", oy, my)
		}
	}
	dr, err := DetectWithQueries(doc, cfg, er.Records, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !dr.Detected || dr.MatchFraction != 1.0 {
		t.Errorf("per-target xi round trip: %+v", dr.Result)
	}
	// Records carry the target so the decoder can find the override.
	for _, rec := range er.Records {
		if rec.Target == "" {
			t.Errorf("record %q missing target", rec.ID)
		}
	}
}

func adjacentInt(a, b string, maxDelta int) bool {
	pa, pb := 0, 0
	for _, c := range a {
		pa = pa*10 + int(c-'0')
	}
	for _, c := range b {
		pb = pb*10 + int(c-'0')
	}
	d := pa - pb
	if d < 0 {
		d = -d
	}
	return d <= maxDelta
}

func TestRecordsJSONIncludesTarget(t *testing.T) {
	_, _, records, _ := validRecords(t)
	data, err := MarshalQuerySet(records)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"target"`) {
		t.Errorf("marshalled Q lacks target field")
	}
	back, err := UnmarshalQuerySet(data)
	if err != nil {
		t.Fatal(err)
	}
	if back[0].Target != records[0].Target {
		t.Errorf("target lost in round trip")
	}
}
