package core

import (
	"fmt"

	"wmxml/internal/identity"
	"wmxml/internal/index"
	"wmxml/internal/wa"
	"wmxml/internal/wmark"
	"wmxml/internal/xmltree"
)

// EmbedSite is one key-selected identity unit together with the keyed
// embedding parameters insertion would use for it. The carrier choice,
// bit assignment and low-order position all derive from the owner key
// and the unit's identity — never from the mark being embedded — so one
// enumeration serves every payload over the same document. That is the
// factoring delivery-time fingerprinting exploits: compile the sites
// once, then produce any recipient's copy by splicing value bytes.
type EmbedSite struct {
	// Unit is the selected identity unit (its Items are the physical
	// values insertion would rewrite).
	Unit identity.Unit
	// BitIndex is the index into the mark whose bit this unit carries.
	BitIndex int
	// Params carries the keyed low-order embedding position.
	Params wa.Params
	// Alg is the plug-in algorithm for the unit's data type; nil when
	// the type has no watermark bandwidth (insertion still counts the
	// unit's items as unembeddable).
	Alg wa.Algorithm
}

// EnumerateEmbedSites runs the payload-independent half of insertion —
// identity enumeration plus keyed carrier selection — and returns every
// selected unit with its embedding parameters, in the deterministic
// enumeration order EmbedIndexed processes them. cfg.Mark supplies only
// the payload length (bit indices range over len(cfg.Mark)); its values
// are never consulted. A nil ix builds an index internally (unless
// cfg.DisableIndex is set).
func EnumerateEmbedSites(doc *xmltree.Node, cfg Config, ix *index.Index) ([]EmbedSite, identity.Report, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, identity.Report{}, err
	}
	sel, err := cfg.selector()
	if err != nil {
		return nil, identity.Report{}, err
	}
	if cfg.ValidateInput {
		if vs := cfg.Schema.Validate(doc); len(vs) > 0 {
			return nil, identity.Report{}, fmt.Errorf("core: document invalid against schema %q: %s (and %d more)",
				cfg.Schema.Name, vs[0], len(vs)-1)
		}
	}
	_, dix := docIndex(doc, cfg, ix)
	builder := identity.NewBuilder(cfg.Schema, cfg.Catalog, cfg.Identity)
	units, rep, err := builder.UnitsIndexed(doc, dix)
	if err != nil {
		return nil, identity.Report{}, err
	}
	return selectSites(units, sel, cfg), rep, nil
}

// selectSites filters units down to the key-selected carriers and
// attaches each one's embedding parameters — the single code path
// behind EnumerateEmbedSites and EmbedIndexed, so a compiled plan and a
// direct embedding can never disagree about site choice.
func selectSites(units []identity.Unit, sel *wmark.Selector, cfg Config) []EmbedSite {
	var sites []EmbedSite
	for _, u := range units {
		if !sel.Selected(u.ID) {
			continue
		}
		sites = append(sites, EmbedSite{
			Unit:     u,
			BitIndex: sel.BitIndex(u.ID),
			Params:   wa.Params{BitPosition: sel.PositionIn(u.ID, cfg.XiByTarget[u.Scope+"/"+u.Field])},
			Alg:      wa.ForType(u.Type),
		})
	}
	return sites
}
