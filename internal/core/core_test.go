package core

import (
	"strings"
	"testing"

	"wmxml/internal/datagen"
	"wmxml/internal/identity"
	"wmxml/internal/wmark"
	"wmxml/internal/xmltree"
)

func pubConfig(ds *datagen.Dataset, key, markSeed string) Config {
	return Config{
		Key:      []byte(key),
		Mark:     wmark.Random(markSeed, 64),
		Gamma:    4,
		Xi:       4,
		Schema:   ds.Schema,
		Catalog:  ds.Catalog,
		Identity: identity.Options{Targets: ds.Targets},
	}
}

func TestEmbedDetectRoundTrip(t *testing.T) {
	ds := datagen.Publications(datagen.PubConfig{Books: 300, Editors: 30, Publishers: 6, Seed: 42})
	cfg := pubConfig(ds, "secret-key", "mark-1")
	cfg.ValidateInput = true
	doc := ds.Doc.Clone()
	er, err := Embed(doc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if er.Carriers == 0 || er.Embedded == 0 {
		t.Fatalf("nothing embedded: %+v", er)
	}
	if len(er.Records) != er.Carriers {
		t.Errorf("records = %d, carriers = %d", len(er.Records), er.Carriers)
	}
	// Query-based detection.
	dr, err := DetectWithQueries(doc, cfg, er.Records, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !dr.Detected {
		t.Errorf("watermark not detected on marked document: %+v", dr.Result)
	}
	if dr.MatchFraction != 1.0 {
		t.Errorf("match = %.3f, want 1.0 on untouched marked doc", dr.MatchFraction)
	}
	if dr.QueryMisses != 0 {
		t.Errorf("query misses on untouched doc: %d", dr.QueryMisses)
	}
	// Blind detection.
	br, err := DetectBlind(doc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !br.Detected || br.MatchFraction != 1.0 {
		t.Errorf("blind detection failed: %+v", br.Result)
	}
}

func TestEmbedMutatesOnlyTargets(t *testing.T) {
	ds := datagen.Publications(datagen.PubConfig{Books: 100, Seed: 7})
	cfg := pubConfig(ds, "k", "m")
	cfg.Identity.Targets = []string{"db/book/year", "db/book/price"}
	doc := ds.Doc.Clone()
	if _, err := Embed(doc, cfg); err != nil {
		t.Fatal(err)
	}
	// Titles, authors, editors untouched.
	orig := ds.Doc.Root().ChildElements()
	marked := doc.Root().ChildElements()
	for i := range orig {
		for _, f := range []string{"title", "editor", "author"} {
			o := orig[i].FirstChildNamed(f)
			m := marked[i].FirstChildNamed(f)
			if o.Text() != m.Text() {
				t.Fatalf("non-target %s changed: %q -> %q", f, o.Text(), m.Text())
			}
		}
	}
	// Structure unchanged.
	so := xmltree.CollectStats(ds.Doc)
	sm := xmltree.CollectStats(doc)
	if so.Elements != sm.Elements || so.Attributes != sm.Attributes {
		t.Errorf("embedding changed structure: %+v vs %+v", so, sm)
	}
}

func TestEmbedPerturbationSmall(t *testing.T) {
	ds := datagen.Publications(datagen.PubConfig{Books: 200, Seed: 9})
	cfg := pubConfig(ds, "k2", "m2")
	cfg.Identity.Targets = []string{"db/book/year"}
	doc := ds.Doc.Clone()
	if _, err := Embed(doc, cfg); err != nil {
		t.Fatal(err)
	}
	orig := ds.Doc.Root().ChildElements()
	marked := doc.Root().ChildElements()
	changed := 0
	for i := range orig {
		o := orig[i].FirstChildNamed("year").Text()
		m := marked[i].FirstChildNamed("year").Text()
		if o != m {
			changed++
			var ov, mv int
			if _, err := fscan(o, &ov); err != nil {
				t.Fatalf("orig year %q", o)
			}
			if _, err := fscan(m, &mv); err != nil {
				t.Fatalf("marked year %q", m)
			}
			if abs(ov-mv) >= 16 { // xi = 4 -> max change 2^4 - 1
				t.Errorf("year perturbed too much: %s -> %s", o, m)
			}
		}
	}
	if changed == 0 {
		t.Errorf("no year values changed")
	}
}

func TestDetectWrongKey(t *testing.T) {
	ds := datagen.Publications(datagen.PubConfig{Books: 300, Seed: 11})
	cfg := pubConfig(ds, "right-key", "m3")
	doc := ds.Doc.Clone()
	er, err := Embed(doc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	bad := cfg
	bad.Key = []byte("wrong-key")
	dr, err := DetectWithQueries(doc, bad, er.Records, nil)
	if err != nil {
		t.Fatal(err)
	}
	if dr.Detected {
		t.Errorf("wrong key detected the watermark: match=%.3f", dr.MatchFraction)
	}
	br, err := DetectBlind(doc, bad)
	if err != nil {
		t.Fatal(err)
	}
	if br.Detected {
		t.Errorf("wrong key blind-detected: match=%.3f", br.MatchFraction)
	}
}

func TestDetectWrongMark(t *testing.T) {
	ds := datagen.Publications(datagen.PubConfig{Books: 300, Seed: 13})
	cfg := pubConfig(ds, "key", "real-mark")
	doc := ds.Doc.Clone()
	er, err := Embed(doc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	bad := cfg
	bad.Mark = wmark.Random("forged-mark", 64)
	dr, err := DetectWithQueries(doc, bad, er.Records, nil)
	if err != nil {
		t.Fatal(err)
	}
	if dr.Detected {
		t.Errorf("forged mark detected: match=%.3f", dr.MatchFraction)
	}
}

func TestDetectUnmarkedDocument(t *testing.T) {
	ds := datagen.Publications(datagen.PubConfig{Books: 300, Seed: 17})
	cfg := pubConfig(ds, "key", "mark")
	dr, err := DetectBlind(ds.Doc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if dr.Detected {
		t.Errorf("unmarked document detected: match=%.3f voted=%d", dr.MatchFraction, dr.VotedBits)
	}
}

func TestFDConsistentBits(t *testing.T) {
	// All physical duplicates in an FD group must carry the same bit:
	// normalizing them (redundancy removal) must not damage the mark.
	ds := datagen.Publications(datagen.PubConfig{Books: 400, Editors: 12, Publishers: 4, Seed: 19})
	cfg := pubConfig(ds, "fd-key", "fd-mark")
	cfg.Identity.Targets = []string{"db/book/@publisher"}
	cfg.Gamma = 1 // select everything: every group is marked
	doc := ds.Doc.Clone()
	er, err := Embed(doc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if er.Carriers == 0 {
		t.Fatal("no carriers")
	}
	// Group publisher values by editor: within a group all values equal.
	byEditor := make(map[string]map[string]bool)
	for _, b := range doc.Root().ChildElementsNamed("book") {
		ed := b.FirstChildNamed("editor").Text()
		pub, _ := b.Attr("publisher")
		if byEditor[ed] == nil {
			byEditor[ed] = make(map[string]bool)
		}
		byEditor[ed][pub] = true
	}
	for ed, vals := range byEditor {
		if len(vals) != 1 {
			t.Errorf("editor %q has %d distinct publisher values after marking — FD broken", ed, len(vals))
		}
	}
}

func TestConfigValidation(t *testing.T) {
	ds := datagen.Publications(datagen.PubConfig{Books: 10, Seed: 1})
	doc := ds.Doc.Clone()
	if _, err := Embed(doc, Config{}); err == nil {
		t.Errorf("empty config accepted")
	}
	if _, err := Embed(doc, Config{Key: []byte("k")}); err == nil {
		t.Errorf("missing mark accepted")
	}
	if _, err := Embed(doc, Config{Key: []byte("k"), Mark: wmark.Bits{1}}); err == nil {
		t.Errorf("missing schema accepted")
	}
	cfg := pubConfig(ds, "k", "m")
	cfg.Identity.Targets = []string{"bogus"}
	if _, err := Embed(doc, cfg); err == nil {
		t.Errorf("bogus target accepted")
	}
}

func TestValidateInputRejectsInvalid(t *testing.T) {
	ds := datagen.Publications(datagen.PubConfig{Books: 10, Seed: 1})
	cfg := pubConfig(ds, "k", "m")
	cfg.ValidateInput = true
	doc := xmltree.MustParseString(`<db><magazine/></db>`)
	if _, err := Embed(doc, cfg); err == nil {
		t.Errorf("invalid document accepted with ValidateInput")
	}
}

func TestQuerySetSerialization(t *testing.T) {
	ds := datagen.Publications(datagen.PubConfig{Books: 150, Seed: 23})
	cfg := pubConfig(ds, "ser-key", "ser-mark")
	cfg.Gamma = 2
	doc := ds.Doc.Clone()
	er, err := Embed(doc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	data, err := MarshalQuerySet(er.Records)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalQuerySet(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(er.Records) {
		t.Fatalf("records: %d vs %d", len(back), len(er.Records))
	}
	dr, err := DetectWithQueries(doc, cfg, back, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !dr.Detected || dr.MatchFraction != 1.0 {
		t.Errorf("detection after Q round trip: %+v", dr.Result)
	}
	if _, err := UnmarshalQuerySet([]byte("{broken")); err == nil {
		t.Errorf("broken JSON accepted")
	}
}

func TestDetectAfterSerializationRoundTrip(t *testing.T) {
	// The watermark must survive serialize -> parse (i.e. it lives in the
	// data, not in the in-memory representation).
	ds := datagen.Jobs(datagen.JobsConfig{Jobs: 200, Seed: 29})
	cfg := Config{
		Key: []byte("jobs-key"), Mark: wmark.Random("jobs-mark", 48),
		Gamma: 3, Schema: ds.Schema, Catalog: ds.Catalog,
		Identity: identity.Options{Targets: ds.Targets},
	}
	doc := ds.Doc.Clone()
	er, err := Embed(doc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	xml := xmltree.SerializeIndentString(doc)
	doc2, err := xmltree.ParseString(xml)
	if err != nil {
		t.Fatal(err)
	}
	dr, err := DetectWithQueries(doc2, cfg, er.Records, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !dr.Detected || dr.MatchFraction != 1.0 {
		t.Errorf("detection after XML round trip: %+v", dr.Result)
	}
}

func TestLibraryImageChannel(t *testing.T) {
	ds := datagen.Library(datagen.LibraryConfig{Items: 150, Seed: 31})
	cfg := Config{
		Key: []byte("lib-key"), Mark: wmark.Random("lib-mark", 64),
		Gamma: 2, Schema: ds.Schema, Catalog: ds.Catalog,
		Identity: identity.Options{Targets: []string{"library/item/thumb"}},
	}
	doc := ds.Doc.Clone()
	er, err := Embed(doc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if er.Carriers == 0 {
		t.Fatal("no image carriers")
	}
	dr, err := DetectWithQueries(doc, cfg, er.Records, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !dr.Detected || dr.MatchFraction != 1.0 {
		t.Errorf("image-channel detection: %+v", dr.Result)
	}
}

func TestGammaScalesCarriers(t *testing.T) {
	ds := datagen.Publications(datagen.PubConfig{Books: 600, Editors: 60, Seed: 37})
	var prev int
	for i, gamma := range []int{1, 5, 25} {
		cfg := pubConfig(ds, "gamma-key", "gamma-mark")
		cfg.Gamma = gamma
		doc := ds.Doc.Clone()
		er, err := Embed(doc, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && er.Carriers >= prev {
			t.Errorf("gamma %d carriers %d not fewer than previous %d", gamma, er.Carriers, prev)
		}
		prev = er.Carriers
	}
}

func TestEmbedIsIdempotentForDetection(t *testing.T) {
	// Embedding twice with the same parameters yields the same document.
	ds := datagen.Publications(datagen.PubConfig{Books: 100, Seed: 41})
	cfg := pubConfig(ds, "idem", "idem")
	d1 := ds.Doc.Clone()
	if _, err := Embed(d1, cfg); err != nil {
		t.Fatal(err)
	}
	d2 := d1.Clone()
	if _, err := Embed(d2, cfg); err != nil {
		t.Fatal(err)
	}
	if !xmltree.Equal(d1, d2, xmltree.CompareOptions{}) {
		t.Errorf("re-embedding changed the document: %+v", xmltree.FirstDiff(d1, d2))
	}
}

// --- helpers ---

func fscan(s string, v *int) (int, error) {
	n := 0
	neg := false
	i := 0
	if i < len(s) && s[i] == '-' {
		neg = true
		i++
	}
	for ; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return 0, errParse{}
		}
		n = n*10 + int(s[i]-'0')
	}
	if neg {
		n = -n
	}
	*v = n
	return 1, nil
}

type errParse struct{}

func (errParse) Error() string { return "parse error" }

func abs(a int) int {
	if a < 0 {
		return -a
	}
	return a
}

func TestRecordsContainKeyPredicates(t *testing.T) {
	ds := datagen.Publications(datagen.PubConfig{Books: 60, Seed: 43})
	cfg := pubConfig(ds, "qk", "qm")
	doc := ds.Doc.Clone()
	er, err := Embed(doc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range er.Records {
		if !strings.Contains(rec.Query, "=") {
			t.Errorf("record query not value-based: %q", rec.Query)
		}
		if strings.Contains(rec.Query, "position()") {
			t.Errorf("semantic mode produced positional query: %q", rec.Query)
		}
	}
}
