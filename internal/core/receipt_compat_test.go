package core

import (
	"os"
	"reflect"
	"strings"
	"testing"

	"wmxml/internal/datagen"
	"wmxml/internal/identity"
	"wmxml/internal/wmark"
)

// pr2Config reproduces exactly the embedding that generated
// testdata/receipt_pr2.json (a PR 2-era receipt: bare JSON array, no
// version field). Everything is deterministic — dataset seed, HMAC
// carrier selection, value writes — so the same records come out today.
func pr2Config() (*datagen.Dataset, Config) {
	ds := datagen.Publications(datagen.PubConfig{Books: 40, Seed: 7})
	return ds, Config{
		Key:      []byte("pr2-key"),
		Mark:     wmark.FromText("PR2"),
		Gamma:    3,
		Schema:   ds.Schema,
		Catalog:  ds.Catalog,
		Identity: identity.Options{Targets: ds.Targets},
	}
}

// TestReceiptLegacyFixtureCompat: a receipt safeguarded under the PR 2
// format must still load, match a fresh embedding record-for-record,
// and drive a successful detection.
func TestReceiptLegacyFixtureCompat(t *testing.T) {
	fixture, err := os.ReadFile("testdata/receipt_pr2.json")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(fixture), `"version"`) {
		t.Fatal("fixture is not in the legacy format")
	}
	legacy, err := UnmarshalQuerySet(fixture)
	if err != nil {
		t.Fatalf("legacy receipt rejected: %v", err)
	}
	if len(legacy) == 0 {
		t.Fatal("legacy receipt decoded to no records")
	}

	// The identical embedding today yields the identical query set.
	ds, cfg := pr2Config()
	res, err := Embed(ds.Doc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Records, legacy) {
		t.Fatalf("fresh embedding diverged from the safeguarded receipt:\nfresh:  %d records %+v...\nlegacy: %d records %+v...",
			len(res.Records), res.Records[0], len(legacy), legacy[0])
	}

	// And the legacy records detect the watermark on the marked doc.
	det, err := DetectWithQueries(ds.Doc, cfg, legacy, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !det.Detected {
		t.Fatalf("legacy receipt did not detect: match=%.3f coverage=%.3f", det.MatchFraction, det.Coverage)
	}
}

// TestReceiptVersionRoundTrip: the current format carries a version
// field, and re-marshalling a legacy receipt upgrades it losslessly.
func TestReceiptVersionRoundTrip(t *testing.T) {
	recs := []QueryRecord{
		{ID: "u1", Query: "db/book[title='X']/year", Type: "integer", Target: "db/book/year"},
		{ID: "u2", Query: "db/book[title='Y']/price", Type: "decimal", Target: "db/book/price"},
	}
	data, err := MarshalQuerySet(recs)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"version": 1`) {
		t.Fatalf("marshalled receipt has no version field: %s", data)
	}
	back, err := UnmarshalQuerySet(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, recs) {
		t.Fatalf("round trip changed records: %+v", back)
	}

	// Leading whitespace before a legacy array is tolerated.
	if _, err := UnmarshalQuerySet([]byte("\n  [ ]")); err != nil {
		t.Errorf("whitespace-prefixed legacy array rejected: %v", err)
	}

	// A future version is refused loudly instead of misread.
	future := []byte(`{"version": 99, "records": []}`)
	if _, err := UnmarshalQuerySet(future); err == nil || !strings.Contains(err.Error(), "version 99") {
		t.Errorf("future version accepted or wrong error: %v", err)
	}

	// Garbage still fails.
	if _, err := UnmarshalQuerySet([]byte("{broken")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := UnmarshalQuerySet([]byte("[broken")); err == nil {
		t.Error("garbage array accepted")
	}

	// A JSON object that is not a query set envelope (wrong file, or an
	// envelope with a typo'd "records" key) must error, not silently
	// decode to zero queries.
	for _, bad := range []string{`{"foo": 1}`, `{}`, `{"version": 1}`, `{"version": 1, "record": []}`} {
		if _, err := UnmarshalQuerySet([]byte(bad)); err == nil || !strings.Contains(err.Error(), "records") {
			t.Errorf("non-envelope %s accepted or wrong error: %v", bad, err)
		}
	}

	// But the library's own output for an empty set round-trips: a
	// present records field — even an explicit null — is an envelope.
	empty, err := MarshalQuerySet(nil)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(empty), "null") {
		t.Fatalf("MarshalQuerySet(nil) emitted null: %s", empty)
	}
	if back, err := UnmarshalQuerySet(empty); err != nil || len(back) != 0 {
		t.Errorf("empty set round trip: %v, %v", back, err)
	}
	if back, err := UnmarshalQuerySet([]byte(`{"version": 1, "records": null}`)); err != nil || len(back) != 0 {
		t.Errorf("explicit null records rejected: %v, %v", back, err)
	}
}
