package xpath

// Scratch-buffer evaluation: the allocation-free twin of eval.go.
//
// The warm detect path evaluates one identity query per carrier against
// a cached, indexed document — thousands of Plan.Eval calls per request,
// each allocating a context slice, per-step result slices, and predicate
// filter slices that all die microseconds later. A Scratch keeps two
// reusable Item buffers (steps ping-pong between them so a step never
// reads the buffer it writes) plus a dedup map, and the *Into variants
// below append into them instead of allocating.
//
// Correctness contract: EvalScratch returns bit-for-bit the same items
// in the same order as Eval. The scratch path reuses the exact predicate
// and comparison machinery from eval.go; only the buffer management
// differs, and the equivalence suite in scratch_test.go pins the two
// paths together.
//
// Lifetime: the returned slice aliases the Scratch's buffers and is valid
// only until the next call that uses the same Scratch. Callers must copy
// or fully consume results first. A Scratch is not safe for concurrent
// use; pool one per worker (core keeps them in a sync.Pool).

import "wmxml/internal/xmltree"

// Scratch holds reusable evaluation buffers for one evaluator at a time.
// The zero value is ready to use.
type Scratch struct {
	a, b []Item
	seen map[Item]bool
}

// evalStepsScratch drives a context (which must occupy sc.a) through the
// steps, alternating between sc.a and sc.b.
func (sc *Scratch) evalSteps(ctx []Item, steps []Step) []Item {
	intoB := true
	for _, step := range steps {
		var dst []Item
		if intoB {
			dst = sc.b[:0]
		} else {
			dst = sc.a[:0]
		}
		dst = sc.evalStepInto(dst, ctx, step)
		if intoB {
			sc.b = dst[:len(dst):cap(dst)]
		} else {
			sc.a = dst[:len(dst):cap(dst)]
		}
		ctx = dst
		intoB = !intoB
		if len(ctx) == 0 {
			return nil
		}
	}
	return ctx
}

// evalStepInto is evalStep writing into dst. dst must not alias ctx.
func (sc *Scratch) evalStepInto(dst, ctx []Item, step Step) []Item {
	if len(ctx) == 1 {
		// Single-item context: no duplicate tracking needed (mirrors
		// evalStep's fast path).
		dst = stepInto(dst, ctx[0], step)
		return applyPredicatesInPlace(dst, step.Predicates)
	}
	if sc.seen == nil {
		sc.seen = make(map[Item]bool)
	} else {
		clear(sc.seen)
	}
	for _, c := range ctx {
		start := len(dst)
		dst = stepInto(dst, c, step)
		kept := applyPredicatesInPlace(dst[start:], step.Predicates)
		// Dedup-compact the group back onto dst[start:]; the write index
		// never overtakes the read index, so in-place is safe.
		w := start
		for _, it := range kept {
			if !sc.seen[it] {
				sc.seen[it] = true
				dst[w] = it
				w++
			}
		}
		dst = dst[:w]
	}
	return dst
}

// stepInto is stepFrom appending into dst instead of allocating.
func stepInto(dst []Item, c Item, step Step) []Item {
	if c.Attr != "" {
		// Attributes have no children; only self survives.
		if step.Axis == AxisSelf {
			return append(dst, c)
		}
		return dst
	}
	n := c.Node
	switch step.Axis {
	case AxisChild:
		for _, ch := range n.Children {
			if ch.Kind == xmltree.ElementNode && (step.Name == "*" || ch.Name == step.Name) {
				dst = append(dst, Item{Node: ch})
			}
		}
		return dst
	case AxisDescendant:
		for _, ch := range n.Children {
			xmltree.Walk(ch, func(x *xmltree.Node) bool {
				if x.Kind == xmltree.ElementNode && (step.Name == "*" || x.Name == step.Name) {
					dst = append(dst, Item{Node: x})
				}
				return true
			})
		}
		return dst
	case AxisAttribute:
		if n.Kind != xmltree.ElementNode {
			return dst
		}
		if step.Name == "*" {
			for _, a := range n.Attrs {
				dst = append(dst, Item{Node: n, Attr: a.Name})
			}
			return dst
		}
		if n.HasAttr(step.Name) {
			dst = append(dst, Item{Node: n, Attr: step.Name})
		}
		return dst
	case AxisSelf:
		return append(dst, c)
	case AxisParent:
		if n.Parent != nil {
			return append(dst, Item{Node: n.Parent})
		}
		return dst
	case AxisText:
		for _, ch := range n.Children {
			if ch.Kind == xmltree.TextNode {
				dst = append(dst, Item{Node: ch})
			}
		}
		return dst
	default:
		return dst
	}
}

// applyPredicatesInPlace is applyPredicates filtering the group in place.
// The write index never overtakes the read index, so left-compaction
// while iterating is safe; callers must own the slice's backing array.
// Predicate *expressions* still evaluate through the shared machinery in
// eval.go (nested sub-paths there may allocate, but the warm identity
// queries route their one predicate through the key-value index and
// arrive here with preds empty).
func applyPredicatesInPlace(group []Item, preds []Expr) []Item {
	for _, pred := range preds {
		if len(group) == 0 {
			return group
		}
		size := len(group)
		w := 0
		for i, it := range group {
			ec := evalCtx{item: it, position: i + 1, size: size}
			v := evalExpr(pred, ec)
			keep := false
			if num, ok := v.(float64); ok {
				// A bare numeric predicate means position()=N.
				keep = float64(ec.position) == num
			} else {
				keep = truth(v)
			}
			if keep {
				group[w] = it
				w++
			}
		}
		group = group[:w]
	}
	return group
}

// EvalScratch is Eval using sc's buffers for every intermediate and the
// final result. The returned slice aliases sc and is valid only until
// sc's next use; a nil sc degrades to Eval. Fallback shapes (walk plans,
// uncovered roots, grouped positional predicates) take the allocating
// tree walk exactly as Eval does — the scratch optimization only targets
// index-served shapes, which is all the hot path emits.
func (pl *Plan) EvalScratch(root *xmltree.Node, ix DocIndex, sc *Scratch) []Item {
	if sc == nil {
		return pl.Eval(root, ix)
	}
	if pl.kind != planIndexed || ix == nil || !pl.rootOK(root, ix) {
		return pl.path.Eval(root)
	}
	var nodes []*xmltree.Node
	if pl.useKV {
		nodes = ix.Lookup(pl.scope, pl.selRel, pl.selValue)
	} else {
		nodes = ix.ScopeElements(pl.scope)
	}
	if len(nodes) == 0 {
		return nil
	}
	ctx := sc.a[:0]
	for _, e := range nodes {
		ctx = append(ctx, Item{Node: e})
	}
	sc.a = ctx[:len(ctx):cap(ctx)]
	if len(pl.preds) > 0 {
		// Position-dependent predicates are evaluated per parent group by
		// the tree walk; the flattened candidate list only matches when
		// there is provably a single group.
		if !pl.predsPosFree && !pl.singleGroup(ix) {
			return pl.path.Eval(root)
		}
		ctx = applyPredicatesInPlace(ctx, pl.preds)
		if len(ctx) == 0 {
			return nil
		}
	}
	return sc.evalSteps(ctx, pl.tail)
}

// SelectIndexedScratch is SelectIndexed evaluating through sc's reusable
// buffers. The returned slice aliases sc and is valid only until sc's
// next use; a nil index or nil sc degrades to the allocating paths.
func (q *Query) SelectIndexedScratch(root *xmltree.Node, ix DocIndex, sc *Scratch) []Item {
	if ix == nil {
		return q.path.Eval(root)
	}
	return q.Plan().EvalScratch(root, ix, sc)
}
