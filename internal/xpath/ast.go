// Package xpath implements the XPath-subset query engine at the base of
// WmXML (the "XML query engine" of the paper's figure 4).
//
// Identity queries, usability templates and rewritten detection queries
// are all expressions in this language. The supported fragment is the one
// the paper actually uses:
//
//	db/book[title='DB Design']/author
//	db/publisher/author[book='DB Design']/@name
//	//book[year>1995][position()=1]/title
//	db/book[title and not(editor)]/year/text()
//
// — child and descendant ('//') axes, attribute steps, '.'/'..', wildcard
// name tests, and predicates built from relative paths, literals,
// comparisons, 'and'/'or'/'not', and the functions position(), last(),
// count(), contains(), starts-with(), string-length(), number(), name().
//
// The AST is exported because the query rewriter (internal/rewrite)
// transforms identity queries structurally under schema mappings.
package xpath

import (
	"fmt"
	"strconv"
	"strings"
)

// Axis is the navigation direction of a step.
type Axis uint8

// Supported axes.
const (
	// AxisChild selects element children (the default axis).
	AxisChild Axis = iota
	// AxisDescendant selects all elements strictly below the context node
	// (spelled '//' before the step).
	AxisDescendant
	// AxisAttribute selects an attribute of the context element ('@name').
	AxisAttribute
	// AxisSelf is '.'.
	AxisSelf
	// AxisParent is '..'.
	AxisParent
	// AxisText selects the text children ('text()').
	AxisText
)

// Step is one location step: an axis, a name test and zero or more
// predicates. Name "*" matches any element (or any attribute on the
// attribute axis); it is ignored for the self, parent and text axes.
type Step struct {
	Axis       Axis
	Name       string
	Predicates []Expr
}

// Path is a location path: an optional leading '/' (absolute) and a
// sequence of steps.
type Path struct {
	Absolute bool
	Steps    []Step
}

// Expr is a predicate expression node. The concrete types are Number,
// String, PathExpr, Binary and Call.
type Expr interface {
	// String renders the expression in XPath syntax.
	String() string
	exprNode()
}

// Number is a numeric literal.
type Number struct{ Value float64 }

// String is a string literal.
type String struct{ Value string }

// PathExpr embeds a (usually relative) path inside a predicate.
type PathExpr struct{ Path Path }

// Binary is a binary operation: comparison ('=', '!=', '<', '<=', '>',
// '>='), boolean connective ('and', 'or') or arithmetic is not supported.
type Binary struct {
	Op   string
	L, R Expr
}

// Call is a function call. Supported: position, last, count, contains,
// starts-with, not, string-length, number, name, text is parsed as a path
// step instead.
type Call struct {
	Name string
	Args []Expr
}

func (Number) exprNode()   {}
func (String) exprNode()   {}
func (PathExpr) exprNode() {}
func (Binary) exprNode()   {}
func (Call) exprNode()     {}

// String renders the literal.
func (n Number) String() string {
	return strconv.FormatFloat(n.Value, 'g', -1, 64)
}

// String renders the literal with single quotes, switching to double
// quotes when the value itself contains a single quote.
func (s String) String() string {
	if !strings.Contains(s.Value, "'") {
		return "'" + s.Value + "'"
	}
	return `"` + s.Value + `"`
}

// String renders the embedded path.
func (p PathExpr) String() string { return p.Path.String() }

// String renders the operation with minimal parenthesization: boolean
// connectives are parenthesized when nested under another connective.
func (b Binary) String() string {
	l, r := b.L.String(), b.R.String()
	if b.Op == "and" || b.Op == "or" {
		if inner, ok := b.L.(Binary); ok && (inner.Op == "and" || inner.Op == "or") && inner.Op != b.Op {
			l = "(" + l + ")"
		}
		if inner, ok := b.R.(Binary); ok && (inner.Op == "and" || inner.Op == "or") && inner.Op != b.Op {
			r = "(" + r + ")"
		}
		return l + " " + b.Op + " " + r
	}
	return l + b.Op + r
}

// String renders the call.
func (c Call) String() string {
	args := make([]string, len(c.Args))
	for i, a := range c.Args {
		args[i] = a.String()
	}
	return c.Name + "(" + strings.Join(args, ",") + ")"
}

// String renders the step in XPath syntax (without any leading axis
// separator; Path.String handles '/' vs '//').
func (s Step) String() string {
	var sb strings.Builder
	switch s.Axis {
	case AxisAttribute:
		sb.WriteString("@")
		sb.WriteString(s.Name)
	case AxisSelf:
		sb.WriteString(".")
	case AxisParent:
		sb.WriteString("..")
	case AxisText:
		sb.WriteString("text()")
	default:
		sb.WriteString(s.Name)
	}
	for _, p := range s.Predicates {
		sb.WriteString("[")
		sb.WriteString(p.String())
		sb.WriteString("]")
	}
	return sb.String()
}

// String renders the full path in XPath syntax.
func (p Path) String() string {
	var sb strings.Builder
	for i, st := range p.Steps {
		switch {
		case i == 0 && st.Axis == AxisDescendant:
			sb.WriteString("//")
		case i == 0 && p.Absolute:
			sb.WriteString("/")
		case i > 0 && st.Axis == AxisDescendant:
			sb.WriteString("//")
		case i > 0:
			sb.WriteString("/")
		}
		sb.WriteString(st.String())
	}
	if len(p.Steps) == 0 {
		if p.Absolute {
			return "/"
		}
		return "."
	}
	return sb.String()
}

// Clone returns a deep copy of the path.
func (p Path) Clone() Path {
	cp := Path{Absolute: p.Absolute, Steps: make([]Step, len(p.Steps))}
	for i, s := range p.Steps {
		cs := Step{Axis: s.Axis, Name: s.Name}
		if len(s.Predicates) > 0 {
			cs.Predicates = make([]Expr, len(s.Predicates))
			for j, pr := range s.Predicates {
				cs.Predicates[j] = CloneExpr(pr)
			}
		}
		cp.Steps[i] = cs
	}
	return cp
}

// CloneExpr returns a deep copy of a predicate expression.
func CloneExpr(e Expr) Expr {
	switch x := e.(type) {
	case Number:
		return x
	case String:
		return x
	case PathExpr:
		return PathExpr{Path: x.Path.Clone()}
	case Binary:
		return Binary{Op: x.Op, L: CloneExpr(x.L), R: CloneExpr(x.R)}
	case Call:
		args := make([]Expr, len(x.Args))
		for i, a := range x.Args {
			args[i] = CloneExpr(a)
		}
		return Call{Name: x.Name, Args: args}
	default:
		panic(fmt.Sprintf("xpath: CloneExpr: unknown expression type %T", e))
	}
}

// NamePath returns the axis-and-name skeleton of the path ignoring
// predicates: e.g. "db/book/author". Used by the rewriter to match
// mapping rules.
func (p Path) NamePath() string {
	parts := make([]string, 0, len(p.Steps))
	for _, s := range p.Steps {
		switch s.Axis {
		case AxisAttribute:
			parts = append(parts, "@"+s.Name)
		case AxisSelf:
			parts = append(parts, ".")
		case AxisParent:
			parts = append(parts, "..")
		case AxisText:
			parts = append(parts, "text()")
		default:
			parts = append(parts, s.Name)
		}
	}
	return strings.Join(parts, "/")
}
