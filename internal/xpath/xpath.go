package xpath

import (
	"sync"

	"wmxml/internal/xmltree"
)

// Query is a compiled XPath expression. A Query is immutable and safe for
// concurrent use.
type Query struct {
	path Path
	src  string

	planOnce sync.Once
	plan     *Plan
}

// Compile parses src into a Query.
func Compile(src string) (*Query, error) {
	path, err := ParsePath(src)
	if err != nil {
		return nil, err
	}
	return &Query{path: path, src: src}, nil
}

// MustCompile is Compile but panics on error; for fixed expressions.
func MustCompile(src string) *Query {
	q, err := Compile(src)
	if err != nil {
		panic(err)
	}
	return q
}

// FromPath wraps an already-built AST (e.g. the output of the query
// rewriter) as a Query.
func FromPath(p Path) *Query {
	return &Query{path: p.Clone(), src: p.String()}
}

// String returns the query source in XPath syntax. For compiled queries
// this is the original source; for rewritten queries it is the rendering
// of the transformed AST.
func (q *Query) String() string { return q.src }

// Path returns a deep copy of the query's AST for structural inspection
// and rewriting.
func (q *Query) Path() Path { return q.path.Clone() }

// Plan returns the query's compiled execution plan, built lazily on
// first use and cached for the query's lifetime.
func (q *Query) Plan() *Plan {
	q.planOnce.Do(func() { q.plan = CompilePlan(q.path) })
	return q.plan
}

// Select evaluates the query against root and returns all matching items
// in document order.
func (q *Query) Select(root *xmltree.Node) []Item {
	return q.path.Eval(root)
}

// SelectIndexed is Select accelerated by a document index. A nil index
// (or one that does not cover root, or a query shape the index cannot
// serve) degrades to the tree-walking Select; results are identical
// either way.
func (q *Query) SelectIndexed(root *xmltree.Node, ix DocIndex) []Item {
	if ix == nil {
		return q.path.Eval(root)
	}
	return q.Plan().Eval(root, ix)
}

// SelectValuesIndexed is SelectValues accelerated by a document index
// (nil degrades to the tree walk; results are identical either way).
func (q *Query) SelectValuesIndexed(root *xmltree.Node, ix DocIndex) []string {
	items := q.SelectIndexed(root, ix)
	if len(items) == 0 {
		return nil
	}
	out := make([]string, len(items))
	for i, it := range items {
		out[i] = it.Value()
	}
	return out
}

// SelectFirst returns the first matching item, if any.
func (q *Query) SelectFirst(root *xmltree.Node) (Item, bool) {
	items := q.path.Eval(root)
	if len(items) == 0 {
		return Item{}, false
	}
	return items[0], true
}

// SelectValues evaluates the query and returns the string values of all
// matches.
func (q *Query) SelectValues(root *xmltree.Node) []string {
	items := q.path.Eval(root)
	if len(items) == 0 {
		return nil
	}
	out := make([]string, len(items))
	for i, it := range items {
		out[i] = it.Value()
	}
	return out
}
