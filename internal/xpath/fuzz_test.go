package xpath

// Native fuzz targets for the query front-end. Run short in CI
// (go test -fuzz FuzzParsePath -fuzztime 10s); seed corpora live in
// testdata/fuzz.

import (
	"testing"

	"wmxml/internal/xmltree"
)

// fuzzEvalDoc is small but exercises every axis: nested elements,
// repeated tags, attributes, mixed text.
const fuzzEvalDoc = `<db a="1"><b x="y"><c>t1</c><c>t2</c></b><b><c>t3</c></b>mixed</db>`

// FuzzParsePath asserts the parser's contract on arbitrary input: no
// panic, and for accepted input a render -> reparse -> render fixpoint
// (the planner and the rewriter both rely on rendering round-trips).
// Accepted paths must also plan and evaluate without panicking, and the
// plan must agree with the tree walk.
func FuzzParsePath(f *testing.F) {
	for _, seed := range []string{
		"/db/book[title='DB Design']/author",
		"db/publisher/author[book='DB Design']/@name",
		"//book[year>1995][position()=1]/title",
		"db/book[title and not(editor)]/year/text()",
		"/db/book[@id=\"x'y\"]/.." ,
		"*[2]/../.",
		"a[count(b[c='1'])>2 or starts-with(d,'e')]",
		"a[substring(concat(b,'x'),1,2)='bx']",
		"//*",
		"/",
		".",
		"a[1.5]",
		"a['" + `unterminated`,
		"a[[",
		"a]b",
	} {
		f.Add(seed)
	}
	doc := xmltree.MustParseString(fuzzEvalDoc)
	f.Fuzz(func(t *testing.T, src string) {
		path, err := ParsePath(src)
		if err != nil {
			return
		}
		rendered := path.String()
		again, err := ParsePath(rendered)
		if err != nil {
			t.Fatalf("rendering of accepted input does not reparse: %q -> %q: %v", src, rendered, err)
		}
		if again.String() != rendered {
			t.Fatalf("rendering not a fixpoint: %q -> %q -> %q", src, rendered, again.String())
		}
		// Clone must be deep and faithful.
		if cl := path.Clone(); cl.String() != rendered {
			t.Fatalf("clone renders differently: %q vs %q", cl.String(), rendered)
		}
		// Evaluation and planning must not panic, and must agree.
		walk := path.Eval(doc)
		plan := CompilePlan(path)
		indexed := plan.Eval(doc, nil)
		if len(walk) != len(indexed) {
			t.Fatalf("plan (nil index) disagrees with walk: %d vs %d items", len(indexed), len(walk))
		}
		for i := range walk {
			if walk[i] != indexed[i] {
				t.Fatalf("plan (nil index) item %d differs", i)
			}
		}
	})
}

// FuzzLexer asserts the lexer never panics and terminates on arbitrary
// input (including invalid UTF-8 and unterminated literals).
func FuzzLexer(f *testing.F) {
	for _, seed := range []string{
		"/a/b[c='d']", "''", `"`, "1.2.3", "!=<=>=", "@*[]()", "a\x00b", "\xff\xfe",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		lex := &lexer{src: src}
		for i := 0; i <= len(src)+1; i++ {
			tok, err := lex.next()
			if err != nil || tok.kind == tokEOF {
				return
			}
		}
		t.Fatalf("lexer did not terminate on %q", src)
	})
}
