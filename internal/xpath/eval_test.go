package xpath

import (
	"reflect"
	"testing"

	"wmxml/internal/xmltree"
)

const db1 = `<db>
  <book publisher="mkp">
    <title>Readings in Database Systems</title>
    <author>Stonebraker</author>
    <author>Hellerstein</author>
    <editor>Harrypotter</editor>
    <year>1998</year>
    <price>55.50</price>
  </book>
  <book publisher="acm">
    <title>Database Design</title>
    <writer>Berstein</writer>
    <writer>Newcomer</writer>
    <editor>Gamer</editor>
    <year>1998</year>
    <price>42.00</price>
  </book>
  <book publisher="mkp">
    <title>XML Query Processing</title>
    <author>Stonebraker</author>
    <editor>Harrypotter</editor>
    <year>2001</year>
    <price>61.25</price>
  </book>
</db>`

func evalValues(t *testing.T, src, query string) []string {
	t.Helper()
	doc, err := xmltree.ParseString(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	q, err := Compile(query)
	if err != nil {
		t.Fatalf("compile %q: %v", query, err)
	}
	return q.SelectValues(doc)
}

func TestEvalSimplePaths(t *testing.T) {
	cases := []struct {
		query string
		want  []string
	}{
		{"db/book/title", []string{"Readings in Database Systems", "Database Design", "XML Query Processing"}},
		{"/db/book/title", []string{"Readings in Database Systems", "Database Design", "XML Query Processing"}},
		{"db/book/author", []string{"Stonebraker", "Hellerstein", "Stonebraker"}},
		{"db/book/editor", []string{"Harrypotter", "Gamer", "Harrypotter"}},
		{"db/nothing", nil},
		{"wrongroot/book", nil},
	}
	for _, tc := range cases {
		t.Run(tc.query, func(t *testing.T) {
			got := evalValues(t, db1, tc.query)
			if !reflect.DeepEqual(got, tc.want) {
				t.Errorf("got %q, want %q", got, tc.want)
			}
		})
	}
}

func TestEvalPaperQueries(t *testing.T) {
	// The two queries from the paper's §2.1 usability example.
	got := evalValues(t, db1, "db/book[title='Database Design']/writer")
	want := []string{"Berstein", "Newcomer"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("paper query 1: got %q want %q", got, want)
	}
}

func TestEvalPredicates(t *testing.T) {
	cases := []struct {
		query string
		want  []string
	}{
		{"db/book[title='Database Design']/year", []string{"1998"}},
		{"db/book[year=1998]/title", []string{"Readings in Database Systems", "Database Design"}},
		{"db/book[year>2000]/title", []string{"XML Query Processing"}},
		{"db/book[year>=1998 and year<2001]/title", []string{"Readings in Database Systems", "Database Design"}},
		{"db/book[author]/title", []string{"Readings in Database Systems", "XML Query Processing"}},
		{"db/book[not(author)]/title", []string{"Database Design"}},
		{"db/book[writer or author]/title", []string{"Readings in Database Systems", "Database Design", "XML Query Processing"}},
		{"db/book[@publisher='mkp']/title", []string{"Readings in Database Systems", "XML Query Processing"}},
		{"db/book[author='Hellerstein']/title", []string{"Readings in Database Systems"}},
		{"db/book[contains(title,'Database')]/year", []string{"1998", "1998"}},
		{"db/book[starts-with(title,'XML')]/year", []string{"2001"}},
		{"db/book[count(author)=2]/title", []string{"Readings in Database Systems"}},
		{"db/book[count(author)>1]/title", []string{"Readings in Database Systems"}},
		{"db/book[price<50]/title", []string{"Database Design"}},
		{"db/book[year!=1998]/title", []string{"XML Query Processing"}},
		{"db/book[string-length(title)>20]/year", []string{"1998"}},
	}
	for _, tc := range cases {
		t.Run(tc.query, func(t *testing.T) {
			got := evalValues(t, db1, tc.query)
			if !reflect.DeepEqual(got, tc.want) {
				t.Errorf("got %q, want %q", got, tc.want)
			}
		})
	}
}

func TestEvalPositional(t *testing.T) {
	cases := []struct {
		query string
		want  []string
	}{
		{"db/book[1]/title", []string{"Readings in Database Systems"}},
		{"db/book[2]/title", []string{"Database Design"}},
		{"db/book[position()=3]/title", []string{"XML Query Processing"}},
		{"db/book[last()]/title", []string{"XML Query Processing"}},
		{"db/book/author[1]", []string{"Stonebraker", "Stonebraker"}}, // per-context: first author of each book
		{"db/book[4]/title", nil},
	}
	for _, tc := range cases {
		t.Run(tc.query, func(t *testing.T) {
			got := evalValues(t, db1, tc.query)
			if !reflect.DeepEqual(got, tc.want) {
				t.Errorf("got %q, want %q", got, tc.want)
			}
		})
	}
}

func TestEvalPositionIsPerContext(t *testing.T) {
	// author[1] must be evaluated per book, not globally: both books with
	// authors contribute their first author.
	got := evalValues(t, db1, "db/book/author[1]")
	// Dedup keeps first occurrence; both books' first author is
	// "Stonebraker" but they are distinct nodes.
	if len(got) != 2 || got[0] != "Stonebraker" || got[1] != "Stonebraker" {
		t.Errorf("per-context position: got %q", got)
	}
}

func TestEvalDescendant(t *testing.T) {
	cases := []struct {
		query string
		want  int
	}{
		{"//title", 3},
		{"//author", 3},
		{"db//editor", 3},
		{"//book", 3},
		{"//*", 21}, // db + 3 books + 17 leaves
	}
	for _, tc := range cases {
		t.Run(tc.query, func(t *testing.T) {
			got := evalValues(t, db1, tc.query)
			if len(got) != tc.want {
				t.Errorf("got %d items (%q), want %d", len(got), got, tc.want)
			}
		})
	}
}

func TestEvalAttributes(t *testing.T) {
	got := evalValues(t, db1, "db/book/@publisher")
	want := []string{"mkp", "acm", "mkp"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %q, want %q", got, want)
	}
	doc := xmltree.MustParseString(db1)
	items := MustCompile("db/book/@publisher").Select(doc)
	if !items[0].IsAttr() {
		t.Errorf("attribute item not marked as attr")
	}
	if items[0].Name() != "publisher" {
		t.Errorf("attr item name = %q", items[0].Name())
	}
}

func TestEvalWildcardAndParent(t *testing.T) {
	got := evalValues(t, db1, "db/*/title")
	if len(got) != 3 {
		t.Errorf("wildcard: %q", got)
	}
	got2 := evalValues(t, db1, "db/book/title/../year")
	want := []string{"1998", "1998", "2001"}
	if !reflect.DeepEqual(got2, want) {
		t.Errorf("parent axis: got %q want %q", got2, want)
	}
	got3 := evalValues(t, db1, "db/book/.")
	if len(got3) != 3 {
		t.Errorf("self axis: %d", len(got3))
	}
}

func TestEvalTextStep(t *testing.T) {
	doc := xmltree.MustParseString(`<a><b>one</b><b/></a>`)
	items := MustCompile("a/b/text()").Select(doc)
	if len(items) != 1 || items[0].Value() != "one" {
		t.Errorf("text(): %+v", items)
	}
	if items[0].Node.Kind != xmltree.TextNode {
		t.Errorf("text step did not return text node")
	}
}

func TestEvalDedup(t *testing.T) {
	// db//author via multiple context nodes must not duplicate.
	doc := xmltree.MustParseString(`<db><g><book><author>A</author></book></g></db>`)
	items := MustCompile("//book//author").Select(doc)
	if len(items) != 1 {
		t.Errorf("dedup failed: %d items", len(items))
	}
}

func TestItemSetValue(t *testing.T) {
	doc := xmltree.MustParseString(db1)
	q := MustCompile("db/book[title='Database Design']/price")
	it, ok := q.SelectFirst(doc)
	if !ok {
		t.Fatalf("no match")
	}
	it.SetValue("43.99")
	got := evalValues(t, xmltree.SerializeString(doc), "db/book[title='Database Design']/price")
	if !reflect.DeepEqual(got, []string{"43.99"}) {
		t.Errorf("SetValue element: %q", got)
	}

	ai, ok := MustCompile("db/book[1]/@publisher").SelectFirst(doc)
	if !ok {
		t.Fatalf("no attr match")
	}
	ai.SetValue("npm")
	if v, _ := doc.Root().ChildElements()[0].Attr("publisher"); v != "npm" {
		t.Errorf("SetValue attr: %q", v)
	}
}

func TestEvalOnDetachedSubtree(t *testing.T) {
	doc := xmltree.MustParseString(db1)
	book := doc.Root().ChildElements()[1] // Database Design
	q := MustCompile("title")
	items := q.Select(book)
	if len(items) != 1 || items[0].Value() != "Database Design" {
		t.Errorf("relative query on element: %+v", items)
	}
	// Absolute query from an element still addresses the whole document.
	abs := MustCompile("/db/book[1]/title")
	it, ok := abs.SelectFirst(book)
	if !ok || it.Value() != "Readings in Database Systems" {
		t.Errorf("absolute from element: %+v %v", it, ok)
	}
}

func TestSelectFirstNoMatch(t *testing.T) {
	doc := xmltree.MustParseString(db1)
	if _, ok := MustCompile("db/zzz").SelectFirst(doc); ok {
		t.Errorf("SelectFirst on empty result returned ok")
	}
}

func TestFromPath(t *testing.T) {
	p, err := ParsePath("db/book[title='Database Design']/year")
	if err != nil {
		t.Fatal(err)
	}
	q := FromPath(p)
	doc := xmltree.MustParseString(db1)
	got := q.SelectValues(doc)
	if !reflect.DeepEqual(got, []string{"1998"}) {
		t.Errorf("FromPath eval: %q", got)
	}
	if q.String() == "" {
		t.Errorf("FromPath lost source rendering")
	}
}

func TestEvalNumericStringCoercion(t *testing.T) {
	// year=1998 with year stored as text: numeric comparison via coercion.
	got := evalValues(t, db1, "db/book[year='1998']/title")
	if len(got) != 2 {
		t.Errorf("string compare on numeric text: %q", got)
	}
	got2 := evalValues(t, db1, "db/book[number(year)>1997.5]/title")
	if len(got2) != 3 {
		t.Errorf("number(): %q", got2)
	}
}

func TestAbsolutePathInPredicate(t *testing.T) {
	// A predicate can reference the document root: select books whose
	// year equals the first book's year.
	doc := xmltree.MustParseString(db1)
	q := MustCompile("db/book[year=/db/book[1]/year]/title")
	got := q.SelectValues(doc)
	want := []string{"Readings in Database Systems", "Database Design"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("absolute-in-predicate: %q, want %q", got, want)
	}
}

func TestItemValueOnDocumentNode(t *testing.T) {
	doc := xmltree.MustParseString(`<a><b>x</b></a>`)
	it := Item{Node: doc}
	if it.Value() != "x" {
		t.Errorf("document item value = %q", it.Value())
	}
	if it.Name() != "" {
		t.Errorf("document item name = %q", it.Name())
	}
	var empty Item
	if empty.Value() != "" {
		t.Errorf("zero item value = %q", empty.Value())
	}
	empty.SetValue("noop") // must not panic
}

func TestBarePathSelectsDocumentRoot(t *testing.T) {
	doc := xmltree.MustParseString(`<a><b>x</b></a>`)
	q := MustCompile("/")
	items := q.Select(doc)
	if len(items) != 1 || items[0].Node.Kind != xmltree.DocumentNode {
		t.Errorf("bare / selected %+v", items)
	}
}
