package xpath

import (
	"fmt"
	"strconv"

	"wmxml/internal/xmltree"
)

// parser is a recursive-descent parser over the lexer with one token of
// lookahead.
type parser struct {
	lex   *lexer
	tok   token
	prev  token
	depth int
}

// maxExprDepth bounds expression nesting (predicates, parentheses,
// function arguments). Every recursion cycle in the parser passes
// through parseExpr, so the bound caps parser stack depth — and with it
// the depth of every later recursive pass over the AST (rendering,
// cloning, evaluation) — against adversarial inputs like "a[a[a[…".
// Real WmXML queries nest one or two levels.
const maxExprDepth = 200

func newParser(src string) (*parser, error) {
	p := &parser{lex: &lexer{src: src}}
	if err := p.advance(); err != nil {
		return nil, err
	}
	return p, nil
}

func (p *parser) advance() error {
	p.prev = p.tok
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) expect(kind tokenKind, what string) error {
	if p.tok.kind != kind {
		return fmt.Errorf("xpath: expected %s but found %s at offset %d in %q",
			what, p.tok, p.tok.pos, p.lex.src)
	}
	return p.advance()
}

// ParsePath parses a location path expression.
func ParsePath(src string) (Path, error) {
	p, err := newParser(src)
	if err != nil {
		return Path{}, err
	}
	path, err := p.parsePath()
	if err != nil {
		return Path{}, err
	}
	if p.tok.kind != tokEOF {
		return Path{}, fmt.Errorf("xpath: trailing input %s at offset %d in %q", p.tok, p.tok.pos, src)
	}
	return path, nil
}

func (p *parser) parsePath() (Path, error) {
	var path Path
	switch p.tok.kind {
	case tokSlash:
		path.Absolute = true
		if err := p.advance(); err != nil {
			return path, err
		}
		if p.tok.kind == tokEOF {
			return path, nil // bare "/" selects the document node
		}
	case tokDoubleSlash:
		path.Absolute = true
		if err := p.advance(); err != nil {
			return path, err
		}
		step, err := p.parseStep()
		if err != nil {
			return path, err
		}
		step.Axis = descendantOf(step.Axis)
		path.Steps = append(path.Steps, step)
		return p.parseMoreSteps(path)
	}
	step, err := p.parseStep()
	if err != nil {
		return path, err
	}
	path.Steps = append(path.Steps, step)
	return p.parseMoreSteps(path)
}

func (p *parser) parseMoreSteps(path Path) (Path, error) {
	for {
		switch p.tok.kind {
		case tokSlash:
			if err := p.advance(); err != nil {
				return path, err
			}
			step, err := p.parseStep()
			if err != nil {
				return path, err
			}
			path.Steps = append(path.Steps, step)
		case tokDoubleSlash:
			if err := p.advance(); err != nil {
				return path, err
			}
			step, err := p.parseStep()
			if err != nil {
				return path, err
			}
			step.Axis = descendantOf(step.Axis)
			path.Steps = append(path.Steps, step)
		default:
			return path, nil
		}
	}
}

// descendantOf upgrades the child axis to the descendant axis for steps
// introduced by '//'. '//@attr' and '//text()' keep their own axis but
// are rare; we reject them for clarity below.
func descendantOf(a Axis) Axis {
	if a == AxisChild {
		return AxisDescendant
	}
	return a
}

func (p *parser) parseStep() (Step, error) {
	var step Step
	switch p.tok.kind {
	case tokAt:
		if err := p.advance(); err != nil {
			return step, err
		}
		step.Axis = AxisAttribute
		switch p.tok.kind {
		case tokName:
			// Interned so warm name comparisons against parsed trees hit
			// the pointer-equality fast path (see xmltree/intern.go).
			step.Name = xmltree.Intern(p.tok.text)
		case tokStar:
			step.Name = "*"
		default:
			return step, fmt.Errorf("xpath: expected attribute name after '@' at offset %d in %q", p.tok.pos, p.lex.src)
		}
		if err := p.advance(); err != nil {
			return step, err
		}
	case tokDot:
		step.Axis = AxisSelf
		if err := p.advance(); err != nil {
			return step, err
		}
	case tokDotDot:
		step.Axis = AxisParent
		if err := p.advance(); err != nil {
			return step, err
		}
	case tokStar:
		step.Axis = AxisChild
		step.Name = "*"
		if err := p.advance(); err != nil {
			return step, err
		}
	case tokName:
		name := p.tok.text
		if err := p.advance(); err != nil {
			return step, err
		}
		if name == "text" && p.tok.kind == tokLParen {
			if err := p.advance(); err != nil {
				return step, err
			}
			if err := p.expect(tokRParen, "')'"); err != nil {
				return step, err
			}
			step.Axis = AxisText
		} else {
			step.Axis = AxisChild
			step.Name = xmltree.Intern(name)
		}
	default:
		return step, fmt.Errorf("xpath: expected step but found %s at offset %d in %q", p.tok, p.tok.pos, p.lex.src)
	}

	for p.tok.kind == tokLBracket {
		if err := p.advance(); err != nil {
			return step, err
		}
		expr, err := p.parseExpr()
		if err != nil {
			return step, err
		}
		if err := p.expect(tokRBracket, "']'"); err != nil {
			return step, err
		}
		step.Predicates = append(step.Predicates, expr)
	}
	return step, nil
}

// parseExpr parses an or-expression (lowest precedence).
func (p *parser) parseExpr() (Expr, error) {
	p.depth++
	defer func() { p.depth-- }()
	if p.depth > maxExprDepth {
		return nil, fmt.Errorf("xpath: expression nested deeper than %d in %q", maxExprDepth, p.lex.src)
	}
	left, err := p.parseAndExpr()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tokName && p.tok.text == "or" {
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseAndExpr()
		if err != nil {
			return nil, err
		}
		left = Binary{Op: "or", L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseAndExpr() (Expr, error) {
	left, err := p.parseCmpExpr()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tokName && p.tok.text == "and" {
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseCmpExpr()
		if err != nil {
			return nil, err
		}
		left = Binary{Op: "and", L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseCmpExpr() (Expr, error) {
	left, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	if p.tok.kind == tokOp {
		op := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		return Binary{Op: op, L: left, R: right}, nil
	}
	return left, nil
}

func (p *parser) parsePrimary() (Expr, error) {
	switch p.tok.kind {
	case tokString:
		v := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		return String{Value: v}, nil
	case tokNumber:
		f, err := strconv.ParseFloat(p.tok.text, 64)
		if err != nil {
			return nil, fmt.Errorf("xpath: bad number %q at offset %d", p.tok.text, p.tok.pos)
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		return Number{Value: f}, nil
	case tokLParen:
		if err := p.advance(); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(tokRParen, "')'"); err != nil {
			return nil, err
		}
		return e, nil
	case tokName:
		// Function call or relative path. Distinguish by lookahead for
		// '(' — except 'text(' which is a path step.
		name := p.tok.text
		savedPos := p.lex.pos
		savedTok := p.tok
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.tok.kind == tokLParen && name != "text" {
			return p.parseCallArgs(name)
		}
		// Rewind-free: continue parsing the path with the consumed name
		// as its first step.
		path := Path{Steps: []Step{{Axis: AxisChild, Name: xmltree.Intern(name)}}}
		_ = savedPos
		_ = savedTok
		return p.parsePathExprFrom(path)
	case tokAt, tokDot, tokDotDot, tokStar, tokSlash, tokDoubleSlash:
		path, err := p.parsePath()
		if err != nil {
			return nil, err
		}
		return PathExpr{Path: path}, nil
	default:
		return nil, fmt.Errorf("xpath: expected expression but found %s at offset %d in %q", p.tok, p.tok.pos, p.lex.src)
	}
}

// parsePathExprFrom continues parsing a relative path whose first step
// (a plain name) has already been consumed.
func (p *parser) parsePathExprFrom(path Path) (Expr, error) {
	// Predicates on the first step.
	for p.tok.kind == tokLBracket {
		if err := p.advance(); err != nil {
			return nil, err
		}
		expr, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(tokRBracket, "']'"); err != nil {
			return nil, err
		}
		last := &path.Steps[len(path.Steps)-1]
		last.Predicates = append(last.Predicates, expr)
	}
	full, err := p.parseMoreSteps(path)
	if err != nil {
		return nil, err
	}
	return PathExpr{Path: full}, nil
}

func (p *parser) parseCallArgs(name string) (Expr, error) {
	switch name {
	case "position", "last", "count", "contains", "starts-with", "not",
		"string-length", "number", "name", "normalize-space", "string",
		"substring", "substring-before", "substring-after", "concat",
		"translate", "boolean", "true", "false", "floor", "ceiling",
		"round", "sum":
	default:
		return nil, fmt.Errorf("xpath: unknown function %q in %q", name, p.lex.src)
	}
	if err := p.expect(tokLParen, "'('"); err != nil {
		return nil, err
	}
	call := Call{Name: name}
	if p.tok.kind != tokRParen {
		for {
			arg, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			call.Args = append(call.Args, arg)
			if p.tok.kind != tokComma {
				break
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
	}
	if err := p.expect(tokRParen, "')'"); err != nil {
		return nil, err
	}
	if err := checkArity(call); err != nil {
		return nil, err
	}
	return call, nil
}

func checkArity(c Call) error {
	want := map[string][2]int{
		"position":         {0, 0},
		"last":             {0, 0},
		"count":            {1, 1},
		"contains":         {2, 2},
		"starts-with":      {2, 2},
		"not":              {1, 1},
		"string-length":    {0, 1},
		"number":           {0, 1},
		"name":             {0, 1},
		"normalize-space":  {0, 1},
		"string":           {0, 1},
		"substring":        {2, 3},
		"substring-before": {2, 2},
		"substring-after":  {2, 2},
		"concat":           {2, 8},
		"translate":        {3, 3},
		"boolean":          {1, 1},
		"true":             {0, 0},
		"false":            {0, 0},
		"floor":            {1, 1},
		"ceiling":          {1, 1},
		"round":            {1, 1},
		"sum":              {1, 1},
	}
	w, ok := want[c.Name]
	if !ok {
		return fmt.Errorf("xpath: unknown function %q", c.Name)
	}
	if len(c.Args) < w[0] || len(c.Args) > w[1] {
		return fmt.Errorf("xpath: function %s expects %d..%d arguments, got %d", c.Name, w[0], w[1], len(c.Args))
	}
	return nil
}
