package xpath

import (
	"math"
	"strconv"
	"strings"

	"wmxml/internal/xmltree"
)

// Item is a query result: either a node (element, text, document) or an
// attribute of an element. Items are addressable — SetValue writes the
// watermarked value back into the tree — which is what makes queries
// usable as watermark identifiers.
type Item struct {
	// Node is the result node, or the owning element when Attr is set.
	Node *xmltree.Node
	// Attr is the attribute name for attribute items, "" otherwise.
	Attr string
}

// IsAttr reports whether the item addresses an attribute.
func (it Item) IsAttr() bool { return it.Attr != "" }

// Value returns the string value of the item: the attribute value,
// the text of an element, or the character data of a text node.
func (it Item) Value() string {
	if it.Node == nil {
		return ""
	}
	if it.Attr != "" {
		v, _ := it.Node.Attr(it.Attr)
		return v
	}
	return it.Node.Text()
}

// SetValue writes a new string value: the attribute value for attribute
// items, the text content for elements, the character data for text
// nodes.
func (it Item) SetValue(v string) {
	if it.Node == nil {
		return
	}
	if it.Attr != "" {
		it.Node.SetAttr(it.Attr, v)
		return
	}
	it.Node.SetText(v)
}

// Name returns the element tag, attribute name, or "" for other nodes.
func (it Item) Name() string {
	if it.Attr != "" {
		return it.Attr
	}
	if it.Node != nil && it.Node.Kind == xmltree.ElementNode {
		return it.Node.Name
	}
	return ""
}

// Eval evaluates the path against root (usually a document node) and
// returns the matching items in document order without duplicates.
func (p Path) Eval(root *xmltree.Node) []Item {
	start := root
	if p.Absolute {
		if d := root.Document(); d != nil {
			start = d
		} else {
			// Detached subtree: treat its top element as the document
			// element, i.e. an absolute path must still name it.
			top := root
			for top.Parent != nil {
				top = top.Parent
			}
			start = &xmltree.Node{Kind: xmltree.DocumentNode, Children: []*xmltree.Node{top}}
		}
	}
	return evalSteps([]Item{{Node: start}}, p.Steps)
}

// evalSteps drives a context through a sequence of steps, sharing one
// dedup buffer across steps.
func evalSteps(ctx []Item, steps []Step) []Item {
	var seen map[Item]bool
	for _, step := range steps {
		ctx, seen = evalStep(ctx, step, seen)
		if len(ctx) == 0 {
			return nil
		}
	}
	return ctx
}

// evalStep evaluates one step. A single-item context — the dominant case
// for rooted identity queries — needs no duplicate tracking: every axis
// produces each item at most once from one context item. Multi-item
// contexts reuse the caller's dedup map across steps instead of
// allocating one per step.
func evalStep(ctx []Item, step Step, seen map[Item]bool) ([]Item, map[Item]bool) {
	if len(ctx) == 1 {
		group := stepFrom(ctx[0], step)
		return applyPredicates(group, step.Predicates), seen
	}
	if seen == nil {
		seen = make(map[Item]bool)
	} else {
		clear(seen)
	}
	var out []Item
	for _, c := range ctx {
		group := stepFrom(c, step)
		group = applyPredicates(group, step.Predicates)
		for _, it := range group {
			if !seen[it] {
				seen[it] = true
				out = append(out, it)
			}
		}
	}
	return out, seen
}

// stepFrom produces the raw node-set of one step from a single context
// item, before predicates.
func stepFrom(c Item, step Step) []Item {
	if c.Attr != "" {
		// Attributes have no children; only self survives.
		if step.Axis == AxisSelf {
			return []Item{c}
		}
		return nil
	}
	n := c.Node
	switch step.Axis {
	case AxisChild:
		var out []Item
		for _, ch := range n.Children {
			if ch.Kind == xmltree.ElementNode && (step.Name == "*" || ch.Name == step.Name) {
				out = append(out, Item{Node: ch})
			}
		}
		return out
	case AxisDescendant:
		var out []Item
		for _, ch := range n.Children {
			xmltree.Walk(ch, func(x *xmltree.Node) bool {
				if x.Kind == xmltree.ElementNode && (step.Name == "*" || x.Name == step.Name) {
					out = append(out, Item{Node: x})
				}
				return true
			})
		}
		return out
	case AxisAttribute:
		var out []Item
		if n.Kind != xmltree.ElementNode {
			return nil
		}
		if step.Name == "*" {
			for _, a := range n.Attrs {
				out = append(out, Item{Node: n, Attr: a.Name})
			}
			return out
		}
		if n.HasAttr(step.Name) {
			out = append(out, Item{Node: n, Attr: step.Name})
		}
		return out
	case AxisSelf:
		return []Item{c}
	case AxisParent:
		if n.Parent != nil {
			return []Item{{Node: n.Parent}}
		}
		return nil
	case AxisText:
		var out []Item
		for _, ch := range n.Children {
			if ch.Kind == xmltree.TextNode {
				out = append(out, Item{Node: ch})
			}
		}
		return out
	default:
		return nil
	}
}

func applyPredicates(group []Item, preds []Expr) []Item {
	for _, pred := range preds {
		if len(group) == 0 {
			return nil
		}
		var filtered []Item
		size := len(group)
		for i, it := range group {
			ec := evalCtx{item: it, position: i + 1, size: size}
			v := evalExpr(pred, ec)
			if num, ok := v.(float64); ok {
				// A bare numeric predicate means position()=N.
				if float64(ec.position) == num {
					filtered = append(filtered, it)
				}
				continue
			}
			if truth(v) {
				filtered = append(filtered, it)
			}
		}
		group = filtered
	}
	return group
}

// evalCtx is the dynamic context of predicate evaluation.
type evalCtx struct {
	item     Item
	position int
	size     int
}

// evalExpr evaluates a predicate expression to one of: bool, float64,
// string, or []Item (node-set).
func evalExpr(e Expr, ec evalCtx) any {
	switch x := e.(type) {
	case Number:
		return x.Value
	case String:
		return x.Value
	case PathExpr:
		return evalRelative(x.Path, ec)
	case Binary:
		return evalBinary(x, ec)
	case Call:
		return evalCall(x, ec)
	default:
		return false
	}
}

func evalRelative(p Path, ec evalCtx) []Item {
	if p.Absolute {
		if ec.item.Node == nil {
			return nil
		}
		return p.Eval(ec.item.Node)
	}
	return evalSteps([]Item{ec.item}, p.Steps)
}

func evalBinary(b Binary, ec evalCtx) any {
	switch b.Op {
	case "and":
		return truth(evalExpr(b.L, ec)) && truth(evalExpr(b.R, ec))
	case "or":
		return truth(evalExpr(b.L, ec)) || truth(evalExpr(b.R, ec))
	}
	l := evalExpr(b.L, ec)
	r := evalExpr(b.R, ec)
	return compare(b.Op, l, r)
}

// compare implements XPath's existential comparison semantics: when one
// side is a node-set, the comparison holds if it holds for any node in the
// set.
func compare(op string, l, r any) bool {
	if ls, ok := l.([]Item); ok {
		for _, it := range ls {
			if compare(op, it.Value(), r) {
				return true
			}
		}
		return false
	}
	if rs, ok := r.([]Item); ok {
		for _, it := range rs {
			if compare(op, l, it.Value()) {
				return true
			}
		}
		return false
	}
	switch op {
	case "=", "!=":
		eq := equalValues(l, r)
		if op == "=" {
			return eq
		}
		return !eq
	default:
		lf, lok := toNumber(l)
		rf, rok := toNumber(r)
		if !lok || !rok {
			return false
		}
		switch op {
		case "<":
			return lf < rf
		case "<=":
			return lf <= rf
		case ">":
			return lf > rf
		case ">=":
			return lf >= rf
		}
	}
	return false
}

func equalValues(l, r any) bool {
	// If either side is numeric, compare numerically when both convert.
	_, lIsNum := l.(float64)
	_, rIsNum := r.(float64)
	if lIsNum || rIsNum {
		lf, lok := toNumber(l)
		rf, rok := toNumber(r)
		if lok && rok {
			return lf == rf
		}
		return false
	}
	lb, lIsBool := l.(bool)
	rb, rIsBool := r.(bool)
	if lIsBool || rIsBool {
		return truth(l) == truth(r) && (lIsBool || rIsBool) && (lb == truth(r) || rb == truth(l))
	}
	return toString(l) == toString(r)
}

func evalCall(c Call, ec evalCtx) any {
	switch c.Name {
	case "position":
		return float64(ec.position)
	case "last":
		return float64(ec.size)
	case "count":
		set, _ := evalExpr(c.Args[0], ec).([]Item)
		return float64(len(set))
	case "contains":
		a := toString(evalExpr(c.Args[0], ec))
		b := toString(evalExpr(c.Args[1], ec))
		return strings.Contains(a, b)
	case "starts-with":
		a := toString(evalExpr(c.Args[0], ec))
		b := toString(evalExpr(c.Args[1], ec))
		return strings.HasPrefix(a, b)
	case "not":
		return !truth(evalExpr(c.Args[0], ec))
	case "string-length":
		if len(c.Args) == 0 {
			return float64(len(ec.item.Value()))
		}
		return float64(len(toString(evalExpr(c.Args[0], ec))))
	case "number":
		if len(c.Args) == 0 {
			f, _ := toNumber(ec.item.Value())
			return f
		}
		f, ok := toNumber(evalExpr(c.Args[0], ec))
		if !ok {
			return math.NaN()
		}
		return f
	case "name":
		if len(c.Args) == 0 {
			return ec.item.Name()
		}
		set, _ := evalExpr(c.Args[0], ec).([]Item)
		if len(set) == 0 {
			return ""
		}
		return set[0].Name()
	case "normalize-space":
		var s string
		if len(c.Args) == 0 {
			s = ec.item.Value()
		} else {
			s = toString(evalExpr(c.Args[0], ec))
		}
		return strings.Join(strings.Fields(s), " ")
	case "string":
		if len(c.Args) == 0 {
			return ec.item.Value()
		}
		return toString(evalExpr(c.Args[0], ec))
	case "substring":
		s := toString(evalExpr(c.Args[0], ec))
		start, ok := toNumber(evalExpr(c.Args[1], ec))
		if !ok {
			return ""
		}
		// XPath positions are 1-based; round per spec.
		from := int(math.Round(start)) - 1
		to := len(s)
		if len(c.Args) == 3 {
			length, ok := toNumber(evalExpr(c.Args[2], ec))
			if !ok {
				return ""
			}
			to = from + int(math.Round(length))
		}
		if from < 0 {
			from = 0
		}
		if to > len(s) {
			to = len(s)
		}
		if from >= len(s) || to <= from {
			return ""
		}
		return s[from:to]
	case "substring-before":
		s := toString(evalExpr(c.Args[0], ec))
		sep := toString(evalExpr(c.Args[1], ec))
		if i := strings.Index(s, sep); i >= 0 {
			return s[:i]
		}
		return ""
	case "substring-after":
		s := toString(evalExpr(c.Args[0], ec))
		sep := toString(evalExpr(c.Args[1], ec))
		if i := strings.Index(s, sep); i >= 0 {
			return s[i+len(sep):]
		}
		return ""
	case "concat":
		var sb strings.Builder
		for _, a := range c.Args {
			sb.WriteString(toString(evalExpr(a, ec)))
		}
		return sb.String()
	case "translate":
		s := toString(evalExpr(c.Args[0], ec))
		from := []rune(toString(evalExpr(c.Args[1], ec)))
		to := []rune(toString(evalExpr(c.Args[2], ec)))
		var sb strings.Builder
		for _, r := range s {
			replaced := false
			for i, f := range from {
				if r == f {
					if i < len(to) {
						sb.WriteRune(to[i])
					}
					replaced = true
					break
				}
			}
			if !replaced {
				sb.WriteRune(r)
			}
		}
		return sb.String()
	case "boolean":
		return truth(evalExpr(c.Args[0], ec))
	case "true":
		return true
	case "false":
		return false
	case "floor":
		f, ok := toNumber(evalExpr(c.Args[0], ec))
		if !ok {
			return math.NaN()
		}
		return math.Floor(f)
	case "ceiling":
		f, ok := toNumber(evalExpr(c.Args[0], ec))
		if !ok {
			return math.NaN()
		}
		return math.Ceil(f)
	case "round":
		f, ok := toNumber(evalExpr(c.Args[0], ec))
		if !ok {
			return math.NaN()
		}
		return math.Round(f)
	case "sum":
		set, _ := evalExpr(c.Args[0], ec).([]Item)
		total := 0.0
		for _, it := range set {
			f, ok := toNumber(it.Value())
			if !ok {
				return math.NaN()
			}
			total += f
		}
		return total
	default:
		return false
	}
}

// truth converts an evaluation result to a boolean per XPath rules.
func truth(v any) bool {
	switch x := v.(type) {
	case bool:
		return x
	case float64:
		return x != 0 && !math.IsNaN(x)
	case string:
		return x != ""
	case []Item:
		return len(x) > 0
	default:
		return false
	}
}

// toString converts an evaluation result to a string per XPath rules
// (node-sets convert via their first node).
func toString(v any) string {
	switch x := v.(type) {
	case string:
		return x
	case float64:
		if x == math.Trunc(x) && !math.IsInf(x, 0) {
			return strconv.FormatFloat(x, 'f', -1, 64)
		}
		return strconv.FormatFloat(x, 'g', -1, 64)
	case bool:
		if x {
			return "true"
		}
		return "false"
	case []Item:
		if len(x) == 0 {
			return ""
		}
		return x[0].Value()
	default:
		return ""
	}
}

// toNumber converts an evaluation result to a float64, reporting success.
func toNumber(v any) (float64, bool) {
	switch x := v.(type) {
	case float64:
		return x, true
	case bool:
		if x {
			return 1, true
		}
		return 0, true
	case string:
		f, err := strconv.ParseFloat(strings.TrimSpace(x), 64)
		if err != nil {
			return 0, false
		}
		return f, true
	case []Item:
		if len(x) == 0 {
			return 0, false
		}
		return toNumber(x[0].Value())
	default:
		return 0, false
	}
}
