package xpath_test

// Plan equivalence: for every query shape — indexable or not — Eval
// through a document index must return bit-for-bit the same items in
// the same order as the tree-walking evaluator. These tests run the
// real internal/index implementation against a document exercising
// duplicate tags at different depths, multi-parent scopes, attributes,
// FD-style duplicate values and nested same-name elements.

import (
	"reflect"
	"testing"

	"wmxml/internal/index"
	"wmxml/internal/xmltree"
	"wmxml/internal/xpath"
)

const planDoc = `<db>
  <book id="b1"><title>Alpha</title><year>1990</year><author>Ann</author><author>Bob</author><price>10.5</price></book>
  <book id="b2"><title>Beta</title><year>1995</year><author>Cid</author><price>20</price></book>
  <book id="b3"><title>Alpha</title><year>2001</year><author>Ann</author><price>10.5</price></book>
  <book id="b4"><title>Gamma</title><year>1990</year><price>7</price></book>
  <shelf>
    <book id="n1"><title>Nested</title><year>2020</year></book>
  </shelf>
  <pub name="ACM"><book id="p1"><title>Alpha</title></book><book id="p2"><title>Delta</title></book></pub>
  <pub name="IEEE"><book id="p3"><title>Epsilon</title></book></pub>
</db>`

func parsePlanDoc(t testing.TB) *xmltree.Node {
	t.Helper()
	doc, err := xmltree.ParseString(planDoc)
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

var planQueries = []string{
	// Identity-query shapes: key-value lookups.
	"/db/book[title='Beta']/year",
	"/db/book[title='Alpha']/year",    // two matches
	"/db/book[title='Missing']/year",  // miss
	"/db/book[title='Alpha']/@id",     // attribute tail
	"/db/book[@id='b2']/title",        // attribute selector
	"/db/book[author='Ann']/title",    // multi-valued selector
	"/db/book[title='Beta']",          // no tail
	"db/book[title='Beta']/year",      // relative from the document node
	"/db/pub[@name='ACM']/book/title", // tail with further steps
	// Rooted path scans (no predicate).
	"/db/book/year",
	"/db/book",
	"/db/shelf/book/title",
	"/db/missing/x",
	"/db/book/author",
	// Positional predicates (single parent group: exact via index).
	"/db/book[2]/title",
	"/db/book[1]",
	"/db/book[9]/title",
	"/db/book[position()=3]/title",
	"/db/book[last()]/title",
	"/db/book[count(author)]/title", // numeric-valued call: positional
	// Multi-parent scope with positional predicate (per-group semantics;
	// plan must fall back and still match).
	"/db/pub/book[1]/title",
	"/db/pub/book[last()]/title",
	// Descendant-rooted shapes: tag inverted index.
	"//book[title='Alpha']/year",
	"//book/title",
	"//book[3]/title",
	"//title",
	"//book//title",
	"//pub/book/title",
	// Filters that stay position-free.
	"/db/book[year>1994]/title",
	"/db/book[title='Alpha'][year='1990']/author",
	"/db/book[not(author)]/title",
	"/db/book[contains(title,'a')]/title",
	"/db/book[author and price]/title",
	// Shapes the index cannot serve: wildcard, parent axis, text steps.
	"/db/*/title",
	"/db/book/../shelf/book/title",
	"/db/book[title='Alpha']/year/text()",
	"/db/book/year/text()",
	"/*",
	".",
	"/",
}

func TestPlanEquivalence(t *testing.T) {
	doc := parsePlanDoc(t)
	ix := index.New(doc)
	for _, src := range planQueries {
		q, err := xpath.Compile(src)
		if err != nil {
			t.Fatalf("compile %q: %v", src, err)
		}
		want := q.Select(doc)
		got := q.SelectIndexed(doc, ix)
		if !reflect.DeepEqual(want, got) {
			t.Errorf("%q: indexed mismatch\nwalk:    %v\nindexed: %v", src, itemValues(want), itemValues(got))
		}
		// Second run serves the key-value tables from cache.
		if again := q.SelectIndexed(doc, ix); !reflect.DeepEqual(want, again) {
			t.Errorf("%q: cached indexed mismatch", src)
		}
	}
}

// Relative queries evaluated from an instance node (not the document)
// must bypass the index and still be correct.
func TestPlanRelativeFromInstance(t *testing.T) {
	doc := parsePlanDoc(t)
	ix := index.New(doc)
	inst := doc.Root().ChildElementsNamed("book")[1]
	for _, src := range []string{"title", "author", "@id", "..", "."} {
		q, err := xpath.Compile(src)
		if err != nil {
			t.Fatal(err)
		}
		want := q.Select(inst)
		got := q.SelectIndexed(inst, ix)
		if !reflect.DeepEqual(want, got) {
			t.Errorf("%q from instance: mismatch", src)
		}
	}
	// Absolute queries from an instance restart at the document and may
	// use the index.
	q := xpath.MustCompile("/db/book[title='Beta']/year")
	if !reflect.DeepEqual(q.Select(inst), q.SelectIndexed(inst, ix)) {
		t.Error("absolute query from instance: mismatch")
	}
}

// An index built over one document must not serve queries against
// another.
func TestPlanForeignIndexFallsBack(t *testing.T) {
	doc := parsePlanDoc(t)
	other, err := xmltree.ParseString(`<db><book><title>Beta</title><year>3000</year></book></db>`)
	if err != nil {
		t.Fatal(err)
	}
	ix := index.New(other)
	q := xpath.MustCompile("/db/book[title='Beta']/year")
	got := q.SelectIndexed(doc, ix)
	want := q.Select(doc)
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("foreign index: got %v want %v", itemValues(got), itemValues(want))
	}
}

// Absolute queries over a detached subtree treat its top element as the
// document element; the index mirrors that.
func TestPlanDetachedSubtree(t *testing.T) {
	doc := parsePlanDoc(t)
	sub := doc.Root().ChildElementsNamed("book")[0].Clone()
	ix := index.New(sub)
	for _, src := range []string{"/book/title", "/book[title='Alpha']/year", "//author"} {
		q := xpath.MustCompile(src)
		want := q.Select(sub)
		got := q.SelectIndexed(sub, ix)
		if !reflect.DeepEqual(want, got) {
			t.Errorf("%q on detached subtree: walk %v indexed %v", src, itemValues(want), itemValues(got))
		}
	}
}

func TestPlanClassification(t *testing.T) {
	cases := []struct {
		src       string
		indexable bool
		usesKV    bool
		scope     string
	}{
		{"/db/book[title='X']/year", true, true, "db/book"},
		{"/db/book/year", true, false, "db/book/year"}, // clean chain: direct path lookup
		{"//book[title='X']", true, true, "//book"},
		{"/db/book[5]/title", true, false, "db/book"},
		{"/db/*/year", true, false, "db"}, // indexes the clean prefix, walks the rest
		{"//*", false, false, ""},
		{".", false, false, ""},
	}
	for _, c := range cases {
		q := xpath.MustCompile(c.src)
		pl := q.Plan()
		if pl.Indexable() != c.indexable || pl.UsesKV() != c.usesKV || pl.Scope() != c.scope {
			t.Errorf("%q: plan = (indexable %v, kv %v, scope %q), want (%v, %v, %q)",
				c.src, pl.Indexable(), pl.UsesKV(), pl.Scope(), c.indexable, c.usesKV, c.scope)
		}
	}
}

// Element names containing '/' cannot key the index (scope strings join
// segments with '/'); such paths must fall back to the walk, not return
// empty.
func TestPlanSlashInNameFallsBack(t *testing.T) {
	doc := xmltree.NewDocument()
	root := xmltree.Elem("db", xmltree.TextElem("a/b", "v"))
	doc.AppendChild(root)
	p := xpath.Path{Absolute: true, Steps: []xpath.Step{
		{Axis: xpath.AxisChild, Name: "db"},
		{Axis: xpath.AxisChild, Name: "a/b"},
	}}
	q := xpath.FromPath(p)
	if q.Plan().Scope() == "db/a/b" {
		t.Fatal("slash-named step must not join into the scope string")
	}
	ix := index.New(doc)
	want := q.Select(doc)
	got := q.SelectIndexed(doc, ix)
	if len(want) != 1 || !reflect.DeepEqual(want, got) {
		t.Fatalf("slash-named element: walk %v indexed %v", itemValues(want), itemValues(got))
	}
}

func TestPlanNilIndex(t *testing.T) {
	doc := parsePlanDoc(t)
	q := xpath.MustCompile("/db/book[title='Beta']/year")
	var typedNil *index.Index
	for _, ix := range []xpath.DocIndex{nil, typedNil, index.New(nil)} {
		if got := q.SelectIndexed(doc, ix); len(got) != 1 || got[0].Value() != "1995" {
			t.Fatalf("nil-ish index: got %v", itemValues(got))
		}
	}
}

func itemValues(items []xpath.Item) []string {
	out := make([]string, len(items))
	for i, it := range items {
		out[i] = it.Value()
	}
	return out
}
