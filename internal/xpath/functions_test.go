package xpath

import (
	"reflect"
	"testing"

	"wmxml/internal/xmltree"
)

// fnDoc exercises the string/number function library.
const fnDoc = `<db>
  <book><title>Database Design</title><year>1998</year><price>42.50</price></book>
  <book><title>XML Processing</title><year>2001</year><price>61.25</price></book>
  <book><title>data mining</title><year>1995</year><price>10.00</price></book>
</db>`

func fnValues(t *testing.T, query string) []string {
	t.Helper()
	doc := xmltree.MustParseString(fnDoc)
	q, err := Compile(query)
	if err != nil {
		t.Fatalf("compile %q: %v", query, err)
	}
	return q.SelectValues(doc)
}

func TestSubstringFunctions(t *testing.T) {
	cases := []struct {
		query string
		want  []string
	}{
		{"db/book[substring(title,1,8)='Database']/year", []string{"1998"}},
		{"db/book[substring(title,5)='Processing']/year", []string{"2001"}},
		{"db/book[substring-before(title,' ')='Database']/year", []string{"1998"}},
		{"db/book[substring-after(title,' ')='Processing']/year", []string{"2001"}},
		{"db/book[substring-before(title,'zzz')='x']/year", nil}, // separator absent -> ""
	}
	for _, tc := range cases {
		t.Run(tc.query, func(t *testing.T) {
			if got := fnValues(t, tc.query); !reflect.DeepEqual(got, tc.want) {
				t.Errorf("got %q, want %q", got, tc.want)
			}
		})
	}
}

func TestConcatAndTranslate(t *testing.T) {
	cases := []struct {
		query string
		want  []string
	}{
		{"db/book[concat(year,'-',title)='1998-Database Design']/price", []string{"42.50"}},
		// translate as a case-folding tool, the classic idiom.
		{"db/book[translate(title,'ABCDEFGHIJKLMNOPQRSTUVWXYZ','abcdefghijklmnopqrstuvwxyz')='data mining']/year", []string{"1995"}},
		// translate with removal (to shorter than from).
		{"db/book[translate(year,'9','')='18']/title", []string{"Database Design"}},
	}
	for _, tc := range cases {
		t.Run(tc.query, func(t *testing.T) {
			if got := fnValues(t, tc.query); !reflect.DeepEqual(got, tc.want) {
				t.Errorf("got %q, want %q", got, tc.want)
			}
		})
	}
}

func TestBooleanFunctions(t *testing.T) {
	cases := []struct {
		query string
		want  int
	}{
		{"db/book[true()]/title", 3},
		{"db/book[false()]/title", 0},
		{"db/book[boolean(year)]/title", 3},
		{"db/book[boolean(editor)]/title", 0},
		{"db/book[not(false())]/title", 3},
	}
	for _, tc := range cases {
		t.Run(tc.query, func(t *testing.T) {
			if got := len(fnValues(t, tc.query)); got != tc.want {
				t.Errorf("got %d matches, want %d", got, tc.want)
			}
		})
	}
}

func TestNumericFunctions(t *testing.T) {
	cases := []struct {
		query string
		want  []string
	}{
		{"db/book[floor(price)=42]/year", []string{"1998"}},
		{"db/book[ceiling(price)=62]/year", []string{"2001"}},
		{"db/book[round(price)=10]/year", []string{"1995"}},
	}
	for _, tc := range cases {
		t.Run(tc.query, func(t *testing.T) {
			if got := fnValues(t, tc.query); !reflect.DeepEqual(got, tc.want) {
				t.Errorf("got %q, want %q", got, tc.want)
			}
		})
	}
}

func TestSumFunction(t *testing.T) {
	// sum over a relative node-set inside a predicate on the root.
	got := fnValues(t, "db[sum(book/price)>100]/book[1]/title")
	if !reflect.DeepEqual(got, []string{"Database Design"}) {
		t.Errorf("sum predicate: %q", got)
	}
	if got := fnValues(t, "db[sum(book/price)>1000]/book[1]/title"); got != nil {
		t.Errorf("sum overshoot matched: %q", got)
	}
	// sum over non-numeric values is NaN -> false.
	if got := fnValues(t, "db[sum(book/title)>0]/book[1]/title"); got != nil {
		t.Errorf("sum over text matched: %q", got)
	}
}

func TestFunctionArityErrors(t *testing.T) {
	bad := []string{
		"db/book[substring(title)]/year",
		"db/book[substring-before(title)]/year",
		"db/book[concat(title)]/year",
		"db/book[translate(title,'a')]/year",
		"db/book[boolean()]/year",
		"db/book[true(1)]/year",
		"db/book[floor()]/year",
		"db/book[sum()]/year",
	}
	for _, src := range bad {
		if _, err := Compile(src); err == nil {
			t.Errorf("Compile(%q) succeeded, want arity error", src)
		}
	}
}

func TestFunctionRenderRoundTrip(t *testing.T) {
	queries := []string{
		"db/book[substring(title,1,8)='Database']/year",
		"db/book[concat(year,'-',title)='x']/price",
		"db/book[translate(title,'AB','ab')='y']/year",
		"db/book[floor(price)=42]/year",
		"db/book[true() and not(false())]/title",
	}
	for _, src := range queries {
		p, err := ParsePath(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		rendered := p.String()
		if _, err := ParsePath(rendered); err != nil {
			t.Errorf("re-parse %q (from %q): %v", rendered, src, err)
		}
	}
}

func TestSubstringEdgeCases(t *testing.T) {
	doc := xmltree.MustParseString(`<a><b>hello</b></a>`)
	cases := []struct {
		query string
		match bool
	}{
		{"a/b[substring(.,0)='hello']", true},    // start before 1 clamps
		{"a/b[substring(.,99)='']", true},        // start past end -> ""
		{"a/b[substring(.,2,0)='']", true},       // zero length -> ""
		{"a/b[substring(.,1,99)='hello']", true}, // length past end clamps
	}
	for _, tc := range cases {
		q := MustCompile(tc.query)
		if got := len(q.Select(doc)) > 0; got != tc.match {
			t.Errorf("%q matched=%v, want %v", tc.query, got, tc.match)
		}
	}
}
