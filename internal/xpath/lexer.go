package xpath

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokSlash
	tokDoubleSlash
	tokLBracket
	tokRBracket
	tokLParen
	tokRParen
	tokComma
	tokAt
	tokStar
	tokDot
	tokDotDot
	tokName   // element/function names, and the keywords and/or
	tokString // quoted literal
	tokNumber
	tokOp // = != < <= > >=
	tokPipe
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of query"
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

type lexer struct {
	src string
	pos int
}

func (l *lexer) error(pos int, format string, args ...any) error {
	return fmt.Errorf("xpath: %s at offset %d in %q", fmt.Sprintf(format, args...), pos, l.src)
}

func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) && isSpace(l.src[l.pos]) {
		l.pos++
	}
	start := l.pos
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: start}, nil
	}
	c := l.src[l.pos]
	switch c {
	case '/':
		if l.pos+1 < len(l.src) && l.src[l.pos+1] == '/' {
			l.pos += 2
			return token{kind: tokDoubleSlash, text: "//", pos: start}, nil
		}
		l.pos++
		return token{kind: tokSlash, text: "/", pos: start}, nil
	case '[':
		l.pos++
		return token{kind: tokLBracket, text: "[", pos: start}, nil
	case ']':
		l.pos++
		return token{kind: tokRBracket, text: "]", pos: start}, nil
	case '(':
		l.pos++
		return token{kind: tokLParen, text: "(", pos: start}, nil
	case ')':
		l.pos++
		return token{kind: tokRParen, text: ")", pos: start}, nil
	case ',':
		l.pos++
		return token{kind: tokComma, text: ",", pos: start}, nil
	case '@':
		l.pos++
		return token{kind: tokAt, text: "@", pos: start}, nil
	case '*':
		l.pos++
		return token{kind: tokStar, text: "*", pos: start}, nil
	case '|':
		l.pos++
		return token{kind: tokPipe, text: "|", pos: start}, nil
	case '.':
		if l.pos+1 < len(l.src) && l.src[l.pos+1] == '.' {
			l.pos += 2
			return token{kind: tokDotDot, text: "..", pos: start}, nil
		}
		if l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1]) {
			return l.lexNumber()
		}
		l.pos++
		return token{kind: tokDot, text: ".", pos: start}, nil
	case '=':
		l.pos++
		return token{kind: tokOp, text: "=", pos: start}, nil
	case '!':
		if l.pos+1 < len(l.src) && l.src[l.pos+1] == '=' {
			l.pos += 2
			return token{kind: tokOp, text: "!=", pos: start}, nil
		}
		return token{}, l.error(start, "unexpected '!'")
	case '<':
		if l.pos+1 < len(l.src) && l.src[l.pos+1] == '=' {
			l.pos += 2
			return token{kind: tokOp, text: "<=", pos: start}, nil
		}
		l.pos++
		return token{kind: tokOp, text: "<", pos: start}, nil
	case '>':
		if l.pos+1 < len(l.src) && l.src[l.pos+1] == '=' {
			l.pos += 2
			return token{kind: tokOp, text: ">=", pos: start}, nil
		}
		l.pos++
		return token{kind: tokOp, text: ">", pos: start}, nil
	case '\'', '"':
		return l.lexString(c)
	}
	if isDigit(c) {
		return l.lexNumber()
	}
	if isNameStart(rune(c)) {
		return l.lexName()
	}
	return token{}, l.error(start, "unexpected character %q", string(c))
}

func (l *lexer) lexString(quote byte) (token, error) {
	start := l.pos
	l.pos++ // consume opening quote
	var sb strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == quote {
			l.pos++
			return token{kind: tokString, text: sb.String(), pos: start}, nil
		}
		sb.WriteByte(c)
		l.pos++
	}
	return token{}, l.error(start, "unterminated string literal")
}

func (l *lexer) lexNumber() (token, error) {
	start := l.pos
	seenDot := false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if isDigit(c) {
			l.pos++
			continue
		}
		if c == '.' && !seenDot {
			seenDot = true
			l.pos++
			continue
		}
		break
	}
	return token{kind: tokNumber, text: l.src[start:l.pos], pos: start}, nil
}

func (l *lexer) lexName() (token, error) {
	start := l.pos
	for l.pos < len(l.src) {
		r := rune(l.src[l.pos])
		if isNameStart(r) || isDigit(l.src[l.pos]) || r == '-' || r == '.' {
			// A trailing '.' would be ambiguous with the self step; names
			// with dots are accepted mid-name only (e.g. ns.local).
			if r == '.' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '.' {
				break
			}
			l.pos++
			continue
		}
		break
	}
	return token{kind: tokName, text: l.src[start:l.pos], pos: start}, nil
}

func isSpace(c byte) bool { return c == ' ' || c == '\t' || c == '\n' || c == '\r' }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isNameStart(r rune) bool {
	return r == '_' || r == ':' || unicode.IsLetter(r)
}
