package xpath

// The planner lowers a parsed Path into a Plan: an execution strategy
// that serves the query from a per-document index (internal/index)
// instead of walking the tree from the root. The shapes it targets are
// exactly the queries WmXML generates in bulk:
//
//	/db/book[title='X']/year        — identity queries (one per carrier)
//	/db/book[5]/year                — positional queries (ablation baseline)
//	db/book[year>1995]/author       — usability probes
//	//book[title='X']/@publisher    — descendant-rooted lookups
//
// Detection evaluates one identity query per carrier, so the tree-walking
// evaluator costs O(records x queries) child scans per document. A plan
// resolves the predicated step through the index in (amortized) constant
// time and drives only the remaining steps through the evaluator, making
// detection near-linear in document size.
//
// Correctness contract: Plan.Eval returns bit-for-bit the same items in
// the same order as Path.Eval, falling back to the tree walk for any
// shape (or any root/index pairing) the index cannot serve exactly.

import (
	"strings"

	"wmxml/internal/xmltree"
)

// DocIndex is the document-index contract the planner executes against.
// internal/index provides the production implementation; the interface
// lives here so the query layer does not depend on it and tests can fake
// it.
//
// Scope strings come in two forms, both produced only by the planner:
// a rooted tag path like "db/book" (each segment a child step from the
// indexed top), or "//name" (every element with that tag, anywhere).
// Both return elements in document order.
type DocIndex interface {
	// Top returns the node the index was built over — the topmost
	// ancestor of every indexed element. Plans verify it before trusting
	// lookups.
	Top() *xmltree.Node
	// ScopeElements returns the elements addressed by the scope string,
	// in document order. Unknown scopes return nil.
	ScopeElements(scope string) []*xmltree.Node
	// Lookup returns the scope's elements for which the relative path
	// selRel selects at least one item whose string value equals value,
	// in document order.
	Lookup(scope, selRel, value string) []*xmltree.Node
}

type planKind uint8

const (
	// planWalk marks a path the index cannot serve; Eval always walks.
	planWalk planKind = iota
	// planIndexed resolves the scope step through the index.
	planIndexed
)

// Plan is a compiled execution strategy for one Path. Compile once,
// evaluate many times; a Plan is immutable and safe for concurrent use.
type Plan struct {
	path Path
	kind planKind

	// scope addresses the elements of the predicated (or final clean)
	// step: "db/book" or "//book".
	scope string
	// parentScope is scope minus its last segment; used to verify at run
	// time that positional predicates see a single context group.
	parentScope string
	// singleCtx records that the scope step is evaluated from a single
	// context item by construction (first step of the path).
	singleCtx bool

	// useKV routes the first predicate through the key-value index.
	useKV            bool
	selRel, selValue string

	// preds are the scope step's remaining predicates, applied to the
	// looked-up candidates with the standard predicate machinery.
	preds []Expr
	// predsPosFree records that preds never consult the context position
	// (position(), last(), or a numeric predicate value), which makes
	// applying them to the flattened candidate list exact even when the
	// original evaluation would have grouped candidates per parent.
	predsPosFree bool

	// tail is every step after the scope step, driven through the
	// standard evaluator from the candidate set.
	tail []Step
}

// CompilePlan analyzes a path and returns its plan. Paths the index
// cannot serve compile to a fallback plan whose Eval is exactly
// Path.Eval. The path must not be mutated afterwards.
func CompilePlan(p Path) *Plan {
	pl := &Plan{path: p, kind: planWalk}
	n := len(p.Steps)
	if n == 0 {
		return pl
	}

	var preds []Expr
	first := p.Steps[0]
	if first.Axis == AxisDescendant && usableName(first.Name) {
		// "//name" head: served by the tag inverted index. The context is
		// the single start node, so even positional predicates apply to
		// the full candidate list exactly as the evaluator would.
		pl.scope = "//" + first.Name
		pl.singleCtx = true
		preds = first.Predicates
		pl.tail = p.Steps[1:]
	} else {
		// Longest clean child chain (child axis, concrete name, no
		// predicates), optionally ending in one predicated child step.
		m := 0
		for m < n {
			st := p.Steps[m]
			if st.Axis != AxisChild || !usableName(st.Name) || len(st.Predicates) > 0 {
				break
			}
			m++
		}
		k := m // index of the scope step
		if m < n {
			st := p.Steps[m]
			if st.Axis == AxisChild && usableName(st.Name) && len(st.Predicates) > 0 {
				preds = st.Predicates
			} else if m == 0 {
				return pl // unusable first step
			} else {
				k = m - 1 // scope is the clean prefix; the rest is tail
			}
		} else {
			k = n - 1
		}
		segs := make([]string, k+1)
		for i := 0; i <= k; i++ {
			segs[i] = p.Steps[i].Name
		}
		pl.scope = strings.Join(segs, "/")
		pl.parentScope = strings.Join(segs[:len(segs)-1], "/")
		pl.singleCtx = k == 0
		pl.tail = p.Steps[k+1:]
	}

	if len(preds) > 0 {
		if rel, val, ok := eqPredicate(preds[0]); ok {
			pl.useKV = true
			pl.selRel = rel
			pl.selValue = val
			preds = preds[1:]
		}
		pl.preds = preds
		pl.predsPosFree = predsPositionFree(preds)
	}
	pl.kind = planIndexed
	return pl
}

// Indexable reports whether the plan can use an index at all (a
// non-indexable plan always walks the tree).
func (pl *Plan) Indexable() bool { return pl.kind == planIndexed }

// Scope returns the index scope the plan resolves ("" for fallback
// plans); primarily for diagnostics and tests.
func (pl *Plan) Scope() string { return pl.scope }

// UsesKV reports whether the plan routes a predicate through the
// key-value index.
func (pl *Plan) UsesKV() bool { return pl.useKV }

// Eval executes the plan against root. With a nil index, a fallback
// plan, or a root the index does not cover, it degrades to Path.Eval.
func (pl *Plan) Eval(root *xmltree.Node, ix DocIndex) []Item {
	if pl.kind != planIndexed || ix == nil || !pl.rootOK(root, ix) {
		return pl.path.Eval(root)
	}
	var nodes []*xmltree.Node
	if pl.useKV {
		nodes = ix.Lookup(pl.scope, pl.selRel, pl.selValue)
	} else {
		nodes = ix.ScopeElements(pl.scope)
	}
	if len(nodes) == 0 {
		return nil
	}
	ctx := make([]Item, len(nodes))
	for i, e := range nodes {
		ctx[i] = Item{Node: e}
	}
	if len(pl.preds) > 0 {
		// Position-dependent predicates are evaluated per parent group by
		// the tree walk; the flattened candidate list only matches when
		// there is provably a single group.
		if !pl.predsPosFree && !pl.singleGroup(ix) {
			return pl.path.Eval(root)
		}
		ctx = applyPredicates(ctx, pl.preds)
		if len(ctx) == 0 {
			return nil
		}
	}
	return evalSteps(ctx, pl.tail)
}

// rootOK verifies the index covers evaluation from this root: the root's
// topmost ancestor must be the indexed top, and a relative path must
// start at the document node itself (where the index's rooted paths
// begin).
func (pl *Plan) rootOK(root *xmltree.Node, ix DocIndex) bool {
	if root == nil {
		return false
	}
	top := root
	for top.Parent != nil {
		top = top.Parent
	}
	if top != ix.Top() || top == nil {
		return false
	}
	if pl.path.Absolute {
		return true
	}
	return root == top && top.Kind == xmltree.DocumentNode
}

// singleGroup reports whether the scope step sees exactly one context
// group, making flat positional predicate application exact.
func (pl *Plan) singleGroup(ix DocIndex) bool {
	if pl.singleCtx {
		return true
	}
	return len(ix.ScopeElements(pl.parentScope)) <= 1
}

// usableName reports whether a step name can key the index. Names
// containing '/' are rejected: index scope strings join segments with
// '/', so such a name would resolve to the wrong path instead of
// falling back to the tree walk.
func usableName(name string) bool {
	return name != "" && name != "*" && !strings.ContainsRune(name, '/')
}

// eqPredicate matches the identity-query predicate shape
// [relpath = 'literal'] (either operand order) and returns the rendered
// relative selector and the literal. The selector must round-trip
// through the parser because the index re-parses it when building a
// key-value table.
func eqPredicate(e Expr) (rel, val string, ok bool) {
	b, isBinary := e.(Binary)
	if !isBinary || b.Op != "=" {
		return "", "", false
	}
	pe, peOK := b.L.(PathExpr)
	lit, litOK := b.R.(String)
	if !peOK || !litOK {
		pe, peOK = b.R.(PathExpr)
		lit, litOK = b.L.(String)
	}
	if !peOK || !litOK || pe.Path.Absolute {
		return "", "", false
	}
	rel = pe.Path.String()
	rp, err := ParsePath(rel)
	if err != nil || rp.String() != rel {
		return "", "", false
	}
	return rel, lit.Value, true
}

// PositionFreePreds reports whether every predicate in preds is
// independent of the context position — exported for the streaming
// layer's chunk-safety analysis, which must reject queries whose
// result depends on how a sibling list is partitioned.
func PositionFreePreds(preds []Expr) bool { return predsPositionFree(preds) }

// predsPositionFree reports whether every predicate is independent of
// the context position. A predicate depends on position when it calls
// position() or last(), or when its value is numeric (a numeric
// predicate means position()=N) — so only expressions with statically
// boolean or string results qualify. Sub-paths nested inside a predicate
// evaluate in their own context and never disqualify it.
func predsPositionFree(preds []Expr) bool {
	for _, p := range preds {
		if !predPositionFree(p) {
			return false
		}
	}
	return true
}

func predPositionFree(e Expr) bool {
	switch x := e.(type) {
	case String, PathExpr:
		return true
	case Binary:
		// Comparisons and connectives yield booleans.
		return exprAvoidsPosition(x)
	case Call:
		switch x.Name {
		case "not", "contains", "starts-with", "boolean", "true", "false",
			"string", "concat", "normalize-space", "substring",
			"substring-before", "substring-after", "translate", "name":
			return exprAvoidsPosition(x)
		}
		// Numeric-valued calls (position, last, count, sum, ...) act as
		// positional predicates.
		return false
	default:
		return false // Number and anything unknown
	}
}

// exprAvoidsPosition walks an expression tree rejecting position()/last()
// anywhere outside nested sub-paths (whose predicates have their own
// context).
func exprAvoidsPosition(e Expr) bool {
	switch x := e.(type) {
	case Binary:
		return exprAvoidsPosition(x.L) && exprAvoidsPosition(x.R)
	case Call:
		if x.Name == "position" || x.Name == "last" {
			return false
		}
		for _, a := range x.Args {
			if !exprAvoidsPosition(a) {
				return false
			}
		}
		return true
	default:
		return true
	}
}
