package xpath

import (
	"strings"
	"testing"
)

func TestParseRoundTrip(t *testing.T) {
	// Parsing then rendering then re-parsing must be a fixed point.
	cases := []string{
		"db/book/author",
		"/db/book/author",
		"db/book[title='DB Design']/author",
		`db/publisher/author[book='DB Design']/@name`,
		"//book/title",
		"db//year",
		"db/book[year>1995]/title",
		"db/book[year>=1995 and year<=2000]/title",
		"db/book[title or editor]/year",
		"db/book[not(editor)]/title",
		"db/book[contains(title,'Data')]/year",
		"db/book[starts-with(title,'Read')]/year",
		"db/book[position()=2]/title",
		"db/book[2]/title",
		"db/book[last()]/title",
		"db/book[count(author)>1]/title",
		"db/book/year/text()",
		"db/book[@publisher='mkp']/title",
		"db/book/@publisher",
		"*/book/*",
		"db/book[title][year]/author",
		"db/book[author='X' or author='Y']/title",
		".",
		"..",
		"db/book/..",
		"db/book[string-length(title)>3]/title",
		"db/book[.='x']/title",
	}
	for _, src := range cases {
		t.Run(src, func(t *testing.T) {
			p1, err := ParsePath(src)
			if err != nil {
				t.Fatalf("parse %q: %v", src, err)
			}
			rendered := p1.String()
			p2, err := ParsePath(rendered)
			if err != nil {
				t.Fatalf("re-parse %q (from %q): %v", rendered, src, err)
			}
			if p2.String() != rendered {
				t.Errorf("render not fixed point: %q -> %q", rendered, p2.String())
			}
		})
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"db/",
		"db//",
		"db/book[",
		"db/book[]",
		"db/book[title=']",
		"db/book[title='x'",
		"db/book[unknownfn(title)]",
		"db/@",
		"db/book[!title]",
		"db/book]]",
		"db/book[position(1)]",
		"db/book[contains(title)]",
		"db/book[count()]",
		"db/book[title='x' extra]",
		"db/$x",
	}
	for _, src := range cases {
		if _, err := ParsePath(src); err == nil {
			t.Errorf("ParsePath(%q) succeeded, want error", src)
		}
	}
}

func TestParseAbsoluteVsRelative(t *testing.T) {
	abs, err := ParsePath("/db/book")
	if err != nil {
		t.Fatal(err)
	}
	if !abs.Absolute {
		t.Errorf("leading / not marked absolute")
	}
	rel, err := ParsePath("db/book")
	if err != nil {
		t.Fatal(err)
	}
	if rel.Absolute {
		t.Errorf("relative path marked absolute")
	}
	if len(abs.Steps) != 2 || len(rel.Steps) != 2 {
		t.Errorf("step counts: %d, %d", len(abs.Steps), len(rel.Steps))
	}
}

func TestParseDescendantAxis(t *testing.T) {
	p, err := ParsePath("//book//title")
	if err != nil {
		t.Fatal(err)
	}
	if p.Steps[0].Axis != AxisDescendant || p.Steps[1].Axis != AxisDescendant {
		t.Errorf("axes = %v, %v", p.Steps[0].Axis, p.Steps[1].Axis)
	}
	if got := p.String(); got != "//book//title" {
		t.Errorf("render = %q", got)
	}
}

func TestParseAttributeStep(t *testing.T) {
	p, err := ParsePath("db/book/@publisher")
	if err != nil {
		t.Fatal(err)
	}
	last := p.Steps[len(p.Steps)-1]
	if last.Axis != AxisAttribute || last.Name != "publisher" {
		t.Errorf("attribute step = %+v", last)
	}
	p2, err := ParsePath("db/book/@*")
	if err != nil {
		t.Fatal(err)
	}
	if p2.Steps[2].Name != "*" {
		t.Errorf("wildcard attribute = %+v", p2.Steps[2])
	}
}

func TestParsePredicateStructure(t *testing.T) {
	p, err := ParsePath("db/book[title='X' and year>1990]/author")
	if err != nil {
		t.Fatal(err)
	}
	preds := p.Steps[1].Predicates
	if len(preds) != 1 {
		t.Fatalf("predicates = %d", len(preds))
	}
	b, ok := preds[0].(Binary)
	if !ok || b.Op != "and" {
		t.Fatalf("top expr = %#v", preds[0])
	}
	l, ok := b.L.(Binary)
	if !ok || l.Op != "=" {
		t.Errorf("left = %#v", b.L)
	}
	r, ok := b.R.(Binary)
	if !ok || r.Op != ">" {
		t.Errorf("right = %#v", b.R)
	}
}

func TestParseStringQuotes(t *testing.T) {
	p, err := ParsePath(`db/book[title="it's"]/year`)
	if err != nil {
		t.Fatal(err)
	}
	rendered := p.String()
	if !strings.Contains(rendered, `"it's"`) {
		t.Errorf("render = %q, want double-quoted literal", rendered)
	}
	if _, err := ParsePath(rendered); err != nil {
		t.Errorf("re-parse %q: %v", rendered, err)
	}
}

func TestParseTextStep(t *testing.T) {
	p, err := ParsePath("db/book/title/text()")
	if err != nil {
		t.Fatal(err)
	}
	if p.Steps[3].Axis != AxisText {
		t.Errorf("text step axis = %v", p.Steps[3].Axis)
	}
}

func TestCloneIndependence(t *testing.T) {
	p, err := ParsePath("db/book[title='X']/year")
	if err != nil {
		t.Fatal(err)
	}
	cp := p.Clone()
	cp.Steps[1].Predicates[0] = String{Value: "mutated"}
	orig := p.Steps[1].Predicates[0]
	if _, ok := orig.(Binary); !ok {
		t.Errorf("clone mutation leaked into original: %#v", orig)
	}
}

func TestNamePath(t *testing.T) {
	p, err := ParsePath("db/book[title='X']/@publisher")
	if err != nil {
		t.Fatal(err)
	}
	if got := p.NamePath(); got != "db/book/@publisher" {
		t.Errorf("NamePath = %q", got)
	}
}

func TestMustCompilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("MustCompile on bad input did not panic")
		}
	}()
	MustCompile("db/[")
}
