package server

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"

	"wmxml/internal/index"
	"wmxml/internal/registry"
	"wmxml/internal/xmltree"
)

// TestDetectMissSingleflight is the thundering-herd regression test:
// 16 concurrent cold detects of the same body must trigger exactly one
// parse+index — one leader misses, the other 15 coalesce onto its
// flight. Before the fix each of the 16 did the full work.
//
// The CacheFill hook doubles as a deterministic barrier: the leader
// blocks inside the miss until all 15 waiters have joined the flight,
// so the assertion cannot be satisfied by lucky serialization (requests
// finishing before the rest arrive would hit the cache instead, and
// coalesced would come up short).
func TestDetectMissSingleflight(t *testing.T) {
	const clients = 16
	var s *Server
	fill := func(sum [sha256.Size]byte, body []byte) (*xmltree.Node, *index.Index, bool) {
		deadline := time.Now().Add(10 * time.Second)
		for {
			if coalesced, _ := s.CacheFlightStats(); coalesced >= clients-1 {
				return nil, nil, false // all waiters parked; do the real parse
			}
			if time.Now().After(deadline) {
				return nil, nil, false
			}
			time.Sleep(time.Millisecond)
		}
	}
	s, ts := newTestServer(t, Options{Workers: clients, CacheFill: fill})
	registerOwner(t, ts.URL, "acme")
	code, marked, _ := doAs(t, "key-acme", "POST", ts.URL+"/v1/embed?owner=acme&doc=d.xml", pubsXML(t, 150, 7))
	if code != http.StatusOK {
		t.Fatalf("embed: %d %s", code, marked)
	}

	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			code, body, _ := doAs(t, "key-acme", "POST", ts.URL+"/v1/detect?owner=acme", marked)
			if code != http.StatusOK {
				errs <- fmt.Errorf("detect: %d %s", code, body)
				return
			}
			var det struct {
				Detected bool `json:"detected"`
			}
			if err := json.Unmarshal(body, &det); err != nil || !det.Detected {
				errs <- fmt.Errorf("detect verdict: %s (%v)", body, err)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	hits, misses, _, _ := s.CacheStats()
	coalesced, _ := s.CacheFlightStats()
	if misses != 1 {
		t.Errorf("16 concurrent cold detects parsed %d times, want exactly 1", misses)
	}
	if coalesced != clients-1 {
		t.Errorf("coalesced waiters = %d, want %d", coalesced, clients-1)
	}
	if hits != 0 {
		t.Errorf("cache hits = %d during the cold burst, want 0", hits)
	}

	// The flight is retired: a fresh request is a plain cache hit.
	if code, body, _ := doAs(t, "key-acme", "POST", ts.URL+"/v1/detect?owner=acme", marked); code != http.StatusOK {
		t.Fatalf("post-burst detect: %d %s", code, body)
	}
	if hits, _, _, _ := s.CacheStats(); hits != 1 {
		t.Errorf("post-burst hits = %d, want 1", hits)
	}
}

// TestSingleflightErrorPropagates: a leader whose body fails to parse
// must hand the error to every waiter — not a zero-value document.
func TestSingleflightErrorPropagates(t *testing.T) {
	c := newDocCache(4, 0)
	key := sha256.Sum256([]byte("bad body"))
	call, leader := c.join(key)
	if !leader {
		t.Fatal("first join was not the leader")
	}
	waiter, leader2 := c.join(key)
	if leader2 || waiter != call {
		t.Fatal("second join did not coalesce onto the live flight")
	}
	wantErr := fmt.Errorf("parse exploded")
	c.complete(key, call, cachedDoc{}, wantErr)
	waiter.wg.Wait()
	if waiter.err != wantErr {
		t.Fatalf("waiter saw err=%v, want the leader's error", waiter.err)
	}
	// The flight is gone; the next join starts fresh.
	if _, leader := c.join(key); !leader {
		t.Fatal("join after complete did not start a new flight")
	}
}

// TestCacheFillHook: a miss satisfied by the peer-fill hook skips the
// local parse, counts as a fill, and still populates the cache.
func TestCacheFillHook(t *testing.T) {
	var hookCalls int
	fill := func(sum [sha256.Size]byte, body []byte) (*xmltree.Node, *index.Index, bool) {
		hookCalls++
		doc, err := xmltree.ParseBytes(body, xmltree.ParseOptions{})
		if err != nil {
			return nil, nil, false
		}
		return doc, index.New(doc), true
	}
	s, ts := newTestServer(t, Options{CacheFill: fill})
	registerOwner(t, ts.URL, "acme")
	code, marked, _ := doAs(t, "key-acme", "POST", ts.URL+"/v1/embed?owner=acme&doc=d.xml", pubsXML(t, 120, 3))
	if code != http.StatusOK {
		t.Fatalf("embed: %d %s", code, marked)
	}
	code, body, _ := doAs(t, "key-acme", "POST", ts.URL+"/v1/detect?owner=acme", marked)
	if code != http.StatusOK {
		t.Fatalf("detect: %d %s", code, body)
	}
	var det struct {
		Detected bool `json:"detected"`
	}
	if err := json.Unmarshal(body, &det); err != nil || !det.Detected {
		t.Fatalf("detect through hook-filled cache: %s (%v)", body, err)
	}
	if _, fills := s.CacheFlightStats(); fills != 1 || hookCalls != 1 {
		t.Errorf("fills=%d hookCalls=%d, want 1 and 1", fills, hookCalls)
	}
	// Second detect: plain hit, the hook is not consulted again.
	if code, _, _ := doAs(t, "key-acme", "POST", ts.URL+"/v1/detect?owner=acme", marked); code != http.StatusOK {
		t.Fatal("repeat detect failed")
	}
	if hookCalls != 1 {
		t.Errorf("cache hit consulted the fill hook (calls=%d)", hookCalls)
	}
}

// countingStore wraps a Store and counts GetOwner calls, to observe the
// OwnerRefresh fast path skipping registry reads.
type countingStore struct {
	registry.Store
	mu       sync.Mutex
	getOwner int
}

func (c *countingStore) GetOwner(id string) (registry.Owner, error) {
	c.mu.Lock()
	c.getOwner++
	c.mu.Unlock()
	return c.Store.GetOwner(id)
}

func (c *countingStore) calls() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.getOwner
}

// TestOwnerRefreshSkipsRegistry: with OwnerRefresh set, repeat requests
// inside the window reuse the compiled runtime without re-reading the
// owner record — the point of the knob when the registry is remote —
// while the credential check still runs against the cached record.
func TestOwnerRefreshSkipsRegistry(t *testing.T) {
	cs := &countingStore{Store: registry.NewMemory()}
	_, ts := newTestServer(t, Options{Registry: cs, OwnerRefresh: time.Hour})
	registerOwner(t, ts.URL, "acme")
	code, doc, _ := doAs(t, "key-acme", "POST", ts.URL+"/v1/embed?owner=acme&doc=d.xml", pubsXML(t, 60, 1))
	if code != http.StatusOK {
		t.Fatalf("embed: %d %s", code, doc)
	}

	if code, body, _ := doAs(t, "key-acme", "POST", ts.URL+"/v1/detect?owner=acme", doc); code != http.StatusOK {
		t.Fatalf("first detect: %d %s", code, body)
	}
	base := cs.calls()
	for i := 0; i < 10; i++ {
		if code, body, _ := doAs(t, "key-acme", "POST", ts.URL+"/v1/detect?owner=acme", doc); code != http.StatusOK {
			t.Fatalf("detect %d: %d %s", i, code, body)
		}
	}
	if got := cs.calls(); got != base {
		t.Errorf("10 in-window detects read the owner record %d times, want 0", got-base)
	}
	// Authentication is not relaxed by the staleness bound.
	if code, _, _ := doAs(t, "wrong-key", "POST", ts.URL+"/v1/detect?owner=acme", doc); code != http.StatusUnauthorized {
		t.Errorf("stale-path detect with wrong key = %d, want 401", code)
	}
}
