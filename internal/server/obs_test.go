package server

// Observability tests: the Prometheus exposition lint, the request-id
// and traceparent contract, the /debug/traces ring, the error-body
// envelope, and the acceptance assertion that a detect trace's stage
// spans account for the request's wall time.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"wmxml/internal/obs"
)

// lintPromText parses a Prometheus text exposition and fails on
// structural violations: samples without HELP/TYPE, duplicate series,
// non-monotone histogram buckets, or a +Inf bucket that disagrees with
// _count.
func lintPromText(t *testing.T, text string) {
	t.Helper()
	typed := map[string]string{} // metric family -> TYPE
	seen := map[string]bool{}    // full series key (name + labelset)
	helped := map[string]bool{}
	type bucketKey struct{ series string } // histogram name + non-le labels
	buckets := map[string][]struct {
		le  float64
		cum float64
	}{}
	infs := map[string]float64{}
	counts := map[string]float64{}
	_ = bucketKey{}

	family := func(name string) string {
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(name, suf)
			if base != name && typed[base] == "histogram" {
				return base
			}
		}
		return name
	}

	for ln, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
			name, _, _ := strings.Cut(rest, " ")
			helped[name] = true
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			name, typ, found := strings.Cut(rest, " ")
			if !found || (typ != "counter" && typ != "gauge" && typ != "histogram") {
				t.Fatalf("line %d: malformed TYPE: %q", ln+1, line)
			}
			if _, dup := typed[name]; dup {
				t.Fatalf("line %d: duplicate TYPE for %s", ln+1, name)
			}
			typed[name] = typ
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		// Sample line: name[{labels}] value
		name := line
		labels := ""
		if i := strings.IndexByte(line, '{'); i >= 0 {
			j := strings.LastIndexByte(line, '}')
			if j < i {
				t.Fatalf("line %d: unbalanced braces: %q", ln+1, line)
			}
			name, labels = line[:i], line[i+1:j]
			line = line[:i] + line[j+1:]
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("line %d: want 'name value': %q", ln+1, line)
		}
		name = fields[0]
		val, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			t.Fatalf("line %d: bad value %q: %v", ln+1, fields[1], err)
		}
		fam := family(name)
		if typed[fam] == "" {
			t.Fatalf("line %d: sample %s has no preceding # TYPE", ln+1, name)
		}
		if !helped[fam] {
			t.Fatalf("line %d: sample %s has no preceding # HELP", ln+1, name)
		}
		series := name + "{" + labels + "}"
		if seen[series] {
			t.Fatalf("line %d: duplicate series %s", ln+1, series)
		}
		seen[series] = true

		if typed[fam] == "histogram" && strings.HasSuffix(name, "_bucket") {
			le := ""
			var rest []string
			for _, pair := range strings.Split(labels, ",") {
				if v, ok := strings.CutPrefix(pair, "le="); ok {
					le = strings.Trim(v, `"`)
				} else {
					rest = append(rest, pair)
				}
			}
			key := fam + "{" + strings.Join(rest, ",") + "}"
			if le == "+Inf" {
				infs[key] = val
			} else {
				f, err := strconv.ParseFloat(le, 64)
				if err != nil {
					t.Fatalf("line %d: bad le %q", ln+1, le)
				}
				buckets[key] = append(buckets[key], struct{ le, cum float64 }{f, val})
			}
		}
		if typed[fam] == "histogram" && strings.HasSuffix(name, "_count") {
			counts[fam+"{"+labels+"}"] = val
		}
	}
	if len(typed) == 0 {
		t.Fatal("exposition declared no metric families")
	}
	for key, bs := range buckets {
		sort.Slice(bs, func(i, j int) bool { return bs[i].le < bs[j].le })
		for i := 1; i < len(bs); i++ {
			if bs[i].cum < bs[i-1].cum {
				t.Fatalf("%s: cumulative bucket counts decrease at le=%v (%v -> %v)", key, bs[i].le, bs[i-1].cum, bs[i].cum)
			}
		}
		inf, ok := infs[key]
		if !ok {
			t.Fatalf("%s: no +Inf bucket", key)
		}
		if len(bs) > 0 && bs[len(bs)-1].cum > inf {
			t.Fatalf("%s: +Inf bucket %v below le=%v bucket %v", key, inf, bs[len(bs)-1].le, bs[len(bs)-1].cum)
		}
		cnt, ok := counts[key]
		if !ok || inf != cnt {
			t.Fatalf("%s: +Inf bucket %v != _count %v", key, inf, cnt)
		}
	}
}

func TestMetricsExpositionLint(t *testing.T) {
	_, ts := newTestServer(t, Options{Version: "lint-test"})
	registerOwner(t, ts.URL, "acme")
	orig := pubsXML(t, 120, 3)
	code, marked, _ := doAs(t, "key-acme", "POST", ts.URL+"/v1/embed?owner=acme&doc=a.xml", orig)
	if code != http.StatusOK {
		t.Fatalf("embed: %d", code)
	}
	for i := 0; i < 2; i++ { // miss then hit: exercises cache counters and stage spans
		if code, body, _ := doAs(t, "key-acme", "POST", ts.URL+"/v1/detect?owner=acme", marked); code != http.StatusOK {
			t.Fatalf("detect: %d %s", code, body)
		}
	}
	do(t, "POST", ts.URL+"/v1/detect?owner=ghost", marked) // a 4xx row

	code, body, _ := do(t, "GET", ts.URL+"/metrics", nil)
	if code != http.StatusOK {
		t.Fatalf("/metrics: %d", code)
	}
	text := string(body)
	lintPromText(t, text)
	for _, want := range []string{
		`wmxmld_stage_seconds_bucket{stage="decode"`,
		`wmxmld_stage_seconds_bucket{stage="parse"`,
		`wmxmld_owner_requests_total{owner="acme"}`,
		`wmxmld_owner_ops_total{owner="acme",op="detect"} 2`,
		`wmxmld_owner_cache_hits_total{owner="acme"} 1`,
		`wmxmld_build_info{version="lint-test"} 1`,
		"wmxmld_uptime_seconds",
		// Self-observing runtime families: the health collector's
		// process gauges/histograms, the SLO engine's burn gauges (for
		// the service aggregate and the exercised owner), and the
		// watchdog's bundle counter (present even with the watchdog off).
		"wmxmld_go_goroutines",
		"wmxmld_go_heap_live_bytes",
		`wmxmld_go_gc_pause_seconds_bucket{le="+Inf"}`,
		`wmxmld_go_sched_latency_seconds_bucket{le="+Inf"}`,
		`wmxmld_slo_burn_rate{owner="_total",slo="detect_p99",window="5m"}`,
		`wmxmld_slo_burn_rate{owner="acme",slo="error_ratio",window="1h"}`,
		`wmxmld_slo_budget_remaining{owner="acme",slo="detect_p99",window="5m"}`,
		"wmxmld_captures_total 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

func TestOwnerCardinalityCap(t *testing.T) {
	m := newMetrics("v")
	for i := 0; i < ownerCardinalityCap+10; i++ {
		m.finishRequest(&obs.Snapshot{Owner: fmt.Sprintf("owner-%03d", i), Op: "detect"}, "/v1/detect", 200, 0)
	}
	m.mu.Lock()
	n := len(m.owners)
	other := m.owners[ownerOverflow]
	m.mu.Unlock()
	if n != ownerCardinalityCap+1 {
		t.Fatalf("owner map grew to %d series, cap is %d + overflow", n, ownerCardinalityCap)
	}
	if other == nil || other.requests.Value() != 10 {
		t.Fatalf("overflow bucket requests = %v, want 10", other.requests.Value())
	}
	var buf bytes.Buffer
	m.render(&buf)
	if !strings.Contains(buf.String(), `wmxmld_owner_requests_total{owner="other"} 10`) {
		t.Fatal("overflow series missing from the exposition")
	}
}

// TestRequestIDAndTraceparentEcho pins the header contract: a valid
// client traceparent donates its trace id as the request id and is
// echoed with a fresh span id; a request without one gets a fresh id.
func TestRequestIDAndTraceparentEcho(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	const parent = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"

	req, _ := http.NewRequest("GET", ts.URL+"/healthz", nil)
	req.Header.Set("traceparent", parent)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); got != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Fatalf("X-Request-Id = %q, want the traceparent trace id", got)
	}
	echo := resp.Header.Get("Traceparent")
	if !strings.HasPrefix(echo, "00-4bf92f3577b34da6a3ce929d0e0e4736-") || strings.Contains(echo, "00f067aa0ba902b7") {
		t.Fatalf("Traceparent echo = %q: want same trace id, fresh span id", echo)
	}

	resp2, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if id := resp2.Header.Get("X-Request-Id"); len(id) != 32 || id == "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Fatalf("fresh X-Request-Id = %q", id)
	}
}

// TestErrorEnvelope pins the error-body contract: a stable JSON object
// carrying only the public message and the request id — no wrapped
// error chains leak to clients.
func TestErrorEnvelope(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	registerOwner(t, ts.URL, "acme")
	code, body, hdr := doAs(t, "key-acme", "POST", ts.URL+"/v1/detect?owner=acme", []byte("<broken"))
	if code != http.StatusBadRequest {
		t.Fatalf("malformed XML: %d %s", code, body)
	}
	var env map[string]string
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatalf("error body not JSON: %v: %s", err, body)
	}
	if env["error"] == "" || env["request_id"] == "" {
		t.Fatalf("envelope incomplete: %s", body)
	}
	if len(env) != 2 {
		t.Fatalf("envelope must carry exactly error and request_id: %s", body)
	}
	if env["request_id"] != hdr.Get("X-Request-Id") {
		t.Fatalf("body request_id %q != header %q", env["request_id"], hdr.Get("X-Request-Id"))
	}
}

// syncBuffer guards a bytes.Buffer: the access log writes from handler
// goroutines while the test reads after the fact.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestAccessLogAndSpanAccounting is the acceptance loopback: with
// tracing on, a cold /v1/detect leaves a trace in the ring whose spans
// include parse, index, decode and vote, and whose summed stage time
// accounts for at least 80% of the measured request duration. It also
// asserts one structured access-log line per request.
func TestAccessLogAndSpanAccounting(t *testing.T) {
	logBuf := &syncBuffer{}
	s, ts := newTestServer(t, Options{
		Logger: obs.NewLogger(logBuf, obs.LogOptions{Level: "info"}),
	})
	registerOwner(t, ts.URL, "acme")
	// A document large enough that parse+index+decode dominate the
	// request over fixed HTTP/JSON overhead.
	orig := pubsXML(t, 900, 17)
	code, marked, _ := doAs(t, "key-acme", "POST", ts.URL+"/v1/embed?owner=acme&doc=big.xml", orig)
	if code != http.StatusOK {
		t.Fatalf("embed: %d", code)
	}
	code, body, hdr := doAs(t, "key-acme", "POST", ts.URL+"/v1/detect?owner=acme", marked)
	if code != http.StatusOK {
		t.Fatalf("detect: %d %s", code, body)
	}
	reqID := hdr.Get("X-Request-Id")

	var snap *obs.Snapshot
	for _, c := range s.TraceRing().Recent() {
		if c.RequestID == reqID {
			snap = c
			break
		}
	}
	if snap == nil {
		t.Fatalf("detect trace %s not in the ring", reqID)
	}
	stages := snap.StageDurations()
	for _, want := range []string{"parse", "index", "decode", "vote"} {
		if stages[want] <= 0 {
			t.Fatalf("cold detect trace missing stage %q: %v", want, stages)
		}
	}
	var sumUS float64
	for _, sp := range snap.Spans {
		sumUS += sp.DurUS
	}
	if snap.DurationUS <= 0 {
		t.Fatalf("snapshot duration %v", snap.DurationUS)
	}
	ratio := sumUS / snap.DurationUS
	if ratio < 0.80 || ratio > 1.01 {
		t.Fatalf("stage spans cover %.0f%% of the request (spans %.0fµs, request %.0fµs) — want within 20%%.\nspans: %+v",
			ratio*100, sumUS, snap.DurationUS, snap.Spans)
	}
	t.Logf("stage spans cover %.1f%% of the %.0fµs request", ratio*100, snap.DurationUS)
	if snap.Op != "detect" || snap.Owner != "acme" || snap.Verdict != "detected" {
		t.Fatalf("snapshot labels: %+v", snap)
	}

	// One access-log line per finished request, JSON, carrying the id.
	var accessLines int
	var found bool
	for _, line := range strings.Split(strings.TrimSpace(logBuf.String()), "\n") {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("log line not JSON: %v: %q", err, line)
		}
		if rec["msg"] != "request" {
			continue
		}
		accessLines++
		if rec["request_id"] == reqID {
			found = true
			if rec["route"] != "/v1/detect" || rec["status"] != float64(200) || rec["op"] != "detect" {
				t.Fatalf("access record: %v", rec)
			}
			bytesOut, ok := rec["bytes_out"].(float64)
			if !ok || bytesOut <= 0 {
				t.Fatalf("access record bytes_out = %v, want the JSON verdict's byte count", rec["bytes_out"])
			}
			if ua, ok := rec["user_agent"].(string); !ok || ua == "" {
				t.Fatalf("access record user_agent = %v, want net/http's default agent", rec["user_agent"])
			}
		}
	}
	if accessLines < 3 { // register + embed + detect
		t.Fatalf("got %d access-log lines, want one per request (>= 3)", accessLines)
	}
	if !found {
		t.Fatalf("no access-log line for request %s:\n%s", reqID, logBuf.String())
	}
}

// TestDebugTracesHandler serves the ring through the admin handler and
// checks the page shape plus slowest/recent retention.
func TestDebugTracesHandler(t *testing.T) {
	s, ts := newTestServer(t, Options{TraceRing: 4})
	registerOwner(t, ts.URL, "acme")
	orig := pubsXML(t, 100, 5)
	code, marked, _ := doAs(t, "key-acme", "POST", ts.URL+"/v1/embed?owner=acme&doc=a.xml", orig)
	if code != http.StatusOK {
		t.Fatalf("embed: %d", code)
	}
	for i := 0; i < 6; i++ {
		doAs(t, "key-acme", "POST", ts.URL+"/v1/detect?owner=acme", marked)
	}

	rec := httptest.NewRecorder()
	s.DebugHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/debug/traces: %d", rec.Code)
	}
	var page struct {
		RingSize int             `json:"ring_size"`
		Seen     uint64          `json:"seen"`
		Recent   []*obs.Snapshot `json:"recent"`
		Slowest  []*obs.Snapshot `json:"slowest"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &page); err != nil {
		t.Fatalf("page not JSON: %v\n%s", err, rec.Body.Bytes())
	}
	if page.RingSize != 4 || page.Seen != 8 { // register + embed + 6 detects
		t.Fatalf("page meta: ring_size=%d seen=%d", page.RingSize, page.Seen)
	}
	if len(page.Recent) != 4 {
		t.Fatalf("recent len %d, want ring size 4", len(page.Recent))
	}
	for i := 1; i < len(page.Slowest); i++ {
		if page.Slowest[i].DurationUS > page.Slowest[i-1].DurationUS {
			t.Fatal("slowest list not sorted by duration descending")
		}
	}
	for _, c := range page.Recent {
		if c.RequestID == "" || c.Route == "" || c.Status == 0 {
			t.Fatalf("snapshot incomplete: %+v", c)
		}
	}
	// The service mux must NOT expose the ring.
	codeSvc, _, _ := do(t, "GET", ts.URL+"/debug/traces", nil)
	if codeSvc == http.StatusOK {
		t.Fatal("/debug/traces reachable on the service mux")
	}
}

// TestTraceRingDisabled pins the -1 contract: request ids still flow,
// no spans are recorded, and /debug/traces answers 404 with the
// standard {error, request_id} envelope — "disabled" is distinguishable
// from "enabled but empty" (which serves a 200 page with ring_size set).
func TestTraceRingDisabled(t *testing.T) {
	s, ts := newTestServer(t, Options{TraceRing: -1})
	registerOwner(t, ts.URL, "acme")
	orig := pubsXML(t, 80, 5)
	code, marked, _ := doAs(t, "key-acme", "POST", ts.URL+"/v1/embed?owner=acme&doc=a.xml", orig)
	if code != http.StatusOK {
		t.Fatalf("embed: %d", code)
	}
	code, _, hdr := doAs(t, "key-acme", "POST", ts.URL+"/v1/detect?owner=acme", marked)
	if code != http.StatusOK {
		t.Fatalf("detect: %d", code)
	}
	if hdr.Get("X-Request-Id") == "" {
		t.Fatal("request ids must survive disabled tracing")
	}
	if s.TraceRing() != nil {
		t.Fatal("ring must be nil when TraceRing < 0")
	}
	rec := httptest.NewRecorder()
	s.DebugHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces", nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("disabled /debug/traces: %d, want 404", rec.Code)
	}
	var env map[string]string
	if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil {
		t.Fatalf("404 body not JSON: %v: %s", err, rec.Body.Bytes())
	}
	if env["error"] == "" || len(env["request_id"]) != 32 {
		t.Fatalf("404 body must be the {error, request_id} envelope: %s", rec.Body.Bytes())
	}
}
