package server

// Streaming endpoints: POST /v1/embed?mode=stream and
// POST /v1/detect?mode=stream|stream-blind process the request body in
// record chunks with peak memory bounded by chunk size, never document
// size — the path for exports that would blow the in-memory parse or
// the regular body cap.
//
// Differences from the buffered endpoints, by design:
//
//   - The body is never materialized, so the suspect-document cache is
//     bypassed and the body cap is the (much larger) MaxStreamBytes.
//   - The embed response streams while the input is still being read,
//     so the receipt id — derived from a digest spooled off the request
//     body — arrives in HTTP *trailers* (declared up front in the
//     Trailer header), not headers. The stored receipt is identical in
//     shape to a buffered embed's.
//   - A failure after the first response byte cannot change the status
//     code; it is reported in the X-Wmxml-Stream-Error trailer and the
//     output is truncated (invalid XML — clients must treat a non-empty
//     error trailer as a failed request).
//   - Streamed detect runs one receipt (?receipt=ID, or the newest) or
//     blind; sweeping every stored receipt would need one body pass per
//     receipt. The verdict JSON gains streamed/chunks/suspect_sha256
//     fields.

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"net/http"
	"slices"
	"strings"
	"time"

	"wmxml/internal/core"
	"wmxml/internal/pipeline"
	"wmxml/internal/registry"
	"wmxml/internal/stream"
	"wmxml/internal/wmark"
	"wmxml/internal/xmltree"
)

// streamOptions builds the chunking options from the server knobs.
func (s *Server) streamOptions() stream.Options {
	return stream.Options{
		ChunkSize: s.opts.StreamChunkSize,
		Parse:     xmltree.ParseOptions{MaxDepth: s.opts.MaxDepth},
	}
}

// latchWriter defers any response writing until the first byte, so
// errors raised before output started can still choose the status code.
type latchWriter struct {
	w     http.ResponseWriter
	wrote bool
}

func (lw *latchWriter) Write(p []byte) (int, error) {
	if !lw.wrote {
		lw.wrote = true
		lw.w.WriteHeader(http.StatusOK)
	}
	return lw.w.Write(p)
}

// streamHTTPErr maps a streaming failure to a status: parse problems in
// the request body are the client's (400), everything else is 422.
func streamHTTPErr(err error) *httpError {
	if strings.Contains(err.Error(), "xmltree: parse") {
		return errf(http.StatusBadRequest, "parse document: %v", err)
	}
	return errf(http.StatusUnprocessableEntity, "stream: %v", err)
}

// handleEmbedStream watermarks an arbitrarily large XML body chunk by
// chunk, streaming the marked document back while the input is still
// arriving. The receipt id is derived from the spooled body digest and
// returned in the X-Wmxml-Receipt trailer.
func (s *Server) handleEmbedStream(w http.ResponseWriter, r *http.Request, rt *ownerRuntime, ownerID string) {
	// Refuse up front when this owner's document type cannot actually
	// chunk: the library would fall back to the in-memory parse, which
	// must never happen on a MaxStreamBytes-sized body — that is the
	// OOM this endpoint exists to prevent.
	reason, err := stream.EmbedFallbackReason(rt.cfg, s.streamOptions())
	if err != nil {
		s.writeErr(w, r, errf(http.StatusUnprocessableEntity, "stream: %v", err))
		return
	}
	if reason != "" {
		s.writeErr(w, r, errf(http.StatusUnprocessableEntity, "owner %q cannot stream (%s); use the buffered endpoint", ownerID, reason))
		return
	}
	if err := s.acquire(r); err != nil {
		s.writeErr(w, r, err)
		return
	}
	defer s.release()

	// The marked document streams out while the input is still being
	// read; HTTP/1.x servers close the request body on the first
	// response write unless full-duplex is enabled (HTTP/2 allows it
	// natively — the error there is ignorable).
	_ = http.NewResponseController(w).EnableFullDuplex()

	digest := sha256.New()
	body := io.TeeReader(http.MaxBytesReader(w, r.Body, s.opts.MaxStreamBytes), digest)

	h := w.Header()
	h.Set("Content-Type", "application/xml")
	h.Set("Trailer", "X-Wmxml-Receipt, X-Wmxml-Carriers, X-Wmxml-Values-Written, X-Wmxml-Stream-Chunks, X-Wmxml-Stream-Error")
	lw := &latchWriter{w: w}

	out := rt.eng.EmbedReader(r.Context(), pipeline.StreamEmbedJob{
		ID:      "stream-embed",
		In:      body,
		Out:     lw,
		Options: s.streamOptions(),
	})
	if out.Err != nil {
		if !lw.wrote {
			s.writeErr(w, r, streamHTTPErr(out.Err))
			return
		}
		// Output already started: the status is spoken for. Truncate and
		// report through the trailer.
		h.Set("X-Wmxml-Stream-Error", out.Err.Error())
		return
	}

	// The spooled digest binds the receipt to the exact bytes received,
	// under the owner configuration that marked them — the streaming
	// analogue of the buffered endpoint's body-hash receipt id.
	idh := sha256.New()
	fmt.Fprintf(idh, "stream\x1f%s\x1f%s\x1f%s\x1f%d\x1f%x\x1f", rt.owner.ID, rt.owner.Key, rt.owner.Mark, rt.owner.Gamma, digest.Sum(nil))
	receiptID := "s-" + hex.EncodeToString(idh.Sum(nil))[:32]
	rec := registry.Receipt{
		ID: receiptID, Owner: ownerID, Doc: r.URL.Query().Get("doc"),
		CreatedUnix:    time.Now().Unix(),
		Records:        out.Result.Records,
		BandwidthUnits: out.Result.Bandwidth.Units,
		Carriers:       out.Result.Carriers,
		ValuesWritten:  out.Result.Embedded,
	}
	if err := s.reg.AddReceipt(rec); err != nil {
		if !errors.Is(err, registry.ErrDuplicate) {
			h.Set("X-Wmxml-Stream-Error", fmt.Sprintf("store receipt: %v", err))
			return
		}
		stored, gerr := s.reg.GetReceipt(ownerID, receiptID)
		if gerr != nil || !slices.Equal(stored.Records, rec.Records) {
			h.Set("X-Wmxml-Stream-Error", fmt.Sprintf("receipt id collision on %q", receiptID))
			return
		}
	}
	s.met.streamEmbeds.Inc()
	if out.Stream != nil {
		s.met.streamChunks.Add(uint64(out.Stream.Chunks))
		h.Set("X-Wmxml-Stream-Chunks", fmt.Sprint(out.Stream.Chunks))
	}
	h.Set("X-Wmxml-Receipt", receiptID)
	h.Set("X-Wmxml-Carriers", fmt.Sprint(out.Result.Carriers))
	h.Set("X-Wmxml-Values-Written", fmt.Sprint(out.Result.Embedded))
	if !lw.wrote {
		// Legal empty-output case does not exist (a parsed document has a
		// root), but never leave the status unwritten.
		w.WriteHeader(http.StatusOK)
	}
}

// streamDetectResponse is detectResponse plus the streaming fields.
type streamDetectResponse struct {
	detectResponse
	Streamed      bool   `json:"streamed"`
	Chunks        int    `json:"chunks"`
	SuspectSHA256 string `json:"suspect_sha256"`
}

// handleDetectStream detects over an arbitrarily large suspect body in
// record chunks: blind (mode=stream-blind) or against one stored
// receipt (?receipt=ID; defaults to the newest). The parsed-document
// cache is bypassed — nothing is materialized to cache.
func (s *Server) handleDetectStream(w http.ResponseWriter, r *http.Request, rt *ownerRuntime, ownerID string, blind bool) {
	start := time.Now()
	if err := s.acquire(r); err != nil {
		s.writeErr(w, r, err)
		return
	}
	defer s.release()

	resp := streamDetectResponse{Streamed: true}
	resp.Owner = ownerID
	resp.Mode = "stream-blind"

	var records []registry.Receipt
	if !blind {
		resp.Mode = "stream"
		wantReceipt := r.URL.Query().Get("receipt")
		if wantReceipt != "" {
			rec, err := s.reg.GetReceipt(ownerID, wantReceipt)
			if err != nil {
				s.writeErr(w, r, errf(http.StatusNotFound, "owner %q has no receipt %q", ownerID, wantReceipt))
				return
			}
			records = []registry.Receipt{rec}
		} else {
			recs, err := s.reg.ListReceipts(ownerID)
			if err != nil {
				s.writeErr(w, r, err)
				return
			}
			if len(recs) == 0 {
				s.writeErr(w, r, errf(http.StatusConflict, "owner %q has no receipts; embed first or use mode=stream-blind", ownerID))
				return
			}
			// One pass over the body allows one query set; the newest
			// embedding is the likeliest source. Clients disputing older
			// receipts pass ?receipt=ID explicitly.
			records = []registry.Receipt{recs[len(recs)-1]}
		}
	}

	// Same guard as streamed embed: never take the in-memory fallback
	// on a stream-sized body.
	var jobRecords []core.QueryRecord
	if !blind {
		jobRecords = records[0].Records
	}
	reason, err := stream.DetectFallbackReason(rt.cfg, jobRecords, nil, s.streamOptions())
	if err != nil {
		s.writeErr(w, r, errf(http.StatusUnprocessableEntity, "stream: %v", err))
		return
	}
	if reason != "" {
		s.writeErr(w, r, errf(http.StatusUnprocessableEntity, "owner %q cannot stream (%s); use the buffered endpoint", ownerID, reason))
		return
	}

	digest := sha256.New()
	body := io.TeeReader(http.MaxBytesReader(w, r.Body, s.opts.MaxStreamBytes), digest)

	job := pipeline.StreamDetectJob{ID: "stream-detect", In: body, Options: s.streamOptions()}
	if !blind {
		job.Records = jobRecords
		resp.Receipt = records[0].ID
	}
	out := rt.eng.DetectReader(r.Context(), job)
	if out.Err != nil {
		s.writeErr(w, r, streamHTTPErr(out.Err))
		return
	}
	resp.ReceiptsTried = len(records)
	resp.Detected = out.Result.Detected
	resp.MatchFraction = out.Result.MatchFraction
	resp.Coverage = out.Result.Coverage
	resp.Sigma = out.Result.Sigma()
	resp.FalsePositiveRate = wmark.FalsePositiveProbability(out.Result.VotedBits, out.Result.MatchFraction)
	resp.RecoveredText = out.Result.Recovered.Text()
	resp.QueriesRun = out.Result.QueriesRun
	resp.QueryMisses = out.Result.QueryMisses
	resp.SuspectSHA256 = hex.EncodeToString(digest.Sum(nil))
	if out.Stream != nil {
		resp.Chunks = out.Stream.Chunks
		resp.Streamed = out.Stream.Streamed
		s.met.streamChunks.Add(uint64(out.Stream.Chunks))
	}
	resp.ElapsedMS = float64(time.Since(start).Microseconds()) / 1000
	s.met.streamDetects.Inc()
	s.met.detects.Inc()
	if resp.Detected {
		s.met.detected.Inc()
	}
	writeJSON(w, http.StatusOK, resp)
}
