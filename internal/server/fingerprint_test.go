package server

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http"
	"strings"
	"testing"

	"wmxml/internal/attack"
	"wmxml/internal/xmltree"
)

type traceVerdict struct {
	Mode        string   `json:"mode"`
	Candidates  int      `json:"candidates"`
	Accused     []string `json:"accused"`
	DecidedBits int      `json:"decided_bits"`
	CacheHit    bool     `json:"cache_hit"`
	Accusations []struct {
		Recipient     string  `json:"recipient"`
		MatchFraction float64 `json:"match_fraction"`
		Accused       bool    `json:"accused"`
	} `json:"accusations"`
}

// fingerprintCopy drives POST /v1/fingerprint and returns the marked
// copy.
func fingerprintCopy(t *testing.T, base, owner, recipient string, doc []byte) []byte {
	t.Helper()
	code, marked, hdr := doAs(t, "key-"+owner, "POST",
		base+"/v1/fingerprint?owner="+owner+"&recipient="+recipient, doc)
	if code != http.StatusOK {
		t.Fatalf("fingerprint %s: %d %s", recipient, code, marked)
	}
	if hdr.Get("X-Wmxml-Recipient") != recipient {
		t.Fatalf("fingerprint %s: recipient header = %q", recipient, hdr.Get("X-Wmxml-Recipient"))
	}
	if hdr.Get("X-Wmxml-Receipt") == "" {
		t.Fatalf("fingerprint %s: no receipt header", recipient)
	}
	return marked
}

func traceDoc(t *testing.T, base, owner string, doc []byte, query string) traceVerdict {
	t.Helper()
	code, body, _ := doAs(t, "key-"+owner, "POST", base+"/v1/trace?owner="+owner+query, doc)
	if code != http.StatusOK {
		t.Fatalf("trace: %d %s", code, body)
	}
	var v traceVerdict
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatalf("trace verdict: %v\n%s", err, body)
	}
	return v
}

// TestServerFingerprintTraceEndToEnd: register → fingerprint two
// recipients → single-leak trace pins the right one → a 2-colluder mix
// still yields a true accusation and never an innocent one.
func TestServerFingerprintTraceEndToEnd(t *testing.T) {
	s, ts := newTestServer(t, Options{})
	registerOwner(t, ts.URL, "acme")
	orig := pubsXML(t, 300, 11)

	aliceCopy := fingerprintCopy(t, ts.URL, "acme", "alice", orig)
	bobCopy := fingerprintCopy(t, ts.URL, "acme", "bob", orig)
	fingerprintCopy(t, ts.URL, "acme", "carol", orig) // innocent third recipient
	if bytes.Equal(aliceCopy, bobCopy) {
		t.Fatal("recipient copies are identical — no per-recipient code embedded")
	}

	// Recipient listing is key-holder only.
	code, body, _ := doAs(t, "key-acme", "GET", ts.URL+"/v1/owners/acme/recipients", nil)
	if code != http.StatusOK || !strings.Contains(string(body), "alice") || !strings.Contains(string(body), "carol") {
		t.Fatalf("recipients listing: %d %s", code, body)
	}
	if code, _, _ := do(t, "GET", ts.URL+"/v1/owners/acme/recipients", nil); code != http.StatusUnauthorized {
		t.Fatalf("unauthenticated recipients listing = %d, want 401", code)
	}

	// Single leaker: alice's copy traces to alice alone.
	v := traceDoc(t, ts.URL, "acme", aliceCopy, "")
	if v.Mode != "blind" || v.Candidates != 3 {
		t.Fatalf("trace verdict shape: %+v", v)
	}
	if len(v.Accused) != 1 || v.Accused[0] != "alice" {
		t.Fatalf("single-leak accused = %v, want [alice]", v.Accused)
	}
	if v.CacheHit {
		t.Error("first trace claims a cache hit")
	}
	// Repeat trace of the same bytes rides the parsed-document cache.
	v2 := traceDoc(t, ts.URL, "acme", aliceCopy, "")
	if !v2.CacheHit {
		t.Error("repeat trace missed the document cache")
	}

	// A 2-colluder mix: at least one of alice/bob accused, carol never.
	aDoc, err := xmltree.Parse(bytes.NewReader(aliceCopy), xmltree.ParseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	bDoc, err := xmltree.Parse(bytes.NewReader(bobCopy), xmltree.ParseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	pirate, err := attack.Collusion{Copies: []*xmltree.Node{bDoc}, Scope: "db/book"}.
		Apply(aDoc, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	pv := traceDoc(t, ts.URL, "acme", []byte(xmltree.SerializeIndentString(pirate)), "")
	if len(pv.Accused) == 0 {
		t.Errorf("collusion trace accused nobody: %+v", pv)
	}
	for _, id := range pv.Accused {
		if id != "alice" && id != "bob" {
			t.Errorf("innocent %q accused by collusion trace", id)
		}
	}

	// Receipt-mode decode: trace through alice's stored query set.
	var receipts struct {
		Receipts []struct {
			ID        string `json:"id"`
			Recipient string `json:"recipient"`
		} `json:"receipts"`
	}
	_, rb, _ := doAs(t, "key-acme", "GET", ts.URL+"/v1/owners/acme/receipts", nil)
	if err := json.Unmarshal(rb, &receipts); err != nil {
		t.Fatalf("receipts: %v\n%s", err, rb)
	}
	var aliceReceipt string
	for _, r := range receipts.Receipts {
		if r.Recipient == "alice" {
			aliceReceipt = r.ID
		}
	}
	if aliceReceipt == "" {
		t.Fatalf("no recipient-tagged receipt for alice in %s", rb)
	}
	rv := traceDoc(t, ts.URL, "acme", aliceCopy, "&receipt="+aliceReceipt)
	if rv.Mode != "receipt" || len(rv.Accused) != 1 || rv.Accused[0] != "alice" {
		t.Fatalf("receipt-mode trace = %+v, want alice accused", rv)
	}

	// The trace sweeps moved the fingerprint/trace counters and the
	// doc-cache metrics are observable.
	_, mb, _ := do(t, "GET", ts.URL+"/metrics", nil)
	met := string(mb)
	for _, want := range []string{
		"wmxmld_fingerprints_total 3",
		"wmxmld_traces_total",
		"wmxmld_traces_accused_total",
		"wmxmld_doc_cache_hits_total",
		"wmxmld_doc_cache_misses_total",
		"wmxmld_doc_cache_evictions_total",
		"wmxmld_doc_cache_entries",
	} {
		if !strings.Contains(met, want) {
			t.Errorf("/metrics lacks %q", want)
		}
	}
	hits, misses, _, size := s.CacheStats()
	if hits == 0 || misses == 0 || size == 0 {
		t.Errorf("cache stats after traces: hits=%d misses=%d size=%d", hits, misses, size)
	}
}

func TestServerFingerprintTraceErrors(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	registerOwner(t, ts.URL, "acme")
	doc := pubsXML(t, 40, 12)

	// Missing / invalid recipient.
	if code, _, _ := doAs(t, "key-acme", "POST", ts.URL+"/v1/fingerprint?owner=acme", doc); code != http.StatusBadRequest {
		t.Errorf("fingerprint without recipient = %d, want 400", code)
	}
	if code, _, _ := doAs(t, "key-acme", "POST", ts.URL+"/v1/fingerprint?owner=acme&recipient=a/b", doc); code != http.StatusBadRequest {
		t.Errorf("fingerprint with bad recipient id = %d, want 400", code)
	}
	// Wrong key.
	if code, _, _ := doAs(t, "wrong", "POST", ts.URL+"/v1/fingerprint?owner=acme&recipient=alice", doc); code != http.StatusUnauthorized {
		t.Errorf("fingerprint with wrong key = %d, want 401", code)
	}
	// Trace before any fingerprint: no candidates.
	if code, _, _ := doAs(t, "key-acme", "POST", ts.URL+"/v1/trace?owner=acme", doc); code != http.StatusConflict {
		t.Errorf("trace without recipients = %d, want 409", code)
	}
	fingerprintCopy(t, ts.URL, "acme", "alice", doc)
	// Unauthenticated trace.
	if code, _, _ := do(t, "POST", ts.URL+"/v1/trace?owner=acme", doc); code != http.StatusUnauthorized {
		t.Errorf("unauthenticated trace = %d, want 401", code)
	}
	// Unknown receipt.
	if code, _, _ := doAs(t, "key-acme", "POST", ts.URL+"/v1/trace?owner=acme&receipt=nope", doc); code != http.StatusNotFound {
		t.Errorf("trace with unknown receipt = %d, want 404", code)
	}
}

// TestServerHealthzVersion: the build version rides in /healthz.
func TestServerHealthzVersion(t *testing.T) {
	_, ts := newTestServer(t, Options{Version: "v4-test"})
	code, body, _ := do(t, "GET", ts.URL+"/healthz", nil)
	if code != http.StatusOK || !strings.Contains(string(body), `"version": "v4-test"`) {
		t.Fatalf("healthz = %d %s, want version string", code, body)
	}
	_, defTS := newTestServer(t, Options{})
	_, dbody, _ := do(t, "GET", defTS.URL+"/healthz", nil)
	if !strings.Contains(string(dbody), `"version": "dev"`) {
		t.Fatalf("healthz default version: %s", dbody)
	}
}
