// Package server is the HTTP serving layer of WmXML — the daemon
// (cmd/wmxmld) that sits beside an XML database and watermarks data as
// it is published, the deployment shape the paper's Figure 1 sketches
// around the WmXML box.
//
// The server is multi-tenant: each owner registers once with a secret
// key, a watermark and a document-type spec, and every embedding's
// safeguarded query set Q lands in the receipt registry
// (internal/registry) — so detection is a single POST of the suspect
// document, with the queries resolved server-side instead of shipped
// around as q.json.
//
// Operational behavior:
//
//   - Authentication: the owner's secret key doubles as the API
//     credential. Every owner-scoped request (embed, detect, verify,
//     receipts) must carry `Authorization: Bearer <key>`, and
//     re-registering an existing owner id requires the current key —
//     first-time registration is the only open call. Keys are compared
//     in constant time over digests. Options.AllowUnauthenticated
//     disables all of this for trusted-network deployments only; the
//     key and the safeguarded query set Q are exactly the secrets the
//     watermark's security model rests on.
//   - Admission control: at most Workers embed/detect/verify requests
//     run at once; excess requests wait up to QueueTimeout for a slot
//     and are rejected with 503 afterwards. Request bodies are capped
//     at MaxBodyBytes and parsed with the xmltree MaxDepth guard.
//   - Execution runs through an internal/pipeline engine, so a request
//     that panics inside tree or plug-in code turns into a 422 for that
//     request, never a daemon crash.
//   - Repeated detections of the same suspect body hit a
//     content-hash-keyed LRU of parsed Document + DocumentIndex pairs,
//     skipping the reparse and index build that dominate indexed
//     detection.
//   - GET /metrics exposes counters and latency histograms in
//     Prometheus text format; GET /healthz is the liveness probe.
package server

import (
	"bytes"
	"crypto/sha256"
	"crypto/subtle"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httputil"
	"runtime"
	"slices"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"wmxml/internal/cluster"
	"wmxml/internal/config"
	"wmxml/internal/core"
	"wmxml/internal/datagen"
	"wmxml/internal/fingerprint"
	"wmxml/internal/identity"
	"wmxml/internal/index"
	"wmxml/internal/obs"
	"wmxml/internal/pipeline"
	"wmxml/internal/registry"
	"wmxml/internal/schema"
	"wmxml/internal/semantics"
	"wmxml/internal/wmark"
	"wmxml/internal/xmltree"
)

// Options configures a Server.
type Options struct {
	// Registry stores owners and receipts; required.
	Registry registry.Store
	// Workers bounds concurrently executing operations (embed, detect,
	// verify). 0 means GOMAXPROCS.
	Workers int
	// QueueTimeout is how long a request waits for a worker slot before
	// a 503. 0 means 10s.
	QueueTimeout time.Duration
	// MaxBodyBytes caps request bodies. 0 means 32 MiB.
	MaxBodyBytes int64
	// MaxStreamBytes caps bodies of the streaming endpoints
	// (mode=stream), which exist precisely for documents larger than
	// MaxBodyBytes. 0 means 4 GiB.
	MaxStreamBytes int64
	// StreamChunkSize is the records-per-chunk setting of the streaming
	// endpoints (0 = the stream default).
	StreamChunkSize int
	// MaxDepth caps XML nesting on parse (0 = xmltree.DefaultMaxDepth).
	MaxDepth int
	// CacheEntries sizes the suspect-document LRU (0 = 128; negative
	// disables caching).
	CacheEntries int
	// CacheBytes caps the suspect-document LRU's total weight, where
	// each entry weighs its source body length (a proxy for tree+index
	// footprint). 0 = 256 MiB; negative removes the byte bound (entry
	// count still applies). A body larger than the cap is served but
	// never cached.
	CacheBytes int64
	// PlanCacheEntries sizes the compiled decode-plan LRU shared by
	// /v1/detect and /v1/trace (0 = 512).
	PlanCacheEntries int
	// Concurrency is the per-document core concurrency (0/1 =
	// sequential; server throughput usually comes from Workers, not
	// from splitting single documents).
	Concurrency int
	// AllowUnauthenticated serves owner-scoped endpoints without the
	// Bearer-key check. Only for deployments where every network peer
	// is already trusted with every tenant's key and query sets.
	AllowUnauthenticated bool
	// Version is the build version string surfaced in /healthz
	// (ldflags-injected by the daemon; empty renders as "dev").
	Version string
	// Logger receives the access log and error records. nil is a valid
	// silent logger (the library/test default).
	Logger *obs.Logger
	// TraceRing is how many recent (and how many slowest) completed
	// request traces are retained for /debug/traces. 0 means 32;
	// negative disables span recording and retention entirely (request
	// ids and the access log still work).
	TraceRing int
	// SLODetectP99 is the default latency objective 99% of detect
	// requests must meet (per-owner overridable via the registry
	// record's "slo" field). 0 means 250ms; negative disables the
	// objective.
	SLODetectP99 time.Duration
	// SLOErrorRatio is the default tolerated 5xx fraction. 0 means
	// 0.01 (1%); negative disables the objective.
	SLOErrorRatio float64
	// HealthInterval is the runtime health collector's sampling period.
	// 0 means 10s; negative disables the collector (and the wmxmld_go_*
	// series).
	HealthInterval time.Duration
	// CaptureDir enables the anomaly watchdog: capture bundles are
	// written into this directory's bounded ring. Empty disables the
	// watchdog (SLO accounting and /debug/slo still work).
	CaptureDir string
	// CaptureMax bounds the bundle ring (0 = 8; oldest evicted).
	CaptureMax int
	// CaptureCooldown gates refiring of one (rule, owner) pair
	// (0 = 5m).
	CaptureCooldown time.Duration
	// CaptureCPUProfile is the CPU profile length per bundle
	// (0 = 5s; negative skips the CPU profile).
	CaptureCPUProfile time.Duration
	// WatchdogInterval is the rule evaluation period (0 = 10s).
	WatchdogInterval time.Duration
	// OwnerRefresh bounds how stale a compiled owner runtime may be
	// before the next request re-reads the registry record. 0 checks the
	// registry on every request (the single-node default — a local read
	// is cheap); set it when the registry is remote, where a per-request
	// GetOwner would put a network round trip on the hot path. The
	// credential check always runs, against the cached record.
	OwnerRefresh time.Duration
	// ClusterKey, when set, mounts the registry fleet API under
	// /internal/registry/ (Bearer-authenticated with this key) so peer
	// nodes can share this node's registry. Required on the node that
	// holds the authoritative store of a fleet.
	ClusterKey string
	// FleetNodes lists every node address (scheme://host:port) of the
	// fleet this server belongs to. With two or more nodes, owner-scoped
	// requests are routed by consistent hash: a request landing on the
	// wrong node is transparently proxied to the owner's home node, so
	// each owner's parsed documents warm exactly one cache. Empty or
	// single-entry means no routing (standalone node).
	FleetNodes []string
	// FleetSelf is this node's own address as it appears in FleetNodes;
	// required when FleetNodes has two or more entries.
	FleetSelf string
	// CacheFill, when non-nil, is consulted on a document-cache miss
	// before parsing locally — a hook for fleet deployments to borrow a
	// sibling node's parse. Returning ok=false falls through to the
	// local parse. Runs inside the miss singleflight, so concurrent
	// requests trigger it at most once per body.
	CacheFill func(sum [sha256.Size]byte, body []byte) (*xmltree.Node, *index.Index, bool)
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.QueueTimeout <= 0 {
		o.QueueTimeout = 10 * time.Second
	}
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 32 << 20
	}
	if o.MaxStreamBytes <= 0 {
		o.MaxStreamBytes = 4 << 30
	}
	if o.CacheEntries == 0 {
		o.CacheEntries = 128
	}
	if o.CacheEntries < 0 {
		o.CacheEntries = 0
	}
	if o.CacheBytes == 0 {
		o.CacheBytes = 256 << 20
	}
	if o.CacheBytes < 0 {
		o.CacheBytes = 0
	}
	if o.PlanCacheEntries <= 0 {
		o.PlanCacheEntries = 512
	}
	if o.Version == "" {
		o.Version = "dev"
	}
	if o.TraceRing == 0 {
		o.TraceRing = 32
	}
	if o.SLODetectP99 == 0 {
		o.SLODetectP99 = 250 * time.Millisecond
	}
	if o.SLOErrorRatio == 0 {
		o.SLOErrorRatio = 0.01
	}
	if o.HealthInterval == 0 {
		o.HealthInterval = 10 * time.Second
	}
	if o.CaptureCPUProfile == 0 {
		o.CaptureCPUProfile = 5 * time.Second
	}
	return o
}

// Server is the wmxmld HTTP API. Build with New, mount via Handler.
type Server struct {
	opts  Options
	reg   registry.Store
	slots chan struct{}
	cache *docCache
	plans *boundPlans
	dplan *planCache
	met   *metrics
	log   *obs.Logger
	ring  *obs.TraceRing
	mux   *http.ServeMux

	health   *obs.RuntimeCollector
	slo      *sloEngine
	dog      *watchdog
	draining atomic.Bool

	// Fleet routing state; nil/empty on a standalone node.
	fleet   *cluster.Ring
	proxies map[string]*httputil.ReverseProxy

	mu       sync.Mutex
	runtimes map[string]*ownerRuntime
}

// ownerRuntime is the compiled per-tenant state: the working objects an
// owner's spec resolves to, plus the pipeline engine requests execute
// through.
type ownerRuntime struct {
	owner   registry.Owner
	cfg     core.Config
	eng     *pipeline.Engine
	fp      *fingerprint.System
	schema  *schema.Schema
	catalog semantics.Catalog

	// checked is when (UnixNano) the registry record was last compared
	// against this runtime; the Options.OwnerRefresh fast path reads it
	// to skip the per-request GetOwner against a remote registry.
	checked atomic.Int64
}

// New builds a Server over a registry.
func New(opts Options) (*Server, error) {
	if opts.Registry == nil {
		return nil, fmt.Errorf("server: Options.Registry is required")
	}
	opts = opts.withDefaults()
	s := &Server{
		opts:     opts,
		reg:      opts.Registry,
		slots:    make(chan struct{}, opts.Workers),
		cache:    newDocCache(opts.CacheEntries, opts.CacheBytes),
		plans:    newBoundPlans(64),
		dplan:    newPlanCache(opts.PlanCacheEntries),
		met:      newMetrics(opts.Version),
		log:      opts.Logger,
		ring:     obs.NewTraceRing(opts.TraceRing),
		runtimes: make(map[string]*ownerRuntime),
	}
	defaults := sloObjectives{detectP99: opts.SLODetectP99, errorRatio: opts.SLOErrorRatio}
	if defaults.detectP99 < 0 {
		defaults.detectP99 = 0
	}
	if defaults.errorRatio < 0 {
		defaults.errorRatio = 0
	}
	s.slo = newSLOEngine(defaults, func(owner string) (sloObjectives, bool) {
		o, err := s.reg.GetOwner(owner)
		if err != nil {
			return sloObjectives{}, false
		}
		return sloObjectivesFrom(defaults, o.SLO), true
	})
	s.met.sloEval = func() []SLOOwnerEval { return s.slo.evaluateAll(time.Now().Unix()) }
	if opts.HealthInterval > 0 {
		s.health = obs.NewRuntimeCollector(opts.HealthInterval)
		s.health.Start()
		s.met.runtimeSnap = s.health.Snapshot
	}
	if opts.CaptureDir != "" {
		s.dog = newWatchdog(watchdogConfig{
			dir:        opts.CaptureDir,
			maxBundles: opts.CaptureMax,
			cooldown:   opts.CaptureCooldown,
			cpuProfile: opts.CaptureCPUProfile,
			interval:   opts.WatchdogInterval,
		}, s.slo, s.health, s.ring, s.met, s.log)
		s.dog.Start()
	}
	if err := s.buildFleet(); err != nil {
		return nil, err
	}
	s.routes()
	return s, nil
}

// Close stops the server's background goroutines — the runtime health
// collector and the anomaly watchdog. Safe to call more than once; the
// HTTP handlers stay functional afterwards (only self-monitoring
// halts), so it is safe to Close before the listener fully drains.
func (s *Server) Close() {
	s.dog.Stop()
	s.health.Stop()
}

// SetDraining flips the readiness state served by GET /readyz. The
// daemon sets it before closing listeners on graceful shutdown so load
// balancers stop routing new work while in-flight requests finish.
func (s *Server) SetDraining(v bool) { s.draining.Store(v) }

// Handler returns the root HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// DebugHandler returns the operator-side debug surface:
//
//	GET /debug/traces   — the recent/slowest trace ring as JSON
//	GET /debug/slo      — per-owner SLO objectives and burn rates
//	GET /debug/captures — the anomaly capture-bundle ring index
//
// Traces and SLO pages carry owner ids, document sizes and verdicts,
// so this mounts on the admin/pprof listener, never the service mux.
//
// Contract: a disabled surface answers 404 with the service's standard
// {error, request_id} JSON envelope — /debug/traces when the ring is
// off (TraceRing < 0), /debug/captures when no --capture-dir is set —
// so probes can distinguish "disabled" from "empty" and operators get
// a request id to quote either way.
func (s *Server) DebugHandler() http.Handler {
	mux := http.NewServeMux()
	if s.opts.TraceRing < 0 {
		mux.Handle("GET /debug/traces", debugDisabled("trace ring disabled (start wmxmld with --trace-ring > 0)"))
	} else {
		mux.Handle("GET /debug/traces", s.ring.Handler())
	}
	mux.HandleFunc("GET /debug/slo", s.handleDebugSLO)
	mux.Handle("GET /debug/captures", capturesHandler(s.opts.CaptureDir))
	return mux
}

// debugDisabled is the 404 envelope a disabled debug surface serves.
func debugDisabled(msg string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusNotFound)
		json.NewEncoder(w).Encode(map[string]string{
			"error":      msg,
			"request_id": obs.NewRequestID(),
		})
	})
}

// handleDebugSLO serves the SLO engine's full evaluation — the same
// computation the wmxmld_slo_* gauges render, per owner with the
// "_total" service aggregate first.
func (s *Server) handleDebugSLO(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"defaults": map[string]any{
			"detect_p99_ms": float64(s.slo.defaults.detectP99.Microseconds()) / 1000,
			"error_ratio":   s.slo.defaults.errorRatio,
		},
		"windows": map[string]any{"fast_seconds": sloFastBuckets * sloFastBucketSecs, "slow_seconds": sloSlowBuckets * sloSlowBucketSecs},
		"owners":  s.slo.evaluateAll(time.Now().Unix()),
	})
}

// TraceRing exposes the completed-trace ring (nil when disabled) for
// tests and embedding daemons.
func (s *Server) TraceRing() *obs.TraceRing { return s.ring }

// CacheStats reports the suspect-document cache counters
// (hits, misses, evictions, entries) — tests read these without
// scraping /metrics.
func (s *Server) CacheStats() (hits, misses, evicts uint64, size int) {
	return s.met.cacheHits.Value(), s.met.cacheMiss.Value(), s.met.cacheEvict.Value(), s.cache.len()
}

// CacheFlightStats reports the miss-singleflight counters: how many
// requests waited on another request's parse, and how many misses were
// satisfied by the peer-fill hook.
func (s *Server) CacheFlightStats() (coalesced, fills uint64) {
	return s.met.cacheCoalesced.Value(), s.met.cacheFill.Value()
}

// FleetStats reports how many requests this node proxied to their
// owner's home node (always 0 standalone).
func (s *Server) FleetStats() (proxied uint64) { return s.met.fleetProxied.Value() }

// PlanCacheStats reports the decode-plan cache counters (hits, misses,
// entries) for tests and diagnostics.
func (s *Server) PlanCacheStats() (hits, misses uint64, size int) {
	return s.met.planCacheHits.Value(), s.met.planCacheMiss.Value(), s.dplan.len()
}

func (s *Server) routes() {
	s.mux = http.NewServeMux()
	// Owner-scoped endpoints go through the fleet router (a no-op
	// standalone): the owner id — from the body, the path, or the query
	// string — decides which node's cache should absorb the work.
	s.mux.HandleFunc("POST /v1/owners", s.instrument("/v1/owners", s.routed(s.ownerFromBody, s.handlePutOwner)))
	s.mux.HandleFunc("GET /v1/owners/{id}/receipts", s.instrument("/v1/owners/{id}/receipts", s.routed(ownerFromPath, s.handleListReceipts)))
	s.mux.HandleFunc("GET /v1/owners/{id}/recipients", s.instrument("/v1/owners/{id}/recipients", s.routed(ownerFromPath, s.handleListRecipients)))
	s.mux.HandleFunc("POST /v1/embed", s.instrument("/v1/embed", s.routed(ownerFromQuery, s.handleEmbed)))
	s.mux.HandleFunc("POST /v1/detect", s.instrument("/v1/detect", s.routed(ownerFromQuery, s.handleDetect)))
	s.mux.HandleFunc("POST /v1/verify", s.instrument("/v1/verify", s.routed(ownerFromQuery, s.handleVerify)))
	s.mux.HandleFunc("POST /v1/fingerprint", s.instrument("/v1/fingerprint", s.routed(ownerFromQuery, s.handleFingerprint)))
	s.mux.HandleFunc("POST /v1/trace", s.instrument("/v1/trace", s.routed(ownerFromQuery, s.handleTrace)))
	s.mux.HandleFunc("POST /v1/deliver/plan", s.instrument("/v1/deliver/plan", s.routed(ownerFromQuery, s.handleDeliverPlan)))
	s.mux.HandleFunc("POST /v1/deliver", s.instrument("/v1/deliver", s.routed(ownerFromQuery, s.handleDeliver)))
	s.mux.HandleFunc("GET /healthz", s.instrument("/healthz", s.handleHealthz))
	s.mux.HandleFunc("GET /readyz", s.instrument("/readyz", s.handleReadyz))
	s.mux.HandleFunc("GET /metrics", s.handleMetrics) // not instrumented: scrapes must not move the histograms
	if s.opts.ClusterKey != "" {
		// The fleet-internal registry API: peer nodes running a Remote
		// store point at this prefix. Deliberately outside /v1 — it is
		// node-to-node surface, authenticated by the cluster key, not a
		// tenant API.
		s.mux.Handle("/internal/registry/", http.StripPrefix("/internal/registry", registry.NewHTTPHandler(s.reg, s.opts.ClusterKey)))
	}
}

// statusWriter captures the response code and body byte count for
// instrumentation. bytes needs no synchronization: only the handler
// goroutine writes the response.
type statusWriter struct {
	http.ResponseWriter
	code  int
	bytes int64
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

// Unwrap exposes the underlying writer to http.ResponseController, so
// the streaming endpoints can reach flush and full-duplex controls
// through the instrumentation wrapper.
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// instrument wraps a handler with the whole per-request observability
// lifecycle: a Trace is opened (ingesting any W3C traceparent header —
// its trace-id becomes the request id — and echoing one back with a
// fresh span id), carried down through the request context so every
// layer can attach stage spans, and on completion folded into the
// route/stage/owner metrics, the trace ring and the access log.
func (s *Server) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		tr := obs.StartRequest(r.Header.Get("traceparent"), route)
		if s.opts.TraceRing < 0 {
			tr.DisableSpans()
		}
		hdr := w.Header()
		hdr.Set("X-Request-Id", tr.ID())
		hdr.Set("Traceparent", tr.Traceparent())
		r = r.WithContext(obs.NewContext(r.Context(), tr))
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		start := time.Now()
		h(sw, r)
		d := time.Since(start)
		snap := tr.Finish(sw.code, d)
		s.met.finishRequest(snap, route, sw.code, d)
		s.slo.record(snap.Owner, snap.Op, sw.code, d)
		if s.opts.TraceRing >= 0 {
			s.ring.Add(snap)
		}
		s.log.Info("request",
			"request_id", snap.RequestID,
			"route", route,
			"status", sw.code,
			"dur_ms", float64(d.Microseconds())/1000,
			"owner", snap.Owner,
			"op", snap.Op,
			"doc_bytes", snap.DocBytes,
			"bytes_out", sw.bytes,
			"user_agent", r.UserAgent(),
			"verdict", snap.Verdict,
			"cache_hit", snap.CacheHit,
		)
	}
}

// httpError is an error with an HTTP status.
type httpError struct {
	code int
	err  error
}

func (e *httpError) Error() string { return e.err.Error() }
func (e *httpError) Unwrap() error { return e.err }

func errf(code int, format string, args ...any) *httpError {
	return &httpError{code: code, err: fmt.Errorf(format, args...)}
}

// writeErr renders an error as the stable JSON envelope
// {error, request_id} with the right status. The full error chain —
// wrapped causes, file paths, internal identifiers — goes to the log
// at full fidelity; the response body carries the top-level message
// for client errors and only "internal error" for 5xx, plus the
// request id so an operator can join a client report to the log line
// and the trace.
func (s *Server) writeErr(w http.ResponseWriter, r *http.Request, err error) {
	code := http.StatusInternalServerError
	var he *httpError
	if errors.As(err, &he) {
		code = he.code
	}
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		code = http.StatusRequestEntityTooLarge
	}
	tr := obs.FromContext(r.Context())
	if code >= http.StatusInternalServerError {
		s.log.Error("request failed", "request_id", tr.ID(), "route", tr.Route(), "status", code, "error", err.Error())
	} else {
		s.log.Warn("request rejected", "request_id", tr.ID(), "route", tr.Route(), "status", code, "error", err.Error())
	}
	msg := err.Error()
	if code >= http.StatusInternalServerError {
		msg = "internal error"
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": msg, "request_id": tr.ID()})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// acquire takes a worker slot, waiting up to QueueTimeout.
func (s *Server) acquire(r *http.Request) error {
	t := time.NewTimer(s.opts.QueueTimeout)
	defer t.Stop()
	select {
	case s.slots <- struct{}{}:
		s.met.inflight.Add(1)
		return nil
	case <-r.Context().Done():
		return errf(499, "client went away: %v", r.Context().Err())
	case <-t.C:
		s.met.queueFull.Inc()
		return errf(http.StatusServiceUnavailable, "server busy: no worker slot within %s", s.opts.QueueTimeout)
	}
}

func (s *Server) release() {
	<-s.slots
	s.met.inflight.Add(-1)
}

// readBody drains the (size-capped) request body.
func (s *Server) readBody(w http.ResponseWriter, r *http.Request) ([]byte, error) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes))
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			s.met.tooLarge.Inc()
		}
		return nil, err
	}
	if len(body) == 0 {
		return nil, errf(http.StatusBadRequest, "empty request body")
	}
	obs.FromContext(r.Context()).SetDocBytes(int64(len(body)))
	return body, nil
}

// parseDoc parses an XML body under the depth guard, through the
// byte-slice fast path (interned names, slab nodes) with strict-parser
// fallback.
func (s *Server) parseDoc(body []byte) (*xmltree.Node, error) {
	doc, err := xmltree.ParseBytes(body, xmltree.ParseOptions{MaxDepth: s.opts.MaxDepth})
	if err != nil {
		return nil, errf(http.StatusBadRequest, "parse document: %v", err)
	}
	return doc, nil
}

// bearerKey extracts the presented owner key from the Authorization
// header ("Bearer <key>"; the scheme is case-insensitive per RFC 9110,
// and some proxies normalize its casing).
func bearerKey(r *http.Request) string {
	scheme, rest, ok := strings.Cut(r.Header.Get("Authorization"), " ")
	if !ok || !strings.EqualFold(scheme, "Bearer") {
		return ""
	}
	return strings.TrimSpace(rest)
}

// authorize checks that the request proves knowledge of the owner's
// secret key — the key doubles as the API credential, because anyone
// holding it already holds everything the watermark's security rests
// on. Digest comparison keeps the check constant-time in both content
// and length.
func (s *Server) authorize(r *http.Request, o registry.Owner) error {
	if s.opts.AllowUnauthenticated {
		return nil
	}
	got := bearerKey(r)
	if got == "" {
		return errf(http.StatusUnauthorized, "missing credentials: send Authorization: Bearer <owner key>")
	}
	a, b := sha256.Sum256([]byte(got)), sha256.Sum256([]byte(o.Key))
	if subtle.ConstantTimeCompare(a[:], b[:]) != 1 {
		return errf(http.StatusUnauthorized, "wrong key for owner %q", o.ID)
	}
	return nil
}

// sameOwner reports whether a compiled runtime's owner record still
// matches the registry's. Every field the runtime is built from counts
// — including Dataset and the raw Spec bytes, which can change
// out-of-band when the registry file is replaced under a running
// daemon.
func sameOwner(a, b registry.Owner) bool {
	return a.ID == b.ID && a.CreatedUnix == b.CreatedUnix && a.Key == b.Key &&
		a.Mark == b.Mark && a.Gamma == b.Gamma && a.Dataset == b.Dataset &&
		bytes.Equal(a.Spec, b.Spec) && sameSLO(a.SLO, b.SLO)
}

// sameSLO compares owner SLO overrides (either side may be nil).
func sameSLO(a, b *registry.SLOOverride) bool {
	if a == nil || b == nil {
		return a == b
	}
	return *a == *b
}

// runtimeFor resolves an owner id to its compiled runtime, building
// and caching on first use. The request credential is checked against
// the owner record BEFORE any runtime work, so unauthenticated peers
// never trigger the comparatively expensive spec compile. Owner ids
// themselves are not secrets (they ride in URLs and receipts), so an
// unknown id stays a 404 rather than being folded into the 401.
func (s *Server) runtimeFor(r *http.Request, id string) (*ownerRuntime, error) {
	if id == "" {
		return nil, errf(http.StatusBadRequest, "owner query parameter is required")
	}
	// Staleness fast path: with OwnerRefresh set, a recently-checked
	// runtime is trusted without re-reading the registry. The credential
	// still has to match the cached record — the bound trades freshness
	// of the record, never the authentication.
	if s.opts.OwnerRefresh > 0 {
		s.mu.Lock()
		rt, ok := s.runtimes[id]
		s.mu.Unlock()
		if ok && time.Now().UnixNano()-rt.checked.Load() < int64(s.opts.OwnerRefresh) {
			if err := s.authorize(r, rt.owner); err != nil {
				return nil, err
			}
			obs.FromContext(r.Context()).SetOwner(id)
			return rt, nil
		}
	}
	o, err := s.reg.GetOwner(id)
	if err != nil {
		if errors.Is(err, registry.ErrNotFound) {
			return nil, errf(http.StatusNotFound, "unknown owner %q", id)
		}
		return nil, err
	}
	if err := s.authorize(r, o); err != nil {
		return nil, err
	}
	obs.FromContext(r.Context()).SetOwner(id)
	s.mu.Lock()
	rt, ok := s.runtimes[id]
	s.mu.Unlock()
	if ok && sameOwner(rt.owner, o) {
		rt.checked.Store(time.Now().UnixNano())
		return rt, nil
	}
	rt, err = s.buildRuntime(o)
	if err != nil {
		return nil, err
	}
	rt.checked.Store(time.Now().UnixNano())
	s.mu.Lock()
	s.runtimes[id] = rt
	s.mu.Unlock()
	// The record changed under us (out-of-band registry replacement):
	// drop the cached SLO objectives along with the stale runtime.
	s.slo.invalidate(id)
	return rt, nil
}

// buildRuntime compiles an owner record into working objects.
func (s *Server) buildRuntime(o registry.Owner) (*ownerRuntime, error) {
	var (
		sch     *schema.Schema
		cat     semantics.Catalog
		targets []string
	)
	switch {
	case o.Dataset != "":
		// Only the schema/catalog/targets matter; the generated
		// document is discarded, so resolve the smallest instance.
		ds, err := datagen.Preset(o.Dataset, 1, 0)
		if err != nil {
			return nil, errf(http.StatusBadRequest, "owner %q: %v", o.ID, err)
		}
		sch, cat, targets = ds.Schema, ds.Catalog, ds.Targets
	default:
		spec, err := config.Parse(o.Spec)
		if err != nil {
			return nil, errf(http.StatusBadRequest, "owner %q: %v", o.ID, err)
		}
		sch, err = spec.BuildSchema()
		if err != nil {
			return nil, errf(http.StatusBadRequest, "owner %q: %v", o.ID, err)
		}
		cat = spec.BuildCatalog()
		targets = spec.Targets
	}
	cfg := core.Config{
		Key:         []byte(o.Key),
		Mark:        wmark.FromText(o.Mark),
		Gamma:       o.Gamma,
		Schema:      sch,
		Catalog:     cat,
		Identity:    identity.Options{Targets: targets},
		Concurrency: s.opts.Concurrency,
	}
	fp, err := fingerprint.New(fingerprint.Options{
		Key:         []byte(o.Key),
		Schema:      sch,
		Catalog:     cat,
		Targets:     targets,
		Gamma:       o.Gamma,
		Concurrency: s.opts.Concurrency,
	})
	if err != nil {
		return nil, errf(http.StatusBadRequest, "owner %q: %v", o.ID, err)
	}
	return &ownerRuntime{
		owner:   o,
		cfg:     cfg,
		eng:     pipeline.New(cfg, pipeline.Options{Workers: 1}),
		fp:      fp,
		schema:  sch,
		catalog: cat,
	}, nil
}

// --- handlers ---

// ownerResponse acknowledges a registration.
type ownerResponse struct {
	ID       string `json:"id"`
	Dataset  string `json:"dataset,omitempty"`
	Gamma    int    `json:"gamma,omitempty"`
	Receipts int    `json:"receipts"`
}

// handlePutOwner registers (or re-registers) a tenant. First-time
// registration is open; replacing an existing owner (key rotation,
// spec change) must prove knowledge of the key it replaces, or any
// network peer could hijack the tenant with its own key and mark. The
// runtime is built eagerly so a broken spec fails registration, not
// the first embed.
func (s *Server) handlePutOwner(w http.ResponseWriter, r *http.Request) {
	body, err := s.readBody(w, r)
	if err != nil {
		s.writeErr(w, r, err)
		return
	}
	var o registry.Owner
	if err := json.Unmarshal(body, &o); err != nil {
		s.writeErr(w, r, errf(http.StatusBadRequest, "parse owner: %v", err))
		return
	}
	if o.CreatedUnix == 0 {
		o.CreatedUnix = time.Now().Unix()
	}
	if err := o.Validate(); err != nil {
		s.writeErr(w, r, errf(http.StatusBadRequest, "%v", err))
		return
	}
	tr := obs.FromContext(r.Context())
	tr.SetOp("register")
	tr.SetOwner(o.ID)
	// Cheap fast-fail before the spec compile: unauthenticated peers
	// must not get to burn a buildRuntime against an existing id. The
	// authoritative check is repeated under the lock below.
	if existing, gerr := s.reg.GetOwner(o.ID); gerr == nil {
		if err := s.authorize(r, existing); err != nil {
			s.writeErr(w, r, errf(http.StatusUnauthorized, "owner %q exists; re-registration requires Authorization: Bearer <current key>", o.ID))
			return
		}
	} else if !errors.Is(gerr, registry.ErrNotFound) {
		s.writeErr(w, r, gerr)
		return
	}
	rt, err := s.buildRuntime(o)
	if err != nil {
		s.writeErr(w, r, err)
		return
	}
	// The exists-check and the Put must be one atomic step: two
	// concurrent registrations of the same fresh id would otherwise
	// both pass the not-found check and the later Put would silently
	// overwrite the earlier key — a hijack window on first
	// registration. s.mu serializes every registration in this process,
	// and the registry file lock guarantees this process is the only
	// writer.
	s.mu.Lock()
	if existing, gerr := s.reg.GetOwner(o.ID); gerr == nil {
		if err := s.authorize(r, existing); err != nil {
			s.mu.Unlock()
			s.writeErr(w, r, errf(http.StatusUnauthorized, "owner %q exists; re-registration requires Authorization: Bearer <current key>", o.ID))
			return
		}
	} else if !errors.Is(gerr, registry.ErrNotFound) {
		s.mu.Unlock()
		s.writeErr(w, r, gerr)
		return
	}
	if err := s.reg.PutOwner(o); err != nil {
		s.mu.Unlock()
		s.writeErr(w, r, err)
		return
	}
	s.runtimes[o.ID] = rt
	s.mu.Unlock()
	// Re-registration is how operators tune a tenant's SLO override;
	// make the new objectives take effect on the next request.
	s.slo.invalidate(o.ID)
	n := 0
	if recs, err := s.reg.ListReceipts(o.ID); err == nil {
		n = len(recs)
	}
	writeJSON(w, http.StatusOK, ownerResponse{ID: o.ID, Dataset: o.Dataset, Gamma: o.Gamma, Receipts: n})
}

// receiptMeta is the receipt listing entry; Records is elided unless
// ?full=1.
type receiptMeta struct {
	ID             string             `json:"id"`
	Doc            string             `json:"doc,omitempty"`
	Recipient      string             `json:"recipient,omitempty"`
	CreatedUnix    int64              `json:"created_unix"`
	QueryCount     int                `json:"query_count"`
	BandwidthUnits int                `json:"bandwidth_units"`
	Carriers       int                `json:"carriers"`
	ValuesWritten  int                `json:"values_written"`
	Records        []core.QueryRecord `json:"records,omitempty"`
}

func (s *Server) handleListReceipts(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	o, err := s.reg.GetOwner(id)
	if err != nil {
		if errors.Is(err, registry.ErrNotFound) {
			s.writeErr(w, r, errf(http.StatusNotFound, "unknown owner %q", id))
			return
		}
		s.writeErr(w, r, err)
		return
	}
	// Receipts are the safeguarded query sets; even the metadata listing
	// is for the key holder only.
	if err := s.authorize(r, o); err != nil {
		s.writeErr(w, r, err)
		return
	}
	obs.FromContext(r.Context()).SetOwner(id)
	recs, err := s.reg.ListReceipts(id)
	if err != nil {
		s.writeErr(w, r, err)
		return
	}
	full := r.URL.Query().Get("full") == "1"
	out := make([]receiptMeta, len(recs))
	for i, rc := range recs {
		out[i] = receiptMeta{
			ID: rc.ID, Doc: rc.Doc, Recipient: rc.Recipient, CreatedUnix: rc.CreatedUnix,
			QueryCount:     len(rc.Records),
			BandwidthUnits: rc.BandwidthUnits, Carriers: rc.Carriers, ValuesWritten: rc.ValuesWritten,
		}
		if full {
			out[i].Records = rc.Records
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"owner": id, "receipts": out})
}

// handleEmbed watermarks the XML request body under the owner's key and
// mark, stores the receipt, and returns the marked document. The
// receipt id is derived from the owner and body hash, so retrying the
// same embed is idempotent.
func (s *Server) handleEmbed(w http.ResponseWriter, r *http.Request) {
	tr := obs.FromContext(r.Context())
	tr.SetOp("embed")
	ownerID := r.URL.Query().Get("owner")
	rt, err := s.runtimeFor(r, ownerID)
	if err != nil {
		s.writeErr(w, r, err)
		return
	}
	if r.URL.Query().Get("mode") == "stream" {
		s.handleEmbedStream(w, r, rt, ownerID)
		return
	}
	body, err := s.readBody(w, r)
	if err != nil {
		s.writeErr(w, r, err)
		return
	}
	if err := s.acquire(r); err != nil {
		s.writeErr(w, r, err)
		return
	}
	defer s.release()
	psp := tr.StartSpan("parse")
	doc, err := s.parseDoc(body)
	psp.End()
	if err != nil {
		s.writeErr(w, r, err)
		return
	}
	// The receipt id binds the body to the owner configuration that
	// marked it: retrying the identical embed dedupes (deterministic
	// embedding makes the receipts byte-identical), while re-embedding
	// after a key/mark/gamma rotation gets a fresh receipt instead of
	// silently colliding with the stale one. 128 id bits keep the
	// accidental-collision probability negligible at any realistic
	// receipt count.
	idh := sha256.New()
	fmt.Fprintf(idh, "%s\x1f%s\x1f%s\x1f%d\x1f", rt.owner.ID, rt.owner.Key, rt.owner.Mark, rt.owner.Gamma)
	idh.Write(body)
	receiptID := "r-" + hex.EncodeToString(idh.Sum(nil))[:32]
	label := r.URL.Query().Get("doc")

	outs, err := rt.eng.EmbedAll(r.Context(), []pipeline.Job{{ID: receiptID, Doc: doc}})
	if err != nil {
		s.writeErr(w, r, errf(499, "cancelled: %v", err))
		return
	}
	out := outs[0]
	if out.Err != nil {
		s.writeErr(w, r, errf(http.StatusUnprocessableEntity, "embed: %v", out.Err))
		return
	}
	rec := registry.Receipt{
		ID: receiptID, Owner: ownerID, Doc: label,
		CreatedUnix:    time.Now().Unix(),
		Records:        out.Result.Records,
		BandwidthUnits: out.Result.Bandwidth.Units,
		Carriers:       out.Result.Carriers,
		ValuesWritten:  out.Result.Embedded,
	}
	rsp := tr.StartSpan("registry")
	if err := s.reg.AddReceipt(rec); err != nil {
		if !errors.Is(err, registry.ErrDuplicate) {
			s.writeErr(w, r, errf(http.StatusInternalServerError, "store receipt: %v", err))
			return
		}
		// Same id under this owner: an idempotent retry of the identical
		// embed stores identical records. Anything else is an id
		// collision between different documents — refuse rather than
		// hand back a receipt whose queries target another document.
		stored, gerr := s.reg.GetReceipt(ownerID, receiptID)
		if gerr != nil || !slices.Equal(stored.Records, rec.Records) {
			s.writeErr(w, r, errf(http.StatusInternalServerError, "receipt id collision on %q: stored records do not match this embedding", receiptID))
			return
		}
	}
	rsp.End()
	s.met.embeds.Inc()
	h := w.Header()
	h.Set("Content-Type", "application/xml")
	h.Set("X-Wmxml-Receipt", receiptID)
	h.Set("X-Wmxml-Carriers", fmt.Sprint(out.Result.Carriers))
	h.Set("X-Wmxml-Bandwidth-Units", fmt.Sprint(out.Result.Bandwidth.Units))
	h.Set("X-Wmxml-Values-Written", fmt.Sprint(out.Result.Embedded))
	w.WriteHeader(http.StatusOK)
	xmltree.Serialize(w, doc, xmltree.SerializeOptions{Indent: "  "})
}

// detectResponse is the JSON verdict of one detection pass.
type detectResponse struct {
	Owner             string  `json:"owner"`
	Mode              string  `json:"mode"` // "receipts" or "blind"
	Receipt           string  `json:"receipt,omitempty"`
	ReceiptsTried     int     `json:"receipts_tried"`
	Detected          bool    `json:"detected"`
	MatchFraction     float64 `json:"match_fraction"`
	Coverage          float64 `json:"coverage"`
	Sigma             float64 `json:"sigma"`
	FalsePositiveRate float64 `json:"false_positive_rate"`
	RecoveredText     string  `json:"recovered_text,omitempty"`
	QueriesRun        int     `json:"queries_run"`
	QueryMisses       int     `json:"query_misses"`
	CacheHit          bool    `json:"cache_hit"`
	ElapsedMS         float64 `json:"elapsed_ms"`
}

// suspectDoc resolves the request body to a parsed document and index,
// through the content-hash cache. The lookup, the parse and the index
// build each get a stage span on the request trace, so a cold detect
// shows where its time went (and the cache span's note says
// hit/miss/coalesced).
//
// Cold lookups are singleflighted on the body hash: under N concurrent
// detects of the same uncached body, exactly one request parses and
// indexes while the other N-1 wait on its flight and share the result.
// Before the flight, each of the N paid the full parse+index cost — the
// miss stampede that made a cache-cold burst N times as expensive as it
// needed to be. With the cache disabled (CacheEntries < 0) there is
// nothing to populate, so every request does its own work, as before.
func (s *Server) suspectDoc(body []byte, tr *obs.Trace) (cachedDoc, bool, error) {
	sum := sha256.Sum256(body)
	csp := tr.StartSpan("cache")
	cd, ok := s.cache.get(sum)
	if ok {
		csp.EndNote("hit")
		tr.SetCacheHit(true)
		s.met.cacheHits.Inc()
		return cd, true, nil
	}
	if s.opts.CacheEntries == 0 {
		csp.EndNote("miss")
		s.met.cacheMiss.Inc()
		return s.fillDoc(sum, body, tr)
	}
	call, leader := s.cache.join(sum)
	if !leader {
		csp.EndNote("coalesced")
		s.met.cacheCoalesced.Inc()
		call.wg.Wait()
		if call.err != nil {
			return cachedDoc{}, false, call.err
		}
		tr.SetCacheHit(true)
		return call.cd, true, nil
	}
	// Leader double-check: between our miss and winning the flight, a
	// previous leader may have completed and populated the cache.
	if cd, ok := s.cache.get(sum); ok {
		s.cache.complete(sum, call, cd, nil)
		csp.EndNote("hit")
		tr.SetCacheHit(true)
		s.met.cacheHits.Inc()
		return cd, true, nil
	}
	csp.EndNote("miss")
	s.met.cacheMiss.Inc()
	cd, hit, err := s.fillDoc(sum, body, tr)
	s.cache.complete(sum, call, cd, err)
	return cd, hit, err
}

// fillDoc does the actual work of a cache miss: consult the peer-fill
// hook if one is wired (a fleet node borrowing a sibling's parse),
// otherwise parse and index locally, then populate the cache.
func (s *Server) fillDoc(sum [sha256.Size]byte, body []byte, tr *obs.Trace) (cachedDoc, bool, error) {
	if s.opts.CacheFill != nil {
		if doc, ix, ok := s.opts.CacheFill(sum, body); ok && doc != nil && ix != nil {
			s.met.cacheFill.Inc()
			cd := cachedDoc{doc: doc, ix: ix}
			s.cachePut(sum, cd, int64(len(body)))
			return cd, false, nil
		}
	}
	psp := tr.StartSpan("parse")
	doc, err := s.parseDoc(body)
	psp.End()
	if err != nil {
		return cachedDoc{}, false, err
	}
	isp := tr.StartSpan("index")
	cd := cachedDoc{doc: doc, ix: index.New(doc)}
	isp.End()
	s.cachePut(sum, cd, int64(len(body)))
	return cd, false, nil
}

// cachePut inserts a parsed document and keeps the cache gauges honest.
func (s *Server) cachePut(sum [sha256.Size]byte, cd cachedDoc, weight int64) {
	if ev := s.cache.put(sum, cd, weight); ev > 0 {
		s.met.cacheEvict.Add(uint64(ev))
	}
	s.met.cacheSize.Set(int64(s.cache.len()))
	s.met.cacheBytes.Set(s.cache.weight())
}

// handleDetect runs detection of the suspect XML body against the
// owner's registered receipts (no query set in the request). With
// ?receipt=ID only that receipt is tried; with ?mode=blind the carriers
// are re-derived from the document instead (original schema required).
func (s *Server) handleDetect(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	tr := obs.FromContext(r.Context())
	tr.SetOp("detect")
	ownerID := r.URL.Query().Get("owner")
	rt, err := s.runtimeFor(r, ownerID)
	if err != nil {
		s.writeErr(w, r, err)
		return
	}
	switch r.URL.Query().Get("mode") {
	case "stream":
		s.handleDetectStream(w, r, rt, ownerID, false)
		return
	case "stream-blind":
		s.handleDetectStream(w, r, rt, ownerID, true)
		return
	}
	blind := r.URL.Query().Get("mode") == "blind"
	wantReceipt := r.URL.Query().Get("receipt")
	body, err := s.readBody(w, r)
	if err != nil {
		s.writeErr(w, r, err)
		return
	}
	if err := s.acquire(r); err != nil {
		s.writeErr(w, r, err)
		return
	}
	defer s.release()
	cd, cacheHit, err := s.suspectDoc(body, tr)
	if err != nil {
		s.writeErr(w, r, err)
		return
	}

	// Assemble the detection jobs: one per candidate receipt, or a
	// single blind job.
	var jobs []pipeline.DetectJob
	var ids []string
	if blind {
		jobs = []pipeline.DetectJob{{Job: pipeline.Job{ID: "blind", Doc: cd.doc}, Index: cd.ix}}
		ids = []string{""}
	} else {
		var recs []registry.Receipt
		rsp := tr.StartSpan("registry")
		if wantReceipt != "" {
			rec, err := s.reg.GetReceipt(ownerID, wantReceipt)
			if err != nil {
				rsp.End()
				s.writeErr(w, r, errf(http.StatusNotFound, "owner %q has no receipt %q", ownerID, wantReceipt))
				return
			}
			recs = []registry.Receipt{rec}
		} else {
			recs, err = s.reg.ListReceipts(ownerID)
			if err != nil {
				rsp.End()
				s.writeErr(w, r, err)
				return
			}
			if len(recs) == 0 {
				rsp.End()
				s.writeErr(w, r, errf(http.StatusConflict, "owner %q has no receipts; embed first or use mode=blind", ownerID))
				return
			}
		}
		rsp.End()
		// Newest first: the latest embedding is the likeliest source.
		// Each job carries its receipt's compiled decode plan from the
		// plan cache; a nil plan (compile error) falls back to the
		// uncached path so the error surfaces exactly as before.
		for i := len(recs) - 1; i >= 0; i-- {
			jobs = append(jobs, pipeline.DetectJob{
				Job:     pipeline.Job{ID: recs[i].ID, Doc: cd.doc},
				Records: recs[i].Records,
				Index:   cd.ix,
				Plan:    s.detectPlanFor(rt, ownerID, recs[i].ID, recs[i].Records, tr),
			})
			ids = append(ids, recs[i].ID)
		}
	}

	resp := detectResponse{Owner: ownerID, Mode: "receipts", CacheHit: cacheHit}
	if blind {
		resp.Mode = "blind"
	}
	best := -1
	var bestRes *core.DetectResult
	var lastErr error
	for i, job := range jobs {
		outs, err := rt.eng.DetectAll(r.Context(), []pipeline.DetectJob{job})
		if err != nil {
			s.writeErr(w, r, errf(499, "cancelled: %v", err))
			return
		}
		resp.ReceiptsTried++
		out := outs[0]
		if out.Err != nil {
			// A single unusable receipt must not fail the sweep; the
			// error only surfaces if no receipt answers at all.
			lastErr = out.Err
			continue
		}
		// A detected verdict always wins: a wrong receipt can tie on
		// match fraction (few queries hit, all agree) while failing the
		// coverage floor, and a strict > comparison would let that stale
		// non-detection shadow the true receipt.
		if out.Result.Detected {
			bestRes, best = out.Result, i
			break
		}
		if bestRes == nil || out.Result.MatchFraction > bestRes.MatchFraction {
			bestRes, best = out.Result, i
		}
	}
	if bestRes == nil {
		if lastErr == nil {
			lastErr = errors.New("no receipt was usable")
		}
		s.writeErr(w, r, errf(http.StatusUnprocessableEntity, "detect: %v", lastErr))
		return
	}
	if bestRes.Detected {
		tr.SetVerdict("detected")
	} else {
		tr.SetVerdict("clean")
	}
	resp.Receipt = ids[best]
	resp.Detected = bestRes.Detected
	resp.MatchFraction = bestRes.MatchFraction
	resp.Coverage = bestRes.Coverage
	resp.Sigma = bestRes.Sigma()
	resp.FalsePositiveRate = wmark.FalsePositiveProbability(bestRes.VotedBits, bestRes.MatchFraction)
	resp.RecoveredText = bestRes.Recovered.Text()
	resp.QueriesRun = bestRes.QueriesRun
	resp.QueryMisses = bestRes.QueryMisses
	resp.ElapsedMS = float64(time.Since(start).Microseconds()) / 1000
	s.met.detects.Inc()
	if resp.Detected {
		s.met.detected.Inc()
	}
	writeJSON(w, http.StatusOK, resp)
}

// verifyResponse reports schema and semantic validation of a document
// against an owner's spec.
type verifyResponse struct {
	Owner            string             `json:"owner"`
	SchemaValid      bool               `json:"schema_valid"`
	SchemaViolations []string           `json:"schema_violations,omitempty"`
	ViolationCount   int                `json:"violation_count"`
	Keys             []constraintStatus `json:"keys,omitempty"`
	FDs              []constraintStatus `json:"fds,omitempty"`
	OK               bool               `json:"ok"`
	CacheHit         bool               `json:"cache_hit"`
}

type constraintStatus struct {
	Constraint string `json:"constraint"`
	OK         bool   `json:"ok"`
	Detail     string `json:"detail,omitempty"`
}

// handleVerify validates the XML body against the owner's schema and
// verifies the declared keys and FDs — the paper's initialization step
// as a service endpoint.
func (s *Server) handleVerify(w http.ResponseWriter, r *http.Request) {
	tr := obs.FromContext(r.Context())
	tr.SetOp("verify")
	ownerID := r.URL.Query().Get("owner")
	rt, err := s.runtimeFor(r, ownerID)
	if err != nil {
		s.writeErr(w, r, err)
		return
	}
	body, err := s.readBody(w, r)
	if err != nil {
		s.writeErr(w, r, err)
		return
	}
	if err := s.acquire(r); err != nil {
		s.writeErr(w, r, err)
		return
	}
	defer s.release()
	cd, cacheHit, err := s.suspectDoc(body, tr)
	if err != nil {
		s.writeErr(w, r, err)
		return
	}
	resp := verifyResponse{Owner: ownerID, OK: true, CacheHit: cacheHit}
	violations := rt.schema.Validate(cd.doc)
	resp.ViolationCount = len(violations)
	resp.SchemaValid = len(violations) == 0
	if !resp.SchemaValid {
		resp.OK = false
		for i, v := range violations {
			if i == 10 {
				break
			}
			resp.SchemaViolations = append(resp.SchemaViolations, v.String())
		}
	}
	keyReps, fdReps, err := rt.catalog.Verify(cd.doc)
	if err != nil {
		s.writeErr(w, r, errf(http.StatusUnprocessableEntity, "verify: %v", err))
		return
	}
	for _, kr := range keyReps {
		st := constraintStatus{Constraint: fmt.Sprint(kr.Key), OK: kr.OK()}
		if !st.OK {
			st.Detail = fmt.Sprintf("%d missing, %d duplicate values over %d instances", kr.Missing, len(kr.Duplicates), kr.Instances)
			resp.OK = false
		}
		resp.Keys = append(resp.Keys, st)
	}
	for _, fr := range fdReps {
		st := constraintStatus{Constraint: fmt.Sprint(fr.FD), OK: fr.OK()}
		if !st.OK {
			st.Detail = fmt.Sprintf("%d groups disagree", len(fr.Violations))
			resp.OK = false
		}
		resp.FDs = append(resp.FDs, st)
	}
	s.met.verifies.Inc()
	writeJSON(w, http.StatusOK, resp)
}

// guarded runs fn converting panics in tree or plug-in code into a 422
// for this request — fingerprint and trace run outside the pipeline
// engine (their config varies per recipient), so they carry their own
// isolation.
func guarded(fn func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = errf(http.StatusUnprocessableEntity, "panicked: %v", r)
		}
	}()
	return fn()
}

// handleFingerprint watermarks the XML body with a recipient-specific
// code under the owner's key, registers the recipient, stores a
// recipient-tagged receipt and returns the recipient's copy — the
// distribution counterpart of /v1/embed.
func (s *Server) handleFingerprint(w http.ResponseWriter, r *http.Request) {
	tr := obs.FromContext(r.Context())
	tr.SetOp("fingerprint")
	ownerID := r.URL.Query().Get("owner")
	rt, err := s.runtimeFor(r, ownerID)
	if err != nil {
		s.writeErr(w, r, err)
		return
	}
	recipientID := r.URL.Query().Get("recipient")
	if recipientID == "" {
		s.writeErr(w, r, errf(http.StatusBadRequest, "recipient query parameter is required"))
		return
	}
	rcpt := registry.Recipient{ID: recipientID, Owner: ownerID, Note: r.URL.Query().Get("note"), CreatedUnix: time.Now().Unix()}
	if err := rcpt.Validate(); err != nil {
		s.writeErr(w, r, errf(http.StatusBadRequest, "%v", err))
		return
	}
	body, err := s.readBody(w, r)
	if err != nil {
		s.writeErr(w, r, err)
		return
	}
	if err := s.acquire(r); err != nil {
		s.writeErr(w, r, err)
		return
	}
	defer s.release()
	psp := tr.StartSpan("parse")
	doc, err := s.parseDoc(body)
	psp.End()
	if err != nil {
		s.writeErr(w, r, err)
		return
	}
	// Like embed's receipt id, but bound to the recipient too: retrying
	// the same fingerprint dedupes, different recipients never collide.
	idh := sha256.New()
	fmt.Fprintf(idh, "fp\x1f%s\x1f%s\x1f%s\x1f%d\x1f%s\x1f", rt.owner.ID, rt.owner.Key, rt.owner.Mark, rt.owner.Gamma, recipientID)
	idh.Write(body)
	receiptID := "f-" + hex.EncodeToString(idh.Sum(nil))[:32]

	var res *core.EmbedResult
	esp := tr.StartSpan("embed")
	if err := guarded(func() error {
		var eerr error
		res, eerr = rt.fp.Embed(doc, recipientID)
		return eerr
	}); err != nil {
		s.writeErr(w, r, errf(http.StatusUnprocessableEntity, "fingerprint: %v", err))
		return
	}
	esp.End()
	// The recipient record makes the id a tracing candidate; the
	// receipt binds this copy's query set to it. Registration is
	// idempotent (first CreatedUnix wins).
	rgsp := tr.StartSpan("registry")
	if err := s.reg.PutRecipient(rcpt); err != nil {
		s.writeErr(w, r, errf(http.StatusInternalServerError, "store recipient: %v", err))
		return
	}
	rec := registry.Receipt{
		ID: receiptID, Owner: ownerID, Doc: r.URL.Query().Get("doc"), Recipient: recipientID,
		CreatedUnix:    time.Now().Unix(),
		Records:        res.Records,
		BandwidthUnits: res.Bandwidth.Units,
		Carriers:       res.Carriers,
		ValuesWritten:  res.Embedded,
	}
	if err := s.reg.AddReceipt(rec); err != nil {
		if !errors.Is(err, registry.ErrDuplicate) {
			s.writeErr(w, r, errf(http.StatusInternalServerError, "store receipt: %v", err))
			return
		}
		stored, gerr := s.reg.GetReceipt(ownerID, receiptID)
		if gerr != nil || !slices.Equal(stored.Records, rec.Records) {
			s.writeErr(w, r, errf(http.StatusInternalServerError, "receipt id collision on %q: stored records do not match this fingerprint", receiptID))
			return
		}
	}
	rgsp.End()
	s.met.fingerprints.Inc()
	h := w.Header()
	h.Set("Content-Type", "application/xml")
	h.Set("X-Wmxml-Receipt", receiptID)
	h.Set("X-Wmxml-Recipient", recipientID)
	h.Set("X-Wmxml-Carriers", fmt.Sprint(res.Carriers))
	h.Set("X-Wmxml-Values-Written", fmt.Sprint(res.Embedded))
	w.WriteHeader(http.StatusOK)
	xmltree.Serialize(w, doc, xmltree.SerializeOptions{Indent: "  "})
}

// traceResponse is the JSON verdict of one trace sweep.
type traceResponse struct {
	Owner       string                   `json:"owner"`
	Mode        string                   `json:"mode"` // "blind" or "receipt"
	Candidates  int                      `json:"candidates"`
	Accused     []string                 `json:"accused"`
	Accusations []fingerprint.Accusation `json:"accusations"`
	DecidedBits int                      `json:"decided_bits"`
	Threshold   float64                  `json:"threshold"`
	QueriesRun  int                      `json:"queries_run"`
	QueryMisses int                      `json:"query_misses"`
	CacheHit    bool                     `json:"cache_hit"`
	ElapsedMS   float64                  `json:"elapsed_ms"`
}

// handleTrace sweeps the suspect XML body against every recipient
// registered under the owner and returns the ranked accusation list.
// The suspect is decoded once — through the same parsed-document cache
// detection uses, so repeated traces skip reparse and index build —
// and the per-recipient work is a bit-vector correlation, which is
// what keeps an N-recipient sweep near the cost of a single detection.
// With ?receipt=ID the decode runs through that stored query set
// instead of blind carrier re-derivation.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	tr := obs.FromContext(r.Context())
	tr.SetOp("trace")
	ownerID := r.URL.Query().Get("owner")
	rt, err := s.runtimeFor(r, ownerID)
	if err != nil {
		s.writeErr(w, r, err)
		return
	}
	wantReceipt := r.URL.Query().Get("receipt")
	body, err := s.readBody(w, r)
	if err != nil {
		s.writeErr(w, r, err)
		return
	}
	if err := s.acquire(r); err != nil {
		s.writeErr(w, r, err)
		return
	}
	defer s.release()
	rsp := tr.StartSpan("registry")
	recipients, err := s.reg.ListRecipients(ownerID)
	rsp.End()
	if err != nil {
		s.writeErr(w, r, err)
		return
	}
	if len(recipients) == 0 {
		s.writeErr(w, r, errf(http.StatusConflict, "owner %q has no recipients; fingerprint first", ownerID))
		return
	}
	candidates := make([]string, len(recipients))
	for i, rc := range recipients {
		candidates[i] = rc.ID
	}
	cd, cacheHit, err := s.suspectDoc(body, tr)
	if err != nil {
		s.writeErr(w, r, err)
		return
	}
	topts := fingerprint.TraceOptions{Index: cd.ix, Trace: tr}
	mode := "blind"
	if wantReceipt != "" {
		rec, gerr := s.reg.GetReceipt(ownerID, wantReceipt)
		if gerr != nil {
			s.writeErr(w, r, errf(http.StatusNotFound, "owner %q has no receipt %q", ownerID, wantReceipt))
			return
		}
		topts.Records = rec.Records
		topts.Plan = s.tracePlanFor(rt, ownerID, wantReceipt, rec.Records, tr)
		mode = "receipt"
	}
	var res *fingerprint.TraceResult
	if err := guarded(func() error {
		var terr error
		res, terr = rt.fp.Trace(cd.doc, candidates, topts)
		return terr
	}); err != nil {
		s.writeErr(w, r, errf(http.StatusUnprocessableEntity, "trace: %v", err))
		return
	}
	s.met.traces.Inc()
	if len(res.Accused) > 0 {
		tr.SetVerdict("accused")
		s.met.traceAccused.Inc()
	} else {
		tr.SetVerdict("clean")
	}
	writeJSON(w, http.StatusOK, traceResponse{
		Owner:       ownerID,
		Mode:        mode,
		Candidates:  len(candidates),
		Accused:     res.Accused,
		Accusations: res.Accusations,
		DecidedBits: res.DecidedBits,
		Threshold:   res.Threshold,
		QueriesRun:  res.QueriesRun,
		QueryMisses: res.QueryMisses,
		CacheHit:    cacheHit,
		ElapsedMS:   float64(time.Since(start).Microseconds()) / 1000,
	})
}

// handleListRecipients lists the owner's registered recipients — the
// candidate set /v1/trace sweeps. Key-holder only, like receipts.
func (s *Server) handleListRecipients(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	o, err := s.reg.GetOwner(id)
	if err != nil {
		if errors.Is(err, registry.ErrNotFound) {
			s.writeErr(w, r, errf(http.StatusNotFound, "unknown owner %q", id))
			return
		}
		s.writeErr(w, r, err)
		return
	}
	if err := s.authorize(r, o); err != nil {
		s.writeErr(w, r, err)
		return
	}
	obs.FromContext(r.Context()).SetOwner(id)
	rcs, err := s.reg.ListRecipients(id)
	if err != nil {
		s.writeErr(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"owner": id, "recipients": rcs})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	owners, err := s.reg.ListOwners()
	if err != nil {
		s.writeErr(w, r, errf(http.StatusServiceUnavailable, "registry: %v", err))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":  "ok",
		"version": s.opts.Version,
		"owners":  len(owners),
	})
}

// handleReadyz is the readiness probe — distinct from /healthz
// (liveness): a live process stops being ready while draining on
// shutdown, or when its registry store stops answering. The registry
// probe is a single-key read against an id no tenant can register
// (ids may not contain '/'), so a healthy store answers ErrNotFound
// without scanning anything.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"status": "draining",
			"reason": "shutting down: not accepting new work",
		})
		return
	}
	if _, err := s.reg.GetOwner("_readyz/probe"); err != nil && !errors.Is(err, registry.ErrNotFound) {
		// Detail goes to the log; the body stays generic — readyz sits on
		// the unauthenticated service mux.
		s.log.Error("readiness probe failed", "error", err.Error())
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"status": "unready",
			"reason": "registry probe failed",
		})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "ready", "version": s.opts.Version})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.met.cacheSize.Set(int64(s.cache.len()))
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.met.render(w)
}
