package server

// The anomaly watchdog: the "what was the process doing when it
// wasn't healthy?" half of the self-observing runtime. On a ticker it
// evaluates threshold rules over the SLO engine and the runtime health
// collector, and when one fires it writes a capture bundle — pprof
// heap/goroutine/CPU profiles, the slowest-trace ring, a /metrics
// snapshot and the firing rule itself — into a bounded on-disk ring.
// The bundle is the evidence an operator (or a postmortem) needs, taken
// at the moment of the anomaly instead of twenty minutes later when
// someone gets paged and the heap has already been OOM-killed flat.
//
// Rules:
//
//   - slo-detect-p99 / slo-error-ratio: an objective is burning at
//     ≥ threshold× budget in BOTH the fast (5m) and slow (1h) windows
//     with a minimum event count — the multi-window gate that keeps a
//     single slow request from triggering a bundle.
//   - heap-near-limit: live heap at ≥ 90% of GOMEMLIMIT (rule is
//     inert when no limit is set). The watchdog resamples the runtime
//     before this check so a fast heap climb cannot hide behind a
//     stale ticker sample.
//   - goroutine-spike: goroutine count over an absolute ceiling.
//
// Each (rule, owner) pair has a cooldown so a sustained breach yields
// one bundle per cooldown period, not hundreds; the disk ring keeps
// the newest maxBundles directories and evicts the oldest. Every
// capture increments wmxmld_captures_total and logs one structured
// line.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"wmxml/internal/obs"
)

// capturePrefix names bundle directories: cap-<UTC stamp>-<rule>, so a
// lexical sort of the ring directory is a chronological sort.
const capturePrefix = "cap-"

// watchdogConfig is the resolved rule and ring configuration.
type watchdogConfig struct {
	dir           string        // bundle ring directory ("" = watchdog off)
	maxBundles    int           // ring size (oldest evicted past this)
	cooldown      time.Duration // per-(rule,owner) refire gate
	cpuProfile    time.Duration // CPU profile length per bundle (0 = skip)
	interval      time.Duration // rule evaluation period
	burnThreshold float64       // fast+slow burn rate that arms the SLO rules
	minEvents     uint64        // fast-window event floor for the SLO rules
	heapFraction  float64       // of GOMEMLIMIT that arms heap-near-limit
	goroutineMax  int64         // absolute goroutine ceiling
}

// firedRule is the rule record written into a bundle's rule.json.
type firedRule struct {
	Rule     string         `json:"rule"`
	Owner    string         `json:"owner,omitempty"`
	FiredAt  string         `json:"fired_at"`
	Detail   map[string]any `json:"detail,omitempty"`
	Cooldown string         `json:"cooldown"`
}

// watchdog owns the ticker, the cooldown table and the bundle ring.
type watchdog struct {
	cfg  watchdogConfig
	slo  *sloEngine
	col  *obs.RuntimeCollector
	ring *obs.TraceRing
	met  *metrics
	log  *obs.Logger

	mu       sync.Mutex
	lastFire map[string]time.Time

	stop    chan struct{}
	done    chan struct{}
	started atomic.Bool
}

func newWatchdog(cfg watchdogConfig, slo *sloEngine, col *obs.RuntimeCollector, ring *obs.TraceRing, met *metrics, log *obs.Logger) *watchdog {
	if cfg.maxBundles <= 0 {
		cfg.maxBundles = 8
	}
	if cfg.cooldown <= 0 {
		cfg.cooldown = 5 * time.Minute
	}
	if cfg.interval <= 0 {
		cfg.interval = 10 * time.Second
	}
	if cfg.burnThreshold <= 0 {
		cfg.burnThreshold = 10
	}
	if cfg.minEvents == 0 {
		cfg.minEvents = 10
	}
	if cfg.heapFraction <= 0 || cfg.heapFraction > 1 {
		cfg.heapFraction = 0.9
	}
	if cfg.goroutineMax <= 0 {
		cfg.goroutineMax = 10000
	}
	return &watchdog{
		cfg:      cfg,
		slo:      slo,
		col:      col,
		ring:     ring,
		met:      met,
		log:      log,
		lastFire: make(map[string]time.Time),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
}

// Start launches the evaluation loop; no-op on nil or double start.
func (d *watchdog) Start() {
	if d == nil || !d.started.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer close(d.done)
		t := time.NewTicker(d.cfg.interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				d.check(time.Now())
			case <-d.stop:
				return
			}
		}
	}()
}

// Stop halts the loop; safe on nil or never-started.
func (d *watchdog) Stop() {
	if d == nil {
		return
	}
	if d.started.CompareAndSwap(false, true) {
		close(d.stop)
		return
	}
	select {
	case <-d.stop:
	default:
		close(d.stop)
	}
	<-d.done
}

// check evaluates every rule once. Exposed to tests via direct call.
func (d *watchdog) check(now time.Time) {
	for _, e := range d.slo.evaluateAll(now.Unix()) {
		if e.Fast.Detects >= d.cfg.minEvents &&
			e.Fast.DetectBurn >= d.cfg.burnThreshold && e.Slow.DetectBurn >= d.cfg.burnThreshold {
			d.fire(now, "slo-detect-p99", e.Owner, map[string]any{
				"fast_burn": e.Fast.DetectBurn, "slow_burn": e.Slow.DetectBurn,
				"fast_detects": e.Fast.Detects, "fast_slow_detects": e.Fast.DetectSlow,
				"objective_ms": e.DetectP99MS,
			})
		}
		if e.Fast.Events >= d.cfg.minEvents &&
			e.Fast.ErrorBurn >= d.cfg.burnThreshold && e.Slow.ErrorBurn >= d.cfg.burnThreshold {
			d.fire(now, "slo-error-ratio", e.Owner, map[string]any{
				"fast_burn": e.Fast.ErrorBurn, "slow_burn": e.Slow.ErrorBurn,
				"fast_events": e.Fast.Events, "fast_errors": e.Fast.Errors,
				"objective_ratio": e.ErrorRatio,
			})
		}
	}
	// Resample rather than trusting the ticker's snapshot: heap climbs
	// faster than a 10s sampling period during a leak.
	if snap := d.col.SampleNow(); snap != nil {
		if snap.MemLimitBytes > 0 &&
			float64(snap.HeapLiveBytes) >= d.cfg.heapFraction*float64(snap.MemLimitBytes) {
			d.fire(now, "heap-near-limit", "", map[string]any{
				"heap_live_bytes": snap.HeapLiveBytes, "gomemlimit_bytes": snap.MemLimitBytes,
				"fraction": d.cfg.heapFraction,
			})
		}
		if snap.Goroutines >= d.cfg.goroutineMax {
			d.fire(now, "goroutine-spike", "", map[string]any{
				"goroutines": snap.Goroutines, "ceiling": d.cfg.goroutineMax,
			})
		}
	}
}

// fire writes a bundle for one rule hit unless its cooldown is live.
func (d *watchdog) fire(now time.Time, rule, owner string, detail map[string]any) {
	key := rule + "/" + owner
	d.mu.Lock()
	if last, ok := d.lastFire[key]; ok && now.Sub(last) < d.cfg.cooldown {
		d.mu.Unlock()
		return
	}
	d.lastFire[key] = now
	d.mu.Unlock()

	fr := firedRule{
		Rule: rule, Owner: owner,
		FiredAt:  now.UTC().Format(time.RFC3339Nano),
		Detail:   detail,
		Cooldown: d.cfg.cooldown.String(),
	}
	dir, err := d.capture(now, fr)
	if err != nil {
		d.log.Error("capture bundle failed", "rule", rule, "owner", owner, "error", err.Error())
		return
	}
	d.met.captures.Inc()
	d.log.Warn("capture bundle written", "rule", rule, "owner", owner, "dir", dir)
}

// capture writes one bundle directory and evicts the ring's oldest.
// The bundle is assembled under a dotfile name and renamed into place,
// so a reader never sees a half-written bundle.
func (d *watchdog) capture(now time.Time, fr firedRule) (string, error) {
	if err := os.MkdirAll(d.cfg.dir, 0o755); err != nil {
		return "", err
	}
	name := capturePrefix + now.UTC().Format("20060102T150405.000000000") + "-" + fr.Rule
	tmp := filepath.Join(d.cfg.dir, "."+name)
	final := filepath.Join(d.cfg.dir, name)
	if err := os.MkdirAll(tmp, 0o755); err != nil {
		return "", err
	}
	defer os.RemoveAll(tmp) // no-op after a successful rename

	writeJSON := func(file string, v any) error {
		b, err := json.MarshalIndent(v, "", "  ")
		if err != nil {
			return err
		}
		return os.WriteFile(filepath.Join(tmp, file), append(b, '\n'), 0o644)
	}
	if err := writeJSON("rule.json", fr); err != nil {
		return "", err
	}
	if err := writeJSON("slo.json", d.slo.evaluateAll(now.Unix())); err != nil {
		return "", err
	}
	if err := writeJSON("traces.json", map[string]any{
		"slowest": emptyIfNil(d.ring.Slowest()),
		"recent":  emptyIfNil(d.ring.Recent()),
	}); err != nil {
		return "", err
	}
	mf, err := os.Create(filepath.Join(tmp, "metrics.prom"))
	if err != nil {
		return "", err
	}
	d.met.render(mf)
	if err := mf.Close(); err != nil {
		return "", err
	}
	for _, p := range []string{"heap", "goroutine"} {
		f, err := os.Create(filepath.Join(tmp, p+".pprof"))
		if err != nil {
			return "", err
		}
		perr := pprof.Lookup(p).WriteTo(f, 0)
		if cerr := f.Close(); perr == nil {
			perr = cerr
		}
		if perr != nil {
			return "", fmt.Errorf("write %s profile: %w", p, perr)
		}
	}
	if d.cfg.cpuProfile > 0 {
		// Best-effort: StartCPUProfile fails if a profile is already
		// running (e.g. an operator hitting the pprof listener); the
		// bundle is still useful without cpu.pprof.
		f, err := os.Create(filepath.Join(tmp, "cpu.pprof"))
		if err == nil {
			if err := pprof.StartCPUProfile(f); err == nil {
				time.Sleep(d.cfg.cpuProfile)
				pprof.StopCPUProfile()
				f.Close()
			} else {
				f.Close()
				os.Remove(f.Name())
			}
		}
	}
	if err := os.Rename(tmp, final); err != nil {
		return "", err
	}
	d.evict()
	return final, nil
}

// evict removes the oldest bundles past the ring size.
func (d *watchdog) evict() {
	names := listBundles(d.cfg.dir)
	for len(names) > d.cfg.maxBundles {
		os.RemoveAll(filepath.Join(d.cfg.dir, names[0]))
		names = names[1:]
	}
}

// listBundles returns the ring's bundle directory names, oldest first
// (the timestamped naming makes lexical order chronological).
func listBundles(dir string) []string {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil
	}
	var names []string
	for _, e := range ents {
		if e.IsDir() && strings.HasPrefix(e.Name(), capturePrefix) {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names
}

func emptyIfNil(s []*obs.Snapshot) []*obs.Snapshot {
	if s == nil {
		return []*obs.Snapshot{}
	}
	return s
}

// capturesHandler serves GET /debug/captures on the debug listener: the
// bundle ring's index — names, files and sizes — newest first. The
// bundles themselves stay on disk; operators fetch them out of band.
func capturesHandler(dir string) http.Handler {
	type bundleFile struct {
		Name  string `json:"name"`
		Bytes int64  `json:"bytes"`
	}
	type bundle struct {
		Name     string       `json:"name"`
		Modified string       `json:"modified"`
		Files    []bundleFile `json:"files"`
	}
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if dir == "" {
			w.WriteHeader(http.StatusNotFound)
			json.NewEncoder(w).Encode(map[string]string{
				"error":      "capture ring disabled (start wmxmld with --capture-dir)",
				"request_id": obs.NewRequestID(),
			})
			return
		}
		names := listBundles(dir)
		out := struct {
			Dir     string   `json:"dir"`
			Bundles []bundle `json:"bundles"`
		}{Dir: dir, Bundles: []bundle{}}
		for i := len(names) - 1; i >= 0; i-- { // newest first
			b := bundle{Name: names[i], Files: []bundleFile{}}
			full := filepath.Join(dir, names[i])
			if fi, err := os.Stat(full); err == nil {
				b.Modified = fi.ModTime().UTC().Format(time.RFC3339)
			}
			if ents, err := os.ReadDir(full); err == nil {
				for _, e := range ents {
					f := bundleFile{Name: e.Name()}
					if fi, err := e.Info(); err == nil {
						f.Bytes = fi.Size()
					}
					b.Files = append(b.Files, f)
				}
			}
			out.Bundles = append(out.Bundles, b)
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(out)
	})
}
