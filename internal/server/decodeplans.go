package server

// The decode-plan cache: the detect-side twin of deliver.go's patch
// plans. Compiling a receipt's query set (xpath parsing + two HMACs per
// record) costs more than executing it against a cached, indexed
// document, so repeat detections and traces of one owner's receipts
// should pay compilation once. Plans are keyed by (owner, receipt,
// kind) — receipt ids are content-derived, so the pair pins the exact
// record set — and each entry remembers the *ownerRuntime it was
// compiled under: runtimeFor rebuilds the runtime object whenever the
// registered owner changes, so pointer inequality is a complete
// staleness test and no explicit invalidation hook is needed. The kind
// discriminates detect plans (compiled under the owner's mark) from
// trace plans (compiled under the fingerprint system's zeroed payload
// geometry — a different mark length).

import (
	"container/list"
	"sync"

	"wmxml/internal/core"
	"wmxml/internal/obs"
)

type planKind string

const (
	planDetect planKind = "detect"
	planTrace  planKind = "trace"
)

type dplanKey struct {
	owner   string
	receipt string
	kind    planKind
}

type planEntry struct {
	key  dplanKey
	rt   *ownerRuntime // runtime identity the plan was compiled under
	plan *core.DecodePlan
}

// planCache is an LRU of compiled decode plans. Safe for concurrent
// use; the cached plans are immutable and shared across requests.
type planCache struct {
	mu      sync.Mutex
	cap     int
	entries map[dplanKey]*list.Element
	order   *list.List // front = most recent; values are *planEntry
}

func newPlanCache(capacity int) *planCache {
	if capacity < 1 {
		capacity = 1
	}
	return &planCache{
		cap:     capacity,
		entries: make(map[dplanKey]*list.Element),
		order:   list.New(),
	}
}

// get returns the cached plan when one exists for this key AND it was
// compiled under the same runtime instance (an owner re-registration
// produces a new *ownerRuntime, silently expiring its plans).
func (c *planCache) get(key dplanKey, rt *ownerRuntime) (*core.DecodePlan, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	en := el.Value.(*planEntry)
	if en.rt != rt {
		// Stale: compiled under a superseded runtime. Drop it rather
		// than serve a plan for the old key/spec.
		c.order.Remove(el)
		delete(c.entries, key)
		return nil, false
	}
	c.order.MoveToFront(el)
	return en.plan, true
}

// put inserts a compiled plan, evicting the least recently used entries
// past capacity.
func (c *planCache) put(key dplanKey, rt *ownerRuntime, plan *core.DecodePlan) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		en := el.Value.(*planEntry)
		en.rt = rt
		en.plan = plan
		return
	}
	c.entries[key] = c.order.PushFront(&planEntry{key: key, rt: rt, plan: plan})
	for c.order.Len() > c.cap {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.entries, last.Value.(*planEntry).key)
	}
}

// len reports the current entry count.
func (c *planCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// detectPlanFor returns the compiled decode plan for one receipt under
// the owner's detection config, through the plan cache. A compile
// failure returns nil — the caller's uncached path recompiles and
// surfaces the identical error, so bad receipts behave exactly as
// before this cache existed.
func (s *Server) detectPlanFor(rt *ownerRuntime, owner, receipt string, records []core.QueryRecord, tr *obs.Trace) *core.DecodePlan {
	key := dplanKey{owner: owner, receipt: receipt, kind: planDetect}
	if pl, ok := s.dplan.get(key, rt); ok {
		s.met.planCacheHits.Inc()
		return pl
	}
	s.met.planCacheMiss.Inc()
	sp := tr.StartSpan("plan_compile")
	pl, err := core.CompileDecodePlan(rt.cfg, records, nil)
	sp.End()
	if err != nil {
		return nil
	}
	s.dplan.put(key, rt, pl)
	return pl
}

// tracePlanFor is detectPlanFor for /v1/trace: the plan compiles under
// the fingerprint system's zeroed-payload geometry (PlanConfig), whose
// mark length differs from the owner's detection mark — hence the
// separate cache kind.
func (s *Server) tracePlanFor(rt *ownerRuntime, owner, receipt string, records []core.QueryRecord, tr *obs.Trace) *core.DecodePlan {
	key := dplanKey{owner: owner, receipt: receipt, kind: planTrace}
	if pl, ok := s.dplan.get(key, rt); ok {
		s.met.planCacheHits.Inc()
		return pl
	}
	s.met.planCacheMiss.Inc()
	sp := tr.StartSpan("plan_compile")
	pl, err := core.CompileDecodePlan(rt.fp.PlanConfig(), records, nil)
	sp.End()
	if err != nil {
		return nil
	}
	s.dplan.put(key, rt, pl)
	return pl
}
