package server

// The per-owner SLO engine: declared latency/error objectives
// evaluated over rolling multi-window counters.
//
// Two objectives exist per tenant:
//
//   - detect_p99: at least 99% of successful /v1/detect requests must
//     finish inside the objective latency. An individual request is
//     "bad" when it runs over the objective, so the budget is the 1%
//     of requests allowed to be slow.
//   - error_ratio: the fraction of requests allowed to fail with a
//     5xx. The declared ratio IS the budget.
//
// Both are tracked as good/bad event counts in two rolling windows —
// 5 minutes (30 × 10s buckets) and 1 hour (60 × 1m buckets) — the
// classic fast/slow pair: the fast window reacts, the slow window
// confirms, and the watchdog only fires when both burn. A window is a
// fixed ring of buckets indexed by wall-clock epoch; recording is an
// index, an epoch compare and a few integer increments under the
// owner's mutex — no allocation on the warm path (pinned by
// TestSLORecordNoAllocs), no per-request time-series append.
//
// burn_rate is badFraction / budgetFraction: 1.0 means the tenant is
// consuming its error budget exactly as fast as the objective allows;
// 10 means ten times too fast. budget_remaining is 1 - burn_rate
// (negative once the window has burned more than a whole budget).
//
// Objectives default from the server flags and can be overridden per
// owner by the registry record's "slo" field; overrides are resolved
// lazily on first sight and invalidated on re-registration.

import (
	"sort"
	"sync"
	"time"

	"wmxml/internal/registry"
)

// Window geometry: fast = 5m of 10s buckets, slow = 1h of 1m buckets.
const (
	sloFastBuckets    = 30
	sloFastBucketSecs = 10
	sloSlowBuckets    = 60
	sloSlowBucketSecs = 60
)

// sloTotalOwner is the owner label of the service-wide aggregate slot
// (every request folds into it regardless of tenant). The leading
// underscore keeps it out of the valid owner-id namespace.
const sloTotalOwner = "_total"

// sloObjectives is one tenant's resolved objectives. A zero/negative
// field disables that objective for the tenant.
type sloObjectives struct {
	// detectP99 is the latency bound 99% of detects must meet.
	detectP99 time.Duration
	// errorRatio is the tolerated 5xx fraction (the error budget).
	errorRatio float64
}

// sloBucket is one time slice of a rolling window. epoch is the
// bucket-granularity wall-clock tick this slot currently represents;
// a slot whose epoch is stale is reset in place on first touch.
type sloBucket struct {
	epoch      int64
	events     uint64 // finished requests
	errors     uint64 // status >= 500
	detects    uint64 // successful detect ops
	detectSlow uint64 // detects over the latency objective
}

// sloWindow is a ring of buckets covering bucketSecs*len(buckets)
// seconds of history.
type sloWindow struct {
	bucketSecs int64
	buckets    []sloBucket
}

func newSLOWindow(n int, bucketSecs int64) sloWindow {
	return sloWindow{bucketSecs: bucketSecs, buckets: make([]sloBucket, n)}
}

// slot returns the bucket for now, resetting it if it still holds a
// previous rotation's counts. Caller holds the owner mutex.
func (w *sloWindow) slot(now int64) *sloBucket {
	epoch := now / w.bucketSecs
	b := &w.buckets[epoch%int64(len(w.buckets))]
	if b.epoch != epoch {
		*b = sloBucket{epoch: epoch}
	}
	return b
}

// sums folds the buckets still inside the window horizon. Caller
// holds the owner mutex.
func (w *sloWindow) sums(now int64) (events, errors, detects, detectSlow uint64) {
	oldest := now/w.bucketSecs - int64(len(w.buckets)) + 1
	for i := range w.buckets {
		b := &w.buckets[i]
		if b.epoch < oldest {
			continue
		}
		events += b.events
		errors += b.errors
		detects += b.detects
		detectSlow += b.detectSlow
	}
	return
}

// ownerSLO is one tenant's (or the aggregate's) SLO state.
type ownerSLO struct {
	mu       sync.Mutex
	obj      sloObjectives
	resolved bool
	fast     sloWindow
	slow     sloWindow
}

// sloEngine tracks every tenant's objectives and windows. Owner slots
// are materialized on first sight and capped at ownerCardinalityCap
// (overflow aggregates under ownerOverflow, mirroring the metrics
// registry), so a registration flood cannot grow the engine without
// bound.
type sloEngine struct {
	defaults sloObjectives
	resolve  func(owner string) (sloObjectives, bool)

	mu     sync.RWMutex
	owners map[string]*ownerSLO
	total  *ownerSLO
}

func newSLOEngine(defaults sloObjectives, resolve func(owner string) (sloObjectives, bool)) *sloEngine {
	e := &sloEngine{
		defaults: defaults,
		resolve:  resolve,
		owners:   make(map[string]*ownerSLO),
		total:    newOwnerSLO(),
	}
	e.total.obj = defaults
	e.total.resolved = true
	return e
}

func newOwnerSLO() *ownerSLO {
	return &ownerSLO{
		fast: newSLOWindow(sloFastBuckets, sloFastBucketSecs),
		slow: newSLOWindow(sloSlowBuckets, sloSlowBucketSecs),
	}
}

// slotFor returns the tenant's slot, materializing it under the write
// lock on first sight. The fast path is one read-locked map lookup.
func (e *sloEngine) slotFor(owner string) *ownerSLO {
	e.mu.RLock()
	s := e.owners[owner]
	e.mu.RUnlock()
	if s != nil {
		return s
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if s = e.owners[owner]; s != nil {
		return s
	}
	if len(e.owners) >= ownerCardinalityCap {
		if s = e.owners[ownerOverflow]; s == nil {
			s = newOwnerSLO()
			e.owners[ownerOverflow] = s
		}
		return s
	}
	s = newOwnerSLO()
	e.owners[owner] = s
	return s
}

// objectives resolves (and caches) the slot's objectives. Caller
// holds the slot mutex.
func (e *sloEngine) objectives(owner string, s *ownerSLO) sloObjectives {
	if s.resolved {
		return s.obj
	}
	s.obj = e.defaults
	if e.resolve != nil && owner != ownerOverflow {
		if o, ok := e.resolve(owner); ok {
			s.obj = o
		}
	}
	s.resolved = true
	return s.obj
}

// invalidate drops a tenant's cached objectives — called after
// re-registration so a new "slo" override takes effect on the next
// request without restarting the daemon.
func (e *sloEngine) invalidate(owner string) {
	e.mu.RLock()
	s := e.owners[owner]
	e.mu.RUnlock()
	if s == nil {
		return
	}
	s.mu.Lock()
	s.resolved = false
	s.mu.Unlock()
}

// record folds one finished request into the tenant's and the
// aggregate's windows. Zero allocations once the slots exist.
func (e *sloEngine) record(owner, op string, status int, d time.Duration) {
	if e == nil {
		return
	}
	now := time.Now().Unix()
	e.recordSlot(e.total, sloTotalOwner, op, status, d, now)
	if owner != "" {
		e.recordSlot(e.slotFor(owner), owner, op, status, d, now)
	}
}

func (e *sloEngine) recordSlot(s *ownerSLO, owner, op string, status int, d time.Duration, now int64) {
	s.mu.Lock()
	obj := e.objectives(owner, s)
	for _, w := range [2]*sloWindow{&s.fast, &s.slow} {
		b := w.slot(now)
		b.events++
		if status >= 500 {
			b.errors++
		}
		if op == "detect" && status < 400 {
			b.detects++
			if obj.detectP99 > 0 && d > obj.detectP99 {
				b.detectSlow++
			}
		}
	}
	s.mu.Unlock()
}

// SLOWindowEval is one window's evaluated state, as served by
// /debug/slo and rendered on /metrics.
type SLOWindowEval struct {
	WindowSeconds int64   `json:"window_seconds"`
	Events        uint64  `json:"events"`
	Errors        uint64  `json:"errors"`
	Detects       uint64  `json:"detects"`
	DetectSlow    uint64  `json:"detect_slow"`
	DetectBurn    float64 `json:"detect_p99_burn_rate"`
	DetectBudget  float64 `json:"detect_p99_budget_remaining"`
	ErrorBurn     float64 `json:"error_ratio_burn_rate"`
	ErrorBudget   float64 `json:"error_ratio_budget_remaining"`
}

// SLOOwnerEval is one tenant's full evaluation.
type SLOOwnerEval struct {
	Owner       string        `json:"owner"`
	DetectP99MS float64       `json:"detect_p99_ms,omitempty"`
	ErrorRatio  float64       `json:"error_ratio,omitempty"`
	Fast        SLOWindowEval `json:"fast"`
	Slow        SLOWindowEval `json:"slow"`
}

// evalWindow computes one window's burn rates. The p99 objective's
// budget fraction is fixed at 1% (it is a p99); the error objective's
// budget fraction is the declared ratio itself.
func evalWindow(w *sloWindow, obj sloObjectives, now int64) SLOWindowEval {
	ev, er, det, slow := w.sums(now)
	out := SLOWindowEval{
		WindowSeconds: w.bucketSecs * int64(len(w.buckets)),
		Events:        ev, Errors: er, Detects: det, DetectSlow: slow,
	}
	if obj.detectP99 > 0 && det > 0 {
		out.DetectBurn = (float64(slow) / float64(det)) / 0.01
	}
	out.DetectBudget = 1 - out.DetectBurn
	if obj.errorRatio > 0 && ev > 0 {
		out.ErrorBurn = (float64(er) / float64(ev)) / obj.errorRatio
	}
	out.ErrorBudget = 1 - out.ErrorBurn
	return out
}

func (e *sloEngine) evalSlot(owner string, s *ownerSLO, now int64) SLOOwnerEval {
	s.mu.Lock()
	defer s.mu.Unlock()
	obj := e.objectives(owner, s)
	out := SLOOwnerEval{
		Owner:      owner,
		ErrorRatio: obj.errorRatio,
		Fast:       evalWindow(&s.fast, obj, now),
		Slow:       evalWindow(&s.slow, obj, now),
	}
	if obj.detectP99 > 0 {
		out.DetectP99MS = float64(obj.detectP99.Microseconds()) / 1000
	}
	return out
}

// evaluateAll evaluates every materialized tenant plus the aggregate,
// owner-sorted with the aggregate first — the one computation both
// /metrics and /debug/slo render, so the two surfaces can never
// disagree about a burn rate.
func (e *sloEngine) evaluateAll(now int64) []SLOOwnerEval {
	if e == nil {
		return nil
	}
	e.mu.RLock()
	names := make([]string, 0, len(e.owners))
	slots := make([]*ownerSLO, 0, len(e.owners))
	for k := range e.owners {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		slots = append(slots, e.owners[k])
	}
	e.mu.RUnlock()
	out := make([]SLOOwnerEval, 0, len(names)+1)
	out = append(out, e.evalSlot(sloTotalOwner, e.total, now))
	for i, k := range names {
		out = append(out, e.evalSlot(k, slots[i], now))
	}
	return out
}

// sloObjectivesFrom resolves a registry owner's override against the
// service defaults: an absent override keeps the default, a zero field
// keeps the default for that field, a negative field disables the
// objective for that tenant.
func sloObjectivesFrom(defaults sloObjectives, o *registry.SLOOverride) sloObjectives {
	out := defaults
	if o == nil {
		return out
	}
	if o.DetectP99MS > 0 {
		out.detectP99 = time.Duration(o.DetectP99MS * float64(time.Millisecond))
	} else if o.DetectP99MS < 0 {
		out.detectP99 = 0
	}
	if o.ErrorRatio > 0 {
		out.errorRatio = o.ErrorRatio
	} else if o.ErrorRatio < 0 {
		out.errorRatio = 0
	}
	return out
}
