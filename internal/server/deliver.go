package server

// Delivery endpoints: the patch-plan fast path for handing out
// fingerprinted copies.
//
// POST /v1/deliver/plan compiles the owner's delivery plan for one
// document — a single parse+select+capacity pass whose result (byte
// offsets into the canonical serialization plus per-bit alternative
// bytes) serves every recipient of that document. The plan and the
// canonical bytes land in the registry keyed by the canonical digest.
//
// POST /v1/deliver splices one recipient's copy. With ?digest=D and an
// empty body it is pure splice work — no parsing, no worker slot, tens
// of microseconds: the stored plan is fetched (or hit in the bound-plan
// cache), the recipient's payload is derived from the owner key, and
// the response is the canonical bytes with each mark site's bytes
// swapped. With a document body and no digest the server canonicalizes
// the body, reuses a stored plan when the digest matches, and compiles
// one otherwise — so the first delivery of a document pays the compile
// and every later one splices. With ?mode=stream&digest=D the body is
// the canonical document streamed at any size up to MaxStreamBytes and
// the splice runs in constant memory (the digest is verified as the
// stream drains; a mismatch aborts the response mid-body, so clients
// must treat a truncated response as poisoned).
//
// Plans are bound to the owner configuration they were compiled under.
// After a key, mark or gamma rotation, stored plans describe the OLD
// embedding; recompile (POST the document to /v1/deliver/plan again —
// same digest, new plan) before delivering. A geometry change surfaces
// as a payload-length error; a same-geometry rotation does not, which
// is exactly the idempotence embedding itself has.

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"crypto/sha256"
	"encoding/hex"

	"wmxml/internal/core"
	"wmxml/internal/deliver"
	"wmxml/internal/obs"
	"wmxml/internal/registry"
	"wmxml/internal/xmltree"
)

// canonSerializeOpts is the canonical serialization every server-side
// plan is compiled against — the same shape /v1/embed and
// /v1/fingerprint emit, so a spliced copy is byte-identical to a full
// fingerprint of the same body.
var canonSerializeOpts = xmltree.SerializeOptions{Indent: "  "}

// boundPlans caches Bind results — plan JSON decoded and offsets
// verified against the canonical bytes — so the per-delivery work is
// only the splice. Bounded; eviction is arbitrary (any entry is one
// registry fetch away).
type boundPlans struct {
	mu  sync.Mutex
	m   map[string]*deliver.Bound
	cap int
}

func newBoundPlans(cap int) *boundPlans {
	return &boundPlans{m: make(map[string]*deliver.Bound), cap: cap}
}

func planKey(owner, digest string) string { return owner + "\x1f" + digest }

func (c *boundPlans) get(owner, digest string) (*deliver.Bound, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	b, ok := c.m[planKey(owner, digest)]
	return b, ok
}

func (c *boundPlans) put(owner, digest string, b *deliver.Bound) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.m) >= c.cap {
		for k := range c.m {
			delete(c.m, k)
			break
		}
	}
	c.m[planKey(owner, digest)] = b
}

// planResponse acknowledges a plan compile.
type planResponse struct {
	Owner          string `json:"owner"`
	Digest         string `json:"digest"`
	Doc            string `json:"doc,omitempty"`
	DocLen         int    `json:"doc_len"`
	PayloadBits    int    `json:"payload_bits"`
	Sites          int    `json:"sites"`
	CarrierUnits   int    `json:"carrier_units"`
	BandwidthUnits int    `json:"bandwidth_units"`
}

// handleDeliverPlan compiles and stores the delivery plan for the XML
// body under the owner's key — the one full-cost pass that makes every
// subsequent /v1/deliver of this document a splice.
func (s *Server) handleDeliverPlan(w http.ResponseWriter, r *http.Request) {
	tr := obs.FromContext(r.Context())
	tr.SetOp("deliver_plan")
	ownerID := r.URL.Query().Get("owner")
	rt, err := s.runtimeFor(r, ownerID)
	if err != nil {
		s.writeErr(w, r, err)
		return
	}
	body, err := s.readBody(w, r)
	if err != nil {
		s.writeErr(w, r, err)
		return
	}
	if err := s.acquire(r); err != nil {
		s.writeErr(w, r, err)
		return
	}
	defer s.release()
	psp := tr.StartSpan("parse")
	doc, err := s.parseDoc(body)
	psp.End()
	if err != nil {
		s.writeErr(w, r, err)
		return
	}
	var (
		plan      *deliver.Plan
		canonical []byte
	)
	csp := tr.StartSpan("plan_compile")
	if err := guarded(func() error {
		var cerr error
		plan, canonical, cerr = deliver.Compile(doc, rt.fp.PlanConfig(), canonSerializeOpts)
		return cerr
	}); err != nil {
		s.writeErr(w, r, errf(http.StatusUnprocessableEntity, "compile plan: %v", err))
		return
	}
	csp.End()
	planJSON, err := plan.Marshal()
	if err != nil {
		s.writeErr(w, r, errf(http.StatusInternalServerError, "encode plan: %v", err))
		return
	}
	rec := registry.PlanRecord{
		Owner:       ownerID,
		Digest:      plan.Digest,
		Doc:         r.URL.Query().Get("doc"),
		CreatedUnix: time.Now().Unix(),
		Canonical:   canonical,
		Plan:        planJSON,
	}
	if err := s.reg.PutPlan(rec); err != nil {
		s.writeErr(w, r, errf(http.StatusInternalServerError, "store plan: %v", err))
		return
	}
	if b, berr := plan.Bind(canonical); berr == nil {
		s.plans.put(ownerID, plan.Digest, b)
	}
	s.met.planCompiles.Inc()
	carriers := 0
	for _, u := range plan.Units {
		if u.Wrote[0]+u.Wrote[1] > 0 {
			carriers++
		}
	}
	writeJSON(w, http.StatusOK, planResponse{
		Owner:          ownerID,
		Digest:         plan.Digest,
		Doc:            rec.Doc,
		DocLen:         plan.DocLen,
		PayloadBits:    plan.PayloadBits,
		Sites:          len(plan.Sites),
		CarrierUnits:   carriers,
		BandwidthUnits: plan.Bandwidth.Units,
	})
}

// boundFor resolves (owner, digest) to a bound plan: cache first, then
// the registry record (validated and bound on the way in).
func (s *Server) boundFor(ownerID, digest string) (*deliver.Bound, error) {
	if b, ok := s.plans.get(ownerID, digest); ok {
		return b, nil
	}
	rec, err := s.reg.GetPlan(ownerID, digest)
	if err != nil {
		if errors.Is(err, registry.ErrNotFound) {
			return nil, errf(http.StatusNotFound, "owner %q has no plan for digest %s; POST the document to /v1/deliver/plan first", ownerID, digest)
		}
		return nil, err
	}
	if err := rec.Validate(); err != nil {
		return nil, errf(http.StatusInternalServerError, "stored plan: %v", err)
	}
	plan, err := deliver.UnmarshalPlan(rec.Plan)
	if err != nil {
		return nil, errf(http.StatusInternalServerError, "stored plan: %v", err)
	}
	b, err := plan.Bind(rec.Canonical)
	if err != nil {
		return nil, errf(http.StatusInternalServerError, "stored plan: %v", err)
	}
	s.plans.put(ownerID, digest, b)
	return b, nil
}

// handleDeliver splices one recipient's fingerprinted copy from a
// delivery plan. See the package comment for the three request shapes
// (stored digest, document body, mode=stream).
func (s *Server) handleDeliver(w http.ResponseWriter, r *http.Request) {
	tr := obs.FromContext(r.Context())
	tr.SetOp("deliver")
	ownerID := r.URL.Query().Get("owner")
	rt, err := s.runtimeFor(r, ownerID)
	if err != nil {
		s.writeErr(w, r, err)
		return
	}
	recipientID := r.URL.Query().Get("recipient")
	if recipientID == "" {
		s.writeErr(w, r, errf(http.StatusBadRequest, "recipient query parameter is required"))
		return
	}
	rcpt := registry.Recipient{ID: recipientID, Owner: ownerID, Note: r.URL.Query().Get("note"), CreatedUnix: time.Now().Unix()}
	if err := rcpt.Validate(); err != nil {
		s.writeErr(w, r, errf(http.StatusBadRequest, "%v", err))
		return
	}
	digest := r.URL.Query().Get("digest")
	if r.URL.Query().Get("mode") == "stream" {
		s.handleDeliverStream(w, r, rt, ownerID, recipientID, digest, rcpt)
		return
	}

	var b *deliver.Bound
	switch {
	case digest != "":
		// Pure splice: no body, no parse, no worker slot.
		csp := tr.StartSpan("cache")
		b, err = s.boundFor(ownerID, digest)
		if err != nil {
			csp.EndNote("miss")
			s.writeErr(w, r, err)
			return
		}
		csp.EndNote("hit")
		s.met.planHits.Inc()
	default:
		// Document body: canonicalize, reuse a stored plan when one
		// matches, compile otherwise.
		body, rerr := s.readBody(w, r)
		if rerr != nil {
			s.writeErr(w, r, rerr)
			return
		}
		if err := s.acquire(r); err != nil {
			s.writeErr(w, r, err)
			return
		}
		psp := tr.StartSpan("parse")
		doc, perr := s.parseDoc(body)
		psp.End()
		if perr != nil {
			s.release()
			s.writeErr(w, r, perr)
			return
		}
		var canon bytes.Buffer
		if err := xmltree.Serialize(&canon, doc, canonSerializeOpts); err != nil {
			s.release()
			s.writeErr(w, r, errf(http.StatusUnprocessableEntity, "canonicalize: %v", err))
			return
		}
		digest = deliver.DigestBytes(canon.Bytes())
		if cached, berr := s.boundFor(ownerID, digest); berr == nil {
			b = cached
			s.met.planHits.Inc()
		} else {
			var plan *deliver.Plan
			var canonical []byte
			csp := tr.StartSpan("plan_compile")
			if err := guarded(func() error {
				var cerr error
				plan, canonical, cerr = deliver.Compile(doc, rt.fp.PlanConfig(), canonSerializeOpts)
				return cerr
			}); err != nil {
				s.release()
				s.writeErr(w, r, errf(http.StatusUnprocessableEntity, "compile plan: %v", err))
				return
			}
			csp.End()
			if planJSON, merr := plan.Marshal(); merr == nil {
				s.reg.PutPlan(registry.PlanRecord{
					Owner: ownerID, Digest: plan.Digest, Doc: r.URL.Query().Get("doc"),
					CreatedUnix: time.Now().Unix(), Canonical: canonical, Plan: planJSON,
				})
			}
			b, err = plan.Bind(canonical)
			if err != nil {
				s.release()
				s.writeErr(w, r, errf(http.StatusInternalServerError, "bind plan: %v", err))
				return
			}
			s.plans.put(ownerID, plan.Digest, b)
			s.met.planCompiles.Inc()
		}
		s.release()
	}

	plan := b.Plan()
	payload := rt.fp.Payload(recipientID)
	res, err := plan.Receipt(payload)
	if err != nil {
		s.writeErr(w, r, errf(http.StatusConflict, "plan does not fit this owner's configuration (recompile after a rotation): %v", err))
		return
	}
	ssp := tr.StartSpan("splice")
	out, err := b.AppendCopy(nil, payload)
	ssp.End()
	if err != nil {
		s.writeErr(w, r, errf(http.StatusInternalServerError, "splice: %v", err))
		return
	}

	receiptID := deliverReceiptID(rt.owner, recipientID, plan.Digest)
	if r.URL.Query().Get("register") != "0" {
		rgsp := tr.StartSpan("registry")
		err := s.registerDelivery(ownerID, receiptID, rcpt, r.URL.Query().Get("doc"), res)
		rgsp.End()
		if err != nil {
			s.writeErr(w, r, err)
			return
		}
	}
	s.met.delivers.Inc()
	h := w.Header()
	h.Set("Content-Type", "application/xml")
	h.Set("X-Wmxml-Receipt", receiptID)
	h.Set("X-Wmxml-Recipient", recipientID)
	h.Set("X-Wmxml-Digest", plan.Digest)
	h.Set("X-Wmxml-Carriers", fmt.Sprint(res.Carriers))
	h.Set("X-Wmxml-Values-Written", fmt.Sprint(res.Embedded))
	w.WriteHeader(http.StatusOK)
	w.Write(out)
}

// handleDeliverStream splices a recipient copy in constant memory: the
// body is the canonical document (any size up to MaxStreamBytes), the
// response is the spliced copy, and the plan's digest check runs as the
// stream drains. A digest mismatch aborts the response mid-body — the
// status line is long gone — so streaming clients must discard output
// on a short read.
func (s *Server) handleDeliverStream(w http.ResponseWriter, r *http.Request, rt *ownerRuntime, ownerID, recipientID, digest string, rcpt registry.Recipient) {
	tr := obs.FromContext(r.Context())
	if digest == "" {
		s.writeErr(w, r, errf(http.StatusBadRequest, "mode=stream requires the digest query parameter (compile the plan first)"))
		return
	}
	csp := tr.StartSpan("cache")
	b, err := s.boundFor(ownerID, digest)
	if err != nil {
		csp.EndNote("miss")
		s.writeErr(w, r, err)
		return
	}
	csp.EndNote("hit")
	plan := b.Plan()
	payload := rt.fp.Payload(recipientID)
	res, err := plan.Receipt(payload)
	if err != nil {
		s.writeErr(w, r, errf(http.StatusConflict, "plan does not fit this owner's configuration (recompile after a rotation): %v", err))
		return
	}
	receiptID := deliverReceiptID(rt.owner, recipientID, digest)
	if r.URL.Query().Get("register") != "0" {
		rgsp := tr.StartSpan("registry")
		err := s.registerDelivery(ownerID, receiptID, rcpt, r.URL.Query().Get("doc"), res)
		rgsp.End()
		if err != nil {
			s.writeErr(w, r, err)
			return
		}
	}
	s.met.planHits.Inc()
	h := w.Header()
	h.Set("Content-Type", "application/xml")
	h.Set("X-Wmxml-Receipt", receiptID)
	h.Set("X-Wmxml-Recipient", recipientID)
	h.Set("X-Wmxml-Digest", digest)
	h.Set("X-Wmxml-Carriers", fmt.Sprint(res.Carriers))
	h.Set("X-Wmxml-Values-Written", fmt.Sprint(res.Embedded))
	// The response streams while the request body is still being read;
	// HTTP/1.x servers close the request body on the first response
	// write unless full-duplex is enabled (HTTP/2 allows it natively —
	// the error there is ignorable).
	_ = http.NewResponseController(w).EnableFullDuplex()
	w.WriteHeader(http.StatusOK)
	src := io.LimitReader(r.Body, s.opts.MaxStreamBytes)
	ssp := tr.StartSpan("splice")
	if err := plan.ApplyReader(w, src, payload); err != nil {
		// Headers are sent; all we can do is cut the connection short so
		// the client sees a truncated body, never a clean wrong copy.
		panic(http.ErrAbortHandler)
	}
	ssp.End()
	s.met.delivers.Inc()
}

// deliverReceiptID derives the delivery receipt id: bound to the owner
// configuration, the recipient and the document digest, so retrying the
// same delivery dedupes and rotations get fresh receipts.
func deliverReceiptID(o registry.Owner, recipient, digest string) string {
	idh := sha256.New()
	fmt.Fprintf(idh, "dl\x1f%s\x1f%s\x1f%s\x1f%d\x1f%s\x1f%s", o.ID, o.Key, o.Mark, o.Gamma, recipient, digest)
	return "d-" + hex.EncodeToString(idh.Sum(nil))[:32]
}

// registerDelivery records the recipient (a tracing candidate from this
// moment on) and the delivery receipt with the plan-simulated query set
// — the same Q a full fingerprint embed would have safeguarded.
func (s *Server) registerDelivery(ownerID, receiptID string, rcpt registry.Recipient, label string, res *core.EmbedResult) error {
	if err := s.reg.PutRecipient(rcpt); err != nil {
		return errf(http.StatusInternalServerError, "store recipient: %v", err)
	}
	if len(res.Records) == 0 {
		// A plan with no carrier units has no query set to safeguard;
		// nothing to store (and the registry would reject an empty one).
		return nil
	}
	rec := registry.Receipt{
		ID: receiptID, Owner: ownerID, Doc: label, Recipient: rcpt.ID,
		CreatedUnix:    time.Now().Unix(),
		Records:        res.Records,
		BandwidthUnits: res.Bandwidth.Units,
		Carriers:       res.Carriers,
		ValuesWritten:  res.Embedded,
	}
	if err := s.reg.AddReceipt(rec); err != nil && !errors.Is(err, registry.ErrDuplicate) {
		return errf(http.StatusInternalServerError, "store receipt: %v", err)
	}
	return nil
}
