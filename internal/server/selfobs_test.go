package server

// Tests for the self-observing runtime: the SLO engine's window math,
// per-owner overrides and warm-path allocation budget; the anomaly
// watchdog's bundle ring, cooldown and eviction; the /readyz
// liveness/readiness split; and a -race scrape loop proving the new
// wmxmld_go_* / wmxmld_slo_* series never tear under concurrency.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"wmxml/internal/obs"
	"wmxml/internal/registry"
)

func TestSLOEngineBurnRates(t *testing.T) {
	defaults := sloObjectives{detectP99: time.Millisecond, errorRatio: 0.01}
	e := newSLOEngine(defaults, nil)
	// 50 detects all over the 1ms objective: the bad fraction is 1.0
	// against a 1% budget — burn 100 in both windows.
	for i := 0; i < 50; i++ {
		e.record("acme", "detect", 200, 10*time.Millisecond)
	}
	// 50 more non-detect requests, 10 of them 5xx: error fraction 0.1
	// over the 100 total events, against a 1% budget — burn 10.
	for i := 0; i < 50; i++ {
		status := 200
		if i < 10 {
			status = 500
		}
		e.record("acme", "verify", status, time.Millisecond)
	}
	evals := e.evaluateAll(time.Now().Unix())
	if len(evals) != 2 || evals[0].Owner != sloTotalOwner || evals[1].Owner != "acme" {
		t.Fatalf("evaluateAll owners: %+v", evals)
	}
	for _, ev := range evals {
		for _, w := range []SLOWindowEval{ev.Fast, ev.Slow} {
			if w.Events != 100 || w.Detects != 50 || w.DetectSlow != 50 || w.Errors != 10 {
				t.Fatalf("%s window sums: %+v", ev.Owner, w)
			}
			if w.DetectBurn != 100 {
				t.Fatalf("%s detect burn = %v, want 100", ev.Owner, w.DetectBurn)
			}
			if w.ErrorBurn != 10 {
				t.Fatalf("%s error burn = %v, want 10", ev.Owner, w.ErrorBurn)
			}
			if w.DetectBudget != 1-w.DetectBurn || w.ErrorBudget != 1-w.ErrorBurn {
				t.Fatalf("%s budget remaining: %+v", ev.Owner, w)
			}
		}
	}
	if evals[1].DetectP99MS != 1 {
		t.Fatalf("DetectP99MS = %v, want 1", evals[1].DetectP99MS)
	}
}

func TestSLOWindowRotation(t *testing.T) {
	w := newSLOWindow(sloFastBuckets, sloFastBucketSecs)
	now := int64(1_000_000)
	w.slot(now).events = 7
	if ev, _, _, _ := w.sums(now); ev != 7 {
		t.Fatalf("events = %d", ev)
	}
	// Past the window horizon the bucket's epoch is stale: sums must
	// drop it, and the next slot() touch resets it in place.
	later := now + sloFastBuckets*sloFastBucketSecs
	if ev, _, _, _ := w.sums(later); ev != 0 {
		t.Fatalf("stale bucket leaked into sums: %d", ev)
	}
	if b := w.slot(later); b.events != 0 {
		t.Fatalf("stale bucket not reset on reuse: %+v", b)
	}
}

func TestSLOOverrideResolution(t *testing.T) {
	defaults := sloObjectives{detectP99: 250 * time.Millisecond, errorRatio: 0.01}
	if got := sloObjectivesFrom(defaults, nil); got != defaults {
		t.Fatalf("nil override: %+v", got)
	}
	got := sloObjectivesFrom(defaults, &registry.SLOOverride{DetectP99MS: 5})
	if got.detectP99 != 5*time.Millisecond || got.errorRatio != 0.01 {
		t.Fatalf("partial override: %+v", got)
	}
	got = sloObjectivesFrom(defaults, &registry.SLOOverride{DetectP99MS: -1, ErrorRatio: -1})
	if got.detectP99 != 0 || got.errorRatio != 0 {
		t.Fatalf("negative fields must disable: %+v", got)
	}

	// Lazy resolution caches until invalidate; re-resolution sees the
	// new objectives.
	var mu sync.Mutex
	obj := sloObjectives{detectP99: time.Millisecond}
	e := newSLOEngine(defaults, func(owner string) (sloObjectives, bool) {
		mu.Lock()
		defer mu.Unlock()
		return obj, true
	})
	e.record("acme", "detect", 200, 10*time.Millisecond) // slow vs 1ms
	if ev := e.evaluateAll(time.Now().Unix()); ev[1].Fast.DetectSlow != 1 {
		t.Fatalf("pre-invalidate: %+v", ev[1].Fast)
	}
	mu.Lock()
	obj = sloObjectives{detectP99: time.Minute}
	mu.Unlock()
	e.record("acme", "detect", 200, 10*time.Millisecond) // cached 1ms objective still applies
	if ev := e.evaluateAll(time.Now().Unix()); ev[1].Fast.DetectSlow != 2 {
		t.Fatalf("cached objective should still count slow: %+v", ev[1].Fast)
	}
	e.invalidate("acme")
	e.record("acme", "detect", 200, 10*time.Millisecond) // now under the 1m objective
	if ev := e.evaluateAll(time.Now().Unix()); ev[1].Fast.DetectSlow != 2 || ev[1].Fast.Detects != 3 {
		t.Fatalf("post-invalidate: %+v", ev[1].Fast)
	}
}

func TestSLOCardinalityCap(t *testing.T) {
	e := newSLOEngine(sloObjectives{errorRatio: 0.01}, nil)
	for i := 0; i < ownerCardinalityCap+10; i++ {
		e.record(fmt.Sprintf("owner-%03d", i), "detect", 200, 0)
	}
	e.mu.RLock()
	n := len(e.owners)
	overflow := e.owners[ownerOverflow]
	e.mu.RUnlock()
	if n != ownerCardinalityCap+1 {
		t.Fatalf("engine grew to %d slots, cap is %d + overflow", n, ownerCardinalityCap)
	}
	if overflow == nil {
		t.Fatal("no overflow slot")
	}
	if ev, _, _, _ := overflow.fast.sums(time.Now().Unix()); ev != 10 {
		t.Fatalf("overflow events = %d, want 10", ev)
	}
}

// TestSLORecordNoAllocs pins the warm path: once an owner's slot
// exists, folding a request into both windows allocates nothing —
// the ring-of-buckets design's whole point.
func TestSLORecordNoAllocs(t *testing.T) {
	e := newSLOEngine(sloObjectives{detectP99: time.Millisecond, errorRatio: 0.01}, nil)
	e.record("acme", "detect", 200, 2*time.Millisecond)
	if n := testing.AllocsPerRun(1000, func() {
		e.record("acme", "detect", 200, 2*time.Millisecond)
	}); n != 0 {
		t.Fatalf("slo record allocates %v per op, want 0", n)
	}
}

func TestWatchdogCaptureBundle(t *testing.T) {
	dir := t.TempDir()
	defaults := sloObjectives{detectP99: time.Millisecond, errorRatio: 0.01}
	e := newSLOEngine(defaults, nil)
	for i := 0; i < 20; i++ {
		e.record("acme", "detect", 200, 10*time.Millisecond)
	}
	col := obs.NewRuntimeCollector(time.Hour)
	defer col.Stop()
	ring := obs.NewTraceRing(4)
	ring.Add(&obs.Snapshot{RequestID: "r1", Route: "/v1/detect", Status: 200, DurationUS: 12000})
	met := newMetrics("wd-test")
	d := newWatchdog(watchdogConfig{
		dir:        dir,
		maxBundles: 2,
		cooldown:   time.Hour,
		cpuProfile: -1, // keep the test fast; cpu.pprof is optional
	}, e, col, ring, met, nil)

	d.check(time.Now())
	bundles := listBundles(dir)
	if len(bundles) != 1 {
		t.Fatalf("bundles after breach: %v", bundles)
	}
	if !strings.Contains(bundles[0], "slo-detect-p99") {
		t.Fatalf("bundle name %q does not carry the firing rule", bundles[0])
	}
	full := filepath.Join(dir, bundles[0])
	for _, f := range []string{"rule.json", "slo.json", "traces.json", "metrics.prom", "heap.pprof", "goroutine.pprof"} {
		fi, err := os.Stat(filepath.Join(full, f))
		if err != nil || fi.Size() == 0 {
			t.Fatalf("bundle file %s: %v (size %d)", f, err, fi.Size())
		}
	}
	var fr firedRule
	b, _ := os.ReadFile(filepath.Join(full, "rule.json"))
	if err := json.Unmarshal(b, &fr); err != nil || fr.Rule != "slo-detect-p99" {
		t.Fatalf("rule.json: %v %s", err, b)
	}
	// The owner label: the aggregate fires first (owner _total), and
	// its bundle gates the per-owner one only through its own key —
	// the acme breach writes its own bundle, distinct cooldown keys.
	if n := met.captures.Value(); n != uint64(len(listBundles(dir))) {
		t.Fatalf("captures counter %d != bundles on disk %d", n, len(listBundles(dir)))
	}
	if strings.Contains(strings.Join(listBundles(dir), " "), ".cap-") {
		t.Fatal("tmp assembly dir leaked into the ring")
	}
	before := len(listBundles(dir))

	// Cooldown: the same rules must not refire within the hour.
	d.check(time.Now())
	if got := len(listBundles(dir)); got != before {
		t.Fatalf("cooldown violated: %d -> %d bundles", before, got)
	}

	// A different rule fires independently and the ring evicts oldest
	// past maxBundles.
	d.cfg.goroutineMax = 1
	d.check(time.Now())
	after := listBundles(dir)
	if len(after) != d.cfg.maxBundles {
		t.Fatalf("ring size %d, want %d (eviction)", len(after), d.cfg.maxBundles)
	}
	if !strings.Contains(after[len(after)-1], "goroutine-spike") {
		t.Fatalf("newest bundle %q should be the goroutine-spike capture", after[len(after)-1])
	}
}

func TestWatchdogQuietWhenHealthy(t *testing.T) {
	dir := t.TempDir()
	e := newSLOEngine(sloObjectives{detectP99: time.Second, errorRatio: 0.5}, nil)
	for i := 0; i < 100; i++ {
		e.record("acme", "detect", 200, time.Millisecond)
	}
	col := obs.NewRuntimeCollector(time.Hour)
	defer col.Stop()
	d := newWatchdog(watchdogConfig{dir: dir, cpuProfile: -1}, e, col, nil, newMetrics("t"), nil)
	d.check(time.Now())
	if got := listBundles(dir); len(got) != 0 {
		t.Fatalf("healthy traffic produced bundles: %v", got)
	}
}

func TestDebugSLOHandler(t *testing.T) {
	s, ts := newTestServer(t, Options{SLODetectP99: time.Nanosecond}) // everything is slow
	registerOwner(t, ts.URL, "acme")
	orig := pubsXML(t, 80, 3)
	code, marked, _ := doAs(t, "key-acme", "POST", ts.URL+"/v1/embed?owner=acme&doc=a.xml", orig)
	if code != http.StatusOK {
		t.Fatalf("embed: %d", code)
	}
	for i := 0; i < 3; i++ {
		if code, body, _ := doAs(t, "key-acme", "POST", ts.URL+"/v1/detect?owner=acme", marked); code != http.StatusOK {
			t.Fatalf("detect: %d %s", code, body)
		}
	}
	rec := httptest.NewRecorder()
	s.DebugHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/slo", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/debug/slo: %d", rec.Code)
	}
	var page struct {
		Defaults struct {
			DetectP99MS float64 `json:"detect_p99_ms"`
			ErrorRatio  float64 `json:"error_ratio"`
		} `json:"defaults"`
		Owners []SLOOwnerEval `json:"owners"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &page); err != nil {
		t.Fatalf("page not JSON: %v\n%s", err, rec.Body.Bytes())
	}
	if page.Defaults.ErrorRatio != 0.01 {
		t.Fatalf("defaults: %+v", page.Defaults)
	}
	var acme *SLOOwnerEval
	for i := range page.Owners {
		if page.Owners[i].Owner == "acme" {
			acme = &page.Owners[i]
		}
	}
	if acme == nil {
		t.Fatalf("no acme evaluation: %s", rec.Body.Bytes())
	}
	if acme.Fast.Detects != 3 || acme.Fast.DetectSlow != 3 || acme.Fast.DetectBurn != 100 {
		t.Fatalf("acme fast window: %+v", acme.Fast)
	}

	// /metrics renders the same evaluation.
	code, body, _ := do(t, "GET", ts.URL+"/metrics", nil)
	if code != http.StatusOK {
		t.Fatalf("/metrics: %d", code)
	}
	if !strings.Contains(string(body), `wmxmld_slo_burn_rate{owner="acme",slo="detect_p99",window="5m"} 100`) {
		t.Fatal("/metrics disagrees with /debug/slo about the acme burn rate")
	}
	// The service mux must NOT expose the SLO page.
	if codeSvc, _, _ := do(t, "GET", ts.URL+"/debug/slo", nil); codeSvc == http.StatusOK {
		t.Fatal("/debug/slo reachable on the service mux")
	}
}

func TestDebugCapturesDisabled(t *testing.T) {
	s, _ := newTestServer(t, Options{})
	rec := httptest.NewRecorder()
	s.DebugHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/captures", nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("disabled /debug/captures: %d, want 404", rec.Code)
	}
	var env map[string]string
	if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil || env["error"] == "" || len(env["request_id"]) != 32 {
		t.Fatalf("404 body must be the {error, request_id} envelope: %s", rec.Body.Bytes())
	}
}

func TestDebugCapturesListing(t *testing.T) {
	dir := t.TempDir()
	name := capturePrefix + "20260808T120000.000000000-slo-detect-p99"
	if err := os.MkdirAll(filepath.Join(dir, name), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, name, "rule.json"), []byte(`{"rule":"slo-detect-p99"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	capturesHandler(dir).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/captures", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/debug/captures: %d", rec.Code)
	}
	var page struct {
		Dir     string `json:"dir"`
		Bundles []struct {
			Name  string `json:"name"`
			Files []struct {
				Name  string `json:"name"`
				Bytes int64  `json:"bytes"`
			} `json:"files"`
		} `json:"bundles"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &page); err != nil {
		t.Fatalf("page not JSON: %v\n%s", err, rec.Body.Bytes())
	}
	if len(page.Bundles) != 1 || page.Bundles[0].Name != name {
		t.Fatalf("bundles: %+v", page.Bundles)
	}
	if len(page.Bundles[0].Files) != 1 || page.Bundles[0].Files[0].Name != "rule.json" || page.Bundles[0].Files[0].Bytes == 0 {
		t.Fatalf("files: %+v", page.Bundles[0].Files)
	}
}

// failingStore wraps a registry store with a GetOwner that always
// errors — the readiness probe's unhealthy-backend case.
type failingStore struct {
	registry.Store
}

func (failingStore) GetOwner(string) (registry.Owner, error) {
	return registry.Owner{}, fmt.Errorf("disk on fire")
}

func TestReadyzLifecycle(t *testing.T) {
	s, ts := newTestServer(t, Options{})
	code, body, _ := do(t, "GET", ts.URL+"/readyz", nil)
	if code != http.StatusOK || !bytes.Contains(body, []byte(`"ready"`)) {
		t.Fatalf("/readyz: %d %s", code, body)
	}
	s.SetDraining(true)
	code, body, hdr := do(t, "GET", ts.URL+"/readyz", nil)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("draining /readyz: %d %s", code, body)
	}
	var reason struct {
		Status string `json:"status"`
		Reason string `json:"reason"`
	}
	if err := json.Unmarshal(body, &reason); err != nil || reason.Status != "draining" || reason.Reason == "" {
		t.Fatalf("draining body: %v %s", err, body)
	}
	if hdr.Get("X-Request-Id") == "" {
		t.Fatal("readyz is instrumented: it must carry a request id")
	}
	// Liveness is unaffected: a draining process is still alive.
	if code, _, _ := do(t, "GET", ts.URL+"/healthz", nil); code != http.StatusOK {
		t.Fatalf("/healthz during drain: %d", code)
	}
	s.SetDraining(false)
	if code, _, _ := do(t, "GET", ts.URL+"/readyz", nil); code != http.StatusOK {
		t.Fatalf("/readyz after undrain: %d", code)
	}
}

func TestReadyzRegistryFailure(t *testing.T) {
	_, ts := newTestServer(t, Options{Registry: failingStore{registry.NewMemory()}})
	code, body, _ := do(t, "GET", ts.URL+"/readyz", nil)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz with failing registry: %d %s", code, body)
	}
	if bytes.Contains(body, []byte("disk on fire")) {
		t.Fatalf("backend error detail leaked to the unauthenticated probe: %s", body)
	}
}

// TestMetricsScrapeRace scrapes /metrics in a loop while the runtime
// collector ticks and requests flow. Run under -race this proves the
// snapshot-and-render path is data-race-free; the lint on every scrape
// proves no torn histograms (le="+Inf" == _count) ever surface.
func TestMetricsScrapeRace(t *testing.T) {
	_, ts := newTestServer(t, Options{HealthInterval: time.Millisecond})
	registerOwner(t, ts.URL, "acme")
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(ts.URL + "/healthz")
				if err == nil {
					resp.Body.Close()
				}
			}
		}()
	}
	for i := 0; i < 25; i++ {
		code, body, _ := do(t, "GET", ts.URL+"/metrics", nil)
		if code != http.StatusOK {
			t.Fatalf("scrape %d: %d", i, code)
		}
		lintPromText(t, string(body))
	}
	close(stop)
	wg.Wait()
}
