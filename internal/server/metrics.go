package server

// Hand-rolled counters and latency histograms with Prometheus text
// exposition. The container bakes in no metrics dependency, and the
// subset the service needs — monotone counters, one histogram per
// endpoint, a gauge or two — is small enough to own: every metric is an
// atomic, rendering walks a fixed registry, and the output follows the
// text format any Prometheus scraper ingests.

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// latencyBuckets are the histogram upper bounds in seconds: 250µs to
// 10s, roughly ×2.5 per step — embeds on big documents sit mid-range,
// cache-hit detects in the first buckets.
var latencyBuckets = []float64{
	0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
	0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// counter is a monotone atomic counter.
type counter struct {
	v atomic.Uint64
}

func (c *counter) Inc()          { c.v.Add(1) }
func (c *counter) Add(n uint64)  { c.v.Add(n) }
func (c *counter) Value() uint64 { return c.v.Load() }

// gauge is a settable atomic value.
type gauge struct {
	v atomic.Int64
}

func (g *gauge) Set(n int64)  { g.v.Store(n) }
func (g *gauge) Add(n int64)  { g.v.Add(n) }
func (g *gauge) Value() int64 { return g.v.Load() }

// histogram is a fixed-bucket latency histogram.
type histogram struct {
	buckets []float64
	counts  []atomic.Uint64
	count   atomic.Uint64
	sumNs   atomic.Uint64 // sum in nanoseconds keeps the hot path integer-only
}

func newHistogram() *histogram {
	return &histogram{buckets: latencyBuckets, counts: make([]atomic.Uint64, len(latencyBuckets))}
}

// Observe records one duration. The total count is bumped before the
// bucket so a concurrent scrape always sees count >= any cumulative
// bucket value — le="+Inf" stays monotone (an observation may briefly
// appear un-bucketed, which is valid; the reverse is not).
func (h *histogram) Observe(d time.Duration) {
	h.count.Add(1)
	h.sumNs.Add(uint64(d.Nanoseconds()))
	s := d.Seconds()
	for i, ub := range h.buckets {
		if s <= ub {
			h.counts[i].Add(1)
			break
		}
	}
}

// metrics is the service's metric registry. Labelled series are
// materialized on first use and never removed (label cardinality is
// bounded: one series per route × status class).
type metrics struct {
	mu            sync.Mutex
	requests      map[string]*counter   // route|code -> count
	latency       map[string]*histogram // route -> latency
	inflight      gauge
	queueFull     counter // admissions rejected: queue wait exceeded
	tooLarge      counter // requests rejected: body over the cap
	cacheHits     counter
	cacheMiss     counter
	cacheEvict    counter
	cacheSize     gauge
	cacheBytes    gauge
	planCacheHits counter
	planCacheMiss counter
	embeds        counter
	detects       counter
	detected      counter
	verifies      counter
	fingerprints  counter
	traces        counter
	traceAccused  counter
	streamEmbeds  counter
	streamDetects counter
	streamChunks  counter
	delivers      counter
	planCompiles  counter
	planHits      counter
	startUnix     int64
}

func newMetrics() *metrics {
	return &metrics{
		requests:  make(map[string]*counter),
		latency:   make(map[string]*histogram),
		startUnix: time.Now().Unix(),
	}
}

// request records one finished HTTP request.
func (m *metrics) request(route string, code int, d time.Duration) {
	key := fmt.Sprintf("%s|%d", route, code)
	m.mu.Lock()
	c := m.requests[key]
	if c == nil {
		c = &counter{}
		m.requests[key] = c
	}
	h := m.latency[route]
	if h == nil {
		h = newHistogram()
		m.latency[route] = h
	}
	m.mu.Unlock()
	c.Inc()
	h.Observe(d)
}

// render writes the Prometheus text exposition.
func (m *metrics) render(w io.Writer) {
	m.mu.Lock()
	reqKeys := make([]string, 0, len(m.requests))
	for k := range m.requests {
		reqKeys = append(reqKeys, k)
	}
	latKeys := make([]string, 0, len(m.latency))
	for k := range m.latency {
		latKeys = append(latKeys, k)
	}
	m.mu.Unlock()
	sort.Strings(reqKeys)
	sort.Strings(latKeys)

	fmt.Fprintln(w, "# HELP wmxmld_requests_total Finished HTTP requests by route and status code.")
	fmt.Fprintln(w, "# TYPE wmxmld_requests_total counter")
	for _, k := range reqKeys {
		route, code, _ := strings.Cut(k, "|")
		m.mu.Lock()
		c := m.requests[k]
		m.mu.Unlock()
		fmt.Fprintf(w, "wmxmld_requests_total{route=%q,code=%q} %d\n", route, code, c.Value())
	}

	fmt.Fprintln(w, "# HELP wmxmld_request_seconds Request latency by route.")
	fmt.Fprintln(w, "# TYPE wmxmld_request_seconds histogram")
	for _, route := range latKeys {
		m.mu.Lock()
		h := m.latency[route]
		m.mu.Unlock()
		var cum uint64
		for i, ub := range h.buckets {
			cum += h.counts[i].Load()
			fmt.Fprintf(w, "wmxmld_request_seconds_bucket{route=%q,le=%q} %d\n", route, formatLE(ub), cum)
		}
		fmt.Fprintf(w, "wmxmld_request_seconds_bucket{route=%q,le=\"+Inf\"} %d\n", route, h.count.Load())
		fmt.Fprintf(w, "wmxmld_request_seconds_sum{route=%q} %g\n", route, float64(h.sumNs.Load())/1e9)
		fmt.Fprintf(w, "wmxmld_request_seconds_count{route=%q} %d\n", route, h.count.Load())
	}

	simple := []struct {
		name, help string
		value      uint64
	}{
		{"wmxmld_admission_rejected_total", "Requests rejected because the worker queue stayed full.", m.queueFull.Value()},
		{"wmxmld_body_too_large_total", "Requests rejected because the body exceeded the cap.", m.tooLarge.Value()},
		{"wmxmld_doc_cache_hits_total", "Suspect-document cache hits (reparse and index build skipped).", m.cacheHits.Value()},
		{"wmxmld_doc_cache_misses_total", "Suspect-document cache misses.", m.cacheMiss.Value()},
		{"wmxmld_doc_cache_evictions_total", "Suspect-document cache evictions.", m.cacheEvict.Value()},
		{"wmxmld_plan_cache_hits_total", "Decode-plan cache hits (query compilation skipped).", m.planCacheHits.Value()},
		{"wmxmld_plan_cache_misses_total", "Decode-plan cache misses (plan compiled).", m.planCacheMiss.Value()},
		{"wmxmld_embeds_total", "Successful embed operations.", m.embeds.Value()},
		{"wmxmld_detects_total", "Completed detect operations.", m.detects.Value()},
		{"wmxmld_detects_detected_total", "Detect operations that found the watermark.", m.detected.Value()},
		{"wmxmld_verifies_total", "Completed verify operations.", m.verifies.Value()},
		{"wmxmld_fingerprints_total", "Successful fingerprint (per-recipient embed) operations.", m.fingerprints.Value()},
		{"wmxmld_traces_total", "Completed trace operations.", m.traces.Value()},
		{"wmxmld_traces_accused_total", "Trace operations that accused at least one recipient.", m.traceAccused.Value()},
		{"wmxmld_stream_embeds_total", "Successful streaming (mode=stream) embed operations.", m.streamEmbeds.Value()},
		{"wmxmld_stream_detects_total", "Completed streaming detect operations.", m.streamDetects.Value()},
		{"wmxmld_stream_chunks_total", "Record chunks processed by the streaming endpoints.", m.streamChunks.Value()},
		{"wmxmld_delivers_total", "Recipient copies spliced from a delivery plan.", m.delivers.Value()},
		{"wmxmld_deliver_plan_compiles_total", "Delivery-plan compilations.", m.planCompiles.Value()},
		{"wmxmld_deliver_plan_hits_total", "Deliveries served from an already-compiled plan.", m.planHits.Value()},
	}
	for _, s := range simple {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", s.name, s.help, s.name, s.name, s.value)
	}
	fmt.Fprintf(w, "# HELP wmxmld_inflight_requests Requests currently holding a worker slot.\n# TYPE wmxmld_inflight_requests gauge\nwmxmld_inflight_requests %d\n", m.inflight.Value())
	fmt.Fprintf(w, "# HELP wmxmld_doc_cache_entries Documents currently cached.\n# TYPE wmxmld_doc_cache_entries gauge\nwmxmld_doc_cache_entries %d\n", m.cacheSize.Value())
	fmt.Fprintf(w, "# HELP wmxmld_doc_cache_bytes Total source-byte weight of cached documents.\n# TYPE wmxmld_doc_cache_bytes gauge\nwmxmld_doc_cache_bytes %d\n", m.cacheBytes.Value())
	fmt.Fprintf(w, "# HELP wmxmld_start_time_seconds Unix time the server started.\n# TYPE wmxmld_start_time_seconds gauge\nwmxmld_start_time_seconds %d\n", m.startUnix)
}

// formatLE renders a bucket bound in its shortest decimal form.
func formatLE(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
