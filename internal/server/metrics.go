package server

// Hand-rolled counters and latency histograms with Prometheus text
// exposition. The container bakes in no metrics dependency, and the
// subset the service needs — monotone counters, one histogram per
// endpoint and per pipeline stage, a gauge or two — is small enough to
// own: every metric is an atomic, rendering walks a snapshot of the
// registry, and the output follows the text format any Prometheus
// scraper ingests (and the promtext lint test parses).

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"wmxml/internal/obs"
)

// latencyBuckets are the histogram upper bounds in seconds: 250µs to
// 10s, roughly ×2.5 per step — embeds on big documents sit mid-range,
// cache-hit detects in the first buckets.
var latencyBuckets = []float64{
	0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
	0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// stageBuckets are the per-stage histogram bounds: stages (a cache
// lookup, a vote fold) run one to three orders of magnitude below whole
// requests, so the ladder starts at 10µs.
var stageBuckets = []float64{
	0.00001, 0.000025, 0.00005, 0.0001, 0.00025, 0.0005,
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 1, 2.5,
}

// ownerCardinalityCap bounds the distinct owner label values exposed;
// tenants past the cap aggregate into owner="other" so a registration
// flood cannot grow /metrics without bound.
const ownerCardinalityCap = 64

// ownerOverflow is the owner label of the overflow bucket.
const ownerOverflow = "other"

// counter is a monotone atomic counter.
type counter struct {
	v atomic.Uint64
}

func (c *counter) Inc()          { c.v.Add(1) }
func (c *counter) Add(n uint64)  { c.v.Add(n) }
func (c *counter) Value() uint64 { return c.v.Load() }

// gauge is a settable atomic value.
type gauge struct {
	v atomic.Int64
}

func (g *gauge) Set(n int64)  { g.v.Store(n) }
func (g *gauge) Add(n int64)  { g.v.Add(n) }
func (g *gauge) Value() int64 { return g.v.Load() }

// histogram is a fixed-bucket latency histogram.
type histogram struct {
	buckets []float64
	counts  []atomic.Uint64
	count   atomic.Uint64
	sumNs   atomic.Uint64 // sum in nanoseconds keeps the hot path integer-only
}

func newHistogram(buckets []float64) *histogram {
	return &histogram{buckets: buckets, counts: make([]atomic.Uint64, len(buckets))}
}

// Observe records one duration. The total count is bumped before the
// bucket so a concurrent scrape always sees count >= any cumulative
// bucket value — le="+Inf" stays monotone (an observation may briefly
// appear un-bucketed, which is valid; the reverse is not).
func (h *histogram) Observe(d time.Duration) {
	h.count.Add(1)
	h.sumNs.Add(uint64(d.Nanoseconds()))
	s := d.Seconds()
	for i, ub := range h.buckets {
		if s <= ub {
			h.counts[i].Add(1)
			break
		}
	}
}

// ownerStats is the per-tenant counter block. Fixed fields rather than
// a label map: the op set is closed and the fold is branch-free of
// locks.
type ownerStats struct {
	requests     counter
	docBytes     counter
	cacheHits    counter
	embeds       counter
	detects      counter
	delivers     counter
	fingerprints counter
	traces       counter
	verifies     counter
}

// opCounter maps an op label to its counter, nil for unknown ops.
func (o *ownerStats) opCounter(op string) *counter {
	switch op {
	case "embed":
		return &o.embeds
	case "detect":
		return &o.detects
	case "deliver":
		return &o.delivers
	case "fingerprint":
		return &o.fingerprints
	case "trace":
		return &o.traces
	case "verify":
		return &o.verifies
	}
	return nil
}

// ownerOps is the exposition order of the per-owner op counters.
var ownerOps = []struct {
	op  string
	get func(*ownerStats) *counter
}{
	{"embed", func(o *ownerStats) *counter { return &o.embeds }},
	{"detect", func(o *ownerStats) *counter { return &o.detects }},
	{"deliver", func(o *ownerStats) *counter { return &o.delivers }},
	{"fingerprint", func(o *ownerStats) *counter { return &o.fingerprints }},
	{"trace", func(o *ownerStats) *counter { return &o.traces }},
	{"verify", func(o *ownerStats) *counter { return &o.verifies }},
}

// metrics is the service's metric registry. Labelled series are
// materialized on first use and never removed (label cardinality is
// bounded: one series per route × status class, a fixed stage set, and
// owners capped at ownerCardinalityCap plus the overflow bucket).
type metrics struct {
	mu             sync.Mutex
	requests       map[string]*counter   // route|code -> count
	latency        map[string]*histogram // route -> latency
	stages         map[string]*histogram // stage -> span duration
	owners         map[string]*ownerStats
	inflight       gauge
	queueFull      counter // admissions rejected: queue wait exceeded
	tooLarge       counter // requests rejected: body over the cap
	cacheHits      counter
	cacheMiss      counter
	cacheCoalesced counter // cold requests that waited on another's parse (singleflight)
	cacheFill      counter // cache misses satisfied by the peer-fill hook
	cacheEvict     counter
	cacheSize      gauge
	cacheBytes     gauge
	fleetProxied   counter // requests routed to their owner's home node
	planCacheHits  counter
	planCacheMiss  counter
	embeds         counter
	detects        counter
	detected       counter
	verifies       counter
	fingerprints   counter
	traces         counter
	traceAccused   counter
	streamEmbeds   counter
	streamDetects  counter
	streamChunks   counter
	delivers       counter
	planCompiles   counter
	planHits       counter
	captures       counter // anomaly capture bundles written
	startUnix      int64
	version        string

	// Snapshot providers wired by server.New: the latest runtime-health
	// sample and the SLO engine's evaluation. Both read atomics or take
	// short per-owner locks of their own — never the registry mutex — so
	// the single-lock render discipline holds.
	runtimeSnap func() *obs.RuntimeSnapshot
	sloEval     func() []SLOOwnerEval
}

func newMetrics(version string) *metrics {
	return &metrics{
		requests:  make(map[string]*counter),
		latency:   make(map[string]*histogram),
		stages:    make(map[string]*histogram),
		owners:    make(map[string]*ownerStats),
		startUnix: time.Now().Unix(),
		version:   version,
	}
}

// request records one finished HTTP request.
func (m *metrics) request(route string, code int, d time.Duration) {
	key := fmt.Sprintf("%s|%d", route, code)
	m.mu.Lock()
	c := m.requests[key]
	if c == nil {
		c = &counter{}
		m.requests[key] = c
	}
	h := m.latency[route]
	if h == nil {
		h = newHistogram(latencyBuckets)
		m.latency[route] = h
	}
	m.mu.Unlock()
	c.Inc()
	h.Observe(d)
}

// stage records one span duration under its stage label.
func (m *metrics) stage(name string, d time.Duration) {
	m.mu.Lock()
	h := m.stages[name]
	if h == nil {
		h = newHistogram(stageBuckets)
		m.stages[name] = h
	}
	m.mu.Unlock()
	h.Observe(d)
}

// ownerFor materializes (or overflows) the per-tenant counter block.
func (m *metrics) ownerFor(owner string) *ownerStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	o := m.owners[owner]
	if o == nil {
		if len(m.owners) >= ownerCardinalityCap {
			if o = m.owners[ownerOverflow]; o == nil {
				o = &ownerStats{}
				m.owners[ownerOverflow] = o
			}
			return o
		}
		o = &ownerStats{}
		m.owners[owner] = o
	}
	return o
}

// finishRequest folds one completed trace snapshot into the request
// histogram, the per-stage histograms and the per-owner counters — the
// single exposition point instrument() calls.
func (m *metrics) finishRequest(snap *obs.Snapshot, route string, code int, d time.Duration) {
	m.request(route, code, d)
	if snap == nil {
		return
	}
	for name, dur := range snap.StageDurations() {
		m.stage(name, dur)
	}
	if snap.Owner == "" {
		return
	}
	o := m.ownerFor(snap.Owner)
	o.requests.Inc()
	if snap.DocBytes > 0 {
		o.docBytes.Add(uint64(snap.DocBytes))
	}
	if snap.CacheHit {
		o.cacheHits.Inc()
	}
	if code < 400 && snap.Op != "" {
		if c := o.opCounter(snap.Op); c != nil {
			c.Inc()
		}
	}
}

// render writes the Prometheus text exposition. Both labelled maps are
// snapshotted under one lock acquisition; everything after renders
// lock-free (the values themselves are atomics, and materialized
// series are never removed).
func (m *metrics) render(w io.Writer) {
	type reqSeries struct {
		route, code string
		c           *counter
	}
	type latSeries struct {
		label string
		h     *histogram
	}
	type ownSeries struct {
		owner string
		o     *ownerStats
	}
	m.mu.Lock()
	reqs := make([]reqSeries, 0, len(m.requests))
	for k, c := range m.requests {
		route, code, _ := strings.Cut(k, "|")
		reqs = append(reqs, reqSeries{route: route, code: code, c: c})
	}
	lats := make([]latSeries, 0, len(m.latency))
	for k, h := range m.latency {
		lats = append(lats, latSeries{label: k, h: h})
	}
	stages := make([]latSeries, 0, len(m.stages))
	for k, h := range m.stages {
		stages = append(stages, latSeries{label: k, h: h})
	}
	owners := make([]ownSeries, 0, len(m.owners))
	for k, o := range m.owners {
		owners = append(owners, ownSeries{owner: k, o: o})
	}
	m.mu.Unlock()
	sort.Slice(reqs, func(i, j int) bool {
		if reqs[i].route != reqs[j].route {
			return reqs[i].route < reqs[j].route
		}
		return reqs[i].code < reqs[j].code
	})
	sort.Slice(lats, func(i, j int) bool { return lats[i].label < lats[j].label })
	sort.Slice(stages, func(i, j int) bool { return stages[i].label < stages[j].label })
	sort.Slice(owners, func(i, j int) bool { return owners[i].owner < owners[j].owner })

	fmt.Fprintln(w, "# HELP wmxmld_requests_total Finished HTTP requests by route and status code.")
	fmt.Fprintln(w, "# TYPE wmxmld_requests_total counter")
	for _, s := range reqs {
		fmt.Fprintf(w, "wmxmld_requests_total{route=%q,code=%q} %d\n", s.route, s.code, s.c.Value())
	}

	renderHistograms := func(name, help, label string, hs []latSeries) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
		for _, s := range hs {
			var cum uint64
			for i, ub := range s.h.buckets {
				cum += s.h.counts[i].Load()
				fmt.Fprintf(w, "%s_bucket{%s=%q,le=%q} %d\n", name, label, s.label, formatLE(ub), cum)
			}
			fmt.Fprintf(w, "%s_bucket{%s=%q,le=\"+Inf\"} %d\n", name, label, s.label, s.h.count.Load())
			fmt.Fprintf(w, "%s_sum{%s=%q} %g\n", name, label, s.label, float64(s.h.sumNs.Load())/1e9)
			fmt.Fprintf(w, "%s_count{%s=%q} %d\n", name, label, s.label, s.h.count.Load())
		}
	}
	renderHistograms("wmxmld_request_seconds", "Request latency by route.", "route", lats)
	renderHistograms("wmxmld_stage_seconds", "Pipeline stage latency from request span traces.", "stage", stages)

	simple := []struct {
		name, help string
		value      uint64
	}{
		{"wmxmld_admission_rejected_total", "Requests rejected because the worker queue stayed full.", m.queueFull.Value()},
		{"wmxmld_body_too_large_total", "Requests rejected because the body exceeded the cap.", m.tooLarge.Value()},
		{"wmxmld_doc_cache_hits_total", "Suspect-document cache hits (reparse and index build skipped).", m.cacheHits.Value()},
		{"wmxmld_doc_cache_misses_total", "Suspect-document cache misses.", m.cacheMiss.Value()},
		{"wmxmld_doc_cache_coalesced_total", "Cold requests that shared another request's in-flight parse (singleflight).", m.cacheCoalesced.Value()},
		{"wmxmld_doc_cache_peer_fills_total", "Cache misses satisfied by the peer-fill hook instead of a local parse.", m.cacheFill.Value()},
		{"wmxmld_doc_cache_evictions_total", "Suspect-document cache evictions.", m.cacheEvict.Value()},
		{"wmxmld_fleet_proxied_total", "Requests proxied to the owner's home node by consistent-hash routing.", m.fleetProxied.Value()},
		{"wmxmld_plan_cache_hits_total", "Decode-plan cache hits (query compilation skipped).", m.planCacheHits.Value()},
		{"wmxmld_plan_cache_misses_total", "Decode-plan cache misses (plan compiled).", m.planCacheMiss.Value()},
		{"wmxmld_embeds_total", "Successful embed operations.", m.embeds.Value()},
		{"wmxmld_detects_total", "Completed detect operations.", m.detects.Value()},
		{"wmxmld_detects_detected_total", "Detect operations that found the watermark.", m.detected.Value()},
		{"wmxmld_verifies_total", "Completed verify operations.", m.verifies.Value()},
		{"wmxmld_fingerprints_total", "Successful fingerprint (per-recipient embed) operations.", m.fingerprints.Value()},
		{"wmxmld_traces_total", "Completed trace operations.", m.traces.Value()},
		{"wmxmld_traces_accused_total", "Trace operations that accused at least one recipient.", m.traceAccused.Value()},
		{"wmxmld_stream_embeds_total", "Successful streaming (mode=stream) embed operations.", m.streamEmbeds.Value()},
		{"wmxmld_stream_detects_total", "Completed streaming detect operations.", m.streamDetects.Value()},
		{"wmxmld_stream_chunks_total", "Record chunks processed by the streaming endpoints.", m.streamChunks.Value()},
		{"wmxmld_delivers_total", "Recipient copies spliced from a delivery plan.", m.delivers.Value()},
		{"wmxmld_deliver_plan_compiles_total", "Delivery-plan compilations.", m.planCompiles.Value()},
		{"wmxmld_deliver_plan_hits_total", "Deliveries served from an already-compiled plan.", m.planHits.Value()},
	}
	for _, s := range simple {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", s.name, s.help, s.name, s.name, s.value)
	}

	if len(owners) > 0 {
		fmt.Fprintln(w, "# HELP wmxmld_owner_requests_total Finished requests by owner (cardinality-capped; overflow under owner=\"other\").")
		fmt.Fprintln(w, "# TYPE wmxmld_owner_requests_total counter")
		for _, s := range owners {
			fmt.Fprintf(w, "wmxmld_owner_requests_total{owner=%q} %d\n", s.owner, s.o.requests.Value())
		}
		fmt.Fprintln(w, "# HELP wmxmld_owner_ops_total Successful operations by owner and op.")
		fmt.Fprintln(w, "# TYPE wmxmld_owner_ops_total counter")
		for _, s := range owners {
			for _, op := range ownerOps {
				fmt.Fprintf(w, "wmxmld_owner_ops_total{owner=%q,op=%q} %d\n", s.owner, op.op, op.get(s.o).Value())
			}
		}
		fmt.Fprintln(w, "# HELP wmxmld_owner_cache_hits_total Suspect-document cache hits by owner.")
		fmt.Fprintln(w, "# TYPE wmxmld_owner_cache_hits_total counter")
		for _, s := range owners {
			fmt.Fprintf(w, "wmxmld_owner_cache_hits_total{owner=%q} %d\n", s.owner, s.o.cacheHits.Value())
		}
		fmt.Fprintln(w, "# HELP wmxmld_owner_doc_bytes_total Request document bytes by owner.")
		fmt.Fprintln(w, "# TYPE wmxmld_owner_doc_bytes_total counter")
		for _, s := range owners {
			fmt.Fprintf(w, "wmxmld_owner_doc_bytes_total{owner=%q} %d\n", s.owner, s.o.docBytes.Value())
		}
	}

	fmt.Fprintf(w, "# HELP wmxmld_inflight_requests Requests currently holding a worker slot.\n# TYPE wmxmld_inflight_requests gauge\nwmxmld_inflight_requests %d\n", m.inflight.Value())
	fmt.Fprintf(w, "# HELP wmxmld_doc_cache_entries Documents currently cached.\n# TYPE wmxmld_doc_cache_entries gauge\nwmxmld_doc_cache_entries %d\n", m.cacheSize.Value())
	fmt.Fprintf(w, "# HELP wmxmld_doc_cache_bytes Total source-byte weight of cached documents.\n# TYPE wmxmld_doc_cache_bytes gauge\nwmxmld_doc_cache_bytes %d\n", m.cacheBytes.Value())
	fmt.Fprintf(w, "# HELP wmxmld_start_time_seconds Unix time the server started.\n# TYPE wmxmld_start_time_seconds gauge\nwmxmld_start_time_seconds %d\n", m.startUnix)
	fmt.Fprintf(w, "# HELP wmxmld_uptime_seconds Seconds since the server started.\n# TYPE wmxmld_uptime_seconds gauge\nwmxmld_uptime_seconds %d\n", max(0, time.Now().Unix()-m.startUnix))
	fmt.Fprintf(w, "# HELP wmxmld_captures_total Anomaly capture bundles written to the --capture-dir ring.\n# TYPE wmxmld_captures_total counter\nwmxmld_captures_total %d\n", m.captures.Value())
	if m.runtimeSnap != nil {
		if s := m.runtimeSnap(); s != nil {
			renderRuntime(w, s)
		}
	}
	if m.sloEval != nil {
		renderSLO(w, m.sloEval())
	}
	fmt.Fprintf(w, "# HELP wmxmld_build_info Build metadata; the value is always 1.\n# TYPE wmxmld_build_info gauge\nwmxmld_build_info{version=%q} 1\n", m.version)
}

// renderRuntime writes the wmxmld_go_* process-health series from one
// immutable runtime snapshot (the collector swaps a fresh pointer per
// sample, so a scrape can never observe a torn histogram).
func renderRuntime(w io.Writer, s *obs.RuntimeSnapshot) {
	gauges := []struct {
		name, help string
		value      int64
		skip       bool
	}{
		{"wmxmld_go_goroutines", "Live goroutines.", s.Goroutines, false},
		{"wmxmld_go_heap_live_bytes", "Heap bytes live after the last GC.", s.HeapLiveBytes, false},
		{"wmxmld_go_heap_goal_bytes", "Heap size the garbage collector is pacing toward.", s.HeapGoalBytes, false},
		{"wmxmld_go_gomemlimit_bytes", "Effective GOMEMLIMIT (0 = no limit set).", s.MemLimitBytes, false},
		{"wmxmld_go_open_fds", "Open file descriptors (omitted where the platform cannot count them).", s.OpenFDs, s.OpenFDs < 0},
		{"wmxmld_go_runtime_sample_time_seconds", "Unix time the runtime health sample was taken.", s.SampledUnix, false},
	}
	for _, g := range gauges {
		if g.skip {
			continue
		}
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", g.name, g.help, g.name, g.name, g.value)
	}
	fmt.Fprintf(w, "# HELP wmxmld_go_gc_cycles_total Completed GC cycles.\n# TYPE wmxmld_go_gc_cycles_total counter\nwmxmld_go_gc_cycles_total %d\n", s.GCCycles)
	renderRuntimeHist(w, "wmxmld_go_gc_pause_seconds", "Stop-the-world GC pause distribution over the process lifetime.", s.GCPause)
	renderRuntimeHist(w, "wmxmld_go_sched_latency_seconds", "Goroutine scheduling latency distribution over the process lifetime.", s.SchedLatency)
}

// renderRuntimeHist writes one folded runtime histogram. Counts are
// already cumulative; overflow past the ladder rides only in Count, so
// le="+Inf" equals _count by construction.
func renderRuntimeHist(w io.Writer, name, help string, h obs.RuntimeHistogram) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	for i, ub := range h.Bounds {
		var n uint64
		if i < len(h.Counts) {
			n = h.Counts[i]
		}
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, formatLE(ub), n)
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, h.Count)
	fmt.Fprintf(w, "%s_sum %g\n", name, h.Sum)
	fmt.Fprintf(w, "%s_count %d\n", name, h.Count)
}

// renderSLO writes the wmxmld_slo_* gauges from one engine evaluation —
// the same evaluation /debug/slo serves, so the surfaces agree.
func renderSLO(w io.Writer, evals []SLOOwnerEval) {
	if len(evals) == 0 {
		return
	}
	windows := func(e SLOOwnerEval) [2]struct {
		name string
		ev   SLOWindowEval
	} {
		return [2]struct {
			name string
			ev   SLOWindowEval
		}{{"5m", e.Fast}, {"1h", e.Slow}}
	}
	fmt.Fprintln(w, "# HELP wmxmld_slo_burn_rate Error-budget burn rate by owner, objective and window (1 = burning exactly at budget; owner=\"_total\" is the service aggregate).")
	fmt.Fprintln(w, "# TYPE wmxmld_slo_burn_rate gauge")
	for _, e := range evals {
		for _, wv := range windows(e) {
			fmt.Fprintf(w, "wmxmld_slo_burn_rate{owner=%q,slo=\"detect_p99\",window=%q} %g\n", e.Owner, wv.name, wv.ev.DetectBurn)
			fmt.Fprintf(w, "wmxmld_slo_burn_rate{owner=%q,slo=\"error_ratio\",window=%q} %g\n", e.Owner, wv.name, wv.ev.ErrorBurn)
		}
	}
	fmt.Fprintln(w, "# HELP wmxmld_slo_budget_remaining Fraction of the window's error budget left (1 - burn rate; negative once overspent).")
	fmt.Fprintln(w, "# TYPE wmxmld_slo_budget_remaining gauge")
	for _, e := range evals {
		for _, wv := range windows(e) {
			fmt.Fprintf(w, "wmxmld_slo_budget_remaining{owner=%q,slo=\"detect_p99\",window=%q} %g\n", e.Owner, wv.name, wv.ev.DetectBudget)
			fmt.Fprintf(w, "wmxmld_slo_budget_remaining{owner=%q,slo=\"error_ratio\",window=%q} %g\n", e.Owner, wv.name, wv.ev.ErrorBudget)
		}
	}
}

// formatLE renders a bucket bound in its shortest decimal form.
func formatLE(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
