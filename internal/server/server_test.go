package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"wmxml/internal/datagen"
	"wmxml/internal/registry"
	"wmxml/internal/xmltree"
)

// newTestServer builds a server over a fresh in-memory registry and
// returns it with its HTTP test harness.
func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	if opts.Registry == nil {
		opts.Registry = registry.NewMemory()
	}
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// do fires an unauthenticated request (registration bootstrap,
// healthz/metrics, and the 401 assertions).
func do(t *testing.T, method, url string, body []byte) (int, []byte, http.Header) {
	t.Helper()
	return doAs(t, "", method, url, body)
}

// doAs fires a request carrying the owner key as the Bearer credential.
func doAs(t *testing.T, key, method, url string, body []byte) (int, []byte, http.Header) {
	t.Helper()
	req, err := http.NewRequest(method, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if key != "" {
		req.Header.Set("Authorization", "Bearer "+key)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data, resp.Header
}

// registerOwner bootstraps owner id with key "key-<id>".
func registerOwner(t *testing.T, base, id string) {
	t.Helper()
	owner := fmt.Sprintf(`{"id":%q,"key":"key-%s","mark":"(C) %s","dataset":"pubs","gamma":3}`, id, id, id)
	code, body, _ := do(t, "POST", base+"/v1/owners", []byte(owner))
	if code != http.StatusOK {
		t.Fatalf("register owner: %d %s", code, body)
	}
}

func pubsXML(t *testing.T, books int, seed int64) []byte {
	t.Helper()
	ds := datagen.Publications(datagen.PubConfig{Books: books, Seed: seed})
	return []byte(xmltree.SerializeIndentString(ds.Doc))
}

// TestServerEndToEnd is the acceptance flow: register, embed, then
// detect the marked document WITHOUT resending queries — the receipts
// resolve through the registry — and verify the repeat detection hits
// the parsed-document cache.
func TestServerEndToEnd(t *testing.T) {
	s, ts := newTestServer(t, Options{})
	registerOwner(t, ts.URL, "acme")
	orig := pubsXML(t, 150, 7)

	// Embed.
	code, marked, hdr := doAs(t, "key-acme", "POST", ts.URL+"/v1/embed?owner=acme&doc=catalog.xml", orig)
	if code != http.StatusOK {
		t.Fatalf("embed: %d %s", code, marked)
	}
	receiptID := hdr.Get("X-Wmxml-Receipt")
	if receiptID == "" {
		t.Fatal("embed: no X-Wmxml-Receipt header")
	}
	if hdr.Get("X-Wmxml-Carriers") == "" || hdr.Get("X-Wmxml-Carriers") == "0" {
		t.Fatalf("embed: carriers = %q", hdr.Get("X-Wmxml-Carriers"))
	}
	if bytes.Equal(marked, orig) {
		t.Fatal("embed returned the document unchanged")
	}

	// Detect the marked document: no query set in the request.
	var det struct {
		Detected      bool    `json:"detected"`
		Mode          string  `json:"mode"`
		Receipt       string  `json:"receipt"`
		MatchFraction float64 `json:"match_fraction"`
		CacheHit      bool    `json:"cache_hit"`
		QueriesRun    int     `json:"queries_run"`
	}
	code, body, _ := doAs(t, "key-acme", "POST", ts.URL+"/v1/detect?owner=acme", marked)
	if code != http.StatusOK {
		t.Fatalf("detect: %d %s", code, body)
	}
	if err := json.Unmarshal(body, &det); err != nil {
		t.Fatal(err)
	}
	if !det.Detected || det.Mode != "receipts" || det.Receipt != receiptID {
		t.Fatalf("detect verdict: %+v", det)
	}
	if det.CacheHit {
		t.Fatal("first detect reported a cache hit")
	}
	if det.QueriesRun == 0 {
		t.Fatal("detect ran no queries")
	}

	// Repeat detection of the same body: must be served from the
	// document cache (the acceptance criterion's counter assertion).
	code, body, _ = doAs(t, "key-acme", "POST", ts.URL+"/v1/detect?owner=acme", marked)
	if code != http.StatusOK {
		t.Fatalf("repeat detect: %d %s", code, body)
	}
	if err := json.Unmarshal(body, &det); err != nil {
		t.Fatal(err)
	}
	if !det.Detected || !det.CacheHit {
		t.Fatalf("repeat detect: %+v, want detected from cache", det)
	}
	hits, misses, _, size := s.CacheStats()
	if hits != 1 || misses != 1 || size != 1 {
		t.Fatalf("cache stats after repeat detect: hits=%d misses=%d size=%d", hits, misses, size)
	}

	// The unmarked original must NOT detect.
	code, body, _ = doAs(t, "key-acme", "POST", ts.URL+"/v1/detect?owner=acme", orig)
	if code != http.StatusOK {
		t.Fatalf("detect original: %d %s", code, body)
	}
	if err := json.Unmarshal(body, &det); err != nil {
		t.Fatal(err)
	}
	if det.Detected {
		t.Fatalf("unmarked original detected: %+v", det)
	}

	// Blind mode works too (document kept the original schema).
	code, body, _ = doAs(t, "key-acme", "POST", ts.URL+"/v1/detect?owner=acme&mode=blind", marked)
	if code != http.StatusOK {
		t.Fatalf("blind detect: %d %s", code, body)
	}
	if err := json.Unmarshal(body, &det); err != nil {
		t.Fatal(err)
	}
	if !det.Detected || det.Mode != "blind" {
		t.Fatalf("blind detect: %+v", det)
	}

	// Metrics reflect the cache counter.
	code, body, _ = do(t, "GET", ts.URL+"/metrics", nil)
	if code != http.StatusOK {
		t.Fatalf("metrics: %d", code)
	}
	// Cache traffic so far: marked(miss), marked(hit), orig(miss),
	// blind marked(hit) -> 2 hits, 2 misses.
	for _, want := range []string{
		"wmxmld_doc_cache_hits_total 2",
		"wmxmld_doc_cache_misses_total 2",
		"wmxmld_embeds_total 1",
		"wmxmld_detects_total 4",
		`wmxmld_requests_total{route="/v1/detect",code="200"} 4`,
		`wmxmld_request_seconds_count{route="/v1/detect"} 4`,
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestServerReceiptsEndpoint lists an owner's receipts with and without
// full query records.
func TestServerReceiptsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	registerOwner(t, ts.URL, "acme")
	doc := pubsXML(t, 60, 3)
	code, _, hdr := doAs(t, "key-acme", "POST", ts.URL+"/v1/embed?owner=acme&doc=d1.xml", doc)
	if code != http.StatusOK {
		t.Fatalf("embed: %d", code)
	}
	wantID := hdr.Get("X-Wmxml-Receipt")

	var listing struct {
		Owner    string `json:"owner"`
		Receipts []struct {
			ID         string          `json:"id"`
			Doc        string          `json:"doc"`
			QueryCount int             `json:"query_count"`
			Records    json.RawMessage `json:"records"`
		} `json:"receipts"`
	}
	code, body, _ := doAs(t, "key-acme", "GET", ts.URL+"/v1/owners/acme/receipts", nil)
	if code != http.StatusOK {
		t.Fatalf("receipts: %d %s", code, body)
	}
	if err := json.Unmarshal(body, &listing); err != nil {
		t.Fatal(err)
	}
	if len(listing.Receipts) != 1 || listing.Receipts[0].ID != wantID || listing.Receipts[0].Doc != "d1.xml" {
		t.Fatalf("receipts listing: %s", body)
	}
	if listing.Receipts[0].QueryCount == 0 || listing.Receipts[0].Records != nil {
		t.Fatalf("metadata listing should elide records: %s", body)
	}
	code, body, _ = doAs(t, "key-acme", "GET", ts.URL+"/v1/owners/acme/receipts?full=1", nil)
	if code != http.StatusOK {
		t.Fatalf("receipts full: %d", code)
	}
	if err := json.Unmarshal(body, &listing); err != nil {
		t.Fatal(err)
	}
	if listing.Receipts[0].Records == nil {
		t.Fatalf("full listing lost records: %s", body)
	}

	// Re-embedding the identical body is idempotent: same receipt id,
	// no second registry entry.
	code, _, hdr = doAs(t, "key-acme", "POST", ts.URL+"/v1/embed?owner=acme&doc=d1.xml", doc)
	if code != http.StatusOK || hdr.Get("X-Wmxml-Receipt") != wantID {
		t.Fatalf("re-embed: %d receipt=%q want %q", code, hdr.Get("X-Wmxml-Receipt"), wantID)
	}
	code, body, _ = doAs(t, "key-acme", "GET", ts.URL+"/v1/owners/acme/receipts", nil)
	if code != http.StatusOK {
		t.Fatal("receipts after re-embed")
	}
	if err := json.Unmarshal(body, &listing); err != nil {
		t.Fatal(err)
	}
	if len(listing.Receipts) != 1 {
		t.Fatalf("re-embed duplicated the receipt: %s", body)
	}
}

// TestServerKeyRotationNewReceipt: re-registering an owner with a new
// key and re-embedding the same bytes must store a fresh receipt (not
// silently collide with the stale one) and keep detection working.
func TestServerKeyRotationNewReceipt(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	registerOwner(t, ts.URL, "acme")
	doc := pubsXML(t, 80, 21)
	code, _, hdr := doAs(t, "key-acme", "POST", ts.URL+"/v1/embed?owner=acme", doc)
	if code != http.StatusOK {
		t.Fatalf("embed: %d", code)
	}
	oldID := hdr.Get("X-Wmxml-Receipt")

	// Rotate the key: the re-registration itself must prove knowledge
	// of the key it replaces, then every request switches to the new
	// credential.
	rotated := `{"id":"acme","key":"rotated-key","mark":"(C) acme","dataset":"pubs","gamma":3}`
	if code, body, _ := doAs(t, "key-acme", "POST", ts.URL+"/v1/owners", []byte(rotated)); code != http.StatusOK {
		t.Fatalf("rotate: %d %s", code, body)
	}
	code, marked2, hdr := doAs(t, "rotated-key", "POST", ts.URL+"/v1/embed?owner=acme", doc)
	if code != http.StatusOK {
		t.Fatalf("re-embed after rotation: %d", code)
	}
	newID := hdr.Get("X-Wmxml-Receipt")
	if newID == oldID {
		t.Fatalf("rotated embed reused receipt id %q", oldID)
	}
	// The retired key no longer authenticates.
	if code, _, _ := doAs(t, "key-acme", "POST", ts.URL+"/v1/detect?owner=acme", marked2); code != http.StatusUnauthorized {
		t.Fatalf("detect with retired key: %d, want 401", code)
	}
	code, body, _ := doAs(t, "rotated-key", "GET", ts.URL+"/v1/owners/acme/receipts", nil)
	if code != http.StatusOK {
		t.Fatal("receipts after rotation")
	}
	if !strings.Contains(string(body), oldID) || !strings.Contains(string(body), newID) {
		t.Fatalf("registry lost a receipt across rotation: %s", body)
	}
	// The rotated-key marked copy detects through its new receipt.
	code, body, _ = doAs(t, "rotated-key", "POST", ts.URL+"/v1/detect?owner=acme", marked2)
	if code != http.StatusOK || !strings.Contains(string(body), `"detected": true`) {
		t.Fatalf("detect after rotation: %d %s", code, body)
	}
}

// TestServerVerify exercises the verification endpoint on valid and
// broken documents.
func TestServerVerify(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	registerOwner(t, ts.URL, "acme")

	var v struct {
		SchemaValid bool `json:"schema_valid"`
		OK          bool `json:"ok"`
	}
	code, body, _ := doAs(t, "key-acme", "POST", ts.URL+"/v1/verify?owner=acme", pubsXML(t, 40, 1))
	if code != http.StatusOK {
		t.Fatalf("verify: %d %s", code, body)
	}
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	if !v.SchemaValid || !v.OK {
		t.Fatalf("verify valid doc: %s", body)
	}
	code, body, _ = doAs(t, "key-acme", "POST", ts.URL+"/v1/verify?owner=acme", []byte(`<db><magazine/></db>`))
	if code != http.StatusOK {
		t.Fatalf("verify invalid: %d %s", code, body)
	}
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	if v.SchemaValid || v.OK {
		t.Fatalf("invalid doc verified: %s", body)
	}
}

// TestServerErrors covers the failure statuses: unknown owner, missing
// receipts, malformed bodies, oversized bodies, depth bombs.
func TestServerErrors(t *testing.T) {
	_, ts := newTestServer(t, Options{MaxBodyBytes: 2048, MaxDepth: 20})
	registerOwner(t, ts.URL, "acme")

	cases := []struct {
		name   string
		method string
		path   string
		body   []byte
		want   int
	}{
		{"embed unknown owner", "POST", "/v1/embed?owner=ghost", []byte("<db/>"), http.StatusNotFound},
		{"detect unknown owner", "POST", "/v1/detect?owner=ghost", []byte("<db/>"), http.StatusNotFound},
		{"missing owner param", "POST", "/v1/detect", []byte("<db/>"), http.StatusBadRequest},
		{"receipts unknown owner", "GET", "/v1/owners/ghost/receipts", nil, http.StatusNotFound},
		{"detect before any embed", "POST", "/v1/detect?owner=acme", []byte("<db></db>"), http.StatusConflict},
		{"unknown receipt", "POST", "/v1/detect?owner=acme&receipt=r-nope", []byte("<db></db>"), http.StatusNotFound},
		{"empty body", "POST", "/v1/embed?owner=acme", nil, http.StatusBadRequest},
		{"bad xml", "POST", "/v1/embed?owner=acme", []byte("<db><book>"), http.StatusBadRequest},
		{"bad owner json", "POST", "/v1/owners", []byte("{"), http.StatusBadRequest},
		{"owner missing key", "POST", "/v1/owners", []byte(`{"id":"x","mark":"m","dataset":"pubs"}`), http.StatusBadRequest},
		{"owner bad dataset", "POST", "/v1/owners", []byte(`{"id":"x","key":"k","mark":"m","dataset":"nope"}`), http.StatusBadRequest},
	}
	for _, tc := range cases {
		// All requests present acme's key so the expected error, not a
		// 401, is what comes back; the unauthenticated statuses have
		// their own test.
		code, body, _ := doAs(t, "key-acme", tc.method, ts.URL+tc.path, tc.body)
		if code != tc.want {
			t.Errorf("%s: code = %d want %d (%s)", tc.name, code, tc.want, body)
		}
	}

	// Oversized body: 413.
	big := make([]byte, 4096)
	for i := range big {
		big[i] = 'x'
	}
	code, _, _ := doAs(t, "key-acme", "POST", ts.URL+"/v1/embed?owner=acme", big)
	if code != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body: code = %d want 413", code)
	}

	// Depth bomb: rejected by the MaxDepth parse guard.
	var sb strings.Builder
	for i := 0; i < 30; i++ {
		sb.WriteString("<a>")
	}
	sb.WriteString("x")
	for i := 0; i < 30; i++ {
		sb.WriteString("</a>")
	}
	code, body, _ := doAs(t, "key-acme", "POST", ts.URL+"/v1/verify?owner=acme", []byte(sb.String()))
	if code != http.StatusBadRequest {
		t.Errorf("depth bomb: code = %d (%s), want 400", code, body)
	}
}

// TestServerAuth: owner-scoped endpoints require the owner's key as a
// Bearer credential; re-registering an existing id requires the
// current key; AllowUnauthenticated opts out of all of it.
func TestServerAuth(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	registerOwner(t, ts.URL, "acme")
	doc := pubsXML(t, 120, 4)

	// Missing and wrong credentials are rejected on every owner-scoped
	// endpoint before any work runs.
	for _, key := range []string{"", "not-the-key"} {
		for _, ep := range []struct{ method, path string }{
			{"POST", "/v1/embed?owner=acme"},
			{"POST", "/v1/detect?owner=acme"},
			{"POST", "/v1/verify?owner=acme"},
			{"GET", "/v1/owners/acme/receipts"},
			{"GET", "/v1/owners/acme/receipts?full=1"},
		} {
			code, body, _ := doAs(t, key, ep.method, ts.URL+ep.path, doc)
			if code != http.StatusUnauthorized {
				t.Errorf("%s %s with key %q: code = %d want 401 (%s)", ep.method, ep.path, key, code, body)
			}
		}
	}

	// The auth scheme is case-insensitive (RFC 9110; proxies normalize
	// casing).
	req, err := http.NewRequest("POST", ts.URL+"/v1/verify?owner=acme", bytes.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Authorization", "bearer key-acme")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("lowercase bearer scheme rejected: %d", resp.StatusCode)
	}

	// Hijacking an existing owner id without its key is refused; the
	// original registration stays intact.
	hijack := `{"id":"acme","key":"attacker","mark":"(C) EVE","dataset":"pubs"}`
	for _, key := range []string{"", "attacker"} {
		if code, body, _ := doAs(t, key, "POST", ts.URL+"/v1/owners", []byte(hijack)); code != http.StatusUnauthorized {
			t.Fatalf("re-register with key %q: code = %d want 401 (%s)", key, code, body)
		}
	}
	if code, _, _ := doAs(t, "key-acme", "POST", ts.URL+"/v1/embed?owner=acme", doc); code != http.StatusOK {
		t.Fatalf("original key stopped working after hijack attempt: %d", code)
	}

	// Trusted-network mode: everything works without credentials.
	_, open := newTestServer(t, Options{AllowUnauthenticated: true})
	registerOwner(t, open.URL, "acme")
	code, marked, _ := do(t, "POST", open.URL+"/v1/embed?owner=acme", doc)
	if code != http.StatusOK {
		t.Fatalf("unauthenticated embed with AllowUnauthenticated: %d", code)
	}
	if code, body, _ := do(t, "POST", open.URL+"/v1/detect?owner=acme", marked); code != http.StatusOK || !strings.Contains(string(body), `"detected": true`) {
		t.Fatalf("unauthenticated detect with AllowUnauthenticated: %d %s", code, body)
	}
}

// TestServerAdmission: with every worker slot occupied, a request is
// rejected with 503 once its queue wait expires.
func TestServerAdmission(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 1, QueueTimeout: 20 * time.Millisecond})
	registerOwner(t, ts.URL, "acme")
	// Occupy the only slot directly.
	s.slots <- struct{}{}
	code, body, _ := doAs(t, "key-acme", "POST", ts.URL+"/v1/detect?owner=acme&mode=blind", pubsXML(t, 10, 1))
	if code != http.StatusServiceUnavailable {
		t.Fatalf("admission: code = %d (%s), want 503", code, body)
	}
	<-s.slots
	if s.met.queueFull.Value() != 1 {
		t.Errorf("queueFull = %d, want 1", s.met.queueFull.Value())
	}
}

// TestServerHealthz reports owner count.
func TestServerHealthz(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	registerOwner(t, ts.URL, "acme")
	code, body, _ := do(t, "GET", ts.URL+"/healthz", nil)
	if code != http.StatusOK || !strings.Contains(string(body), `"status": "ok"`) {
		t.Fatalf("healthz: %d %s", code, body)
	}
	if !strings.Contains(string(body), `"owners": 1`) {
		t.Errorf("healthz owners: %s", body)
	}
}

// TestServerFileRegistry runs the embed/detect flow over the JSONL
// store and confirms receipts survive a registry reopen.
func TestServerFileRegistry(t *testing.T) {
	path := t.TempDir() + "/reg.jsonl"
	reg, err := registry.OpenFile(path, registry.FileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Options{Registry: reg})
	registerOwner(t, ts.URL, "acme")
	doc := pubsXML(t, 80, 11)
	code, marked, _ := doAs(t, "key-acme", "POST", ts.URL+"/v1/embed?owner=acme", doc)
	if code != http.StatusOK {
		t.Fatalf("embed: %d", code)
	}
	reg.Close()

	// A second server over the reopened log detects with no re-embed.
	reg2, err := registry.OpenFile(path, registry.FileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer reg2.Close()
	_, ts2 := newTestServer(t, Options{Registry: reg2})
	code, body, _ := doAs(t, "key-acme", "POST", ts2.URL+"/v1/detect?owner=acme", marked)
	if code != http.StatusOK {
		t.Fatalf("detect after reopen: %d %s", code, body)
	}
	if !strings.Contains(string(body), `"detected": true`) {
		t.Fatalf("detect after reopen: %s", body)
	}
}
