package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
)

type planVerdict struct {
	Owner        string `json:"owner"`
	Digest       string `json:"digest"`
	DocLen       int    `json:"doc_len"`
	PayloadBits  int    `json:"payload_bits"`
	Sites        int    `json:"sites"`
	CarrierUnits int    `json:"carrier_units"`
}

// compilePlan drives POST /v1/deliver/plan and returns the verdict.
func compilePlan(t *testing.T, base, owner string, doc []byte) planVerdict {
	t.Helper()
	code, body, _ := doAs(t, "key-"+owner, "POST", base+"/v1/deliver/plan?owner="+owner+"&doc=catalog.xml", doc)
	if code != http.StatusOK {
		t.Fatalf("compile plan: %d %s", code, body)
	}
	var v planVerdict
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatalf("plan verdict: %v\n%s", err, body)
	}
	return v
}

// deliverCopy drives POST /v1/deliver and returns the spliced copy.
func deliverCopy(t *testing.T, base, owner, recipient, query string, body []byte) ([]byte, http.Header) {
	t.Helper()
	code, out, hdr := doAs(t, "key-"+owner, "POST",
		base+"/v1/deliver?owner="+owner+"&recipient="+recipient+query, body)
	if code != http.StatusOK {
		t.Fatalf("deliver %s: %d %s", recipient, code, out)
	}
	return out, hdr
}

// TestServerDeliverEndToEnd is the acceptance flow of the delivery fast
// path: compile one plan, splice two recipients from it with empty
// bodies, prove the splice byte-identical to a full /v1/fingerprint of
// the same document, and trace a delivered copy back to its recipient.
func TestServerDeliverEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	registerOwner(t, ts.URL, "acme")
	orig := pubsXML(t, 120, 9)

	pv := compilePlan(t, ts.URL, "acme", orig)
	if pv.Digest == "" || pv.Sites == 0 || pv.CarrierUnits == 0 {
		t.Fatalf("degenerate plan: %+v", pv)
	}

	// Splice two recipients from the stored plan — no body at all.
	r1Copy, hdr := deliverCopy(t, ts.URL, "acme", "r1", "&digest="+pv.Digest, nil)
	r2Copy, _ := deliverCopy(t, ts.URL, "acme", "r2", "&digest="+pv.Digest, nil)
	if bytes.Equal(r1Copy, r2Copy) {
		t.Fatal("spliced copies are identical — no per-recipient code")
	}
	if !strings.HasPrefix(hdr.Get("X-Wmxml-Receipt"), "d-") {
		t.Errorf("deliver receipt id %q does not carry the d- prefix", hdr.Get("X-Wmxml-Receipt"))
	}
	if hdr.Get("X-Wmxml-Recipient") != "r1" || hdr.Get("X-Wmxml-Digest") != pv.Digest {
		t.Errorf("deliver headers: recipient=%q digest=%q", hdr.Get("X-Wmxml-Recipient"), hdr.Get("X-Wmxml-Digest"))
	}

	// The splice must be byte-identical to the full parse+embed path.
	fpCopy := fingerprintCopy(t, ts.URL, "acme", "r1", orig)
	if !bytes.Equal(r1Copy, fpCopy) {
		t.Fatal("spliced r1 copy differs from /v1/fingerprint r1 copy")
	}

	// A delivered copy traces to its recipient.
	v := traceDoc(t, ts.URL, "acme", r2Copy, "")
	if len(v.Accused) != 1 || v.Accused[0] != "r2" {
		t.Fatalf("trace of spliced copy accused %v, want [r2]", v.Accused)
	}

	// Delivery registered the recipients and receipts.
	_, rb, _ := doAs(t, "key-acme", "GET", ts.URL+"/v1/owners/acme/recipients", nil)
	if !strings.Contains(string(rb), `"r1"`) || !strings.Contains(string(rb), `"r2"`) {
		t.Fatalf("delivered recipients not registered: %s", rb)
	}
	var receipts struct {
		Receipts []struct {
			ID        string `json:"id"`
			Recipient string `json:"recipient"`
		} `json:"receipts"`
	}
	_, recb, _ := doAs(t, "key-acme", "GET", ts.URL+"/v1/owners/acme/receipts", nil)
	if err := json.Unmarshal(recb, &receipts); err != nil {
		t.Fatal(err)
	}
	found := 0
	for _, rec := range receipts.Receipts {
		if strings.HasPrefix(rec.ID, "d-") && (rec.Recipient == "r1" || rec.Recipient == "r2") {
			found++
		}
	}
	if found != 2 {
		t.Errorf("want 2 d- receipts for r1/r2, found %d in %s", found, recb)
	}

	// register=0 splices without leaving a trail.
	deliverCopy(t, ts.URL, "acme", "ghost", "&digest="+pv.Digest+"&register=0", nil)
	_, rb2, _ := doAs(t, "key-acme", "GET", ts.URL+"/v1/owners/acme/recipients", nil)
	if strings.Contains(string(rb2), "ghost") {
		t.Error("register=0 delivery registered the recipient anyway")
	}

	// Counters moved.
	_, mb, _ := do(t, "GET", ts.URL+"/metrics", nil)
	met := string(mb)
	for _, want := range []string{
		"wmxmld_delivers_total 3",
		"wmxmld_deliver_plan_compiles_total 1",
		"wmxmld_deliver_plan_hits_total 3",
	} {
		if !strings.Contains(met, want) {
			t.Errorf("/metrics lacks %q", want)
		}
	}
}

// TestServerDeliverBodyPath: posting the document itself compiles on
// first delivery and splices from the stored plan on the second —
// including across a server restart over the same registry file, where
// the plan survives on disk.
func TestServerDeliverBodyPath(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	registerOwner(t, ts.URL, "acme")
	orig := pubsXML(t, 60, 10)

	c1, h1 := deliverCopy(t, ts.URL, "acme", "r1", "", orig)
	c2, _ := deliverCopy(t, ts.URL, "acme", "r2", "", orig)
	if bytes.Equal(c1, c2) {
		t.Fatal("body-path copies identical")
	}
	// Same recipient, same doc: identical bytes whichever path serves it.
	c1b, _ := deliverCopy(t, ts.URL, "acme", "r1", "&digest="+h1.Get("X-Wmxml-Digest"), nil)
	if !bytes.Equal(c1, c1b) {
		t.Fatal("digest-path copy differs from body-path copy")
	}
	_, mb, _ := do(t, "GET", ts.URL+"/metrics", nil)
	met := string(mb)
	if !strings.Contains(met, "wmxmld_deliver_plan_compiles_total 1") {
		t.Errorf("body path should compile exactly once:\n%s", met)
	}
	if !strings.Contains(met, "wmxmld_deliver_plan_hits_total 2") {
		t.Errorf("second body delivery and digest delivery should both hit the plan:\n%s", met)
	}
}

// TestServerDeliverStream: mode=stream splices the canonical body in
// constant memory to the same bytes as the in-memory path, and a
// mutated body aborts the response instead of delivering a clean wrong
// copy.
func TestServerDeliverStream(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	registerOwner(t, ts.URL, "acme")
	orig := pubsXML(t, 80, 3)

	pv := compilePlan(t, ts.URL, "acme", orig)
	want, _ := deliverCopy(t, ts.URL, "acme", "r1", "&digest="+pv.Digest, nil)

	got, _ := deliverCopy(t, ts.URL, "acme", "r1", "&digest="+pv.Digest+"&mode=stream", orig)
	if !bytes.Equal(got, want) {
		t.Fatal("streamed splice differs from in-memory splice")
	}

	// Stream of a tampered original: the digest check fails after the
	// headers are gone, so the server must kill the connection — the
	// client sees a transport error or a truncated body, never a clean
	// 200-complete wrong copy.
	mutated := append([]byte{}, orig...)
	mutated[len(mutated)/2] ^= 0x01
	req, err := http.NewRequest("POST",
		ts.URL+"/v1/deliver?owner=acme&recipient=r1&digest="+pv.Digest+"&mode=stream&register=0",
		bytes.NewReader(mutated))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Authorization", "Bearer key-acme")
	resp, err := http.DefaultClient.Do(req)
	if err == nil {
		defer resp.Body.Close()
		var sink bytes.Buffer
		if _, rerr := sink.ReadFrom(resp.Body); rerr == nil && sink.Len() == len(want) {
			t.Fatal("tampered stream delivered a complete copy")
		}
	}
}

func TestServerDeliverErrors(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	registerOwner(t, ts.URL, "acme")
	doc := pubsXML(t, 20, 4)

	if code, _, _ := doAs(t, "key-acme", "POST", ts.URL+"/v1/deliver?owner=acme", doc); code != http.StatusBadRequest {
		t.Errorf("deliver without recipient = %d, want 400", code)
	}
	if code, _, _ := doAs(t, "key-acme", "POST", ts.URL+"/v1/deliver?owner=acme&recipient=r1&digest="+strings.Repeat("0", 64), nil); code != http.StatusNotFound {
		t.Errorf("deliver with unknown digest = %d, want 404", code)
	}
	if code, _, _ := doAs(t, "key-acme", "POST", ts.URL+"/v1/deliver?owner=acme&recipient=r1&mode=stream", doc); code != http.StatusBadRequest {
		t.Errorf("stream deliver without digest = %d, want 400", code)
	}
	if code, _, _ := doAs(t, "wrong", "POST", ts.URL+"/v1/deliver/plan?owner=acme", doc); code != http.StatusUnauthorized {
		t.Errorf("plan compile with wrong key = %d, want 401", code)
	}
	if code, _, _ := doAs(t, "wrong", "POST", ts.URL+"/v1/deliver?owner=acme&recipient=r1", doc); code != http.StatusUnauthorized {
		t.Errorf("deliver with wrong key = %d, want 401", code)
	}
	if code, _, _ := doAs(t, "key-acme", "POST", ts.URL+"/v1/deliver/plan?owner=acme", []byte("<not xml")); code != http.StatusBadRequest {
		t.Errorf("plan compile of malformed XML = %d, want 400", code)
	}
}
