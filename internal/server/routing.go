package server

// Fleet routing. A wmxmld fleet is N stateless nodes over one shared
// registry; what distinguishes the nodes is cache warmth. Consistent
// hashing assigns every owner a home node, and a request landing
// anywhere else is transparently proxied home, so each owner's parsed
// suspect documents and compiled runtime warm exactly one node's
// memory instead of N copies competing for N small caches. Clients
// need zero routing knowledge — any node is a correct entry point —
// but a routing-aware client (wmload --nodes) can hit home nodes
// directly and skip the extra hop.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httputil"
	"net/url"

	"wmxml/internal/cluster"
)

const (
	// fleetHopHeader marks a request already proxied once. A node
	// receiving it serves locally no matter what its ring says, so ring
	// disagreement during a rolling config change degrades to one extra
	// hop, never a loop.
	fleetHopHeader = "X-Wmxml-Fleet-Hop"
	// fleetNodeHeader names the node that actually served a response —
	// the observable tests and operators use to see routing work.
	fleetNodeHeader = "X-Wmxml-Node"
)

// ownerExtractor pulls the routing key (the owner id) out of a request
// without consuming it. Empty means "no owner; serve locally".
type ownerExtractor func(r *http.Request) string

func ownerFromQuery(r *http.Request) string { return r.URL.Query().Get("owner") }

func ownerFromPath(r *http.Request) string { return r.PathValue("id") }

// ownerFromBody peeks the owner id out of a JSON body (POST /v1/owners
// carries it nowhere else), then restores the body for the handler or
// proxy. Reading is capped one byte past the server limit: an
// over-limit body stays over-limit after restore and is rejected
// downstream exactly as it would have been.
func (s *Server) ownerFromBody(r *http.Request) string {
	body, err := io.ReadAll(io.LimitReader(r.Body, s.opts.MaxBodyBytes+1))
	if err != nil {
		return ""
	}
	r.Body = io.NopCloser(bytes.NewReader(body))
	r.ContentLength = int64(len(body))
	var peek struct {
		ID string `json:"id"`
	}
	json.Unmarshal(body, &peek)
	return peek.ID
}

// routed wraps an owner-scoped handler with home-node routing. With no
// fleet configured it is the identity — the single-node hot path gains
// zero work.
func (s *Server) routed(owner ownerExtractor, h http.HandlerFunc) http.HandlerFunc {
	if s.fleet == nil {
		return h
	}
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get(fleetHopHeader) != "" {
			w.Header().Set(fleetNodeHeader, s.opts.FleetSelf)
			h(w, r)
			return
		}
		id := owner(r)
		if id == "" {
			w.Header().Set(fleetNodeHeader, s.opts.FleetSelf)
			h(w, r)
			return
		}
		node := s.fleet.Node(id)
		if node == s.opts.FleetSelf {
			w.Header().Set(fleetNodeHeader, s.opts.FleetSelf)
			h(w, r)
			return
		}
		s.met.fleetProxied.Inc()
		s.proxies[node].ServeHTTP(w, r)
	}
}

// buildFleet validates the fleet options and compiles the ring and the
// per-peer reverse proxies. Called from New; no-op below two nodes.
func (s *Server) buildFleet() error {
	if len(s.opts.FleetNodes) < 2 {
		return nil
	}
	self := false
	for _, n := range s.opts.FleetNodes {
		if n == s.opts.FleetSelf {
			self = true
			break
		}
	}
	if !self {
		return fmt.Errorf("server: Options.FleetSelf %q is not one of FleetNodes %v", s.opts.FleetSelf, s.opts.FleetNodes)
	}
	ring, err := cluster.New(s.opts.FleetNodes)
	if err != nil {
		return fmt.Errorf("server: fleet: %w", err)
	}
	s.fleet = ring
	s.proxies = make(map[string]*httputil.ReverseProxy, len(s.opts.FleetNodes)-1)
	for _, n := range s.opts.FleetNodes {
		if n == s.opts.FleetSelf {
			continue
		}
		p, err := newFleetProxy(n, s.opts.FleetSelf)
		if err != nil {
			return err
		}
		s.proxies[n] = p
	}
	return nil
}

// newFleetProxy builds the reverse proxy for one peer. FlushInterval -1
// keeps the streaming endpoints (mode=stream) streaming through the
// hop; the hop header is stamped on the outbound clone, never on the
// caller's request.
func newFleetProxy(node, self string) (*httputil.ReverseProxy, error) {
	u, err := url.Parse(node)
	if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
		return nil, fmt.Errorf("server: fleet node %q is not an http(s) URL", node)
	}
	return &httputil.ReverseProxy{
		Rewrite: func(pr *httputil.ProxyRequest) {
			pr.SetURL(u)
			pr.Out.Host = u.Host
			pr.Out.Header.Set(fleetHopHeader, self)
		},
		FlushInterval: -1,
		ErrorHandler: func(w http.ResponseWriter, r *http.Request, err error) {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusBadGateway)
			json.NewEncoder(w).Encode(map[string]string{
				"error": fmt.Sprintf("fleet peer %s unreachable: %v", node, err),
			})
		},
	}, nil
}
