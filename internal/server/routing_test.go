package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"wmxml/internal/cluster"
	"wmxml/internal/registry"
)

// newFleet starts n servers over one shared registry, wired as a
// consistent-hash fleet. The listeners come up first (their URLs are
// the node identities), then the servers are bound into them.
func newFleet(t *testing.T, n int, opts Options) ([]*Server, []string) {
	t.Helper()
	reg := opts.Registry
	if reg == nil {
		reg = registry.NewMemory()
	}
	handlers := make([]http.Handler, n)
	nodes := make([]string, n)
	for i := 0; i < n; i++ {
		i := i
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			handlers[i].ServeHTTP(w, r)
		}))
		t.Cleanup(ts.Close)
		nodes[i] = ts.URL
	}
	servers := make([]*Server, n)
	for i := 0; i < n; i++ {
		o := opts
		o.Registry = reg
		o.FleetNodes = nodes
		o.FleetSelf = nodes[i]
		s, err := New(o)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(s.Close)
		servers[i] = s
		handlers[i] = s.Handler()
	}
	return servers, nodes
}

// ownerHomedOn finds an owner id whose consistent-hash home is the
// given node — so the tests can aim requests at (or away from) it.
func ownerHomedOn(t *testing.T, nodes []string, node string) string {
	t.Helper()
	ring, err := cluster.New(nodes)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4096; i++ {
		id := fmt.Sprintf("tenant-%04d", i)
		if ring.Node(id) == node {
			return id
		}
	}
	t.Fatalf("no owner homed on %s in 4096 candidates", node)
	return ""
}

// TestFleetRouting: a request landing on the wrong node is proxied to
// the owner's home node (visible in X-Wmxml-Node and the proxied
// counter); a request landing on the right node is served in place.
func TestFleetRouting(t *testing.T) {
	servers, nodes := newFleet(t, 2, Options{})
	remote := ownerHomedOn(t, nodes, nodes[1])

	// Registration routes too — the body peek finds the owner id.
	registerOwner(t, nodes[0], remote)
	if p := servers[0].FleetStats(); p != 1 {
		t.Fatalf("registration via the wrong node proxied %d requests, want 1", p)
	}
	code, doc, _ := doAs(t, "key-"+remote, "POST", nodes[1]+"/v1/embed?owner="+remote+"&doc=d.xml", pubsXML(t, 60, 1))
	if code != http.StatusOK {
		t.Fatalf("embed: %d %s", code, doc)
	}

	// Wrong node: served by the home node through the proxy.
	code, body, hdr := doAs(t, "key-"+remote, "POST", nodes[0]+"/v1/detect?owner="+remote, doc)
	if code != http.StatusOK {
		t.Fatalf("routed detect: %d %s", code, body)
	}
	if got := hdr.Get("X-Wmxml-Node"); got != nodes[1] {
		t.Errorf("routed detect served by %q, want home node %q", got, nodes[1])
	}
	if p := servers[0].FleetStats(); p != 2 {
		t.Errorf("proxied counter = %d, want 2", p)
	}
	// Only the home node's cache warmed.
	if _, _, _, size := servers[1].CacheStats(); size != 1 {
		t.Errorf("home node cached %d docs, want 1", size)
	}
	if _, _, _, size := servers[0].CacheStats(); size != 0 {
		t.Errorf("entry node cached %d docs, want 0", size)
	}

	// Right node: served locally, proxy counters untouched.
	code, _, hdr = doAs(t, "key-"+remote, "POST", nodes[1]+"/v1/detect?owner="+remote, doc)
	if code != http.StatusOK {
		t.Fatal("direct detect failed")
	}
	if got := hdr.Get("X-Wmxml-Node"); got != nodes[1] {
		t.Errorf("direct detect served by %q, want %q", got, nodes[1])
	}
	if p := servers[1].FleetStats(); p != 0 {
		t.Errorf("home node proxied %d requests, want 0", p)
	}

	// Receipts listing routes on the path owner.
	code, body, hdr = doAs(t, "key-"+remote, "GET", nodes[0]+"/v1/owners/"+remote+"/receipts", nil)
	if code != http.StatusOK {
		t.Fatalf("routed receipts: %d %s", code, body)
	}
	if got := hdr.Get("X-Wmxml-Node"); got != nodes[1] {
		t.Errorf("routed receipts served by %q, want %q", got, nodes[1])
	}
}

// TestFleetHopGuard: a request already carrying the hop header is
// served wherever it lands, even if this node's ring disagrees — one
// extra hop max, never a proxy loop.
func TestFleetHopGuard(t *testing.T) {
	_, nodes := newFleet(t, 2, Options{})
	remote := ownerHomedOn(t, nodes, nodes[1])
	registerOwner(t, nodes[1], remote)

	req, err := http.NewRequest("GET", nodes[0]+"/v1/owners/"+remote+"/receipts", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Authorization", "Bearer key-"+remote)
	req.Header.Set("X-Wmxml-Fleet-Hop", "test")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("hop-guarded request: %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Wmxml-Node"); got != nodes[0] {
		t.Errorf("hop-guarded request served by %q, want the landing node %q", got, nodes[0])
	}
}

// TestFleetPeerDown: a dead home node surfaces as a JSON 502 from the
// entry node, not a hung request or an opaque transport error.
func TestFleetPeerDown(t *testing.T) {
	servers, nodes := newFleet(t, 2, Options{})
	remote := ownerHomedOn(t, nodes, nodes[1])
	registerOwner(t, nodes[1], remote)
	_ = servers

	// Kill node 1's listener by pointing its handler slot at a closed
	// server: simplest is to aim at an owner homed on a node we shut.
	// httptest servers are cleaned up at test end, so instead build a
	// 2-node fleet where one address never listens.
	reg := registry.NewMemory()
	live := httptest.NewServer(nil)
	defer live.Close()
	deadURL := "http://127.0.0.1:1" // reserved port, nothing listens
	s, err := New(Options{Registry: reg, FleetNodes: []string{live.URL, deadURL}, FleetSelf: live.URL})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	live.Config.Handler = s.Handler()

	downOwner := ownerHomedOn(t, []string{live.URL, deadURL}, deadURL)
	code, body, _ := doAs(t, "k", "GET", live.URL+"/v1/owners/"+downOwner+"/receipts", nil)
	if code != http.StatusBadGateway {
		t.Fatalf("request homed on a dead peer = %d %s, want 502", code, body)
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
		t.Errorf("502 body is not the JSON error envelope: %s", body)
	}
}

// TestFleetSelfValidation: a fleet config whose self address is not in
// the node list is refused at construction.
func TestFleetSelfValidation(t *testing.T) {
	_, err := New(Options{
		Registry:   registry.NewMemory(),
		FleetNodes: []string{"http://a:1", "http://b:2"},
		FleetSelf:  "http://c:3",
	})
	if err == nil {
		t.Fatal("New accepted FleetSelf outside FleetNodes")
	}
	_, err = New(Options{
		Registry:   registry.NewMemory(),
		FleetNodes: []string{"http://a:1", "ftp://b:2"},
		FleetSelf:  "http://a:1",
	})
	if err == nil {
		t.Fatal("New accepted a non-http fleet node")
	}
}
