package server

// The suspect-document cache. Query-preserving watermarking assumes
// detection is re-run many times against the same suspect data
// (arXiv:1909.11369's setting, and any dispute that escalates); parsing
// a large XML body and building its DocumentIndex dominates the cost of
// an indexed detection, so the server keys both on the SHA-256 of the
// raw request body and serves repeats from memory. Entries are
// strictly read-only: detection and verification never mutate the tree,
// and embedding (which does) bypasses the cache entirely.
//
// Eviction is bounded two ways: an entry-count cap and a total-bytes
// cap, weighted by each entry's source body length (a stable proxy for
// the parsed tree + index footprint, which scale linearly with it). The
// entry cap alone proved insufficient: 128 cached 40 MB suspects is
// 5 GB of trees, while 128 one-record documents is nothing. An entry
// whose weight alone exceeds the byte cap is served but never cached —
// one oversized suspect must not flush every tenant's working set.

import (
	"container/list"
	"crypto/sha256"
	"sync"

	"wmxml/internal/index"
	"wmxml/internal/xmltree"
)

// cachedDoc is one parsed suspect: the immutable tree and its index.
type cachedDoc struct {
	doc *xmltree.Node
	ix  *index.Index
}

// docCache is a content-hash-keyed LRU of parsed documents. Safe for
// concurrent use; the cached values are shared across requests, which
// is sound because readers never mutate them (the index's lazy
// key-value tables lock internally).
type docCache struct {
	mu       sync.Mutex
	cap      int   // max entries; 0 disables the cache
	capBytes int64 // max total weight; 0 = unlimited
	bytes    int64 // current total weight
	entries  map[[sha256.Size]byte]*list.Element
	order    *list.List // front = most recent; values are *docEntry

	// Singleflight over cache fills: concurrent cold requests for the
	// same body hash share one parse+index instead of each doing the
	// full work (the miss-stampede bug ISSUE 10 fixes). Guarded by its
	// own mutex so a slow parse never blocks cache hits for other keys.
	flightMu sync.Mutex
	flights  map[[sha256.Size]byte]*flightCall
}

// flightCall is one in-progress fill. The leader populates cd/err and
// calls done; waiters block on wg and then read them (the WaitGroup
// provides the happens-before edge).
type flightCall struct {
	wg  sync.WaitGroup
	cd  cachedDoc
	err error
}

type docEntry struct {
	key    [sha256.Size]byte
	val    cachedDoc
	weight int64 // source body length, the eviction weight
}

func newDocCache(capacity int, capBytes int64) *docCache {
	if capacity < 0 {
		capacity = 0
	}
	if capBytes < 0 {
		capBytes = 0
	}
	return &docCache{
		cap:      capacity,
		capBytes: capBytes,
		entries:  make(map[[sha256.Size]byte]*list.Element),
		order:    list.New(),
		flights:  make(map[[sha256.Size]byte]*flightCall),
	}
}

// join enters the singleflight for a body hash. The first caller per
// key becomes the leader (leader == true) and must eventually call
// complete; everyone else gets the same *flightCall and should wait on
// its WaitGroup, then read cd/err.
func (c *docCache) join(key [sha256.Size]byte) (f *flightCall, leader bool) {
	c.flightMu.Lock()
	defer c.flightMu.Unlock()
	if f, ok := c.flights[key]; ok {
		return f, false
	}
	f = &flightCall{}
	f.wg.Add(1)
	c.flights[key] = f
	return f, true
}

// complete publishes the leader's result (or error) to all waiters and
// retires the flight. New requests for the same key after this point
// either hit the now-populated cache or start a fresh flight.
func (c *docCache) complete(key [sha256.Size]byte, f *flightCall, cd cachedDoc, err error) {
	f.cd = cd
	f.err = err
	c.flightMu.Lock()
	delete(c.flights, key)
	c.flightMu.Unlock()
	f.wg.Done()
}

// get returns the cached parse for a body hash, refreshing recency.
func (c *docCache) get(key [sha256.Size]byte) (cachedDoc, bool) {
	if c.cap == 0 {
		return cachedDoc{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return cachedDoc{}, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*docEntry).val, true
}

// put inserts a parsed document weighted by its source body length,
// evicting least-recently-used entries while either bound is exceeded,
// and returns how many were evicted. An entry too large to ever fit the
// byte cap is not cached at all. A concurrent insert of the same key
// wins quietly (both values are equivalent parses of the same bytes).
func (c *docCache) put(key [sha256.Size]byte, val cachedDoc, weight int64) (evicted int) {
	if c.cap == 0 {
		return 0
	}
	if weight < 0 {
		weight = 0
	}
	if c.capBytes > 0 && weight > c.capBytes {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		en := el.Value.(*docEntry)
		c.bytes += weight - en.weight
		en.val = val
		en.weight = weight
	} else {
		c.entries[key] = c.order.PushFront(&docEntry{key: key, val: val, weight: weight})
		c.bytes += weight
	}
	for c.order.Len() > c.cap || (c.capBytes > 0 && c.bytes > c.capBytes && c.order.Len() > 1) {
		last := c.order.Back()
		c.order.Remove(last)
		en := last.Value.(*docEntry)
		delete(c.entries, en.key)
		c.bytes -= en.weight
		evicted++
	}
	return evicted
}

// len reports the current entry count.
func (c *docCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// weight reports the current total byte weight.
func (c *docCache) weight() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}
