package server

// The suspect-document cache. Query-preserving watermarking assumes
// detection is re-run many times against the same suspect data
// (arXiv:1909.11369's setting, and any dispute that escalates); parsing
// a large XML body and building its DocumentIndex dominates the cost of
// an indexed detection, so the server keys both on the SHA-256 of the
// raw request body and serves repeats from memory. Entries are
// strictly read-only: detection and verification never mutate the tree,
// and embedding (which does) bypasses the cache entirely.

import (
	"container/list"
	"crypto/sha256"
	"sync"

	"wmxml/internal/index"
	"wmxml/internal/xmltree"
)

// cachedDoc is one parsed suspect: the immutable tree and its index.
type cachedDoc struct {
	doc *xmltree.Node
	ix  *index.Index
}

// docCache is a content-hash-keyed LRU of parsed documents. Safe for
// concurrent use; the cached values are shared across requests, which
// is sound because readers never mutate them (the index's lazy
// key-value tables lock internally).
type docCache struct {
	mu      sync.Mutex
	cap     int
	entries map[[sha256.Size]byte]*list.Element
	order   *list.List // front = most recent; values are *docEntry
}

type docEntry struct {
	key [sha256.Size]byte
	val cachedDoc
}

func newDocCache(capacity int) *docCache {
	if capacity < 0 {
		capacity = 0
	}
	return &docCache{
		cap:     capacity,
		entries: make(map[[sha256.Size]byte]*list.Element),
		order:   list.New(),
	}
}

// get returns the cached parse for a body hash, refreshing recency.
func (c *docCache) get(key [sha256.Size]byte) (cachedDoc, bool) {
	if c.cap == 0 {
		return cachedDoc{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return cachedDoc{}, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*docEntry).val, true
}

// put inserts a parsed document, evicting the least recently used
// entries when full, and returns how many were evicted. A concurrent
// insert of the same key wins quietly (both values are equivalent
// parses of the same bytes).
func (c *docCache) put(key [sha256.Size]byte, val cachedDoc) (evicted int) {
	if c.cap == 0 {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		el.Value.(*docEntry).val = val
		return 0
	}
	c.entries[key] = c.order.PushFront(&docEntry{key: key, val: val})
	for c.order.Len() > c.cap {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.entries, last.Value.(*docEntry).key)
		evicted++
	}
	return evicted
}

// len reports the current entry count.
func (c *docCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
