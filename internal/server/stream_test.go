package server

// Streaming-endpoint coverage: byte-identity with the buffered embed,
// trailer-delivered receipts, doc-cache bypass, stream metrics, and the
// client-disconnect leak check.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"
)

// TestStreamEmbedMatchesBuffered: mode=stream must return exactly the
// bytes of the buffered embed, deliver the receipt id in trailers, and
// store a working receipt.
func TestStreamEmbedMatchesBuffered(t *testing.T) {
	_, ts := newTestServer(t, Options{StreamChunkSize: 7})
	registerOwner(t, ts.URL, "st")
	doc := pubsXML(t, 60, 9)

	// Buffered reference.
	code, wantBody, _ := doAs(t, "key-st", "POST", ts.URL+"/v1/embed?owner=st", doc)
	if code != http.StatusOK {
		t.Fatalf("buffered embed: %d %s", code, wantBody)
	}

	// Streamed.
	req, err := http.NewRequest("POST", ts.URL+"/v1/embed?owner=st&mode=stream&doc=huge.xml", bytes.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Authorization", "Bearer key-st")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	gotBody, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream embed: %d %s", resp.StatusCode, gotBody)
	}
	if !bytes.Equal(gotBody, wantBody) {
		t.Fatalf("streamed embed output differs from buffered (stream %d bytes, buffered %d)", len(gotBody), len(wantBody))
	}
	// Trailers arrive after the body is drained.
	if e := resp.Trailer.Get("X-Wmxml-Stream-Error"); e != "" {
		t.Fatalf("stream error trailer: %s", e)
	}
	receiptID := resp.Trailer.Get("X-Wmxml-Receipt")
	if !strings.HasPrefix(receiptID, "s-") {
		t.Fatalf("receipt trailer %q", receiptID)
	}
	if resp.Trailer.Get("X-Wmxml-Carriers") == "" || resp.Trailer.Get("X-Wmxml-Stream-Chunks") == "" {
		t.Fatalf("missing stat trailers: %v", resp.Trailer)
	}

	// The stored receipt drives both buffered and streamed detection.
	code, verdict, _ := doAs(t, "key-st", "POST", ts.URL+"/v1/detect?owner=st&receipt="+receiptID, gotBody)
	if code != http.StatusOK || !strings.Contains(string(verdict), `"detected": true`) {
		t.Fatalf("buffered detect via streamed receipt: %d %s", code, verdict)
	}
	code, verdict, _ = doAs(t, "key-st", "POST", ts.URL+"/v1/detect?owner=st&mode=stream&receipt="+receiptID, gotBody)
	if code != http.StatusOK {
		t.Fatalf("stream detect: %d %s", code, verdict)
	}
	var v struct {
		Detected bool   `json:"detected"`
		Streamed bool   `json:"streamed"`
		Chunks   int    `json:"chunks"`
		Mode     string `json:"mode"`
		Suspect  string `json:"suspect_sha256"`
	}
	if err := json.Unmarshal(verdict, &v); err != nil {
		t.Fatal(err)
	}
	if !v.Detected || !v.Streamed || v.Chunks == 0 || v.Mode != "stream" || len(v.Suspect) != 64 {
		t.Fatalf("stream verdict: %+v (%s)", v, verdict)
	}

	// Blind streamed detection.
	code, verdict, _ = doAs(t, "key-st", "POST", ts.URL+"/v1/detect?owner=st&mode=stream-blind", gotBody)
	if code != http.StatusOK || !strings.Contains(string(verdict), `"detected": true`) {
		t.Fatalf("stream-blind detect: %d %s", code, verdict)
	}
}

// TestStreamDetectBypassesCache: streamed detection must not touch the
// suspect-document cache.
func TestStreamDetectBypassesCache(t *testing.T) {
	s, ts := newTestServer(t, Options{})
	registerOwner(t, ts.URL, "cb")
	doc := pubsXML(t, 30, 4)
	code, marked, _ := doAs(t, "key-cb", "POST", ts.URL+"/v1/embed?owner=cb", doc)
	if code != http.StatusOK {
		t.Fatalf("embed: %d", code)
	}
	h0, m0, _, size0 := s.CacheStats()
	code, _, _ = doAs(t, "key-cb", "POST", ts.URL+"/v1/detect?owner=cb&mode=stream-blind", marked)
	if code != http.StatusOK {
		t.Fatalf("stream-blind: %d", code)
	}
	code, _, _ = doAs(t, "key-cb", "POST", ts.URL+"/v1/detect?owner=cb&mode=stream", marked)
	if code != http.StatusOK {
		t.Fatalf("stream: %d", code)
	}
	h1, m1, _, size1 := s.CacheStats()
	if h1 != h0 || m1 != m0 || size1 != size0 {
		t.Fatalf("streamed detects touched the doc cache: hits %d->%d misses %d->%d size %d->%d", h0, h1, m0, m1, size0, size1)
	}
}

// TestStreamMetricsExposed: the wmxmld_stream_* series appear after
// streamed operations.
func TestStreamMetricsExposed(t *testing.T) {
	_, ts := newTestServer(t, Options{StreamChunkSize: 5})
	registerOwner(t, ts.URL, "met")
	doc := pubsXML(t, 25, 2)
	req, _ := http.NewRequest("POST", ts.URL+"/v1/embed?owner=met&mode=stream", bytes.NewReader(doc))
	req.Header.Set("Authorization", "Bearer key-met")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream embed: %d", resp.StatusCode)
	}
	code, _, _ := doAs(t, "key-met", "POST", ts.URL+"/v1/detect?owner=met&mode=stream-blind", body)
	if code != http.StatusOK {
		t.Fatalf("stream detect: %d", code)
	}
	_, metrics, _ := do(t, "GET", ts.URL+"/metrics", nil)
	for _, want := range []string{
		"wmxmld_stream_embeds_total 1",
		"wmxmld_stream_detects_total 1",
		"wmxmld_stream_chunks_total",
	} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestStreamErrorsBeforeOutput: malformed bodies and missing receipts
// fail with proper statuses (output not yet started).
func TestStreamErrorsBeforeOutput(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	registerOwner(t, ts.URL, "er")

	code, body, _ := doAs(t, "key-er", "POST", ts.URL+"/v1/embed?owner=er&mode=stream", []byte("this is not xml"))
	if code != http.StatusBadRequest {
		t.Fatalf("malformed stream embed: %d %s", code, body)
	}
	code, body, _ = doAs(t, "key-er", "POST", ts.URL+"/v1/detect?owner=er&mode=stream", pubsXML(t, 5, 1))
	if code != http.StatusConflict {
		t.Fatalf("stream detect without receipts: %d %s", code, body)
	}
	code, body, _ = do(t, "POST", ts.URL+"/v1/embed?owner=er&mode=stream", pubsXML(t, 5, 1))
	if code != http.StatusUnauthorized {
		t.Fatalf("unauthenticated stream embed: %d %s", code, body)
	}
}

// TestStreamClientDisconnect: a client that vanishes mid-upload must
// not leave server goroutines behind.
func TestStreamClientDisconnect(t *testing.T) {
	before := runtime.NumGoroutine()
	_, ts := newTestServer(t, Options{StreamChunkSize: 4})
	registerOwner(t, ts.URL, "dc")
	doc := pubsXML(t, 200, 6)

	ctx, cancel := context.WithCancel(context.Background())
	pr, pw := io.Pipe()
	req, err := http.NewRequestWithContext(ctx, "POST", ts.URL+"/v1/embed?owner=dc&mode=stream", pr)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Authorization", "Bearer key-dc")
	done := make(chan struct{})
	go func() {
		defer close(done)
		// With full-duplex streaming, Do returns once headers arrive —
		// possibly before the disconnect; drain whatever body the server
		// managed to write before the abort.
		resp, derr := http.DefaultClient.Do(req)
		if derr == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	// Feed half the document, then kill the client.
	if _, err := pw.Write(doc[:len(doc)/2]); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	cancel()
	pw.CloseWithError(fmt.Errorf("client went away"))
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("client call did not finish after the abort")
	}

	// The handler must unwind: poll the goroutine count back to (near)
	// its baseline.
	deadline := time.Now().Add(3 * time.Second)
	for {
		if runtime.NumGoroutine() <= before+2 { // httptest keeps a couple of listeners
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines did not settle: %d before, %d after\n%s", before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(20 * time.Millisecond)
	}

	// And the server still works.
	code, _, _ := doAs(t, "key-dc", "POST", ts.URL+"/v1/embed?owner=dc", pubsXML(t, 10, 1))
	if code != http.StatusOK {
		t.Fatalf("server unhealthy after disconnect: %d", code)
	}
}

// TestStreamRefusesNonChunkableSpec: an owner whose document type
// cannot chunk (root-level target scope) must be refused on the
// streaming endpoints before any body is read — the in-memory fallback
// must never run against a MaxStreamBytes-sized body.
func TestStreamRefusesNonChunkableSpec(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	// A spec whose target scope is the document root: db/total has
	// scope "db", so record chunking is unsound.
	spec := `{
	  "name": "flat",
	  "schema": {"root": "db", "elements": {
	    "db": {"children": [{"name": "name", "max": 1}, {"name": "total", "max": 1}]},
	    "name": {"type": "string"},
	    "total": {"type": "integer"}}},
	  "keys": [{"scope": "db", "path": "name"}],
	  "targets": ["db/total"]
	}`
	owner := fmt.Sprintf(`{"id":"flat","key":"key-flat","mark":"W","spec":%s,"gamma":1}`, spec)
	code, body, _ := do(t, "POST", ts.URL+"/v1/owners", []byte(owner))
	if code != http.StatusOK {
		t.Fatalf("register: %d %s", code, body)
	}
	doc := []byte(`<db><name>flat-export</name><total>100</total></db>`)
	code, body, _ = doAs(t, "key-flat", "POST", ts.URL+"/v1/embed?owner=flat&mode=stream", doc)
	if code != http.StatusUnprocessableEntity || !strings.Contains(string(body), "cannot stream") {
		t.Fatalf("non-chunkable stream embed not refused: %d %s", code, body)
	}
	code, body, _ = doAs(t, "key-flat", "POST", ts.URL+"/v1/detect?owner=flat&mode=stream-blind", doc)
	if code != http.StatusUnprocessableEntity || !strings.Contains(string(body), "cannot stream") {
		t.Fatalf("non-chunkable stream detect not refused: %d %s", code, body)
	}
	// The buffered endpoints still serve this owner.
	code, _, _ = doAs(t, "key-flat", "POST", ts.URL+"/v1/embed?owner=flat", doc)
	if code != http.StatusOK {
		t.Fatalf("buffered embed for flat spec: %d", code)
	}
}
