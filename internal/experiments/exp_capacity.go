package experiments

import "wmxml/internal/core"

// E1Capacity reproduces demonstration part 1: "the watermark capacity is
// fully utilized by WmXML, and the usability of XML document would not
// be seriously degraded". It sweeps the selection ratio gamma and
// reports bandwidth utilization, mark-bit coverage and post-embedding
// usability.
func E1Capacity(p Params) (*Table, error) {
	s, err := newSetup(p)
	if err != nil {
		return nil, err
	}
	t := NewTable("E1", "capacity utilization and usability vs selection ratio (γ)",
		"gamma", "bandwidth_units", "carriers", "values_written", "bit_coverage", "usability", "detected")
	for _, gamma := range []int{2, 5, 10, 25, 50, 100} {
		cfg := s.cfg
		cfg.Gamma = gamma
		doc := s.ds.Doc.Clone()
		er, err := core.Embed(doc, cfg)
		if err != nil {
			return nil, err
		}
		dr, err := core.DetectWithQueries(doc, cfg, er.Records, nil)
		if err != nil {
			return nil, err
		}
		u := s.meter.Measure(doc, nil)
		t.AddRow(gamma, er.Bandwidth.Units, er.Carriers, er.Embedded,
			dr.Coverage, u.Usability(), dr.Detected)
	}
	t.AddNote("dataset: publications, %d books; watermark: %d bits; xi=%d",
		s.p.Books, len(s.cfg.Mark), s.cfg.Xi)
	t.AddNote("expected shape: carriers ≈ units/γ; usability stays ≈ 1.0 at every γ (imperceptibility)")
	return t, nil
}
