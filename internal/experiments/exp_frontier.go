package experiments

import (
	"math/rand"

	"wmxml/internal/attack"
	"wmxml/internal/core"
	"wmxml/internal/rewrite"
	"wmxml/internal/usability"
)

// E7Frontier reproduces the demonstration's headline claim (ii): "once
// the attacks manage to destroy the watermark, the data usability will
// also be destroyed". It sweeps every attack over a severity grid and
// reports the (detection, usability) frontier; the success criterion is
// the absence of any point where the watermark is dead but usability
// survives.
func E7Frontier(p Params) (*Table, error) {
	s, err := newSetup(p)
	if err != nil {
		return nil, err
	}
	rw, err := rewrite.NewQueryRewriter(s.mapping)
	if err != nil {
		return nil, err
	}

	type point struct {
		attack   attack.Attack
		rewriter usability.Rewriter // nil unless the attack re-organizes
	}
	grid := []point{
		{attack.ValueAlteration{Fraction: 0.1}, nil},
		{attack.ValueAlteration{Fraction: 0.3}, nil},
		{attack.ValueAlteration{Fraction: 0.6}, nil},
		{attack.ValueAlteration{Fraction: 0.9}, nil},
		{attack.StructureAlteration{DeleteFraction: 0.2, AddFraction: 0.2}, nil},
		{attack.StructureAlteration{DeleteFraction: 0.5, AddFraction: 0.5}, nil},
		{attack.Reduction{Scope: "db/book", KeepFraction: 0.5}, nil},
		{attack.Reduction{Scope: "db/book", KeepFraction: 0.1}, nil},
		{attack.Reorder{}, nil},
		{attack.Reorganization{Mapping: s.mapping}, rw},
		{attack.RedundancyRemoval{FDs: s.ds.Catalog.FDs}, nil},
		{attack.Chain{Attacks: []attack.Attack{
			attack.ValueAlteration{Fraction: 0.2},
			attack.Reduction{Scope: "db/book", KeepFraction: 0.6},
			attack.Reorder{},
		}}, nil},
	}

	t := NewTable("E7", "attack frontier: no attack kills the mark and spares usability",
		"attack", "match", "coverage", "detected", "usability", "wm_dead_data_alive")
	violations := 0
	for i, pt := range grid {
		doc := s.ds.Doc.Clone()
		er, err := core.Embed(doc, s.cfg)
		if err != nil {
			return nil, err
		}
		r := rand.New(rand.NewSource(s.p.Seed + int64(i)*31))
		attacked, err := pt.attack.Apply(doc, r)
		if err != nil {
			return nil, err
		}
		var coreRW core.Rewriter
		if pt.rewriter != nil {
			coreRW = rw
		}
		dr, err := core.DetectWithQueries(attacked, s.cfg, er.Records, coreRW)
		if err != nil {
			return nil, err
		}
		u := s.meter.Measure(attacked, pt.rewriter)
		dead := !dr.Detected
		alive := u.Usability() >= 0.5
		violation := dead && alive
		if violation {
			violations++
		}
		t.AddRow(pt.attack.Name(), dr.MatchFraction, dr.Coverage, dr.Detected, u.Usability(), violation)
	}
	t.AddNote("violations (watermark destroyed while usability >= 0.5): %d", violations)
	t.AddNote("expected shape: zero violations — the paper's claim (ii)")
	return t, nil
}
