package experiments

import (
	"fmt"

	"wmxml/internal/core"
	"wmxml/internal/wmark"
)

// E8FalsePositive establishes detection safety: only "the correct secret
// key" (paper §4) reconstructs the watermark. It embeds once and then
// attempts detection with the right key, with many wrong keys, with a
// forged mark, and on pristine unmarked data, reporting match statistics
// against the τ=0.85 threshold.
func E8FalsePositive(p Params) (*Table, error) {
	s, err := newSetup(p)
	if err != nil {
		return nil, err
	}
	doc := s.ds.Doc.Clone()
	er, err := core.Embed(doc, s.cfg)
	if err != nil {
		return nil, err
	}

	t := NewTable("E8", "false positives: wrong keys, forged marks, unmarked data",
		"scenario", "trials", "mean_match", "max_match", "false_positives")

	// Right key: sanity anchor.
	dr, err := core.DetectWithQueries(doc, s.cfg, er.Records, nil)
	if err != nil {
		return nil, err
	}
	t.AddRow("right key", 1, dr.MatchFraction, dr.MatchFraction, boolCount(dr.Detected != true))

	// Wrong keys against the stored queries.
	const wrongKeys = 100
	sum, maxm, fps := 0.0, 0.0, 0
	for i := 0; i < wrongKeys; i++ {
		bad := s.cfg
		bad.Key = []byte(fmt.Sprintf("wrong-key-%03d", i))
		r, err := core.DetectWithQueries(doc, bad, er.Records, nil)
		if err != nil {
			return nil, err
		}
		sum += r.MatchFraction
		if r.MatchFraction > maxm {
			maxm = r.MatchFraction
		}
		if r.Detected {
			fps++
		}
	}
	t.AddRow("wrong key (stored Q)", wrongKeys, sum/wrongKeys, maxm, fps)

	// Forged marks under the right key.
	const forged = 100
	sum, maxm, fps = 0, 0, 0
	for i := 0; i < forged; i++ {
		bad := s.cfg
		bad.Mark = wmark.Random(fmt.Sprintf("forged-%03d", i), len(s.cfg.Mark))
		r, err := core.DetectWithQueries(doc, bad, er.Records, nil)
		if err != nil {
			return nil, err
		}
		sum += r.MatchFraction
		if r.MatchFraction > maxm {
			maxm = r.MatchFraction
		}
		if r.Detected {
			fps++
		}
	}
	t.AddRow("forged mark", forged, sum/forged, maxm, fps)

	// Unmarked data, blind detection (no Q exists for it).
	const virgin = 50
	sum, maxm, fps = 0, 0, 0
	for i := 0; i < virgin; i++ {
		cfg := s.cfg
		cfg.Key = []byte(fmt.Sprintf("claimant-%03d", i))
		cfg.Mark = wmark.Random(fmt.Sprintf("claimant-mark-%03d", i), len(s.cfg.Mark))
		r, err := core.DetectBlind(s.ds.Doc, cfg)
		if err != nil {
			return nil, err
		}
		sum += r.MatchFraction
		if r.MatchFraction > maxm {
			maxm = r.MatchFraction
		}
		if r.Detected {
			fps++
		}
	}
	t.AddRow("unmarked data (blind)", virgin, sum/virgin, maxm, fps)

	t.AddNote("τ=0.85, min coverage 0.5, %d-bit mark", len(s.cfg.Mark))
	t.AddNote("expected shape: right key matches 1.0; all adversarial scenarios concentrate near 0.5 with zero false positives")
	return t, nil
}

func boolCount(b bool) int {
	if b {
		return 1
	}
	return 0
}
