package experiments

import (
	"strconv"
	"testing"
)

func TestA1ChannelComparisonShape(t *testing.T) {
	tab, err := A1ChannelComparison(small())
	if err != nil {
		t.Fatal(err)
	}
	rows := make(map[string][]string)
	for _, r := range tab.Rows {
		rows[r[0]+"/"+r[1]] = r
	}
	det := colIndex(t, tab, "detected")

	expect := map[string]string{
		"value/none":                  "yes",
		"value/reorder":               "yes",
		"value/value-alteration(0.3)": "yes",
		"value/reorganize":            "yes",
		"structure/none":              "yes",
		"structure/reorder":           "no", // the channel's defining weakness
		"structure/reorganize":        "yes",
	}
	for key, want := range expect {
		r, ok := rows[key]
		if !ok {
			t.Errorf("missing row %q", key)
			continue
		}
		if r[det] != want {
			t.Errorf("%s detected = %s, want %s (row %v)", key, r[det], want, r)
		}
	}
	// Structure under value alteration: authors get altered too, so the
	// match may degrade; just require the row exists.
	if _, ok := rows["structure/value-alteration(0.3)"]; !ok {
		t.Errorf("missing structure/value-alteration row")
	}
}

func TestA2TauSweepShape(t *testing.T) {
	tab, err := A2TauSweep(small())
	if err != nil {
		t.Fatal(err)
	}
	tp := colIndex(t, tab, "true_positive")
	fp := colIndex(t, tab, "worst_wrong_key_fp")
	// At the default tau (0.85, row index 3) the real mark is found and
	// no wrong key passes.
	found := false
	for _, r := range tab.Rows {
		if r[0] == "0.850" {
			found = true
			if r[tp] != "yes" {
				t.Errorf("tau 0.85 misses the true positive: %v", r)
			}
			if r[fp] != "no" {
				t.Errorf("tau 0.85 admits a wrong key: %v", r)
			}
		}
	}
	if !found {
		t.Fatalf("no tau=0.85 row")
	}
	// Monotonicity: once tp is "no" it stays "no" as tau rises.
	sawNo := false
	for _, r := range tab.Rows {
		if r[tp] == "no" {
			sawNo = true
		} else if sawNo {
			t.Errorf("true_positive non-monotone in tau")
		}
	}
}

func TestA3XiBitFlipShape(t *testing.T) {
	tab, err := A3XiBitFlip(small())
	if err != nil {
		t.Fatal(err)
	}
	det := colIndex(t, tab, "detected")
	usab := colIndex(t, tab, "usability")
	match := colIndex(t, tab, "match")
	byKey := make(map[string][]string)
	for _, r := range tab.Rows {
		byKey[r[0]+"/xi"+r[1]+"/b"+r[2]] = r
	}
	// Numeric-only, xi=1, flipping 1 bit erases everything.
	r1 := byKey["numeric-only/xi1/b1"]
	if r1 == nil {
		t.Fatal("missing numeric-only xi1 b1 row")
	}
	if r1[det] != "no" {
		t.Errorf("numeric-only xi=1 survived 1-bit flip: %v", r1)
	}
	if m, _ := strconv.ParseFloat(r1[match], 64); m > 0.8 {
		t.Errorf("numeric-only xi=1 b=1 match = %s, should be near chance", r1[match])
	}
	// Numeric-only, xi=4, 1-bit flip: only 1/4 of carriers corrupted →
	// majority voting holds.
	r2 := byKey["numeric-only/xi4/b1"]
	if r2 == nil || r2[det] != "yes" {
		t.Errorf("numeric-only xi=4 should survive 1-bit flip: %v", r2)
	}
	// Numeric-only, full-depth flip: erased, and usability unharmed —
	// the documented LSB limitation (the attack is free).
	r3 := byKey["numeric-only/xi4/b4"]
	if r3 == nil || r3[det] != "no" {
		t.Errorf("numeric-only xi=4 should die under 4-bit flip: %v", r3)
	}
	if u, _ := strconv.ParseFloat(r3[usab], 64); u < 0.95 {
		t.Errorf("bit-flip damaged usability (%.2f); it should be nearly free", u)
	}
	// String-channel marks are untouched by numeric flips at any depth.
	r4 := byKey["string-only/xi4/b4"]
	if r4 == nil || r4[det] != "yes" {
		t.Errorf("string-only mark should survive deep numeric flip: %v", r4)
	}
	if m, _ := strconv.ParseFloat(r4[match], 64); m != 1.0 {
		t.Errorf("string-only match = %s, want 1.0", r4[match])
	}
}

func TestAblationsRunAll(t *testing.T) {
	tabs, err := Ablations(Params{Books: 80, Trials: 2, MarkBits: 24, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(tabs) != 3 {
		t.Fatalf("tables = %d", len(tabs))
	}
	ids := []string{"A1", "A2", "A3"}
	for i, tab := range tabs {
		if tab.ID != ids[i] {
			t.Errorf("table %d = %s", i, tab.ID)
		}
	}
}

func TestS1ScalabilityShape(t *testing.T) {
	tab, err := S1Scalability(Params{Books: 100, MarkBits: 24, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) < 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	elems := colIndex(t, tab, "elements")
	// Element counts grow with the size column.
	prev := 0.0
	for i := range tab.Rows {
		e := cell(t, tab, i, elems)
		if e <= prev {
			t.Errorf("elements not increasing at row %d", i)
		}
		prev = e
	}
	// All timing cells are non-negative numbers.
	for _, col := range []string{"parse_ms", "embed_ms", "detect_ms", "blind_ms", "reorg_ms"} {
		ci := colIndex(t, tab, col)
		for i := range tab.Rows {
			if cell(t, tab, i, ci) < 0 {
				t.Errorf("negative timing in %s row %d", col, i)
			}
		}
	}
}
