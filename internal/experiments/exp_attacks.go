package experiments

import (
	"math/rand"

	"wmxml/internal/attack"
	"wmxml/internal/core"
)

// E2Alteration reproduces demonstration attack (A): random value
// alteration. Detection survives far beyond the alteration rates that
// destroy usability — the paper's claim (ii): an attack strong enough to
// kill the watermark also kills the data.
func E2Alteration(p Params) (*Table, error) {
	s, err := newSetup(p)
	if err != nil {
		return nil, err
	}
	t := NewTable("E2", "attack (A) value alteration: detection vs usability",
		"alter_fraction", "detect_rate", "mean_match", "mean_usability")
	for _, frac := range []float64{0, 0.05, 0.10, 0.20, 0.30, 0.50, 0.70, 0.90} {
		detects, matches, usab := 0, 0.0, 0.0
		for trial := 0; trial < s.p.Trials; trial++ {
			doc := s.ds.Doc.Clone()
			er, err := core.Embed(doc, s.cfg)
			if err != nil {
				return nil, err
			}
			r := rand.New(rand.NewSource(s.p.Seed + int64(trial)*1000 + int64(frac*100)))
			attacked, err := attack.ValueAlteration{Fraction: frac}.Apply(doc, r)
			if err != nil {
				return nil, err
			}
			dr, err := core.DetectWithQueries(attacked, s.cfg, er.Records, nil)
			if err != nil {
				return nil, err
			}
			if dr.Detected {
				detects++
			}
			matches += dr.MatchFraction
			usab += s.meter.Measure(attacked, nil).Usability()
		}
		n := float64(s.p.Trials)
		t.AddRow(frac, float64(detects)/n, matches/n, usab/n)
	}
	t.AddNote("γ=%d, τ=0.85, %d trials/point", s.cfg.Gamma, s.p.Trials)
	t.AddNote("expected shape: detection stays 1.0 while usability collapses; by the time detection falls, usability is already destroyed")
	return t, nil
}

// E3Reduction reproduces demonstration attack (B): keeping only a subset
// of the records. Majority voting over the surviving carriers keeps
// detection alive down to small subsets, while usability falls linearly
// with the discarded records.
func E3Reduction(p Params) (*Table, error) {
	s, err := newSetup(p)
	if err != nil {
		return nil, err
	}
	t := NewTable("E3", "attack (B) data reduction: detection vs subset size",
		"keep_fraction", "detect_rate", "mean_match", "mean_coverage", "mean_usability")
	for _, keep := range []float64{1.0, 0.8, 0.6, 0.4, 0.3, 0.2, 0.1, 0.05} {
		detects, matches, coverage, usab := 0, 0.0, 0.0, 0.0
		for trial := 0; trial < s.p.Trials; trial++ {
			doc := s.ds.Doc.Clone()
			er, err := core.Embed(doc, s.cfg)
			if err != nil {
				return nil, err
			}
			r := rand.New(rand.NewSource(s.p.Seed + int64(trial)*77 + int64(keep*100)))
			attacked, err := attack.Reduction{Scope: "db/book", KeepFraction: keep}.Apply(doc, r)
			if err != nil {
				return nil, err
			}
			dr, err := core.DetectWithQueries(attacked, s.cfg, er.Records, nil)
			if err != nil {
				return nil, err
			}
			if dr.Detected {
				detects++
			}
			matches += dr.MatchFraction
			coverage += dr.Coverage
			usab += s.meter.Measure(attacked, nil).Usability()
		}
		n := float64(s.p.Trials)
		t.AddRow(keep, float64(detects)/n, matches/n, coverage/n, usab/n)
	}
	t.AddNote("surviving carriers still match perfectly; detection fails only when coverage drops below 0.5")
	t.AddNote("expected shape: usability ≈ keep_fraction (deleted records answer nothing), match stays ≈ 1.0")
	return t, nil
}
