package experiments

import (
	"math/rand"
	"sort"

	"wmxml/internal/attack"
	"wmxml/internal/baseline"
	"wmxml/internal/core"
	"wmxml/internal/identity"
	"wmxml/internal/rewrite"
)

// E4Reorganization reproduces demonstration attack (C) and the paper's
// figures 1–2: the document is re-shredded under a new schema; WmXML
// rewrites its identity queries through the schema mapping and keeps
// detecting, while the structure-labelled baseline [5] and the
// positional-identity ablation collapse to coin-flipping.
func E4Reorganization(p Params) (*Table, error) {
	s, err := newSetup(p)
	if err != nil {
		return nil, err
	}
	t := NewTable("E4", "attack (C) re-organization (figure 1): WmXML vs baselines",
		"scheme", "attack", "match", "coverage", "detected", "usability")

	rw, err := rewrite.NewQueryRewriter(s.mapping)
	if err != nil {
		return nil, err
	}
	reorg := attack.Reorganization{Mapping: s.mapping}
	reorder := attack.Reorder{}

	// --- WmXML semantic identities, query rewriting at detection. ---
	{
		doc := s.ds.Doc.Clone()
		er, err := core.Embed(doc, s.cfg)
		if err != nil {
			return nil, err
		}
		attacked, err := reorg.Apply(doc, rand.New(rand.NewSource(s.p.Seed)))
		if err != nil {
			return nil, err
		}
		dr, err := core.DetectWithQueries(attacked, s.cfg, er.Records, rw)
		if err != nil {
			return nil, err
		}
		u := s.meter.Measure(attacked, rw)
		t.AddRow("wmxml(semantic+rewrite)", "reorganize", dr.MatchFraction, dr.Coverage, dr.Detected, u.Usability())
	}

	// --- WmXML without rewriting: original queries on the new layout. ---
	{
		doc := s.ds.Doc.Clone()
		er, err := core.Embed(doc, s.cfg)
		if err != nil {
			return nil, err
		}
		attacked, err := reorg.Apply(doc, rand.New(rand.NewSource(s.p.Seed)))
		if err != nil {
			return nil, err
		}
		dr, err := core.DetectWithQueries(attacked, s.cfg, er.Records, nil)
		if err != nil {
			return nil, err
		}
		t.AddRow("wmxml(no rewrite)", "reorganize", dr.MatchFraction, dr.Coverage, dr.Detected, "-")
	}

	// --- Positional-identity ablation: ordinals cannot be rewritten. ---
	{
		cfg := s.cfg
		cfg.Identity = identity.Options{Targets: s.ds.Targets, Mode: identity.ModePositional}
		doc := s.ds.Doc.Clone()
		er, err := core.Embed(doc, cfg)
		if err != nil {
			return nil, err
		}
		attacked, err := reorg.Apply(doc, rand.New(rand.NewSource(s.p.Seed)))
		if err != nil {
			return nil, err
		}
		dr, err := core.DetectWithQueries(attacked, cfg, er.Records, rw)
		if err != nil {
			return nil, err
		}
		t.AddRow("wmxml(positional)", "reorganize", dr.MatchFraction, dr.Coverage, dr.Detected, "-")
	}

	// --- Sion-style structure-labelled baseline. ---
	bcfg := baseline.Config{Key: s.cfg.Key, Mark: s.cfg.Mark, Gamma: 4, Xi: s.cfg.Xi}
	{
		doc := s.ds.Doc.Clone()
		if _, err := baseline.Embed(doc, bcfg); err != nil {
			return nil, err
		}
		attacked, err := reorg.Apply(doc, rand.New(rand.NewSource(s.p.Seed)))
		if err != nil {
			return nil, err
		}
		br, err := baseline.Detect(attacked, bcfg)
		if err != nil {
			return nil, err
		}
		t.AddRow("baseline(structure-label)", "reorganize", br.Detection.MatchFraction, br.Detection.Coverage, br.Detection.Detected, "-")
	}

	// --- Re-ordering only (weaker structural attack): WmXML unaffected,
	// baseline still dies. ---
	{
		doc := s.ds.Doc.Clone()
		er, err := core.Embed(doc, s.cfg)
		if err != nil {
			return nil, err
		}
		attacked, err := reorder.Apply(doc, rand.New(rand.NewSource(s.p.Seed+1)))
		if err != nil {
			return nil, err
		}
		dr, err := core.DetectWithQueries(attacked, s.cfg, er.Records, nil)
		if err != nil {
			return nil, err
		}
		u := s.meter.Measure(attacked, nil)
		t.AddRow("wmxml(semantic)", "reorder", dr.MatchFraction, dr.Coverage, dr.Detected, u.Usability())
	}
	{
		doc := s.ds.Doc.Clone()
		if _, err := baseline.Embed(doc, bcfg); err != nil {
			return nil, err
		}
		attacked, err := reorder.Apply(doc, rand.New(rand.NewSource(s.p.Seed+1)))
		if err != nil {
			return nil, err
		}
		br, err := baseline.Detect(attacked, bcfg)
		if err != nil {
			return nil, err
		}
		t.AddRow("baseline(structure-label)", "reorder", br.Detection.MatchFraction, br.Detection.Coverage, br.Detection.Detected, "-")
	}

	t.AddNote("expected shape: wmxml+rewrite ≈ 1.0 match & usability 1.0; baselines ≈ 0.5 match (chance), not detected")
	return t, nil
}

// E6RewriteFidelity reproduces §2.2/figure 2 directly: every identity
// query, rewritten under the figure-1 mapping, must retrieve the same
// values from the re-organized document as the original query retrieved
// from the original document.
func E6RewriteFidelity(p Params) (*Table, error) {
	s, err := newSetup(p)
	if err != nil {
		return nil, err
	}
	builder := identity.NewBuilder(s.ds.Schema, s.ds.Catalog, identity.Options{Targets: s.ds.Targets})
	units, _, err := builder.Units(s.ds.Doc)
	if err != nil {
		return nil, err
	}
	reorgDoc, err := rewrite.Transform(s.ds.Doc, s.mapping)
	if err != nil {
		return nil, err
	}
	rw, err := rewrite.NewQueryRewriter(s.mapping)
	if err != nil {
		return nil, err
	}
	t := NewTable("E6", "identity-query rewriting fidelity (figure 2)",
		"target", "queries", "rewritten", "value_preserving", "fidelity")
	perField := make(map[string][3]int) // queries, rewritten, preserved
	var fields []string
	for _, u := range units {
		key := u.Scope + "/" + u.Field
		c := perField[key]
		if c[0] == 0 {
			fields = append(fields, key)
		}
		c[0]++
		rq, err := rw.RewriteQuery(u.Query)
		if err == nil {
			c[1]++
			want := valueSet(u.Query.SelectValues(s.ds.Doc))
			got := valueSet(rq.SelectValues(reorgDoc))
			if equalSets(want, got) {
				c[2]++
			}
		}
		perField[key] = c
	}
	sort.Strings(fields)
	for _, f := range fields {
		c := perField[f]
		t.AddRow(f, c[0], c[1], c[2], float64(c[2])/float64(c[0]))
	}
	t.AddNote("expected shape: fidelity 1.0 for every mapped target")
	return t, nil
}

// valueSet de-duplicates and sorts values; re-organization legitimately
// collapses FD duplicates, so fidelity compares information content.
func valueSet(vals []string) []string {
	set := make(map[string]bool, len(vals))
	for _, v := range vals {
		set[v] = true
	}
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

func equalSets(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// F1InfoPreservation reproduces figure 1's premise: db1.xml can be
// re-organized into db2.xml "without losing any information". The record
// bag survives the round trip and usability through the rewriter is
// perfect.
func F1InfoPreservation(p Params) (*Table, error) {
	s, err := newSetup(p)
	if err != nil {
		return nil, err
	}
	t := NewTable("F1", "re-organization preserves information (figure 1)",
		"check", "result")
	recs1, err := rewrite.Extract(s.ds.Doc, s.mapping.Source)
	if err != nil {
		return nil, err
	}
	db2, err := rewrite.Transform(s.ds.Doc, s.mapping)
	if err != nil {
		return nil, err
	}
	back, err := rewrite.Transform(db2, s.mapping.Invert())
	if err != nil {
		return nil, err
	}
	recs2, err := rewrite.Extract(back, s.mapping.Source)
	if err != nil {
		return nil, err
	}
	t.AddRow("record bag identical after db1→db2→db1", rewrite.RecordsEqual(recs1, recs2))

	rw, err := rewrite.NewQueryRewriter(s.mapping)
	if err != nil {
		return nil, err
	}
	u := s.meter.Measure(db2, rw)
	t.AddRow("usability of db2 through rewritten templates", u.Usability())
	uRaw := s.meter.Measure(db2, nil)
	t.AddRow("usability of db2 with UN-rewritten templates", uRaw.Usability())
	t.AddNote("records: %d; probes: %d", len(recs1), u.Probes)
	return t, nil
}
