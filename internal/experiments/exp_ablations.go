package experiments

import (
	"fmt"
	"math/rand"

	"wmxml/internal/attack"
	"wmxml/internal/core"
	"wmxml/internal/rewrite"
	"wmxml/internal/structwm"
	"wmxml/internal/xmltree"
)

// A1ChannelComparison compares the two watermark channels the paper's
// §2.2 names — data elements (values) and structure units (sibling
// order) — under the attack classes. It motivates WmXML's default:
// value embedding is the robust general-purpose channel; the structural
// channel is free extra bandwidth that an order-shuffling attacker
// erases at no cost.
func A1ChannelComparison(p Params) (*Table, error) {
	s, err := newSetup(p)
	if err != nil {
		return nil, err
	}
	t := NewTable("A1", "ablation: value channel vs structure-unit channel",
		"channel", "attack", "match", "detected")

	structCfg := structwm.Config{
		Key:     s.cfg.Key,
		Mark:    s.cfg.Mark,
		Scope:   "db/book",
		KeyPath: "title",
		Child:   "author",
	}
	reorgScope := "db/publisher/editor/book"

	type attackCase struct {
		name  string
		apply func(doc *xmltree.Node) (*xmltree.Node, error)
		reorg bool
	}
	r := func(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
	cases := []attackCase{
		{"none", func(d *xmltree.Node) (*xmltree.Node, error) { return d, nil }, false},
		{"reorder", func(d *xmltree.Node) (*xmltree.Node, error) {
			return attack.Reorder{}.Apply(d, r(p.Seed+1))
		}, false},
		{"value-alteration(0.3)", func(d *xmltree.Node) (*xmltree.Node, error) {
			return attack.ValueAlteration{Fraction: 0.3}.Apply(d, r(p.Seed+2))
		}, false},
		{"reorganize", func(d *xmltree.Node) (*xmltree.Node, error) {
			return attack.Reorganization{Mapping: s.mapping}.Apply(d, r(p.Seed+3))
		}, true},
	}

	rw, err := rewrite.NewQueryRewriter(s.mapping)
	if err != nil {
		return nil, err
	}
	for _, c := range cases {
		// Value channel.
		doc := s.ds.Doc.Clone()
		er, err := core.Embed(doc, s.cfg)
		if err != nil {
			return nil, err
		}
		attacked, err := c.apply(doc)
		if err != nil {
			return nil, err
		}
		var coreRW core.Rewriter
		if c.reorg {
			coreRW = rw
		}
		dr, err := core.DetectWithQueries(attacked, s.cfg, er.Records, coreRW)
		if err != nil {
			return nil, err
		}
		t.AddRow("value", c.name, dr.MatchFraction, dr.Detected)

		// Structure channel.
		doc2 := s.ds.Doc.Clone()
		if _, err := structwm.Embed(doc2, structCfg); err != nil {
			return nil, err
		}
		attacked2, err := c.apply(doc2)
		if err != nil {
			return nil, err
		}
		dcfg := structCfg
		if c.reorg {
			dcfg.Scope = reorgScope
		}
		sr, err := structwm.Detect(attacked2, dcfg)
		if err != nil {
			return nil, err
		}
		t.AddRow("structure", c.name, sr.Detection.MatchFraction, sr.Detection.Detected)
	}
	t.AddNote("structure channel: bit = relative order of each book's extreme author values, identity = record key")
	t.AddNote("expected shape: value channel survives everything (with rewriting for reorganize); structure channel survives value noise and order-preserving reorganization but is erased for free by reorder — why WmXML defaults to value embedding")
	return t, nil
}

// A2TauSweep studies the detection threshold τ (design decision 3): the
// gap between the true-positive match under a strong-but-survivable
// attack and the worst wrong-key match determines the safe τ band.
func A2TauSweep(p Params) (*Table, error) {
	s, err := newSetup(p)
	if err != nil {
		return nil, err
	}
	// Fixture: marked document under 30% alteration.
	doc := s.ds.Doc.Clone()
	er, err := core.Embed(doc, s.cfg)
	if err != nil {
		return nil, err
	}
	attacked, err := attack.ValueAlteration{Fraction: 0.3}.Apply(doc, rand.New(rand.NewSource(p.Seed)))
	if err != nil {
		return nil, err
	}
	tp, err := core.DetectWithQueries(attacked, s.cfg, er.Records, nil)
	if err != nil {
		return nil, err
	}
	// Worst wrong-key match across many keys.
	worst := 0.0
	const wrongKeys = 60
	for i := 0; i < wrongKeys; i++ {
		bad := s.cfg
		bad.Key = []byte(fmt.Sprintf("tau-wrong-%03d", i))
		r, err := core.DetectWithQueries(attacked, bad, er.Records, nil)
		if err != nil {
			return nil, err
		}
		if r.MatchFraction > worst {
			worst = r.MatchFraction
		}
	}

	t := NewTable("A2", "ablation: detection threshold τ",
		"tau", "true_positive", "worst_wrong_key_fp")
	for _, tau := range []float64{0.55, 0.65, 0.75, 0.85, 0.95} {
		t.AddRow(tau, tp.MatchFraction >= tau, worst >= tau)
	}
	t.AddNote("fixture: 30%% value alteration; true-positive match %.3f; worst wrong-key match over %d keys: %.3f",
		tp.MatchFraction, wrongKeys, worst)
	t.AddNote("expected shape: a wide τ band (roughly [worst+margin, tp]) detects the real mark and rejects every forgery; the default 0.85 sits inside it")
	return t, nil
}

// A3XiBitFlip studies the embedding depth ξ against the targeted
// numeric bit-flipping adversary (Agrawal–Kiernan's attack): flipping b
// low bits erases the fraction b/ξ of numeric carriers at a perturbation
// cost of at most 2^b. The honest conclusion — and the reason the
// plug-in architecture matters — is that a numeric-only watermark dies
// to a full-depth flip that stays inside any tolerant usability budget,
// while a mark that also spans non-numeric channels survives it.
func A3XiBitFlip(p Params) (*Table, error) {
	s, err := newSetup(p)
	if err != nil {
		return nil, err
	}
	t := NewTable("A3", "ablation: embedding depth ξ vs numeric bit-flipping",
		"targets", "xi", "flip_bits", "match", "detected", "usability")

	type variant struct {
		name    string
		targets []string
	}
	variants := []variant{
		{"numeric-only", []string{"db/book/year", "db/book/price"}},
		{"string-only", []string{"db/book/@publisher", "db/book/editor"}},
	}
	for _, v := range variants {
		for _, xi := range []int{1, 4} {
			for _, flip := range []int{1, 2, 4} {
				cfg := s.cfg
				cfg.Xi = xi
				cfg.Gamma = 1 // the ablation compares channels, not selection
				cfg.Identity.Targets = v.targets
				doc := s.ds.Doc.Clone()
				er, err := core.Embed(doc, cfg)
				if err != nil {
					return nil, err
				}
				attacked, err := attack.NumericBitFlip{Bits: flip}.Apply(doc, rand.New(rand.NewSource(p.Seed+int64(xi*10+flip))))
				if err != nil {
					return nil, err
				}
				dr, err := core.DetectWithQueries(attacked, cfg, er.Records, nil)
				if err != nil {
					return nil, err
				}
				u := s.meter.Measure(attacked, nil)
				t.AddRow(v.name, xi, flip, dr.MatchFraction, dr.Detected, u.Usability())
			}
		}
	}
	t.AddNote("flip_bits >= xi erases every numeric carrier; at flip_bits=4 the perturbation (<=15) is inside the 2%% usability tolerance — a free attack on the numeric channel")
	t.AddNote("expected shape: numeric-only marks survive flips shallower than xi (majority voting) and die at flip_bits >= xi with usability ≈ 1.0 — the known LSB limitation; string-channel marks are untouched at any depth: deployments should diversify channels")
	return t, nil
}

// Ablations runs A1–A3.
func Ablations(p Params) ([]*Table, error) {
	runs := []func(Params) (*Table, error){A1ChannelComparison, A2TauSweep, A3XiBitFlip}
	var out []*Table
	for _, run := range runs {
		t, err := run(p)
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	return out, nil
}
