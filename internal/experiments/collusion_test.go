package experiments

import "testing"

// TestCollusionTracingAccuracy is the PR's acceptance criterion: with
// 20 registered recipients and default parameters, a 3-colluder mix
// attack traces to a true colluder ranked first with zero false
// accusations in every trial, and single leaks identify the exact
// recipient.
func TestCollusionTracingAccuracy(t *testing.T) {
	if testing.Short() {
		t.Skip("collusion sweep is seconds-long; skipped under -short")
	}
	pts, err := collusionSweep(Params{})
	if err != nil {
		t.Fatal(err)
	}
	byLabel := map[string]collusionPoint{}
	for _, cp := range pts {
		byLabel[cp.Attack+"/"+itoa(cp.Colluders)] = cp
	}

	single, ok := byLabel["single-leak/1"]
	if !ok {
		t.Fatal("no single-leak point")
	}
	if single.ExactSingle != single.Trials {
		t.Errorf("single leaker identified exactly in %d/%d trials", single.ExactSingle, single.Trials)
	}

	mix3, ok := byLabel["mix/3"]
	if !ok {
		t.Fatal("no mix/3 point")
	}
	if mix3.TracedFirst != mix3.Trials {
		t.Errorf("3-colluder mix: top rank is a true colluder in %d/%d trials", mix3.TracedFirst, mix3.Trials)
	}
	if mix3.TrueAccused != mix3.Trials {
		t.Errorf("3-colluder mix: a true colluder accused in only %d/%d trials", mix3.TrueAccused, mix3.Trials)
	}

	// Innocents stay clear across EVERY sweep point, not just mix/3.
	for _, cp := range pts {
		if cp.FalseAccusations != 0 {
			t.Errorf("%s/k=%d: %d false accusations of innocent recipients", cp.Attack, cp.Colluders, cp.FalseAccusations)
		}
	}
}

func itoa(n int) string {
	if n < 10 {
		return string(rune('0' + n))
	}
	return "10+"
}
