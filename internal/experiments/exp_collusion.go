package experiments

import (
	"fmt"
	"math/rand"

	"wmxml/internal/attack"
	"wmxml/internal/datagen"
	"wmxml/internal/fingerprint"
	"wmxml/internal/xmltree"
)

// collusionRecipients is the registered distribution size every sweep
// point traces against: colluders + innocents.
const collusionRecipients = 20

// collusionPoint aggregates one (attack, coalition size) sweep point
// over all trials. The experiments test asserts directly on these, so
// the table and the acceptance criteria cannot drift apart.
type collusionPoint struct {
	Attack    string
	Colluders int
	Trials    int
	// TracedFirst counts trials whose top-ranked candidate is a true
	// colluder.
	TracedFirst int
	// TrueAccused counts trials where at least one true colluder
	// cleared the accusation threshold.
	TrueAccused int
	// FalseAccusations totals innocent recipients accused, across all
	// trials (the quantity that must stay zero).
	FalseAccusations int
	// ExactSingle counts trials where the accusation set is exactly
	// {the leaker} — only meaningful for Colluders == 1.
	ExactSingle int
	// MeanColluderZ / MaxInnocentZ summarize score separation.
	MeanColluderZ float64
	MaxInnocentZ  float64
}

// collusionSweep fingerprints one copy per recipient, then for each
// sweep point composes pirate copies from random coalitions and traces
// them against the full recipient list.
func collusionSweep(p Params) ([]collusionPoint, error) {
	p = p.withDefaults()
	ds := datagen.Publications(datagen.PubConfig{
		Books:      p.Books,
		Editors:    max(6, p.Books/12),
		Publishers: max(3, p.Books/80),
		Seed:       p.Seed,
	})
	fp, err := fingerprint.New(fingerprint.Options{
		Key:     []byte("wmxml-fingerprint-key"),
		Schema:  ds.Schema,
		Catalog: ds.Catalog,
		Targets: ds.Targets,
		// Full-density marking: distribution copies are generated, not
		// published originals, so there is no reason to leave carriers
		// unused — and tracing accuracy grows with votes per code bit.
		Gamma: 1,
	})
	if err != nil {
		return nil, err
	}
	recipients := make([]string, collusionRecipients)
	copies := make([]*xmltree.Node, collusionRecipients)
	for i := range recipients {
		recipients[i] = fmt.Sprintf("recipient-%02d", i)
		copies[i] = ds.Doc.Clone()
		if _, err := fp.Embed(copies[i], recipients[i]); err != nil {
			return nil, err
		}
	}

	points := []struct {
		strategy attack.CollusionStrategy
		k        int
	}{
		{"", 1}, // single leaker, no collusion
		{attack.CollusionMix, 2},
		{attack.CollusionMix, 3},
		{attack.CollusionMix, 5},
		{attack.CollusionSegments, 3},
		{attack.CollusionMajority, 3},
	}
	var out []collusionPoint
	for _, pt := range points {
		cp := collusionPoint{Attack: attackLabel(pt.strategy, pt.k), Colluders: pt.k, Trials: p.Trials}
		colluderZ, colluderZn := 0.0, 0
		for trial := 0; trial < p.Trials; trial++ {
			r := rand.New(rand.NewSource(p.Seed + int64(trial)*131 + int64(pt.k)*17))
			coalition := r.Perm(collusionRecipients)[:pt.k]
			isColluder := make(map[string]bool, pt.k)
			for _, c := range coalition {
				isColluder[recipients[c]] = true
			}
			pirate := copies[coalition[0]].Clone()
			if pt.k > 1 {
				others := make([]*xmltree.Node, 0, pt.k-1)
				for _, c := range coalition[1:] {
					others = append(others, copies[c])
				}
				atk := attack.Collusion{Copies: others, Scope: "db/book", Strategy: pt.strategy}
				if pirate, err = atk.Apply(pirate, r); err != nil {
					return nil, err
				}
			}
			res, err := fp.Trace(pirate, recipients, fingerprint.TraceOptions{})
			if err != nil {
				return nil, err
			}
			if isColluder[res.Accusations[0].Recipient] {
				cp.TracedFirst++
			}
			trueAccused := 0
			for _, id := range res.Accused {
				if isColluder[id] {
					trueAccused++
				} else {
					cp.FalseAccusations++
				}
			}
			if trueAccused > 0 {
				cp.TrueAccused++
			}
			if pt.k == 1 && trueAccused == 1 && len(res.Accused) == 1 {
				cp.ExactSingle++
			}
			for _, a := range res.Accusations {
				if isColluder[a.Recipient] {
					colluderZ += a.Z
					colluderZn++
				} else if a.Z > cp.MaxInnocentZ {
					cp.MaxInnocentZ = a.Z
				}
			}
		}
		if colluderZn > 0 {
			cp.MeanColluderZ = colluderZ / float64(colluderZn)
		}
		out = append(out, cp)
	}
	return out, nil
}

func attackLabel(st attack.CollusionStrategy, k int) string {
	if k == 1 {
		return "single-leak"
	}
	return string(st)
}

// C1Collusion measures traitor tracing under collusion: how reliably a
// coalition's pirate copy traces back to a true colluder, and that
// innocent recipients are never accused, as the coalition grows and
// changes composition strategy.
func C1Collusion(p Params) (*Table, error) {
	pts, err := collusionSweep(p)
	if err != nil {
		return nil, err
	}
	p = p.withDefaults()
	t := NewTable("C1", "collusion attacks vs traitor tracing (20 recipients)",
		"attack", "colluders", "traced_first", "true_accused", "false_accusations", "mean_colluder_z", "max_innocent_z")
	for _, cp := range pts {
		n := float64(cp.Trials)
		t.AddRow(cp.Attack, cp.Colluders, float64(cp.TracedFirst)/n, float64(cp.TrueAccused)/n,
			cp.FalseAccusations, cp.MeanColluderZ, cp.MaxInnocentZ)
	}
	t.AddNote("γ=1 (full-density fingerprinting), codebook %d segments × %d bits, ×%d replicas; accusation threshold p ≤ %.0e/20 (Bonferroni), %d trials/point",
		fingerprint.DefaultSegments, fingerprint.DefaultSegmentBits, fingerprint.DefaultReplicas, fingerprint.DefaultAlpha, p.Trials)
	t.AddNote("traced_first: the top-ranked candidate is a true colluder; false_accusations counts accused innocents (must be 0)")
	t.AddNote("expected shape: single leaks trace exactly; mix/segments/majority coalitions dilute the match toward 0.5+1/(2k) but stay separable from innocents' z≈0")
	return t, nil
}
