package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// small returns fast parameters for CI-scale test runs.
func small() Params {
	return Params{Books: 150, Trials: 3, MarkBits: 24, Seed: 99}
}

// cell parses a table cell as float.
func cell(t *testing.T, tab *Table, row, col int) float64 {
	t.Helper()
	if row >= len(tab.Rows) || col >= len(tab.Rows[row]) {
		t.Fatalf("table %s has no cell (%d,%d)", tab.ID, row, col)
	}
	v, err := strconv.ParseFloat(tab.Rows[row][col], 64)
	if err != nil {
		t.Fatalf("cell (%d,%d) = %q not numeric", row, col, tab.Rows[row][col])
	}
	return v
}

func colIndex(t *testing.T, tab *Table, name string) int {
	t.Helper()
	for i, c := range tab.Columns {
		if c == name {
			return i
		}
	}
	t.Fatalf("table %s has no column %q", tab.ID, name)
	return -1
}

func TestE1CapacityShape(t *testing.T) {
	tab, err := E1Capacity(small())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 6 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	carriers := colIndex(t, tab, "carriers")
	usab := colIndex(t, tab, "usability")
	// Carriers decrease as gamma grows.
	for i := 1; i < len(tab.Rows); i++ {
		if cell(t, tab, i, carriers) > cell(t, tab, i-1, carriers) {
			t.Errorf("carriers increased from gamma row %d to %d", i-1, i)
		}
	}
	// Usability never seriously degraded (paper's demonstration claim).
	for i := range tab.Rows {
		if u := cell(t, tab, i, usab); u < 0.97 {
			t.Errorf("row %d usability = %.3f, embedding should be imperceptible", i, u)
		}
	}
}

func TestE2AlterationShape(t *testing.T) {
	tab, err := E2Alteration(small())
	if err != nil {
		t.Fatal(err)
	}
	det := colIndex(t, tab, "detect_rate")
	usab := colIndex(t, tab, "mean_usability")
	// No alteration: perfect detection and usability.
	if cell(t, tab, 0, det) != 1.0 {
		t.Errorf("zero-alteration detect rate = %.2f", cell(t, tab, 0, det))
	}
	if cell(t, tab, 0, usab) < 0.97 {
		t.Errorf("zero-alteration usability = %.2f", cell(t, tab, 0, usab))
	}
	// Moderate alteration (20%): watermark alive, usability already hurt.
	midDet := cell(t, tab, 3, det)
	midU := cell(t, tab, 3, usab)
	if midDet < 0.9 {
		t.Errorf("20%% alteration killed detection: %.2f", midDet)
	}
	if midU > 0.9 {
		t.Errorf("20%% alteration left usability at %.2f, expected visible damage", midU)
	}
	// Severe alteration: usability destroyed.
	last := len(tab.Rows) - 1
	if u := cell(t, tab, last, usab); u > 0.3 {
		t.Errorf("90%% alteration usability = %.2f", u)
	}
}

func TestE3ReductionShape(t *testing.T) {
	tab, err := E3Reduction(small())
	if err != nil {
		t.Fatal(err)
	}
	det := colIndex(t, tab, "detect_rate")
	match := colIndex(t, tab, "mean_match")
	usab := colIndex(t, tab, "mean_usability")
	if cell(t, tab, 0, det) != 1.0 {
		t.Errorf("full document detect rate = %.2f", cell(t, tab, 0, det))
	}
	// Surviving carriers always match: mean match stays high everywhere.
	for i := range tab.Rows {
		if m := cell(t, tab, i, match); m < 0.95 {
			t.Errorf("row %d mean match = %.2f, survivors should be clean", i, m)
		}
	}
	// Usability tracks the kept fraction (within slack).
	for i, keep := range []float64{1.0, 0.8, 0.6, 0.4} {
		if u := cell(t, tab, i, usab); u < keep-0.25 || u > keep+0.15 {
			t.Errorf("keep=%.1f usability = %.2f, should track subset size", keep, u)
		}
	}
}

func TestE4ReorganizationShape(t *testing.T) {
	tab, err := E4Reorganization(small())
	if err != nil {
		t.Fatal(err)
	}
	byScheme := make(map[string][]string)
	for _, row := range tab.Rows {
		byScheme[row[0]+"/"+row[1]] = row
	}
	match := colIndex(t, tab, "match")
	detected := colIndex(t, tab, "detected")

	full := byScheme["wmxml(semantic+rewrite)/reorganize"]
	if full == nil {
		t.Fatal("missing wmxml+rewrite row")
	}
	if full[detected] != "yes" {
		t.Errorf("wmxml+rewrite not detected after reorganization: %v", full)
	}
	if m, _ := strconv.ParseFloat(full[match], 64); m < 0.99 {
		t.Errorf("wmxml+rewrite match = %s", full[match])
	}
	base := byScheme["baseline(structure-label)/reorganize"]
	if base == nil {
		t.Fatal("missing baseline row")
	}
	if base[detected] != "no" {
		t.Errorf("baseline survived reorganization: %v", base)
	}
	pos := byScheme["wmxml(positional)/reorganize"]
	if pos == nil || pos[detected] != "no" {
		t.Errorf("positional ablation should fail after reorganization: %v", pos)
	}
	reorderBase := byScheme["baseline(structure-label)/reorder"]
	if reorderBase == nil || reorderBase[detected] != "no" {
		t.Errorf("baseline should fail under reorder: %v", reorderBase)
	}
	reorderWm := byScheme["wmxml(semantic)/reorder"]
	if reorderWm == nil || reorderWm[detected] != "yes" {
		t.Errorf("wmxml should survive reorder: %v", reorderWm)
	}
}

func TestE5RedundancyShape(t *testing.T) {
	tab, err := E5RedundancyRemoval(small())
	if err != nil {
		t.Fatal(err)
	}
	after := colIndex(t, tab, "match_after")
	detectedAfter := colIndex(t, tab, "detected_after")
	usabAfter := colIndex(t, tab, "usability_after")
	rows := map[string][]string{}
	for _, r := range tab.Rows {
		rows[r[0]] = r
	}
	fd := rows["wmxml(fd-aware)"]
	if fd == nil || fd[detectedAfter] != "yes" {
		t.Errorf("fd-aware did not survive redundancy removal: %v", fd)
	}
	if m, _ := strconv.ParseFloat(fd[after], 64); m < 0.99 {
		t.Errorf("fd-aware match after attack = %s", fd[after])
	}
	noFD := rows["wmxml(fd-disabled)"]
	if noFD == nil {
		t.Fatal("missing fd-disabled row")
	}
	if m, _ := strconv.ParseFloat(noFD[after], 64); m > 0.95 {
		t.Errorf("fd-disabled unharmed by redundancy removal: %s", noFD[after])
	}
	// The attack must be free for WmXML: usability stays high. The
	// baseline damages usability by itself (it marks key values), so it
	// only gets a loose bound.
	for name, r := range rows {
		u, _ := strconv.ParseFloat(r[usabAfter], 64)
		if name == "baseline(structure-label)" {
			if u < 0.5 {
				t.Errorf("%s: usability %.2f implausibly low", name, u)
			}
			continue
		}
		if u < 0.95 {
			t.Errorf("%s: redundancy removal damaged usability (%.2f), it should be free", name, u)
		}
	}
}

func TestE6RewriteFidelityShape(t *testing.T) {
	tab, err := E6RewriteFidelity(small())
	if err != nil {
		t.Fatal(err)
	}
	fid := colIndex(t, tab, "fidelity")
	if len(tab.Rows) == 0 {
		t.Fatal("no fidelity rows")
	}
	for _, row := range tab.Rows {
		f, _ := strconv.ParseFloat(row[fid], 64)
		if f < 1.0 {
			t.Errorf("target %s fidelity = %s, want 1.0", row[0], row[fid])
		}
	}
}

func TestE7FrontierShape(t *testing.T) {
	tab, err := E7Frontier(small())
	if err != nil {
		t.Fatal(err)
	}
	viol := colIndex(t, tab, "wm_dead_data_alive")
	for _, row := range tab.Rows {
		if row[viol] == "yes" {
			t.Errorf("frontier violation at attack %s: watermark dead, usability alive", row[0])
		}
	}
}

func TestE8FalsePositiveShape(t *testing.T) {
	// E8 needs a realistic mark length: with very short marks a random
	// forged mark can collide by chance, which is a property of short
	// marks, not a bug.
	p := small()
	p.MarkBits = 48
	tab, err := E8FalsePositive(p)
	if err != nil {
		t.Fatal(err)
	}
	fp := colIndex(t, tab, "false_positives")
	mean := colIndex(t, tab, "mean_match")
	for i, row := range tab.Rows {
		if row[fp] != "0" {
			t.Errorf("row %q has %s false positives", row[0], row[fp])
		}
		if i == 0 {
			if m := cell(t, tab, 0, mean); m != 1.0 {
				t.Errorf("right key match = %.3f", m)
			}
			continue
		}
		m := cell(t, tab, i, mean)
		if m < 0.3 || m > 0.7 {
			t.Errorf("adversarial scenario %q mean match = %.3f, want near 0.5", row[0], m)
		}
	}
}

func TestF1InfoPreservationShape(t *testing.T) {
	tab, err := F1InfoPreservation(small())
	if err != nil {
		t.Fatal(err)
	}
	if tab.Rows[0][1] != "yes" {
		t.Errorf("record bag not preserved: %v", tab.Rows[0])
	}
	if u, _ := strconv.ParseFloat(tab.Rows[1][1], 64); u != 1.0 {
		t.Errorf("rewritten usability = %v", tab.Rows[1])
	}
	if u, _ := strconv.ParseFloat(tab.Rows[2][1], 64); u > 0.1 {
		t.Errorf("un-rewritten usability = %v, expected near 0", tab.Rows[2])
	}
}

func TestAllRunsEveryExperiment(t *testing.T) {
	tabs, err := All(Params{Books: 80, Trials: 2, MarkBits: 32, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(tabs) != 10 {
		t.Fatalf("tables = %d, want 10", len(tabs))
	}
	ids := []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "F1", "C1"}
	for i, tab := range tabs {
		if tab.ID != ids[i] {
			t.Errorf("table %d = %s, want %s", i, tab.ID, ids[i])
		}
		var sb strings.Builder
		tab.Render(&sb)
		if !strings.Contains(sb.String(), tab.ID) {
			t.Errorf("render of %s missing ID", tab.ID)
		}
		if md := tab.Markdown(); !strings.Contains(md, "|") {
			t.Errorf("markdown of %s malformed", tab.ID)
		}
	}
}

func TestTableHelpers(t *testing.T) {
	tab := NewTable("X", "test", "a", "b")
	tab.AddRow(1, 0.5)
	tab.AddRow("s", true)
	tab.AddNote("n=%d", 3)
	if tab.Rows[0][1] != "0.500" {
		t.Errorf("float formatting = %q", tab.Rows[0][1])
	}
	if tab.Rows[1][1] != "yes" {
		t.Errorf("bool formatting = %q", tab.Rows[1][1])
	}
	var sb strings.Builder
	tab.Render(&sb)
	out := sb.String()
	if !strings.Contains(out, "note: n=3") {
		t.Errorf("notes missing: %q", out)
	}
}
