// Package experiments regenerates every table of EXPERIMENTS.md — one
// experiment per demonstrated claim of the paper (see DESIGN.md §4 for
// the experiment ↔ paper-section index). cmd/wmbench prints the tables;
// bench_test.go wraps each experiment in a testing.B benchmark.
package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Table is one experiment's output: a titled grid of rows.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// NewTable creates a table with the given identity and columns.
func NewTable(id, title string, columns ...string) *Table {
	return &Table{ID: id, Title: title, Columns: columns}
}

// AddRow appends a row, formatting each value: floats as %.3f, everything
// else via %v.
func (t *Table) AddRow(vals ...any) {
	row := make([]string, len(vals))
	for i, v := range vals {
		switch x := v.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", x)
		case bool:
			if x {
				row[i] = "yes"
			} else {
				row[i] = "no"
			}
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// AddNote appends a free-text note rendered under the table.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "%s — %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = pad(c, widths[i])
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintf(w, "  %s\n", strings.Join(parts, "  "))
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// Markdown renders the table as GitHub-flavoured markdown.
func (t *Table) Markdown() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "### %s — %s\n\n", t.ID, t.Title)
	sb.WriteString("| " + strings.Join(t.Columns, " | ") + " |\n")
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = "---"
	}
	sb.WriteString("| " + strings.Join(sep, " | ") + " |\n")
	for _, row := range t.Rows {
		sb.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "\n*%s*\n", n)
	}
	return sb.String()
}

func pad(s string, n int) string {
	if len(s) >= n {
		return s
	}
	return s + strings.Repeat(" ", n-len(s))
}
