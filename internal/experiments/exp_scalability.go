package experiments

import (
	"time"

	"wmxml/internal/core"
	"wmxml/internal/datagen"
	"wmxml/internal/identity"
	"wmxml/internal/rewrite"
	"wmxml/internal/wmark"
	"wmxml/internal/xmltree"
)

// S1Scalability measures the system's throughput as the document grows:
// parse, bandwidth enumeration + embedding, query-set detection, blind
// detection and re-organization, in records/second. The demo paper
// reports no performance numbers; this table establishes that the Go
// implementation handles databases of tens of thousands of records on
// one core, so the robustness experiments are not hiding an unusable
// constant factor.
func S1Scalability(p Params) (*Table, error) {
	p = p.withDefaults()
	t := NewTable("S1", "scalability: wall time vs document size",
		"books", "elements", "parse_ms", "embed_ms", "detect_ms", "blind_ms", "reorg_ms", "embed_records_per_s")
	sizes := []int{100, 500, 2000}
	if p.Books >= 400 {
		sizes = append(sizes, 8000)
	}
	if p.Books > 8000 {
		sizes = append(sizes, p.Books)
	}
	for _, n := range sizes {
		ds := datagen.Publications(datagen.PubConfig{
			Books: n, Editors: max(6, n/12), Publishers: max(3, n/80), Seed: p.Seed,
		})
		cfg := core.Config{
			Key:      []byte("scale-key"),
			Mark:     wmark.Random("scale-mark", p.MarkBits),
			Gamma:    4,
			Schema:   ds.Schema,
			Catalog:  ds.Catalog,
			Identity: identity.Options{Targets: ds.Targets},
		}
		xml := xmltree.SerializeIndentString(ds.Doc)

		start := time.Now()
		doc, err := xmltree.ParseString(xml)
		if err != nil {
			return nil, err
		}
		parseMS := msSince(start)

		start = time.Now()
		er, err := core.Embed(doc, cfg)
		if err != nil {
			return nil, err
		}
		embedMS := msSince(start)

		start = time.Now()
		dr, err := core.DetectWithQueries(doc, cfg, er.Records, nil)
		if err != nil {
			return nil, err
		}
		detectMS := msSince(start)
		if !dr.Detected {
			t.AddNote("WARNING: size %d did not detect (coverage %.2f)", n, dr.Coverage)
		}

		start = time.Now()
		if _, err := core.DetectBlind(doc, cfg); err != nil {
			return nil, err
		}
		blindMS := msSince(start)

		start = time.Now()
		if _, err := rewrite.Transform(doc, rewrite.PublicationsMapping()); err != nil {
			return nil, err
		}
		reorgMS := msSince(start)

		stats := xmltree.CollectStats(doc)
		recPerS := 0.0
		if embedMS > 0 {
			recPerS = float64(n) / (embedMS / 1000)
		}
		t.AddRow(n, stats.Elements, parseMS, embedMS, detectMS, blindMS, reorgMS, int(recPerS))
	}
	t.AddNote("single-threaded, stdlib only; detect runs one key-predicated query per carrier (quadratic-ish in document size), blind detection enumerates once (linear)")
	return t, nil
}

func msSince(start time.Time) float64 {
	return float64(time.Since(start).Microseconds()) / 1000
}
