package experiments

import (
	"math/rand"

	"wmxml/internal/attack"
	"wmxml/internal/baseline"
	"wmxml/internal/core"
	"wmxml/internal/identity"
)

// E5RedundancyRemoval reproduces demonstration attack (D) and challenge
// (C): the adversary identifies FD-induced duplicates (editor →
// publisher) and normalizes them. WmXML's FD-canonical identities give
// every duplicate the same bit at the same position, so normalization is
// a no-op; the ablation with FD handling disabled and the
// structure-labelled baseline both lose their marks — at zero usability
// cost to the attacker.
func E5RedundancyRemoval(p Params) (*Table, error) {
	s, err := newSetup(p)
	if err != nil {
		return nil, err
	}
	t := NewTable("E5", "attack (D) redundancy removal: FD-aware vs FD-oblivious",
		"scheme", "match_before", "match_after", "detected_after", "usability_after")

	redund := attack.RedundancyRemoval{FDs: s.ds.Catalog.FDs}
	// Focus the watermark on the FD-dependent field, where redundancy
	// lives; gamma 1 so every group carries a bit. The mark is short (the
	// FD field has one unit per editor, not per book) and balanced, so
	// the "erased" outcome reads as ≈0.5 rather than the mark's 0/1 skew.
	targets := []string{"db/book/@publisher"}
	e5mark := make([]uint8, 8)
	for i := range e5mark {
		e5mark[i] = uint8(i % 2)
	}

	// --- FD-aware (WmXML). ---
	{
		cfg := s.cfg
		cfg.Gamma = 1
		cfg.Mark = e5mark
		cfg.Identity = identity.Options{Targets: targets}
		doc := s.ds.Doc.Clone()
		er, err := core.Embed(doc, cfg)
		if err != nil {
			return nil, err
		}
		before, err := core.DetectWithQueries(doc, cfg, er.Records, nil)
		if err != nil {
			return nil, err
		}
		attacked, err := redund.Apply(doc, rand.New(rand.NewSource(s.p.Seed)))
		if err != nil {
			return nil, err
		}
		after, err := core.DetectWithQueries(attacked, cfg, er.Records, nil)
		if err != nil {
			return nil, err
		}
		u := s.meter.Measure(attacked, nil)
		t.AddRow("wmxml(fd-aware)", before.MatchFraction, after.MatchFraction, after.Detected, u.Usability())
	}

	// --- FD handling disabled (ablation). ---
	{
		cfg := s.cfg
		cfg.Gamma = 1
		cfg.Mark = e5mark
		cfg.Identity = identity.Options{Targets: targets, DisableFDs: true}
		doc := s.ds.Doc.Clone()
		er, err := core.Embed(doc, cfg)
		if err != nil {
			return nil, err
		}
		before, err := core.DetectWithQueries(doc, cfg, er.Records, nil)
		if err != nil {
			return nil, err
		}
		attacked, err := redund.Apply(doc, rand.New(rand.NewSource(s.p.Seed)))
		if err != nil {
			return nil, err
		}
		after, err := core.DetectWithQueries(attacked, cfg, er.Records, nil)
		if err != nil {
			return nil, err
		}
		u := s.meter.Measure(attacked, nil)
		t.AddRow("wmxml(fd-disabled)", before.MatchFraction, after.MatchFraction, after.Detected, u.Usability())
	}

	// --- Structure-labelled baseline. ---
	{
		bcfg := baseline.Config{Key: s.cfg.Key, Mark: e5mark, Gamma: 2, Xi: s.cfg.Xi}
		doc := s.ds.Doc.Clone()
		if _, err := baseline.Embed(doc, bcfg); err != nil {
			return nil, err
		}
		before, err := baseline.Detect(doc, bcfg)
		if err != nil {
			return nil, err
		}
		attacked, err := redund.Apply(doc, rand.New(rand.NewSource(s.p.Seed)))
		if err != nil {
			return nil, err
		}
		after, err := baseline.Detect(attacked, bcfg)
		if err != nil {
			return nil, err
		}
		u := s.meter.Measure(attacked, nil)
		t.AddRow("baseline(structure-label)", before.Detection.MatchFraction,
			after.Detection.MatchFraction, after.Detection.Detected, u.Usability())
	}

	t.AddNote("attack normalizes each editor-group's publisher values to the group majority")
	t.AddNote("expected shape: fd-aware match stays 1.0 (attack is a no-op); fd-disabled and baseline degrade below τ while wmxml usability stays ≈ 1.0 — the free-attack scenario the FD machinery exists to close")
	t.AddNote("the baseline's usability deficit is embedding-induced, not attack-induced: semantics-blind marking also rewrites key values, breaking key-parameterized queries")
	t.AddNote("the baseline's surviving match comes from carriers outside the redundant field (it marks every value in the document, at the usability cost above); its carriers in the redundant field itself are wiped exactly like the fd-disabled ablation")
	return t, nil
}
