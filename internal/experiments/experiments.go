package experiments

import (
	"fmt"

	"wmxml/internal/core"
	"wmxml/internal/datagen"
	"wmxml/internal/identity"
	"wmxml/internal/rewrite"
	"wmxml/internal/usability"
	"wmxml/internal/wmark"
)

// Params scales every experiment. The zero value gets sensible defaults.
type Params struct {
	// Books is the size of the publications dataset (default 400).
	Books int
	// Trials per sweep point for randomized attacks (default 10).
	Trials int
	// MarkBits is the watermark length (default 64).
	MarkBits int
	// Seed fixes dataset and attack randomness (default 2005, the
	// paper's vintage).
	Seed int64
}

func (p Params) withDefaults() Params {
	if p.Books == 0 {
		p.Books = 400
	}
	if p.Trials == 0 {
		p.Trials = 10
	}
	if p.MarkBits == 0 {
		p.MarkBits = 64
	}
	if p.Seed == 0 {
		p.Seed = 2005
	}
	return p
}

// setup bundles the shared fixtures of one experiment run.
type setup struct {
	p       Params
	ds      *datagen.Dataset
	cfg     core.Config
	mapping rewrite.Mapping
	meter   *usability.Meter
}

// newSetup builds the standard publications fixture: dataset, core
// config, usability meter and the re-organization mapping extended to
// cover all dataset fields (price included), so that rewriting is not
// penalized by dropped fields.
func newSetup(p Params) (*setup, error) {
	p = p.withDefaults()
	ds := datagen.Publications(datagen.PubConfig{
		Books:      p.Books,
		Editors:    max(6, p.Books/12),
		Publishers: max(3, p.Books/80),
		Seed:       p.Seed,
	})
	cfg := core.Config{
		Key:      []byte("wmxml-experiment-key"),
		Mark:     wmark.Random(fmt.Sprintf("wmxml-mark-%d", p.Seed), p.MarkBits),
		Gamma:    4,
		Xi:       4,
		Schema:   ds.Schema,
		Catalog:  ds.Catalog,
		Identity: identity.Options{Targets: ds.Targets},
	}
	meter, err := usability.NewMeter(ds.Doc, ds.Templates, usability.Options{MaxProbes: 120})
	if err != nil {
		return nil, err
	}
	return &setup{p: p, ds: ds, cfg: cfg, mapping: pubMapping(), meter: meter}, nil
}

// pubMapping is the figure-1 re-organization extended with the price
// field the synthetic dataset carries.
func pubMapping() rewrite.Mapping { return rewrite.PublicationsMapping() }

// All runs every experiment and returns the tables in report order.
func All(p Params) ([]*Table, error) {
	runs := []func(Params) (*Table, error){
		E1Capacity,
		E2Alteration,
		E3Reduction,
		E4Reorganization,
		E5RedundancyRemoval,
		E6RewriteFidelity,
		E7Frontier,
		E8FalsePositive,
		F1InfoPreservation,
		C1Collusion,
	}
	var out []*Table
	for _, run := range runs {
		t, err := run(p)
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	return out, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
