package registry

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// countingHolder wraps the registry API handler and counts requests,
// so the cache tests can assert what actually crossed the wire.
func countingHolder(t *testing.T, key string) (*httptest.Server, *atomic.Int64, *atomic.Int64) {
	t.Helper()
	var requests, notModified atomic.Int64
	inner := NewHTTPHandler(NewMemory(), key)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		requests.Add(1)
		rec := httptest.NewRecorder()
		inner.ServeHTTP(rec, r)
		if rec.Code == http.StatusNotModified {
			notModified.Add(1)
		}
		for k, vs := range rec.Header() {
			for _, v := range vs {
				w.Header().Add(k, v)
			}
		}
		w.WriteHeader(rec.Code)
		w.Write(rec.Body.Bytes())
	}))
	t.Cleanup(srv.Close)
	return srv, &requests, &notModified
}

// TestRemoteAuth: a wrong or missing cluster key is refused by the
// holder and surfaces as an error, not silent emptiness.
func TestRemoteAuth(t *testing.T) {
	srv := httptest.NewServer(NewHTTPHandler(NewMemory(), "right-key"))
	t.Cleanup(srv.Close)

	bad, err := OpenRemote(srv.URL, RemoteOptions{Key: "wrong-key"})
	if err != nil {
		t.Fatal(err)
	}
	if err := bad.PutOwner(testOwner("acme")); err == nil {
		t.Fatal("write with wrong cluster key succeeded")
	}
	missing, err := OpenRemote(srv.URL, RemoteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := missing.ListOwners(); err == nil {
		t.Fatal("read with no cluster key succeeded")
	}
}

// TestRemoteTTLCache: within the TTL, repeated reads are served from
// the local cache with zero wire traffic; past it, reads revalidate
// with If-None-Match and unchanged data comes back as a bodyless 304.
func TestRemoteTTLCache(t *testing.T) {
	srv, requests, notModified := countingHolder(t, "k")
	rm, err := OpenRemote(srv.URL, RemoteOptions{Key: "k", CacheTTL: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer rm.Close()
	if err := rm.PutOwner(testOwner("acme")); err != nil {
		t.Fatal(err)
	}

	if _, err := rm.GetOwner("acme"); err != nil {
		t.Fatal(err)
	}
	base := requests.Load()
	for i := 0; i < 10; i++ {
		if o, err := rm.GetOwner("acme"); err != nil || o.Key != "k-acme" {
			t.Fatalf("cached GetOwner = %+v, %v", o, err)
		}
	}
	if got := requests.Load(); got != base {
		t.Fatalf("10 in-TTL reads crossed the wire %d times, want 0", got-base)
	}

	// Force the entry stale; the next read revalidates and — nothing
	// changed — gets a 304.
	rm.mu.Lock()
	for _, e := range rm.cache {
		e.expires = time.Time{}
	}
	rm.mu.Unlock()
	if _, err := rm.GetOwner("acme"); err != nil {
		t.Fatal(err)
	}
	if notModified.Load() == 0 {
		t.Fatal("stale read did not revalidate via If-None-Match/304")
	}
}

// TestRemoteWriteInvalidation: a node always reads its own writes —
// writing through the client drops the owner's cached entries even
// inside the TTL.
func TestRemoteWriteInvalidation(t *testing.T) {
	srv, _, _ := countingHolder(t, "k")
	rm, err := OpenRemote(srv.URL, RemoteOptions{Key: "k", CacheTTL: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer rm.Close()
	if err := rm.PutOwner(testOwner("acme")); err != nil {
		t.Fatal(err)
	}
	if o, err := rm.GetOwner("acme"); err != nil || o.Gamma != 5 {
		t.Fatalf("GetOwner = %+v, %v", o, err)
	}
	upd := testOwner("acme")
	upd.Gamma = 42
	if err := rm.PutOwner(upd); err != nil {
		t.Fatal(err)
	}
	if o, err := rm.GetOwner("acme"); err != nil || o.Gamma != 42 {
		t.Fatalf("own write not visible through cache: %+v, %v", o, err)
	}

	// Receipts too: list, append, list again.
	if err := rm.AddReceipt(testReceipt("acme", "r1")); err != nil {
		t.Fatal(err)
	}
	if recs, err := rm.ListReceipts("acme"); err != nil || len(recs) != 1 {
		t.Fatalf("ListReceipts = %d, %v", len(recs), err)
	}
	if err := rm.AddReceipt(testReceipt("acme", "r2")); err != nil {
		t.Fatal(err)
	}
	if recs, err := rm.ListReceipts("acme"); err != nil || len(recs) != 2 {
		t.Fatalf("ListReceipts after own append = %d, %v (cache not invalidated)", len(recs), err)
	}
}

// TestRemoteCrossClientTTL: a second client sees another writer's
// update after its TTL expires (revalidation catches the new ETag).
func TestRemoteCrossClientTTL(t *testing.T) {
	srv, _, _ := countingHolder(t, "k")
	a, err := OpenRemote(srv.URL, RemoteOptions{Key: "k", CacheTTL: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := OpenRemote(srv.URL, RemoteOptions{Key: "k", CacheTTL: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	if err := a.PutOwner(testOwner("acme")); err != nil {
		t.Fatal(err)
	}
	if o, err := b.GetOwner("acme"); err != nil || o.Gamma != 5 {
		t.Fatalf("b.GetOwner = %+v, %v", o, err)
	}
	upd := testOwner("acme")
	upd.Gamma = 42
	if err := a.PutOwner(upd); err != nil {
		t.Fatal(err)
	}
	// Inside the TTL, b may serve its cache (bounded staleness — by
	// design). Force expiry to model the TTL lapsing.
	b.mu.Lock()
	for _, e := range b.cache {
		e.expires = time.Time{}
	}
	b.mu.Unlock()
	if o, err := b.GetOwner("acme"); err != nil || o.Gamma != 42 {
		t.Fatalf("b did not see a's write after TTL: %+v, %v", o, err)
	}
}

// TestRemoteErrorMapping: the HTTP status vocabulary round-trips back
// into the Store error vocabulary.
func TestRemoteErrorMapping(t *testing.T) {
	srv, _, _ := countingHolder(t, "k")
	rm, err := OpenRemote(srv.URL, RemoteOptions{Key: "k"})
	if err != nil {
		t.Fatal(err)
	}
	defer rm.Close()
	if _, err := rm.GetOwner("ghost"); !errors.Is(err, ErrNotFound) {
		t.Errorf("GetOwner(missing) = %v, want ErrNotFound", err)
	}
	if err := rm.AddReceipt(testReceipt("ghost", "r1")); !errors.Is(err, ErrNotFound) {
		t.Errorf("AddReceipt(unknown owner) = %v, want ErrNotFound", err)
	}
	if err := rm.PutOwner(testOwner("acme")); err != nil {
		t.Fatal(err)
	}
	if err := rm.AddReceipt(testReceipt("acme", "r1")); err != nil {
		t.Fatal(err)
	}
	if err := rm.AddReceipt(testReceipt("acme", "r1")); !errors.Is(err, ErrDuplicate) {
		t.Errorf("duplicate receipt = %v, want ErrDuplicate", err)
	}
	if _, err := rm.GetPlan("acme", "0123"); !errors.Is(err, ErrNotFound) {
		t.Errorf("GetPlan(missing) = %v, want ErrNotFound", err)
	}
}

// TestRemoteBadBaseURL rejects non-http bases at open time.
func TestRemoteBadBaseURL(t *testing.T) {
	for _, bad := range []string{"", "ftp://x", "not a url\x00"} {
		if _, err := OpenRemote(bad, RemoteOptions{}); err == nil {
			t.Errorf("OpenRemote(%q) succeeded", bad)
		}
	}
}
