package registry

import (
	"crypto/rand"
	"crypto/sha256"
	"crypto/subtle"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
)

// NewHTTPHandler exposes a Store over HTTP — the wire side of the
// Remote client, so a fleet of stateless wmxmld nodes can share one
// registry held by a single process. The route shapes mirror the Store
// methods:
//
//	GET  /owners                      ListOwners
//	PUT  /owners/{id}                 PutOwner
//	GET  /owners/{id}                 GetOwner
//	POST /owners/{id}/receipts        AddReceipt
//	GET  /owners/{id}/receipts        ListReceipts
//	GET  /owners/{id}/receipts/{rid}  GetReceipt
//	POST /owners/{id}/recipients      PutRecipient
//	GET  /owners/{id}/recipients      ListRecipients
//	GET  /owners/{id}/recipients/{rid} GetRecipient
//	POST /owners/{id}/plans           PutPlan
//	GET  /owners/{id}/plans           ListPlans
//	GET  /owners/{id}/plans/{digest}  GetPlan
//
// When clusterKey is non-empty every request must carry it as a Bearer
// token (fleet-internal auth — distinct from the per-owner keys, which
// stay end-to-end between clients and whichever node serves them).
//
// Owner-scoped GETs carry an ETag versioned per owner: any write under
// an owner bumps its version, and a GET with a matching If-None-Match
// returns 304 with no body. Versions are prefixed with a random
// per-process epoch so a restarted holder can never echo a version
// number that validates a stale cache. The ETag is read before the
// data, so a write racing a read can only make the tag stale (a
// needless refetch later), never fresher than the body it labels.
//
// Error mapping: ErrNotFound → 404, ErrDuplicate → 409, validation →
// 400, everything else → 500. The body is a JSON {"error": "..."}.
func NewHTTPHandler(store Store, clusterKey string) http.Handler {
	h := &apiHandler{store: store}
	if clusterKey != "" {
		sum := sha256.Sum256([]byte(clusterKey))
		h.keyDigest = sum[:]
	}
	var epoch [8]byte
	rand.Read(epoch[:])
	h.epoch = hex.EncodeToString(epoch[:])
	h.versions = make(map[string]uint64)

	mux := http.NewServeMux()
	mux.HandleFunc("GET /owners", h.auth(h.listOwners))
	mux.HandleFunc("PUT /owners/{id}", h.auth(h.putOwner))
	mux.HandleFunc("GET /owners/{id}", h.auth(h.getOwner))
	mux.HandleFunc("POST /owners/{id}/receipts", h.auth(h.addReceipt))
	mux.HandleFunc("GET /owners/{id}/receipts", h.auth(h.listReceipts))
	mux.HandleFunc("GET /owners/{id}/receipts/{rid}", h.auth(h.getReceipt))
	mux.HandleFunc("POST /owners/{id}/recipients", h.auth(h.putRecipient))
	mux.HandleFunc("GET /owners/{id}/recipients", h.auth(h.listRecipients))
	mux.HandleFunc("GET /owners/{id}/recipients/{rid}", h.auth(h.getRecipient))
	mux.HandleFunc("POST /owners/{id}/plans", h.auth(h.putPlan))
	mux.HandleFunc("GET /owners/{id}/plans", h.auth(h.listPlans))
	mux.HandleFunc("GET /owners/{id}/plans/{digest}", h.auth(h.getPlan))
	return mux
}

type apiHandler struct {
	store     Store
	keyDigest []byte // sha256 of the cluster key; nil = no auth

	epoch    string // random per-process ETag prefix
	mu       sync.Mutex
	versions map[string]uint64 // owner -> write version
}

// maxAPIBody bounds write bodies. Plans carry whole canonical documents,
// so the bound is generous; it exists to stop an unauthenticated-path
// mistake from buffering unbounded input, not to police tenants.
const maxAPIBody = 128 << 20

func (h *apiHandler) auth(next http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if h.keyDigest != nil {
			token, ok := strings.CutPrefix(r.Header.Get("Authorization"), "Bearer ")
			if !ok {
				apiError(w, http.StatusUnauthorized, errors.New("registry api: missing bearer token"))
				return
			}
			sum := sha256.Sum256([]byte(token))
			if subtle.ConstantTimeCompare(sum[:], h.keyDigest) != 1 {
				apiError(w, http.StatusForbidden, errors.New("registry api: bad cluster key"))
				return
			}
		}
		next(w, r)
	}
}

// etag returns the current tag for an owner's records.
func (h *apiHandler) etag(owner string) string {
	h.mu.Lock()
	v := h.versions[owner]
	h.mu.Unlock()
	return fmt.Sprintf(`"%s-%d"`, h.epoch, v)
}

// bump invalidates an owner's ETag after a successful write.
func (h *apiHandler) bump(owner string) {
	h.mu.Lock()
	h.versions[owner]++
	h.mu.Unlock()
}

func apiError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

// storeError maps a Store error onto a status code.
func storeError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrNotFound):
		apiError(w, http.StatusNotFound, err)
	case errors.Is(err, ErrDuplicate):
		apiError(w, http.StatusConflict, err)
	default:
		apiError(w, http.StatusBadRequest, err)
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// serveTagged writes an owner-scoped response with its ETag, honoring
// If-None-Match. The tag is captured before the store read (see the
// NewHTTPHandler doc for why that direction is the safe race).
func (h *apiHandler) serveTagged(w http.ResponseWriter, r *http.Request, owner string, read func() (any, error)) {
	tag := h.etag(owner)
	if r.Header.Get("If-None-Match") == tag {
		w.Header().Set("ETag", tag)
		w.WriteHeader(http.StatusNotModified)
		return
	}
	v, err := read()
	if err != nil {
		storeError(w, err)
		return
	}
	w.Header().Set("ETag", tag)
	writeJSON(w, v)
}

func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxAPIBody)).Decode(v); err != nil {
		apiError(w, http.StatusBadRequest, fmt.Errorf("registry api: decode body: %w", err))
		return false
	}
	return true
}

func (h *apiHandler) listOwners(w http.ResponseWriter, r *http.Request) {
	owners, err := h.store.ListOwners()
	if err != nil {
		storeError(w, err)
		return
	}
	writeJSON(w, owners)
}

func (h *apiHandler) putOwner(w http.ResponseWriter, r *http.Request) {
	var o Owner
	if !decodeBody(w, r, &o) {
		return
	}
	if id := r.PathValue("id"); o.ID != id {
		apiError(w, http.StatusBadRequest, fmt.Errorf("registry api: body owner id %q does not match path id %q", o.ID, id))
		return
	}
	if err := h.store.PutOwner(o); err != nil {
		storeError(w, err)
		return
	}
	h.bump(o.ID)
	w.WriteHeader(http.StatusNoContent)
}

func (h *apiHandler) getOwner(w http.ResponseWriter, r *http.Request) {
	owner := r.PathValue("id")
	h.serveTagged(w, r, owner, func() (any, error) { return h.store.GetOwner(owner) })
}

func (h *apiHandler) addReceipt(w http.ResponseWriter, r *http.Request) {
	var rec Receipt
	if !decodeBody(w, r, &rec) {
		return
	}
	if owner := r.PathValue("id"); rec.Owner != owner {
		apiError(w, http.StatusBadRequest, fmt.Errorf("registry api: body owner %q does not match path owner %q", rec.Owner, owner))
		return
	}
	if err := h.store.AddReceipt(rec); err != nil {
		storeError(w, err)
		return
	}
	h.bump(rec.Owner)
	w.WriteHeader(http.StatusNoContent)
}

func (h *apiHandler) listReceipts(w http.ResponseWriter, r *http.Request) {
	owner := r.PathValue("id")
	h.serveTagged(w, r, owner, func() (any, error) { return h.store.ListReceipts(owner) })
}

func (h *apiHandler) getReceipt(w http.ResponseWriter, r *http.Request) {
	owner := r.PathValue("id")
	h.serveTagged(w, r, owner, func() (any, error) { return h.store.GetReceipt(owner, r.PathValue("rid")) })
}

func (h *apiHandler) putRecipient(w http.ResponseWriter, r *http.Request) {
	var rc Recipient
	if !decodeBody(w, r, &rc) {
		return
	}
	if owner := r.PathValue("id"); rc.Owner != owner {
		apiError(w, http.StatusBadRequest, fmt.Errorf("registry api: body owner %q does not match path owner %q", rc.Owner, owner))
		return
	}
	if err := h.store.PutRecipient(rc); err != nil {
		storeError(w, err)
		return
	}
	h.bump(rc.Owner)
	w.WriteHeader(http.StatusNoContent)
}

func (h *apiHandler) listRecipients(w http.ResponseWriter, r *http.Request) {
	owner := r.PathValue("id")
	h.serveTagged(w, r, owner, func() (any, error) { return h.store.ListRecipients(owner) })
}

func (h *apiHandler) getRecipient(w http.ResponseWriter, r *http.Request) {
	owner := r.PathValue("id")
	h.serveTagged(w, r, owner, func() (any, error) { return h.store.GetRecipient(owner, r.PathValue("rid")) })
}

func (h *apiHandler) putPlan(w http.ResponseWriter, r *http.Request) {
	var p PlanRecord
	if !decodeBody(w, r, &p) {
		return
	}
	if owner := r.PathValue("id"); p.Owner != owner {
		apiError(w, http.StatusBadRequest, fmt.Errorf("registry api: body owner %q does not match path owner %q", p.Owner, owner))
		return
	}
	if err := h.store.PutPlan(p); err != nil {
		storeError(w, err)
		return
	}
	h.bump(p.Owner)
	w.WriteHeader(http.StatusNoContent)
}

func (h *apiHandler) listPlans(w http.ResponseWriter, r *http.Request) {
	owner := r.PathValue("id")
	h.serveTagged(w, r, owner, func() (any, error) { return h.store.ListPlans(owner) })
}

func (h *apiHandler) getPlan(w http.ResponseWriter, r *http.Request) {
	owner := r.PathValue("id")
	h.serveTagged(w, r, owner, func() (any, error) { return h.store.GetPlan(owner, r.PathValue("digest")) })
}
