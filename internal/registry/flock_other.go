//go:build !unix

package registry

import "os"

// lockFile is a no-op where flock is unavailable; single-process use of
// a registry log is then the deployment's responsibility.
func lockFile(f *os.File) error { return nil }
