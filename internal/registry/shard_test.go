package registry

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// TestShardedLayout: owners actually spread over multiple shard files,
// the meta file pins the layout, and reopening with a different count
// is refused instead of silently re-hashed.
func TestShardedLayout(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "reg")
	st, err := OpenSharded(dir, 4, FileOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		if err := st.PutOwner(testOwner(fmt.Sprintf("tenant-%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	nonEmpty := 0
	for i := 0; i < 4; i++ {
		fi, err := os.Stat(filepath.Join(dir, fmt.Sprintf("shard-%03d.jsonl", i)))
		if err != nil {
			t.Fatal(err)
		}
		if fi.Size() > 0 {
			nonEmpty++
		}
	}
	if nonEmpty < 2 {
		t.Errorf("32 owners landed on %d of 4 shards; hashing is degenerate", nonEmpty)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	if _, err := OpenSharded(dir, 8, FileOptions{NoSync: true}); err == nil || !strings.Contains(err.Error(), "resharding") {
		t.Fatalf("reopen with wrong shard count = %v, want resharding error", err)
	}
	re, err := OpenSharded(dir, 4, FileOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	owners, err := re.ListOwners()
	if err != nil || len(owners) != 32 {
		t.Fatalf("owners after reopen = %d, %v", len(owners), err)
	}
	if owners[0].ID != "tenant-00" || owners[31].ID != "tenant-31" {
		t.Errorf("merged ListOwners not id-sorted: %s .. %s", owners[0].ID, owners[31].ID)
	}
}

// TestShardedSecondProcessRefused: each shard holds its flock, so a
// second handle on the same directory must fail like a second File
// handle would.
func TestShardedSecondProcessRefused(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "reg")
	st, err := OpenSharded(dir, 2, FileOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if _, err := OpenSharded(dir, 2, FileOptions{NoSync: true}); err == nil {
		t.Fatal("second open of a locked sharded registry succeeded")
	}
}

// TestShardedConcurrentOwners: appends to different owners proceed
// concurrently across shards; every write is visible afterwards and
// LogSize sums the shards.
func TestShardedConcurrentOwners(t *testing.T) {
	st, err := OpenSharded(filepath.Join(t.TempDir(), "reg"), 4, FileOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	const owners = 8
	for i := 0; i < owners; i++ {
		if err := st.PutOwner(testOwner(fmt.Sprintf("tenant-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errs := make(chan error, owners)
	for i := 0; i < owners; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			owner := fmt.Sprintf("tenant-%d", i)
			for r := 0; r < 10; r++ {
				if err := st.AddReceipt(testReceipt(owner, fmt.Sprintf("r-%d", r))); err != nil {
					errs <- err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for i := 0; i < owners; i++ {
		recs, err := st.ListReceipts(fmt.Sprintf("tenant-%d", i))
		if err != nil || len(recs) != 10 {
			t.Fatalf("tenant-%d receipts = %d, %v", i, len(recs), err)
		}
	}
	before, err := st.LogSize()
	if err != nil || before == 0 {
		t.Fatalf("LogSize = %d, %v", before, err)
	}
	// Re-register every owner, compact, and the summed size shrinks back.
	for i := 0; i < owners; i++ {
		for g := 0; g < 10; g++ {
			o := testOwner(fmt.Sprintf("tenant-%d", i))
			o.Gamma = g + 1
			if err := st.PutOwner(o); err != nil {
				t.Fatal(err)
			}
		}
	}
	bloated, _ := st.LogSize()
	if err := st.Compact(); err != nil {
		t.Fatal(err)
	}
	after, _ := st.LogSize()
	if after >= bloated {
		t.Errorf("sharded compact did not shrink: %d -> %d", bloated, after)
	}
}
