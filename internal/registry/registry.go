// Package registry is the multi-tenant key/mark/receipt store behind
// the wmxmld service (internal/server).
//
// The paper's workflow hands the data owner a query set Q at embedding
// time and asks them to "safeguard it together with the secret key";
// the registry is where a long-lived deployment does exactly that, for
// many owners at once. Each Owner record holds the tenant's secret key,
// watermark and document-type spec; each Receipt holds one embedding's
// safeguarded query set plus capacity figures, so later detections
// resolve their queries server-side instead of shipping q.json around.
//
// Two implementations share the Store interface: Memory (tests,
// ephemeral deployments) and File (one JSONL log per deployment with
// crash-safe appends and offline compaction).
package registry

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"

	"wmxml/internal/core"
)

// ErrNotFound reports a missing owner or receipt.
var ErrNotFound = errors.New("registry: not found")

// ErrDuplicate reports an AddReceipt whose (owner, id) already exists.
var ErrDuplicate = errors.New("registry: receipt already exists")

// Owner is one tenant of the watermarking service: the identity under
// which documents are embedded and detected.
type Owner struct {
	// ID names the tenant in API paths; required, no '/' allowed.
	ID string `json:"id"`
	// Key is the tenant's secret watermarking key; required.
	Key string `json:"key"`
	// Mark is the tenant's watermark message; required.
	Mark string `json:"mark"`
	// Dataset names a built-in document-type preset (pubs, jobs,
	// library, nested); exclusive with Spec.
	Dataset string `json:"dataset,omitempty"`
	// Spec is a JSON document-type spec (internal/config format);
	// exclusive with Dataset.
	Spec json.RawMessage `json:"spec,omitempty"`
	// Gamma is the selection ratio used for this tenant's embeddings
	// (0 = the core default).
	Gamma int `json:"gamma,omitempty"`
	// SLO overrides the service-default latency/error objectives for
	// this tenant. Absent means defaults apply.
	SLO *SLOOverride `json:"slo,omitempty"`
	// CreatedUnix is the registration time (seconds since epoch).
	CreatedUnix int64 `json:"created_unix,omitempty"`
}

// SLOOverride is a tenant's declared service objectives, stored with
// the owner record so re-registration is how an operator tunes them.
// For each field: 0 (or absent) keeps the service default, a negative
// value disables that objective for the tenant.
type SLOOverride struct {
	// DetectP99MS is the latency bound, in milliseconds, that 99% of
	// the tenant's detect requests must meet.
	DetectP99MS float64 `json:"detect_p99_ms,omitempty"`
	// ErrorRatio is the tolerated 5xx fraction (e.g. 0.01 = 1%).
	ErrorRatio float64 `json:"error_ratio,omitempty"`
}

// Validate checks the fields every store requires.
func (o Owner) Validate() error {
	if o.ID == "" {
		return fmt.Errorf("registry: owner id is required")
	}
	for _, r := range o.ID {
		if r == '/' || r == ' ' {
			return fmt.Errorf("registry: owner id %q may not contain '/' or spaces", o.ID)
		}
	}
	if o.Key == "" {
		return fmt.Errorf("registry: owner %q: key is required", o.ID)
	}
	if o.Mark == "" {
		return fmt.Errorf("registry: owner %q: mark is required", o.ID)
	}
	if o.Dataset != "" && len(o.Spec) > 0 {
		return fmt.Errorf("registry: owner %q: dataset and spec are exclusive", o.ID)
	}
	if o.Dataset == "" && len(o.Spec) == 0 {
		return fmt.Errorf("registry: owner %q: a dataset preset or a spec is required", o.ID)
	}
	if o.SLO != nil && o.SLO.ErrorRatio > 1 {
		return fmt.Errorf("registry: owner %q: slo error_ratio %g exceeds 1", o.ID, o.SLO.ErrorRatio)
	}
	return nil
}

// Recipient is one distribution target registered under an owner: the
// party a fingerprinted copy was (or will be) handed to, and therefore
// a tracing candidate. The codeword itself is never stored — it derives
// from the owner key and this id (internal/fingerprint), so the
// registry holds no secrets beyond what the owner record already does.
type Recipient struct {
	// ID names the recipient within its owner; required, no '/' or
	// spaces (it rides in URLs next to owner ids).
	ID string `json:"id"`
	// Owner is the tenant distributing to this recipient.
	Owner string `json:"owner"`
	// Note is an optional free-text label ("EU mirror", contract id).
	Note string `json:"note,omitempty"`
	// CreatedUnix is the registration time (seconds since epoch).
	CreatedUnix int64 `json:"created_unix,omitempty"`
}

// Validate checks the fields every store requires.
func (rc Recipient) Validate() error {
	if rc.ID == "" {
		return fmt.Errorf("registry: recipient id is required")
	}
	for _, r := range rc.ID {
		if r == '/' || r == ' ' {
			return fmt.Errorf("registry: recipient id %q may not contain '/' or spaces", rc.ID)
		}
	}
	if rc.Owner == "" {
		return fmt.Errorf("registry: recipient %q: owner is required", rc.ID)
	}
	return nil
}

// Receipt is one embedding's safeguarded detection material: the query
// set Q plus the capacity report, bound to the owner it was embedded
// for.
type Receipt struct {
	// ID names the receipt within its owner; assigned by the caller
	// (the server uses content-derived ids so retried embeds dedupe).
	ID string `json:"id"`
	// Owner is the tenant the embedding ran under.
	Owner string `json:"owner"`
	// Doc is an optional caller-supplied document label.
	Doc string `json:"doc,omitempty"`
	// Recipient is set on fingerprint embeddings: the recipient whose
	// code this copy carries. Empty for plain ownership embeddings.
	Recipient string `json:"recipient,omitempty"`
	// CreatedUnix is the embedding time (seconds since epoch).
	CreatedUnix int64 `json:"created_unix"`
	// Records is Q, the safeguarded identity queries.
	Records []core.QueryRecord `json:"records"`
	// BandwidthUnits, Carriers and ValuesWritten mirror the embed
	// receipt's capacity figures.
	BandwidthUnits int `json:"bandwidth_units"`
	Carriers       int `json:"carriers"`
	ValuesWritten  int `json:"values_written"`
}

// PlanRecord stores one compiled delivery plan (internal/deliver)
// keyed by the canonical document digest, together with the canonical
// bytes the plan's offsets index into — everything /v1/deliver needs to
// splice a recipient copy without re-reading the original document.
// The plan itself rides as opaque JSON: the registry versions the
// envelope (PlanRecordVersion), the deliver package versions the plan.
type PlanRecord struct {
	// Owner is the tenant the plan was compiled for.
	Owner string `json:"owner"`
	// Digest is the sha256 hex of Canonical — the lookup key.
	Digest string `json:"digest"`
	// Doc is an optional caller-supplied document label.
	Doc string `json:"doc,omitempty"`
	// CreatedUnix is the compile time (seconds since epoch).
	CreatedUnix int64 `json:"created_unix,omitempty"`
	// Canonical is the canonical serialized document bytes.
	Canonical []byte `json:"canonical"`
	// Plan is the deliver-package plan JSON envelope.
	Plan json.RawMessage `json:"plan"`
}

// Validate checks the fields every store requires, including that the
// digest actually names the canonical bytes — a store must never hand
// out a plan whose offsets index different bytes than its key claims.
func (p PlanRecord) Validate() error {
	if p.Owner == "" {
		return fmt.Errorf("registry: plan: owner is required")
	}
	if len(p.Digest) != 64 {
		return fmt.Errorf("registry: plan: digest %q is not a sha256 hex digest", p.Digest)
	}
	if len(p.Plan) == 0 {
		return fmt.Errorf("registry: plan %s: empty plan body", p.Digest)
	}
	if len(p.Canonical) == 0 {
		return fmt.Errorf("registry: plan %s: no canonical bytes", p.Digest)
	}
	sum := sha256.Sum256(p.Canonical)
	if got := hex.EncodeToString(sum[:]); got != p.Digest {
		return fmt.Errorf("registry: plan digest %s does not match canonical bytes (%s)", p.Digest, got)
	}
	return nil
}

// Store is the registry contract shared by the memory and file
// implementations. Implementations are safe for concurrent use.
type Store interface {
	// PutOwner registers or replaces an owner.
	PutOwner(o Owner) error
	// GetOwner returns the owner or ErrNotFound.
	GetOwner(id string) (Owner, error)
	// ListOwners returns every owner, id-sorted.
	ListOwners() ([]Owner, error)
	// AddReceipt appends a receipt; (owner, id) must be new, the owner
	// must exist.
	AddReceipt(r Receipt) error
	// GetReceipt returns one receipt or ErrNotFound.
	GetReceipt(owner, id string) (Receipt, error)
	// ListReceipts returns an owner's receipts in insertion order. The
	// owner must exist (ErrNotFound otherwise); no receipts is an empty
	// slice.
	ListReceipts(owner string) ([]Receipt, error)
	// PutRecipient registers (or re-labels) a recipient; the owner must
	// exist.
	PutRecipient(rc Recipient) error
	// GetRecipient returns one recipient or ErrNotFound.
	GetRecipient(owner, id string) (Recipient, error)
	// ListRecipients returns an owner's recipients in first-registration
	// order — the candidate list a trace sweeps. The owner must exist
	// (ErrNotFound otherwise); no recipients is an empty slice.
	ListRecipients(owner string) ([]Recipient, error)
	// PutPlan stores or replaces a compiled delivery plan; the owner
	// must exist. Re-putting a digest keeps the original store time.
	PutPlan(p PlanRecord) error
	// GetPlan returns the plan for (owner, digest) or ErrNotFound.
	GetPlan(owner, digest string) (PlanRecord, error)
	// ListPlans returns an owner's plans in first-store order. The owner
	// must exist (ErrNotFound otherwise); no plans is an empty slice.
	ListPlans(owner string) ([]PlanRecord, error)
	// Close releases resources; the store is unusable afterwards.
	Close() error
}

// validateReceipt checks the fields every store requires.
func validateReceipt(r Receipt) error {
	if r.ID == "" {
		return fmt.Errorf("registry: receipt id is required")
	}
	if r.Owner == "" {
		return fmt.Errorf("registry: receipt %q: owner is required", r.ID)
	}
	if len(r.Records) == 0 {
		return fmt.Errorf("registry: receipt %q: no query records", r.ID)
	}
	return nil
}
