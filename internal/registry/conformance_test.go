package registry

import (
	"errors"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// conformanceBackend describes one Store implementation for the
// behavioral matrix. Open returns a fresh empty store; Reopen (nil for
// backends with no independent persistence) closes the handle and
// reopens the same underlying data, proving replay fidelity.
type conformanceBackend struct {
	name   string
	open   func(t *testing.T) Store
	reopen func(t *testing.T, st Store) Store
}

// conformanceBackends builds the full matrix: the two seed-era stores,
// the two new embedded backends, and a Remote wired through a real
// HTTP round trip (httptest holder over a Memory store, TTL zero so
// every read revalidates — the strictest coherence setting).
func conformanceBackends(t *testing.T) []conformanceBackend {
	t.Helper()
	return []conformanceBackend{
		{
			name: "memory",
			open: func(t *testing.T) Store { return NewMemory() },
		},
		{
			name: "file",
			open: func(t *testing.T) Store {
				st, err := OpenFile(filepath.Join(t.TempDir(), "reg.jsonl"), FileOptions{NoSync: true})
				if err != nil {
					t.Fatal(err)
				}
				return st
			},
			reopen: func(t *testing.T, st Store) Store {
				path := st.(*File).path
				if err := st.Close(); err != nil {
					t.Fatal(err)
				}
				re, err := OpenFile(path, FileOptions{NoSync: true})
				if err != nil {
					t.Fatal(err)
				}
				return re
			},
		},
		{
			name: "sharded",
			open: func(t *testing.T) Store {
				st, err := OpenSharded(filepath.Join(t.TempDir(), "reg"), 3, FileOptions{NoSync: true})
				if err != nil {
					t.Fatal(err)
				}
				return st
			},
			reopen: func(t *testing.T, st Store) Store {
				dir := filepath.Dir(st.(*Sharded).shards[0].path)
				if err := st.Close(); err != nil {
					t.Fatal(err)
				}
				re, err := OpenSharded(dir, 3, FileOptions{NoSync: true})
				if err != nil {
					t.Fatal(err)
				}
				return re
			},
		},
		{
			name: "kv",
			open: func(t *testing.T) Store {
				st, err := OpenKV(filepath.Join(t.TempDir(), "reg.kv"), FileOptions{NoSync: true})
				if err != nil {
					t.Fatal(err)
				}
				return st
			},
			reopen: func(t *testing.T, st Store) Store {
				path := st.(*KV).path
				if err := st.Close(); err != nil {
					t.Fatal(err)
				}
				re, err := OpenKV(path, FileOptions{NoSync: true})
				if err != nil {
					t.Fatal(err)
				}
				return re
			},
		},
		{
			name: "remote",
			open: func(t *testing.T) Store {
				holder := NewMemory()
				srv := httptest.NewServer(NewHTTPHandler(holder, "conformance-key"))
				t.Cleanup(srv.Close)
				rm, err := OpenRemote(srv.URL, RemoteOptions{Key: "conformance-key"})
				if err != nil {
					t.Fatal(err)
				}
				return rm
			},
			// Reopening a Remote = a second client against the same
			// holder: persistence here means holder state, not local.
			reopen: func(t *testing.T, st Store) Store {
				rm := st.(*Remote)
				if err := st.Close(); err != nil {
					t.Fatal(err)
				}
				re, err := OpenRemote(rm.base, RemoteOptions{Key: "conformance-key"})
				if err != nil {
					t.Fatal(err)
				}
				return re
			},
		},
	}
}

// TestBackendConformance is the behavioral matrix of ISSUE 10: every
// backend must agree on owner, receipt, recipient and plan semantics —
// including the error vocabulary, duplicate-id handling, re-put
// time/order preservation, Compact, and replay after reopen.
func TestBackendConformance(t *testing.T) {
	for _, be := range conformanceBackends(t) {
		t.Run(be.name, func(t *testing.T) {
			st := be.open(t)
			closed := false
			t.Cleanup(func() {
				if !closed {
					st.Close()
				}
			})

			// --- owners ---
			if _, err := st.GetOwner("nobody"); !errors.Is(err, ErrNotFound) {
				t.Errorf("GetOwner(missing) = %v, want ErrNotFound", err)
			}
			if err := st.PutOwner(Owner{ID: "a/b", Key: "k", Mark: "m", Dataset: "pubs"}); err == nil {
				t.Error("PutOwner with '/' in id accepted")
			}
			if err := st.PutOwner(testOwner("acme")); err != nil {
				t.Fatal(err)
			}
			if err := st.PutOwner(testOwner("zeta")); err != nil {
				t.Fatal(err)
			}
			if err := st.PutOwner(testOwner("beta")); err != nil {
				t.Fatal(err)
			}
			upd := testOwner("acme")
			upd.Gamma = 9
			if err := st.PutOwner(upd); err != nil {
				t.Fatal(err)
			}
			if got, _ := st.GetOwner("acme"); got.Gamma != 9 {
				t.Errorf("owner overwrite lost: %+v", got)
			}
			owners, err := st.ListOwners()
			if err != nil || len(owners) != 3 || owners[0].ID != "acme" || owners[1].ID != "beta" || owners[2].ID != "zeta" {
				t.Fatalf("ListOwners = %+v, %v", owners, err)
			}

			// --- receipts ---
			if err := st.AddReceipt(testReceipt("nobody", "r1")); !errors.Is(err, ErrNotFound) {
				t.Errorf("AddReceipt(unknown owner) = %v, want ErrNotFound", err)
			}
			if err := st.AddReceipt(Receipt{ID: "r1", Owner: "acme"}); err == nil {
				t.Error("AddReceipt without records accepted")
			}
			for _, id := range []string{"r1", "r2", "r3"} {
				if err := st.AddReceipt(testReceipt("acme", id)); err != nil {
					t.Fatal(err)
				}
			}
			if err := st.AddReceipt(testReceipt("acme", "r2")); !errors.Is(err, ErrDuplicate) {
				t.Errorf("duplicate receipt = %v, want ErrDuplicate", err)
			}
			if _, err := st.GetReceipt("acme", "r9"); !errors.Is(err, ErrNotFound) {
				t.Errorf("GetReceipt(missing) = %v, want ErrNotFound", err)
			}
			r, err := st.GetReceipt("acme", "r2")
			if err != nil || r.Doc != "doc-r2" || len(r.Records) != 2 {
				t.Fatalf("GetReceipt = %+v, %v", r, err)
			}
			recs, err := st.ListReceipts("acme")
			if err != nil || len(recs) != 3 || recs[0].ID != "r1" || recs[2].ID != "r3" {
				t.Fatalf("ListReceipts = %+v, %v", recs, err)
			}
			if recs, err := st.ListReceipts("zeta"); err != nil || len(recs) != 0 {
				t.Errorf("zeta receipts = %+v, %v (want empty, nil)", recs, err)
			}
			if _, err := st.ListReceipts("nobody"); !errors.Is(err, ErrNotFound) {
				t.Errorf("ListReceipts(missing owner) = %v, want ErrNotFound", err)
			}

			// --- recipients ---
			if err := st.PutRecipient(Recipient{ID: "mirror", Owner: "nobody"}); !errors.Is(err, ErrNotFound) {
				t.Errorf("PutRecipient(unknown owner) = %v, want ErrNotFound", err)
			}
			if err := st.PutRecipient(Recipient{ID: "a b", Owner: "acme"}); err == nil {
				t.Error("PutRecipient with space in id accepted")
			}
			if err := st.PutRecipient(Recipient{ID: "mirror", Owner: "acme", Note: "EU", CreatedUnix: 100}); err != nil {
				t.Fatal(err)
			}
			if err := st.PutRecipient(Recipient{ID: "archive", Owner: "acme", CreatedUnix: 200}); err != nil {
				t.Fatal(err)
			}
			if err := st.PutRecipient(Recipient{ID: "mirror", Owner: "acme", Note: "EU-2", CreatedUnix: 300}); err != nil {
				t.Fatal(err)
			}
			rc, err := st.GetRecipient("acme", "mirror")
			if err != nil || rc.Note != "EU-2" || rc.CreatedUnix != 100 {
				t.Fatalf("re-put recipient = %+v, %v (want note updated, time kept)", rc, err)
			}
			rcs, err := st.ListRecipients("acme")
			if err != nil || len(rcs) != 2 || rcs[0].ID != "mirror" || rcs[1].ID != "archive" {
				t.Fatalf("ListRecipients = %+v, %v", rcs, err)
			}

			// --- plans ---
			if err := st.PutPlan(testPlan("nobody", "d1")); !errors.Is(err, ErrNotFound) {
				t.Errorf("PutPlan(unknown owner) = %v, want ErrNotFound", err)
			}
			bad := testPlan("acme", "d1")
			bad.Digest = strings.Repeat("0", 64)
			if err := st.PutPlan(bad); err == nil {
				t.Error("PutPlan with mismatched digest accepted")
			}
			p1 := testPlan("acme", "d1")
			p1.CreatedUnix = 100
			p2 := testPlan("acme", "d2")
			p2.CreatedUnix = 200
			if err := st.PutPlan(p1); err != nil {
				t.Fatal(err)
			}
			if err := st.PutPlan(p2); err != nil {
				t.Fatal(err)
			}
			rePut := testPlan("acme", "d1")
			rePut.Doc = "d1-recompiled"
			rePut.CreatedUnix = 300
			if err := st.PutPlan(rePut); err != nil {
				t.Fatal(err)
			}
			gp, err := st.GetPlan("acme", p1.Digest)
			if err != nil || gp.Doc != "d1-recompiled" || gp.CreatedUnix != 100 {
				t.Fatalf("re-put plan = %+v, %v (want doc updated, time kept)", gp, err)
			}
			if _, err := st.GetPlan("acme", strings.Repeat("f", 64)); !errors.Is(err, ErrNotFound) {
				t.Errorf("GetPlan(missing) = %v, want ErrNotFound", err)
			}
			plans, err := st.ListPlans("acme")
			if err != nil || len(plans) != 2 || plans[0].Digest != p1.Digest || plans[1].Digest != p2.Digest {
				t.Fatalf("ListPlans = %+v, %v", plans, err)
			}
			if _, err := st.ListPlans("nobody"); !errors.Is(err, ErrNotFound) {
				t.Errorf("ListPlans(missing owner) = %v, want ErrNotFound", err)
			}

			// --- Compact, where supported: state must be unchanged ---
			if c, ok := st.(interface{ Compact() error }); ok {
				if err := c.Compact(); err != nil {
					t.Fatal(err)
				}
				assertConformanceState(t, st)
				// The store stays appendable on the swapped handle.
				if err := st.AddReceipt(testReceipt("acme", "post-compact")); err != nil {
					t.Fatal(err)
				}
				if got, err := st.GetReceipt("acme", "post-compact"); err != nil || got.ID != "post-compact" {
					t.Fatalf("append after compact: %+v, %v", got, err)
				}
			} else {
				if err := st.AddReceipt(testReceipt("acme", "post-compact")); err != nil {
					t.Fatal(err)
				}
			}

			// --- replay: everything above survives a reopen ---
			if be.reopen != nil {
				st = be.reopen(t, st)
				closed = true
				defer st.Close()
				assertConformanceState(t, st)
				if got, err := st.GetReceipt("acme", "post-compact"); err != nil || got.ID != "post-compact" {
					t.Fatalf("post-compact receipt lost across reopen: %+v, %v", got, err)
				}
			}
		})
	}
}

// assertConformanceState checks the invariant state the matrix built:
// 3 owners, acme's receipts r1..r3, recipients mirror+archive with the
// re-put semantics applied, plans d1 (recompiled, original time) + d2.
func assertConformanceState(t *testing.T, st Store) {
	t.Helper()
	owners, err := st.ListOwners()
	if err != nil || len(owners) != 3 || owners[0].ID != "acme" || owners[0].Gamma != 9 {
		t.Fatalf("owners = %+v, %v", owners, err)
	}
	recs, err := st.ListReceipts("acme")
	if err != nil || len(recs) < 3 || recs[0].ID != "r1" || recs[1].ID != "r2" || recs[2].ID != "r3" {
		t.Fatalf("receipts = %+v, %v", recs, err)
	}
	rcs, err := st.ListRecipients("acme")
	if err != nil || len(rcs) != 2 || rcs[0].Note != "EU-2" || rcs[0].CreatedUnix != 100 {
		t.Fatalf("recipients = %+v, %v", rcs, err)
	}
	plans, err := st.ListPlans("acme")
	if err != nil || len(plans) != 2 || plans[0].Doc != "d1-recompiled" || plans[0].CreatedUnix != 100 {
		t.Fatalf("plans = %+v, %v", plans, err)
	}
	if err := plans[0].Validate(); err != nil {
		t.Fatalf("stored plan no longer validates: %v", err)
	}
}

// TestConformanceReplayCorpus reuses the FuzzReplay seed corpus across
// backends: for every seed a File accepts, the replayed state is
// written into each other backend and must list back identically.
func TestConformanceReplayCorpus(t *testing.T) {
	for i, seed := range replaySeeds {
		t.Run(fmt.Sprintf("seed-%d", i), func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "seed.jsonl")
			if err := os.WriteFile(path, []byte(seed), 0o600); err != nil {
				t.Fatal(err)
			}
			ref, err := OpenFile(path, FileOptions{NoSync: true})
			if err != nil {
				t.Skipf("seed rejected by File (expected for corrupt seeds): %v", err)
			}
			defer ref.Close()
			owners, _ := ref.ListOwners()
			for _, be := range conformanceBackends(t) {
				if be.name == "file" {
					continue // the reference itself
				}
				t.Run(be.name, func(t *testing.T) {
					st := be.open(t)
					defer st.Close()
					for _, o := range owners {
						if err := st.PutOwner(o); err != nil {
							t.Fatal(err)
						}
						rcs, _ := ref.ListRecipients(o.ID)
						for _, rc := range rcs {
							if err := st.PutRecipient(rc); err != nil {
								t.Fatal(err)
							}
						}
						recs, _ := ref.ListReceipts(o.ID)
						for _, r := range recs {
							if err := st.AddReceipt(r); err != nil {
								t.Fatal(err)
							}
						}
					}
					for _, o := range owners {
						wantRcs, _ := ref.ListRecipients(o.ID)
						gotRcs, err := st.ListRecipients(o.ID)
						if err != nil || len(gotRcs) != len(wantRcs) {
							t.Fatalf("recipients of %q: got %+v, %v, want %+v", o.ID, gotRcs, err, wantRcs)
						}
						for j := range wantRcs {
							if gotRcs[j] != wantRcs[j] {
								t.Fatalf("recipient %d of %q diverges: got %+v want %+v", j, o.ID, gotRcs[j], wantRcs[j])
							}
						}
						wantRecs, _ := ref.ListReceipts(o.ID)
						gotRecs, err := st.ListReceipts(o.ID)
						if err != nil || len(gotRecs) != len(wantRecs) {
							t.Fatalf("receipts of %q: got %+v, %v, want %+v", o.ID, gotRecs, err, wantRecs)
						}
						for j := range wantRecs {
							if gotRecs[j].ID != wantRecs[j].ID || gotRecs[j].Recipient != wantRecs[j].Recipient {
								t.Fatalf("receipt %d of %q diverges: got %+v want %+v", j, o.ID, gotRecs[j], wantRecs[j])
							}
						}
					}
				})
			}
		})
	}
}
