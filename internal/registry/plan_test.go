package registry

// Plan-store durability: delivery plans are what lets /v1/deliver skip
// parsing entirely, so a stale, torn or mutated plan record is a
// correctness hazard, not an inconvenience. These tests hold the plan
// records to the same rigor the receipt log gets: torn-tail replay,
// future-version rejection, digest-mismatch refusal and Compact
// round-trips.

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// testPlan builds a valid plan record: the digest really names the
// canonical bytes, and the plan body is opaque-but-wellformed JSON.
func testPlan(owner, label string) PlanRecord {
	canonical := []byte("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n<db>" + label + "</db>\n")
	sum := sha256.Sum256(canonical)
	return PlanRecord{
		Owner:     owner,
		Digest:    hex.EncodeToString(sum[:]),
		Doc:       "doc-" + label,
		Canonical: canonical,
		Plan:      json.RawMessage(`{"version":1,"payload_bits":4,"sites":[]}`),
	}
}

func TestPlanStoreConformance(t *testing.T) {
	for name, st := range openStores(t) {
		t.Run(name, func(t *testing.T) {
			if err := st.PutOwner(testOwner("acme")); err != nil {
				t.Fatal(err)
			}
			// Owner gating.
			if err := st.PutPlan(testPlan("nobody", "a")); !errors.Is(err, ErrNotFound) {
				t.Errorf("PutPlan(unknown owner) = %v, want ErrNotFound", err)
			}
			if _, err := st.ListPlans("nobody"); !errors.Is(err, ErrNotFound) {
				t.Errorf("ListPlans(unknown owner) = %v, want ErrNotFound", err)
			}
			// Invalid records refused before they touch the log: missing
			// fields and — the critical one — a digest that does not
			// match the canonical bytes.
			mismatched := testPlan("acme", "a")
			mismatched.Canonical = append(mismatched.Canonical, ' ')
			for _, bad := range []PlanRecord{
				{},
				{Owner: "acme"},
				{Owner: "acme", Digest: "abcd"},
				{Owner: "acme", Digest: strings.Repeat("0", 64)},
				{Owner: "acme", Digest: strings.Repeat("0", 64), Plan: json.RawMessage(`{}`)},
				mismatched,
			} {
				if err := st.PutPlan(bad); err == nil {
					t.Errorf("PutPlan(%.60v...) accepted", bad)
				}
			}
			// Store, fetch, list, replace.
			pa, pb := testPlan("acme", "a"), testPlan("acme", "b")
			pa.CreatedUnix, pb.CreatedUnix = 100, 200
			if err := st.PutPlan(pa); err != nil {
				t.Fatal(err)
			}
			if err := st.PutPlan(pb); err != nil {
				t.Fatal(err)
			}
			got, err := st.GetPlan("acme", pa.Digest)
			if err != nil || got.Doc != "doc-a" || string(got.Canonical) == "" {
				t.Fatalf("GetPlan = %+v, %v", got, err)
			}
			if _, err := st.GetPlan("acme", strings.Repeat("f", 64)); !errors.Is(err, ErrNotFound) {
				t.Errorf("GetPlan(missing digest) = %v, want ErrNotFound", err)
			}
			// Re-putting the same digest replaces the payload but keeps
			// the original store time and ordering.
			pa2 := testPlan("acme", "a")
			pa2.Doc = "doc-a-v2"
			pa2.CreatedUnix = 999
			if err := st.PutPlan(pa2); err != nil {
				t.Fatal(err)
			}
			got, _ = st.GetPlan("acme", pa.Digest)
			if got.Doc != "doc-a-v2" || got.CreatedUnix != 100 {
				t.Errorf("re-put plan: %+v, want doc-a-v2 at CreatedUnix 100", got)
			}
			plans, err := st.ListPlans("acme")
			if err != nil || len(plans) != 2 || plans[0].Digest != pa.Digest || plans[1].Digest != pb.Digest {
				t.Fatalf("ListPlans = %d plans, %v", len(plans), err)
			}
		})
	}
}

// TestFilePlanPersistence: plans survive close/reopen and Compact, and
// Compact shrinks a log bloated by recompiles of the same document.
func TestFilePlanPersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "reg.jsonl")
	st, err := OpenFile(path, FileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	st.PutOwner(testOwner("acme"))
	// The same doc recompiled many times: one live plan, many log lines.
	for i := 0; i < 40; i++ {
		p := testPlan("acme", "hot")
		p.Doc = fmt.Sprintf("doc-rev-%d", i)
		if err := st.PutPlan(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.PutPlan(testPlan("acme", "cold")); err != nil {
		t.Fatal(err)
	}
	st.AddReceipt(testReceipt("acme", "r1"))
	st.Close()

	re, err := OpenFile(path, FileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	plans, err := re.ListPlans("acme")
	if err != nil || len(plans) != 2 {
		t.Fatalf("after reopen: %d plans, %v", len(plans), err)
	}
	if plans[0].Doc != "doc-rev-39" {
		t.Errorf("replay did not keep the last re-put: %+v", plans[0])
	}
	before, _ := re.LogSize()
	if err := re.Compact(); err != nil {
		t.Fatal(err)
	}
	after, _ := re.LogSize()
	if after >= before {
		t.Errorf("compaction did not shrink the plan-bloated log: %d -> %d", before, after)
	}
	re.Close()

	// The compacted log replays to the same live state.
	re2, err := OpenFile(path, FileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer re2.Close()
	plans, err = re2.ListPlans("acme")
	if err != nil || len(plans) != 2 || plans[0].Doc != "doc-rev-39" {
		t.Fatalf("after compacted reopen: %+v, %v", plans, err)
	}
	if recs, err := re2.ListReceipts("acme"); err != nil || len(recs) != 1 {
		t.Fatalf("receipts lost across plan compaction: %+v, %v", recs, err)
	}
}

// TestFilePlanTornTail: a crash mid-append of a plan line must truncate
// away cleanly, keeping every acknowledged plan.
func TestFilePlanTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "reg.jsonl")
	st, err := OpenFile(path, FileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	st.PutOwner(testOwner("acme"))
	good := testPlan("acme", "kept")
	if err := st.PutPlan(good); err != nil {
		t.Fatal(err)
	}
	st.Close()

	for _, torn := range []string{
		`{"t":"plan","v":1,"plan":{"owner":"acme","dig`,            // cut mid-record
		"{\"t\":\"plan\",\"v\":1,\"plan\":null}\n",                 // terminated but unusable
		"{\"t\":\"plan\",\"v\":1,\"plan\":{\"owner\":\"acme\"}}\n", // terminated, fails validation
	} {
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o600)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.WriteString(torn); err != nil {
			t.Fatal(err)
		}
		f.Close()
		re, err := OpenFile(path, FileOptions{})
		if err != nil {
			t.Fatalf("open with torn plan tail %q: %v", torn, err)
		}
		plans, err := re.ListPlans("acme")
		if err != nil || len(plans) != 1 || plans[0].Digest != good.Digest {
			t.Fatalf("torn tail %q: plans = %+v, %v", torn, plans, err)
		}
		// Appends land on a clean boundary afterwards.
		if err := re.PutPlan(testPlan("acme", "fresh")); err != nil {
			t.Fatal(err)
		}
		re.Close()
		resetPlanLog(t, path, good)
	}
}

// resetPlanLog rewrites the log to owner acme + one plan.
func resetPlanLog(t *testing.T, path string, p PlanRecord) {
	t.Helper()
	st, err := OpenFile(path, FileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	mem := NewMemory()
	mem.PutOwner(testOwner("acme"))
	mem.PutPlan(p)
	st.mem = mem
	if err := st.Compact(); err != nil {
		t.Fatal(err)
	}
}

// TestFilePlanVersionGate: a plan record from a future build fails the
// open when it is mid-log (real damage), and is dropped when it is the
// final line (torn write).
func TestFilePlanVersionGate(t *testing.T) {
	path := filepath.Join(t.TempDir(), "reg.jsonl")
	st, err := OpenFile(path, FileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	st.PutOwner(testOwner("acme"))
	st.Close()
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o600)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"t":"plan","v":99,"plan":{"owner":"acme"}}` + "\n")
	f.WriteString(`{"t":"recipient","v":1,"recipient":{"id":"y","owner":"acme"}}` + "\n")
	f.Close()
	if _, err := OpenFile(path, FileOptions{}); err == nil || !strings.Contains(err.Error(), "version 99") {
		t.Fatalf("open over future-versioned plan record = %v, want version error", err)
	}
}
