package registry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// KV is an embedded key/value Store in the bitcask mold: one
// append-only log under an exclusive flock, and an in-memory keydir
// mapping every live key to the offset of its latest record. Unlike
// File — which replays the whole log into a Memory store and serves
// reads from RAM — KV keeps only offsets resident; record bodies
// (including multi-megabyte delivery plans) stay on disk and are read
// back with ReadAt on demand. That trades a disk read per Get for a
// memory footprint proportional to the key count rather than the data
// size, which is the right shape for plan-heavy tenants.
//
// Crash-safety matches File: appends are fsync'd line+newline together,
// replay applies only newline-terminated lines, a corrupt final line is
// torn-write damage and is dropped, and a corrupt middle line fails the
// open.
type KV struct {
	mu   sync.RWMutex
	path string
	f    *os.File
	sync bool
	end  int64 // current log length; next append lands here

	keydir map[kvKey]kvLoc

	owners    map[string]struct{} // registered owner ids
	receipts  map[string][]string // owner -> receipt ids, insertion order
	recOrder  map[string][]string // owner -> recipient ids, first-registration order
	planOrder map[string][]string // owner -> plan digests, first-store order
}

// kvKey identifies one record. A struct key (rather than a joined
// string) sidesteps delimiter collisions: receipt ids and plan digests
// are caller-chosen strings.
type kvKey struct {
	kind  byte // 'o' owner, 'c' receipt, 'r' recipient, 'p' plan
	owner string
	id    string // empty for owners
}

// kvLoc is a record's location in the log: the whole line, terminator
// included.
type kvLoc struct {
	off int64
	n   int64
}

// KVRecordVersion gates the kv line format; replay rejects versions
// newer than this build understands.
const KVRecordVersion = 1

// kvLine is one JSONL record: the key fields plus the record body as
// raw JSON (an Owner, Receipt, Recipient or PlanRecord per T).
type kvLine struct {
	V int             `json:"v"`
	T string          `json:"t"`           // "owner" / "receipt" / "recipient" / "plan"
	O string          `json:"o"`           // owner id
	K string          `json:"k,omitempty"` // record id within the owner (receipt/recipient id, plan digest)
	D json.RawMessage `json:"d"`           // the record itself
}

// OpenKV opens (or creates) a KV registry log and indexes it. The same
// FileOptions knobs apply: NoSync trades durability for throughput,
// CompactOnOpen drops superseded records right after replay.
func OpenKV(path string, opts FileOptions) (*KV, error) {
	f, err := openLocked(path)
	if err != nil {
		return nil, err
	}
	kv := &KV{
		path:      path,
		f:         f,
		sync:      !opts.NoSync,
		keydir:    make(map[kvKey]kvLoc),
		owners:    make(map[string]struct{}),
		receipts:  make(map[string][]string),
		recOrder:  make(map[string][]string),
		planOrder: make(map[string][]string),
	}
	if err := kv.replay(); err != nil {
		f.Close()
		return nil, err
	}
	if opts.CompactOnOpen {
		if err := kv.Compact(); err != nil {
			kv.f.Close()
			return nil, err
		}
	}
	return kv, nil
}

// replay scans the log, building the keydir and order slices. The
// torn-tail rules mirror File.replay.
func (kv *KV) replay() error {
	if _, err := kv.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	rd := bufio.NewReaderSize(kv.f, 1<<16)
	var good int64
	for lineNo := 1; ; lineNo++ {
		line, err := rd.ReadBytes('\n')
		if err != nil && err != io.EOF {
			return fmt.Errorf("registry: read %s: %w", kv.path, err)
		}
		if len(line) == 0 || line[len(line)-1] != '\n' {
			break // unterminated tail (or clean EOF): truncate from good
		}
		if aerr := kv.applyLine(line, good); aerr != nil {
			if _, perr := rd.Peek(1); perr == io.EOF {
				break // corrupt final line: torn write, drop it
			}
			return fmt.Errorf("registry: %s line %d: %w", kv.path, lineNo, aerr)
		}
		good += int64(len(line))
		if err == io.EOF {
			break
		}
	}
	if err := kv.f.Truncate(good); err != nil {
		return fmt.Errorf("registry: truncate torn tail of %s: %w", kv.path, err)
	}
	kv.end = good
	return nil
}

// applyLine indexes one replayed line at offset off. Later records for
// a key supersede earlier ones in the keydir but keep the key's
// original order slot, matching the Memory/File re-put semantics.
func (kv *KV) applyLine(line []byte, off int64) error {
	var rec kvLine
	if err := json.Unmarshal(line, &rec); err != nil {
		return err
	}
	if rec.V > KVRecordVersion {
		return fmt.Errorf("kv record version %d is newer than this build supports (%d)", rec.V, KVRecordVersion)
	}
	var kind byte
	switch rec.T {
	case "owner":
		kind = 'o'
	case "receipt":
		kind = 'c'
	case "recipient":
		kind = 'r'
	case "plan":
		kind = 'p'
	default:
		return fmt.Errorf("unknown kv record type %q", rec.T)
	}
	if rec.O == "" || len(rec.D) == 0 {
		return fmt.Errorf("kv %s line without owner or body", rec.T)
	}
	if kind != 'o' && rec.K == "" {
		return fmt.Errorf("kv %s line without id", rec.T)
	}
	key := kvKey{kind: kind, owner: rec.O, id: rec.K}
	if _, seen := kv.keydir[key]; !seen {
		switch kind {
		case 'o':
			kv.owners[rec.O] = struct{}{}
		case 'c':
			kv.receipts[rec.O] = append(kv.receipts[rec.O], rec.K)
		case 'r':
			kv.recOrder[rec.O] = append(kv.recOrder[rec.O], rec.K)
		case 'p':
			kv.planOrder[rec.O] = append(kv.planOrder[rec.O], rec.K)
		}
	}
	kv.keydir[key] = kvLoc{off: off, n: int64(len(line))}
	return nil
}

// appendLocked writes one record and indexes it. Callers hold kv.mu.
func (kv *KV) appendLocked(kind byte, t, owner, id string, record any) error {
	body, err := json.Marshal(record)
	if err != nil {
		return err
	}
	data, err := json.Marshal(kvLine{V: KVRecordVersion, T: t, O: owner, K: id, D: body})
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if _, err := kv.f.Write(data); err != nil {
		return fmt.Errorf("registry: append to %s: %w", kv.path, err)
	}
	if kv.sync {
		if err := kv.f.Sync(); err != nil {
			return fmt.Errorf("registry: sync %s: %w", kv.path, err)
		}
	}
	key := kvKey{kind: kind, owner: owner, id: id}
	if _, seen := kv.keydir[key]; !seen {
		switch kind {
		case 'o':
			kv.owners[owner] = struct{}{}
		case 'c':
			kv.receipts[owner] = append(kv.receipts[owner], id)
		case 'r':
			kv.recOrder[owner] = append(kv.recOrder[owner], id)
		case 'p':
			kv.planOrder[owner] = append(kv.planOrder[owner], id)
		}
	}
	kv.keydir[key] = kvLoc{off: kv.end, n: int64(len(data))}
	kv.end += int64(len(data))
	return nil
}

// readLocked fetches and decodes the record at key into out. Callers
// hold kv.mu (either mode — ReadAt does not move the append position).
func (kv *KV) readLocked(key kvKey, out any) error {
	loc, ok := kv.keydir[key]
	if !ok {
		return ErrNotFound
	}
	buf := make([]byte, loc.n)
	if _, err := kv.f.ReadAt(buf, loc.off); err != nil {
		return fmt.Errorf("registry: read %s @%d: %w", kv.path, loc.off, err)
	}
	var rec kvLine
	if err := json.Unmarshal(buf, &rec); err != nil {
		return fmt.Errorf("registry: decode %s @%d: %w", kv.path, loc.off, err)
	}
	if err := json.Unmarshal(rec.D, out); err != nil {
		return fmt.Errorf("registry: decode %s @%d: %w", kv.path, loc.off, err)
	}
	return nil
}

// PutOwner registers or replaces an owner, durably.
func (kv *KV) PutOwner(o Owner) error {
	if err := o.Validate(); err != nil {
		return err
	}
	kv.mu.Lock()
	defer kv.mu.Unlock()
	return kv.appendLocked('o', "owner", o.ID, "", o)
}

// GetOwner returns the owner or ErrNotFound.
func (kv *KV) GetOwner(id string) (Owner, error) {
	kv.mu.RLock()
	defer kv.mu.RUnlock()
	var o Owner
	if err := kv.readLocked(kvKey{kind: 'o', owner: id}, &o); err != nil {
		return Owner{}, err
	}
	return o, nil
}

// ListOwners returns every owner, id-sorted.
func (kv *KV) ListOwners() ([]Owner, error) {
	kv.mu.RLock()
	defer kv.mu.RUnlock()
	ids := make([]string, 0, len(kv.owners))
	for id := range kv.owners {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	out := make([]Owner, 0, len(ids))
	for _, id := range ids {
		var o Owner
		if err := kv.readLocked(kvKey{kind: 'o', owner: id}, &o); err != nil {
			return nil, err
		}
		out = append(out, o)
	}
	return out, nil
}

// AddReceipt appends a receipt; (owner, id) must be new, the owner must
// exist.
func (kv *KV) AddReceipt(r Receipt) error {
	if err := validateReceipt(r); err != nil {
		return err
	}
	kv.mu.Lock()
	defer kv.mu.Unlock()
	if _, ok := kv.owners[r.Owner]; !ok {
		return ErrNotFound
	}
	if _, dup := kv.keydir[kvKey{kind: 'c', owner: r.Owner, id: r.ID}]; dup {
		return ErrDuplicate
	}
	return kv.appendLocked('c', "receipt", r.Owner, r.ID, r)
}

// GetReceipt returns one receipt or ErrNotFound.
func (kv *KV) GetReceipt(owner, id string) (Receipt, error) {
	kv.mu.RLock()
	defer kv.mu.RUnlock()
	var r Receipt
	if err := kv.readLocked(kvKey{kind: 'c', owner: owner, id: id}, &r); err != nil {
		return Receipt{}, err
	}
	return r, nil
}

// ListReceipts returns an owner's receipts in insertion order.
func (kv *KV) ListReceipts(owner string) ([]Receipt, error) {
	kv.mu.RLock()
	defer kv.mu.RUnlock()
	if _, ok := kv.owners[owner]; !ok {
		return nil, ErrNotFound
	}
	out := make([]Receipt, 0, len(kv.receipts[owner]))
	for _, id := range kv.receipts[owner] {
		var r Receipt
		if err := kv.readLocked(kvKey{kind: 'c', owner: owner, id: id}, &r); err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// PutRecipient registers (or re-labels) a recipient; the owner must
// exist. Re-putting an existing id keeps the original registration time
// and ordering.
func (kv *KV) PutRecipient(rc Recipient) error {
	if err := rc.Validate(); err != nil {
		return err
	}
	kv.mu.Lock()
	defer kv.mu.Unlock()
	if _, ok := kv.owners[rc.Owner]; !ok {
		return ErrNotFound
	}
	var old Recipient
	if err := kv.readLocked(kvKey{kind: 'r', owner: rc.Owner, id: rc.ID}, &old); err == nil {
		if rc.CreatedUnix == 0 || (old.CreatedUnix != 0 && old.CreatedUnix < rc.CreatedUnix) {
			rc.CreatedUnix = old.CreatedUnix
		}
	}
	return kv.appendLocked('r', "recipient", rc.Owner, rc.ID, rc)
}

// GetRecipient returns one recipient or ErrNotFound.
func (kv *KV) GetRecipient(owner, id string) (Recipient, error) {
	kv.mu.RLock()
	defer kv.mu.RUnlock()
	var rc Recipient
	if err := kv.readLocked(kvKey{kind: 'r', owner: owner, id: id}, &rc); err != nil {
		return Recipient{}, err
	}
	return rc, nil
}

// ListRecipients returns an owner's recipients in first-registration
// order.
func (kv *KV) ListRecipients(owner string) ([]Recipient, error) {
	kv.mu.RLock()
	defer kv.mu.RUnlock()
	if _, ok := kv.owners[owner]; !ok {
		return nil, ErrNotFound
	}
	out := make([]Recipient, 0, len(kv.recOrder[owner]))
	for _, id := range kv.recOrder[owner] {
		var rc Recipient
		if err := kv.readLocked(kvKey{kind: 'r', owner: owner, id: id}, &rc); err != nil {
			return nil, err
		}
		out = append(out, rc)
	}
	return out, nil
}

// PutPlan stores or replaces a compiled delivery plan; the owner must
// exist. Re-putting a digest keeps the original store time and
// ordering.
func (kv *KV) PutPlan(p PlanRecord) error {
	if err := p.Validate(); err != nil {
		return err
	}
	kv.mu.Lock()
	defer kv.mu.Unlock()
	if _, ok := kv.owners[p.Owner]; !ok {
		return ErrNotFound
	}
	var old PlanRecord
	if err := kv.readLocked(kvKey{kind: 'p', owner: p.Owner, id: p.Digest}, &old); err == nil {
		if p.CreatedUnix == 0 || (old.CreatedUnix != 0 && old.CreatedUnix < p.CreatedUnix) {
			p.CreatedUnix = old.CreatedUnix
		}
	}
	return kv.appendLocked('p', "plan", p.Owner, p.Digest, p)
}

// GetPlan returns the plan for (owner, digest) or ErrNotFound.
func (kv *KV) GetPlan(owner, digest string) (PlanRecord, error) {
	kv.mu.RLock()
	defer kv.mu.RUnlock()
	var p PlanRecord
	if err := kv.readLocked(kvKey{kind: 'p', owner: owner, id: digest}, &p); err != nil {
		return PlanRecord{}, err
	}
	return p, nil
}

// ListPlans returns an owner's plans in first-store order.
func (kv *KV) ListPlans(owner string) ([]PlanRecord, error) {
	kv.mu.RLock()
	defer kv.mu.RUnlock()
	if _, ok := kv.owners[owner]; !ok {
		return nil, ErrNotFound
	}
	out := make([]PlanRecord, 0, len(kv.planOrder[owner]))
	for _, d := range kv.planOrder[owner] {
		var p PlanRecord
		if err := kv.readLocked(kvKey{kind: 'p', owner: owner, id: d}, &p); err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// Compact rewrites the log to one line per live key, in the canonical
// order (owners id-sorted, then each owner's recipients, plans and
// receipts in listing order), and rebuilds the keydir against the new
// offsets. Unlike File.Compact this holds the write lock throughout:
// the rewrite copies raw line bytes with no JSON round-trip, so for the
// keydir-sized states KV targets the pause is short, and a non-stalling
// variant would have to version every offset in the keydir across the
// swap.
func (kv *KV) Compact() error {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	dir := filepath.Dir(kv.path)
	tmp, err := os.CreateTemp(dir, filepath.Base(kv.path)+".compact-*")
	if err != nil {
		return fmt.Errorf("registry: compact: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after the rename succeeds
	w := bufio.NewWriterSize(tmp, 1<<16)
	newDir := make(map[kvKey]kvLoc, len(kv.keydir))
	var off int64
	copyLine := func(key kvKey) error {
		loc, ok := kv.keydir[key]
		if !ok {
			return fmt.Errorf("keydir missing %c/%s/%s", key.kind, key.owner, key.id)
		}
		buf := make([]byte, loc.n)
		if _, err := kv.f.ReadAt(buf, loc.off); err != nil {
			return err
		}
		if _, err := w.Write(buf); err != nil {
			return err
		}
		newDir[key] = kvLoc{off: off, n: loc.n}
		off += loc.n
		return nil
	}
	fail := func(err error) error {
		tmp.Close()
		return fmt.Errorf("registry: compact: %w", err)
	}
	ownerIDs := make([]string, 0, len(kv.owners))
	for id := range kv.owners {
		ownerIDs = append(ownerIDs, id)
	}
	sort.Strings(ownerIDs)
	for _, id := range ownerIDs {
		if err := copyLine(kvKey{kind: 'o', owner: id}); err != nil {
			return fail(err)
		}
	}
	for _, owner := range ownerIDs {
		for _, id := range kv.recOrder[owner] {
			if err := copyLine(kvKey{kind: 'r', owner: owner, id: id}); err != nil {
				return fail(err)
			}
		}
		for _, d := range kv.planOrder[owner] {
			if err := copyLine(kvKey{kind: 'p', owner: owner, id: d}); err != nil {
				return fail(err)
			}
		}
		for _, id := range kv.receipts[owner] {
			if err := copyLine(kvKey{kind: 'c', owner: owner, id: id}); err != nil {
				return fail(err)
			}
		}
	}
	if err := w.Flush(); err != nil {
		return fail(err)
	}
	if err := tmp.Sync(); err != nil {
		return fail(err)
	}
	// Same invariant as File.Compact: lock the replacement before the
	// rename makes it visible, so the swapped-in file is never
	// observable unlocked.
	if err := lockFile(tmp); err != nil {
		return fail(err)
	}
	if err := os.Rename(tmp.Name(), kv.path); err != nil {
		return fail(err)
	}
	old := kv.f
	kv.f = tmp
	kv.keydir = newDir
	kv.end = off
	old.Close()
	return nil
}

// LogSize reports the current log length in bytes.
func (kv *KV) LogSize() (int64, error) {
	kv.mu.RLock()
	defer kv.mu.RUnlock()
	return kv.end, nil
}

// Close releases the lock and the file handle.
func (kv *KV) Close() error {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	return kv.f.Close()
}

var _ Store = (*KV)(nil)
