package registry

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"wmxml/internal/core"
)

func testOwner(id string) Owner {
	return Owner{ID: id, Key: "k-" + id, Mark: "(C) " + id, Dataset: "pubs", Gamma: 5}
}

func testReceipt(owner, id string) Receipt {
	return Receipt{
		ID:    id,
		Owner: owner,
		Doc:   "doc-" + id,
		Records: []core.QueryRecord{
			{ID: "u1", Query: "db/book[title='X']/year", Type: "integer", Target: "db/book/year"},
			{ID: "u2", Query: "db/book[title='Y']/price", Type: "decimal", Target: "db/book/price"},
		},
		BandwidthUnits: 40, Carriers: 2, ValuesWritten: 3,
	}
}

// openStores builds one store per implementation over the same test
// scenario; the returned cleanup closes them.
func openStores(t *testing.T) map[string]Store {
	t.Helper()
	dir := t.TempDir()
	fileStore, err := OpenFile(filepath.Join(dir, "reg.jsonl"), FileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fileStore.Close() })
	return map[string]Store{"memory": NewMemory(), "file": fileStore}
}

// TestStoreConformance runs the Store contract over both
// implementations.
func TestStoreConformance(t *testing.T) {
	for name, st := range openStores(t) {
		t.Run(name, func(t *testing.T) {
			// Missing owner.
			if _, err := st.GetOwner("nobody"); !errors.Is(err, ErrNotFound) {
				t.Errorf("GetOwner(missing) = %v, want ErrNotFound", err)
			}
			if _, err := st.ListReceipts("nobody"); !errors.Is(err, ErrNotFound) {
				t.Errorf("ListReceipts(missing) = %v, want ErrNotFound", err)
			}
			// Invalid owners.
			for _, bad := range []Owner{
				{},
				{ID: "a/b", Key: "k", Mark: "m", Dataset: "pubs"},
				{ID: "a", Mark: "m", Dataset: "pubs"},
				{ID: "a", Key: "k", Dataset: "pubs"},
				{ID: "a", Key: "k", Mark: "m"},
				{ID: "a", Key: "k", Mark: "m", Dataset: "pubs", Spec: json.RawMessage(`{}`)},
			} {
				if err := st.PutOwner(bad); err == nil {
					t.Errorf("PutOwner(%+v) accepted", bad)
				}
			}
			// Register, fetch, overwrite.
			if err := st.PutOwner(testOwner("acme")); err != nil {
				t.Fatal(err)
			}
			if err := st.PutOwner(testOwner("zeta")); err != nil {
				t.Fatal(err)
			}
			got, err := st.GetOwner("acme")
			if err != nil || got.Key != "k-acme" {
				t.Fatalf("GetOwner(acme) = %+v, %v", got, err)
			}
			upd := testOwner("acme")
			upd.Gamma = 9
			if err := st.PutOwner(upd); err != nil {
				t.Fatal(err)
			}
			if got, _ := st.GetOwner("acme"); got.Gamma != 9 {
				t.Errorf("owner overwrite lost: %+v", got)
			}
			owners, err := st.ListOwners()
			if err != nil || len(owners) != 2 || owners[0].ID != "acme" || owners[1].ID != "zeta" {
				t.Fatalf("ListOwners = %+v, %v", owners, err)
			}
			// Receipts.
			if err := st.AddReceipt(testReceipt("nobody", "r1")); !errors.Is(err, ErrNotFound) {
				t.Errorf("AddReceipt(unknown owner) = %v, want ErrNotFound", err)
			}
			if err := st.AddReceipt(Receipt{ID: "r1", Owner: "acme"}); err == nil {
				t.Errorf("AddReceipt without records accepted")
			}
			if err := st.AddReceipt(testReceipt("acme", "r1")); err != nil {
				t.Fatal(err)
			}
			if err := st.AddReceipt(testReceipt("acme", "r2")); err != nil {
				t.Fatal(err)
			}
			if err := st.AddReceipt(testReceipt("acme", "r1")); !errors.Is(err, ErrDuplicate) {
				t.Errorf("duplicate receipt = %v, want ErrDuplicate", err)
			}
			r, err := st.GetReceipt("acme", "r2")
			if err != nil || r.Doc != "doc-r2" || len(r.Records) != 2 {
				t.Fatalf("GetReceipt = %+v, %v", r, err)
			}
			if _, err := st.GetReceipt("acme", "r9"); !errors.Is(err, ErrNotFound) {
				t.Errorf("GetReceipt(missing) = %v, want ErrNotFound", err)
			}
			recs, err := st.ListReceipts("acme")
			if err != nil || len(recs) != 2 || recs[0].ID != "r1" || recs[1].ID != "r2" {
				t.Fatalf("ListReceipts = %+v, %v", recs, err)
			}
			if recs, _ := st.ListReceipts("zeta"); len(recs) != 0 {
				t.Errorf("zeta has receipts: %+v", recs)
			}
			// Recipients.
			if _, err := st.ListRecipients("nobody"); !errors.Is(err, ErrNotFound) {
				t.Errorf("ListRecipients(missing owner) = %v, want ErrNotFound", err)
			}
			if err := st.PutRecipient(Recipient{ID: "mirror", Owner: "nobody"}); !errors.Is(err, ErrNotFound) {
				t.Errorf("PutRecipient(unknown owner) = %v, want ErrNotFound", err)
			}
			for _, bad := range []Recipient{{}, {ID: "a b", Owner: "acme"}, {ID: "a/b", Owner: "acme"}, {ID: "ok"}} {
				if err := st.PutRecipient(bad); err == nil {
					t.Errorf("PutRecipient(%+v) accepted", bad)
				}
			}
			if err := st.PutRecipient(Recipient{ID: "mirror", Owner: "acme", Note: "EU", CreatedUnix: 100}); err != nil {
				t.Fatal(err)
			}
			if err := st.PutRecipient(Recipient{ID: "archive", Owner: "acme", CreatedUnix: 200}); err != nil {
				t.Fatal(err)
			}
			// Re-put updates the note but keeps registration time and order.
			if err := st.PutRecipient(Recipient{ID: "mirror", Owner: "acme", Note: "EU-2", CreatedUnix: 300}); err != nil {
				t.Fatal(err)
			}
			rc, err := st.GetRecipient("acme", "mirror")
			if err != nil || rc.Note != "EU-2" || rc.CreatedUnix != 100 {
				t.Fatalf("GetRecipient after re-put = %+v, %v", rc, err)
			}
			if _, err := st.GetRecipient("acme", "ghost"); !errors.Is(err, ErrNotFound) {
				t.Errorf("GetRecipient(missing) = %v, want ErrNotFound", err)
			}
			rcs, err := st.ListRecipients("acme")
			if err != nil || len(rcs) != 2 || rcs[0].ID != "mirror" || rcs[1].ID != "archive" {
				t.Fatalf("ListRecipients = %+v, %v", rcs, err)
			}
			if rcs, _ := st.ListRecipients("zeta"); len(rcs) != 0 {
				t.Errorf("zeta has recipients: %+v", rcs)
			}
		})
	}
}

// TestFilePersistence: state written through one File handle is fully
// visible after reopening the same path.
func TestFilePersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "reg.jsonl")
	st, err := OpenFile(path, FileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.PutOwner(testOwner("acme")); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"r1", "r2", "r3"} {
		if err := st.AddReceipt(testReceipt("acme", id)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenFile(path, FileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	recs, err := re.ListReceipts("acme")
	if err != nil || len(recs) != 3 {
		t.Fatalf("after reopen: %d receipts, %v", len(recs), err)
	}
	if recs[2].Records[0].Query != "db/book[title='X']/year" {
		t.Errorf("receipt content lost: %+v", recs[2])
	}
	// And the reopened handle still appends.
	if err := re.AddReceipt(testReceipt("acme", "r4")); err != nil {
		t.Fatal(err)
	}
}

// TestFileRecipientPersistence: recipient records survive reopen,
// compaction, and carry their version tag in the log.
func TestFileRecipientPersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "reg.jsonl")
	st, err := OpenFile(path, FileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.PutOwner(testOwner("acme")); err != nil {
		t.Fatal(err)
	}
	if err := st.PutRecipient(Recipient{ID: "mirror", Owner: "acme", Note: "EU", CreatedUnix: 7}); err != nil {
		t.Fatal(err)
	}
	if err := st.PutRecipient(Recipient{ID: "archive", Owner: "acme", CreatedUnix: 8}); err != nil {
		t.Fatal(err)
	}
	rec := testReceipt("acme", "fp-1")
	rec.Recipient = "mirror"
	if err := st.AddReceipt(rec); err != nil {
		t.Fatal(err)
	}
	st.Close()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"t":"recipient","v":1`) {
		t.Errorf("recipient log line is not version-tagged:\n%s", data)
	}

	re, err := OpenFile(path, FileOptions{CompactOnOpen: true})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	rcs, err := re.ListRecipients("acme")
	if err != nil || len(rcs) != 2 || rcs[0].ID != "mirror" || rcs[0].Note != "EU" {
		t.Fatalf("recipients after compacted reopen = %+v, %v", rcs, err)
	}
	got, err := re.GetReceipt("acme", "fp-1")
	if err != nil || got.Recipient != "mirror" {
		t.Fatalf("fingerprint receipt lost its recipient: %+v, %v", got, err)
	}
}

// TestFileRecipientVersionGate: a recipient record from a newer build
// fails the open (it is not silently dropped).
func TestFileRecipientVersionGate(t *testing.T) {
	path := filepath.Join(t.TempDir(), "reg.jsonl")
	st, err := OpenFile(path, FileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	st.PutOwner(testOwner("acme"))
	st.Close()
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o600)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"t":"recipient","v":99,"recipient":{"id":"x","owner":"acme"}}` + "\n")
	// A valid line after it makes the versioned line mid-log damage,
	// which must fail loudly rather than vanish.
	f.WriteString(`{"t":"recipient","v":1,"recipient":{"id":"y","owner":"acme"}}` + "\n")
	f.Close()
	if _, err := OpenFile(path, FileOptions{}); err == nil || !strings.Contains(err.Error(), "version 99") {
		t.Fatalf("open over future-versioned record = %v, want version error", err)
	}
}

// TestFileTornTail: a crash mid-append leaves a partial final line; the
// store must open cleanly with every acknowledged record intact.
func TestFileTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "reg.jsonl")
	st, err := OpenFile(path, FileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.PutOwner(testOwner("acme")); err != nil {
		t.Fatal(err)
	}
	if err := st.AddReceipt(testReceipt("acme", "r1")); err != nil {
		t.Fatal(err)
	}
	st.Close()

	for _, torn := range []string{
		`{"t":"receipt","receipt":{"id":"r2","ow`, // cut mid-record, no newline
		`{"t":"receipt","rec###garbage###`,        // cut into garbage
		"{\"t\":\"receipt\",\"receipt\":null}\n",  // terminated but unusable final line
	} {
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o600)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.WriteString(torn); err != nil {
			t.Fatal(err)
		}
		f.Close()

		re, err := OpenFile(path, FileOptions{})
		if err != nil {
			t.Fatalf("open with torn tail %q: %v", torn, err)
		}
		recs, err := re.ListReceipts("acme")
		if err != nil || len(recs) != 1 || recs[0].ID != "r1" {
			t.Fatalf("torn tail %q: receipts = %+v, %v", torn, recs, err)
		}
		// The tail was truncated away, so a fresh append lands on a
		// clean line boundary.
		if err := re.AddReceipt(testReceipt("acme", "x-"+torn[:4])); err != nil {
			t.Fatal(err)
		}
		re.Close()
		// Remove the extra receipt to keep iterations independent.
		resetTo(t, path, "acme", "r1")
	}
}

// resetTo rewrites the log to owner + a single receipt.
func resetTo(t *testing.T, path, owner, receipt string) {
	t.Helper()
	st, err := OpenFile(path, FileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	mem := NewMemory()
	mem.PutOwner(testOwner(owner))
	mem.AddReceipt(testReceipt(owner, receipt))
	st.mem = mem
	if err := st.Compact(); err != nil {
		t.Fatal(err)
	}
}

// TestFileCorruptMiddleFails: damage before the end of the log is not
// silently dropped.
func TestFileCorruptMiddleFails(t *testing.T) {
	path := filepath.Join(t.TempDir(), "reg.jsonl")
	st, err := OpenFile(path, FileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	st.PutOwner(testOwner("acme"))
	st.AddReceipt(testReceipt("acme", "r1"))
	st.Close()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(data), "\n")
	lines[0] = "###corrupt###\n"
	if err := os.WriteFile(path, []byte(strings.Join(lines, "")), 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFile(path, FileOptions{}); err == nil {
		t.Fatal("open succeeded over mid-log corruption")
	}
}

// TestFileCompact: compaction collapses superseded owner lines, keeps
// all live state, and the compacted log replays identically.
func TestFileCompact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "reg.jsonl")
	st, err := OpenFile(path, FileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// 50 re-registrations of the same owner bloat the log.
	for i := 0; i < 50; i++ {
		o := testOwner("acme")
		o.Gamma = i + 1
		if err := st.PutOwner(o); err != nil {
			t.Fatal(err)
		}
	}
	st.AddReceipt(testReceipt("acme", "r1"))
	st.AddReceipt(testReceipt("acme", "r2"))
	before, _ := st.LogSize()
	if err := st.Compact(); err != nil {
		t.Fatal(err)
	}
	after, _ := st.LogSize()
	if after >= before {
		t.Errorf("compaction did not shrink the log: %d -> %d bytes", before, after)
	}
	// State survives compaction in the live handle...
	if o, _ := st.GetOwner("acme"); o.Gamma != 50 {
		t.Errorf("owner after compact: %+v", o)
	}
	// ...and appends still work on the swapped file handle.
	if err := st.AddReceipt(testReceipt("acme", "r3")); err != nil {
		t.Fatal(err)
	}
	st.Close()

	re, err := OpenFile(path, FileOptions{CompactOnOpen: true})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	recs, err := re.ListReceipts("acme")
	if err != nil || len(recs) != 3 {
		t.Fatalf("after compacted reopen: %d receipts, %v", len(recs), err)
	}
	if o, _ := re.GetOwner("acme"); o.Gamma != 50 {
		t.Errorf("owner after compacted reopen: %+v", o)
	}
}

// TestFileNoSync exercises the NoSync fast path (same semantics, no
// per-append fsync).
func TestFileNoSync(t *testing.T) {
	path := filepath.Join(t.TempDir(), "reg.jsonl")
	st, err := OpenFile(path, FileOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	st.PutOwner(testOwner("acme"))
	st.AddReceipt(testReceipt("acme", "r1"))
	st.Close()
	re, err := OpenFile(path, FileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if _, err := re.GetReceipt("acme", "r1"); err != nil {
		t.Fatal(err)
	}
}
