//go:build unix

package registry

import (
	"errors"
	"fmt"
	"os"
	"syscall"
)

// lockFile takes an exclusive, non-blocking advisory lock on f. A
// second process holding the lock means another registry handle owns
// the log — replaying, truncating or appending alongside it would
// corrupt the file, so open fails fast instead.
func lockFile(f *os.File) error {
	err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB)
	if errors.Is(err, syscall.EWOULDBLOCK) || errors.Is(err, syscall.EAGAIN) {
		return fmt.Errorf("registry: %s is in use by another process", f.Name())
	}
	if err != nil {
		return fmt.Errorf("registry: lock %s: %w", f.Name(), err)
	}
	return nil
}
