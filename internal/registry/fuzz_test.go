package registry

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// replaySeeds is the FuzzReplay seed corpus. The conformance suite
// reuses it: every state a File replays out of a seed must round-trip
// identically into every other backend.
var replaySeeds = []string{
	// Clean log with every record type, including a versioned
	// recipient line.
	`{"t":"owner","owner":{"id":"a","key":"k","mark":"m","dataset":"pubs"}}
{"t":"recipient","v":1,"recipient":{"id":"r1","owner":"a","note":"EU"}}
{"t":"receipt","receipt":{"id":"x","owner":"a","records":[{"id":"u","query":"q","type":"integer"}],"recipient":"r1"}}
`,
	// Torn tail: crash mid-append.
	`{"t":"owner","owner":{"id":"a","key":"k","mark":"m","dataset":"pubs"}}
{"t":"recipient","v":1,"recipient":{"id":"r1","ow`,
	// Terminated but garbage final line.
	`{"t":"owner","owner":{"id":"a","key":"k","mark":"m","dataset":"pubs"}}
###garbage###
`,
	// Garbage in the middle: must fail the open.
	`###garbage###
{"t":"owner","owner":{"id":"a","key":"k","mark":"m","dataset":"pubs"}}
`,
	// Recipient record from a future build.
	`{"t":"owner","owner":{"id":"a","key":"k","mark":"m","dataset":"pubs"}}
{"t":"recipient","v":99,"recipient":{"id":"r1","owner":"a"}}
`,
	// Recipient before its owner: invalid order.
	`{"t":"recipient","v":1,"recipient":{"id":"r1","owner":"ghost"}}
`,
	// Unknown record type, empty file, raw zeros.
	`{"t":"wormhole","owner":{"id":"a","key":"k","mark":"m","dataset":"pubs"}}
`,
	"",
	"\x00\x00\x00\n",
}

// FuzzReplay feeds arbitrary bytes to the JSONL replay path. The
// invariants, whatever the input:
//
//   - OpenFile never panics; it either opens or returns an error.
//   - If it opens, the replayed state equals applying every terminated
//     line in order (the reference below) — valid records are never
//     silently dropped, and only the final line may have been treated
//     as crash damage.
//   - An opened store remains fully usable: registering an owner, a
//     recipient and a receipt must work on top of whatever survived.
func FuzzReplay(f *testing.F) {
	for _, s := range replaySeeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "reg.jsonl")
		if err := os.WriteFile(path, data, 0o600); err != nil {
			t.Skip()
		}
		st, err := OpenFile(path, FileOptions{NoSync: true})
		if err != nil {
			return // rejected inputs are fine; panics are not
		}
		defer st.Close()

		// Reference: apply every newline-terminated line in order
		// through the same record semantics.
		ref := &File{mem: NewMemory()}
		var lines []string
		for _, l := range strings.SplitAfter(string(data), "\n") {
			if strings.HasSuffix(l, "\n") {
				lines = append(lines, l)
			}
		}
		for i, line := range lines {
			if aerr := ref.apply([]byte(line)); aerr != nil {
				if i == len(lines)-1 {
					break // final-line damage: replay drops it too
				}
				t.Fatalf("open succeeded but line %d/%d is invalid: %v", i+1, len(lines), aerr)
			}
		}
		assertSameState(t, st.mem, ref.mem)

		// Whatever survived, the store must still accept new records.
		if err := st.PutOwner(testOwner("fuzz-owner")); err != nil {
			t.Fatalf("store not appendable after replay: %v", err)
		}
		if err := st.PutRecipient(Recipient{ID: "fuzz-rcpt", Owner: "fuzz-owner"}); err != nil {
			t.Fatalf("recipient append after replay: %v", err)
		}
		if err := st.AddReceipt(testReceipt("fuzz-owner", "fuzz-receipt")); err != nil {
			t.Fatalf("receipt append after replay: %v", err)
		}
	})
}

// assertSameState compares the replayed store against the reference.
func assertSameState(t *testing.T, got, want *Memory) {
	t.Helper()
	go1, _ := got.ListOwners()
	wo1, _ := want.ListOwners()
	if !reflect.DeepEqual(go1, wo1) {
		t.Fatalf("owners diverge:\n got %+v\nwant %+v", go1, wo1)
	}
	for _, o := range wo1 {
		grc, _ := got.ListRecipients(o.ID)
		wrc, _ := want.ListRecipients(o.ID)
		if !reflect.DeepEqual(grc, wrc) {
			t.Fatalf("recipients of %q diverge:\n got %+v\nwant %+v", o.ID, grc, wrc)
		}
		gr, _ := got.ListReceipts(o.ID)
		wr, _ := want.ListReceipts(o.ID)
		if !reflect.DeepEqual(gr, wr) {
			t.Fatalf("receipts of %q diverge:\n got %+v\nwant %+v", o.ID, gr, wr)
		}
	}
}
