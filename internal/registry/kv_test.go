package registry

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestKVTornTail: KV inherits the File crash rules — a torn or garbage
// final line is dropped, acknowledged records survive, and the handle
// keeps appending on a clean boundary.
func TestKVTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "reg.kv")
	st, err := OpenKV(path, FileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.PutOwner(testOwner("acme")); err != nil {
		t.Fatal(err)
	}
	if err := st.AddReceipt(testReceipt("acme", "r1")); err != nil {
		t.Fatal(err)
	}
	st.Close()

	for _, torn := range []string{
		`{"v":1,"t":"receipt","o":"acme","k":"r2","d":{"id":"r2","ow`,
		`{"v":1,"t":###garbage###`,
	} {
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o600)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.WriteString(torn); err != nil {
			t.Fatal(err)
		}
		f.Close()

		re, err := OpenKV(path, FileOptions{})
		if err != nil {
			t.Fatalf("open with torn tail %q: %v", torn, err)
		}
		if _, err := re.GetReceipt("acme", "r1"); err != nil {
			t.Fatalf("torn tail %q lost acknowledged receipt: %v", torn, err)
		}
		if err := re.AddReceipt(testReceipt("acme", "fresh-"+torn[len(torn)-4:])); err != nil {
			t.Fatalf("append after torn-tail recovery: %v", err)
		}
		if err := re.Compact(); err != nil {
			t.Fatal(err)
		}
		re.Close()
	}
}

// TestKVCorruptMiddleFails: mid-log damage is corruption, not crash
// residue, and must fail the open.
func TestKVCorruptMiddleFails(t *testing.T) {
	path := filepath.Join(t.TempDir(), "reg.kv")
	st, err := OpenKV(path, FileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	st.PutOwner(testOwner("acme"))
	st.AddReceipt(testReceipt("acme", "r1"))
	st.Close()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(data), "\n")
	lines[0] = "###corrupt###\n"
	if err := os.WriteFile(path, []byte(strings.Join(lines, "")), 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenKV(path, FileOptions{}); err == nil {
		t.Fatal("open succeeded over mid-log corruption")
	}
}

// TestKVVersionGate: a record from a future build fails the open.
func TestKVVersionGate(t *testing.T) {
	path := filepath.Join(t.TempDir(), "reg.kv")
	st, err := OpenKV(path, FileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	st.PutOwner(testOwner("acme"))
	st.Close()
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o600)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"v":99,"t":"receipt","o":"acme","k":"x","d":{}}` + "\n")
	f.WriteString(`{"v":1,"t":"recipient","o":"acme","k":"y","d":{"id":"y","owner":"acme"}}` + "\n")
	f.Close()
	if _, err := OpenKV(path, FileOptions{}); err == nil || !strings.Contains(err.Error(), "version 99") {
		t.Fatalf("open over future-versioned record = %v, want version error", err)
	}
}

// TestKVCompact: superseded records are dropped, the keydir is rebuilt
// against the new offsets (reads work immediately, no reopen), and the
// compacted log replays identically.
func TestKVCompact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "reg.kv")
	st, err := OpenKV(path, FileOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		o := testOwner("acme")
		o.Gamma = i + 1
		if err := st.PutOwner(o); err != nil {
			t.Fatal(err)
		}
	}
	st.AddReceipt(testReceipt("acme", "r1"))
	st.PutRecipient(Recipient{ID: "mirror", Owner: "acme", CreatedUnix: 7})
	st.PutPlan(testPlan("acme", "p1"))
	before, _ := st.LogSize()
	if err := st.Compact(); err != nil {
		t.Fatal(err)
	}
	after, _ := st.LogSize()
	if after >= before {
		t.Errorf("compaction did not shrink the log: %d -> %d bytes", before, after)
	}
	// Reads go through the rebuilt keydir offsets.
	if o, err := st.GetOwner("acme"); err != nil || o.Gamma != 50 {
		t.Fatalf("owner after compact = %+v, %v", o, err)
	}
	if _, err := st.GetReceipt("acme", "r1"); err != nil {
		t.Fatalf("receipt after compact: %v", err)
	}
	if p, err := st.GetPlan("acme", testPlan("acme", "p1").Digest); err != nil || p.Validate() != nil {
		t.Fatalf("plan after compact = %v (validate %v)", err, p.Validate())
	}
	// Appends land on the swapped handle.
	if err := st.AddReceipt(testReceipt("acme", "r2")); err != nil {
		t.Fatal(err)
	}
	st.Close()

	re, err := OpenKV(path, FileOptions{CompactOnOpen: true})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	recs, err := re.ListReceipts("acme")
	if err != nil || len(recs) != 2 {
		t.Fatalf("after compacted reopen: %d receipts, %v", len(recs), err)
	}
	if rc, err := re.GetRecipient("acme", "mirror"); err != nil || rc.CreatedUnix != 7 {
		t.Fatalf("recipient after compacted reopen = %+v, %v", rc, err)
	}
}

// TestKVSecondProcessRefused mirrors the File lock semantics.
func TestKVSecondProcessRefused(t *testing.T) {
	path := filepath.Join(t.TempDir(), "reg.kv")
	st, err := OpenKV(path, FileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if _, err := OpenKV(path, FileOptions{}); err == nil {
		t.Fatal("second open of a locked kv registry succeeded")
	}
}

// TestKVLargeValuesStayOnDisk is the design-point check: many plans
// with sizable canonical bodies are stored and listed back correctly
// through ReadAt, in first-store order.
func TestKVLargeValuesStayOnDisk(t *testing.T) {
	st, err := OpenKV(filepath.Join(t.TempDir(), "reg.kv"), FileOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.PutOwner(testOwner("acme")); err != nil {
		t.Fatal(err)
	}
	var digests []string
	for i := 0; i < 20; i++ {
		p := testPlan("acme", fmt.Sprintf("doc-%02d-%s", i, strings.Repeat("x", 4096)))
		digests = append(digests, p.Digest)
		if err := st.PutPlan(p); err != nil {
			t.Fatal(err)
		}
	}
	plans, err := st.ListPlans("acme")
	if err != nil || len(plans) != 20 {
		t.Fatalf("ListPlans = %d, %v", len(plans), err)
	}
	for i, p := range plans {
		if p.Digest != digests[i] {
			t.Fatalf("plan %d out of order: %s != %s", i, p.Digest, digests[i])
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("plan %d corrupted through ReadAt: %v", i, err)
		}
	}
}
