package registry

import (
	"fmt"
	"path/filepath"
	"testing"
	"time"
)

// TestCompactDoesNotStallReads is the regression test for the ISSUE 10
// stall bug: File.Compact used to hold the store mutex across the
// entire snapshot rewrite, so every Get and append blocked for the
// duration — seconds on a large registry. The rewritten Compact holds
// the lock only to pin the snapshot boundary and to splice the delta,
// so reads and appends must complete while the rewrite itself is still
// in flight.
//
// The test parks the compaction inside the rewrite window via
// compactHook (deterministic — no timing-dependent sleeps deciding
// correctness) and requires Gets, Lists and appends to finish while it
// is parked. If compaction were still holding the lock, these would
// block until the hook released and the generous timeout would trip.
func TestCompactDoesNotStallReads(t *testing.T) {
	path := filepath.Join(t.TempDir(), "reg.jsonl")
	st, err := OpenFile(path, FileOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	// Enough state that the rewrite is real work: 40 owners, each
	// re-registered (so compaction has something to drop) with receipts
	// and recipients.
	for i := 0; i < 40; i++ {
		id := fmt.Sprintf("tenant-%02d", i)
		for g := 1; g <= 3; g++ {
			o := testOwner(id)
			o.Gamma = g
			if err := st.PutOwner(o); err != nil {
				t.Fatal(err)
			}
		}
		for r := 0; r < 5; r++ {
			if err := st.AddReceipt(testReceipt(id, fmt.Sprintf("r-%d", r))); err != nil {
				t.Fatal(err)
			}
		}
		if err := st.PutRecipient(Recipient{ID: "mirror", Owner: id}); err != nil {
			t.Fatal(err)
		}
	}

	parked := make(chan struct{})
	release := make(chan struct{})
	st.compactHook = func() {
		close(parked)
		<-release
	}
	compactDone := make(chan error, 1)
	go func() { compactDone <- st.Compact() }()

	select {
	case <-parked:
	case <-time.After(10 * time.Second):
		t.Fatal("compaction never reached the rewrite window")
	}

	// Compaction is now mid-rewrite and will stay there until released.
	// Every store operation must complete anyway.
	opsDone := make(chan error, 1)
	go func() {
		for i := 0; i < 40; i++ {
			id := fmt.Sprintf("tenant-%02d", i)
			if _, err := st.GetOwner(id); err != nil {
				opsDone <- fmt.Errorf("GetOwner(%s): %w", id, err)
				return
			}
			if recs, err := st.ListReceipts(id); err != nil || len(recs) != 5 {
				opsDone <- fmt.Errorf("ListReceipts(%s) = %d, %v", id, len(recs), err)
				return
			}
		}
		// Appends during the window land in the delta and must survive
		// the swap.
		if err := st.AddReceipt(testReceipt("tenant-00", "mid-compact")); err != nil {
			opsDone <- err
			return
		}
		o := testOwner("late-tenant")
		if err := st.PutOwner(o); err != nil {
			opsDone <- err
			return
		}
		if err := st.AddReceipt(testReceipt("late-tenant", "late-r")); err != nil {
			opsDone <- err
			return
		}
		opsDone <- nil
	}()

	select {
	case err := <-opsDone:
		if err != nil {
			t.Fatalf("store op failed during compaction: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("reads/appends stalled behind an in-flight compaction")
	}

	close(release)
	if err := <-compactDone; err != nil {
		t.Fatalf("compact: %v", err)
	}

	// The mid-compaction appends survived the file swap in the live
	// handle…
	if _, err := st.GetReceipt("tenant-00", "mid-compact"); err != nil {
		t.Fatalf("mid-compaction receipt lost after swap: %v", err)
	}
	if _, err := st.GetReceipt("late-tenant", "late-r"); err != nil {
		t.Fatalf("mid-compaction owner+receipt lost after swap: %v", err)
	}
	// …the swapped handle still appends…
	if err := st.AddReceipt(testReceipt("tenant-01", "post-compact")); err != nil {
		t.Fatal(err)
	}
	st.compactHook = nil
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// …and the compacted log + delta replays identically on reopen.
	re, err := OpenFile(path, FileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	owners, err := re.ListOwners()
	if err != nil || len(owners) != 41 {
		t.Fatalf("owners after reopen = %d, %v (want 41)", len(owners), err)
	}
	for _, probe := range [][2]string{
		{"tenant-00", "mid-compact"},
		{"late-tenant", "late-r"},
		{"tenant-01", "post-compact"},
		{"tenant-39", "r-4"},
	} {
		if _, err := re.GetReceipt(probe[0], probe[1]); err != nil {
			t.Errorf("receipt %s/%s lost across compaction+reopen: %v", probe[0], probe[1], err)
		}
	}
	if o, _ := re.GetOwner("tenant-00"); o.Gamma != 3 {
		t.Errorf("latest owner registration lost: %+v", o)
	}
}

// TestCompactConcurrentWithWrites hammers the store with concurrent
// appends while repeated compactions run — the race-detector companion
// to the deterministic stall test. Every acknowledged append must be
// present at the end and after a reopen.
func TestCompactConcurrentWithWrites(t *testing.T) {
	path := filepath.Join(t.TempDir(), "reg.jsonl")
	st, err := OpenFile(path, FileOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.PutOwner(testOwner("acme")); err != nil {
		t.Fatal(err)
	}

	const writers = 4
	const perWriter = 25
	errs := make(chan error, writers+1)
	for w := 0; w < writers; w++ {
		go func(w int) {
			for i := 0; i < perWriter; i++ {
				if err := st.AddReceipt(testReceipt("acme", fmt.Sprintf("w%d-r%d", w, i))); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}(w)
	}
	go func() {
		for i := 0; i < 8; i++ {
			if err := st.Compact(); err != nil {
				errs <- fmt.Errorf("compact %d: %w", i, err)
				return
			}
		}
		errs <- nil
	}()
	for i := 0; i < writers+1; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}

	check := func(s Store) {
		t.Helper()
		recs, err := s.ListReceipts("acme")
		if err != nil || len(recs) != writers*perWriter {
			t.Fatalf("receipts = %d, %v (want %d)", len(recs), err, writers*perWriter)
		}
	}
	check(st)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := OpenFile(path, FileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	check(re)
}
