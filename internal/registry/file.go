package registry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// File is the durable Store: an append-only JSONL log replayed into a
// Memory store on open.
//
// Every mutation appends one self-describing line and (by default)
// fsyncs before acknowledging, so an acknowledged write survives a
// crash. A torn final line — the signature of a crash mid-append — is
// detected on open and truncated away; a corrupt line followed by valid
// ones is real damage and fails the open. Compact rewrites the log to
// its live state (one line per owner, one per receipt) through a
// temp-file + rename, so a crash during compaction leaves the old log
// intact.
type File struct {
	mem *Memory

	mu   sync.Mutex // serializes appends and the compaction swap
	path string
	f    *os.File
	sync bool

	compactMu sync.Mutex // serializes whole compactions against each other

	// compactHook, when set (tests only), runs after the snapshot
	// rewrite and before the delta copy + swap — the window where
	// appends and reads must proceed unblocked.
	compactHook func()
}

// FileOptions tunes a File store.
type FileOptions struct {
	// NoSync skips the per-append fsync. Throughput for durability:
	// only for benchmarks and bulk loads.
	NoSync bool
	// CompactOnOpen rewrites the log to its live state right after
	// replay, dropping superseded owner lines.
	CompactOnOpen bool
}

// RecipientRecordVersion is the current version of the "recipient" log
// record type. Recipient lines carry an explicit version tag (unlike
// the original owner/receipt lines, which predate versioning and are
// implicitly v0) so the record can evolve without a log-wide format
// bump; replay rejects versions newer than this build understands.
const RecipientRecordVersion = 1

// PlanRecordVersion is the current version of the "plan" log record
// type; replay rejects versions newer than this build understands.
const PlanRecordVersion = 1

// logLine is one JSONL record. Exactly one of Owner / Receipt /
// Recipient / Plan is set; T tags which ("owner" / "receipt" /
// "recipient" / "plan"). V is the record-type version, used by the
// recipient and plan lines.
type logLine struct {
	T         string      `json:"t"`
	V         int         `json:"v,omitempty"`
	Owner     *Owner      `json:"owner,omitempty"`
	Receipt   *Receipt    `json:"receipt,omitempty"`
	Recipient *Recipient  `json:"recipient,omitempty"`
	Plan      *PlanRecord `json:"plan,omitempty"`
}

// OpenFile opens (or creates) a JSONL registry log and replays it.
//
// The log is opened with O_APPEND (every write lands at the physical
// end of file regardless of seek position) and held under an exclusive
// advisory lock for the lifetime of the handle: a second process
// pointing at the same path would replay a moving file, truncate what
// it mistakes for a torn tail, and interleave appends — so it gets a
// "registry in use" error instead.
func OpenFile(path string, opts FileOptions) (*File, error) {
	f, err := openLocked(path)
	if err != nil {
		return nil, err
	}
	fs := &File{mem: NewMemory(), path: path, f: f, sync: !opts.NoSync}
	if err := fs.replay(); err != nil {
		f.Close()
		return nil, err
	}
	if opts.CompactOnOpen {
		if err := fs.Compact(); err != nil {
			f.Close()
			return nil, err
		}
	}
	return fs, nil
}

// openLocked opens (or creates) path and acquires the exclusive lock,
// verifying afterwards that the locked inode is still what path names.
// Without the check there is a race against a concurrent Compact: we
// resolve the old inode, the other process renames a fresh log into
// place and closes (unlocking) the old one, and our flock then succeeds
// on an unlinked file — two handles serving "the same" path, one of
// them writing into the void. On mismatch the open is retried against
// the current file.
func openLocked(path string) (*os.File, error) {
	for attempt := 0; ; attempt++ {
		f, err := os.OpenFile(path, os.O_RDWR|os.O_APPEND|os.O_CREATE, 0o600)
		if err != nil {
			return nil, fmt.Errorf("registry: open %s: %w", path, err)
		}
		if err := lockFile(f); err != nil {
			f.Close()
			return nil, err
		}
		fi, err := f.Stat()
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("registry: stat %s: %w", path, err)
		}
		di, err := os.Stat(path)
		if err == nil && os.SameFile(fi, di) {
			return f, nil
		}
		f.Close()
		if attempt >= 5 {
			return nil, fmt.Errorf("registry: open %s: file kept being replaced underneath the lock", path)
		}
	}
}

// replay loads the log into the in-memory state and positions the file
// for appending.
//
// Only newline-terminated lines are applied: an append fsyncs data and
// newline together, so a missing terminator means the write was never
// acknowledged and the tail is dropped. A terminated final line that
// fails to parse is likewise treated as crash damage (out-of-order
// block persistence) and dropped; a corrupt line with valid lines after
// it is real corruption and fails the open.
func (fs *File) replay() error {
	if _, err := fs.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	rd := bufio.NewReaderSize(fs.f, 1<<16)
	var good int64 // offset just past the last applied line
	for lineNo := 1; ; lineNo++ {
		line, err := rd.ReadBytes('\n')
		if err != nil && err != io.EOF {
			return fmt.Errorf("registry: read %s: %w", fs.path, err)
		}
		if len(line) == 0 || line[len(line)-1] != '\n' {
			break // unterminated tail (or clean EOF): truncate from good
		}
		if aerr := fs.apply(line); aerr != nil {
			if _, perr := rd.Peek(1); perr == io.EOF {
				break // corrupt final line: torn write, drop it
			}
			return fmt.Errorf("registry: %s line %d: %w", fs.path, lineNo, aerr)
		}
		good += int64(len(line))
		if err == io.EOF {
			break
		}
	}
	if err := fs.f.Truncate(good); err != nil {
		return fmt.Errorf("registry: truncate torn tail of %s: %w", fs.path, err)
	}
	// No seek needed: the file is O_APPEND, so writes land at the
	// (now truncated) end regardless of position.
	return nil
}

// apply folds one log line into the memory state.
func (fs *File) apply(line []byte) error {
	var rec logLine
	if err := json.Unmarshal(line, &rec); err != nil {
		return err
	}
	switch rec.T {
	case "owner":
		if rec.Owner == nil {
			return fmt.Errorf("owner line without owner")
		}
		return fs.mem.PutOwner(*rec.Owner)
	case "receipt":
		if rec.Receipt == nil {
			return fmt.Errorf("receipt line without receipt")
		}
		return fs.mem.AddReceipt(*rec.Receipt)
	case "recipient":
		if rec.V > RecipientRecordVersion {
			return fmt.Errorf("recipient record version %d is newer than this build supports (%d)", rec.V, RecipientRecordVersion)
		}
		if rec.Recipient == nil {
			return fmt.Errorf("recipient line without recipient")
		}
		return fs.mem.PutRecipient(*rec.Recipient)
	case "plan":
		if rec.V > PlanRecordVersion {
			return fmt.Errorf("plan record version %d is newer than this build supports (%d)", rec.V, PlanRecordVersion)
		}
		if rec.Plan == nil {
			return fmt.Errorf("plan line without plan")
		}
		return fs.mem.PutPlan(*rec.Plan)
	default:
		return fmt.Errorf("unknown log record type %q", rec.T)
	}
}

// append writes one line and makes it durable.
func (fs *File) append(rec logLine) error {
	data, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if _, err := fs.f.Write(data); err != nil {
		return fmt.Errorf("registry: append to %s: %w", fs.path, err)
	}
	if fs.sync {
		if err := fs.f.Sync(); err != nil {
			return fmt.Errorf("registry: sync %s: %w", fs.path, err)
		}
	}
	return nil
}

// PutOwner registers or replaces an owner, durably.
func (fs *File) PutOwner(o Owner) error {
	if err := o.Validate(); err != nil {
		return err
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.append(logLine{T: "owner", Owner: &o}); err != nil {
		return err
	}
	return fs.mem.PutOwner(o)
}

// AddReceipt appends a receipt, durably.
func (fs *File) AddReceipt(r Receipt) error {
	if err := validateReceipt(r); err != nil {
		return err
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	// Validate against state first so a rejected receipt leaves no log
	// garbage.
	fs.mem.mu.Lock()
	_, ownerOK := fs.mem.owners[r.Owner]
	_, dup := fs.mem.byID[r.Owner][r.ID]
	fs.mem.mu.Unlock()
	if !ownerOK {
		return ErrNotFound
	}
	if dup {
		return ErrDuplicate
	}
	if err := fs.append(logLine{T: "receipt", Receipt: &r}); err != nil {
		return err
	}
	return fs.mem.AddReceipt(r)
}

// PutRecipient registers a recipient, durably.
func (fs *File) PutRecipient(rc Recipient) error {
	if err := rc.Validate(); err != nil {
		return err
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	// Validate against state first so a rejected recipient leaves no
	// log garbage.
	fs.mem.mu.Lock()
	_, ownerOK := fs.mem.owners[rc.Owner]
	fs.mem.mu.Unlock()
	if !ownerOK {
		return ErrNotFound
	}
	if err := fs.append(logLine{T: "recipient", V: RecipientRecordVersion, Recipient: &rc}); err != nil {
		return err
	}
	return fs.mem.PutRecipient(rc)
}

// PutPlan stores a delivery plan, durably.
func (fs *File) PutPlan(p PlanRecord) error {
	if err := p.Validate(); err != nil {
		return err
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	// Validate against state first so a rejected plan leaves no log
	// garbage.
	fs.mem.mu.Lock()
	_, ownerOK := fs.mem.owners[p.Owner]
	fs.mem.mu.Unlock()
	if !ownerOK {
		return ErrNotFound
	}
	if err := fs.append(logLine{T: "plan", V: PlanRecordVersion, Plan: &p}); err != nil {
		return err
	}
	return fs.mem.PutPlan(p)
}

// GetPlan returns the plan for (owner, digest) or ErrNotFound.
func (fs *File) GetPlan(owner, digest string) (PlanRecord, error) {
	return fs.mem.GetPlan(owner, digest)
}

// ListPlans returns an owner's plans in first-store order.
func (fs *File) ListPlans(owner string) ([]PlanRecord, error) {
	return fs.mem.ListPlans(owner)
}

// GetRecipient returns one recipient or ErrNotFound.
func (fs *File) GetRecipient(owner, id string) (Recipient, error) {
	return fs.mem.GetRecipient(owner, id)
}

// ListRecipients returns an owner's recipients in first-registration
// order.
func (fs *File) ListRecipients(owner string) ([]Recipient, error) {
	return fs.mem.ListRecipients(owner)
}

// GetOwner returns the owner or ErrNotFound.
func (fs *File) GetOwner(id string) (Owner, error) { return fs.mem.GetOwner(id) }

// ListOwners returns every owner, id-sorted.
func (fs *File) ListOwners() ([]Owner, error) { return fs.mem.ListOwners() }

// GetReceipt returns one receipt or ErrNotFound.
func (fs *File) GetReceipt(owner, id string) (Receipt, error) {
	return fs.mem.GetReceipt(owner, id)
}

// ListReceipts returns an owner's receipts in insertion order.
func (fs *File) ListReceipts(owner string) ([]Receipt, error) {
	return fs.mem.ListReceipts(owner)
}

// Compact rewrites the log to its live state: one line per owner
// (latest registration wins) followed by each owner's recipients,
// delivery plans and receipts in insertion order. The rewrite goes
// through a temp file in the same directory and an atomic rename, so a
// crash at any point leaves a complete log.
//
// Compaction does not stall the store. The append lock is held only
// twice, briefly: once to pin a consistent snapshot boundary (copy the
// memory state, record the log size it corresponds to), and once at the
// end to splice in whatever was appended during the rewrite and swap
// the files. The snapshot itself — the expensive part, proportional to
// the live state — streams to the temp file with no lock held, so
// concurrent Gets, Lists and appends proceed at full speed while a
// large registry compacts.
func (fs *File) Compact() error {
	// One compaction at a time: two interleaved rewrites would each
	// rename a fresh log into place and orphan the other's appends.
	fs.compactMu.Lock()
	defer fs.compactMu.Unlock()

	// Phase 1 (brief lock): pin the snapshot boundary. Appends hold
	// fs.mu across the log write and the memory apply, so under the
	// lock the memory state is exactly the replay of the log's first
	// `base` bytes.
	fs.mu.Lock()
	st, err := fs.f.Stat()
	if err != nil {
		fs.mu.Unlock()
		return fmt.Errorf("registry: compact: %w", err)
	}
	base := st.Size()
	snap := fs.mem.snapshot()
	src := fs.f
	fs.mu.Unlock()

	// Phase 2 (no lock): stream the snapshot to a temp file.
	dir := filepath.Dir(fs.path)
	tmp, err := os.CreateTemp(dir, filepath.Base(fs.path)+".compact-*")
	if err != nil {
		return fmt.Errorf("registry: compact: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after the rename succeeds
	w := bufio.NewWriterSize(tmp, 1<<16)
	writeLine := func(rec logLine) error {
		data, err := json.Marshal(rec)
		if err != nil {
			return err
		}
		data = append(data, '\n')
		_, err = w.Write(data)
		return err
	}
	fail := func(err error) error {
		tmp.Close()
		return fmt.Errorf("registry: compact: %w", err)
	}
	for i := range snap.owners {
		if err := writeLine(logLine{T: "owner", Owner: &snap.owners[i]}); err != nil {
			return fail(err)
		}
	}
	for _, o := range snap.owners {
		rcs := snap.recipients[o.ID]
		for i := range rcs {
			if err := writeLine(logLine{T: "recipient", V: RecipientRecordVersion, Recipient: &rcs[i]}); err != nil {
				return fail(err)
			}
		}
		plans := snap.plans[o.ID]
		for i := range plans {
			if err := writeLine(logLine{T: "plan", V: PlanRecordVersion, Plan: &plans[i]}); err != nil {
				return fail(err)
			}
		}
		recs := snap.receipts[o.ID]
		for i := range recs {
			if err := writeLine(logLine{T: "receipt", Receipt: &recs[i]}); err != nil {
				return fail(err)
			}
		}
	}
	if err := w.Flush(); err != nil {
		return fail(err)
	}
	if fs.compactHook != nil {
		fs.compactHook()
	}

	// Phase 3 (brief lock): splice in the lines appended since the
	// snapshot boundary, make the file durable, and swap it in. The
	// delta is whole lines by construction — appends hold fs.mu for the
	// full write, and we hold it here — and replays cleanly on top of
	// the snapshot because the snapshot is the state at exactly `base`.
	// ReadAt leaves the O_APPEND handle's write position alone.
	fs.mu.Lock()
	defer fs.mu.Unlock()
	st, err = fs.f.Stat()
	if err != nil {
		return fail(err)
	}
	if delta := st.Size() - base; delta > 0 {
		if _, err := io.Copy(tmp, io.NewSectionReader(src, base, delta)); err != nil {
			return fail(err)
		}
	}
	if err := tmp.Sync(); err != nil {
		return fail(err)
	}
	// Lock the replacement BEFORE it becomes visible at fs.path: the
	// advisory lock is per inode, and taking it only after the rename
	// would leave a window where another process claims the fresh log
	// while this handle keeps appending to the unlinked old inode —
	// acknowledged writes that silently vanish. Locking first and then
	// renaming means the swapped-in file is never observable unlocked.
	if err := lockFile(tmp); err != nil {
		return fail(err)
	}
	if err := os.Rename(tmp.Name(), fs.path); err != nil {
		return fail(err)
	}
	// tmp stays open as the store's handle. It lacks O_APPEND, but its
	// position sits at end-of-file and the exclusive lock guarantees no
	// other writer moves it, so position-based appends are equivalent.
	old := fs.f
	fs.f = tmp
	old.Close()
	return nil
}

// LogSize reports the current byte size of the log file (for
// compaction policies and tests).
func (fs *File) LogSize() (int64, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	st, err := fs.f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

// Close flushes and closes the log.
func (fs *File) Close() error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.f.Close()
}

var _ Store = (*File)(nil)
