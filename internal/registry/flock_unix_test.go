//go:build unix

package registry

import (
	"path/filepath"
	"strings"
	"testing"
)

// TestFileLock: the log is exclusively locked for the lifetime of a
// handle — a second open of the same path fails fast instead of
// corrupting the file, and the lock follows the handle across Close and
// Compact's file swap. Unix-only: lockFile is a documented no-op
// elsewhere.
func TestFileLock(t *testing.T) {
	path := filepath.Join(t.TempDir(), "reg.jsonl")
	st, err := OpenFile(path, FileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFile(path, FileOptions{}); err == nil || !strings.Contains(err.Error(), "in use") {
		t.Fatalf("second open = %v, want 'in use' error", err)
	}
	st.PutOwner(testOwner("acme"))
	st.AddReceipt(testReceipt("acme", "r1"))
	// Compaction swaps the backing file; the new file must be locked too.
	if err := st.Compact(); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFile(path, FileOptions{}); err == nil || !strings.Contains(err.Error(), "in use") {
		t.Fatalf("open after compact = %v, want 'in use' error", err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := OpenFile(path, FileOptions{})
	if err != nil {
		t.Fatalf("open after close: %v", err)
	}
	defer re.Close()
	if _, err := re.GetReceipt("acme", "r1"); err != nil {
		t.Fatal(err)
	}
}
