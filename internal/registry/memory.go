package registry

import (
	"sort"
	"sync"
)

// Memory is the in-process Store: a map under a mutex. It backs tests
// and ephemeral deployments, and is the state the File store replays
// its log into.
type Memory struct {
	mu         sync.RWMutex
	owners     map[string]Owner
	receipts   map[string][]Receipt             // owner -> insertion order
	byID       map[string]map[string]Receipt    // owner -> id -> receipt
	recipients map[string]map[string]Recipient  // owner -> id -> recipient
	recOrder   map[string][]string              // owner -> recipient ids, first-registration order
	plans      map[string]map[string]PlanRecord // owner -> digest -> plan
	planOrder  map[string][]string              // owner -> digests, first-store order
}

// NewMemory builds an empty in-memory store.
func NewMemory() *Memory {
	return &Memory{
		owners:     make(map[string]Owner),
		receipts:   make(map[string][]Receipt),
		byID:       make(map[string]map[string]Receipt),
		recipients: make(map[string]map[string]Recipient),
		recOrder:   make(map[string][]string),
		plans:      make(map[string]map[string]PlanRecord),
		planOrder:  make(map[string][]string),
	}
}

// PutOwner registers or replaces an owner.
func (m *Memory) PutOwner(o Owner) error {
	if err := o.Validate(); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.owners[o.ID] = o
	return nil
}

// GetOwner returns the owner or ErrNotFound.
func (m *Memory) GetOwner(id string) (Owner, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	o, ok := m.owners[id]
	if !ok {
		return Owner{}, ErrNotFound
	}
	return o, nil
}

// ListOwners returns every owner, id-sorted.
func (m *Memory) ListOwners() ([]Owner, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]Owner, 0, len(m.owners))
	for _, o := range m.owners {
		out = append(out, o)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}

// AddReceipt appends a receipt for an existing owner.
func (m *Memory) AddReceipt(r Receipt) error {
	if err := validateReceipt(r); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.addReceiptLocked(r)
}

// addReceiptLocked is the insertion shared with the File store's
// replay. Callers hold mu.
func (m *Memory) addReceiptLocked(r Receipt) error {
	if _, ok := m.owners[r.Owner]; !ok {
		return ErrNotFound
	}
	ids := m.byID[r.Owner]
	if ids == nil {
		ids = make(map[string]Receipt)
		m.byID[r.Owner] = ids
	}
	if _, ok := ids[r.ID]; ok {
		return ErrDuplicate
	}
	ids[r.ID] = r
	m.receipts[r.Owner] = append(m.receipts[r.Owner], r)
	return nil
}

// GetReceipt returns one receipt or ErrNotFound.
func (m *Memory) GetReceipt(owner, id string) (Receipt, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	r, ok := m.byID[owner][id]
	if !ok {
		return Receipt{}, ErrNotFound
	}
	return r, nil
}

// ListReceipts returns an owner's receipts in insertion order.
func (m *Memory) ListReceipts(owner string) ([]Receipt, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if _, ok := m.owners[owner]; !ok {
		return nil, ErrNotFound
	}
	out := make([]Receipt, len(m.receipts[owner]))
	copy(out, m.receipts[owner])
	return out, nil
}

// PutRecipient registers a recipient under an existing owner.
// Re-putting an existing id updates the note but keeps the original
// registration time and ordering (fingerprint retries are idempotent).
func (m *Memory) PutRecipient(rc Recipient) error {
	if err := rc.Validate(); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.putRecipientLocked(rc)
}

// putRecipientLocked is the insertion shared with the File store's
// replay. Callers hold mu.
func (m *Memory) putRecipientLocked(rc Recipient) error {
	if _, ok := m.owners[rc.Owner]; !ok {
		return ErrNotFound
	}
	ids := m.recipients[rc.Owner]
	if ids == nil {
		ids = make(map[string]Recipient)
		m.recipients[rc.Owner] = ids
	}
	if old, ok := ids[rc.ID]; ok {
		if rc.CreatedUnix == 0 || (old.CreatedUnix != 0 && old.CreatedUnix < rc.CreatedUnix) {
			rc.CreatedUnix = old.CreatedUnix
		}
	} else {
		m.recOrder[rc.Owner] = append(m.recOrder[rc.Owner], rc.ID)
	}
	ids[rc.ID] = rc
	return nil
}

// GetRecipient returns one recipient or ErrNotFound.
func (m *Memory) GetRecipient(owner, id string) (Recipient, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	rc, ok := m.recipients[owner][id]
	if !ok {
		return Recipient{}, ErrNotFound
	}
	return rc, nil
}

// ListRecipients returns an owner's recipients in first-registration
// order.
func (m *Memory) ListRecipients(owner string) ([]Recipient, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if _, ok := m.owners[owner]; !ok {
		return nil, ErrNotFound
	}
	out := make([]Recipient, 0, len(m.recOrder[owner]))
	for _, id := range m.recOrder[owner] {
		out = append(out, m.recipients[owner][id])
	}
	return out, nil
}

// PutPlan stores a delivery plan under an existing owner. Re-putting a
// digest replaces the plan but keeps the original store time and
// ordering (recompiles of the same document are idempotent).
func (m *Memory) PutPlan(p PlanRecord) error {
	if err := p.Validate(); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.putPlanLocked(p)
}

// putPlanLocked is the insertion shared with the File store's replay.
// Callers hold mu.
func (m *Memory) putPlanLocked(p PlanRecord) error {
	if _, ok := m.owners[p.Owner]; !ok {
		return ErrNotFound
	}
	digests := m.plans[p.Owner]
	if digests == nil {
		digests = make(map[string]PlanRecord)
		m.plans[p.Owner] = digests
	}
	if old, ok := digests[p.Digest]; ok {
		if p.CreatedUnix == 0 || (old.CreatedUnix != 0 && old.CreatedUnix < p.CreatedUnix) {
			p.CreatedUnix = old.CreatedUnix
		}
	} else {
		m.planOrder[p.Owner] = append(m.planOrder[p.Owner], p.Digest)
	}
	digests[p.Digest] = p
	return nil
}

// GetPlan returns the plan for (owner, digest) or ErrNotFound.
func (m *Memory) GetPlan(owner, digest string) (PlanRecord, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	p, ok := m.plans[owner][digest]
	if !ok {
		return PlanRecord{}, ErrNotFound
	}
	return p, nil
}

// ListPlans returns an owner's plans in first-store order.
func (m *Memory) ListPlans(owner string) ([]PlanRecord, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if _, ok := m.owners[owner]; !ok {
		return nil, ErrNotFound
	}
	out := make([]PlanRecord, 0, len(m.planOrder[owner]))
	for _, d := range m.planOrder[owner] {
		out = append(out, m.plans[owner][d])
	}
	return out, nil
}

// memSnapshot is a point-in-time copy of a Memory store's live state,
// in the order compaction writes it: owners id-sorted, then each
// owner's recipients, plans and receipts in their listing order. The
// contained records share backing arrays (Spec, Canonical, Records)
// with the live store, which is sound because no store mutates a
// record in place — every write replaces whole values.
type memSnapshot struct {
	owners     []Owner
	recipients map[string][]Recipient
	plans      map[string][]PlanRecord
	receipts   map[string][]Receipt
}

// snapshot copies the live state under one read-lock acquisition, so a
// compaction can stream a consistent image without holding any lock
// while it writes.
func (m *Memory) snapshot() memSnapshot {
	m.mu.RLock()
	defer m.mu.RUnlock()
	snap := memSnapshot{
		owners:     make([]Owner, 0, len(m.owners)),
		recipients: make(map[string][]Recipient, len(m.recipients)),
		plans:      make(map[string][]PlanRecord, len(m.plans)),
		receipts:   make(map[string][]Receipt, len(m.receipts)),
	}
	for _, o := range m.owners {
		snap.owners = append(snap.owners, o)
	}
	sort.Slice(snap.owners, func(i, j int) bool { return snap.owners[i].ID < snap.owners[j].ID })
	for owner, ids := range m.recOrder {
		rcs := make([]Recipient, 0, len(ids))
		for _, id := range ids {
			rcs = append(rcs, m.recipients[owner][id])
		}
		snap.recipients[owner] = rcs
	}
	for owner, digests := range m.planOrder {
		ps := make([]PlanRecord, 0, len(digests))
		for _, d := range digests {
			ps = append(ps, m.plans[owner][d])
		}
		snap.plans[owner] = ps
	}
	for owner, recs := range m.receipts {
		out := make([]Receipt, len(recs))
		copy(out, recs)
		snap.receipts[owner] = out
	}
	return snap
}

// Close is a no-op for the memory store.
func (m *Memory) Close() error { return nil }

var _ Store = (*Memory)(nil)
