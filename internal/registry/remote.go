package registry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"
)

// Remote is a Store backed by another process's registry over HTTP (the
// NewHTTPHandler wire format). It is what makes a wmxmld node
// stateless: every node in a fleet points its Remote at the same
// registry holder and serves any tenant, with no local log to own.
//
// Reads of owner-scoped records go through a small per-path cache
// validated with the holder's ETags: within CacheTTL a cached entry is
// served as-is; past it the entry is revalidated with If-None-Match,
// which costs a round trip but no body transfer or decode when nothing
// changed (304). A TTL of zero keeps the cache in permanent
// revalidation mode — every read checks the holder, but unchanged data
// still never re-transfers. Writes through this client invalidate the
// owner's cached entries immediately, so a node always reads its own
// writes; writes from *other* nodes become visible within CacheTTL at
// the latest. Plan records are never cached — they embed whole
// canonical documents and have their own digest-addressed server-side
// cache in front of them.
type Remote struct {
	base   string
	key    string
	ttl    time.Duration
	client *http.Client

	mu    sync.Mutex
	cache map[string]*remoteEntry
}

type remoteEntry struct {
	etag string
	// decoded is the unmarshaled value for the path (Owner, []Receipt,
	// ...), stored once per transfer. Caching the decoded form instead
	// of body bytes keeps re-decode cost off the TTL-fresh read path —
	// a warm detect's ListReceipts is a map hit plus a slice-header
	// copy, not a JSON parse of every safeguarded query set. Entries
	// are immutable once stored; list accessors hand out shallow
	// copies (the Memory store's contract).
	decoded any
	expires time.Time
}

// remoteCacheMax bounds the cache map. Overflow drops the whole cache —
// crude, but the steady-state working set (a few paths per active
// owner) sits far below the bound, so the reset only fires under
// pathological churn.
const remoteCacheMax = 4096

// RemoteOptions tunes a Remote store.
type RemoteOptions struct {
	// Key is the fleet's cluster key, sent as a Bearer token. Must match
	// the holder's --cluster-key.
	Key string
	// CacheTTL is how long a cached read is served without revalidation.
	// Zero means every read revalidates against the holder's ETag (reads
	// stay coherent with other writers at one round trip per read).
	CacheTTL time.Duration
	// HTTPClient overrides the transport (tests, timeouts). Defaults to
	// a client with a 30s timeout.
	HTTPClient *http.Client
}

// OpenRemote builds a Store talking to the registry API at baseURL
// (e.g. "http://registry-holder:8080/internal/registry").
func OpenRemote(baseURL string, opts RemoteOptions) (*Remote, error) {
	u, err := url.Parse(baseURL)
	if err != nil || (u.Scheme != "http" && u.Scheme != "https") {
		return nil, fmt.Errorf("registry: remote: bad base url %q", baseURL)
	}
	client := opts.HTTPClient
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	return &Remote{
		base:   strings.TrimRight(baseURL, "/"),
		key:    opts.Key,
		ttl:    opts.CacheTTL,
		client: client,
		cache:  make(map[string]*remoteEntry),
	}, nil
}

func (rm *Remote) newRequest(method, path string, body io.Reader) (*http.Request, error) {
	req, err := http.NewRequest(method, rm.base+path, body)
	if err != nil {
		return nil, fmt.Errorf("registry: remote: %w", err)
	}
	if rm.key != "" {
		req.Header.Set("Authorization", "Bearer "+rm.key)
	}
	return req, nil
}

// remoteError turns a non-2xx response into the Store error vocabulary.
func remoteError(resp *http.Response) error {
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 64<<10))
	switch resp.StatusCode {
	case http.StatusNotFound:
		return ErrNotFound
	case http.StatusConflict:
		return ErrDuplicate
	}
	var envelope struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(data, &envelope) == nil && envelope.Error != "" {
		return fmt.Errorf("registry: remote: %s (status %d)", envelope.Error, resp.StatusCode)
	}
	return fmt.Errorf("registry: remote: status %d", resp.StatusCode)
}

// fetch performs one conditional GET. It returns the body on 2xx, or
// notModified=true on a 304 answering the given validator.
func (rm *Remote) fetch(path, etag string) (data []byte, newTag string, notModified bool, err error) {
	req, err := rm.newRequest(http.MethodGet, path, nil)
	if err != nil {
		return nil, "", false, err
	}
	if etag != "" {
		req.Header.Set("If-None-Match", etag)
	}
	resp, err := rm.client.Do(req)
	if err != nil {
		return nil, "", false, fmt.Errorf("registry: remote: %w", err)
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusNotModified:
		io.Copy(io.Discard, resp.Body)
		return nil, "", true, nil
	case resp.StatusCode >= 200 && resp.StatusCode < 300:
		data, err = io.ReadAll(resp.Body)
		if err != nil {
			return nil, "", false, fmt.Errorf("registry: remote: read %s: %w", path, err)
		}
		return data, resp.Header.Get("ETag"), false, nil
	default:
		return nil, "", false, remoteError(resp)
	}
}

// remoteGet fetches path, decoded as T. Cacheable paths go through the
// ETag cache; a TTL-fresh entry is returned without touching the wire
// or the decoder (the cached value is decoded once per transfer, at
// store time). The same path must always be read as the same T.
func remoteGet[T any](rm *Remote, path string, cacheable bool) (T, error) {
	var zero T
	var etag string
	if cacheable {
		rm.mu.Lock()
		if e, ok := rm.cache[path]; ok {
			if time.Now().Before(e.expires) {
				v := e.decoded.(T)
				rm.mu.Unlock()
				return v, nil
			}
			etag = e.etag
		}
		rm.mu.Unlock()
	}
	data, tag, notModified, err := rm.fetch(path, etag)
	if err != nil {
		return zero, err
	}
	if notModified {
		rm.mu.Lock()
		if e, ok := rm.cache[path]; ok {
			e.expires = time.Now().Add(rm.ttl)
			v := e.decoded.(T)
			rm.mu.Unlock()
			return v, nil
		}
		rm.mu.Unlock()
		// The entry was invalidated between sending If-None-Match and
		// the 304 landing: retry without a validator.
		return remoteGet[T](rm, path, false)
	}
	var v T
	if err := json.Unmarshal(data, &v); err != nil {
		return zero, err
	}
	if cacheable && tag != "" {
		rm.mu.Lock()
		if len(rm.cache) >= remoteCacheMax {
			rm.cache = make(map[string]*remoteEntry)
		}
		rm.cache[path] = &remoteEntry{etag: tag, decoded: v, expires: time.Now().Add(rm.ttl)}
		rm.mu.Unlock()
	}
	return v, nil
}

// copyList returns a shallow copy of a cached list so callers may
// reorder or append without corrupting the cache entry; always
// non-nil, matching the wire's empty-array decoding.
func copyList[T any](v []T) []T {
	out := make([]T, len(v))
	copy(out, v)
	return out
}

// write sends a mutation and invalidates the owner's cached reads.
func (rm *Remote) write(method, path, owner string, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("registry: remote: %w", err)
	}
	req, err := rm.newRequest(method, path, bytes.NewReader(data))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := rm.client.Do(req)
	if err != nil {
		return fmt.Errorf("registry: remote: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		return remoteError(resp)
	}
	io.Copy(io.Discard, resp.Body)
	rm.invalidate(owner)
	return nil
}

// invalidate drops every cached path under an owner.
func (rm *Remote) invalidate(owner string) {
	prefix := "/owners/" + url.PathEscape(owner)
	rm.mu.Lock()
	for k := range rm.cache {
		if strings.HasPrefix(k, prefix) && (len(k) == len(prefix) || k[len(prefix)] == '/') {
			delete(rm.cache, k)
		}
	}
	rm.mu.Unlock()
}

func ownerPath(owner string, parts ...string) string {
	var b strings.Builder
	b.WriteString("/owners/")
	b.WriteString(url.PathEscape(owner))
	for _, p := range parts {
		b.WriteByte('/')
		b.WriteString(url.PathEscape(p))
	}
	return b.String()
}

// PutOwner registers or replaces an owner on the holder.
func (rm *Remote) PutOwner(o Owner) error {
	if err := o.Validate(); err != nil {
		return err
	}
	return rm.write(http.MethodPut, ownerPath(o.ID), o.ID, o)
}

// GetOwner returns the owner or ErrNotFound.
func (rm *Remote) GetOwner(id string) (Owner, error) {
	return remoteGet[Owner](rm, ownerPath(id), true)
}

// ListOwners returns every owner, id-sorted. Uncached: it spans all
// owners, so no single owner's version can validate it.
func (rm *Remote) ListOwners() ([]Owner, error) {
	out, err := remoteGet[[]Owner](rm, "/owners", false)
	if err != nil {
		return nil, err
	}
	return copyList(out), nil
}

// AddReceipt appends a receipt; (owner, id) must be new.
func (rm *Remote) AddReceipt(r Receipt) error {
	if err := validateReceipt(r); err != nil {
		return err
	}
	return rm.write(http.MethodPost, ownerPath(r.Owner, "receipts"), r.Owner, r)
}

// GetReceipt returns one receipt or ErrNotFound.
func (rm *Remote) GetReceipt(owner, id string) (Receipt, error) {
	return remoteGet[Receipt](rm, ownerPath(owner, "receipts", id), true)
}

// ListReceipts returns an owner's receipts in insertion order.
func (rm *Remote) ListReceipts(owner string) ([]Receipt, error) {
	out, err := remoteGet[[]Receipt](rm, ownerPath(owner, "receipts"), true)
	if err != nil {
		return nil, err
	}
	return copyList(out), nil
}

// PutRecipient registers (or re-labels) a recipient.
func (rm *Remote) PutRecipient(rc Recipient) error {
	if err := rc.Validate(); err != nil {
		return err
	}
	return rm.write(http.MethodPost, ownerPath(rc.Owner, "recipients"), rc.Owner, rc)
}

// GetRecipient returns one recipient or ErrNotFound.
func (rm *Remote) GetRecipient(owner, id string) (Recipient, error) {
	return remoteGet[Recipient](rm, ownerPath(owner, "recipients", id), true)
}

// ListRecipients returns an owner's recipients in first-registration
// order.
func (rm *Remote) ListRecipients(owner string) ([]Recipient, error) {
	out, err := remoteGet[[]Recipient](rm, ownerPath(owner, "recipients"), true)
	if err != nil {
		return nil, err
	}
	return copyList(out), nil
}

// PutPlan stores or replaces a compiled delivery plan.
func (rm *Remote) PutPlan(p PlanRecord) error {
	if err := p.Validate(); err != nil {
		return err
	}
	return rm.write(http.MethodPost, ownerPath(p.Owner, "plans"), p.Owner, p)
}

// GetPlan returns the plan for (owner, digest) or ErrNotFound. Never
// cached (see the type doc).
func (rm *Remote) GetPlan(owner, digest string) (PlanRecord, error) {
	return remoteGet[PlanRecord](rm, ownerPath(owner, "plans", digest), false)
}

// ListPlans returns an owner's plans in first-store order. Never
// cached.
func (rm *Remote) ListPlans(owner string) ([]PlanRecord, error) {
	out, err := remoteGet[[]PlanRecord](rm, ownerPath(owner, "plans"), false)
	if err != nil {
		return nil, err
	}
	return copyList(out), nil
}

// Close drops idle connections. The holder's store stays open — a
// Remote holds no exclusive resources.
func (rm *Remote) Close() error {
	rm.client.CloseIdleConnections()
	return nil
}

var _ Store = (*Remote)(nil)
