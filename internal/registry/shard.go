package registry

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
)

// Sharded is a Store spread across N independent File logs, one per
// shard, with owners assigned to shards by a stable hash of the owner
// id. Every record is owner-scoped, so a shard is a complete, self
// contained registry for its slice of the tenant set: appends on
// different shards never contend on a lock or an fsync, and each shard
// compacts independently (and, via File's non-stalling Compact,
// without blocking its own readers either).
//
// The shard count is fixed at creation and recorded in a shards.json
// meta file inside the directory; reopening with a different -shards
// value is an error rather than a silent re-hash that would strand
// owners on unreachable shards.
type Sharded struct {
	shards []*File
}

// shardMetaName is the meta file recording the shard layout.
const shardMetaName = "shards.json"

// shardMetaVersion gates the meta format, mirroring the log-line
// version scheme: a future layout change bumps it and older builds
// refuse the directory instead of mis-hashing.
const shardMetaVersion = 1

type shardMeta struct {
	V      int `json:"v"`
	Shards int `json:"shards"`
}

// OpenSharded opens (or creates) a sharded registry under dir with n
// File shards. On first open the directory is created and the layout
// recorded; on reopen the recorded shard count must match n (pass the
// recorded count — there is no resharding). Each shard inherits opts.
func OpenSharded(dir string, n int, opts FileOptions) (*Sharded, error) {
	if n <= 0 {
		return nil, fmt.Errorf("registry: sharded: shard count must be positive, got %d", n)
	}
	if err := os.MkdirAll(dir, 0o700); err != nil {
		return nil, fmt.Errorf("registry: sharded: %w", err)
	}
	metaPath := filepath.Join(dir, shardMetaName)
	data, err := os.ReadFile(metaPath)
	switch {
	case err == nil:
		var meta shardMeta
		if err := json.Unmarshal(data, &meta); err != nil {
			return nil, fmt.Errorf("registry: sharded: bad %s: %w", shardMetaName, err)
		}
		if meta.V > shardMetaVersion {
			return nil, fmt.Errorf("registry: sharded: %s version %d is newer than this build understands (%d)", shardMetaName, meta.V, shardMetaVersion)
		}
		if meta.Shards != n {
			return nil, fmt.Errorf("registry: sharded: directory has %d shards, asked to open with %d (resharding is not supported)", meta.Shards, n)
		}
	case os.IsNotExist(err):
		data, _ := json.Marshal(shardMeta{V: shardMetaVersion, Shards: n})
		tmp := metaPath + ".tmp"
		if err := os.WriteFile(tmp, append(data, '\n'), 0o600); err != nil {
			return nil, fmt.Errorf("registry: sharded: %w", err)
		}
		if err := os.Rename(tmp, metaPath); err != nil {
			return nil, fmt.Errorf("registry: sharded: %w", err)
		}
	default:
		return nil, fmt.Errorf("registry: sharded: %w", err)
	}
	s := &Sharded{shards: make([]*File, n)}
	for i := range s.shards {
		fs, err := OpenFile(filepath.Join(dir, fmt.Sprintf("shard-%03d.jsonl", i)), opts)
		if err != nil {
			for _, open := range s.shards[:i] {
				open.Close()
			}
			return nil, err
		}
		s.shards[i] = fs
	}
	return s, nil
}

// shardFor maps an owner id to its shard. FNV-1a over the id: stable
// across processes and builds, which is what makes the layout durable.
func (s *Sharded) shardFor(owner string) *File {
	h := fnv.New32a()
	h.Write([]byte(owner))
	return s.shards[int(h.Sum32())%len(s.shards)]
}

// PutOwner registers or replaces an owner on its shard.
func (s *Sharded) PutOwner(o Owner) error { return s.shardFor(o.ID).PutOwner(o) }

// GetOwner returns the owner or ErrNotFound.
func (s *Sharded) GetOwner(id string) (Owner, error) { return s.shardFor(id).GetOwner(id) }

// ListOwners merges every shard's owners, id-sorted.
func (s *Sharded) ListOwners() ([]Owner, error) {
	var out []Owner
	for _, sh := range s.shards {
		owners, err := sh.ListOwners()
		if err != nil {
			return nil, err
		}
		out = append(out, owners...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}

// AddReceipt appends a receipt on the owner's shard.
func (s *Sharded) AddReceipt(r Receipt) error { return s.shardFor(r.Owner).AddReceipt(r) }

// GetReceipt returns one receipt or ErrNotFound.
func (s *Sharded) GetReceipt(owner, id string) (Receipt, error) {
	return s.shardFor(owner).GetReceipt(owner, id)
}

// ListReceipts returns an owner's receipts in insertion order.
func (s *Sharded) ListReceipts(owner string) ([]Receipt, error) {
	return s.shardFor(owner).ListReceipts(owner)
}

// PutRecipient registers a recipient on the owner's shard.
func (s *Sharded) PutRecipient(rc Recipient) error { return s.shardFor(rc.Owner).PutRecipient(rc) }

// GetRecipient returns one recipient or ErrNotFound.
func (s *Sharded) GetRecipient(owner, id string) (Recipient, error) {
	return s.shardFor(owner).GetRecipient(owner, id)
}

// ListRecipients returns an owner's recipients in first-registration
// order.
func (s *Sharded) ListRecipients(owner string) ([]Recipient, error) {
	return s.shardFor(owner).ListRecipients(owner)
}

// PutPlan stores a delivery plan on the owner's shard.
func (s *Sharded) PutPlan(p PlanRecord) error { return s.shardFor(p.Owner).PutPlan(p) }

// GetPlan returns the plan for (owner, digest) or ErrNotFound.
func (s *Sharded) GetPlan(owner, digest string) (PlanRecord, error) {
	return s.shardFor(owner).GetPlan(owner, digest)
}

// ListPlans returns an owner's plans in first-store order.
func (s *Sharded) ListPlans(owner string) ([]PlanRecord, error) {
	return s.shardFor(owner).ListPlans(owner)
}

// Compact rewrites every shard's log to its live state. Shards compact
// sequentially; each individual compaction is non-stalling, so the
// store stays fully available throughout.
func (s *Sharded) Compact() error {
	for i, sh := range s.shards {
		if err := sh.Compact(); err != nil {
			return fmt.Errorf("registry: sharded: shard %d: %w", i, err)
		}
	}
	return nil
}

// LogSize sums the shard log sizes in bytes.
func (s *Sharded) LogSize() (int64, error) {
	var total int64
	for _, sh := range s.shards {
		n, err := sh.LogSize()
		if err != nil {
			return 0, err
		}
		total += n
	}
	return total, nil
}

// Close releases every shard. The first error wins, but all shards are
// closed regardless.
func (s *Sharded) Close() error {
	var first error
	for _, sh := range s.shards {
		if err := sh.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

var _ Store = (*Sharded)(nil)
