// Package cluster is the fleet's owner-routing arithmetic: a
// consistent-hash ring mapping owner ids onto node addresses. The same
// ring is built independently by every wmxmld node (from --fleet-nodes)
// and by wmload's multi-node client, so routing needs no coordination
// service — any party holding the node list computes the same owner →
// node assignment.
//
// Consistent hashing (vs. hash-mod-N) keeps the assignment stable when
// the fleet changes: adding or removing one node remaps only the owners
// that land on its ring segments, about 1/N of the tenant set, so the
// other nodes' doc and plan caches stay warm through a resize.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// vnodesPerNode is how many points each node occupies on the ring.
// More points → smoother owner spread between heterogeneous node
// counts; 64 keeps the worst observed imbalance under ~25% for small
// fleets while the full point list still fits in a cache line count
// that binary-searches in nanoseconds.
const vnodesPerNode = 64

// mix32 is a multiply-xorshift finalizer (murmur3's fmix32) applied on
// top of FNV-1a. Raw FNV output must not be used for ring positions:
// its prime (16777619) is within 0.01% of the mean point gap on a
// 256-point ring (2^32/256), so sequential ids — "tenant-01",
// "tenant-02", ... — stride the ring in near-resonance with the point
// density and pile onto a few nodes. The finalizer's avalanche breaks
// the stride.
func mix32(h uint32) uint32 {
	h ^= h >> 16
	h *= 0x85ebca6b
	h ^= h >> 13
	h *= 0xc2b2ae35
	h ^= h >> 16
	return h
}

// Ring is an immutable consistent-hash ring over a node list. Build
// one with New; methods are safe for concurrent use.
type Ring struct {
	nodes  []string // as given, index is the node id
	points []point  // sorted by hash
}

type point struct {
	hash uint32
	node int // index into nodes
}

// New builds a ring over the given node addresses. Order does not
// matter for the owner assignment (points sort by hash), but indexes
// returned by Owner refer to this slice's order. Node addresses must be
// distinct.
func New(nodes []string) (*Ring, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("cluster: no nodes")
	}
	seen := make(map[string]struct{}, len(nodes))
	r := &Ring{
		nodes:  append([]string(nil), nodes...),
		points: make([]point, 0, len(nodes)*vnodesPerNode),
	}
	for i, n := range nodes {
		if n == "" {
			return nil, fmt.Errorf("cluster: empty node address at index %d", i)
		}
		if _, dup := seen[n]; dup {
			return nil, fmt.Errorf("cluster: duplicate node address %q", n)
		}
		seen[n] = struct{}{}
		for v := 0; v < vnodesPerNode; v++ {
			h := fnv.New32a()
			fmt.Fprintf(h, "%s#%d", n, v)
			r.points = append(r.points, point{hash: mix32(h.Sum32()), node: i})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		// Hash ties break by node index so every ring built from the
		// same list agrees, whatever sort.Slice's internal order.
		return r.points[a].node < r.points[b].node
	})
	return r, nil
}

// Owner returns the index (into the node list given to New) of the
// node that owns the given owner id: the first ring point at or after
// the owner's hash, wrapping at the top.
func (r *Ring) Owner(ownerID string) int {
	h := fnv.New32a()
	h.Write([]byte(ownerID))
	target := mix32(h.Sum32())
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= target })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].node
}

// Node returns the address of the node that owns the given owner id.
func (r *Ring) Node(ownerID string) string { return r.nodes[r.Owner(ownerID)] }

// Nodes returns the node list the ring was built over (a copy).
func (r *Ring) Nodes() []string { return append([]string(nil), r.nodes...) }

// Len reports the number of nodes.
func (r *Ring) Len() int { return len(r.nodes) }
