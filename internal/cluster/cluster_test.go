package cluster

import (
	"fmt"
	"testing"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Fatal("empty node list: want error")
	}
	if _, err := New([]string{"a", ""}); err == nil {
		t.Fatal("empty address: want error")
	}
	if _, err := New([]string{"a", "b", "a"}); err == nil {
		t.Fatal("duplicate address: want error")
	}
}

// Every party that builds a ring from the same node list must compute
// the same assignment — that is the whole coordination-free routing
// argument — including when the list arrives in a different order.
func TestDeterministicAcrossBuilds(t *testing.T) {
	nodes := []string{"http://n0:8080", "http://n1:8080", "http://n2:8080", "http://n3:8080"}
	r1, err := New(nodes)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := New(nodes)
	if err != nil {
		t.Fatal(err)
	}
	shuffled := []string{nodes[2], nodes[0], nodes[3], nodes[1]}
	r3, err := New(shuffled)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		owner := fmt.Sprintf("tenant-%d", i)
		if r1.Node(owner) != r2.Node(owner) {
			t.Fatalf("same list, different assignment for %s", owner)
		}
		if r1.Node(owner) != r3.Node(owner) {
			t.Fatalf("shuffled list changed assignment for %s: %s vs %s", owner, r1.Node(owner), r3.Node(owner))
		}
	}
}

// Spread: with 64 vnodes per node, 4 nodes over 10k owners should each
// hold a meaningful share — no node starved, none hot-spotted beyond
// 2x the fair share.
func TestSpread(t *testing.T) {
	nodes := []string{"a", "b", "c", "d"}
	r, err := New(nodes)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, len(nodes))
	const owners = 10000
	for i := 0; i < owners; i++ {
		counts[r.Owner(fmt.Sprintf("tenant-%d", i))]++
	}
	fair := owners / len(nodes)
	for i, c := range counts {
		if c < fair/2 || c > fair*2 {
			t.Errorf("node %s holds %d of %d owners (fair share %d)", nodes[i], c, owners, fair)
		}
	}
}

// Removing one node must remap only the owners it held: everyone else
// keeps their node (the cache-warmth property hash-mod-N lacks).
func TestStabilityUnderResize(t *testing.T) {
	four := []string{"a", "b", "c", "d"}
	three := []string{"a", "b", "c"}
	r4, err := New(four)
	if err != nil {
		t.Fatal(err)
	}
	r3, err := New(three)
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	const owners = 10000
	for i := 0; i < owners; i++ {
		owner := fmt.Sprintf("tenant-%d", i)
		before := r4.Node(owner)
		after := r3.Node(owner)
		if before != "d" && before != after {
			t.Fatalf("owner %s moved from surviving node %s to %s", owner, before, after)
		}
		if before == "d" {
			moved++
		}
	}
	if moved == 0 || moved > owners/2 {
		t.Fatalf("implausible displaced-owner count %d of %d", moved, owners)
	}
}

func TestLenAndNodes(t *testing.T) {
	r, err := New([]string{"x", "y"})
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 2 {
		t.Fatalf("Len = %d, want 2", r.Len())
	}
	got := r.Nodes()
	got[0] = "mutated"
	if r.Node("any-owner") == "mutated" && r.Nodes()[0] == "mutated" {
		t.Fatal("Nodes() leaked the internal slice")
	}
	if r.Nodes()[0] != "x" {
		t.Fatal("Nodes() copy was not defensive")
	}
}
