package fingerprint

import (
	"fmt"
	"testing"

	"wmxml/internal/core"
	"wmxml/internal/datagen"
	"wmxml/internal/index"
	"wmxml/internal/xmltree"
)

// benchFixture builds a fingerprinted 1000-record suspect, its shared
// index, one receipt, and a 20-recipient candidate list.
func benchFixture(b *testing.B) (*System, *xmltree.Node, *index.Index, []core.QueryRecord, []string) {
	b.Helper()
	ds := datagen.Publications(datagen.PubConfig{Books: 1000, Seed: 99})
	s, err := New(Options{
		Key:     []byte("bench-key"),
		Schema:  ds.Schema,
		Catalog: ds.Catalog,
		Targets: ds.Targets,
		Gamma:   2,
	})
	if err != nil {
		b.Fatal(err)
	}
	doc := ds.Doc.Clone()
	rec, err := s.Embed(doc, "leaker")
	if err != nil {
		b.Fatal(err)
	}
	candidates := make([]string, 20)
	for i := range candidates {
		candidates[i] = fmt.Sprintf("recipient-%02d", i)
	}
	candidates[7] = "leaker"
	return s, doc, index.New(doc), rec.Records, candidates
}

// BenchmarkTraceSweep20 measures the tentpole hot path: tracing one
// suspect against 20 recipients decodes the document ONCE (one parsed
// tree, one DocumentIndex, one query execution pass) and then runs 20
// bit-vector correlations.
func BenchmarkTraceSweep20(b *testing.B) {
	s, doc, ix, records, candidates := benchFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := s.Trace(doc, candidates, TraceOptions{Records: records, Index: ix})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Accused) != 1 {
			b.Fatalf("accused = %v", res.Accused)
		}
	}
	b.ReportMetric(20, "recipients/op")
}

// BenchmarkPerRecipientDetectSweep20 is the naive baseline the trace
// design replaces: one full detection per recipient (each re-executing
// every query), even granting it the shared document index. The gap to
// BenchmarkTraceSweep20 is the measured value of decode-once tracing.
func BenchmarkPerRecipientDetectSweep20(b *testing.B) {
	s, doc, ix, records, candidates := benchFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hits := 0
		for _, cand := range candidates {
			cfg := s.configFor(s.Payload(cand))
			res, err := core.DetectWithQueriesIndexed(doc, cfg, records, nil, ix)
			if err != nil {
				b.Fatal(err)
			}
			if res.Detected {
				hits++
			}
		}
		if hits != 1 {
			b.Fatalf("detected %d candidates, want 1", hits)
		}
	}
	b.ReportMetric(20, "recipients/op")
}
