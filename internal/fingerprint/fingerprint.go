// Package fingerprint turns the single-mark WmXML library into a
// distribution-chain system: instead of one watermark saying "this is
// mine", each recipient of a document gets a copy carrying a
// recipient-specific code, and a leaked copy is traced back to the
// recipient (or coalition of recipients) it was cut from.
//
// The design follows the fingerprinting half of the watermarking
// taxonomy in Kamran & Farooq's survey (PAPERS.md):
//
//   - Codebook: every recipient's codeword is derived from the owner
//     key and the recipient id by keyed PRF — no codeword table needs
//     storing, and nobody without the key can compute any code. A
//     codeword is Segments × SegmentBits keyed-random bits, replicated
//     Replicas times into the embedded payload à la Boneh–Shaw: a
//     cut-and-paste coalition can only mix votes, and every contiguous
//     slice of the document it keeps still carries attributable
//     segments of someone's code.
//   - Embedding: a recipient copy is produced by the ordinary core
//     embedder with the codeword as the mark. Carrier selection and
//     bit-index assignment depend only on the owner key, so every
//     recipient copy uses the same carriers — colluders comparing
//     copies see differing values exactly where codes differ (the
//     marking assumption), and tracing can decode any mix against one
//     carrier layout.
//   - Tracing: the suspect document is decoded ONCE into a per-bit
//     vote table (core.Decode*), the replicated positions are folded
//     onto the base code, and each candidate recipient is scored by
//     how well the recovered bits correlate with their codeword. The
//     null hypothesis (innocent recipient) is a fair coin per voted
//     bit, so each score converts to an exact binomial p-value; a
//     recipient is accused only when the p-value clears a
//     Bonferroni-corrected false-accusation budget. An N-recipient
//     sweep therefore costs one decode plus N bit-vector comparisons —
//     no per-recipient re-parse, re-index or query re-execution.
package fingerprint

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math"
	"sort"

	"wmxml/internal/core"
	"wmxml/internal/identity"
	"wmxml/internal/index"
	"wmxml/internal/obs"
	"wmxml/internal/schema"
	"wmxml/internal/semantics"
	"wmxml/internal/wmark"
	"wmxml/internal/xmltree"
)

// Defaults for the codebook geometry and the accusation budget.
const (
	// DefaultSegments × DefaultSegmentBits is the base code length; 96
	// bits keeps the per-recipient correlation test powerful (z grows
	// with sqrt of the code length) while small documents still get a
	// few votes per position.
	DefaultSegments    = 8
	DefaultSegmentBits = 12
	// DefaultReplicas replicates the base code in the embedded payload
	// so every code bit collects votes from several independent carrier
	// groups.
	DefaultReplicas = 2
	// DefaultAlpha is the per-trace false-accusation budget, split over
	// the candidate recipients (Bonferroni).
	DefaultAlpha = 1e-3
)

// Options configures a fingerprinting System.
type Options struct {
	// Key is the owner's secret key; required. It derives every
	// recipient code and the carrier selection.
	Key []byte
	// Schema describes the document type; required.
	Schema *schema.Schema
	// Catalog supplies keys and FDs for semantic identities.
	Catalog semantics.Catalog
	// Targets are the watermark-carrying fields (empty auto-derives).
	Targets []string
	// Gamma is the carrier selection ratio (0 = core default). Tracing
	// needs a few votes per code bit, so distributions of small
	// documents want a small gamma.
	Gamma int
	// Xi is the number of candidate low-order embedding positions
	// (0 = core default).
	Xi int
	// XiByTarget overrides Xi per target field.
	XiByTarget map[string]int
	// Segments and SegmentBits set the base code geometry
	// (0 = defaults). The base code is Segments*SegmentBits bits.
	Segments    int
	SegmentBits int
	// Replicas replicates the base code in the embedded payload
	// (0 = DefaultReplicas).
	Replicas int
	// Alpha is the per-trace false-accusation probability budget
	// (0 = DefaultAlpha). It is divided by the number of candidates, so
	// the chance that ANY innocent recipient is accused in one trace
	// stays below Alpha.
	Alpha float64
	// Concurrency bounds per-call worker goroutines (core semantics).
	Concurrency int
	// DisableIndex forces the tree-walking evaluator (benchmarks only).
	DisableIndex bool
}

// System derives codes, fingerprints copies and traces leaks for one
// owner. Safe for concurrent use.
type System struct {
	cfg      core.Config // Mark left empty; set per call
	segments int
	segBits  int
	replicas int
	alpha    float64
}

// New builds a System.
func New(opts Options) (*System, error) {
	if len(opts.Key) == 0 {
		return nil, fmt.Errorf("fingerprint: owner key is required")
	}
	if opts.Schema == nil {
		return nil, fmt.Errorf("fingerprint: schema is required")
	}
	s := &System{
		segments: opts.Segments,
		segBits:  opts.SegmentBits,
		replicas: opts.Replicas,
		alpha:    opts.Alpha,
	}
	if s.segments <= 0 {
		s.segments = DefaultSegments
	}
	if s.segBits <= 0 {
		s.segBits = DefaultSegmentBits
	}
	if s.replicas <= 0 {
		s.replicas = DefaultReplicas
	}
	if s.alpha <= 0 {
		s.alpha = DefaultAlpha
	}
	s.cfg = core.Config{
		Key:        opts.Key,
		Gamma:      opts.Gamma,
		Xi:         opts.Xi,
		XiByTarget: opts.XiByTarget,
		Schema:     opts.Schema,
		Catalog:    opts.Catalog,
		Identity: identity.Options{
			Targets: opts.Targets,
		},
		Concurrency:  opts.Concurrency,
		DisableIndex: opts.DisableIndex,
	}
	return s, nil
}

// BaseBits returns the base code length in bits.
func (s *System) BaseBits() int { return s.segments * s.segBits }

// PayloadBits returns the embedded payload length (base × replicas) —
// the mark length every recipient copy carries.
func (s *System) PayloadBits() int { return s.BaseBits() * s.replicas }

// PlanConfig returns the core config a delivery-plan compiler should
// enumerate embed sites with: the system's owner config carrying a
// zeroed payload of the full code geometry. Site selection ignores the
// mark's values (only its length matters), so a plan compiled from this
// config serves every recipient payload.
func (s *System) PlanConfig() core.Config {
	return s.configFor(make(wmark.Bits, s.PayloadBits()))
}

// Code returns the recipient's base codeword: Segments×SegmentBits
// keyed-random bits derived from HMAC(owner key, recipient id).
// Deterministic, and uncomputable without the key.
func (s *System) Code(recipient string) wmark.Bits {
	mac := hmac.New(sha256.New, s.cfg.Key)
	mac.Write([]byte("wmxml-fingerprint|"))
	mac.Write([]byte(recipient))
	seed := hex.EncodeToString(mac.Sum(nil))
	return wmark.Random(seed, s.BaseBits())
}

// Payload expands a recipient's base code into the embedded mark: the
// base replicated Replicas times, so each code bit is carried by
// several disjoint carrier groups.
func (s *System) Payload(recipient string) wmark.Bits {
	base := s.Code(recipient)
	out := make(wmark.Bits, 0, len(base)*s.replicas)
	for r := 0; r < s.replicas; r++ {
		out = append(out, base...)
	}
	return out
}

// configFor returns the core config carrying a payload of the code
// geometry; mark supplies the embedded bits (zeroed for decoding —
// decode only uses its length).
func (s *System) configFor(mark wmark.Bits) core.Config {
	cfg := s.cfg
	cfg.Mark = mark
	return cfg
}

// Embed produces the recipient-specific copy: it watermarks doc in
// place with the recipient's payload and returns the core receipt
// (safeguard Records exactly like a plain embedding's Q).
func (s *System) Embed(doc *xmltree.Node, recipient string) (*core.EmbedResult, error) {
	return s.EmbedIndexed(doc, recipient, nil)
}

// EmbedIndexed is Embed reusing a caller-built document index over doc.
func (s *System) EmbedIndexed(doc *xmltree.Node, recipient string, ix *index.Index) (*core.EmbedResult, error) {
	if recipient == "" {
		return nil, fmt.Errorf("fingerprint: recipient id is required")
	}
	return core.EmbedIndexed(doc, s.configFor(s.Payload(recipient)), ix)
}

// Accusation is one candidate recipient's tracing score.
type Accusation struct {
	// Recipient is the candidate's id.
	Recipient string `json:"recipient"`
	// MatchFraction is the fraction of decided code bits equal to the
	// candidate's code (innocents sit near 0.5).
	MatchFraction float64 `json:"match_fraction"`
	// Z is the standard score of MatchFraction under the innocent
	// (fair-coin) null hypothesis.
	Z float64 `json:"z"`
	// PValue is the exact binomial probability that an innocent code
	// matches at least this well.
	PValue float64 `json:"p_value"`
	// Accused reports PValue <= the trace's Bonferroni threshold.
	Accused bool `json:"accused"`
	// SegmentMatches is the per-segment match fraction — the
	// Boneh–Shaw-style evidence of which code segments survived a
	// cut-and-paste coalition.
	SegmentMatches []float64 `json:"segment_matches,omitempty"`
	// SegmentsAttributed counts segments matching at >= 90%.
	SegmentsAttributed int `json:"segments_attributed"`
}

// TraceResult is a ranked accusation list for one suspect document.
type TraceResult struct {
	// Accusations is sorted most-suspect first (descending Z).
	Accusations []Accusation `json:"accusations"`
	// Accused lists the ids that cleared the threshold, in rank order.
	Accused []string `json:"accused"`
	// DecidedBits is the number of base code positions with a non-tied
	// vote majority (the sample size of every correlation test).
	DecidedBits int `json:"decided_bits"`
	// TiedBits counts voted positions whose majority tied (ambiguous
	// under collusion; excluded from the tests).
	TiedBits int `json:"tied_bits"`
	// Threshold is the Bonferroni-corrected p-value bound accusations
	// had to clear (Alpha / candidates).
	Threshold float64 `json:"threshold"`
	// QueriesRun and QueryMisses report the single decode pass.
	QueriesRun  int `json:"queries_run"`
	QueryMisses int `json:"query_misses"`
}

// TraceOptions selects how the suspect document is decoded.
type TraceOptions struct {
	// Records is a safeguarded query set from any fingerprint embedding
	// of this document type; nil decodes blind (the suspect must still
	// follow the original schema — true for value-level collusion).
	Records []core.QueryRecord
	// Rewriter translates queries for a re-organized suspect (with
	// Records only).
	Rewriter core.Rewriter
	// Index is an optional caller-built index over the suspect; nil
	// builds one internally. The wmxmld doc cache passes one here so
	// repeated traces of the same suspect skip reparse + index build.
	Index *index.Index
	// Plan is an optional decode plan precompiled from Records under
	// PlanConfig (same geometry as this system). When set, Records and
	// Rewriter are ignored and the decode skips query compilation — the
	// warm path for repeated traces of one owner's receipts. The plan's
	// mark length must equal PayloadBits.
	Plan *core.DecodePlan
	// Trace receives "decode" and "correlate" stage spans when the call
	// runs under an instrumented request; nil records nothing.
	Trace *obs.Trace
}

// Trace decodes the suspect document once and scores every candidate
// recipient against the recovered code. Candidates not in the returned
// Accused list are, at confidence 1-Alpha, not sources of the leak.
func (s *System) Trace(doc *xmltree.Node, candidates []string, opts TraceOptions) (*TraceResult, error) {
	if len(candidates) == 0 {
		return nil, fmt.Errorf("fingerprint: no candidate recipients to trace against")
	}
	var dec *core.DecodeResult
	var err error
	dsp := opts.Trace.StartSpan("decode")
	switch {
	case opts.Plan != nil:
		if got := opts.Plan.MarkLen(); got != s.PayloadBits() {
			return nil, fmt.Errorf("fingerprint: trace plan decodes %d bits, system payload is %d", got, s.PayloadBits())
		}
		dec = opts.Plan.Decode(doc, opts.Index)
	case opts.Records != nil:
		cfg := s.configFor(make(wmark.Bits, s.PayloadBits()))
		dec, err = core.DecodeWithQueriesIndexed(doc, cfg, opts.Records, opts.Rewriter, opts.Index)
	default:
		cfg := s.configFor(make(wmark.Bits, s.PayloadBits()))
		dec, err = core.DecodeBlindIndexed(doc, cfg, opts.Index)
	}
	dsp.End()
	if err != nil {
		return nil, err
	}
	csp := opts.Trace.StartSpan("correlate")
	res := s.scoreVotes(dec, candidates)
	csp.End()
	return res, nil
}

// scoreVotes folds the replicated payload votes onto the base code and
// ranks the candidates.
func (s *System) scoreVotes(dec *core.DecodeResult, candidates []string) *TraceResult {
	base := s.BaseBits()
	ones := make([]int, base)
	zeros := make([]int, base)
	for i := 0; i < dec.Votes.Len(); i++ {
		o, z := dec.Votes.Counts(i)
		ones[i%base] += o
		zeros[i%base] += z
	}
	// recovered[j] is the majority bit of base position j; decided[j]
	// is false for unvoted positions and ties.
	recovered := make(wmark.Bits, base)
	decided := make([]bool, base)
	decidedN, ties := 0, 0
	for j := 0; j < base; j++ {
		switch {
		case ones[j] > zeros[j]:
			recovered[j], decided[j] = 1, true
			decidedN++
		case zeros[j] > ones[j]:
			recovered[j], decided[j] = 0, true
			decidedN++
		case ones[j] > 0: // voted but tied
			ties++
		}
	}
	res := &TraceResult{
		DecidedBits: decidedN,
		TiedBits:    ties,
		Threshold:   s.alpha / float64(len(candidates)),
		QueriesRun:  dec.QueriesRun,
		QueryMisses: dec.QueryMisses,
	}
	for _, cand := range candidates {
		code := s.Code(cand)
		acc := Accusation{Recipient: cand, SegmentMatches: make([]float64, s.segments)}
		matches := 0
		for seg := 0; seg < s.segments; seg++ {
			segMatch, segDecided := 0, 0
			for b := 0; b < s.segBits; b++ {
				j := seg*s.segBits + b
				if !decided[j] {
					continue
				}
				segDecided++
				if recovered[j] == code[j] {
					segMatch++
				}
			}
			matches += segMatch
			if segDecided > 0 {
				acc.SegmentMatches[seg] = float64(segMatch) / float64(segDecided)
				if acc.SegmentMatches[seg] >= 0.9 {
					acc.SegmentsAttributed++
				}
			}
		}
		if decidedN > 0 {
			acc.MatchFraction = float64(matches) / float64(decidedN)
			acc.Z = (acc.MatchFraction - 0.5) * 2 * math.Sqrt(float64(decidedN))
			// The exact count keeps the test honest: rounding the
			// fraction back to a count can drop a tail term and accuse
			// past the advertised budget.
			acc.PValue = wmark.FalsePositiveProbabilityCount(decidedN, matches)
			acc.Accused = acc.PValue <= res.Threshold
		} else {
			acc.PValue = 1
		}
		res.Accusations = append(res.Accusations, acc)
	}
	// Rank most-suspect first; ties break on id for determinism.
	sort.SliceStable(res.Accusations, func(i, k int) bool {
		a, b := res.Accusations[i], res.Accusations[k]
		if a.Z != b.Z {
			return a.Z > b.Z
		}
		return a.Recipient < b.Recipient
	})
	for _, a := range res.Accusations {
		if a.Accused {
			res.Accused = append(res.Accused, a.Recipient)
		}
	}
	return res
}
