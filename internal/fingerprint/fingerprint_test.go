package fingerprint

import (
	"fmt"
	"testing"

	"wmxml/internal/datagen"
	"wmxml/internal/index"
)

func testSystem(t *testing.T, ds *datagen.Dataset, key string) *System {
	t.Helper()
	s, err := New(Options{
		Key:     []byte(key),
		Schema:  ds.Schema,
		Catalog: ds.Catalog,
		Targets: ds.Targets,
		Gamma:   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func pubs(t *testing.T, books int, seed int64) *datagen.Dataset {
	t.Helper()
	return datagen.Publications(datagen.PubConfig{Books: books, Seed: seed})
}

func TestCodesKeyedAndDeterministic(t *testing.T) {
	ds := pubs(t, 10, 41)
	s1 := testSystem(t, ds, "owner-key")
	s2 := testSystem(t, ds, "owner-key")
	s3 := testSystem(t, ds, "other-key")

	if !s1.Code("acme").Equal(s2.Code("acme")) {
		t.Error("same key + recipient must derive the same code")
	}
	if s1.Code("acme").Equal(s1.Code("bcorp")) {
		t.Error("different recipients must get different codes")
	}
	if s1.Code("acme").Equal(s3.Code("acme")) {
		t.Error("different keys must derive different codes")
	}
	if got := len(s1.Code("acme")); got != s1.BaseBits() {
		t.Errorf("code length = %d, want %d", got, s1.BaseBits())
	}
	if got := len(s1.Payload("acme")); got != s1.PayloadBits() {
		t.Errorf("payload length = %d, want %d", got, s1.PayloadBits())
	}
	// The payload is the base code replicated.
	base, pay := s1.Code("acme"), s1.Payload("acme")
	for i, b := range pay {
		if b != base[i%len(base)] {
			t.Fatalf("payload bit %d does not replicate the base code", i)
		}
	}
}

// TestSingleLeakerTrace pins the no-collusion case: a copy handed to
// one recipient traces back to exactly that recipient, both blind and
// through a safeguarded query set.
func TestSingleLeakerTrace(t *testing.T) {
	ds := pubs(t, 300, 42)
	s := testSystem(t, ds, "owner-key")
	recipients := make([]string, 8)
	for i := range recipients {
		recipients[i] = fmt.Sprintf("recipient-%d", i)
	}

	leaker := recipients[3]
	copyDoc := ds.Doc.Clone()
	rec, err := s.Embed(copyDoc, leaker)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Carriers == 0 {
		t.Fatal("no carriers selected")
	}

	for name, opts := range map[string]TraceOptions{
		"blind":   {},
		"records": {Records: rec.Records},
	} {
		res, err := s.Trace(copyDoc, recipients, opts)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(res.Accused) != 1 || res.Accused[0] != leaker {
			t.Errorf("%s: accused = %v, want exactly [%s]", name, res.Accused, leaker)
		}
		if top := res.Accusations[0]; top.Recipient != leaker || top.MatchFraction < 0.99 {
			t.Errorf("%s: top accusation %+v, want %s at ~1.0", name, top, leaker)
		}
		for _, a := range res.Accusations[1:] {
			if a.Accused {
				t.Errorf("%s: innocent %s accused (p=%g)", name, a.Recipient, a.PValue)
			}
		}
	}
}

// TestTraceUnmarkedDocument: a virgin document accuses nobody.
func TestTraceUnmarkedDocument(t *testing.T) {
	ds := pubs(t, 300, 43)
	s := testSystem(t, ds, "owner-key")
	recipients := []string{"a", "b", "c", "d", "e"}
	res, err := s.Trace(ds.Doc, recipients, TraceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Accused) != 0 {
		t.Errorf("virgin document accused %v", res.Accused)
	}
}

// TestTraceSweepSharesOneDecode pins the efficiency contract: the
// candidate count does not change how many queries run — the decode
// happens once and candidates only add bit comparisons.
func TestTraceSweepSharesOneDecode(t *testing.T) {
	ds := pubs(t, 200, 44)
	s := testSystem(t, ds, "owner-key")
	copyDoc := ds.Doc.Clone()
	rec, err := s.Embed(copyDoc, "leaker")
	if err != nil {
		t.Fatal(err)
	}
	ix := index.New(copyDoc)
	one, err := s.Trace(copyDoc, []string{"leaker"}, TraceOptions{Records: rec.Records, Index: ix})
	if err != nil {
		t.Fatal(err)
	}
	many := []string{"leaker"}
	for i := 0; i < 19; i++ {
		many = append(many, fmt.Sprintf("innocent-%d", i))
	}
	wide, err := s.Trace(copyDoc, many, TraceOptions{Records: rec.Records, Index: ix})
	if err != nil {
		t.Fatal(err)
	}
	if one.QueriesRun != wide.QueriesRun {
		t.Errorf("queries run changed with candidate count: %d vs %d", one.QueriesRun, wide.QueriesRun)
	}
	if len(wide.Accusations) != 20 {
		t.Errorf("accusations = %d, want 20", len(wide.Accusations))
	}
	if wide.Accusations[0].Recipient != "leaker" {
		t.Errorf("top ranked = %s, want leaker", wide.Accusations[0].Recipient)
	}
	// Bonferroni: the wide sweep's threshold is 20x stricter.
	if wide.Threshold >= one.Threshold {
		t.Errorf("threshold not corrected for candidates: %g vs %g", wide.Threshold, one.Threshold)
	}
}

func TestTraceNoCandidates(t *testing.T) {
	ds := pubs(t, 10, 45)
	s := testSystem(t, ds, "owner-key")
	if _, err := s.Trace(ds.Doc, nil, TraceOptions{}); err == nil {
		t.Fatal("expected an error for an empty candidate list")
	}
}

func TestNewValidation(t *testing.T) {
	ds := pubs(t, 10, 46)
	if _, err := New(Options{Schema: ds.Schema}); err == nil {
		t.Error("missing key must fail")
	}
	if _, err := New(Options{Key: []byte("k")}); err == nil {
		t.Error("missing schema must fail")
	}
}
