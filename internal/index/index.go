// Package index builds per-document query-acceleration structures — the
// layer that turns WmXML detection from O(N^2) tree scans into
// near-linear work.
//
// An Index is built in one pass over a document and holds:
//
//   - a symbol table interning every element and attribute name, so the
//     hot structures key on small integers instead of strings;
//   - a tag inverted index (tag -> elements in document order), serving
//     descendant-rooted lookups like //book[...];
//   - a rooted-path index (tag path -> elements in document order),
//     serving the clean child chains of identity queries (/db/book);
//   - a key-value index ((scope, selector) -> value -> elements) — the
//     exact shape of every identity query WmXML generates
//     (db/book[title='X']/year). Key-value tables are built lazily, on
//     the first query using a (scope, selector) pair, in one O(scope)
//     pass; every later lookup is a hash probe.
//
// The query planner (internal/xpath.Plan) consumes an Index through the
// xpath.DocIndex interface and guarantees results bit-for-bit identical
// to the tree-walking evaluator, falling back to it for shapes the index
// cannot serve.
//
// Invalidation rules: after value mutations (Item.SetValue, SetText,
// SetAttr — what embedding does), call Invalidate to drop the
// value-derived key-value tables; the structural tables remain valid.
// After structural mutations (adding, removing or moving elements), call
// Rebuild. An Index is safe for concurrent readers; Invalidate and
// Rebuild must not race with in-flight queries on other goroutines.
package index

import (
	"strings"
	"sync"

	"wmxml/internal/xmltree"
	"wmxml/internal/xpath"
)

// symID is an interned name; pathID an interned rooted tag path.
type (
	symID  int32
	pathID int32
)

// symtab interns element and attribute names. Attribute names are
// interned with a leading '@' so the two namespaces cannot collide.
type symtab struct {
	ids   map[string]symID
	names []string
}

func newSymtab() *symtab {
	return &symtab{ids: make(map[string]symID)}
}

func (t *symtab) intern(name string) symID {
	if id, ok := t.ids[name]; ok {
		return id
	}
	id := symID(len(t.names))
	t.names = append(t.names, name)
	t.ids[name] = id
	return id
}

func (t *symtab) lookup(name string) (symID, bool) {
	id, ok := t.ids[name]
	return id, ok
}

// pathkey interns one rooted-path trie edge: a parent path extended by
// one element name.
type pathkey struct {
	parent pathID
	name   symID
}

// kvkey identifies one key-value table. A struct key (rather than a
// concatenated string) keeps the warm Lookup probe allocation-free:
// Go map probes with composite keys built from existing strings do not
// copy them.
type kvkey struct {
	scope  string
	selRel string
}

// Index is a per-document query accelerator. Build with New; see the
// package comment for the invalidation contract.
type Index struct {
	top *xmltree.Node

	// mu guards every table: the structural ones against Rebuild, the
	// key-value tables against lazy construction.
	mu     sync.RWMutex
	syms   *symtab
	paths  map[pathkey]pathID
	npaths pathID
	byTag  map[symID][]*xmltree.Node
	byPath map[pathID][]*xmltree.Node
	kv     map[kvkey]map[string][]*xmltree.Node
}

// Index implements the planner's index contract.
var _ xpath.DocIndex = (*Index)(nil)

// New builds an index over the document containing root (the index
// always covers the whole tree, from root's topmost ancestor down), in
// one pass.
func New(root *xmltree.Node) *Index {
	ix := &Index{}
	if root == nil {
		return ix
	}
	top := root
	for top.Parent != nil {
		top = top.Parent
	}
	ix.top = top
	ix.build()
	return ix
}

// build runs the single indexing pass. Callers hold mu (or have
// exclusive access, as in New).
func (ix *Index) build() {
	ix.syms = newSymtab()
	ix.paths = make(map[pathkey]pathID)
	ix.npaths = 0
	ix.byTag = make(map[symID][]*xmltree.Node)
	ix.byPath = make(map[pathID][]*xmltree.Node)
	ix.kv = make(map[kvkey]map[string][]*xmltree.Node)

	var walk func(n *xmltree.Node, parent pathID)
	index1 := func(e *xmltree.Node, parent pathID) pathID {
		sym := ix.syms.intern(e.Name)
		ix.byTag[sym] = append(ix.byTag[sym], e)
		pid := ix.pathFor(parent, sym)
		ix.byPath[pid] = append(ix.byPath[pid], e)
		for _, a := range e.Attrs {
			ix.syms.intern("@" + a.Name)
		}
		return pid
	}
	walk = func(n *xmltree.Node, parent pathID) {
		for _, c := range n.Children {
			if c.Kind != xmltree.ElementNode {
				continue
			}
			walk(c, index1(c, parent))
		}
	}
	if ix.top.Kind == xmltree.ElementNode {
		// A detached subtree: its top element is the virtual document
		// element, so rooted paths start with its own name (matching the
		// evaluator's absolute-path semantics for detached trees).
		walk(ix.top, index1(ix.top, 0))
	} else {
		walk(ix.top, 0)
	}
}

// pathFor interns the rooted path (parent, name), allocating a fresh id
// on first sight. Path id 0 is the root sentinel.
func (ix *Index) pathFor(parent pathID, name symID) pathID {
	k := pathkey{parent, name}
	if id, ok := ix.paths[k]; ok {
		return id
	}
	ix.npaths++
	ix.paths[k] = ix.npaths
	return ix.npaths
}

// Top returns the indexed document's topmost node (nil for an empty
// index). Nil-receiver safe so a typed-nil *Index behaves as "no index".
func (ix *Index) Top() *xmltree.Node {
	if ix == nil {
		return nil
	}
	return ix.top
}

// ScopeElements returns the elements addressed by a planner scope
// string — "db/book" (rooted tag path) or "//book" (tag lookup) — in
// document order. Unknown scopes return nil.
func (ix *Index) ScopeElements(scope string) []*xmltree.Node {
	if ix == nil || ix.top == nil {
		return nil
	}
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.scopeElements(scope)
}

// TagElements returns every element with the given tag, in document
// order (the tag inverted index).
func (ix *Index) TagElements(name string) []*xmltree.Node {
	return ix.ScopeElements("//" + name)
}

// scopeElements resolves a scope string; callers hold mu.
func (ix *Index) scopeElements(scope string) []*xmltree.Node {
	if name, ok := strings.CutPrefix(scope, "//"); ok {
		if strings.ContainsRune(name, '/') {
			return nil
		}
		sym, ok := ix.syms.lookup(name)
		if !ok {
			return nil
		}
		return ix.byTag[sym]
	}
	pid := pathID(0)
	for _, seg := range strings.Split(strings.TrimPrefix(scope, "/"), "/") {
		sym, ok := ix.syms.lookup(seg)
		if !ok {
			return nil
		}
		id, ok := ix.paths[pathkey{pid, sym}]
		if !ok {
			return nil
		}
		pid = id
	}
	return ix.byPath[pid]
}

// Lookup returns the scope's elements for which the relative path selRel
// selects at least one item with the given string value, in document
// order. The (scope, selRel) table is built on first use — one pass over
// the scope's elements — and served from the hash afterwards.
func (ix *Index) Lookup(scope, selRel, value string) []*xmltree.Node {
	if ix == nil || ix.top == nil {
		return nil
	}
	key := kvkey{scope: scope, selRel: selRel}
	ix.mu.RLock()
	m, ok := ix.kv[key]
	ix.mu.RUnlock()
	if !ok {
		m = ix.buildKV(key)
	}
	return m[value]
}

// buildKV constructs one key-value table under the write lock (which
// also single-flights concurrent builders of the same table).
func (ix *Index) buildKV(key kvkey) map[string][]*xmltree.Node {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if m, ok := ix.kv[key]; ok {
		return m
	}
	m := make(map[string][]*xmltree.Node)
	// The planner only emits selectors that round-trip through the
	// parser, so Compile cannot realistically fail; an empty table is the
	// safe outcome if it ever does.
	if q, err := xpath.Compile(key.selRel); err == nil {
		for _, e := range ix.scopeElements(key.scope) {
			for _, it := range q.Select(e) {
				v := it.Value()
				lst := m[v]
				// An element whose selector yields the same value twice
				// must appear once (elements are processed in order, so
				// checking the tail suffices).
				if len(lst) > 0 && lst[len(lst)-1] == e {
					continue
				}
				m[v] = append(lst, e)
			}
		}
	}
	ix.kv[key] = m
	return m
}

// Invalidate drops the value-derived key-value tables. Call it after
// mutating document values (what embedding does); the structural tables
// stay valid because value writes do not move elements.
func (ix *Index) Invalidate() {
	if ix == nil || ix.top == nil {
		return
	}
	ix.mu.Lock()
	ix.kv = make(map[kvkey]map[string][]*xmltree.Node)
	ix.mu.Unlock()
}

// Rebuild re-runs the full indexing pass. Call it after structural
// mutations (elements added, removed or moved).
func (ix *Index) Rebuild() {
	if ix == nil || ix.top == nil {
		return
	}
	ix.mu.Lock()
	ix.build()
	ix.mu.Unlock()
}

// Stats describes an index's size, for diagnostics and capacity
// planning.
type Stats struct {
	// Elements is the number of indexed elements.
	Elements int
	// Names is the number of interned element and attribute names.
	Names int
	// Paths is the number of distinct rooted tag paths.
	Paths int
	// KVTables is the number of materialized key-value tables.
	KVTables int
}

// Stats reports the index's current size.
func (ix *Index) Stats() Stats {
	if ix == nil || ix.top == nil {
		return Stats{}
	}
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	st := Stats{
		Names:    len(ix.syms.names),
		Paths:    int(ix.npaths),
		KVTables: len(ix.kv),
	}
	for _, nodes := range ix.byTag {
		st.Elements += len(nodes)
	}
	return st
}
