package index

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"wmxml/internal/xmltree"
	"wmxml/internal/xpath"
)

const testDoc = `<db>
  <book id="b1"><title>Alpha</title><year>1990</year><author>Ann</author><author>Bob</author></book>
  <book id="b2"><title>Beta</title><year>1995</year><author>Cid</author></book>
  <book id="b3"><title>Alpha</title><year>2001</year></book>
  <shelf><book id="n1"><title>Nested</title></book></shelf>
</db>`

func parseDoc(t testing.TB, src string) *xmltree.Node {
	t.Helper()
	doc, err := xmltree.ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

func names(nodes []*xmltree.Node, attr string) []string {
	out := make([]string, len(nodes))
	for i, n := range nodes {
		out[i] = n.AttrOr(attr, n.Name)
	}
	return out
}

func TestScopeElements(t *testing.T) {
	ix := New(parseDoc(t, testDoc))
	cases := []struct {
		scope string
		want  []string
	}{
		{"db/book", []string{"b1", "b2", "b3"}},
		{"db/shelf/book", []string{"n1"}},
		{"//book", []string{"b1", "b2", "b3", "n1"}},
		{"db", []string{"db"}},
		{"db/missing", nil},
		{"//missing", nil},
		{"book", nil}, // rooted path: "book" is not a top-level element
	}
	for _, c := range cases {
		got := names(ix.ScopeElements(c.scope), "id")
		if !reflect.DeepEqual(got, c.want) && !(len(got) == 0 && len(c.want) == 0) {
			t.Errorf("ScopeElements(%q) = %v, want %v", c.scope, got, c.want)
		}
	}
	if got := names(ix.TagElements("book"), "id"); len(got) != 4 {
		t.Errorf("TagElements(book) = %v", got)
	}
}

func TestLookup(t *testing.T) {
	ix := New(parseDoc(t, testDoc))
	if got := names(ix.Lookup("db/book", "title", "Alpha"), "id"); !reflect.DeepEqual(got, []string{"b1", "b3"}) {
		t.Errorf("Lookup(title=Alpha) = %v", got)
	}
	if got := names(ix.Lookup("db/book", "@id", "b2"), "id"); !reflect.DeepEqual(got, []string{"b2"}) {
		t.Errorf("Lookup(@id=b2) = %v", got)
	}
	if got := names(ix.Lookup("db/book", "author", "Bob"), "id"); !reflect.DeepEqual(got, []string{"b1"}) {
		t.Errorf("Lookup(author=Bob) = %v", got)
	}
	if got := ix.Lookup("db/book", "title", "Zed"); len(got) != 0 {
		t.Errorf("Lookup(miss) = %v", got)
	}
	if got := names(ix.Lookup("//book", "title", "Nested"), "id"); !reflect.DeepEqual(got, []string{"n1"}) {
		t.Errorf("Lookup(//book title=Nested) = %v", got)
	}
	if st := ix.Stats(); st.KVTables != 4 {
		t.Errorf("KVTables = %d, want 4", st.KVTables)
	}
}

// An element whose selector yields the same value through several items
// must appear once per value.
func TestLookupDuplicateSelectorValues(t *testing.T) {
	ix := New(parseDoc(t, `<db><r id="x"><k>v</k><k>v</k><k>w</k></r></db>`))
	if got := names(ix.Lookup("db/r", "k", "v"), "id"); !reflect.DeepEqual(got, []string{"x"}) {
		t.Errorf("duplicate selector values: %v", got)
	}
}

func TestInvalidateAfterValueMutation(t *testing.T) {
	doc := parseDoc(t, testDoc)
	ix := New(doc)
	if got := ix.Lookup("db/book", "title", "Beta"); len(got) != 1 {
		t.Fatalf("precondition: %v", got)
	}
	// Mutate a value the table was built from.
	b2 := doc.Root().ChildElementsNamed("book")[1]
	b2.FirstChildNamed("title").SetText("Renamed")
	ix.Invalidate()
	if got := ix.Lookup("db/book", "title", "Beta"); len(got) != 0 {
		t.Errorf("stale lookup after Invalidate: %v", names(got, "id"))
	}
	if got := names(ix.Lookup("db/book", "title", "Renamed"), "id"); !reflect.DeepEqual(got, []string{"b2"}) {
		t.Errorf("post-mutation lookup: %v", got)
	}
}

func TestRebuildAfterStructuralMutation(t *testing.T) {
	doc := parseDoc(t, testDoc)
	ix := New(doc)
	if n := len(ix.ScopeElements("db/book")); n != 3 {
		t.Fatalf("precondition: %d", n)
	}
	nb := xmltree.Elem("book", xmltree.TextElem("title", "Zeta"))
	nb.SetAttr("id", "b9")
	doc.Root().AppendChild(nb)
	ix.Rebuild()
	if got := names(ix.ScopeElements("db/book"), "id"); !reflect.DeepEqual(got, []string{"b1", "b2", "b3", "b9"}) {
		t.Errorf("after Rebuild: %v", got)
	}
	if got := names(ix.Lookup("db/book", "title", "Zeta"), "id"); !reflect.DeepEqual(got, []string{"b9"}) {
		t.Errorf("lookup after Rebuild: %v", got)
	}
}

// New ascends to the topmost ancestor, so an index built from any node
// covers the whole document.
func TestNewFromInnerNode(t *testing.T) {
	doc := parseDoc(t, testDoc)
	inner := doc.Root().ChildElementsNamed("book")[0]
	ix := New(inner)
	if ix.Top() != doc {
		t.Fatal("Top should be the document node")
	}
	if n := len(ix.ScopeElements("db/book")); n != 3 {
		t.Errorf("ScopeElements from inner-built index: %d", n)
	}
}

func TestStats(t *testing.T) {
	ix := New(parseDoc(t, testDoc))
	st := ix.Stats()
	// db + shelf + 4 book + 4 title + 3 year + 3 author = 16 elements.
	if st.Elements != 16 {
		t.Errorf("Elements = %d, want 16", st.Elements)
	}
	// Tags: db, book, title, year, author, shelf + attribute @id.
	if st.Names != 7 {
		t.Errorf("Names = %d, want 7", st.Names)
	}
	// Paths: db, db/book, db/book/{title,year,author}, db/shelf,
	// db/shelf/book, db/shelf/book/title.
	if st.Paths != 8 {
		t.Errorf("Paths = %d, want 8", st.Paths)
	}
	if (&Index{}).Stats() != (Stats{}) || (*Index)(nil).Stats() != (Stats{}) {
		t.Error("empty/nil index stats should be zero")
	}
}

func TestNilSafety(t *testing.T) {
	var ix *Index
	if ix.Top() != nil || ix.ScopeElements("a") != nil || ix.Lookup("a", "b", "c") != nil {
		t.Error("nil index should answer empty")
	}
	ix.Invalidate()
	ix.Rebuild()
	empty := New(nil)
	if empty.Top() != nil || empty.ScopeElements("a") != nil {
		t.Error("empty index should answer empty")
	}
}

// Concurrent lookups racing on lazy key-value construction must be safe
// and deterministic (run under -race).
func TestConcurrentLookups(t *testing.T) {
	doc := parseDoc(t, testDoc)
	ix := New(doc)
	q := xpath.MustCompile("/db/book[title='Alpha']/year")
	want := q.Select(doc)
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if got := q.SelectIndexed(doc, ix); !reflect.DeepEqual(want, got) {
					errs <- fmt.Errorf("concurrent mismatch: %v", got)
					return
				}
				ix.Lookup("db/book", "author", "Ann")
				ix.ScopeElements("//book")
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
