package xmltree

// The fast tokenizer's one obligation: any input it accepts must build
// exactly the tree encoding/xml would have built, under every option
// set. The fuzz target drives both parsers over arbitrary bytes; the
// table test additionally pins that representative data-centric
// documents actually take the fast path (a silent bail would be a
// performance regression the equivalence check alone cannot see).

import (
	"strings"
	"testing"
)

// sameTree is strict structural equality: kinds, names, values,
// attributes (order-sensitive) and children, with no normalization.
func sameTree(a, b *Node) bool {
	if a.Kind != b.Kind || a.Name != b.Name || a.Value != b.Value ||
		len(a.Attrs) != len(b.Attrs) || len(a.Children) != len(b.Children) {
		return false
	}
	for i := range a.Attrs {
		if a.Attrs[i] != b.Attrs[i] {
			return false
		}
	}
	for i := range a.Children {
		if !sameTree(a.Children[i], b.Children[i]) {
			return false
		}
	}
	return true
}

var fastParseSeeds = []string{
	`<db><book id="1"><title>T</title><year>1995</year></book></db>`,
	"<?xml version=\"1.0\"?>\n<db><book/><book alt='x &amp; y'/></db>\n",
	`<a>one<!-- dropped -->two<![CDATA[<raw&>]]>three</a>`,
	`<a b="&quot;&lt;&gt;&apos;">x</a>`,
	`<a>  <b> spaced </b>  </a>`,
	`<a><b/><b></b><b  c = "1"  d='2' /></a>`,
	"<a>line1\r\nline2\rline3</a>",
	`<r>]] &gt; ok</r>`,
	`<a.b-c_d><_e/></a.b-c_d>`,
	`<a></a >`,
}

func fastOpts(keepWS, keepComments bool) ParseOptions {
	return ParseOptions{KeepWhitespaceText: keepWS, KeepComments: keepComments}
}

func TestParseFastEquivalenceAndCoverage(t *testing.T) {
	for _, src := range fastParseSeeds {
		for _, keepWS := range []bool{false, true} {
			for _, keepC := range []bool{false, true} {
				opts := fastOpts(keepWS, keepC)
				fast, ok := parseFast([]byte(src), opts)
				if !ok {
					t.Fatalf("parseFast bailed on representative input %q (opts %+v)", src, opts)
				}
				ref, err := Parse(strings.NewReader(src), opts)
				if err != nil {
					t.Fatalf("Parse rejected %q: %v", src, err)
				}
				if !sameTree(fast, ref) {
					t.Fatalf("tree mismatch for %q (opts %+v):\nfast: %s\nref:  %s",
						src, opts, SerializeString(fast), SerializeString(ref))
				}
			}
		}
	}
}

func TestParseFastBailsOutsideSubset(t *testing.T) {
	for _, src := range []string{
		`<a xmlns:n="urn:x"><n:b/></a>`,     // namespaces
		`<a xmlns="urn:y"><b/></a>`,         // default namespace
		`<a>&#65;</a>`,                      // numeric char ref
		`<a><?pi body?></a>`,                // processing instruction
		`<!DOCTYPE a><a/>`,                  // directive
		"<a>caf\xc3\xa9</a>",                // non-ASCII
		`<?xml version="1.0" encoding="ISO-8859-1"?><a/>`, // foreign encoding
	} {
		if _, ok := parseFast([]byte(src), ParseOptions{}); ok {
			t.Errorf("parseFast accepted out-of-subset input %q", src)
		}
		// The ParseBytes fallback must agree with Parse exactly.
		ref, refErr := Parse(strings.NewReader(src), ParseOptions{})
		got, gotErr := ParseBytes([]byte(src), ParseOptions{})
		if (refErr == nil) != (gotErr == nil) {
			t.Fatalf("ParseBytes/Parse error disagreement on %q: %v vs %v", src, gotErr, refErr)
		}
		if refErr == nil && !sameTree(got, ref) {
			t.Fatalf("ParseBytes fallback tree mismatch on %q", src)
		}
	}
}

// FuzzParseBytesEquivalence drives the fast and strict parsers over the
// same bytes: whenever the fast path claims success, the strict parser
// must succeed too and produce the identical tree. Run short in CI
// (go test -fuzz FuzzParseBytesEquivalence -fuzztime 10s).
func FuzzParseBytesEquivalence(f *testing.F) {
	for _, seed := range fastParseSeeds {
		f.Add([]byte(seed), false, false)
	}
	f.Add([]byte(`<a]]></a>`), true, true)
	f.Add([]byte(`<a b="]]>"/>`), false, true)
	f.Add([]byte(`<!--x--><a/><!--y-->`), true, true)
	f.Add([]byte("<a><![CDATA[ ]]></a>"), false, false)
	f.Add([]byte(`<a>&unknown;</a>`), false, false)
	f.Add([]byte(`<a/><b/>`), false, false)
	f.Add([]byte(`text outside`), false, false)
	f.Fuzz(func(t *testing.T, data []byte, keepWS, keepComments bool) {
		opts := fastOpts(keepWS, keepComments)
		fast, ok := parseFast(data, opts)
		if !ok {
			return // out of subset: ParseBytes defers to Parse wholesale
		}
		ref, err := Parse(strings.NewReader(string(data)), opts)
		if err != nil {
			t.Fatalf("parseFast accepted input the strict parser rejects: %q: %v", data, err)
		}
		if !sameTree(fast, ref) {
			t.Fatalf("tree mismatch on %q:\nfast: %s\nref:  %s",
				data, SerializeString(fast), SerializeString(ref))
		}
	})
}
