package xmltree

import (
	"strings"
	"testing"
)

func TestSerializeRoundTrip(t *testing.T) {
	cases := []string{
		`<a/>`,
		`<a x="1" y="two"/>`,
		`<a><b>text</b><c/></a>`,
		`<db><book publisher="mkp"><title>Readings</title><year>1998</year></book></db>`,
		`<a>mixed <b>bold</b> tail</a>`,
		`<a>&amp; &lt; &gt;</a>`,
	}
	for _, src := range cases {
		doc := MustParseString(src)
		out := SerializeString(doc)
		doc2, err := ParseString(out)
		if err != nil {
			t.Fatalf("re-parse %q (from %q): %v", out, src, err)
		}
		if !Equal(doc, doc2, CompareOptions{}) {
			t.Errorf("round trip changed tree: %q -> %q: %v", src, out, FirstDiff(doc, doc2))
		}
	}
}

func TestSerializeEscaping(t *testing.T) {
	n := Elem("a", NewText(`1<2 & "q"`))
	n.SetAttr("at", `<&">`)
	out := SerializeString(n)
	if strings.Contains(out, `1<2`) {
		t.Errorf("unescaped < in text: %q", out)
	}
	if !strings.Contains(out, "&lt;2") || !strings.Contains(out, "&amp;") {
		t.Errorf("text escaping wrong: %q", out)
	}
	if !strings.Contains(out, "&quot;") {
		t.Errorf("attr quote not escaped: %q", out)
	}
	// And it must parse back to the same values.
	doc := MustParseString(out)
	if got := doc.Root().Text(); got != `1<2 & "q"` {
		t.Errorf("escape round trip text = %q", got)
	}
	if v, _ := doc.Root().Attr("at"); v != `<&">` {
		t.Errorf("escape round trip attr = %q", v)
	}
}

func TestSerializeIndent(t *testing.T) {
	doc := MustParseString(`<db><book><title>A Tale</title></book></db>`)
	out := SerializeIndentString(doc)
	if !strings.HasPrefix(out, `<?xml version="1.0" encoding="UTF-8"?>`) {
		t.Errorf("missing declaration: %q", out)
	}
	if !strings.Contains(out, "\n  <book>") {
		t.Errorf("book not indented: %q", out)
	}
	// Leaf values must stay inline: no whitespace injected into data.
	if !strings.Contains(out, "<title>A Tale</title>") {
		t.Errorf("title not inline: %q", out)
	}
	// Pretty output re-parses to the same tree (whitespace stripped).
	doc2, err := ParseString(out)
	if err != nil {
		t.Fatalf("re-parse indented: %v", err)
	}
	if !Equal(doc, doc2, CompareOptions{}) {
		t.Errorf("indent round trip changed tree: %v", FirstDiff(doc, doc2))
	}
}

func TestSerializeOmitDeclaration(t *testing.T) {
	doc := MustParseString(`<a/>`)
	var sb strings.Builder
	if err := Serialize(&sb, doc, SerializeOptions{OmitDeclaration: true}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "<?xml") {
		t.Errorf("declaration not omitted: %q", sb.String())
	}
}

func TestSerializeCommentAndPI(t *testing.T) {
	doc := NewDocument()
	root := NewElement("r")
	root.AppendChild(NewComment("a--b"))
	root.AppendChild(NewProcInst("t", "body"))
	doc.AppendChild(root)
	out := SerializeString(doc)
	if !strings.Contains(out, "<!--a- -b-->") {
		t.Errorf("comment serialization: %q", out)
	}
	if !strings.Contains(out, "<?t body?>") {
		t.Errorf("pi serialization: %q", out)
	}
}

func TestSerializeSelfClosing(t *testing.T) {
	out := SerializeString(Elem("empty"))
	if out != "<empty/>" {
		t.Errorf("empty element = %q, want <empty/>", out)
	}
}

// failWriter fails after n bytes, to exercise serializer error paths.
type failWriter struct{ left int }

func (f *failWriter) Write(p []byte) (int, error) {
	if f.left <= 0 {
		return 0, errWriterFull{}
	}
	n := len(p)
	if n > f.left {
		n = f.left
	}
	f.left -= n
	if n < len(p) {
		return n, errWriterFull{}
	}
	return n, nil
}

type errWriterFull struct{}

func (errWriterFull) Error() string { return "writer full" }

func TestSerializeWriterFailure(t *testing.T) {
	doc := MustParseString(`<db><book><title>A long enough document body</title></book></db>`)
	for _, budget := range []int{0, 1, 5, 20} {
		if err := Serialize(&failWriter{left: budget}, doc, SerializeOptions{}); err == nil {
			t.Errorf("budget %d: serialize succeeded on failing writer", budget)
		}
	}
}
