package xmltree

import (
	"strings"
	"testing"
)

// spanDoc builds a small document exercising the shapes the plan
// compiler cares about: indented structure, inline text elements, an
// empty element, mixed content and attributes with escapable values.
func spanDoc() *Node {
	book := Elem("book",
		TextElem("title", "Systems & Methods"),
		TextElem("price", "129.95"),
		NewElement("note"), // empty: will reshape on SetText
	)
	book.SetAttr("id", "b1")
	book.SetAttr("tag", `a"b<c`)
	doc := NewDocument()
	root := Elem("db", book)
	root.Parent = doc
	doc.Children = []*Node{root}
	return doc
}

func TestSerializeSpansMatchesSerialize(t *testing.T) {
	for _, indent := range []string{"", "  "} {
		doc := spanDoc()
		opts := SerializeOptions{Indent: indent}
		var plain strings.Builder
		if err := Serialize(&plain, doc, opts); err != nil {
			t.Fatalf("serialize: %v", err)
		}
		book := doc.Root().FirstChildNamed("book")
		price := book.FirstChildNamed("price")
		targets := []SpanTarget{
			{Node: price},
			{Node: book, Attr: "tag"},
			{Node: book.FirstChildNamed("note")},
		}
		var withSpans strings.Builder
		spans, err := SerializeSpans(&withSpans, doc, opts, targets)
		if err != nil {
			t.Fatalf("indent %q: SerializeSpans: %v", indent, err)
		}
		if plain.String() != withSpans.String() {
			t.Fatalf("indent %q: span-capturing output differs from Serialize", indent)
		}
		out := withSpans.String()

		// The element span must reproduce via SerializeAt at the
		// recorded depth.
		var re strings.Builder
		if err := SerializeAt(&re, price, spans[0].Depth, opts); err != nil {
			t.Fatalf("SerializeAt: %v", err)
		}
		if got := out[spans[0].Start:spans[0].End]; got != re.String() {
			t.Fatalf("indent %q: element span %q != SerializeAt %q", indent, got, re.String())
		}
		// The attribute span is the escaped value between the quotes.
		if got, want := out[spans[1].Start:spans[1].End], EscapeAttr(`a"b<c`); got != want {
			t.Fatalf("indent %q: attr span %q, want %q", indent, got, want)
		}
		// Empty elements serialize self-closed; their span still covers
		// the whole tag.
		if got := out[spans[2].Start:spans[2].End]; got != "<note/>" {
			t.Fatalf("indent %q: empty-element span %q", indent, got)
		}
	}
}

// TestSpliceEqualsReserialize is the core contract behind patch plans:
// replacing an element's span bytes with the re-rendered modified
// element yields exactly the bytes a full re-serialization of the
// modified tree would produce — including the reshaping SetText causes
// on an empty element.
func TestSpliceEqualsReserialize(t *testing.T) {
	opts := SerializeOptions{Indent: "  "}
	for _, tc := range []struct {
		name  string
		pick  func(doc *Node) *Node
		value string
	}{
		{"text-elem", func(d *Node) *Node { return d.Root().FirstChildNamed("book").FirstChildNamed("price") }, "129.94"},
		{"reshape-empty", func(d *Node) *Node { return d.Root().FirstChildNamed("book").FirstChildNamed("note") }, "now set"},
		{"escaped", func(d *Node) *Node { return d.Root().FirstChildNamed("book").FirstChildNamed("title") }, "a<b&c"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			doc := spanDoc()
			target := tc.pick(doc)
			var orig strings.Builder
			spans, err := SerializeSpans(&orig, doc, opts, []SpanTarget{{Node: target}})
			if err != nil {
				t.Fatalf("SerializeSpans: %v", err)
			}
			// Render the replacement from a detached clone — compiling
			// a plan must not mutate the source document.
			clone := target.Clone()
			clone.SetText(tc.value)
			var alt strings.Builder
			if err := SerializeAt(&alt, clone, spans[0].Depth, opts); err != nil {
				t.Fatalf("SerializeAt: %v", err)
			}
			spliced := orig.String()[:spans[0].Start] + alt.String() + orig.String()[spans[0].End:]

			target.SetText(tc.value)
			var want strings.Builder
			if err := Serialize(&want, doc, opts); err != nil {
				t.Fatalf("serialize modified: %v", err)
			}
			if spliced != want.String() {
				t.Fatalf("spliced bytes differ from re-serialization:\nspliced: %q\nwant:    %q", spliced, want.String())
			}
		})
	}
}

func TestSerializeSpansErrors(t *testing.T) {
	doc := spanDoc()
	price := doc.Root().FirstChildNamed("book").FirstChildNamed("price")
	var sb strings.Builder
	if _, err := SerializeSpans(&sb, doc, SerializeOptions{}, []SpanTarget{{Node: price}, {Node: price}}); err == nil {
		t.Fatal("duplicate targets: want error")
	}
	if _, err := SerializeSpans(&sb, doc, SerializeOptions{}, []SpanTarget{{Node: nil}}); err == nil {
		t.Fatal("nil node: want error")
	}
	detached := TextElem("ghost", "x")
	if _, err := SerializeSpans(&sb, doc, SerializeOptions{}, []SpanTarget{{Node: detached}}); err == nil {
		t.Fatal("unreached target: want error")
	}
	if _, err := SerializeSpans(&sb, doc, SerializeOptions{}, []SpanTarget{{Node: price, Attr: "missing"}}); err == nil {
		t.Fatal("missing attribute target: want error")
	}
}
