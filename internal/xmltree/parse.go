package xmltree

import (
	"encoding/xml"
	"fmt"
	"io"
	"strings"
)

// ParseOptions controls document parsing.
type ParseOptions struct {
	// KeepWhitespaceText retains text nodes that consist solely of XML
	// whitespace. By default such nodes (typically indentation) are
	// dropped, which is what the data-centric workloads in this repository
	// expect.
	KeepWhitespaceText bool
	// KeepComments retains comment nodes. Comments are dropped by default:
	// they carry no watermark bandwidth and attackers strip them for free.
	KeepComments bool
	// KeepProcInsts retains processing instructions (except the XML
	// declaration, which is always dropped and re-synthesized on output).
	KeepProcInsts bool
	// MaxDepth caps element nesting; deeper documents fail to parse.
	// 0 means DefaultMaxDepth. Later passes over the tree (serialization,
	// cloning, traversal) recurse once per level, so the cap shields them
	// from adversarially deep input.
	MaxDepth int
}

// DefaultMaxDepth is the element-nesting cap applied when
// ParseOptions.MaxDepth is zero. Data-centric documents are a handful of
// levels deep; ten thousand is far beyond any legitimate workload while
// keeping recursive tree passes comfortably inside the stack.
const DefaultMaxDepth = 10000

// Parse reads an XML document from r and builds its DOM. The returned node
// has Kind == DocumentNode.
func Parse(r io.Reader, opts ParseOptions) (*Node, error) {
	dec := xml.NewDecoder(r)
	// The documents this system handles are data files, not hypertext;
	// strictness catches corrupt attack output early.
	dec.Strict = true
	doc := NewDocument()
	cur := doc
	sawElement := false
	depth := 0
	maxDepth := opts.MaxDepth
	if maxDepth <= 0 {
		maxDepth = DefaultMaxDepth
	}
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("xmltree: parse: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			depth++
			if depth > maxDepth {
				return nil, fmt.Errorf("xmltree: parse: element nesting exceeds %d", maxDepth)
			}
			el := NewElement("")
			for _, a := range t.Attr {
				// Namespace declarations are preserved verbatim as
				// attributes so that serialization round-trips.
				el.Attrs = append(el.Attrs, Attr{Name: flatName(a.Name), Value: a.Value})
			}
			cur.AppendChild(el)
			// Resolve namespaced names once the element's own xmlns
			// declarations and its ancestors' are reachable. The decoder
			// hands us resolved URLs; serializing those verbatim
			// ("urn:x:b") would not reparse, so map each URL back to its
			// in-scope prefix.
			el.Name = resolveName(el, t.Name, false)
			renamed := false
			for i, a := range t.Attr {
				if a.Name.Space != "" && a.Name.Space != "xmlns" {
					el.Attrs[i].Name = resolveName(el, a.Name, true)
					renamed = true
				}
			}
			if renamed {
				// Distinct raw attributes can resolve to one expanded
				// name (two prefixes bound to the same URL); XML forbids
				// that, so reject rather than serialize duplicates.
				for i := range el.Attrs {
					for j := 0; j < i; j++ {
						if el.Attrs[i].Name == el.Attrs[j].Name {
							return nil, fmt.Errorf("xmltree: parse: duplicate attribute %q on %q", el.Attrs[i].Name, el.Name)
						}
					}
				}
			}
			cur = el
			if cur.Parent == doc {
				if sawElement {
					return nil, fmt.Errorf("xmltree: parse: multiple document elements")
				}
				sawElement = true
			}
		case xml.EndElement:
			if cur == doc {
				return nil, fmt.Errorf("xmltree: parse: unbalanced end element %q", flatName(t.Name))
			}
			depth--
			cur = cur.Parent
		case xml.CharData:
			s := string(t)
			if !opts.KeepWhitespaceText && isAllXMLSpace(s) {
				continue
			}
			if cur == doc {
				// Character data outside the document element is only
				// legal if it is whitespace.
				if isAllXMLSpace(s) {
					continue
				}
				return nil, fmt.Errorf("xmltree: parse: character data outside document element")
			}
			// Merge with a preceding text sibling so parsing always yields
			// normalized trees.
			if k := len(cur.Children); k > 0 && cur.Children[k-1].Kind == TextNode {
				cur.Children[k-1].Value += s
				continue
			}
			cur.AppendChild(NewText(s))
		case xml.Comment:
			if opts.KeepComments {
				cur.AppendChild(NewComment(string(t)))
			}
		case xml.ProcInst:
			if t.Target == "xml" {
				continue
			}
			if opts.KeepProcInsts {
				cur.AppendChild(NewProcInst(t.Target, string(t.Inst)))
			}
		case xml.Directive:
			// DTD internal subsets and the like are not modelled.
		}
	}
	if cur != doc {
		return nil, fmt.Errorf("xmltree: parse: unexpected EOF inside element %q", cur.Name)
	}
	if !sawElement {
		return nil, fmt.Errorf("xmltree: parse: no document element")
	}
	return doc, nil
}

// ParseString is Parse over a string with default options.
func ParseString(s string) (*Node, error) {
	return Parse(strings.NewReader(s), ParseOptions{})
}

// MustParseString parses s and panics on error. For tests and fixtures.
func MustParseString(s string) *Node {
	doc, err := ParseString(s)
	if err != nil {
		panic(err)
	}
	return doc
}

// flatName renders an xml.Name as prefix-less local or space:local. Go's
// tokenizer resolves prefixes to namespace URLs; for the data-centric
// documents handled here we key on the local name and keep any namespace
// as an opaque qualifier.
func flatName(n xml.Name) string {
	if n.Space == "" {
		return n.Local
	}
	return n.Space + ":" + n.Local
}

// resolveName maps a decoder-resolved name back to serializable form:
// "prefix:local" via the innermost in-scope prefix bound to the URL,
// bare local when the default namespace covers an element, and the
// opaque "space:local" fallback otherwise (e.g. a prefix used without a
// declaration, which Go's decoder passes through as the space).
func resolveName(el *Node, n xml.Name, isAttr bool) string {
	if n.Space == "" {
		return n.Local
	}
	if p := nsPrefix(el, n.Space); p != "" {
		return p + ":" + n.Local
	}
	// The default namespace applies to elements only, never attributes.
	if !isAttr && nsDefaultIs(el, n.Space) {
		return n.Local
	}
	return flatName(n)
}

// nsPrefix finds the innermost in-scope prefix bound to url by scanning
// the xmlns declarations on el and its ancestors (the tree above el is
// already built when the parser calls this). A prefix re-bound deeper
// shadows outer bindings of the same prefix.
func nsPrefix(el *Node, url string) string {
	var shadowed map[string]bool
	for n := el; n != nil; n = n.Parent {
		for _, a := range n.Attrs {
			p, ok := strings.CutPrefix(a.Name, "xmlns:")
			if !ok || shadowed[p] {
				continue
			}
			if a.Value == url {
				return p
			}
			if shadowed == nil {
				shadowed = make(map[string]bool)
			}
			shadowed[p] = true
		}
	}
	return ""
}

// nsDefaultIs reports whether the innermost default-namespace
// declaration in scope at el binds url.
func nsDefaultIs(el *Node, url string) bool {
	for n := el; n != nil; n = n.Parent {
		for _, a := range n.Attrs {
			if a.Name == "xmlns" {
				return a.Value == url
			}
		}
	}
	return false
}
