package xmltree

import (
	"encoding/xml"
	"fmt"
	"io"
	"strings"
)

// ParseOptions controls document parsing.
type ParseOptions struct {
	// KeepWhitespaceText retains text nodes that consist solely of XML
	// whitespace. By default such nodes (typically indentation) are
	// dropped, which is what the data-centric workloads in this repository
	// expect.
	KeepWhitespaceText bool
	// KeepComments retains comment nodes. Comments are dropped by default:
	// they carry no watermark bandwidth and attackers strip them for free.
	KeepComments bool
	// KeepProcInsts retains processing instructions (except the XML
	// declaration, which is always dropped and re-synthesized on output).
	KeepProcInsts bool
}

// Parse reads an XML document from r and builds its DOM. The returned node
// has Kind == DocumentNode.
func Parse(r io.Reader, opts ParseOptions) (*Node, error) {
	dec := xml.NewDecoder(r)
	// The documents this system handles are data files, not hypertext;
	// strictness catches corrupt attack output early.
	dec.Strict = true
	doc := NewDocument()
	cur := doc
	sawElement := false
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("xmltree: parse: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			el := NewElement(flatName(t.Name))
			for _, a := range t.Attr {
				name := flatName(a.Name)
				// Namespace declarations are preserved verbatim as
				// attributes so that serialization round-trips.
				el.Attrs = append(el.Attrs, Attr{Name: name, Value: a.Value})
			}
			cur.AppendChild(el)
			cur = el
			if cur.Parent == doc {
				if sawElement {
					return nil, fmt.Errorf("xmltree: parse: multiple document elements")
				}
				sawElement = true
			}
		case xml.EndElement:
			if cur == doc {
				return nil, fmt.Errorf("xmltree: parse: unbalanced end element %q", flatName(t.Name))
			}
			cur = cur.Parent
		case xml.CharData:
			s := string(t)
			if !opts.KeepWhitespaceText && isAllXMLSpace(s) {
				continue
			}
			if cur == doc {
				// Character data outside the document element is only
				// legal if it is whitespace.
				if isAllXMLSpace(s) {
					continue
				}
				return nil, fmt.Errorf("xmltree: parse: character data outside document element")
			}
			// Merge with a preceding text sibling so parsing always yields
			// normalized trees.
			if k := len(cur.Children); k > 0 && cur.Children[k-1].Kind == TextNode {
				cur.Children[k-1].Value += s
				continue
			}
			cur.AppendChild(NewText(s))
		case xml.Comment:
			if opts.KeepComments {
				cur.AppendChild(NewComment(string(t)))
			}
		case xml.ProcInst:
			if t.Target == "xml" {
				continue
			}
			if opts.KeepProcInsts {
				cur.AppendChild(NewProcInst(t.Target, string(t.Inst)))
			}
		case xml.Directive:
			// DTD internal subsets and the like are not modelled.
		}
	}
	if cur != doc {
		return nil, fmt.Errorf("xmltree: parse: unexpected EOF inside element %q", cur.Name)
	}
	if !sawElement {
		return nil, fmt.Errorf("xmltree: parse: no document element")
	}
	return doc, nil
}

// ParseString is Parse over a string with default options.
func ParseString(s string) (*Node, error) {
	return Parse(strings.NewReader(s), ParseOptions{})
}

// MustParseString parses s and panics on error. For tests and fixtures.
func MustParseString(s string) *Node {
	doc, err := ParseString(s)
	if err != nil {
		panic(err)
	}
	return doc
}

// flatName renders an xml.Name as prefix-less local or space:local. Go's
// tokenizer resolves prefixes to namespace URLs; for the data-centric
// documents handled here we key on the local name and keep any namespace
// as an opaque qualifier.
func flatName(n xml.Name) string {
	if n.Space == "" {
		return n.Local
	}
	return n.Space + ":" + n.Local
}
