package xmltree

import (
	"encoding/xml"
	"errors"
	"fmt"
	"io"
	"strings"
)

// ParseOptions controls document parsing.
type ParseOptions struct {
	// KeepWhitespaceText retains text nodes that consist solely of XML
	// whitespace. By default such nodes (typically indentation) are
	// dropped, which is what the data-centric workloads in this repository
	// expect.
	KeepWhitespaceText bool
	// KeepComments retains comment nodes. Comments are dropped by default:
	// they carry no watermark bandwidth and attackers strip them for free.
	KeepComments bool
	// KeepProcInsts retains processing instructions (except the XML
	// declaration, which is always dropped and re-synthesized on output).
	KeepProcInsts bool
	// MaxDepth caps element nesting; deeper documents fail to parse.
	// 0 means DefaultMaxDepth. Later passes over the tree (serialization,
	// cloning, traversal) recurse once per level, so the cap shields them
	// from adversarially deep input.
	MaxDepth int
}

// DefaultMaxDepth is the element-nesting cap applied when
// ParseOptions.MaxDepth is zero. Data-centric documents are a handful of
// levels deep; ten thousand is far beyond any legitimate workload while
// keeping recursive tree passes comfortably inside the stack.
const DefaultMaxDepth = 10000

// tokenBuilder folds xml tokens into the DOM. It is the single place the
// parsing semantics live — whitespace dropping, adjacent-text merging,
// namespace prefix restoration, depth capping, well-formedness checks —
// shared by the whole-document Parse and the record-chunked StreamParser,
// so the two can never diverge.
type tokenBuilder struct {
	opts     ParseOptions
	maxDepth int
	doc      *Node
	cur      *Node
	depth    int
	sawElem  bool
}

func newTokenBuilder(opts ParseOptions) *tokenBuilder {
	maxDepth := opts.MaxDepth
	if maxDepth <= 0 {
		maxDepth = DefaultMaxDepth
	}
	doc := NewDocument()
	return &tokenBuilder{opts: opts, maxDepth: maxDepth, doc: doc, cur: doc}
}

// token folds one decoder token into the tree.
func (b *tokenBuilder) token(tok xml.Token) error {
	switch t := tok.(type) {
	case xml.StartElement:
		b.depth++
		if b.depth > b.maxDepth {
			return fmt.Errorf("xmltree: parse: element nesting exceeds %d", b.maxDepth)
		}
		el := NewElement("")
		for _, a := range t.Attr {
			// Namespace declarations are preserved verbatim as
			// attributes so that serialization round-trips.
			el.Attrs = append(el.Attrs, Attr{Name: Intern(flatName(a.Name)), Value: a.Value})
		}
		b.cur.AppendChild(el)
		// Resolve namespaced names once the element's own xmlns
		// declarations and its ancestors' are reachable. The decoder
		// hands us resolved URLs; serializing those verbatim
		// ("urn:x:b") would not reparse, so map each URL back to its
		// in-scope prefix.
		el.Name = Intern(resolveName(el, t.Name, false))
		renamed := false
		for i, a := range t.Attr {
			if a.Name.Space != "" && a.Name.Space != "xmlns" {
				el.Attrs[i].Name = Intern(resolveName(el, a.Name, true))
				renamed = true
			}
		}
		if renamed {
			// Distinct raw attributes can resolve to one expanded
			// name (two prefixes bound to the same URL); XML forbids
			// that, so reject rather than serialize duplicates.
			for i := range el.Attrs {
				for j := 0; j < i; j++ {
					if el.Attrs[i].Name == el.Attrs[j].Name {
						return fmt.Errorf("xmltree: parse: duplicate attribute %q on %q", el.Attrs[i].Name, el.Name)
					}
				}
			}
		}
		b.cur = el
		if b.cur.Parent == b.doc {
			if b.sawElem {
				return fmt.Errorf("xmltree: parse: multiple document elements")
			}
			b.sawElem = true
		}
	case xml.EndElement:
		if b.cur == b.doc {
			return fmt.Errorf("xmltree: parse: unbalanced end element %q", flatName(t.Name))
		}
		b.depth--
		b.cur = b.cur.Parent
	case xml.CharData:
		s := string(t)
		if !b.opts.KeepWhitespaceText && isAllXMLSpace(s) {
			return nil
		}
		if b.cur == b.doc {
			// Character data outside the document element is only
			// legal if it is whitespace.
			if isAllXMLSpace(s) {
				return nil
			}
			return fmt.Errorf("xmltree: parse: character data outside document element")
		}
		// Merge with a preceding text sibling so parsing always yields
		// normalized trees.
		if k := len(b.cur.Children); k > 0 && b.cur.Children[k-1].Kind == TextNode {
			b.cur.Children[k-1].Value += s
			return nil
		}
		b.cur.AppendChild(NewText(s))
	case xml.Comment:
		if b.opts.KeepComments {
			b.cur.AppendChild(NewComment(string(t)))
		}
	case xml.ProcInst:
		if t.Target == "xml" {
			return nil
		}
		if b.opts.KeepProcInsts {
			b.cur.AppendChild(NewProcInst(t.Target, string(t.Inst)))
		}
	case xml.Directive:
		// DTD internal subsets and the like are not modelled.
	}
	return nil
}

// finish validates end-of-input state and returns the document.
func (b *tokenBuilder) finish() (*Node, error) {
	if b.cur != b.doc {
		return nil, fmt.Errorf("xmltree: parse: unexpected EOF inside element %q", b.cur.Name)
	}
	if !b.sawElem {
		return nil, fmt.Errorf("xmltree: parse: no document element")
	}
	return b.doc, nil
}

// errTrackReader records the first error its underlying reader returns,
// so a parse failure can be traced back to the I/O fault that caused it
// even if the XML decoder re-describes it as a syntax problem. Streaming
// makes truncated and failing inputs routine; callers must be able to
// tell "the disk/socket failed" from "the document is malformed".
type errTrackReader struct {
	r   io.Reader
	err error
}

func (t *errTrackReader) Read(p []byte) (int, error) {
	n, err := t.r.Read(p)
	if err != nil && err != io.EOF && t.err == nil {
		t.err = err
	}
	return n, err
}

// parseError folds a decoder error with any recorded reader error: when
// the reader itself failed, that failure is the root cause and must be
// in the returned chain (errors.Is-reachable) whatever the decoder made
// of the resulting truncation.
func parseError(decErr error, tr *errTrackReader) error {
	if tr != nil && tr.err != nil && !errors.Is(decErr, tr.err) {
		return fmt.Errorf("xmltree: parse: read: %w", tr.err)
	}
	return fmt.Errorf("xmltree: parse: %w", decErr)
}

// newDecoder builds the strict XML tokenizer all parse paths share.
func newDecoder(r io.Reader) *xml.Decoder {
	dec := xml.NewDecoder(r)
	// The documents this system handles are data files, not hypertext;
	// strictness catches corrupt attack output early.
	dec.Strict = true
	return dec
}

// Parse reads an XML document from r and builds its DOM. The returned node
// has Kind == DocumentNode.
func Parse(r io.Reader, opts ParseOptions) (*Node, error) {
	tr := &errTrackReader{r: r}
	dec := newDecoder(tr)
	b := newTokenBuilder(opts)
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, parseError(err, tr)
		}
		if err := b.token(tok); err != nil {
			return nil, err
		}
	}
	return b.finish()
}

// ParseString is Parse over a string with default options.
func ParseString(s string) (*Node, error) {
	return Parse(strings.NewReader(s), ParseOptions{})
}

// MustParseString parses s and panics on error. For tests and fixtures.
func MustParseString(s string) *Node {
	doc, err := ParseString(s)
	if err != nil {
		panic(err)
	}
	return doc
}

// flatName renders an xml.Name as prefix-less local or space:local. Go's
// tokenizer resolves prefixes to namespace URLs; for the data-centric
// documents handled here we key on the local name and keep any namespace
// as an opaque qualifier.
func flatName(n xml.Name) string {
	if n.Space == "" {
		return n.Local
	}
	return n.Space + ":" + n.Local
}

// resolveName maps a decoder-resolved name back to serializable form:
// "prefix:local" via the innermost in-scope prefix bound to the URL,
// bare local when the default namespace covers an element, and the
// opaque "space:local" fallback otherwise (e.g. a prefix used without a
// declaration, which Go's decoder passes through as the space).
func resolveName(el *Node, n xml.Name, isAttr bool) string {
	if n.Space == "" {
		return n.Local
	}
	if p := nsPrefix(el, n.Space); p != "" {
		return p + ":" + n.Local
	}
	// The default namespace applies to elements only, never attributes.
	if !isAttr && nsDefaultIs(el, n.Space) {
		return n.Local
	}
	return flatName(n)
}

// nsPrefix finds the innermost in-scope prefix bound to url by scanning
// the xmlns declarations on el and its ancestors (the tree above el is
// already built when the parser calls this). A prefix re-bound deeper
// shadows outer bindings of the same prefix.
func nsPrefix(el *Node, url string) string {
	var shadowed map[string]bool
	for n := el; n != nil; n = n.Parent {
		for _, a := range n.Attrs {
			p, ok := strings.CutPrefix(a.Name, "xmlns:")
			if !ok || shadowed[p] {
				continue
			}
			if a.Value == url {
				return p
			}
			if shadowed == nil {
				shadowed = make(map[string]bool)
			}
			shadowed[p] = true
		}
	}
	return ""
}

// nsDefaultIs reports whether the innermost default-namespace
// declaration in scope at el binds url.
func nsDefaultIs(el *Node, url string) bool {
	for n := el; n != nil; n = n.Parent {
		for _, a := range n.Attrs {
			if a.Name == "xmlns" {
				return a.Value == url
			}
		}
	}
	return false
}
