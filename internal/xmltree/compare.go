package xmltree

import (
	"sort"
	"strings"
)

// CompareOptions controls structural comparison and canonicalization.
type CompareOptions struct {
	// IgnoreChildOrder treats element children as an unordered bag. Data-
	// centric XML rarely depends on sibling order, and the re-ordering
	// attack specifically permutes it, so usability comparisons set this.
	IgnoreChildOrder bool
	// IgnoreAttrOrder treats attributes as unordered (they are compared by
	// sorted name). Canonical XML always sorts attributes.
	IgnoreAttrOrder bool
	// TrimText compares text content with surrounding whitespace removed.
	TrimText bool
}

// Equal reports whether two subtrees are structurally identical under the
// given options. Node identity, parents and source formatting are ignored.
func Equal(a, b *Node, opts CompareOptions) bool {
	return Canonical(a, opts) == Canonical(b, opts)
}

// Canonical renders a subtree to a canonical string such that two subtrees
// are Equal exactly when their canonical strings match. With
// IgnoreChildOrder set, children are sorted by their own canonical
// strings, which makes the rendering order-insensitive at every level.
func Canonical(n *Node, opts CompareOptions) string {
	var sb strings.Builder
	canonicalize(&sb, n, opts)
	return sb.String()
}

func canonicalize(sb *strings.Builder, n *Node, opts CompareOptions) {
	switch n.Kind {
	case DocumentNode:
		sb.WriteString("#doc{")
		canonChildren(sb, n, opts)
		sb.WriteString("}")
	case ElementNode:
		sb.WriteString("<")
		sb.WriteString(n.Name)
		attrs := n.Attrs
		if opts.IgnoreAttrOrder || true {
			// Attributes are always sorted: XML canonical form requires
			// it and no consumer in this repository is attr-order
			// sensitive.
			attrs = append([]Attr(nil), n.Attrs...)
			sort.Slice(attrs, func(i, j int) bool { return attrs[i].Name < attrs[j].Name })
		}
		for _, a := range attrs {
			sb.WriteString(" ")
			sb.WriteString(a.Name)
			sb.WriteString("=\x00")
			sb.WriteString(a.Value)
			sb.WriteString("\x00")
		}
		sb.WriteString(">{")
		canonChildren(sb, n, opts)
		sb.WriteString("}")
	case TextNode:
		sb.WriteString("#text\x00")
		if opts.TrimText {
			sb.WriteString(strings.TrimSpace(n.Value))
		} else {
			sb.WriteString(n.Value)
		}
		sb.WriteString("\x00")
	case CommentNode:
		sb.WriteString("#comment\x00")
		sb.WriteString(n.Value)
		sb.WriteString("\x00")
	case ProcInstNode:
		sb.WriteString("#pi\x00")
		sb.WriteString(n.Name)
		sb.WriteString("\x00")
		sb.WriteString(n.Value)
		sb.WriteString("\x00")
	}
}

func canonChildren(sb *strings.Builder, n *Node, opts CompareOptions) {
	if !opts.IgnoreChildOrder {
		for _, c := range n.Children {
			canonicalize(sb, c, opts)
		}
		return
	}
	parts := make([]string, 0, len(n.Children))
	for _, c := range n.Children {
		var csb strings.Builder
		canonicalize(&csb, c, opts)
		parts = append(parts, csb.String())
	}
	sort.Strings(parts)
	for _, p := range parts {
		sb.WriteString(p)
	}
}

// Diff describes the first structural difference found between two
// subtrees, for diagnostics. Empty Where means the trees are equal.
type Diff struct {
	Where  string // positional path into tree a
	Reason string
}

// FirstDiff walks both trees in lockstep (order-sensitive) and returns the
// first difference. It exists for test failure messages; Equal is the
// authoritative comparison.
func FirstDiff(a, b *Node) Diff {
	return firstDiff(a, b)
}

func firstDiff(a, b *Node) Diff {
	if a.Kind != b.Kind {
		return Diff{Where: a.Path(), Reason: "kind " + a.Kind.String() + " vs " + b.Kind.String()}
	}
	if a.Name != b.Name {
		return Diff{Where: a.Path(), Reason: "name " + a.Name + " vs " + b.Name}
	}
	if a.Kind != ElementNode && a.Value != b.Value {
		return Diff{Where: a.Path(), Reason: "value " + a.Value + " vs " + b.Value}
	}
	if len(a.Attrs) != len(b.Attrs) {
		return Diff{Where: a.Path(), Reason: "attribute count differs"}
	}
	for _, attr := range a.Attrs {
		bv, ok := b.Attr(attr.Name)
		if !ok {
			return Diff{Where: a.Path(), Reason: "attribute " + attr.Name + " missing"}
		}
		if bv != attr.Value {
			return Diff{Where: a.Path(), Reason: "attribute " + attr.Name + ": " + attr.Value + " vs " + bv}
		}
	}
	if len(a.Children) != len(b.Children) {
		return Diff{Where: a.Path(), Reason: "child count differs"}
	}
	for i := range a.Children {
		if d := firstDiff(a.Children[i], b.Children[i]); d.Where != "" {
			return d
		}
	}
	return Diff{}
}
