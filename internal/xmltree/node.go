// Package xmltree provides a mutable document object model for XML.
//
// The standard library's encoding/xml package offers streaming tokens and
// struct (un)marshalling, but no mutable tree. WmXML needs to parse a
// document, address individual elements, perturb their values, restructure
// the tree, and serialize it back — so this package supplies a small DOM:
// parsing (on top of encoding/xml's tokenizer), serialization, deep
// cloning, mutation, traversal, canonicalization and structural
// comparison.
//
// The model is deliberately simple: a Node is a document, element, text,
// comment or processing instruction. Namespaces are carried as plain
// prefixed names; DTDs are not interpreted. That matches the fragment of
// XML exercised by the WmXML paper (data-centric documents such as
// publication databases and job listings).
package xmltree

import (
	"fmt"
	"strings"
)

// Kind discriminates the node types in the DOM.
type Kind uint8

// The node kinds.
const (
	// DocumentNode is the root of a parsed document. It has no name or
	// value; its children are the top-level misc items plus exactly one
	// element (the document element) for well-formed documents.
	DocumentNode Kind = iota
	// ElementNode is a tagged element with attributes and children.
	ElementNode
	// TextNode is character data. Value holds the unescaped text.
	TextNode
	// CommentNode is an XML comment. Value holds the comment body.
	CommentNode
	// ProcInstNode is a processing instruction. Name holds the target and
	// Value the instruction body.
	ProcInstNode
)

// String returns a human-readable name for the kind.
func (k Kind) String() string {
	switch k {
	case DocumentNode:
		return "document"
	case ElementNode:
		return "element"
	case TextNode:
		return "text"
	case CommentNode:
		return "comment"
	case ProcInstNode:
		return "procinst"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Attr is a single attribute of an element. Attribute order is preserved
// by the parser and serializer because some watermark channels (and some
// attacks) permute it.
type Attr struct {
	Name  string
	Value string
}

// Node is a node in the XML tree. The zero value is not useful; construct
// nodes with NewDocument, NewElement, NewText, NewComment or NewProcInst,
// or by parsing.
type Node struct {
	Kind     Kind
	Name     string // element tag or proc-inst target
	Value    string // text content, comment body or proc-inst body
	Attrs    []Attr
	Children []*Node
	Parent   *Node
}

// NewDocument returns an empty document node.
func NewDocument() *Node { return &Node{Kind: DocumentNode} }

// NewElement returns a detached element with the given tag name.
func NewElement(name string) *Node { return &Node{Kind: ElementNode, Name: name} }

// NewText returns a detached text node carrying the given character data.
func NewText(value string) *Node { return &Node{Kind: TextNode, Value: value} }

// NewComment returns a detached comment node.
func NewComment(value string) *Node { return &Node{Kind: CommentNode, Value: value} }

// NewProcInst returns a detached processing-instruction node.
func NewProcInst(target, value string) *Node {
	return &Node{Kind: ProcInstNode, Name: target, Value: value}
}

// Elem builds an element with the given name, attaching the provided
// children in order. It is a convenience for constructing test fixtures
// and synthetic documents.
func Elem(name string, children ...*Node) *Node {
	e := NewElement(name)
	for _, c := range children {
		e.AppendChild(c)
	}
	return e
}

// TextElem builds <name>value</name>, a leaf element holding one text node.
func TextElem(name, value string) *Node {
	return Elem(name, NewText(value))
}

// Root returns the document element of a document node, or nil if there is
// none. Called on a non-document node it returns the topmost ancestor's
// document element (or nil if the node is not attached to a document).
func (n *Node) Root() *Node {
	top := n
	for top.Parent != nil {
		top = top.Parent
	}
	if top.Kind != DocumentNode {
		if top.Kind == ElementNode {
			return top
		}
		return nil
	}
	for _, c := range top.Children {
		if c.Kind == ElementNode {
			return c
		}
	}
	return nil
}

// Document returns the owning document node, or nil if the node is not
// attached to one.
func (n *Node) Document() *Node {
	top := n
	for top.Parent != nil {
		top = top.Parent
	}
	if top.Kind == DocumentNode {
		return top
	}
	return nil
}

// Attr returns the value of the named attribute and whether it is present.
func (n *Node) Attr(name string) (string, bool) {
	for _, a := range n.Attrs {
		if a.Name == name {
			return a.Value, true
		}
	}
	return "", false
}

// AttrOr returns the value of the named attribute, or def when absent.
func (n *Node) AttrOr(name, def string) string {
	if v, ok := n.Attr(name); ok {
		return v
	}
	return def
}

// HasAttr reports whether the named attribute is present.
func (n *Node) HasAttr(name string) bool {
	_, ok := n.Attr(name)
	return ok
}

// SetAttr sets the named attribute, replacing an existing value or
// appending a new attribute while preserving order.
func (n *Node) SetAttr(name, value string) {
	for i := range n.Attrs {
		if n.Attrs[i].Name == name {
			n.Attrs[i].Value = value
			return
		}
	}
	n.Attrs = append(n.Attrs, Attr{Name: name, Value: value})
}

// RemoveAttr removes the named attribute and reports whether it existed.
func (n *Node) RemoveAttr(name string) bool {
	for i := range n.Attrs {
		if n.Attrs[i].Name == name {
			n.Attrs = append(n.Attrs[:i], n.Attrs[i+1:]...)
			return true
		}
	}
	return false
}

// ChildElements returns the element children of n, in document order.
func (n *Node) ChildElements() []*Node {
	var out []*Node
	for _, c := range n.Children {
		if c.Kind == ElementNode {
			out = append(out, c)
		}
	}
	return out
}

// ChildElementsNamed returns the element children with the given tag name.
func (n *Node) ChildElementsNamed(name string) []*Node {
	var out []*Node
	for _, c := range n.Children {
		if c.Kind == ElementNode && c.Name == name {
			out = append(out, c)
		}
	}
	return out
}

// FirstChildNamed returns the first element child with the given tag name,
// or nil.
func (n *Node) FirstChildNamed(name string) *Node {
	for _, c := range n.Children {
		if c.Kind == ElementNode && c.Name == name {
			return c
		}
	}
	return nil
}

// Text returns the concatenation of all descendant text nodes, in document
// order. For a text node it returns the node's own value.
func (n *Node) Text() string {
	switch n.Kind {
	case TextNode:
		return n.Value
	case CommentNode, ProcInstNode:
		return ""
	}
	// Fast paths for the dominant shapes — empty elements and elements
	// with a single content child — skip the builder entirely, which
	// keeps warm detection's per-item Value() reads allocation-free.
	switch len(n.Children) {
	case 0:
		return ""
	case 1:
		switch c := n.Children[0]; c.Kind {
		case TextNode:
			return c.Value
		case ElementNode:
			return c.Text()
		default:
			return ""
		}
	}
	var sb strings.Builder
	n.appendText(&sb)
	return sb.String()
}

func (n *Node) appendText(sb *strings.Builder) {
	for _, c := range n.Children {
		switch c.Kind {
		case TextNode:
			sb.WriteString(c.Value)
		case ElementNode:
			c.appendText(sb)
		}
	}
}

// SetText replaces the textual content of an element with a single text
// node holding value. Non-text children are preserved, in their original
// order, after the text.
func (n *Node) SetText(value string) {
	if n.Kind != ElementNode {
		if n.Kind == TextNode {
			n.Value = value
		}
		return
	}
	kept := n.Children[:0]
	for _, c := range n.Children {
		if c.Kind != TextNode {
			kept = append(kept, c)
		} else {
			c.Parent = nil
		}
	}
	n.Children = kept
	t := NewText(value)
	t.Parent = n
	n.Children = append([]*Node{t}, n.Children...)
}

// Index returns n's position among its parent's children, or -1 when
// detached.
func (n *Node) Index() int {
	if n.Parent == nil {
		return -1
	}
	for i, c := range n.Parent.Children {
		if c == n {
			return i
		}
	}
	return -1
}

// ElementIndex returns n's position among its parent's *element* children
// with the same tag name (0-based), or -1 when detached or not an element.
// This is the ordinal used in positional paths like /db/book[2].
func (n *Node) ElementIndex() int {
	if n.Parent == nil || n.Kind != ElementNode {
		return -1
	}
	idx := 0
	for _, c := range n.Parent.Children {
		if c == n {
			return idx
		}
		if c.Kind == ElementNode && c.Name == n.Name {
			idx++
		}
	}
	return -1
}

// Path returns the absolute positional path of the node, e.g.
// /db/book[2]/title[0]. It is stable only for a fixed tree shape — which
// is exactly why WmXML does not use it as a watermark identifier — but it
// is invaluable for diagnostics and for the positional baseline.
func (n *Node) Path() string {
	if n.Kind == DocumentNode {
		return "/"
	}
	var parts []string
	for cur := n; cur != nil && cur.Kind != DocumentNode; cur = cur.Parent {
		switch cur.Kind {
		case ElementNode:
			parts = append(parts, fmt.Sprintf("%s[%d]", cur.Name, cur.ElementIndexOrZero()))
		case TextNode:
			parts = append(parts, "text()")
		case CommentNode:
			parts = append(parts, "comment()")
		case ProcInstNode:
			parts = append(parts, "processing-instruction()")
		}
	}
	// Reverse.
	for i, j := 0, len(parts)-1; i < j; i, j = i+1, j-1 {
		parts[i], parts[j] = parts[j], parts[i]
	}
	return "/" + strings.Join(parts, "/")
}

// ElementIndexOrZero is ElementIndex but returns 0 for detached roots so
// that Path never renders a negative ordinal.
func (n *Node) ElementIndexOrZero() int {
	if i := n.ElementIndex(); i >= 0 {
		return i
	}
	return 0
}

// Depth returns the number of ancestors between n and its topmost
// ancestor (the document node contributes 0).
func (n *Node) Depth() int {
	d := 0
	for cur := n.Parent; cur != nil; cur = cur.Parent {
		if cur.Kind != DocumentNode {
			d++
		}
	}
	return d
}

// IsAncestorOf reports whether n is a proper ancestor of other.
func (n *Node) IsAncestorOf(other *Node) bool {
	for cur := other.Parent; cur != nil; cur = cur.Parent {
		if cur == n {
			return true
		}
	}
	return false
}

// Clone returns a deep copy of the subtree rooted at n. The copy is
// detached (its Parent is nil).
func (n *Node) Clone() *Node {
	cp := &Node{Kind: n.Kind, Name: n.Name, Value: n.Value}
	if len(n.Attrs) > 0 {
		cp.Attrs = make([]Attr, len(n.Attrs))
		copy(cp.Attrs, n.Attrs)
	}
	if len(n.Children) > 0 {
		cp.Children = make([]*Node, 0, len(n.Children))
		for _, c := range n.Children {
			cc := c.Clone()
			cc.Parent = cp
			cp.Children = append(cp.Children, cc)
		}
	}
	return cp
}

// String renders the subtree as XML without indentation; primarily for
// debugging and error messages.
func (n *Node) String() string {
	var sb strings.Builder
	if err := Serialize(&sb, n, SerializeOptions{}); err != nil {
		return fmt.Sprintf("<!-- serialize error: %v -->", err)
	}
	return sb.String()
}
