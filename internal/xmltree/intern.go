package xmltree

import "sync"

// Name interning. Element and attribute names repeat endlessly — a
// 1k-record document has thousands of elements drawn from a dozen tag
// names — and the hot query paths compare names constantly. Interning
// every name into one canonical string means (a) parsing N records
// allocates each distinct name once instead of N times, and (b) every
// later comparison between two interned names (tree node vs compiled
// query step) short-circuits on Go's pointer-equality fast path before
// any byte is inspected — effectively an integer compare.
//
// The table is global and append-only, capped so adversarial documents
// full of unique tag names cannot grow it without bound; past the cap,
// Intern degrades to identity (correct, just slower to compare).

const internCap = 1 << 16

var interner = struct {
	mu sync.RWMutex
	m  map[string]string
}{m: make(map[string]string, 256)}

// Intern returns the canonical instance of name, registering it if the
// table has room. Safe for concurrent use.
func Intern(name string) string {
	interner.mu.RLock()
	s, ok := interner.m[name]
	interner.mu.RUnlock()
	if ok {
		return s
	}
	return internSlow(name)
}

// InternBytes is Intern for a byte-slice name, allocating the string
// only on first sight (the map probe with a converted key does not
// allocate).
func InternBytes(b []byte) string {
	interner.mu.RLock()
	s, ok := interner.m[string(b)]
	interner.mu.RUnlock()
	if ok {
		return s
	}
	return internSlow(string(b))
}

func internSlow(name string) string {
	interner.mu.Lock()
	defer interner.mu.Unlock()
	if s, ok := interner.m[name]; ok {
		return s
	}
	if len(interner.m) >= internCap {
		return name
	}
	interner.m[name] = name
	return name
}
