package xmltree

import (
	"strings"
	"testing"
)

func TestParseBasic(t *testing.T) {
	doc, err := ParseString(`<?xml version="1.0"?><a x="1"><b>hi</b><c/></a>`)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	root := doc.Root()
	if root.Name != "a" {
		t.Fatalf("root = %q", root.Name)
	}
	if v, _ := root.Attr("x"); v != "1" {
		t.Errorf("attr x = %q", v)
	}
	if got := root.FirstChildNamed("b").Text(); got != "hi" {
		t.Errorf("b text = %q", got)
	}
	if root.FirstChildNamed("c") == nil {
		t.Errorf("self-closing element lost")
	}
}

func TestParseDropsWhitespaceByDefault(t *testing.T) {
	doc := MustParseString("<a>\n  <b>x</b>\n</a>")
	for _, c := range doc.Root().Children {
		if c.Kind == TextNode {
			t.Fatalf("whitespace text retained: %q", c.Value)
		}
	}
}

func TestParseKeepWhitespace(t *testing.T) {
	doc, err := Parse(strings.NewReader("<a>\n  <b>x</b>\n</a>"), ParseOptions{KeepWhitespaceText: true})
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	sawWS := false
	for _, c := range doc.Root().Children {
		if c.Kind == TextNode && isAllXMLSpace(c.Value) {
			sawWS = true
		}
	}
	if !sawWS {
		t.Errorf("KeepWhitespaceText did not keep whitespace")
	}
}

func TestParseCommentsAndPIs(t *testing.T) {
	src := `<a><!--note--><?target body?><b/></a>`
	doc, err := Parse(strings.NewReader(src), ParseOptions{KeepComments: true, KeepProcInsts: true})
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	var comment, pi *Node
	for _, c := range doc.Root().Children {
		switch c.Kind {
		case CommentNode:
			comment = c
		case ProcInstNode:
			pi = c
		}
	}
	if comment == nil || comment.Value != "note" {
		t.Errorf("comment not kept: %v", comment)
	}
	if pi == nil || pi.Name != "target" || pi.Value != "body" {
		t.Errorf("proc inst not kept: %v", pi)
	}

	// Default: both dropped.
	doc2 := MustParseString(src)
	for _, c := range doc2.Root().Children {
		if c.Kind == CommentNode || c.Kind == ProcInstNode {
			t.Errorf("default parse kept %v", c.Kind)
		}
	}
}

func TestParseEntityUnescaping(t *testing.T) {
	doc := MustParseString(`<a attr="x&amp;y">1 &lt; 2 &amp; 3 &gt; 2</a>`)
	if got := doc.Root().Text(); got != "1 < 2 & 3 > 2" {
		t.Errorf("text = %q", got)
	}
	if v, _ := doc.Root().Attr("attr"); v != "x&y" {
		t.Errorf("attr = %q", v)
	}
}

func TestParseMergesAdjacentText(t *testing.T) {
	// CDATA plus regular text arrive as separate CharData tokens.
	doc := MustParseString(`<a>one<![CDATA[two]]>three</a>`)
	if n := len(doc.Root().Children); n != 1 {
		t.Fatalf("children = %d, want 1 merged text node", n)
	}
	if got := doc.Root().Text(); got != "onetwothree" {
		t.Errorf("text = %q", got)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"unbalanced", "<a><b></a>"},
		{"truncated", "<a><b>"},
		{"empty", ""},
		{"only-comment", "<!-- nothing -->"},
		{"junk-after-root", "<a/><b/>"},
		{"text-at-top", "hello"},
		{"bad-attr", `<a x=1/>`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ParseString(tc.src); err == nil {
				t.Errorf("ParseString(%q) succeeded, want error", tc.src)
			}
		})
	}
}

func TestParseNamespacePrefix(t *testing.T) {
	doc, err := ParseString(`<a xmlns:p="urn:x"><p:b>v</p:b></a>`)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	kids := doc.Root().ChildElements()
	if len(kids) != 1 {
		t.Fatalf("children = %d", len(kids))
	}
	// Prefixes resolve to their URL; we keep it as an opaque qualifier.
	if !strings.Contains(kids[0].Name, "b") {
		t.Errorf("namespaced name = %q", kids[0].Name)
	}
}

func TestMustParseStringPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("MustParseString on bad input did not panic")
		}
	}()
	MustParseString("<oops>")
}

func TestParseDeepNesting(t *testing.T) {
	const depth = 200
	var sb strings.Builder
	for i := 0; i < depth; i++ {
		sb.WriteString("<n>")
	}
	sb.WriteString("leaf")
	for i := 0; i < depth; i++ {
		sb.WriteString("</n>")
	}
	doc, err := ParseString(sb.String())
	if err != nil {
		t.Fatalf("deep parse: %v", err)
	}
	if got := doc.Root().Text(); got != "leaf" {
		t.Errorf("deep text = %q", got)
	}
	st := CollectStats(doc)
	if st.Elements != depth {
		t.Errorf("elements = %d, want %d", st.Elements, depth)
	}
	if st.MaxDepth < depth {
		t.Errorf("max depth = %d, want >= %d", st.MaxDepth, depth)
	}
}
