package xmltree

// ParseBytes: a byte-slice fast path in front of Parse.
//
// The service parses every suspect document from an in-memory body, and
// encoding/xml spends most of that time materializing strings: one per
// name per occurrence, plus per-token buffers. parseFast tokenizes the
// byte slice directly, interns element/attribute names (see intern.go)
// and bulk-allocates nodes from a slab, cutting cold parse time and
// allocations severalfold on the data-centric documents this system
// handles.
//
// Correctness contract: for any input parseFast accepts, the tree is
// byte-identical to what Parse builds (the equivalence fuzz target in
// fastparse_test.go pins this). Anything outside its conservative
// subset — non-ASCII bytes, namespaces, DTDs, processing instructions,
// numeric character references, or any malformed input — makes it bail
// out, and ParseBytes falls back to Parse so error messages and edge
// semantics stay authoritative with encoding/xml. The subset is chosen
// so the workloads that matter (ASCII data documents) always take the
// fast path.

import (
	"bytes"
	"strings"
)

// ParseBytes parses an XML document from an in-memory byte slice: the
// fast tokenizer when the input is inside its subset, Parse otherwise.
// The returned tree never aliases data.
func ParseBytes(data []byte, opts ParseOptions) (*Node, error) {
	if doc, ok := parseFast(data, opts); ok {
		return doc, nil
	}
	return Parse(bytes.NewReader(data), opts)
}

// fastParser is one parseFast run.
type fastParser struct {
	data     []byte
	pos      int
	opts     ParseOptions
	maxDepth int
	slab     []Node
	buf      []byte // scratch for entity-expanded text
}

// parseFast attempts the fast parse; ok is false when the input is
// outside the supported subset (including all malformed inputs, which
// the Parse fallback then rejects with the authoritative error).
func parseFast(data []byte, opts ParseOptions) (*Node, bool) {
	// ASCII prescan: restricting the fast path to ASCII (plus tab, LF,
	// CR) sidesteps UTF-8 validation, XML char-range checks and
	// multi-byte name rules entirely.
	for _, c := range data {
		if c >= 0x80 || (c < 0x20 && c != '\t' && c != '\n' && c != '\r') {
			return nil, false
		}
	}
	maxDepth := opts.MaxDepth
	if maxDepth <= 0 {
		maxDepth = DefaultMaxDepth
	}
	est := bytes.Count(data, []byte{'<'})
	if est > 1<<20 {
		est = 1 << 20
	}
	p := &fastParser{data: data, opts: opts, maxDepth: maxDepth, slab: make([]Node, est)}

	// The XML declaration is only recognized at offset 0 (anywhere else
	// bails to the strict parser); it is always dropped, but a non-UTF-8
	// encoding declaration must bail so encoding/xml can reject it.
	if bytes.HasPrefix(data, []byte("<?xml")) {
		end := bytes.Index(data, []byte("?>"))
		if end < 0 {
			return nil, false
		}
		decl := data[5:end]
		if len(decl) > 0 && decl[0] != ' ' && decl[0] != '\t' && decl[0] != '\n' && decl[0] != '\r' {
			return nil, false // a PI whose target merely starts with "xml"
		}
		if i := bytes.Index(decl, []byte("encoding")); i >= 0 {
			rest := decl[i+len("encoding"):]
			j := bytes.IndexAny(rest, `"'`)
			if j < 0 {
				return nil, false
			}
			k := bytes.IndexByte(rest[j+1:], rest[j])
			if k < 0 {
				return nil, false
			}
			if !strings.EqualFold(string(rest[j+1:j+1+k]), "utf-8") {
				return nil, false
			}
		}
		p.pos = end + 2
	}

	doc := NewDocument()
	cur := doc
	depth := 0
	sawElem := false

	appendText := func(s string) bool {
		// One call per raw token (text run, CDATA section), mirroring
		// tokenBuilder.token's CharData case: the whitespace drop applies
		// per token, before merging with a preceding text sibling.
		if !p.opts.KeepWhitespaceText && isAllXMLSpace(s) {
			return true
		}
		if cur == doc {
			return isAllXMLSpace(s) // non-space chardata outside the root: bail
		}
		if k := len(cur.Children); k > 0 && cur.Children[k-1].Kind == TextNode {
			cur.Children[k-1].Value += s
			return true
		}
		t := p.node()
		t.Kind = TextNode
		t.Value = s
		cur.AppendChild(t)
		return true
	}

	for p.pos < len(p.data) {
		if p.data[p.pos] != '<' {
			s, ok := p.text('<')
			if !ok || !appendText(s) {
				return nil, false
			}
			continue
		}
		if p.pos+1 >= len(p.data) {
			return nil, false
		}
		switch p.data[p.pos+1] {
		case '?':
			return nil, false // processing instructions
		case '!':
			rest := p.data[p.pos:]
			switch {
			case bytes.HasPrefix(rest, []byte("<!--")):
				// encoding/xml rejects any interior "--" not followed by
				// '>' even outside strict mode, so the comment must
				// terminate at the first "--".
				end := bytes.Index(rest[4:], []byte("--"))
				if end < 0 || 4+end+2 >= len(rest) || rest[4+end+2] != '>' {
					return nil, false
				}
				body := rest[4 : 4+end]
				if p.opts.KeepComments {
					if bytes.IndexByte(body, '\r') >= 0 {
						return nil, false // CR handling differs; defer to Parse
					}
					cm := p.node()
					cm.Kind = CommentNode
					cm.Value = string(body)
					cur.AppendChild(cm)
				}
				p.pos += 4 + end + 3
			case bytes.HasPrefix(rest, []byte("<![CDATA[")):
				end := bytes.Index(rest[9:], []byte("]]>"))
				if end < 0 {
					return nil, false
				}
				body := rest[9 : 9+end]
				if bytes.IndexByte(body, '\r') >= 0 {
					return nil, false // decoder normalizes CR even in CDATA
				}
				if !appendText(string(body)) {
					return nil, false
				}
				p.pos += 9 + end + 3
			default:
				return nil, false // DOCTYPE and other directives
			}
		case '/':
			p.pos += 2
			name, ok := p.name()
			if !ok {
				return nil, false
			}
			p.space()
			if !p.expect('>') {
				return nil, false
			}
			if cur == doc || cur.Name != string(name) {
				return nil, false
			}
			depth--
			cur = cur.Parent
		default:
			p.pos++
			name, ok := p.name()
			if !ok {
				return nil, false
			}
			depth++
			if depth > p.maxDepth {
				return nil, false
			}
			el := p.node()
			el.Kind = ElementNode
			el.Name = InternBytes(name)
			selfClose := false
			for {
				p.space()
				if p.pos >= len(p.data) {
					return nil, false
				}
				c := p.data[p.pos]
				if c == '>' {
					p.pos++
					break
				}
				if c == '/' {
					p.pos++
					if !p.expect('>') {
						return nil, false
					}
					selfClose = true
					break
				}
				an, ok := p.name()
				if !ok || string(an) == "xmlns" {
					return nil, false // namespace declarations need resolution
				}
				p.space()
				if !p.expect('=') {
					return nil, false
				}
				p.space()
				if p.pos >= len(p.data) {
					return nil, false
				}
				q := p.data[p.pos]
				if q != '"' && q != '\'' {
					return nil, false
				}
				p.pos++
				av, ok := p.text(q)
				if !ok || !p.expect(q) {
					return nil, false
				}
				el.Attrs = append(el.Attrs, Attr{Name: InternBytes(an), Value: av})
			}
			cur.AppendChild(el)
			if el.Parent == doc {
				if sawElem {
					return nil, false
				}
				sawElem = true
			}
			if selfClose {
				depth--
			} else {
				cur = el
			}
		}
	}
	if cur != doc || !sawElem {
		return nil, false
	}
	return doc, true
}

// node hands out the next slab node, falling back to the heap when the
// estimate ran short.
func (p *fastParser) node() *Node {
	if len(p.slab) == 0 {
		return &Node{}
	}
	n := &p.slab[0]
	p.slab = p.slab[1:]
	return n
}

// name reads one XML name, restricted to the ASCII subset encoding/xml
// accepts for name characters — minus ':', which would engage
// namespace resolution. The returned slice aliases p.data.
func (p *fastParser) name() ([]byte, bool) {
	start := p.pos
	if p.pos >= len(p.data) {
		return nil, false
	}
	c := p.data[p.pos]
	if !(c >= 'A' && c <= 'Z' || c >= 'a' && c <= 'z' || c == '_') {
		return nil, false
	}
	p.pos++
	for p.pos < len(p.data) {
		c = p.data[p.pos]
		if c >= 'A' && c <= 'Z' || c >= 'a' && c <= 'z' || c >= '0' && c <= '9' || c == '_' || c == '-' || c == '.' {
			p.pos++
			continue
		}
		if c == ':' {
			return nil, false
		}
		break
	}
	return p.data[start:p.pos], true
}

// space skips XML whitespace.
func (p *fastParser) space() {
	for p.pos < len(p.data) {
		switch p.data[p.pos] {
		case ' ', '\t', '\n', '\r':
			p.pos++
		default:
			return
		}
	}
}

// expect consumes c or fails.
func (p *fastParser) expect(c byte) bool {
	if p.pos < len(p.data) && p.data[p.pos] == c {
		p.pos++
		return true
	}
	return false
}

// text reads character data until the stop byte ('<' for element
// content, the quote for attribute values), expanding the five
// predefined entities and normalizing \r\n and \r to \n exactly as
// encoding/xml's text reader does. Numeric character references, other
// entities, an embedded "]]>", or a stray '<' bail out. End of input
// counts as a stop for element content (trailing whitespace after the
// root) but not inside an attribute value.
func (p *fastParser) text(stop byte) (string, bool) {
	start := p.pos
	i := p.pos
	data := p.data
	// Fast scan: no entity, no CR — return a direct slice copy.
	for i < len(data) {
		c := data[i]
		if c == stop {
			break
		}
		if c == '&' || c == '\r' || c == '<' {
			goto slow
		}
		if c == '>' && i >= start+2 && data[i-1] == ']' && data[i-2] == ']' {
			return "", false // unescaped "]]>"
		}
		i++
	}
	if i >= len(data) && stop != '<' {
		return "", false
	}
	p.pos = i
	return string(data[start:i]), true

slow:
	buf := p.buf[:0]
	buf = append(buf, data[start:i]...)
	for i < len(data) {
		c := data[i]
		if c == stop {
			p.pos = i
			p.buf = buf
			return string(buf), true
		}
		switch c {
		case '<':
			// Unescaped '<' inside an attribute value (element content
			// stops at '<' before reaching here).
			return "", false
		case '&':
			semi := bytes.IndexByte(data[i+1:], ';')
			if semi < 0 || semi > 4 {
				return "", false
			}
			var r byte
			switch string(data[i+1 : i+1+semi]) {
			case "amp":
				r = '&'
			case "lt":
				r = '<'
			case "gt":
				r = '>'
			case "apos":
				r = '\''
			case "quot":
				r = '"'
			default:
				return "", false // numeric refs and custom entities
			}
			buf = append(buf, r)
			i += semi + 2
		case '\r':
			buf = append(buf, '\n')
			i++
			if i < len(data) && data[i] == '\n' {
				i++
			}
		case '>':
			if n := len(buf); n >= 2 && buf[n-1] == ']' && buf[n-2] == ']' {
				return "", false
			}
			buf = append(buf, c)
			i++
		default:
			buf = append(buf, c)
			i++
		}
	}
	if stop != '<' {
		return "", false // unexpected EOF inside an attribute value
	}
	p.pos = i
	p.buf = buf
	return string(buf), true
}
