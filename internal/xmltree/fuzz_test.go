package xmltree

// Native fuzz target for the DOM round-trip: any document the parser
// accepts must serialize, reparse to an identical tree, and serialize
// to the same bytes again. Run short in CI
// (go test -fuzz FuzzParseRoundTrip -fuzztime 10s); seed corpus in
// testdata/fuzz.

import (
	"strings"
	"testing"
)

func FuzzParseRoundTrip(f *testing.F) {
	for _, seed := range []string{
		`<db><book id="1"><title>T</title></book></db>`,
		`<a xmlns:n="urn:x"><n:b n:c="d">t</n:b></a>`,
		`<a><!-- c --><?pi body?><b/>text<b>x&amp;y</b></a>`,
		`<a>  <b> spaced </b>  </a>`,
		`<a b="&quot;&lt;&gt;">&#65;</a>`,
		`<a><a><a><a></a></a></a></a>`,
		`<a`,
		`<a></b>`,
		`text only`,
		`<a/><b/>`,
	} {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		opts := ParseOptions{KeepWhitespaceText: true, KeepComments: true, KeepProcInsts: true}
		doc, err := Parse(strings.NewReader(string(data)), opts)
		if err != nil {
			return
		}
		var sb strings.Builder
		if err := Serialize(&sb, doc, SerializeOptions{}); err != nil {
			t.Fatalf("serialize accepted document: %v", err)
		}
		first := sb.String()
		doc2, err := Parse(strings.NewReader(first), opts)
		if err != nil {
			t.Fatalf("reparse own output %q: %v", first, err)
		}
		if !Equal(doc, doc2, CompareOptions{}) {
			t.Fatalf("round-trip changed the tree:\nin:  %q\nout: %q", data, first)
		}
		var sb2 strings.Builder
		if err := Serialize(&sb2, doc2, SerializeOptions{}); err != nil {
			t.Fatal(err)
		}
		if sb2.String() != first {
			t.Fatalf("serialization not a fixpoint:\n1: %q\n2: %q", first, sb2.String())
		}
		// Clone must compare equal and serialize identically.
		if cl := doc.Clone(); !Equal(doc, cl, CompareOptions{}) {
			t.Fatal("clone differs from original")
		}
	})
}

// FuzzParseDepthLimit pins the nesting cap: documents deeper than
// MaxDepth are rejected instead of building towers that would overflow
// later recursive passes.
func FuzzParseDepthLimit(f *testing.F) {
	f.Add(5, 3)
	f.Add(64, 64)
	f.Fuzz(func(t *testing.T, depth, limit int) {
		if depth < 1 || depth > 512 || limit < 1 || limit > 512 {
			return
		}
		src := strings.Repeat("<a>", depth) + "x" + strings.Repeat("</a>", depth)
		_, err := Parse(strings.NewReader(src), ParseOptions{MaxDepth: limit})
		if (err == nil) != (depth <= limit) {
			t.Fatalf("depth %d limit %d: err = %v", depth, limit, err)
		}
	})
}
