package xmltree

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

// drainStream runs a StreamParser to completion, reassembling the
// document from events, and also re-serializes it through the
// StreamSerializer for byte comparison.
func drainStream(t *testing.T, src string, opts ParseOptions, sopts SerializeOptions) (reassembled *Node, streamed string) {
	t.Helper()
	sp := NewStreamParser(strings.NewReader(src), opts)
	var out bytes.Buffer
	ss := NewStreamSerializer(&out, sopts)
	doc := NewDocument()
	var root *Node
	afterRoot := false
	for {
		ev, err := sp.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("stream parse %q: %v", src, err)
		}
		switch ev.Kind {
		case EventDocItem:
			ss.WriteDocItem(ev.Node)
			doc.AppendChild(ev.Node)
		case EventRootOpen:
			root = &Node{Kind: ElementNode, Name: ev.Node.Name}
			root.Attrs = append([]Attr(nil), ev.Node.Attrs...)
			doc.AppendChild(root)
			ss.OpenElement(ev.Node)
		case EventItem:
			if afterRoot {
				t.Fatalf("item after root close")
			}
			root.AppendChild(ev.Node)
			ss.WriteChild(ev.Node)
		case EventRootClose:
			afterRoot = true
			ss.CloseElement()
		}
	}
	if err := ss.Finish(); err != nil {
		t.Fatalf("stream serialize: %v", err)
	}
	return doc, out.String()
}

// TestStreamParseSerializeEquivalence: for a spread of document shapes,
// streaming parse+serialize must produce a tree structurally equal to
// Parse's and bytes identical to Serialize's.
func TestStreamParseSerializeEquivalence(t *testing.T) {
	docs := []string{
		`<db/>`,
		`<db></db>`,
		`<db>plain text</db>`,
		`<db><r><v>1</v></r></db>`,
		`<db attr="x"><r id="1"><v>1</v></r><r id="2"><v>2</v></r></db>`,
		`<db>lead<r>a</r>mid<r>b</r>tail</db>`,
		`<db><r>one</r><meta><note>hi</note></meta><r>two</r></db>`,
		`<db xmlns:p="urn:x"><p:r><p:v p:a="1">x</p:v></p:r></db>`,
		`<db><r><![CDATA[a <b> & c]]></r></db>`,
		`<db><r>a&amp;b&lt;c</r></db>`,
		`<db><r><deep><deeper><deepest>v</deepest></deeper></deep></r></db>`,
		`<db><r/><r></r><r> </r></db>`,
		"<?xml version=\"1.0\"?>\n<db>\n  <r>\n    <v>1</v>\n  </r>\n</db>\n",
	}
	optVariants := []struct {
		name  string
		popts ParseOptions
		sopts SerializeOptions
	}{
		{"default-indent", ParseOptions{}, SerializeOptions{Indent: "  "}},
		{"compact", ParseOptions{}, SerializeOptions{OmitDeclaration: true}},
		{"keep-ws", ParseOptions{KeepWhitespaceText: true}, SerializeOptions{Indent: "  "}},
	}
	for _, ov := range optVariants {
		for _, src := range docs {
			want, err := Parse(strings.NewReader(src), ov.popts)
			if err != nil {
				t.Fatalf("%s: parse %q: %v", ov.name, src, err)
			}
			var wantOut bytes.Buffer
			if err := Serialize(&wantOut, want, ov.sopts); err != nil {
				t.Fatal(err)
			}
			gotTree, gotOut := drainStream(t, src, ov.popts, ov.sopts)
			if !Equal(want, gotTree, CompareOptions{}) {
				t.Errorf("%s: %q: stream tree differs: %v", ov.name, src, FirstDiff(want, gotTree))
			}
			if gotOut != wantOut.String() {
				t.Errorf("%s: %q:\nstream  %q\nbatch   %q", ov.name, src, gotOut, wantOut.String())
			}
		}
	}
}

// TestStreamParseKeepMisc covers document-level comments and processing
// instructions around the root when they are retained.
func TestStreamParseKeepMisc(t *testing.T) {
	src := `<?pi data?><!-- before --><db><r>x</r></db><!-- after -->`
	popts := ParseOptions{KeepComments: true, KeepProcInsts: true}
	sopts := SerializeOptions{Indent: "  "}
	want, err := Parse(strings.NewReader(src), popts)
	if err != nil {
		t.Fatal(err)
	}
	var wantOut bytes.Buffer
	if err := Serialize(&wantOut, want, sopts); err != nil {
		t.Fatal(err)
	}
	gotTree, gotOut := drainStream(t, src, popts, sopts)
	if !Equal(want, gotTree, CompareOptions{}) {
		t.Fatalf("tree differs: %v", FirstDiff(want, gotTree))
	}
	if gotOut != wantOut.String() {
		t.Fatalf("stream %q\nbatch  %q", gotOut, wantOut.String())
	}
}

// TestStreamParseErrors locks the failure modes: malformed documents
// and depth-cap violations fail the same way Parse does.
func TestStreamParseErrors(t *testing.T) {
	cases := []struct {
		src  string
		opts ParseOptions
		want string
	}{
		{"<db><a></db>", ParseOptions{}, "syntax"},
		{"<db><r/></db><db2/>", ParseOptions{}, "multiple document elements"},
		{"<a><b><c/></b></a>", ParseOptions{MaxDepth: 2}, "nesting exceeds"},
		{"no xml here", ParseOptions{}, "character data outside document element"},
		{"", ParseOptions{}, "no document element"},
		{"<db><r>", ParseOptions{}, "unexpected EOF"},
	}
	for _, c := range cases {
		sp := NewStreamParser(strings.NewReader(c.src), c.opts)
		var err error
		for {
			_, err = sp.Next()
			if err != nil {
				break
			}
		}
		if err == io.EOF || err == nil {
			t.Errorf("%q: expected failure containing %q, got clean parse", c.src, c.want)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%q: error %q does not contain %q", c.src, err, c.want)
		}
		// Fatal errors are sticky.
		if _, again := sp.Next(); again == nil || again == io.EOF {
			t.Errorf("%q: error was not sticky", c.src)
		}
	}
}

// erroringReader yields some bytes, then fails with a distinct error.
type erroringReader struct {
	data []byte
	pos  int
	err  error
}

func (r *erroringReader) Read(p []byte) (int, error) {
	if r.pos >= len(r.data) {
		return 0, r.err
	}
	n := copy(p, r.data[r.pos:])
	r.pos += n
	return n, nil
}

// TestParseSurfacesReaderError is the regression test for the streaming
// satellite fix: when the io.Reader itself fails mid-token, Parse must
// surface that underlying error in its chain — truncated inputs are
// routine under streaming, and "the socket died" must be
// distinguishable from "the document is malformed".
func TestParseSurfacesReaderError(t *testing.T) {
	wantErr := errors.New("NFS server rebooted")
	cuts := []string{
		"<db><r><v>12",        // inside character data
		"<db><r att",          // inside a start tag
		"<db><r><![CDATA[ab",  // inside a CDATA section
		"<db><!-- half a com", // inside a comment
		"<db>&am",             // inside an entity reference
	}
	for _, cut := range cuts {
		_, err := Parse(&erroringReader{data: []byte(cut), err: wantErr}, ParseOptions{})
		if err == nil {
			t.Fatalf("%q: parse succeeded over failing reader", cut)
		}
		if !errors.Is(err, wantErr) {
			t.Errorf("%q: underlying reader error lost: %v", cut, err)
		}
	}

	// Same guarantee through the streaming parser.
	for _, cut := range cuts {
		sp := NewStreamParser(&erroringReader{data: []byte(cut), err: wantErr}, ParseOptions{})
		var err error
		for {
			_, err = sp.Next()
			if err != nil {
				break
			}
		}
		if !errors.Is(err, wantErr) {
			t.Errorf("stream %q: underlying reader error lost: %v", cut, err)
		}
	}

	// A clean EOF truncation (no reader fault) still reads as a parse
	// problem, not an I/O one.
	_, err := Parse(strings.NewReader("<db><r>"), ParseOptions{})
	if err == nil || !strings.Contains(err.Error(), "unexpected EOF") {
		t.Errorf("truncation error shape changed: %v", err)
	}
}

// TestStreamSerializerNested exercises nested OpenElement/CloseElement
// beyond the single-root usage.
func TestStreamSerializerNested(t *testing.T) {
	want := MustParseString(`<a><b><c>x</c><c>y</c></b><d>z</d></a>`)
	var wantOut bytes.Buffer
	if err := Serialize(&wantOut, want, SerializeOptions{Indent: "  "}); err != nil {
		t.Fatal(err)
	}

	var out bytes.Buffer
	ss := NewStreamSerializer(&out, SerializeOptions{Indent: "  "})
	ss.OpenElement(NewElement("a"))
	ss.OpenElement(NewElement("b"))
	ss.WriteChild(MustParseString(`<c>x</c>`).Root())
	ss.WriteChild(MustParseString(`<c>y</c>`).Root())
	ss.CloseElement()
	ss.WriteChild(MustParseString(`<d>z</d>`).Root())
	ss.CloseElement()
	if err := ss.Finish(); err != nil {
		t.Fatal(err)
	}
	if out.String() != wantOut.String() {
		t.Fatalf("nested stream serialization:\n got %q\nwant %q", out.String(), wantOut.String())
	}
}
