package xmltree

import (
	"fmt"
	"io"
)

// SpanTarget addresses one value-carrying location inside a serialized
// document: the whole element when Attr is empty, or one attribute's
// value bytes (the escaped text between the quotes) otherwise.
//
// Whole elements — rather than their text children — are the unit for
// element-carried values because rewriting a value can reshape the
// element (<f/> becomes <f>v</f>, mixed content collapses to a single
// leading text node), so only the element's full byte range is stable
// across the rewrite.
type SpanTarget struct {
	Node *Node
	Attr string
}

// Span is the half-open byte range [Start, End) a target occupied in the
// serialized output, plus the depth the node was rendered at. Depth is
// what a caller needs to re-render a replacement subtree with identical
// indentation (see SerializeAt).
type Span struct {
	Start int `json:"start"`
	End   int `json:"end"`
	Depth int `json:"depth"`
}

// spanKey identifies a span target during serialization.
type spanKey struct {
	node *Node
	attr string
}

// SerializeSpans is Serialize with byte-offset capture: it writes the
// subtree rooted at n exactly as Serialize would and reports, for each
// target, the byte span the target occupied in the output. Targets must
// be distinct and must actually be reached during serialization (an
// unreached target is an error, not a zero span — a plan compiled from
// it would silently drop a mark site).
func SerializeSpans(w io.Writer, n *Node, opts SerializeOptions, targets []SpanTarget) ([]Span, error) {
	req := make(map[spanKey]int, len(targets))
	spans := make([]Span, len(targets))
	for i, t := range targets {
		if t.Node == nil {
			return nil, fmt.Errorf("xmltree: span target %d has nil node", i)
		}
		k := spanKey{t.Node, t.Attr}
		if prev, dup := req[k]; dup {
			return nil, fmt.Errorf("xmltree: span targets %d and %d are identical", prev, i)
		}
		req[k] = i
		spans[i].Start = -1
	}
	sw := &serializer{w: w, opts: opts, req: req, spans: spans}
	if err := sw.run(n); err != nil {
		return nil, err
	}
	for i := range spans {
		if spans[i].Start < 0 || spans[i].End < spans[i].Start {
			return nil, fmt.Errorf("xmltree: span target %d not reached during serialization", i)
		}
	}
	return spans, nil
}

// SerializeAt renders the subtree rooted at n exactly as a full
// serialization would render it when nested at the given depth: no
// declaration, no trailing newline, indentation computed from depth.
// It is the primitive for producing replacement bytes for an
// element-valued Span.
func SerializeAt(w io.Writer, n *Node, depth int, opts SerializeOptions) error {
	sw := &serializer{w: w, opts: opts}
	sw.node(n, depth)
	return sw.err
}

// EscapeAttr escapes a string exactly as the serializer escapes a
// double-quoted attribute value — the replacement bytes for an
// attribute-valued Span.
func EscapeAttr(s string) string { return escapeAttr(s) }
