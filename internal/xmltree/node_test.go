package xmltree

import (
	"strings"
	"testing"
)

const db1Sample = `<db>
  <book publisher="mkp">
    <title>Readings in Database Systems</title>
    <author>Stonebraker</author>
    <author>Hellerstein</author>
    <editor>Harrypotter</editor>
    <year>1998</year>
  </book>
  <book publisher="acm">
    <title>Database Design</title>
    <writer>Berstein</writer>
    <writer>Newcomer</writer>
    <editor>Gamer</editor>
    <year>1998</year>
  </book>
</db>`

func mustDB1(t *testing.T) *Node {
	t.Helper()
	doc, err := ParseString(db1Sample)
	if err != nil {
		t.Fatalf("parse db1: %v", err)
	}
	return doc
}

func TestRootAndDocument(t *testing.T) {
	doc := mustDB1(t)
	root := doc.Root()
	if root == nil || root.Name != "db" {
		t.Fatalf("Root() = %v, want <db>", root)
	}
	book := root.ChildElements()[0]
	if book.Root() != root {
		t.Errorf("Root() from descendant did not reach document element")
	}
	if book.Document() != doc {
		t.Errorf("Document() from descendant did not reach document node")
	}
	detached := NewElement("x")
	if detached.Document() != nil {
		t.Errorf("Document() on detached element should be nil")
	}
}

func TestAttrAccess(t *testing.T) {
	doc := mustDB1(t)
	book := doc.Root().ChildElements()[0]
	if v, ok := book.Attr("publisher"); !ok || v != "mkp" {
		t.Errorf("Attr(publisher) = %q,%v want mkp,true", v, ok)
	}
	if _, ok := book.Attr("missing"); ok {
		t.Errorf("Attr(missing) should not exist")
	}
	if got := book.AttrOr("missing", "dflt"); got != "dflt" {
		t.Errorf("AttrOr = %q, want dflt", got)
	}
	book.SetAttr("publisher", "springer")
	if v, _ := book.Attr("publisher"); v != "springer" {
		t.Errorf("SetAttr replace failed: %q", v)
	}
	book.SetAttr("lang", "en")
	if v, _ := book.Attr("lang"); v != "en" {
		t.Errorf("SetAttr append failed: %q", v)
	}
	if !book.RemoveAttr("lang") {
		t.Errorf("RemoveAttr existing returned false")
	}
	if book.RemoveAttr("lang") {
		t.Errorf("RemoveAttr missing returned true")
	}
}

func TestChildNavigation(t *testing.T) {
	doc := mustDB1(t)
	root := doc.Root()
	books := root.ChildElementsNamed("book")
	if len(books) != 2 {
		t.Fatalf("got %d books, want 2", len(books))
	}
	authors := books[0].ChildElementsNamed("author")
	if len(authors) != 2 {
		t.Fatalf("got %d authors, want 2", len(authors))
	}
	if got := books[1].FirstChildNamed("title").Text(); got != "Database Design" {
		t.Errorf("title = %q", got)
	}
	if books[0].FirstChildNamed("nosuch") != nil {
		t.Errorf("FirstChildNamed(nosuch) should be nil")
	}
}

func TestText(t *testing.T) {
	doc := MustParseString(`<a>x<b>y</b>z</a>`)
	if got := doc.Root().Text(); got != "xyz" {
		t.Errorf("Text = %q, want xyz", got)
	}
	txt := doc.Root().Children[0]
	if txt.Kind != TextNode || txt.Text() != "x" {
		t.Errorf("text node Text = %q", txt.Text())
	}
}

func TestSetText(t *testing.T) {
	doc := MustParseString(`<a><b>old</b><c/></a>`)
	b := doc.Root().FirstChildNamed("b")
	b.SetText("new")
	if b.Text() != "new" {
		t.Errorf("SetText: got %q", b.Text())
	}
	// Mixed content: non-text children survive.
	a := doc.Root()
	a.SetText("hello")
	if a.Text() != "hellonewold"[:len("hello")+len("new")] && a.Text() != "hellonew" {
		t.Errorf("SetText mixed = %q", a.Text())
	}
	if a.FirstChildNamed("c") == nil {
		t.Errorf("SetText removed a non-text child")
	}
}

func TestIndexAndPath(t *testing.T) {
	doc := mustDB1(t)
	books := doc.Root().ChildElementsNamed("book")
	if books[0].ElementIndex() != 0 || books[1].ElementIndex() != 1 {
		t.Errorf("ElementIndex = %d,%d want 0,1", books[0].ElementIndex(), books[1].ElementIndex())
	}
	title := books[1].FirstChildNamed("title")
	want := "/db[0]/book[1]/title[0]"
	if got := title.Path(); got != want {
		t.Errorf("Path = %q, want %q", got, want)
	}
	if doc.Path() != "/" {
		t.Errorf("document Path = %q", doc.Path())
	}
	det := NewElement("solo")
	if det.Index() != -1 || det.ElementIndex() != -1 {
		t.Errorf("detached node index should be -1")
	}
}

func TestDepthAndAncestry(t *testing.T) {
	doc := mustDB1(t)
	root := doc.Root()
	title := root.ChildElements()[0].FirstChildNamed("title")
	if d := title.Depth(); d != 2 {
		t.Errorf("Depth = %d, want 2", d)
	}
	if !root.IsAncestorOf(title) {
		t.Errorf("root should be ancestor of title")
	}
	if title.IsAncestorOf(root) {
		t.Errorf("title should not be ancestor of root")
	}
	if root.IsAncestorOf(root) {
		t.Errorf("a node is not its own ancestor")
	}
}

func TestClone(t *testing.T) {
	doc := mustDB1(t)
	cp := doc.Clone()
	if !Equal(doc, cp, CompareOptions{}) {
		t.Fatalf("clone not equal to original: %v", FirstDiff(doc, cp))
	}
	if cp.Parent != nil {
		t.Errorf("clone should be detached")
	}
	// Mutating the clone must not affect the original.
	cp.Root().ChildElements()[0].SetAttr("publisher", "changed")
	if v, _ := doc.Root().ChildElements()[0].Attr("publisher"); v != "mkp" {
		t.Errorf("mutating clone leaked into original: %q", v)
	}
}

func TestElemBuilders(t *testing.T) {
	n := Elem("db", Elem("book", TextElem("title", "T1")))
	if got := n.FirstChildNamed("book").FirstChildNamed("title").Text(); got != "T1" {
		t.Errorf("builders produced %q", got)
	}
	if n.Children[0].Parent != n {
		t.Errorf("builder did not set parent")
	}
}

func TestKindString(t *testing.T) {
	kinds := map[Kind]string{
		DocumentNode: "document", ElementNode: "element", TextNode: "text",
		CommentNode: "comment", ProcInstNode: "procinst", Kind(99): "kind(99)",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), want)
		}
	}
}

func TestNodeString(t *testing.T) {
	n := TextElem("x", "a<b")
	if got := n.String(); !strings.Contains(got, "&lt;") {
		t.Errorf("String did not escape: %q", got)
	}
}
