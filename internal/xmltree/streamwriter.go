package xmltree

// StreamSerializer writes a document incrementally — declaration, the
// document element's open tag, streamed children, close tag — producing
// output byte-identical to Serialize over the equivalent full tree.
// That identity is the contract the streaming watermark path is built
// on: a chunked embed must emit exactly the bytes the in-memory embed
// would, so the two are interchangeable and receipts/digests agree.
//
// The subtle part is mirroring two of the batch serializer's decisions
// that look ahead over a full child list:
//
//   - an element with no children renders self-closed ("<db/>"), so the
//     open tag's ">" is deferred until the first child or the close;
//   - an element whose children are all text renders inline (no
//     indentation injected into data), so leading text children are
//     buffered until a non-text child or the close decides the layout.

import (
	"io"
	"strings"
)

// StreamSerializer incrementally serializes one document. Use:
// NewStreamSerializer → [WriteDocItem…] → OpenElement → [WriteChild…] →
// CloseElement → [WriteDocItem…] → Finish.
type StreamSerializer struct {
	s     *serializer
	opts  SerializeOptions
	depth int

	stack         []*openElem
	declPending   bool
	wroteDocChild bool
	finished      bool
}

// openElem is one element whose open tag has been written but whose
// close tag has not.
type openElem struct {
	node     *Node
	buffered []*Node // leading text children, while inline is still possible
	open     bool    // ">" written (child layout decided)
	inline   bool
	hasChild bool
}

// NewStreamSerializer starts a document serialization onto w. The XML
// declaration (unless opts.OmitDeclaration) is emitted lazily, just
// before the first content write — so a caller that fails before
// producing any content leaves the writer untouched (an HTTP handler
// can still choose its status code), while successful output is
// byte-identical to Serialize.
func NewStreamSerializer(w io.Writer, opts SerializeOptions) *StreamSerializer {
	return &StreamSerializer{
		s:           &serializer{w: w, opts: opts},
		opts:        opts,
		declPending: !opts.OmitDeclaration,
	}
}

// emitDecl writes the deferred XML declaration once.
func (ss *StreamSerializer) emitDecl() {
	if !ss.declPending {
		return
	}
	ss.declPending = false
	ss.s.writeString(`<?xml version="1.0" encoding="UTF-8"?>`)
	if ss.opts.Indent != "" {
		ss.s.writeString("\n")
	}
}

// docChildSep writes the separator the batch serializer emits between
// document-level children.
func (ss *StreamSerializer) docChildSep() {
	ss.emitDecl()
	if ss.opts.Indent != "" && ss.wroteDocChild {
		ss.s.writeString("\n")
	}
	ss.wroteDocChild = true
}

// WriteDocItem serializes one document-level node (a kept comment or
// processing instruction outside the document element).
func (ss *StreamSerializer) WriteDocItem(n *Node) {
	ss.docChildSep()
	ss.s.node(n, ss.depth)
}

// OpenElement writes the element's open tag (name and attributes; the
// ">" is deferred until the child layout is known) and makes it the
// current element for WriteChild.
func (ss *StreamSerializer) OpenElement(el *Node) {
	if len(ss.stack) == 0 {
		ss.docChildSep()
	} else {
		ss.childPrefix()
	}
	ss.s.writeString("<")
	ss.s.writeString(el.Name)
	for _, a := range el.Attrs {
		ss.s.writeString(" ")
		ss.s.writeString(a.Name)
		ss.s.writeString(`="`)
		ss.s.writeString(escapeAttr(a.Value))
		ss.s.writeString(`"`)
	}
	ss.stack = append(ss.stack, &openElem{node: el})
	ss.depth++
}

// top returns the innermost open element.
func (ss *StreamSerializer) top() *openElem { return ss.stack[len(ss.stack)-1] }

// childPrefix prepares the current open element for one more child:
// commits the layout decision if needed and writes the per-child
// newline+indent of the non-inline form.
func (ss *StreamSerializer) childPrefix() {
	t := ss.top()
	if !t.open {
		// A non-text child forces the non-inline layout; flush any
		// buffered leading text through the standard per-child path.
		ss.commitLayout(false)
	}
	t.hasChild = true
	if !t.inline {
		ss.s.writeString("\n")
		ss.s.writeString(strings.Repeat(ss.opts.Indent, ss.depth))
	}
}

// commitLayout writes the deferred ">" choosing the inline or indented
// child layout, then flushes buffered leading text children.
func (ss *StreamSerializer) commitLayout(inline bool) {
	t := ss.top()
	t.open = true
	t.inline = inline || ss.opts.Indent == ""
	ss.s.writeString(">")
	buffered := t.buffered
	t.buffered = nil
	for _, b := range buffered {
		t.hasChild = true
		if !t.inline {
			ss.s.writeString("\n")
			ss.s.writeString(strings.Repeat(ss.opts.Indent, ss.depth))
		}
		ss.s.node(b, ss.depth)
	}
}

// WriteChild serializes one complete child subtree of the current open
// element, exactly as the batch serializer would at this depth.
func (ss *StreamSerializer) WriteChild(n *Node) {
	t := ss.top()
	if !t.open && n.Kind == TextNode && ss.opts.Indent != "" {
		// Still possibly inline: buffer until a non-text child or the
		// close tag decides.
		t.buffered = append(t.buffered, n)
		return
	}
	ss.childPrefix()
	ss.s.node(n, ss.depth)
}

// CloseElement closes the current open element: "/>" when it never had
// children, the inline form when every child was text, the indented
// form otherwise.
func (ss *StreamSerializer) CloseElement() {
	t := ss.top()
	ss.stack = ss.stack[:len(ss.stack)-1]
	ss.depth--
	if !t.open {
		if len(t.buffered) == 0 {
			ss.s.writeString("/>")
			return
		}
		// Text-only children: the inline layout.
		ss.commitLayoutOn(t, true)
	}
	if t.hasChild && !t.inline {
		ss.s.writeString("\n")
		ss.s.writeString(strings.Repeat(ss.opts.Indent, ss.depth))
	}
	ss.s.writeString("</")
	ss.s.writeString(t.node.Name)
	ss.s.writeString(">")
}

// commitLayoutOn is commitLayout against an element already popped off
// the stack (the close path).
func (ss *StreamSerializer) commitLayoutOn(t *openElem, inline bool) {
	t.open = true
	t.inline = inline || ss.opts.Indent == ""
	ss.s.writeString(">")
	for _, b := range t.buffered {
		t.hasChild = true
		if !t.inline {
			ss.s.writeString("\n")
			ss.s.writeString(strings.Repeat(ss.opts.Indent, ss.depth+1))
		}
		ss.s.node(b, ss.depth+1)
	}
	t.buffered = nil
}

// Finish writes the document's trailing newline (indented mode) and
// returns the first error any write encountered.
func (ss *StreamSerializer) Finish() error {
	if !ss.finished {
		ss.finished = true
		if ss.opts.Indent != "" && ss.s.err == nil {
			ss.s.writeString("\n")
		}
	}
	return ss.s.err
}

// Err returns the first write error so far without finishing.
func (ss *StreamSerializer) Err() error { return ss.s.err }
