package xmltree

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// genTree builds a pseudo-random tree for property tests. Values stay
// within printable ASCII plus the XML-special characters so that escaping
// paths are exercised.
func genTree(r *rand.Rand, depth int) *Node {
	names := []string{"db", "book", "title", "author", "year", "price", "item", "x-y", "n_1"}
	values := []string{"", "plain", "1998", "a<b", `q"uote`, "amp&ersand", "  spaced  ", "ünïcode"}
	n := NewElement(names[r.Intn(len(names))])
	for i := 0; i < r.Intn(3); i++ {
		n.SetAttr(names[r.Intn(len(names))], values[r.Intn(len(values))])
	}
	kids := r.Intn(4)
	if depth <= 0 {
		kids = 0
	}
	for i := 0; i < kids; i++ {
		if r.Intn(3) == 0 {
			v := values[r.Intn(len(values))]
			if v == "" || isAllXMLSpace(v) {
				v = "t"
			}
			// Avoid adjacent text nodes so the parse-normalized tree
			// matches the generated one.
			if k := len(n.Children); k > 0 && n.Children[k-1].Kind == TextNode {
				continue
			}
			n.AppendChild(NewText(v))
		} else {
			n.AppendChild(genTree(r, depth-1))
		}
	}
	return n
}

func TestQuickSerializeParseRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		doc := NewDocument()
		doc.AppendChild(genTree(rr, 4))
		out := SerializeString(doc)
		doc2, err := ParseString(out)
		if err != nil {
			t.Logf("serialized %q failed to parse: %v", out, err)
			return false
		}
		if !Equal(doc, doc2, CompareOptions{}) {
			t.Logf("round trip diff: %+v\nxml: %s", FirstDiff(doc, doc2), out)
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200, Rand: r}
	if err := quick.Check(f, cfg); err != nil {
		t.Errorf("round-trip property failed: %v", err)
	}
}

func TestQuickCloneEqual(t *testing.T) {
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		n := genTree(rr, 4)
		return Equal(n, n.Clone(), CompareOptions{})
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Errorf("clone-equal property failed: %v", err)
	}
}

func TestQuickCanonicalStableUnderShuffle(t *testing.T) {
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		n := genTree(rr, 3)
		m := n.Clone()
		shuffleChildren(rr, m)
		return Canonical(n, CompareOptions{IgnoreChildOrder: true}) ==
			Canonical(m, CompareOptions{IgnoreChildOrder: true})
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Errorf("canonical-shuffle property failed: %v", err)
	}
}

func shuffleChildren(r *rand.Rand, n *Node) {
	r.Shuffle(len(n.Children), func(i, j int) {
		n.Children[i], n.Children[j] = n.Children[j], n.Children[i]
	})
	for _, c := range n.Children {
		if c.Kind == ElementNode {
			shuffleChildren(r, c)
		}
	}
}

func TestQuickIndentRoundTrip(t *testing.T) {
	// Pretty-printing then re-parsing (default options drop indentation)
	// must preserve the tree whenever no element mixes text and elements.
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		doc := NewDocument()
		doc.AppendChild(genTree(rr, 3))
		if hasMixedContent(doc) {
			return true // indentation legitimately perturbs mixed content
		}
		out := SerializeIndentString(doc)
		doc2, err := ParseString(out)
		if err != nil {
			return false
		}
		return Equal(doc, doc2, CompareOptions{})
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Errorf("indent round-trip property failed: %v", err)
	}
}

func hasMixedContent(n *Node) bool {
	mixed := false
	Walk(n, func(x *Node) bool {
		if x.Kind != ElementNode {
			return true
		}
		hasText, hasElem := false, false
		for _, c := range x.Children {
			switch c.Kind {
			case TextNode:
				hasText = true
			case ElementNode:
				hasElem = true
			}
		}
		if hasText && hasElem {
			mixed = true
		}
		return !mixed
	})
	return mixed
}

func TestLeafElements(t *testing.T) {
	doc := MustParseString(`<db><book><title>T</title><empty/></book></db>`)
	leaves := LeafElements(doc)
	var names []string
	for _, l := range leaves {
		names = append(names, l.Name)
	}
	got := strings.Join(names, ",")
	if got != "title,empty" {
		t.Errorf("LeafElements = %q, want title,empty", got)
	}
}

func TestCollectStats(t *testing.T) {
	doc := MustParseString(`<db><book publisher="mkp"><title>T</title></book><book publisher="acm"/></db>`)
	st := CollectStats(doc)
	if st.Elements != 4 {
		t.Errorf("Elements = %d, want 4", st.Elements)
	}
	if st.Attributes != 2 {
		t.Errorf("Attributes = %d, want 2", st.Attributes)
	}
	if st.Tags["book"] != 2 {
		t.Errorf("Tags[book] = %d, want 2", st.Tags["book"])
	}
	if st.Texts != 1 {
		t.Errorf("Texts = %d, want 1", st.Texts)
	}
}

func TestDescendantHelpers(t *testing.T) {
	doc := MustParseString(`<db><a><b/><b/></a><b/></db>`)
	if got := len(DescendantsNamed(doc, "b")); got != 3 {
		t.Errorf("DescendantsNamed(b) = %d, want 3", got)
	}
	if got := len(DescendantElements(doc)); got != 5 {
		t.Errorf("DescendantElements = %d, want 5", got)
	}
	if got := Count(doc); got != 6 {
		t.Errorf("Count = %d, want 6", got)
	}
	all := Descendants(doc)
	if len(all) != 5 {
		t.Errorf("Descendants = %d, want 5", len(all))
	}
}
