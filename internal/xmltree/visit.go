package xmltree

// Walk visits n and every descendant in document order, calling fn for
// each. If fn returns false the subtree below that node is skipped (the
// walk continues with the node's siblings).
func Walk(n *Node, fn func(*Node) bool) {
	if !fn(n) {
		return
	}
	for _, c := range n.Children {
		Walk(c, fn)
	}
}

// WalkElements visits every element in the subtree (including n itself if
// it is an element) in document order.
func WalkElements(n *Node, fn func(*Node)) {
	Walk(n, func(x *Node) bool {
		if x.Kind == ElementNode {
			fn(x)
		}
		return true
	})
}

// Descendants returns every node strictly below n, in document order.
func Descendants(n *Node) []*Node {
	var out []*Node
	for _, c := range n.Children {
		Walk(c, func(x *Node) bool {
			out = append(out, x)
			return true
		})
	}
	return out
}

// DescendantElements returns every element strictly below n, in document
// order.
func DescendantElements(n *Node) []*Node {
	var out []*Node
	for _, c := range n.Children {
		Walk(c, func(x *Node) bool {
			if x.Kind == ElementNode {
				out = append(out, x)
			}
			return true
		})
	}
	return out
}

// DescendantsNamed returns every element strictly below n with the given
// tag name, in document order.
func DescendantsNamed(n *Node, name string) []*Node {
	var out []*Node
	for _, c := range n.Children {
		Walk(c, func(x *Node) bool {
			if x.Kind == ElementNode && x.Name == name {
				out = append(out, x)
			}
			return true
		})
	}
	return out
}

// Count returns the number of nodes in the subtree including n.
func Count(n *Node) int {
	total := 0
	Walk(n, func(*Node) bool { total++; return true })
	return total
}

// Stats summarizes a subtree: how many nodes of each kind it holds, plus
// attribute and distinct-tag counts. Used by the CLI and the experiment
// harness to report document scale.
type Stats struct {
	Elements   int
	Texts      int
	Comments   int
	ProcInsts  int
	Attributes int
	Tags       map[string]int
	MaxDepth   int
}

// CollectStats walks the subtree and tallies Stats.
func CollectStats(n *Node) Stats {
	st := Stats{Tags: make(map[string]int)}
	var walk func(x *Node, depth int)
	walk = func(x *Node, depth int) {
		if depth > st.MaxDepth {
			st.MaxDepth = depth
		}
		switch x.Kind {
		case ElementNode:
			st.Elements++
			st.Attributes += len(x.Attrs)
			st.Tags[x.Name]++
		case TextNode:
			st.Texts++
		case CommentNode:
			st.Comments++
		case ProcInstNode:
			st.ProcInsts++
		}
		for _, c := range x.Children {
			walk(c, depth+1)
		}
	}
	walk(n, 0)
	return st
}

// LeafElements returns every element in the subtree whose children are all
// text nodes (or that has no children). These are the value-bearing
// elements where watermark bandwidth lives.
func LeafElements(n *Node) []*Node {
	var out []*Node
	WalkElements(n, func(e *Node) {
		if isInlineable(e) {
			out = append(out, e)
		}
	})
	return out
}
