package xmltree

import "fmt"

// AppendChild attaches child as the last child of n. A child already
// attached elsewhere is detached first. Appending a node to one of its own
// descendants panics: that would create a cycle and is always a
// programming error.
func (n *Node) AppendChild(child *Node) {
	n.InsertChildAt(len(n.Children), child)
}

// PrependChild attaches child as the first child of n.
func (n *Node) PrependChild(child *Node) {
	n.InsertChildAt(0, child)
}

// InsertChildAt attaches child at position i among n's children
// (0 <= i <= len(n.Children)). A child already attached elsewhere is
// detached first.
func (n *Node) InsertChildAt(i int, child *Node) {
	if child == nil {
		panic("xmltree: InsertChildAt with nil child")
	}
	if child == n || child.IsAncestorOf(n) {
		panic("xmltree: InsertChildAt would create a cycle")
	}
	if child.Parent != nil {
		child.Detach()
	}
	if i < 0 || i > len(n.Children) {
		panic(fmt.Sprintf("xmltree: InsertChildAt index %d out of range [0,%d]", i, len(n.Children)))
	}
	n.Children = append(n.Children, nil)
	copy(n.Children[i+1:], n.Children[i:])
	n.Children[i] = child
	child.Parent = n
}

// InsertAfter attaches child immediately after ref among n's children.
// It reports whether ref was found.
func (n *Node) InsertAfter(ref, child *Node) bool {
	for i, c := range n.Children {
		if c == ref {
			n.InsertChildAt(i+1, child)
			return true
		}
	}
	return false
}

// RemoveChild detaches child from n and reports whether it was a child.
func (n *Node) RemoveChild(child *Node) bool {
	for i, c := range n.Children {
		if c == child {
			n.Children = append(n.Children[:i], n.Children[i+1:]...)
			child.Parent = nil
			return true
		}
	}
	return false
}

// ReplaceChild substitutes newChild for oldChild in place and reports
// whether oldChild was found. newChild is detached from any previous
// parent.
func (n *Node) ReplaceChild(oldChild, newChild *Node) bool {
	for i, c := range n.Children {
		if c == oldChild {
			if newChild.Parent != nil {
				newChild.Detach()
			}
			// Detaching newChild may have shifted our own children when
			// newChild was also our child; re-find oldChild.
			for j, c2 := range n.Children {
				if c2 == oldChild {
					i = j
					break
				}
			}
			n.Children[i] = newChild
			newChild.Parent = n
			oldChild.Parent = nil
			return true
		}
	}
	return false
}

// Detach removes n from its parent's child list. Detaching an already
// detached node is a no-op.
func (n *Node) Detach() {
	if n.Parent == nil {
		return
	}
	n.Parent.RemoveChild(n)
}

// RemoveChildren detaches all children of n.
func (n *Node) RemoveChildren() {
	for _, c := range n.Children {
		c.Parent = nil
	}
	n.Children = nil
}

// Normalize merges adjacent text children and removes empty text children
// throughout the subtree. Parsing already produces normalized trees;
// Normalize is useful after heavy mutation.
func (n *Node) Normalize() {
	var merged []*Node
	for _, c := range n.Children {
		if c.Kind == TextNode {
			if c.Value == "" {
				c.Parent = nil
				continue
			}
			if len(merged) > 0 && merged[len(merged)-1].Kind == TextNode {
				merged[len(merged)-1].Value += c.Value
				c.Parent = nil
				continue
			}
		}
		merged = append(merged, c)
	}
	n.Children = merged
	for _, c := range n.Children {
		if c.Kind == ElementNode {
			c.Normalize()
		}
	}
}

// StripWhitespaceText removes text children consisting solely of XML
// whitespace from every element in the subtree. Indentation introduced by
// pretty printing is the common source of such nodes; most structural
// comparisons want it gone.
func (n *Node) StripWhitespaceText() {
	kept := n.Children[:0]
	for _, c := range n.Children {
		if c.Kind == TextNode && isAllXMLSpace(c.Value) {
			c.Parent = nil
			continue
		}
		kept = append(kept, c)
	}
	n.Children = kept
	// Clear the tail so detached nodes are not retained by the backing
	// array.
	for _, c := range n.Children {
		if c.Kind == ElementNode {
			c.StripWhitespaceText()
		}
	}
}

func isAllXMLSpace(s string) bool {
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case ' ', '\t', '\n', '\r':
		default:
			return false
		}
	}
	return true
}
