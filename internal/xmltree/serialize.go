package xmltree

import (
	"fmt"
	"io"
	"strings"
)

// SerializeOptions controls XML output.
type SerializeOptions struct {
	// Indent, when non-empty, pretty-prints the document using the given
	// indentation unit (e.g. "  "). Text-only elements stay on one line so
	// that indentation never injects whitespace into data values.
	Indent string
	// OmitDeclaration suppresses the leading <?xml ... ?> declaration when
	// serializing a document node.
	OmitDeclaration bool
}

// Serialize writes the subtree rooted at n as XML.
func Serialize(w io.Writer, n *Node, opts SerializeOptions) error {
	sw := &serializer{w: w, opts: opts}
	return sw.run(n)
}

// SerializeString renders the subtree as a compact XML string (no
// declaration, no indentation).
func SerializeString(n *Node) string {
	var sb strings.Builder
	_ = Serialize(&sb, n, SerializeOptions{OmitDeclaration: true})
	return sb.String()
}

// SerializeIndentString renders the subtree pretty-printed with two-space
// indentation, including the XML declaration for document nodes.
func SerializeIndentString(n *Node) string {
	var sb strings.Builder
	_ = Serialize(&sb, n, SerializeOptions{Indent: "  "})
	return sb.String()
}

type serializer struct {
	w    io.Writer
	opts SerializeOptions
	err  error

	// Span capture (SerializeSpans): off counts bytes written so far,
	// req maps requested targets to indices in spans.
	off   int
	req   map[spanKey]int
	spans []Span
}

// run emits the document-level framing (declaration, trailing newline)
// around the subtree — the single code path behind Serialize and
// SerializeSpans, so captured offsets always index the same bytes
// Serialize would produce.
func (s *serializer) run(n *Node) error {
	if n.Kind == DocumentNode && !s.opts.OmitDeclaration {
		s.writeString(`<?xml version="1.0" encoding="UTF-8"?>`)
		if s.opts.Indent != "" {
			s.writeString("\n")
		}
	}
	s.node(n, 0)
	if s.opts.Indent != "" && s.err == nil {
		s.writeString("\n")
	}
	return s.err
}

func (s *serializer) writeString(str string) {
	if s.err != nil {
		return
	}
	var n int
	n, s.err = io.WriteString(s.w, str)
	s.off += n
}

func (s *serializer) node(n *Node, depth int) {
	if s.err != nil {
		return
	}
	si := -1
	if s.req != nil {
		if i, ok := s.req[spanKey{n, ""}]; ok {
			si = i
			s.spans[i].Start = s.off
			s.spans[i].Depth = depth
		}
	}
	s.nodeBody(n, depth)
	if si >= 0 && s.err == nil {
		s.spans[si].End = s.off
	}
}

func (s *serializer) nodeBody(n *Node, depth int) {
	switch n.Kind {
	case DocumentNode:
		first := true
		for _, c := range n.Children {
			if s.opts.Indent != "" && !first {
				s.writeString("\n")
			}
			s.node(c, depth)
			first = false
		}
	case ElementNode:
		s.element(n, depth)
	case TextNode:
		s.writeString(escapeText(n.Value))
	case CommentNode:
		s.writeString("<!--")
		s.writeString(strings.ReplaceAll(n.Value, "--", "- -"))
		s.writeString("-->")
	case ProcInstNode:
		s.writeString("<?")
		s.writeString(n.Name)
		if n.Value != "" {
			s.writeString(" ")
			s.writeString(n.Value)
		}
		s.writeString("?>")
	default:
		s.err = fmt.Errorf("xmltree: serialize: unknown node kind %v", n.Kind)
	}
}

func (s *serializer) element(n *Node, depth int) {
	s.writeString("<")
	s.writeString(n.Name)
	for _, a := range n.Attrs {
		s.writeString(" ")
		s.writeString(a.Name)
		s.writeString(`="`)
		ai := -1
		if s.req != nil {
			if i, ok := s.req[spanKey{n, a.Name}]; ok {
				ai = i
				s.spans[i].Start = s.off
				s.spans[i].Depth = depth
			}
		}
		s.writeString(escapeAttr(a.Value))
		if ai >= 0 && s.err == nil {
			s.spans[ai].End = s.off
		}
		s.writeString(`"`)
	}
	if len(n.Children) == 0 {
		s.writeString("/>")
		return
	}
	s.writeString(">")
	inline := s.opts.Indent == "" || isInlineable(n)
	for _, c := range n.Children {
		if !inline {
			s.writeString("\n")
			s.writeString(strings.Repeat(s.opts.Indent, depth+1))
		}
		s.node(c, depth+1)
	}
	if !inline {
		s.writeString("\n")
		s.writeString(strings.Repeat(s.opts.Indent, depth))
	}
	s.writeString("</")
	s.writeString(n.Name)
	s.writeString(">")
}

// isInlineable reports whether an element's content can be emitted on one
// line without changing its textual value: true when every child is a
// text node.
func isInlineable(n *Node) bool {
	for _, c := range n.Children {
		if c.Kind != TextNode {
			return false
		}
	}
	return true
}

func escapeText(s string) string {
	var sb strings.Builder
	for _, r := range s {
		switch r {
		case '&':
			sb.WriteString("&amp;")
		case '<':
			sb.WriteString("&lt;")
		case '>':
			sb.WriteString("&gt;")
		case '\r':
			sb.WriteString("&#xD;")
		default:
			sb.WriteRune(r)
		}
	}
	return sb.String()
}

func escapeAttr(s string) string {
	var sb strings.Builder
	for _, r := range s {
		switch r {
		case '&':
			sb.WriteString("&amp;")
		case '<':
			sb.WriteString("&lt;")
		case '>':
			sb.WriteString("&gt;")
		case '"':
			sb.WriteString("&quot;")
		case '\t':
			sb.WriteString("&#x9;")
		case '\n':
			sb.WriteString("&#xA;")
		case '\r':
			sb.WriteString("&#xD;")
		default:
			sb.WriteRune(r)
		}
	}
	return sb.String()
}
