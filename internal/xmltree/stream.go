package xmltree

// Record-chunked streaming: StreamParser walks a document with the
// tokenizer and hands out each completed top-level subtree (a child of
// the document element) as soon as its end tag arrives, so a caller can
// process a multi-gigabyte export without ever materializing more than
// one record at a time. The parser drives the exact same tokenBuilder as
// Parse — whitespace dropping, text merging, namespace restoration,
// depth caps and well-formedness checks are shared code, which is what
// makes chunked processing semantically identical to whole-document
// parsing.

import (
	"encoding/xml"
	"io"
)

// StreamEventKind discriminates StreamParser events.
type StreamEventKind uint8

const (
	// EventDocItem is a document-level node outside the document element
	// (a kept comment or processing instruction before or after the
	// root). Node is detached.
	EventDocItem StreamEventKind = iota
	// EventRootOpen reports the document element: Node is the element
	// with its attributes (including namespace declarations) but no
	// children yet. The parser retains it as the namespace-resolution
	// context for the items that follow; callers must not mutate it
	// while streaming.
	EventRootOpen
	// EventItem is one completed child of the document element — a
	// record subtree, a non-record element, or a text/comment/procinst
	// node, in document order. The node is detached (Parent nil);
	// namespace prefixes were resolved against the live ancestor chain
	// while the subtree was being built.
	EventItem
	// EventRootClose reports the document element's end tag. Items after
	// this are document-level trailer misc.
	EventRootClose
)

// StreamEvent is one step of a streamed parse.
type StreamEvent struct {
	Kind StreamEventKind
	Node *Node
}

// streamState tracks where the parser is relative to the document
// element.
type streamState uint8

const (
	beforeRoot streamState = iota
	inRoot
	afterRoot
)

// StreamParser incrementally parses a document, emitting completed
// top-level subtrees instead of one big tree. Memory is bounded by the
// largest single top-level child, not the document.
type StreamParser struct {
	dec    *xml.Decoder
	b      *tokenBuilder
	tr     *errTrackReader
	root   *Node
	state  streamState
	eof    bool
	finErr error
	queue  []StreamEvent
}

// NewStreamParser builds a streaming parser over r with the same
// options — and the same semantics — as Parse.
func NewStreamParser(r io.Reader, opts ParseOptions) *StreamParser {
	tr := &errTrackReader{r: r}
	return &StreamParser{
		dec: newDecoder(tr),
		b:   newTokenBuilder(opts),
		tr:  tr,
	}
}

// Root returns the document element node once EventRootOpen has been
// emitted (nil before). Its attributes carry the in-scope namespace
// declarations for every item.
func (p *StreamParser) Root() *Node { return p.root }

// Next returns the next event, or io.EOF after the document completed
// cleanly. Any other error is fatal: a malformed document, a depth-cap
// violation, or the underlying reader's own failure (which is surfaced
// in the error chain, not masked as a syntax error).
func (p *StreamParser) Next() (StreamEvent, error) {
	for {
		if len(p.queue) > 0 {
			ev := p.queue[0]
			p.queue = p.queue[1:]
			return ev, nil
		}
		if p.finErr != nil {
			return StreamEvent{}, p.finErr
		}
		if p.eof {
			return StreamEvent{}, io.EOF
		}
		tok, err := p.dec.Token()
		if err == io.EOF {
			p.eof = true
			if _, ferr := p.b.finish(); ferr != nil {
				p.finErr = p.finishError(ferr)
				return StreamEvent{}, p.finErr
			}
			p.harvest()
			continue
		}
		if err != nil {
			p.finErr = parseError(err, p.tr)
			return StreamEvent{}, p.finErr
		}
		if terr := p.b.token(tok); terr != nil {
			p.finErr = terr
			return StreamEvent{}, terr
		}
		p.harvest()
	}
}

// finishError maps a well-formedness failure at EOF: when the reader
// itself failed, that failure is the root cause of the truncation.
func (p *StreamParser) finishError(ferr error) error {
	if p.tr.err != nil {
		return parseError(ferr, p.tr)
	}
	return ferr
}

// harvest moves completed nodes out of the builder's tree into the
// event queue. The invariant it relies on: only the *last* child of a
// parent can still be growing — an element until the cursor leaves it,
// a text node until a non-text token arrives.
func (p *StreamParser) harvest() {
	doc := p.b.doc
	// Document-level children. Whitespace text never survives at this
	// level and non-whitespace text is a builder error, so every
	// non-element child (kept comment / procinst) is complete the token
	// it appears. The element child is the document element.
	keep := doc.Children[:0]
	for _, c := range doc.Children {
		if c.Kind != ElementNode {
			c.Parent = nil
			p.queue = append(p.queue, StreamEvent{Kind: EventDocItem, Node: c})
			continue
		}
		if p.state == beforeRoot {
			p.root = c
			p.state = inRoot
			p.queue = append(p.queue, StreamEvent{Kind: EventRootOpen, Node: c})
		}
		keep = append(keep, c)
	}
	doc.Children = keep

	if p.state != inRoot {
		return
	}
	rootClosed := p.b.cur == doc
	p.emitRootChildren(rootClosed)
	if rootClosed {
		p.queue = append(p.queue, StreamEvent{Kind: EventRootClose})
		p.state = afterRoot
		// Drop the (now childless) root element from the document's
		// child list so the retained skeleton stays O(1). The root node
		// itself lives on as the namespace context of emitted items.
		kept := doc.Children[:0]
		for _, c := range doc.Children {
			if c != p.root {
				kept = append(kept, c)
			}
		}
		doc.Children = kept
	}
}

// emitRootChildren streams out the root's completed children. When the
// root is still open, the last child is withheld if it could still
// grow: the cursor is inside it (an unclosed element), or it is a text
// node that later character data may merge into.
func (p *StreamParser) emitRootChildren(rootClosed bool) {
	root := p.root
	n := len(root.Children)
	if n == 0 {
		return
	}
	complete := n
	if !rootClosed {
		last := root.Children[n-1]
		cursorInsideLast := p.b.cur != root // cursor is below the root, i.e. inside the open last child
		if cursorInsideLast || last.Kind == TextNode {
			complete = n - 1
		}
	}
	if complete <= 0 {
		return
	}
	for _, c := range root.Children[:complete] {
		// Emit detached: namespace resolution already happened during
		// construction, and a detached node can be re-parented by a
		// concurrent consumer without touching this parser's tree.
		c.Parent = nil
		p.queue = append(p.queue, StreamEvent{Kind: EventItem, Node: c})
	}
	root.Children = append(root.Children[:0], root.Children[complete:]...)
}
