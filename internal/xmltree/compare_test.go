package xmltree

import "testing"

func TestEqualBasics(t *testing.T) {
	a := MustParseString(`<a x="1"><b>t</b></a>`)
	b := MustParseString(`<a x="1"><b>t</b></a>`)
	if !Equal(a, b, CompareOptions{}) {
		t.Errorf("identical docs not equal: %v", FirstDiff(a, b))
	}
	c := MustParseString(`<a x="2"><b>t</b></a>`)
	if Equal(a, c, CompareOptions{}) {
		t.Errorf("different attr values compare equal")
	}
	d := MustParseString(`<a x="1"><b>u</b></a>`)
	if Equal(a, d, CompareOptions{}) {
		t.Errorf("different text compares equal")
	}
}

func TestEqualChildOrder(t *testing.T) {
	a := MustParseString(`<a><b>1</b><c>2</c></a>`)
	b := MustParseString(`<a><c>2</c><b>1</b></a>`)
	if Equal(a, b, CompareOptions{}) {
		t.Errorf("order-sensitive compare ignored order")
	}
	if !Equal(a, b, CompareOptions{IgnoreChildOrder: true}) {
		t.Errorf("order-insensitive compare failed")
	}
}

func TestEqualAttrOrder(t *testing.T) {
	a := MustParseString(`<a x="1" y="2"/>`)
	b := MustParseString(`<a y="2" x="1"/>`)
	// Attributes are always compared order-insensitively (canonical form).
	if !Equal(a, b, CompareOptions{}) {
		t.Errorf("attribute order should not matter")
	}
}

func TestEqualTrimText(t *testing.T) {
	a := MustParseString(`<a><b> v </b></a>`)
	b := MustParseString(`<a><b>v</b></a>`)
	if Equal(a, b, CompareOptions{}) {
		t.Errorf("whitespace-different text compared equal without TrimText")
	}
	if !Equal(a, b, CompareOptions{TrimText: true}) {
		t.Errorf("TrimText compare failed")
	}
}

func TestCanonicalOrderInsensitiveNested(t *testing.T) {
	a := MustParseString(`<db><book><title>A</title><year>1</year></book><book><title>B</title><year>2</year></book></db>`)
	b := MustParseString(`<db><book><year>2</year><title>B</title></book><book><year>1</year><title>A</title></book></db>`)
	opts := CompareOptions{IgnoreChildOrder: true}
	if Canonical(a, opts) != Canonical(b, opts) {
		t.Errorf("nested order-insensitive canonical differs")
	}
}

func TestCanonicalDistinguishesValues(t *testing.T) {
	// A value must not be confusable with markup in the canonical string.
	a := MustParseString(`<a><b>x</b></a>`)
	b := MustParseString(`<a><b>x</b><c/></a>`)
	if Canonical(a, CompareOptions{}) == Canonical(b, CompareOptions{}) {
		t.Errorf("canonical collision between different trees")
	}
}

func TestFirstDiff(t *testing.T) {
	a := MustParseString(`<a><b>1</b><c>2</c></a>`)
	b := MustParseString(`<a><b>1</b><c>3</c></a>`)
	d := FirstDiff(a, b)
	if d.Where == "" {
		t.Fatalf("FirstDiff found nothing")
	}
	if d.Where != "/a[0]/c[0]/text()" && d.Where != "/a[0]/c[0]" {
		t.Errorf("diff location = %q", d.Where)
	}
	if same := FirstDiff(a, a.Clone()); same.Where != "" {
		t.Errorf("FirstDiff on equal trees = %+v", same)
	}
}

func TestFirstDiffKindsAndAttrs(t *testing.T) {
	a := MustParseString(`<a x="1"/>`)
	b := MustParseString(`<a/>`)
	if d := FirstDiff(a, b); d.Where == "" {
		t.Errorf("attr count diff missed")
	}
	c := MustParseString(`<a x="2"/>`)
	if d := FirstDiff(a, c); d.Where == "" {
		t.Errorf("attr value diff missed")
	}
}
