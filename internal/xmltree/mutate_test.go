package xmltree

import (
	"strings"
	"testing"
)

func TestAppendAndInsert(t *testing.T) {
	p := NewElement("p")
	a, b, c := NewElement("a"), NewElement("b"), NewElement("c")
	p.AppendChild(a)
	p.AppendChild(c)
	p.InsertChildAt(1, b)
	names := []string{}
	for _, ch := range p.Children {
		names = append(names, ch.Name)
	}
	if len(names) != 3 || names[0] != "a" || names[1] != "b" || names[2] != "c" {
		t.Fatalf("children = %v", names)
	}
	for _, ch := range p.Children {
		if ch.Parent != p {
			t.Errorf("child %s parent not set", ch.Name)
		}
	}
}

func TestPrependChild(t *testing.T) {
	p := Elem("p", NewElement("b"))
	p.PrependChild(NewElement("a"))
	if p.Children[0].Name != "a" {
		t.Errorf("prepend failed: %v", p.Children[0].Name)
	}
}

func TestReparenting(t *testing.T) {
	p1 := Elem("p1", NewElement("x"))
	p2 := NewElement("p2")
	x := p1.Children[0]
	p2.AppendChild(x)
	if len(p1.Children) != 0 {
		t.Errorf("x not removed from old parent")
	}
	if x.Parent != p2 {
		t.Errorf("x parent not updated")
	}
}

func TestInsertAfter(t *testing.T) {
	p := Elem("p", NewElement("a"), NewElement("c"))
	b := NewElement("b")
	if !p.InsertAfter(p.Children[0], b) {
		t.Fatalf("InsertAfter returned false")
	}
	if p.Children[1] != b {
		t.Errorf("b not in position 1")
	}
	if p.InsertAfter(NewElement("ghost"), NewElement("z")) {
		t.Errorf("InsertAfter with non-child ref returned true")
	}
}

func TestRemoveAndReplace(t *testing.T) {
	p := Elem("p", NewElement("a"), NewElement("b"))
	a := p.Children[0]
	if !p.RemoveChild(a) {
		t.Fatalf("RemoveChild returned false")
	}
	if a.Parent != nil || len(p.Children) != 1 {
		t.Errorf("RemoveChild left state inconsistent")
	}
	if p.RemoveChild(a) {
		t.Errorf("removing twice returned true")
	}

	b := p.Children[0]
	n := NewElement("n")
	if !p.ReplaceChild(b, n) {
		t.Fatalf("ReplaceChild returned false")
	}
	if p.Children[0] != n || n.Parent != p || b.Parent != nil {
		t.Errorf("ReplaceChild left state inconsistent")
	}
	if p.ReplaceChild(b, NewElement("z")) {
		t.Errorf("ReplaceChild of non-child returned true")
	}
}

func TestDetach(t *testing.T) {
	p := Elem("p", NewElement("a"))
	a := p.Children[0]
	a.Detach()
	if a.Parent != nil || len(p.Children) != 0 {
		t.Errorf("Detach failed")
	}
	a.Detach() // no-op, must not panic
}

func TestRemoveChildren(t *testing.T) {
	p := Elem("p", NewElement("a"), NewElement("b"))
	kids := append([]*Node(nil), p.Children...)
	p.RemoveChildren()
	if len(p.Children) != 0 {
		t.Errorf("children not cleared")
	}
	for _, k := range kids {
		if k.Parent != nil {
			t.Errorf("child %s still has parent", k.Name)
		}
	}
}

func TestCycleProtection(t *testing.T) {
	p := Elem("p", NewElement("a"))
	a := p.Children[0]
	defer func() {
		if recover() == nil {
			t.Errorf("inserting ancestor under descendant did not panic")
		}
	}()
	a.AppendChild(p)
}

func TestSelfInsertPanics(t *testing.T) {
	p := NewElement("p")
	defer func() {
		if recover() == nil {
			t.Errorf("inserting node under itself did not panic")
		}
	}()
	p.AppendChild(p)
}

func TestNormalize(t *testing.T) {
	p := NewElement("p")
	p.Children = []*Node{
		{Kind: TextNode, Value: "a", Parent: p},
		{Kind: TextNode, Value: "", Parent: p},
		{Kind: TextNode, Value: "b", Parent: p},
		Elem("e"),
		{Kind: TextNode, Value: "c", Parent: p},
	}
	p.Children[3].Parent = p
	p.Normalize()
	if len(p.Children) != 3 {
		t.Fatalf("children after normalize = %d, want 3", len(p.Children))
	}
	if p.Children[0].Value != "ab" {
		t.Errorf("merged text = %q", p.Children[0].Value)
	}
}

func TestStripWhitespaceText(t *testing.T) {
	doc, err := Parse(strings.NewReader("<a>\n  <b> keep </b>\n</a>"), ParseOptions{KeepWhitespaceText: true})
	if err != nil {
		t.Fatal(err)
	}
	doc.StripWhitespaceText()
	for _, c := range doc.Root().Children {
		if c.Kind == TextNode {
			t.Errorf("whitespace text survived strip")
		}
	}
	if got := doc.Root().FirstChildNamed("b").Text(); got != " keep " {
		t.Errorf("non-whitespace text altered: %q", got)
	}
}
