package stream

import (
	"fmt"
	"io"
)

// Edit replaces one half-open byte range [Start, End) of a source
// stream with Repl. It is the byte-level counterpart of the package's
// record-chunked rewriting: a precompiled delivery plan reduces a whole
// embedding to a sorted list of Edits over the canonical bytes.
type Edit struct {
	Start, End int64
	Repl       []byte
}

// spliceChunk is the default copy-buffer size for Splice.
const spliceChunk = 64 << 10

// Splice copies src to dst, replacing each edit's byte range with its
// replacement, in bounded memory: the source is never materialized,
// only chunkBytes (0 = 64KiB) are buffered at a time, so arbitrarily
// large documents stream through at constant memory like the package's
// chunked embed path. Edits must be sorted by Start and must not
// overlap. Returns the number of source bytes consumed; a source that
// ends before the last edit is an error, not a short output.
func Splice(dst io.Writer, src io.Reader, edits []Edit, chunkBytes int) (int64, error) {
	if chunkBytes <= 0 {
		chunkBytes = spliceChunk
	}
	buf := make([]byte, chunkBytes)
	var pos int64
	for i, e := range edits {
		if e.Start < pos || e.End < e.Start {
			return pos, fmt.Errorf("stream: splice edit %d out of order: [%d,%d) at source offset %d", i, e.Start, e.End, pos)
		}
		want := e.Start - pos
		n, err := io.CopyBuffer(dst, io.LimitReader(src, want), buf)
		pos += n
		if err != nil {
			return pos, fmt.Errorf("stream: splice before edit %d: %w", i, err)
		}
		if n < want {
			return pos, fmt.Errorf("stream: splice: source truncated at offset %d, edit %d starts at %d", pos, i, e.Start)
		}
		if _, err := dst.Write(e.Repl); err != nil {
			return pos, fmt.Errorf("stream: splice edit %d: %w", i, err)
		}
		want = e.End - e.Start
		n, err = io.CopyBuffer(io.Discard, io.LimitReader(src, want), buf)
		pos += n
		if err != nil {
			return pos, fmt.Errorf("stream: splice skipping edit %d: %w", i, err)
		}
		if n < want {
			return pos, fmt.Errorf("stream: splice: source truncated at offset %d inside edit %d ending at %d", pos, i, e.End)
		}
	}
	n, err := io.CopyBuffer(dst, src, buf)
	pos += n
	if err != nil {
		return pos, fmt.Errorf("stream: splice tail: %w", err)
	}
	return pos, nil
}
