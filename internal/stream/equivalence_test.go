package stream

// The headline contract of the streaming layer: on every document where
// both paths run, the streamed output — marked bytes, receipt bytes,
// detection vote tables — is identical to the in-memory path's. These
// tests check it property-style over the dataset generators (every
// preset × sizes × chunk sizes × worker counts), and FuzzStreamEmbed
// lets the fuzzer drive the parameter space further.

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"testing"

	"wmxml/internal/core"
	"wmxml/internal/datagen"
	"wmxml/internal/identity"
	"wmxml/internal/wmark"
	"wmxml/internal/xmltree"
)

// cfgFor builds a core config over a dataset.
func cfgFor(ds *datagen.Dataset, key, mark string, gamma int) core.Config {
	return core.Config{
		Key:      []byte(key),
		Mark:     wmark.FromText(mark),
		Gamma:    gamma,
		Schema:   ds.Schema,
		Catalog:  ds.Catalog,
		Identity: identity.Options{Targets: ds.Targets},
	}
}

// inMemoryEmbed runs the reference path: parse whole, embed, serialize
// with the streaming layer's default options.
func inMemoryEmbed(t testing.TB, src []byte, cfg core.Config) (out []byte, res *core.EmbedResult) {
	t.Helper()
	doc, err := xmltree.Parse(bytes.NewReader(src), xmltree.ParseOptions{})
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	res, err = core.Embed(doc, cfg)
	if err != nil {
		t.Fatalf("embed: %v", err)
	}
	var sb bytes.Buffer
	if err := xmltree.Serialize(&sb, doc, xmltree.SerializeOptions{Indent: "  "}); err != nil {
		t.Fatalf("serialize: %v", err)
	}
	return sb.Bytes(), res
}

// marshal renders a receipt deterministically for byte comparison.
func marshal(t testing.TB, recs []core.QueryRecord) []byte {
	t.Helper()
	data, err := core.MarshalQuerySet(recs)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return data
}

// votesEqual compares two vote tables cell by cell.
func votesEqual(a, b *wmark.Votes) bool {
	if a.Len() != b.Len() || a.Total() != b.Total() || a.Misses() != b.Misses() {
		return false
	}
	for i := 0; i < a.Len(); i++ {
		ao, az := a.Counts(i)
		bo, bz := b.Counts(i)
		if ao != bo || az != bz {
			return false
		}
	}
	return true
}

// checkEquivalence asserts the full streamed-vs-in-memory contract for
// one document + config + streaming options.
func checkEquivalence(t *testing.T, src []byte, cfg core.Config, opts Options) {
	t.Helper()
	wantOut, wantRes := inMemoryEmbed(t, src, cfg)

	var got bytes.Buffer
	sres, err := Embed(context.Background(), bytes.NewReader(src), &got, cfg, opts)
	if err != nil {
		t.Fatalf("stream embed: %v", err)
	}
	if !sres.Stats.Streamed {
		t.Fatalf("expected the chunked path, fell back: %s", sres.Stats.FallbackReason)
	}
	if !bytes.Equal(got.Bytes(), wantOut) {
		t.Fatalf("streamed document differs from in-memory embed\nstream %d bytes, memory %d bytes\nfirst divergence at %d",
			got.Len(), len(wantOut), firstDiff(got.Bytes(), wantOut))
	}
	if gotQ, wantQ := marshal(t, sres.Records), marshal(t, wantRes.Records); !bytes.Equal(gotQ, wantQ) {
		t.Fatalf("streamed receipt differs from in-memory receipt\n got %d records\nwant %d records", len(sres.Records), len(wantRes.Records))
	}
	if sres.Carriers != wantRes.Carriers || sres.Embedded != wantRes.Embedded || sres.Unembeddable != wantRes.Unembeddable {
		t.Fatalf("summary drift: got carriers=%d embedded=%d unembeddable=%d, want %d/%d/%d",
			sres.Carriers, sres.Embedded, sres.Unembeddable, wantRes.Carriers, wantRes.Embedded, wantRes.Unembeddable)
	}

	// Detection: the streamed decode of the marked document must produce
	// the exact vote table (and counts) of the in-memory decode — with
	// queries and blind.
	markedDoc, err := xmltree.Parse(bytes.NewReader(wantOut), xmltree.ParseOptions{})
	if err != nil {
		t.Fatalf("reparse marked: %v", err)
	}
	wantDec, err := core.DecodeWithQueriesIndexed(markedDoc, cfg, wantRes.Records, nil, nil)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	gotDec, err := Decode(context.Background(), bytes.NewReader(wantOut), cfg, wantRes.Records, nil, opts)
	if err != nil {
		t.Fatalf("stream decode: %v", err)
	}
	if !gotDec.Stats.Streamed {
		t.Fatalf("decode fell back: %s", gotDec.Stats.FallbackReason)
	}
	if !votesEqual(gotDec.Votes, wantDec.Votes) {
		t.Fatalf("queries-mode votes differ: stream total=%d misses=%d, memory total=%d misses=%d",
			gotDec.Votes.Total(), gotDec.Votes.Misses(), wantDec.Votes.Total(), wantDec.Votes.Misses())
	}
	if gotDec.QueriesRun != wantDec.QueriesRun || gotDec.QueryMisses != wantDec.QueryMisses || gotDec.RewriteErrors != wantDec.RewriteErrors {
		t.Fatalf("queries-mode counts differ: got run=%d miss=%d rw=%d, want %d/%d/%d",
			gotDec.QueriesRun, gotDec.QueryMisses, gotDec.RewriteErrors,
			wantDec.QueriesRun, wantDec.QueryMisses, wantDec.RewriteErrors)
	}

	wantBlind, err := core.DecodeBlindIndexed(markedDoc, cfg, nil)
	if err != nil {
		t.Fatalf("blind decode: %v", err)
	}
	gotBlind, err := DecodeBlind(context.Background(), bytes.NewReader(wantOut), cfg, opts)
	if err != nil {
		t.Fatalf("stream blind decode: %v", err)
	}
	if !votesEqual(gotBlind.Votes, wantBlind.Votes) {
		t.Fatalf("blind votes differ: stream total=%d misses=%d, memory total=%d misses=%d",
			gotBlind.Votes.Total(), gotBlind.Votes.Misses(), wantBlind.Votes.Total(), wantBlind.Votes.Misses())
	}
	if gotBlind.QueriesRun != wantBlind.QueriesRun || gotBlind.QueryMisses != wantBlind.QueryMisses {
		t.Fatalf("blind counts differ: got run=%d miss=%d, want %d/%d",
			gotBlind.QueriesRun, gotBlind.QueryMisses, wantBlind.QueriesRun, wantBlind.QueryMisses)
	}
}

func firstDiff(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

// serializeDataset renders a dataset's document the way files on disk
// look (indented, declared).
func serializeDataset(t testing.TB, ds *datagen.Dataset) []byte {
	t.Helper()
	var sb bytes.Buffer
	if err := xmltree.Serialize(&sb, ds.Doc, xmltree.SerializeOptions{Indent: "  "}); err != nil {
		t.Fatal(err)
	}
	return sb.Bytes()
}

// TestStreamEquivalenceProperty sweeps presets × sizes × chunk sizes ×
// workers, asserting the full contract on each combination.
func TestStreamEquivalenceProperty(t *testing.T) {
	presets := []string{"pubs", "jobs", "library", "nested"}
	sizes := []int{1, 7, 60, 240}
	chunks := []int{1, 3, 50, 1000}
	workers := []int{1, 4}
	for _, preset := range presets {
		for i, size := range sizes {
			ds, err := datagen.Preset(preset, size, int64(41*i+7))
			if err != nil {
				t.Fatal(err)
			}
			src := serializeDataset(t, ds)
			cfg := cfgFor(ds, "k-"+preset, "(C) stream equivalence", 3)
			for _, cs := range chunks {
				for _, w := range workers {
					name := fmt.Sprintf("%s/size=%d/chunk=%d/workers=%d", preset, size, cs, w)
					t.Run(name, func(t *testing.T) {
						checkEquivalence(t, src, cfg, Options{ChunkSize: cs, Workers: w})
					})
				}
			}
		}
	}
}

// TestStreamEquivalenceConcurrentCore re-checks one configuration with
// per-chunk core concurrency enabled on top of chunk workers.
func TestStreamEquivalenceConcurrentCore(t *testing.T) {
	ds, err := datagen.Preset("pubs", 150, 11)
	if err != nil {
		t.Fatal(err)
	}
	src := serializeDataset(t, ds)
	cfg := cfgFor(ds, "kk", "(C) concurrent", 2)
	cfg.Concurrency = 4
	checkEquivalence(t, src, cfg, Options{ChunkSize: 16, Workers: 4})
}

// TestStreamFallbacks verifies each non-chunkable configuration routes
// through the in-memory path and still produces identical output.
func TestStreamFallbacks(t *testing.T) {
	ds, err := datagen.Preset("pubs", 40, 3)
	if err != nil {
		t.Fatal(err)
	}
	src := serializeDataset(t, ds)

	t.Run("positional", func(t *testing.T) {
		cfg := cfgFor(ds, "k", "(C) fb", 2)
		cfg.Identity.Mode = identity.ModePositional
		wantOut, wantRes := inMemoryEmbed(t, src, cfg)
		var got bytes.Buffer
		sres, err := Embed(context.Background(), bytes.NewReader(src), &got, cfg, Options{ChunkSize: 8})
		if err != nil {
			t.Fatal(err)
		}
		if sres.Stats.Streamed || !strings.Contains(sres.Stats.FallbackReason, "positional") {
			t.Fatalf("expected positional fallback, got %+v", sres.Stats)
		}
		if !bytes.Equal(got.Bytes(), wantOut) {
			t.Fatal("fallback output differs")
		}
		if !bytes.Equal(marshal(t, sres.Records), marshal(t, wantRes.Records)) {
			t.Fatal("fallback receipt differs")
		}
	})

	t.Run("validate-input", func(t *testing.T) {
		cfg := cfgFor(ds, "k", "(C) fb", 2)
		cfg.ValidateInput = true
		var got bytes.Buffer
		sres, err := Embed(context.Background(), bytes.NewReader(src), &got, cfg, Options{ChunkSize: 8})
		if err != nil {
			t.Fatal(err)
		}
		if sres.Stats.Streamed || !strings.Contains(sres.Stats.FallbackReason, "ValidateInput") {
			t.Fatalf("expected ValidateInput fallback, got %+v", sres.Stats)
		}
	})

	t.Run("positional-receipt-queries", func(t *testing.T) {
		cfg := cfgFor(ds, "k", "(C) fb", 2)
		// A hand-written positional record must force the queries-mode
		// fallback: /db/book[2]/year selects a different book per chunk.
		recs := []core.QueryRecord{{ID: "pos\x1fdb/book\x1fyear\x1f2", Query: "/db/book[2]/year", Type: "integer", Target: "db/book/year"}}
		dec, err := Decode(context.Background(), bytes.NewReader(src), cfg, recs, nil, Options{ChunkSize: 8})
		if err != nil {
			t.Fatal(err)
		}
		if dec.Stats.Streamed || !strings.Contains(dec.Stats.FallbackReason, "chunk-local") {
			t.Fatalf("expected chunk-local fallback, got %+v", dec.Stats)
		}
		// And the fallback result equals the in-memory one.
		doc, err := xmltree.Parse(bytes.NewReader(src), xmltree.ParseOptions{})
		if err != nil {
			t.Fatal(err)
		}
		want, err := core.DecodeWithQueriesIndexed(doc, cfg, recs, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !votesEqual(dec.Votes, want.Votes) {
			t.Fatal("fallback votes differ")
		}
	})
}

// FuzzStreamEmbed drives the equivalence property from fuzzed
// parameters: dataset choice, size, seed, gamma, chunking and worker
// geometry. The checked-in corpus (testdata/fuzz) pins the interesting
// shapes; `go test -fuzz FuzzStreamEmbed` explores further.
func FuzzStreamEmbed(f *testing.F) {
	f.Add(uint8(0), uint16(30), int64(1), uint8(3), uint16(4), uint8(2))
	f.Add(uint8(1), uint16(1), int64(9), uint8(1), uint16(1), uint8(1))
	f.Add(uint8(2), uint16(120), int64(5), uint8(7), uint16(64), uint8(4))
	f.Add(uint8(3), uint16(55), int64(3), uint8(2), uint16(9), uint8(3))
	f.Fuzz(func(t *testing.T, preset uint8, size uint16, seed int64, gamma uint8, chunk uint16, workers uint8) {
		names := []string{"pubs", "jobs", "library", "nested"}
		ds, err := datagen.Preset(names[int(preset)%len(names)], int(size%500)+1, seed)
		if err != nil {
			t.Fatal(err)
		}
		src := serializeDataset(t, ds)
		cfg := cfgFor(ds, fmt.Sprintf("fuzz-key-%d", seed), "(C) fuzz", int(gamma%16)+1)
		opts := Options{ChunkSize: int(chunk%300) + 1, Workers: int(workers%6) + 1}
		checkEquivalence(t, src, cfg, opts)
	})
}
