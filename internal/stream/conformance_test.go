package stream_test

// Cross-layer golden conformance corpus: ~8 small XML fixtures
// (namespaces, mixed content, CDATA, deep nesting, empty records,
// non-record preamble/trailer, quoting edge cases) with expected embed
// digests and detect verdicts, asserted identically through the core
// API, the streaming layer, the pipeline engine and the server
// loopback — one table-driven suite so the entry points can never
// drift. (The CLI leg lives in cmd/wmxml/conformance_test.go and reads
// this same corpus and golden file.)
//
// Regenerate goldens after an intentional scheme change with:
//
//	WMXML_CONFORMANCE_UPDATE=1 go test ./internal/stream -run Conformance

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"wmxml/internal/config"
	"wmxml/internal/core"
	"wmxml/internal/identity"
	"wmxml/internal/pipeline"
	"wmxml/internal/registry"
	"wmxml/internal/server"
	"wmxml/internal/stream"
	"wmxml/internal/wmark"
	"wmxml/internal/xmltree"
)

// The fixtures are deliberately tiny (a handful of records), so the
// config compensates: gamma 1 marks every unit and the one-byte mark
// keeps coverage above the detection floor — the corpus must pin
// *positive* verdicts, not just digests.
const (
	confKey   = "conformance-key"
	confMark  = "W"
	confGamma = 1
)

// conformanceFixtures is the corpus, one file per structural edge.
var conformanceFixtures = []string{
	"basic.xml",
	"namespaces.xml",
	"mixed.xml",
	"cdata.xml",
	"deep.xml",
	"empty.xml",
	"preamble.xml",
	"quotes.xml",
}

// expectation is the golden record for one fixture.
type expectation struct {
	EmbedSHA256   string  `json:"embed_sha256"`
	ReceiptSHA256 string  `json:"receipt_sha256"`
	Carriers      int     `json:"carriers"`
	ValuesWritten int     `json:"values_written"`
	Detected      bool    `json:"detected"`
	MatchFraction float64 `json:"match_fraction"`
	Coverage      float64 `json:"coverage"`
	QueriesRun    int     `json:"queries_run"`
	QueryMisses   int     `json:"query_misses"`
	BlindDetected bool    `json:"blind_detected"`
}

func conformanceDir() string { return filepath.Join("testdata", "conformance") }

// loadConformanceConfig builds the core config from the checked-in
// spec.
func loadConformanceConfig(t testing.TB) (core.Config, []byte) {
	t.Helper()
	specData, err := os.ReadFile(filepath.Join(conformanceDir(), "spec.json"))
	if err != nil {
		t.Fatal(err)
	}
	spec, err := config.Parse(specData)
	if err != nil {
		t.Fatal(err)
	}
	sch, err := spec.BuildSchema()
	if err != nil {
		t.Fatal(err)
	}
	return core.Config{
		Key:      []byte(confKey),
		Mark:     wmark.FromText(confMark),
		Gamma:    confGamma,
		Schema:   sch,
		Catalog:  spec.BuildCatalog(),
		Identity: identity.Options{Targets: spec.Targets},
	}, specData
}

func sha(b []byte) string {
	s := sha256.Sum256(b)
	return hex.EncodeToString(s[:])
}

// coreReference runs the fixture through the core path and summarizes
// it as an expectation.
func coreReference(t *testing.T, src []byte, cfg core.Config) (expectation, []byte, []core.QueryRecord) {
	t.Helper()
	doc, err := xmltree.Parse(bytes.NewReader(src), xmltree.ParseOptions{})
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	res, err := core.Embed(doc, cfg)
	if err != nil {
		t.Fatalf("embed: %v", err)
	}
	var out bytes.Buffer
	if err := xmltree.Serialize(&out, doc, xmltree.SerializeOptions{Indent: "  "}); err != nil {
		t.Fatal(err)
	}
	receipt, err := core.MarshalQuerySet(res.Records)
	if err != nil {
		t.Fatal(err)
	}
	marked, err := xmltree.Parse(bytes.NewReader(out.Bytes()), xmltree.ParseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	det, err := core.DetectWithQueries(marked, cfg, res.Records, nil)
	if err != nil {
		t.Fatalf("detect: %v", err)
	}
	blind, err := core.DetectBlind(marked, cfg)
	if err != nil {
		t.Fatalf("blind detect: %v", err)
	}
	exp := expectation{
		EmbedSHA256:   sha(out.Bytes()),
		ReceiptSHA256: sha(receipt),
		Carriers:      res.Carriers,
		ValuesWritten: res.Embedded,
		Detected:      det.Detected,
		MatchFraction: det.MatchFraction,
		Coverage:      det.Coverage,
		QueriesRun:    det.QueriesRun,
		QueryMisses:   det.QueryMisses,
		BlindDetected: blind.Detected,
	}
	return exp, out.Bytes(), res.Records
}

// TestConformanceCorpus drives every fixture through the four library
// entry points and pins the results to the golden file.
func TestConformanceCorpus(t *testing.T) {
	cfg, specData := loadConformanceConfig(t)

	goldenPath := filepath.Join(conformanceDir(), "expected.json")
	var golden map[string]expectation
	update := os.Getenv("WMXML_CONFORMANCE_UPDATE") == "1"
	if update {
		golden = make(map[string]expectation)
	} else {
		data, err := os.ReadFile(goldenPath)
		if err != nil {
			t.Fatalf("golden file missing (run with WMXML_CONFORMANCE_UPDATE=1 to create): %v", err)
		}
		if err := json.Unmarshal(data, &golden); err != nil {
			t.Fatal(err)
		}
	}

	// One shared server over the spec-registered owner.
	reg := registry.NewMemory()
	srv, err := server.New(server.Options{Registry: reg, StreamChunkSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	ownerJSON, _ := json.Marshal(registry.Owner{ID: "conf", Key: confKey, Mark: confMark, Gamma: confGamma, Spec: specData})
	resp, err := http.Post(ts.URL+"/v1/owners", "application/json", bytes.NewReader(ownerJSON))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("register owner: %d %s", resp.StatusCode, body)
	}
	resp.Body.Close()

	for _, name := range conformanceFixtures {
		t.Run(name, func(t *testing.T) {
			src, err := os.ReadFile(filepath.Join(conformanceDir(), name))
			if err != nil {
				t.Fatal(err)
			}
			exp, markedBytes, records := coreReference(t, src, cfg)

			if update {
				golden[name] = exp
				return
			}
			want, ok := golden[name]
			if !ok {
				t.Fatalf("fixture %s has no golden entry", name)
			}
			if exp != want {
				t.Errorf("core drifted from golden:\n got %+v\nwant %+v", exp, want)
			}

			// --- streaming layer ---
			var sOut bytes.Buffer
			sres, err := stream.Embed(context.Background(), bytes.NewReader(src), &sOut, cfg, stream.Options{ChunkSize: 2, Workers: 3})
			if err != nil {
				t.Fatalf("stream embed: %v", err)
			}
			if got := sha(sOut.Bytes()); got != want.EmbedSHA256 {
				t.Errorf("stream embed digest %s != golden %s", got[:12], want.EmbedSHA256[:12])
			}
			sreceipt, _ := core.MarshalQuerySet(sres.Records)
			if got := sha(sreceipt); got != want.ReceiptSHA256 {
				t.Errorf("stream receipt digest %s != golden %s", got[:12], want.ReceiptSHA256[:12])
			}
			sdet, _, err := stream.Detect(context.Background(), bytes.NewReader(markedBytes), cfg, records, nil, stream.Options{ChunkSize: 2})
			if err != nil {
				t.Fatalf("stream detect: %v", err)
			}
			if sdet.Detected != want.Detected || sdet.MatchFraction != want.MatchFraction ||
				sdet.Coverage != want.Coverage || sdet.QueriesRun != want.QueriesRun || sdet.QueryMisses != want.QueryMisses {
				t.Errorf("stream verdict drifted: %+v", sdet)
			}

			// --- pipeline engine (tree and reader jobs) ---
			eng := pipeline.New(cfg, pipeline.Options{Workers: 2})
			pdoc, err := xmltree.Parse(bytes.NewReader(src), xmltree.ParseOptions{})
			if err != nil {
				t.Fatal(err)
			}
			pouts, err := eng.EmbedAll(context.Background(), []pipeline.Job{{ID: name, Doc: pdoc}})
			if err != nil || pouts[0].Err != nil {
				t.Fatalf("pipeline embed: %v / %v", err, pouts[0].Err)
			}
			var pOut bytes.Buffer
			if err := xmltree.Serialize(&pOut, pdoc, xmltree.SerializeOptions{Indent: "  "}); err != nil {
				t.Fatal(err)
			}
			if got := sha(pOut.Bytes()); got != want.EmbedSHA256 {
				t.Errorf("pipeline embed digest %s != golden %s", got[:12], want.EmbedSHA256[:12])
			}
			var prOut bytes.Buffer
			pr := eng.EmbedReader(context.Background(), pipeline.StreamEmbedJob{ID: name, In: bytes.NewReader(src), Out: &prOut, Options: stream.Options{ChunkSize: 2}})
			if pr.Err != nil {
				t.Fatalf("pipeline stream embed: %v", pr.Err)
			}
			if got := sha(prOut.Bytes()); got != want.EmbedSHA256 {
				t.Errorf("pipeline reader-embed digest %s != golden %s", got[:12], want.EmbedSHA256[:12])
			}
			pd := eng.DetectReader(context.Background(), pipeline.StreamDetectJob{ID: name, In: bytes.NewReader(markedBytes), Records: records})
			if pd.Err != nil {
				t.Fatalf("pipeline stream detect: %v", pd.Err)
			}
			if pd.Result.Detected != want.Detected || pd.Result.MatchFraction != want.MatchFraction {
				t.Errorf("pipeline verdict drifted: %+v", pd.Result)
			}

			// --- server loopback: buffered and streamed embeds ---
			for _, mode := range []string{"", "&mode=stream"} {
				req, err := http.NewRequest("POST", ts.URL+"/v1/embed?owner=conf"+mode, bytes.NewReader(src))
				if err != nil {
					t.Fatal(err)
				}
				req.Header.Set("Authorization", "Bearer "+confKey)
				resp, err := http.DefaultClient.Do(req)
				if err != nil {
					t.Fatal(err)
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil || resp.StatusCode != http.StatusOK {
					t.Fatalf("server embed mode=%q: %d %v %s", mode, resp.StatusCode, err, body)
				}
				if e := resp.Trailer.Get("X-Wmxml-Stream-Error"); e != "" {
					t.Fatalf("server stream error: %s", e)
				}
				if got := sha(body); got != want.EmbedSHA256 {
					t.Errorf("server embed mode=%q digest %s != golden %s", mode, got[:12], want.EmbedSHA256[:12])
				}
			}
			// Server streamed blind detect verdict.
			req, _ := http.NewRequest("POST", ts.URL+"/v1/detect?owner=conf&mode=stream-blind", bytes.NewReader(markedBytes))
			req.Header.Set("Authorization", "Bearer "+confKey)
			dresp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			dbody, _ := io.ReadAll(dresp.Body)
			dresp.Body.Close()
			if dresp.StatusCode != http.StatusOK {
				t.Fatalf("server stream-blind detect: %d %s", dresp.StatusCode, dbody)
			}
			var sv struct {
				Detected bool `json:"detected"`
			}
			if err := json.Unmarshal(dbody, &sv); err != nil {
				t.Fatal(err)
			}
			if sv.Detected != want.BlindDetected {
				t.Errorf("server blind verdict %v != golden %v", sv.Detected, want.BlindDetected)
			}
		})
	}

	if update {
		data, err := json.MarshalIndent(golden, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		data = append(data, '\n')
		if err := os.WriteFile(goldenPath, data, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s — re-run without WMXML_CONFORMANCE_UPDATE to assert", goldenPath)
	}
	_ = fmt.Sprint()
}
