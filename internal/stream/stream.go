// Package stream is WmXML's constant-memory processing layer: it
// watermarks and detects documents too large to materialize, by
// scanning the input with the xmltree token reader, splitting it at the
// top-level record elements the embedding spec addresses, and feeding
// bounded batches of record subtrees through the existing core
// encoder/decoder with shard-parallel workers.
//
// Why record chunking is sound (and bit-for-bit identical to the
// in-memory path): WmXML's carrier selection is *local*. A bandwidth
// unit's canonical identity is derived from semantics — (kind, scope,
// field, selector value) — never from position, so the keyed decisions
// (selected? which bit? which position?) for a unit are the same
// whether the unit was enumerated from the whole document or from any
// chunk containing its records. Per-record units partition cleanly
// across chunks; FD-canonicalized groups may *span* chunks, but every
// part of the group derives the same identity and therefore receives
// the same bit at the same position — exactly the property that makes
// the scheme robust to redundancy attacks makes it streamable. The
// merge step deduplicates the spanning groups' query records and
// re-sorts them into enumeration order, so even the receipt bytes match
// the in-memory embed.
//
// Peak memory is bounded by chunk_size × (workers + queue), never by
// document size; the output is produced incrementally through
// xmltree.StreamSerializer, whose bytes are identical to the batch
// serializer's.
//
// Inputs the chunked path cannot reproduce exactly fall back to the
// in-memory path (correct, just not constant-memory): positional
// identity mode (ordinals are global), ValidateInput (schema validation
// needs the whole document), target scopes directly on the root, and
// query sets whose queries are not chunk-local (positional predicates,
// parent axes). The Stats report says which path ran.
package stream

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"strings"
	"sync"

	"wmxml/internal/core"
	"wmxml/internal/identity"
	"wmxml/internal/obs"
	"wmxml/internal/xmltree"
	"wmxml/internal/xpath"
)

// DefaultChunkSize is the records-per-chunk default: large enough to
// amortize per-chunk index construction, small enough that a handful of
// in-flight chunks stay far below any realistic document size.
const DefaultChunkSize = 256

// Options configures the streaming layer.
type Options struct {
	// ChunkSize is the number of record elements per chunk (0 =
	// DefaultChunkSize).
	ChunkSize int
	// Workers bounds the chunk workers running concurrently
	// (0 = min(GOMAXPROCS, 8); 1 = sequential).
	Workers int
	// RecordElements overrides auto-detection of the top-level record
	// element names. Empty auto-detects from the embedding spec's unit
	// paths: the path segment directly below the root of every target
	// scope.
	RecordElements []string
	// Parse controls tokenization (depth cap, whitespace, comments) —
	// identical semantics to the in-memory xmltree.Parse.
	Parse xmltree.ParseOptions
	// Serialize controls embed output. The zero value renders exactly
	// like wmxml.SerializeXML (two-space indent, XML declaration) so the
	// streamed bytes match the in-memory pipeline's.
	Serialize xmltree.SerializeOptions
	// SerializeSet marks Serialize as explicitly configured; when false
	// the wmxml.SerializeXML default (Indent "  ") applies.
	SerializeSet bool
}

func (o Options) withDefaults() Options {
	if o.ChunkSize <= 0 {
		o.ChunkSize = DefaultChunkSize
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
		if o.Workers > 8 {
			o.Workers = 8
		}
	}
	if !o.SerializeSet {
		o.Serialize = xmltree.SerializeOptions{Indent: "  "}
	}
	return o
}

// Stats reports how a streaming call executed.
type Stats struct {
	// Chunks is the number of record chunks processed.
	Chunks int
	// Records is the number of top-level record elements seen.
	Records int
	// Streamed is false when the call fell back to the in-memory path.
	Streamed bool
	// FallbackReason says why the in-memory path ran (empty when
	// Streamed).
	FallbackReason string
}

// plan is the pre-flight analysis of a streaming call: the record
// element set and target order, or the reason chunking is unsound.
type plan struct {
	records  map[string]bool
	targets  []identity.Target
	fallback string // non-empty: must use the in-memory path
}

// buildPlan resolves cfg's targets and derives the record element set.
func buildPlan(cfg core.Config, opts Options) (*plan, error) {
	cfg = cfg.WithDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	b := identity.NewBuilder(cfg.Schema, cfg.Catalog, cfg.Identity)
	targets, err := b.ResolveTargets()
	if err != nil {
		return nil, err
	}
	p := &plan{records: make(map[string]bool), targets: targets}
	if cfg.Identity.Mode == identity.ModePositional {
		p.fallback = "positional identity mode: ordinals are document-global"
		return p, nil
	}
	if len(opts.RecordElements) > 0 {
		for _, n := range opts.RecordElements {
			if n != "" {
				p.records[n] = true
			}
		}
		if len(p.records) == 0 {
			p.fallback = "no usable record elements configured"
		}
		return p, nil
	}
	if len(targets) == 0 {
		p.fallback = "no watermark targets: nothing determines a record element"
		return p, nil
	}
	for _, t := range targets {
		segs := strings.Split(t.Scope, "/")
		if len(segs) < 2 {
			p.fallback = fmt.Sprintf("target scope %q sits on the document root", t.Scope)
			return p, nil
		}
		p.records[segs[1]] = true
	}
	return p, nil
}

// chunkKind discriminates the ordered work units flowing scanner →
// workers → emitter.
type chunkKind uint8

const (
	chunkDocItem chunkKind = iota // one document-level misc node
	chunkRootOpen
	chunkItems // a batch of root children (records + interleaved misc)
	chunkRootClose
)

// chunk is one ordered unit of streamed work.
type chunk struct {
	index   int
	kind    chunkKind
	node    *xmltree.Node   // docItem node / root element
	items   []*xmltree.Node // chunkItems payload, in document order
	records int             // record elements among items

	// worker outputs
	embed *core.EmbedResult
	dec   *chunkDecode
	err   error
}

// runChunked drives the scanner → worker → in-order collect pipeline
// shared by streaming embed and decode. work is called concurrently on
// chunkItems chunks; emit is called exactly once per chunk in document
// order (including zero-work chunks). The first error — a parse
// failure, a worker failure, an emit failure, or ctx cancellation —
// stops everything; no goroutines outlive the call.
func runChunked(parent context.Context, sp *xmltree.StreamParser, recordNames map[string]bool, opts Options,
	work func(c *chunk) error, emit func(c *chunk) error) (*Stats, error) {

	ctx, cancel := context.WithCancel(parent)
	defer cancel()

	stats := &Stats{Streamed: true}
	workCh := make(chan *chunk, opts.Workers)
	doneCh := make(chan *chunk, opts.Workers)

	var scanErr error
	var wg sync.WaitGroup

	// Scanner: sequentially reads events, batches root children into
	// chunks of ChunkSize records, forwards everything in order.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(workCh)
		next := 0
		send := func(c *chunk) bool {
			c.index = next
			next++
			select {
			case workCh <- c:
				return true
			case <-ctx.Done():
				return false
			}
		}
		var cur *chunk
		flush := func() bool {
			if cur == nil {
				return true
			}
			c := cur
			cur = nil
			return send(c)
		}
		for {
			if ctx.Err() != nil {
				return
			}
			ev, err := sp.Next()
			if err != nil {
				if !errors.Is(err, io.EOF) {
					scanErr = err
					cancel()
				}
				_ = flush()
				return
			}
			switch ev.Kind {
			case xmltree.EventDocItem:
				if !flush() || !send(&chunk{kind: chunkDocItem, node: ev.Node}) {
					return
				}
			case xmltree.EventRootOpen:
				if !send(&chunk{kind: chunkRootOpen, node: ev.Node}) {
					return
				}
			case xmltree.EventItem:
				if cur == nil {
					cur = &chunk{kind: chunkItems}
				}
				cur.items = append(cur.items, ev.Node)
				if ev.Node.Kind == xmltree.ElementNode && recordNames[ev.Node.Name] {
					cur.records++
				}
				// Cut on the record quota — or on a total-item quota, so
				// a document whose top-level children are mostly (or
				// entirely) non-record items still flushes in bounded
				// batches instead of accumulating to document size.
				// Chunk boundaries never change results (the equivalence
				// suite sweeps them), only memory.
				if cur.records >= opts.ChunkSize || len(cur.items) >= 4*opts.ChunkSize {
					if !flush() {
						return
					}
				}
			case xmltree.EventRootClose:
				if !flush() || !send(&chunk{kind: chunkRootClose}) {
					return
				}
			}
		}
	}()

	// Workers: process chunkItems chunks; everything else passes
	// through untouched. Panics in tree or plug-in code become the
	// chunk's error — a poisoned record must fail the request, not the
	// process (the same isolation the batch pipeline gives documents).
	// When the parent context carries a request trace, each processed
	// chunk emits a "chunk" span (the Trace is goroutine-safe).
	tr := obs.FromContext(parent)
	var wwg sync.WaitGroup
	for w := 0; w < opts.Workers; w++ {
		wwg.Add(1)
		go func() {
			defer wwg.Done()
			for c := range workCh {
				if c.kind == chunkItems && c.err == nil {
					csp := tr.StartSpan("chunk")
					c.err = guardedWork(work, c)
					csp.End()
				}
				select {
				case doneCh <- c:
				case <-ctx.Done():
					return
				}
			}
		}()
	}
	go func() {
		wwg.Wait()
		close(doneCh)
	}()

	// Collector (this goroutine): re-establish document order, emit.
	var firstErr error
	fail := func(err error) {
		if firstErr == nil {
			firstErr = err
			cancel()
		}
	}
	pending := make(map[int]*chunk)
	nextEmit := 0
	for c := range doneCh {
		pending[c.index] = c
		for {
			n, ok := pending[nextEmit]
			if !ok {
				break
			}
			delete(pending, nextEmit)
			nextEmit++
			if firstErr != nil {
				continue // drain without emitting
			}
			if n.err != nil {
				fail(n.err)
				continue
			}
			if n.kind == chunkItems {
				stats.Chunks++
				stats.Records += n.records
			}
			if err := emit(n); err != nil {
				fail(err)
			}
		}
	}
	wg.Wait()
	// Error precedence: the caller's cancellation is the root cause of
	// anything that failed after it (a cancelled request often truncates
	// its own input mid-token); otherwise the scanner's parse error
	// outranks downstream consequences. Like the batch pipeline,
	// cancellation takes effect between reads and chunks — an in-flight
	// blocking Read or Write finishes (or fails) first, and no goroutine
	// survives the call.
	if err := parent.Err(); err != nil {
		return stats, err
	}
	if scanErr != nil {
		return stats, scanErr
	}
	if firstErr != nil {
		return stats, firstErr
	}
	return stats, nil
}

// guardedWork runs one chunk's work converting panics into the chunk's
// error.
func guardedWork(work func(c *chunk) error, c *chunk) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("stream: chunk %d panicked: %v", c.index, r)
		}
	}()
	return work(c)
}

// skeleton builds the bounded per-chunk document: a fresh document node
// and a shallow clone of the root element (name + attributes, so
// in-scope namespace declarations travel with every chunk) carrying the
// chunk's items as children.
func skeleton(root *xmltree.Node, items []*xmltree.Node) *xmltree.Node {
	rootCl := &xmltree.Node{Kind: xmltree.ElementNode, Name: root.Name}
	if len(root.Attrs) > 0 {
		rootCl.Attrs = append([]xmltree.Attr(nil), root.Attrs...)
	}
	doc := xmltree.NewDocument()
	doc.AppendChild(rootCl)
	for _, it := range items {
		rootCl.AppendChild(it)
	}
	return doc
}

// chunkLocal reports whether q selects the same node multiset when
// evaluated per chunk and unioned as it does on the whole document:
// absolute, downward-only (child/attribute/text axes), no predicates on
// the root step (its child list differs per chunk), every predicate
// position-free, and every nested sub-path relative, downward-only and
// position-free in turn.
func chunkLocal(q *xpath.Query) bool {
	p := q.Path()
	if !p.Absolute || len(p.Steps) == 0 {
		return false
	}
	return pathChunkLocal(p, true)
}

func pathChunkLocal(p xpath.Path, topLevel bool) bool {
	for i, st := range p.Steps {
		switch st.Axis {
		case xpath.AxisChild, xpath.AxisAttribute, xpath.AxisText:
		default:
			return false // parent/self/descendant cross or blur the chunk boundary
		}
		if topLevel && i == 0 && len(st.Predicates) > 0 {
			return false // root-step predicates see a partial child list
		}
		if !xpath.PositionFreePreds(st.Predicates) {
			return false
		}
		for _, pred := range st.Predicates {
			if !exprChunkLocal(pred) {
				return false
			}
		}
	}
	return true
}

func exprChunkLocal(e xpath.Expr) bool {
	switch x := e.(type) {
	case xpath.PathExpr:
		if x.Path.Absolute {
			return false // re-roots outside the record
		}
		return pathChunkLocal(x.Path, false)
	case xpath.Binary:
		return exprChunkLocal(x.L) && exprChunkLocal(x.R)
	case xpath.Call:
		for _, a := range x.Args {
			if !exprChunkLocal(a) {
				return false
			}
		}
		return true
	default:
		return true
	}
}
