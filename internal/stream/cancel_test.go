package stream

// Cancellation and failure coverage for the streaming workers:
// mid-stream context cancellation, a malformed chunk mid-document, a
// failing reader mid-document, and a blocked output writer must each
// abort promptly and leave no goroutines behind (the PR 3 leak-check
// discipline, extended to the streaming layer).

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"strings"
	"testing"
	"time"

	"wmxml/internal/core"
	"wmxml/internal/datagen"
	"wmxml/internal/xmltree"
)

// goroutineBaseline snapshots the goroutine count and returns a checker
// that fails the test if the count has not returned to the baseline
// within two seconds — a goleak-style assertion with no external
// dependency.
func goroutineBaseline(t *testing.T) func() {
	t.Helper()
	before := runtime.NumGoroutine()
	return func() {
		t.Helper()
		deadline := time.Now().Add(2 * time.Second)
		for {
			if n := runtime.NumGoroutine(); n <= before {
				return
			}
			if time.Now().After(deadline) {
				buf := make([]byte, 1<<20)
				n := runtime.Stack(buf, true)
				t.Fatalf("goroutine leak: %d before, %d after; stacks:\n%s",
					before, runtime.NumGoroutine(), buf[:n])
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
}

// testWorkload builds a medium document + config for cancellation
// tests.
func testWorkload(t *testing.T, records int) ([]byte, core.Config) {
	t.Helper()
	ds, err := datagen.Preset("pubs", records, 2)
	if err != nil {
		t.Fatal(err)
	}
	return serializeDataset(t, ds), cfgFor(ds, "cancel-key", "(C) cancel", 2)
}

// slowWriter blocks every write until release is closed, then errors.
type slowWriter struct {
	wrote  chan struct{} // closed on first write attempt
	block  chan struct{}
	once   bool
}

func (w *slowWriter) Write(p []byte) (int, error) {
	if !w.once {
		w.once = true
		close(w.wrote)
	}
	<-w.block
	return 0, errors.New("writer gone")
}

// Cancellation contract (mirrors the batch pipeline): the context stops
// the stream between reads and chunks; an in-flight blocking Read or
// Write finishes (or fails) first, the call returns ctx.Err(), and no
// goroutine survives it — even when the cancellation itself induced
// truncation or write failures.

func TestEmbedCancelMidStream(t *testing.T) {
	leakCheck := goroutineBaseline(t)
	src, cfg := testWorkload(t, 300)

	// The writer blocks with chunks in flight; after cancellation the
	// in-flight write fails ("writer gone"), and the reported error must
	// still be the cancellation — the root cause.
	w := &slowWriter{wrote: make(chan struct{}), block: make(chan struct{})}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := Embed(ctx, bytes.NewReader(src), w, cfg, Options{ChunkSize: 10, Workers: 4})
		done <- err
	}()
	<-w.wrote
	cancel()
	close(w.block) // the in-flight write completes (with an error)
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("want context.Canceled in chain, got %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("embed did not return after cancellation")
	}
	leakCheck()
}

func TestDecodeCancelMidStream(t *testing.T) {
	leakCheck := goroutineBaseline(t)
	src, cfg := testWorkload(t, 300)

	ctx, cancel := context.WithCancel(context.Background())
	// The reader parks mid-document; cancellation fires while the
	// scanner is blocked in Read. Once the read returns (as an HTTP
	// body's would on request cancellation), the stream unwinds and
	// reports the cancellation, not the truncation it induced.
	half := len(src) / 2
	pr := &pausingReader{data: src, pauseAt: half, resume: make(chan struct{}), pause: make(chan struct{})}
	done := make(chan error, 1)
	go func() {
		_, err := DecodeBlind(ctx, pr, cfg, Options{ChunkSize: 10, Workers: 4})
		done <- err
	}()
	<-pr.paused()
	cancel()
	close(pr.resume) // the in-flight read returns
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("want context.Canceled, got %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("decode did not return after cancellation")
	}
	leakCheck()
}

// pausingReader serves data up to pauseAt, then blocks until resume is
// closed (returning EOF afterwards).
type pausingReader struct {
	data    []byte
	pos     int
	pauseAt int
	resume  chan struct{}
	pause   chan struct{}
}

func (r *pausingReader) paused() chan struct{} { return r.pause }

func (r *pausingReader) Read(p []byte) (int, error) {
	if r.pos >= r.pauseAt {
		select {
		case <-r.pause:
		default:
			close(r.pause)
		}
		<-r.resume
		return 0, io.EOF
	}
	n := copy(p, r.data[r.pos:r.pauseAt])
	r.pos += n
	return n, nil
}

func TestEmbedMalformedChunkMidDocument(t *testing.T) {
	leakCheck := goroutineBaseline(t)
	src, cfg := testWorkload(t, 120)

	// Corrupt the document mid-stream: truncate inside a record and
	// append garbage that breaks the tokenizer.
	cut := bytes.LastIndex(src[:len(src)*2/3], []byte("<book"))
	malformed := append(bytes.Clone(src[:cut]), []byte("<book><title>x</wrong></book></db>")...)

	var out bytes.Buffer
	_, err := Embed(context.Background(), bytes.NewReader(malformed), &out, cfg, Options{ChunkSize: 8, Workers: 4})
	if err == nil {
		t.Fatal("malformed document embedded without error")
	}
	if !strings.Contains(err.Error(), "syntax") && !strings.Contains(err.Error(), "parse") {
		t.Fatalf("unexpected error shape: %v", err)
	}
	leakCheck()
}

func TestDecodeReaderFailureMidDocument(t *testing.T) {
	leakCheck := goroutineBaseline(t)
	src, cfg := testWorkload(t, 120)
	diskErr := errors.New("backing store went away")

	r := io.MultiReader(bytes.NewReader(src[:len(src)/2]), &failReader{err: diskErr})
	_, err := DecodeBlind(context.Background(), r, cfg, Options{ChunkSize: 8, Workers: 4})
	if err == nil {
		t.Fatal("decode over failing reader returned nil error")
	}
	if !errors.Is(err, diskErr) {
		t.Fatalf("underlying reader error not surfaced: %v", err)
	}
	leakCheck()
}

type failReader struct{ err error }

func (r *failReader) Read([]byte) (int, error) { return 0, r.err }

// TestEmbedChunkWorkerError exercises the per-chunk embed failing (an
// invalid config surfaces per chunk) without hanging the pipeline.
func TestEmbedChunkWorkerError(t *testing.T) {
	leakCheck := goroutineBaseline(t)
	src, cfg := testWorkload(t, 60)
	cfg.Gamma = -1 // invalid selector: every chunk embed fails

	var out bytes.Buffer
	_, err := Embed(context.Background(), bytes.NewReader(src), &out, cfg, Options{ChunkSize: 8, Workers: 4})
	if err == nil {
		t.Fatal("expected per-chunk embed failure to surface")
	}
	if !strings.Contains(err.Error(), "gamma") {
		t.Fatalf("unexpected error: %v", err)
	}
	leakCheck()
}

// TestStreamParserTruncated locks the StreamParser's truncation error
// path: a document cut inside a record reports the enclosing element.
func TestStreamParserTruncated(t *testing.T) {
	sp := xmltree.NewStreamParser(strings.NewReader("<db><book><title>x</title>"), xmltree.ParseOptions{})
	var err error
	for {
		_, err = sp.Next()
		if err != nil {
			break
		}
	}
	if errors.Is(err, io.EOF) {
		t.Fatal("truncated document reported clean EOF")
	}
	if !strings.Contains(err.Error(), "unexpected EOF") {
		t.Fatalf("unexpected error: %v", err)
	}
	_ = fmt.Sprint() // keep fmt imported if assertions change
}

// TestChunkWorkerPanicIsolated: a panic inside chunk work (tree or
// plug-in code) must surface as the stream's error — never escape a
// worker goroutine and kill the process.
func TestChunkWorkerPanicIsolated(t *testing.T) {
	leakCheck := goroutineBaseline(t)
	src, _ := testWorkload(t, 100)
	sp := xmltree.NewStreamParser(bytes.NewReader(src), xmltree.ParseOptions{})
	opts := Options{ChunkSize: 10, Workers: 4}.withDefaults()
	_, err := runChunked(context.Background(), sp, map[string]bool{"book": true}, opts,
		func(c *chunk) error { panic("plug-in exploded") },
		func(c *chunk) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("worker panic not converted to an error: %v", err)
	}
	leakCheck()
}

// TestNonRecordItemsStayBounded: a document whose top-level children
// are mostly not record elements must still flush in bounded chunks —
// the item-count quota, not just the record quota, cuts them.
func TestNonRecordItemsStayBounded(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("<db>")
	for i := 0; i < 500; i++ {
		fmt.Fprintf(&sb, "<junk n=\"%d\"/>", i)
	}
	sb.WriteString(`<book publisher="mkp"><title>Only One</title><editor>E</editor><year>1999</year><price>10.00</price></book>`)
	sb.WriteString("</db>")
	src := []byte(sb.String())

	ds, err := datagen.Preset("pubs", 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := cfgFor(ds, "bound-key", "(C) bound", 1)

	var out bytes.Buffer
	res, err := Embed(context.Background(), bytes.NewReader(src), &out, cfg, Options{ChunkSize: 10, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.Streamed {
		t.Fatalf("fell back: %s", res.Stats.FallbackReason)
	}
	// 501 items at an item quota of 4×10 → at least a dozen chunks.
	if res.Stats.Chunks < 10 {
		t.Fatalf("non-record items accumulated: only %d chunks for 501 items", res.Stats.Chunks)
	}
	// And the output still matches the in-memory path byte for byte.
	wantOut, _ := inMemoryEmbed(t, src, cfg)
	if !bytes.Equal(out.Bytes(), wantOut) {
		t.Fatal("bounded-chunk output differs from in-memory embed")
	}
}
