package stream_test

// The warm-path equivalence leg of the conformance corpus. The
// fast-parse tokenizer (interned names, slab nodes), the scratch-
// buffered xpath evaluator, the compiled decode plans and the pooled
// vote tables are all performance machinery with one shared contract:
// results must be byte-identical to the plain path on every fixture.
// This file pins that contract at two levels — library (fast parse +
// plan decode vs strict parse + index-disabled tree-walking decode)
// and server (concurrent warm detects sharing the document cache, the
// plan cache, the scratch pools and the name interner; run under
// -race this doubles as the concurrency-safety proof).

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"wmxml/internal/core"
	"wmxml/internal/registry"
	"wmxml/internal/server"
	"wmxml/internal/xmltree"
)

// sameVoteTables compares two decode results bit by bit.
func sameVoteTables(t *testing.T, label string, got, want *core.DecodeResult) {
	t.Helper()
	if got.Votes.Len() != want.Votes.Len() || got.Votes.Total() != want.Votes.Total() ||
		got.Votes.Misses() != want.Votes.Misses() ||
		got.QueriesRun != want.QueriesRun || got.QueryMisses != want.QueryMisses ||
		got.RewriteErrors != want.RewriteErrors {
		t.Fatalf("%s: vote table shape drifted: got %+v votes(len=%d total=%d misses=%d)",
			label, got, got.Votes.Len(), got.Votes.Total(), got.Votes.Misses())
	}
	for i := 0; i < want.Votes.Len(); i++ {
		o, z := got.Votes.Counts(i)
		wo, wz := want.Votes.Counts(i)
		if o != wo || z != wz {
			t.Fatalf("%s: bit %d votes %d/%d, want %d/%d", label, i, o, z, wo, wz)
		}
	}
}

// TestConformanceFastPathEquivalence proves, fixture by fixture, that
// the fast machinery changes nothing observable: embeds over
// ParseBytes-parsed trees produce the same bytes and receipts as over
// strictly parsed trees, and a compiled plan decoding through the
// index and scratch buffers produces the same votes and verdict as the
// index-disabled tree-walking decode.
func TestConformanceFastPathEquivalence(t *testing.T) {
	cfg, _ := loadConformanceConfig(t)
	for _, name := range conformanceFixtures {
		t.Run(name, func(t *testing.T) {
			src, err := os.ReadFile(filepath.Join(conformanceDir(), name))
			if err != nil {
				t.Fatal(err)
			}

			// Embed equivalence across parsers.
			fastDoc, err := xmltree.ParseBytes(src, xmltree.ParseOptions{})
			if err != nil {
				t.Fatalf("fast parse: %v", err)
			}
			refDoc, err := xmltree.Parse(bytes.NewReader(src), xmltree.ParseOptions{})
			if err != nil {
				t.Fatalf("strict parse: %v", err)
			}
			fastRes, err := core.Embed(fastDoc, cfg)
			if err != nil {
				t.Fatalf("embed over fast parse: %v", err)
			}
			refRes, err := core.Embed(refDoc, cfg)
			if err != nil {
				t.Fatalf("embed over strict parse: %v", err)
			}
			var fastOut, refOut bytes.Buffer
			if err := xmltree.Serialize(&fastOut, fastDoc, xmltree.SerializeOptions{Indent: "  "}); err != nil {
				t.Fatal(err)
			}
			if err := xmltree.Serialize(&refOut, refDoc, xmltree.SerializeOptions{Indent: "  "}); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(fastOut.Bytes(), refOut.Bytes()) {
				t.Errorf("marked bytes differ between parsers")
			}
			fastReceipt, _ := core.MarshalQuerySet(fastRes.Records)
			refReceipt, _ := core.MarshalQuerySet(refRes.Records)
			if !bytes.Equal(fastReceipt, refReceipt) {
				t.Errorf("receipts differ between parsers")
			}

			// Decode equivalence: compiled plan + index + scratch vs the
			// index-disabled tree walker, over a fast-parsed suspect.
			marked, err := xmltree.ParseBytes(fastOut.Bytes(), xmltree.ParseOptions{})
			if err != nil {
				t.Fatal(err)
			}
			refMarked, err := xmltree.Parse(bytes.NewReader(refOut.Bytes()), xmltree.ParseOptions{})
			if err != nil {
				t.Fatal(err)
			}
			baseCfg := cfg
			baseCfg.DisableIndex = true
			baseline, err := core.DecodeWithQueriesIndexed(refMarked, baseCfg, refRes.Records, nil, nil)
			if err != nil {
				t.Fatal(err)
			}
			plan, err := core.CompileDecodePlan(cfg, fastRes.Records, nil)
			if err != nil {
				t.Fatal(err)
			}
			// Twice through the same plan: the second run reuses pooled
			// scratch state primed by the first.
			for i := 0; i < 2; i++ {
				sameVoteTables(t, name, plan.Decode(marked, nil), baseline)
			}
			det := plan.Detect(marked, nil)
			base := core.ScoreDecode(baseline, baseCfg)
			if det.Detected != base.Detected || det.MatchFraction != base.MatchFraction || det.Coverage != base.Coverage {
				t.Errorf("verdicts drifted: plan %+v vs baseline %+v", det.Result, base.Result)
			}
		})
	}
}

// TestConformanceConcurrentWarmDetect hammers one server with
// concurrent warm detects over every fixture: all requests share the
// document cache, the decode-plan cache, the scratch and vote pools
// and the global name interner. Verdicts must stay pinned to the
// goldens throughout, and the plan cache must actually serve hits.
func TestConformanceConcurrentWarmDetect(t *testing.T) {
	_, specData := loadConformanceConfig(t)
	golden := map[string]expectation{}
	gdata, err := os.ReadFile(filepath.Join(conformanceDir(), "expected.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(gdata, &golden); err != nil {
		t.Fatal(err)
	}

	reg := registry.NewMemory()
	srv, err := server.New(server.Options{Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	do := func(path string, body []byte) ([]byte, int) {
		req, _ := http.NewRequest("POST", ts.URL+path, bytes.NewReader(body))
		req.Header.Set("Authorization", "Bearer "+confKey)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Errorf("%s: %v", path, err)
			return nil, 0
		}
		defer resp.Body.Close()
		data, _ := io.ReadAll(resp.Body)
		return data, resp.StatusCode
	}
	ownerJSON, _ := json.Marshal(registry.Owner{ID: "conf", Key: confKey, Mark: confMark, Gamma: confGamma, Spec: specData})
	if _, code := do("/v1/owners", ownerJSON); code != http.StatusOK {
		t.Fatal("register owner failed")
	}

	// One embed per fixture seeds the receipts; the marked bytes are
	// the suspects the workers will hammer.
	suspects := make(map[string][]byte, len(conformanceFixtures))
	for _, name := range conformanceFixtures {
		src, err := os.ReadFile(filepath.Join(conformanceDir(), name))
		if err != nil {
			t.Fatal(err)
		}
		marked, code := do("/v1/embed?owner=conf&doc="+name, src)
		if code != http.StatusOK {
			t.Fatalf("embed %s: %d %s", name, code, marked)
		}
		suspects[name] = marked
	}

	const goroutines, reps = 8, 10
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < reps; i++ {
				for _, name := range conformanceFixtures {
					body, code := do("/v1/detect?owner=conf", suspects[name])
					if code != http.StatusOK {
						t.Errorf("detect %s: %d %s", name, code, body)
						return
					}
					var v struct {
						Detected      bool    `json:"detected"`
						MatchFraction float64 `json:"match_fraction"`
					}
					if err := json.Unmarshal(body, &v); err != nil {
						t.Error(err)
						return
					}
					want := golden[name]
					if v.Detected != want.Detected || v.MatchFraction != want.MatchFraction {
						t.Errorf("%s verdict drifted under concurrency: got %v/%.4f want %v/%.4f",
							name, v.Detected, v.MatchFraction, want.Detected, want.MatchFraction)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	hits, misses, _ := srv.PlanCacheStats()
	if hits == 0 {
		t.Errorf("plan cache served no hits across %d warm detects (misses=%d)", goroutines*reps*len(conformanceFixtures), misses)
	}
}
