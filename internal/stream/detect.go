package stream

// Streaming detection: decode a suspect document chunk by chunk,
// merging the per-chunk vote tables into exactly the table a
// whole-document decode would produce.
//
// Queries mode compiles the safeguarded query set once and runs every
// record against every chunk through the per-chunk DocumentIndex; a
// record's zero-selection miss is decided only after the last chunk, so
// "the carrier lives in another chunk" never reads as a miss. Blind
// mode re-enumerates each chunk's bandwidth units and decodes them with
// the same unit decoder the in-memory path uses; FD-canonicalized units
// that span chunks are tracked by identity so queries-run / query-miss
// accounting stays exact.

import (
	"context"
	"io"
	"sync"
	"sync/atomic"

	"wmxml/internal/core"
	"wmxml/internal/identity"
	"wmxml/internal/index"
	"wmxml/internal/wmark"
	"wmxml/internal/xmltree"
	"wmxml/internal/xpath"
)

// DecodeResult is a streaming decode's outcome.
type DecodeResult struct {
	*core.DecodeResult
	Stats Stats
}

// chunkDecode is one blind-mode chunk's decode contribution, merged in
// order by the collector: key-unit tallies plus the per-FD-group
// outcomes that need cross-chunk reconciliation. (Queries mode needs
// no per-chunk struct — votes merge under a mutex and per-record hits
// accumulate in a shared atomic slice.)
type chunkDecode struct {
	votes             *wmark.Votes
	keyRan, keyMissed int
	fdUnits           []fdUnitOutcome
}

type fdUnitOutcome struct {
	id        string
	extracted bool
}

// Decode runs the query-execution half of detection over a streamed
// suspect document and returns the raw vote table — exactly the table
// core.DecodeWithQueriesIndexed would produce on the materialized
// document. Query sets that are not chunk-local (positional
// predicates, upward axes) fall back to the in-memory path.
func Decode(ctx context.Context, r io.Reader, cfg core.Config, records []core.QueryRecord, rw core.Rewriter, opts Options) (*DecodeResult, error) {
	opts = opts.withDefaults()
	p, err := buildPlan(cfg, opts)
	if err != nil {
		return nil, err
	}
	compiled, err := core.CompileRecords(cfg, records, rw)
	if err != nil {
		return nil, err
	}
	if p.fallback == "" {
		for i := range compiled {
			if compiled[i].Runnable() && !chunkLocal(compiled[i].Query()) {
				p.fallback = "query set is not chunk-local (positional or upward-looking query)"
				break
			}
		}
	}
	if p.fallback != "" {
		return decodeSlurp(ctx, r, cfg, records, rw, opts, p.fallback)
	}

	markLen := len(cfg.WithDefaults().Mark)
	hits := make([]atomic.Int64, len(compiled))
	var mu sync.Mutex
	merged := wmark.NewVotes(markLen)

	sp := xmltree.NewStreamParser(r, opts.Parse)
	work := func(c *chunk) error {
		doc := skeleton(sp.Root(), c.items)
		ix := newChunkIndex(doc, cfg)
		votes := wmark.NewVotes(markLen)
		for i := range compiled {
			cr := &compiled[i]
			if !cr.Runnable() {
				continue
			}
			if n := cr.DecodeInto(doc, ix, votes); n > 0 {
				hits[i].Add(int64(n))
			}
		}
		mu.Lock()
		merged.Merge(votes)
		mu.Unlock()
		return nil
	}
	stats, err := runChunked(ctx, sp, p.records, opts, work, func(*chunk) error { return nil })
	if err != nil {
		return nil, err
	}
	dec := &core.DecodeResult{Votes: merged}
	for i := range compiled {
		cr := &compiled[i]
		switch {
		case cr.RewriteFailed():
			dec.RewriteErrors++
			merged.AddMiss()
		case !cr.Runnable():
		default:
			dec.QueriesRun++
			if hits[i].Load() == 0 {
				dec.QueryMisses++
				merged.AddMiss()
			}
		}
	}
	return &DecodeResult{DecodeResult: dec, Stats: *stats}, nil
}

// Detect is Decode scored against cfg.Mark — the streaming counterpart
// of core.DetectWithQueries.
func Detect(ctx context.Context, r io.Reader, cfg core.Config, records []core.QueryRecord, rw core.Rewriter, opts Options) (*core.DetectResult, Stats, error) {
	dec, err := Decode(ctx, r, cfg, records, rw, opts)
	if err != nil {
		return nil, Stats{}, err
	}
	return core.ScoreDecode(dec.DecodeResult, cfg), dec.Stats, nil
}

// DecodeBlind re-derives the carriers chunk by chunk (no stored query
// set) and returns the raw vote table — exactly the table
// core.DecodeBlindIndexed would produce on the materialized document.
func DecodeBlind(ctx context.Context, r io.Reader, cfg core.Config, opts Options) (*DecodeResult, error) {
	opts = opts.withDefaults()
	p, err := buildPlan(cfg, opts)
	if err != nil {
		return nil, err
	}
	if p.fallback != "" {
		return decodeBlindSlurp(ctx, r, cfg, opts, p.fallback)
	}
	bd, err := core.NewBlindDecoder(cfg)
	if err != nil {
		return nil, err
	}
	cfgD := bd.Config()
	markLen := len(cfgD.Mark)
	builder := identity.NewBuilder(cfgD.Schema, cfgD.Catalog, cfgD.Identity)

	merged := wmark.NewVotes(markLen)
	var keyRan, keyMissed int
	// fdSeen reconciles FD-canonicalized groups whose members are split
	// across chunks: the group counts as one executed query, and as one
	// miss only when no part of it extracted anything. Memory is one
	// entry per distinct selected group — receipt-sized, not
	// document-sized.
	fdSeen := make(map[string]bool)

	sp := xmltree.NewStreamParser(r, opts.Parse)
	work := func(c *chunk) error {
		doc := skeleton(sp.Root(), c.items)
		ix := newChunkIndex(doc, cfgD)
		units, _, err := builder.UnitsIndexed(doc, ix)
		if err != nil {
			return err
		}
		cd := &chunkDecode{votes: wmark.NewVotes(markLen)}
		for _, u := range units {
			ran, extracted := bd.DecodeUnit(u, cd.votes)
			if !ran {
				continue
			}
			if k := recordKind(u.ID); k == "fd" || k == "det" {
				cd.fdUnits = append(cd.fdUnits, fdUnitOutcome{id: u.ID, extracted: extracted})
				continue
			}
			cd.keyRan++
			if !extracted {
				cd.keyMissed++
			}
		}
		c.dec = cd
		return nil
	}
	emit := func(c *chunk) error {
		if c.dec == nil {
			return nil
		}
		merged.Merge(c.dec.votes)
		keyRan += c.dec.keyRan
		keyMissed += c.dec.keyMissed
		for _, fu := range c.dec.fdUnits {
			fdSeen[fu.id] = fdSeen[fu.id] || fu.extracted
		}
		return nil
	}
	stats, err := runChunked(ctx, sp, p.records, opts, work, emit)
	if err != nil {
		return nil, err
	}
	dec := &core.DecodeResult{Votes: merged, QueriesRun: keyRan + len(fdSeen), QueryMisses: keyMissed}
	for _, ok := range fdSeen {
		if !ok {
			dec.QueryMisses++
		}
	}
	return &DecodeResult{DecodeResult: dec, Stats: *stats}, nil
}

// DetectBlind is DecodeBlind scored against cfg.Mark — the streaming
// counterpart of core.DetectBlind.
func DetectBlind(ctx context.Context, r io.Reader, cfg core.Config, opts Options) (*core.DetectResult, Stats, error) {
	dec, err := DecodeBlind(ctx, r, cfg, opts)
	if err != nil {
		return nil, Stats{}, err
	}
	return core.ScoreDecode(dec.DecodeResult, cfg), dec.Stats, nil
}

// newChunkIndex builds the per-chunk DocumentIndex unless the
// configuration disables indexing. It returns the untyped nil interface
// in the disabled case so SelectIndexed degrades to the tree walk.
func newChunkIndex(doc *xmltree.Node, cfg core.Config) xpath.DocIndex {
	if cfg.DisableIndex {
		return nil
	}
	return index.New(doc)
}

// decodeSlurp is the in-memory queries-mode fallback.
func decodeSlurp(ctx context.Context, r io.Reader, cfg core.Config, records []core.QueryRecord, rw core.Rewriter, opts Options, reason string) (*DecodeResult, error) {
	doc, err := slurpDoc(ctx, r, opts)
	if err != nil {
		return nil, err
	}
	dec, err := core.DecodeWithQueriesIndexed(doc, cfg, records, rw, nil)
	if err != nil {
		return nil, err
	}
	return &DecodeResult{DecodeResult: dec, Stats: Stats{FallbackReason: reason}}, nil
}

// decodeBlindSlurp is the in-memory blind fallback.
func decodeBlindSlurp(ctx context.Context, r io.Reader, cfg core.Config, opts Options, reason string) (*DecodeResult, error) {
	doc, err := slurpDoc(ctx, r, opts)
	if err != nil {
		return nil, err
	}
	dec, err := core.DecodeBlindIndexed(doc, cfg, nil)
	if err != nil {
		return nil, err
	}
	return &DecodeResult{DecodeResult: dec, Stats: Stats{FallbackReason: reason}}, nil
}

func slurpDoc(ctx context.Context, r io.Reader, opts Options) (*xmltree.Node, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return xmltree.Parse(r, opts.Parse)
}
