package stream

// Streaming embed: scan → chunk → embed each chunk through the core
// encoder → serialize in document order, with the receipt merged back
// into enumeration order so its bytes match the in-memory embed's.

import (
	"context"
	"io"
	"sort"
	"strings"

	"wmxml/internal/core"
	"wmxml/internal/identity"
	"wmxml/internal/xmltree"
)

// EmbedResult is a streaming embed's outcome: the merged core receipt
// plus execution stats.
type EmbedResult struct {
	*core.EmbedResult
	Stats Stats
}

// EmbedFallbackReason reports why streamed embedding of documents
// under cfg would take the in-memory path ("" when the chunked path
// runs). Servers use it to refuse stream-sized bodies that would
// silently materialize.
func EmbedFallbackReason(cfg core.Config, opts Options) (string, error) {
	p, err := buildPlan(cfg, opts.withDefaults())
	if err != nil {
		return "", err
	}
	if cfg.ValidateInput {
		return "ValidateInput: schema validation needs the whole document", nil
	}
	return p.fallback, nil
}

// DetectFallbackReason is EmbedFallbackReason for streamed detection
// with the given query set (nil records = blind).
func DetectFallbackReason(cfg core.Config, records []core.QueryRecord, rw core.Rewriter, opts Options) (string, error) {
	p, err := buildPlan(cfg, opts.withDefaults())
	if err != nil {
		return "", err
	}
	if p.fallback != "" {
		return p.fallback, nil
	}
	if records == nil {
		return "", nil
	}
	compiled, err := core.CompileRecords(cfg, records, rw)
	if err != nil {
		return "", err
	}
	for i := range compiled {
		if compiled[i].Runnable() && !chunkLocal(compiled[i].Query()) {
			return "query set is not chunk-local (positional or upward-looking query)", nil
		}
	}
	return "", nil
}

// Embed reads an XML document from r, embeds the watermark under cfg,
// and writes the marked document to w — byte-identical to parsing the
// whole document, running core.Embed and serializing with the same
// options, but with peak memory bounded by chunk size × workers instead
// of document size. Configurations the chunked path cannot reproduce
// exactly fall back to the in-memory path (Stats says which ran).
func Embed(ctx context.Context, r io.Reader, w io.Writer, cfg core.Config, opts Options) (*EmbedResult, error) {
	opts = opts.withDefaults()
	p, err := buildPlan(cfg, opts)
	if err != nil {
		return nil, err
	}
	if cfg.ValidateInput {
		p.fallback = "ValidateInput: schema validation needs the whole document"
	}
	if p.fallback != "" {
		return embedSlurp(ctx, r, w, cfg, opts, p.fallback)
	}

	sp := xmltree.NewStreamParser(r, opts.Parse)
	ss := xmltree.NewStreamSerializer(w, opts.Serialize)

	var perChunk []*core.EmbedResult // indexed sparsely by emit order
	work := func(c *chunk) error {
		if c.records == 0 {
			return nil // nothing to embed; items pass straight through
		}
		doc := skeleton(sp.Root(), c.items)
		res, err := core.EmbedIndexed(doc, cfg, nil)
		if err != nil {
			return err
		}
		c.embed = res
		return nil
	}
	emit := func(c *chunk) error {
		switch c.kind {
		case chunkDocItem:
			ss.WriteDocItem(c.node)
		case chunkRootOpen:
			ss.OpenElement(c.node)
		case chunkItems:
			if c.embed != nil {
				perChunk = append(perChunk, c.embed)
			}
			for _, it := range c.items {
				ss.WriteChild(it)
			}
		case chunkRootClose:
			ss.CloseElement()
		}
		return ss.Err()
	}
	stats, err := runChunked(ctx, sp, p.records, opts, work, emit)
	if err != nil {
		return nil, err
	}
	if err := ss.Finish(); err != nil {
		return nil, err
	}
	return &EmbedResult{
		EmbedResult: mergeEmbedResults(p.targets, perChunk),
		Stats:       *stats,
	}, nil
}

// embedSlurp is the in-memory fallback: parse everything, embed once,
// serialize once — identical output by construction.
func embedSlurp(ctx context.Context, r io.Reader, w io.Writer, cfg core.Config, opts Options, reason string) (*EmbedResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	doc, err := xmltree.Parse(r, opts.Parse)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	res, err := core.Embed(doc, cfg)
	if err != nil {
		return nil, err
	}
	if err := xmltree.Serialize(w, doc, opts.Serialize); err != nil {
		return nil, err
	}
	return &EmbedResult{
		EmbedResult: res,
		Stats:       Stats{FallbackReason: reason},
	}, nil
}

// recordKind extracts the unit kind ("key", "fd", "det", "pos") from a
// canonical identity string.
func recordKind(id string) string {
	if i := strings.IndexByte(id, '\x1f'); i >= 0 {
		return id[:i]
	}
	return ""
}

// recordGroupValue extracts the selector/group value — the last
// field — from a canonical identity string.
func recordGroupValue(id string) string {
	if i := strings.LastIndexByte(id, '\x1f'); i >= 0 {
		return id[i+1:]
	}
	return id
}

// mergeEmbedResults folds per-chunk embed results into one receipt in
// the exact order the in-memory encoder enumerates:
//
//   - targets in resolution order (the chunk results are each
//     target-major already);
//   - within a target, key units in instance (= chunk concatenation)
//     order;
//   - within an FD-grouped target, one record per group sorted by group
//     value — groups spanning chunks produced one identical record per
//     chunk, which deduplicate here.
//
// Counts sum exactly except Bandwidth.Units/FDGroups/PhysicalItems,
// where an FD group spanning k chunks is counted k times (the
// enumeration never sees the whole group at once); Carriers and Records
// are exact because spanning groups collapse during the merge.
func mergeEmbedResults(targets []identity.Target, chunks []*core.EmbedResult) *core.EmbedResult {
	out := &core.EmbedResult{}
	out.Bandwidth.Targets = targets
	out.Bandwidth.Skipped = make(map[string]int)
	byTarget := make(map[string][]core.QueryRecord, len(targets))
	var extra []core.QueryRecord // records whose target is not in the resolved list (defensive)
	known := make(map[string]bool, len(targets))
	for _, t := range targets {
		known[t.String()] = true
	}
	for _, ch := range chunks {
		out.Bandwidth.Units += ch.Bandwidth.Units
		out.Bandwidth.FDGroups += ch.Bandwidth.FDGroups
		out.Bandwidth.PhysicalItems += ch.Bandwidth.PhysicalItems
		for k, v := range ch.Bandwidth.Skipped {
			out.Bandwidth.Skipped[k] += v
		}
		out.Embedded += ch.Embedded
		out.Unembeddable += ch.Unembeddable
		for _, rec := range ch.Records {
			if known[rec.Target] {
				byTarget[rec.Target] = append(byTarget[rec.Target], rec)
			} else {
				extra = append(extra, rec)
			}
		}
	}
	var merged []core.QueryRecord
	for _, t := range targets {
		recs := byTarget[t.String()]
		if len(recs) == 0 {
			continue
		}
		if k := recordKind(recs[0].ID); k == "fd" || k == "det" {
			seen := make(map[string]bool, len(recs))
			uniq := recs[:0]
			for _, rec := range recs {
				if seen[rec.ID] {
					continue
				}
				seen[rec.ID] = true
				uniq = append(uniq, rec)
			}
			sort.SliceStable(uniq, func(i, j int) bool {
				return recordGroupValue(uniq[i].ID) < recordGroupValue(uniq[j].ID)
			})
			recs = uniq
		}
		merged = append(merged, recs...)
	}
	merged = append(merged, extra...)
	if len(merged) > 0 {
		out.Records = merged
	}
	out.Carriers = len(merged)
	return out
}
