// Package attack implements the adversary of the paper's demonstration
// (§4): "(A) data alteration … (B) data reduction … (C) data
// re-organization … (D) redundancy removal". Each attack is a
// deterministic (seeded) document transformation; the experiments sweep
// their severity and measure detection versus usability on the result.
package attack

import (
	"encoding/base64"
	"fmt"
	"math/rand"
	"strconv"
	"strings"

	"wmxml/internal/rewrite"
	"wmxml/internal/semantics"
	"wmxml/internal/xmltree"
	"wmxml/internal/xpath"
)

// Attack transforms a document. Apply may mutate doc in place and return
// it, or build and return a new document (re-organization does). The
// passed *rand.Rand makes runs reproducible.
type Attack interface {
	Name() string
	Apply(doc *xmltree.Node, r *rand.Rand) (*xmltree.Node, error)
}

// ---------------------------------------------------------------------
// (A) data alteration
// ---------------------------------------------------------------------

// ValueAlteration replaces a fraction of the document's leaf values
// (element texts and attribute values) with fresh random values of the
// same shape — the "modify the elements" half of attack (A).
type ValueAlteration struct {
	// Fraction of values to alter, in [0,1].
	Fraction float64
}

// Name implements Attack.
func (a ValueAlteration) Name() string {
	return fmt.Sprintf("value-alteration(%.2f)", a.Fraction)
}

// Apply implements Attack.
func (a ValueAlteration) Apply(doc *xmltree.Node, r *rand.Rand) (*xmltree.Node, error) {
	if a.Fraction < 0 || a.Fraction > 1 {
		return nil, fmt.Errorf("attack: alteration fraction %.2f out of [0,1]", a.Fraction)
	}
	var targets []xpath.Item
	xmltree.WalkElements(doc, func(e *xmltree.Node) {
		for _, attr := range e.Attrs {
			targets = append(targets, xpath.Item{Node: e, Attr: attr.Name})
		}
		if isLeaf(e) && e.Text() != "" {
			targets = append(targets, xpath.Item{Node: e})
		}
	})
	for _, it := range targets {
		if r.Float64() >= a.Fraction {
			continue
		}
		it.SetValue(alterValue(it.Value(), r))
	}
	return doc, nil
}

// alterValue replaces a value with a random one of the same kind:
// numbers get re-randomized with a guaranteed change, base64 payloads
// get bytes flipped, text gets replaced by a random token.
func alterValue(v string, r *rand.Rand) string {
	t := strings.TrimSpace(v)
	if i, err := strconv.ParseInt(t, 10, 64); err == nil {
		delta := int64(1 + r.Intn(1000))
		if r.Intn(2) == 0 {
			delta = -delta
		}
		return strconv.FormatInt(i+delta, 10)
	}
	if f, err := strconv.ParseFloat(t, 64); err == nil {
		return strconv.FormatFloat(f*(0.5+r.Float64()), 'f', 2, 64)
	}
	if raw, err := base64.StdEncoding.DecodeString(t); err == nil && len(raw) >= 8 {
		for i := 0; i < 1+len(raw)/4; i++ {
			raw[r.Intn(len(raw))] ^= byte(1 + r.Intn(255))
		}
		return base64.StdEncoding.EncodeToString(raw)
	}
	return fmt.Sprintf("altered-%08x", r.Uint32())
}

// StructureAlteration deletes and inserts elements — the "or the
// structures" half of attack (A). DeleteFraction removes random leaf
// elements; AddFraction inserts noise elements under random parents.
type StructureAlteration struct {
	DeleteFraction float64
	AddFraction    float64
}

// Name implements Attack.
func (a StructureAlteration) Name() string {
	return fmt.Sprintf("structure-alteration(del=%.2f,add=%.2f)", a.DeleteFraction, a.AddFraction)
}

// Apply implements Attack.
func (a StructureAlteration) Apply(doc *xmltree.Node, r *rand.Rand) (*xmltree.Node, error) {
	leaves := xmltree.LeafElements(doc)
	for _, e := range leaves {
		if r.Float64() < a.DeleteFraction && e.Parent != nil {
			e.Detach()
		}
	}
	var parents []*xmltree.Node
	xmltree.WalkElements(doc, func(e *xmltree.Node) {
		if !isLeaf(e) {
			parents = append(parents, e)
		}
	})
	for _, p := range parents {
		if r.Float64() < a.AddFraction {
			p.AppendChild(xmltree.TextElem(fmt.Sprintf("noise%d", r.Intn(10)), fmt.Sprintf("%08x", r.Uint32())))
		}
	}
	return doc, nil
}

// NumericBitFlip randomizes the lowest Bits binary bits of every numeric
// leaf value — the classic targeted attack against low-order numeric
// embedding (Agrawal–Kiernan's bit-flipping adversary). Its perturbation
// is bounded by 2^Bits, usually inside any reasonable usability
// tolerance, which is exactly why a robust deployment spreads the mark
// across non-numeric channels too (ablation A3 measures this).
type NumericBitFlip struct {
	// Bits is the number of low-order bits to randomize (>= 1).
	Bits int
}

// Name implements Attack.
func (a NumericBitFlip) Name() string {
	return fmt.Sprintf("numeric-bitflip(%d)", a.Bits)
}

// Apply implements Attack.
func (a NumericBitFlip) Apply(doc *xmltree.Node, r *rand.Rand) (*xmltree.Node, error) {
	if a.Bits < 1 || a.Bits > 16 {
		return nil, fmt.Errorf("attack: bit-flip depth %d out of [1,16]", a.Bits)
	}
	mask := int64(1)<<uint(a.Bits) - 1
	flip := func(it xpath.Item) {
		t := strings.TrimSpace(it.Value())
		neg := strings.HasPrefix(t, "-")
		digits := strings.TrimPrefix(t, "-")
		intPart, fracPart := digits, ""
		if i := strings.IndexByte(digits, '.'); i >= 0 {
			intPart, fracPart = digits[:i], digits[i+1:]
		}
		scaled, err := strconv.ParseInt(intPart+fracPart, 10, 64)
		if err != nil {
			return
		}
		scaled = (scaled &^ mask) | (r.Int63() & mask)
		out := strconv.FormatInt(scaled, 10)
		if len(fracPart) > 0 {
			for len(out) <= len(fracPart) {
				out = "0" + out
			}
			out = out[:len(out)-len(fracPart)] + "." + out[len(out)-len(fracPart):]
		}
		if neg {
			out = "-" + out
		}
		it.SetValue(out)
	}
	xmltree.WalkElements(doc, func(e *xmltree.Node) {
		for _, attr := range e.Attrs {
			if isNumericValue(attr.Value) {
				flip(xpath.Item{Node: e, Attr: attr.Name})
			}
		}
		if isLeaf(e) && isNumericValue(e.Text()) {
			flip(xpath.Item{Node: e})
		}
	})
	return doc, nil
}

func isNumericValue(s string) bool {
	t := strings.TrimSpace(s)
	if t == "" {
		return false
	}
	_, err := strconv.ParseFloat(t, 64)
	return err == nil && !strings.ContainsAny(t, "eE")
}

// ---------------------------------------------------------------------
// (B) data reduction
// ---------------------------------------------------------------------

// Reduction keeps a random subset of the instances of Scope and discards
// the rest — attack (B): "selectively use a subset of the
// semi-structured data".
type Reduction struct {
	// Scope is the name path of the record set to subset, e.g. "db/book".
	Scope string
	// KeepFraction of instances survive.
	KeepFraction float64
}

// Name implements Attack.
func (a Reduction) Name() string {
	return fmt.Sprintf("reduction(keep=%.2f)", a.KeepFraction)
}

// Apply implements Attack.
func (a Reduction) Apply(doc *xmltree.Node, r *rand.Rand) (*xmltree.Node, error) {
	if a.KeepFraction < 0 || a.KeepFraction > 1 {
		return nil, fmt.Errorf("attack: keep fraction %.2f out of [0,1]", a.KeepFraction)
	}
	insts, err := semantics.Instances(doc, a.Scope)
	if err != nil {
		return nil, err
	}
	if len(insts) == 0 {
		return nil, fmt.Errorf("attack: reduction scope %q selects nothing", a.Scope)
	}
	for _, inst := range insts {
		if r.Float64() >= a.KeepFraction {
			inst.Detach()
		}
	}
	return doc, nil
}

// ---------------------------------------------------------------------
// (C) data re-organization
// ---------------------------------------------------------------------

// Reorganization re-shreds the document under a new schema via a
// rewrite.Mapping — attack (C) and the paper's figure 1.
type Reorganization struct {
	Mapping rewrite.Mapping
}

// Name implements Attack.
func (a Reorganization) Name() string {
	return "reorganization(" + a.Mapping.Name + ")"
}

// Apply implements Attack.
func (a Reorganization) Apply(doc *xmltree.Node, _ *rand.Rand) (*xmltree.Node, error) {
	return rewrite.Transform(doc, a.Mapping)
}

// Reorder shuffles sibling order and attribute order everywhere — the
// "reorder the data elements" part of attack (C). It destroys every
// positional identifier while provably preserving the information
// content.
type Reorder struct{}

// Name implements Attack.
func (Reorder) Name() string { return "reorder" }

// Apply implements Attack.
func (Reorder) Apply(doc *xmltree.Node, r *rand.Rand) (*xmltree.Node, error) {
	var shuffle func(n *xmltree.Node)
	shuffle = func(n *xmltree.Node) {
		r.Shuffle(len(n.Children), func(i, j int) {
			n.Children[i], n.Children[j] = n.Children[j], n.Children[i]
		})
		r.Shuffle(len(n.Attrs), func(i, j int) {
			n.Attrs[i], n.Attrs[j] = n.Attrs[j], n.Attrs[i]
		})
		for _, c := range n.Children {
			if c.Kind == xmltree.ElementNode {
				shuffle(c)
			}
		}
	}
	if root := doc.Root(); root != nil {
		shuffle(root)
	}
	return doc, nil
}

// ---------------------------------------------------------------------
// (D) redundancy removal
// ---------------------------------------------------------------------

// RedundancyRemoval normalizes FD-induced duplicates: within every
// duplicate group of each FD, all dependent values are overwritten with
// the group's majority value — attack (D): "identify and remove
// redundancies within the data". Against a redundancy-oblivious
// watermark, the duplicates carry different bits and the majority wipes
// them; against WmXML's FD-canonical identities the group already agrees
// and the attack is a no-op.
type RedundancyRemoval struct {
	FDs []semantics.FD
}

// Name implements Attack.
func (a RedundancyRemoval) Name() string { return "redundancy-removal" }

// Apply implements Attack.
func (a RedundancyRemoval) Apply(doc *xmltree.Node, _ *rand.Rand) (*xmltree.Node, error) {
	if len(a.FDs) == 0 {
		return nil, fmt.Errorf("attack: redundancy removal needs at least one FD")
	}
	for _, fd := range a.FDs {
		groups, err := semantics.DuplicateGroups(doc, fd)
		if err != nil {
			return nil, err
		}
		for _, g := range groups {
			if len(g.Members) < 2 {
				continue
			}
			counts := make(map[string]int)
			for _, m := range g.Members {
				counts[m.Value()]++
			}
			best, bestN := "", -1
			for v, n := range counts {
				if n > bestN || (n == bestN && v < best) {
					best, bestN = v, n
				}
			}
			for _, m := range g.Members {
				m.SetValue(best)
			}
		}
	}
	return doc, nil
}

// ---------------------------------------------------------------------
// composition
// ---------------------------------------------------------------------

// Chain applies several attacks in sequence.
type Chain struct {
	Attacks []Attack
}

// Name implements Attack.
func (c Chain) Name() string {
	names := make([]string, len(c.Attacks))
	for i, a := range c.Attacks {
		names[i] = a.Name()
	}
	return "chain[" + strings.Join(names, " -> ") + "]"
}

// Apply implements Attack.
func (c Chain) Apply(doc *xmltree.Node, r *rand.Rand) (*xmltree.Node, error) {
	var err error
	for _, a := range c.Attacks {
		doc, err = a.Apply(doc, r)
		if err != nil {
			return nil, fmt.Errorf("attack %s: %w", a.Name(), err)
		}
	}
	return doc, nil
}

func isLeaf(e *xmltree.Node) bool {
	for _, c := range e.Children {
		if c.Kind == xmltree.ElementNode {
			return false
		}
	}
	return true
}
