package attack

import (
	"fmt"
	"math/rand"
	"testing"

	"wmxml/internal/datagen"
	"wmxml/internal/fingerprint"
	"wmxml/internal/semantics"
	"wmxml/internal/xmltree"
)

// fingerprintCopies builds k recipient copies of one pubs document.
func fingerprintCopies(t *testing.T, k int) (ds *datagen.Dataset, fp *fingerprint.System, copies []*xmltree.Node, ids []string) {
	t.Helper()
	ds = datagen.Publications(datagen.PubConfig{Books: 200, Seed: 71})
	fp, err := fingerprint.New(fingerprint.Options{
		Key:     []byte("collusion-key"),
		Schema:  ds.Schema,
		Catalog: ds.Catalog,
		Targets: ds.Targets,
		Gamma:   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < k; i++ {
		id := fmt.Sprintf("colluder-%d", i)
		doc := ds.Doc.Clone()
		if _, err := fp.Embed(doc, id); err != nil {
			t.Fatal(err)
		}
		copies = append(copies, doc)
		ids = append(ids, id)
	}
	return ds, fp, copies, ids
}

func TestCollusionStrategiesPreserveShape(t *testing.T) {
	for _, st := range []CollusionStrategy{CollusionMix, CollusionSegments, CollusionMajority} {
		t.Run(string(st), func(t *testing.T) {
			_, _, copies, _ := fingerprintCopies(t, 3)
			atk := Collusion{Copies: copies[1:], Scope: "db/book", Strategy: st}
			pirate, err := atk.Apply(copies[0], rand.New(rand.NewSource(1)))
			if err != nil {
				t.Fatal(err)
			}
			insts, err := semantics.Instances(pirate, "db/book")
			if err != nil {
				t.Fatal(err)
			}
			if len(insts) != 200 {
				t.Errorf("pirate has %d records, want 200", len(insts))
			}
		})
	}
}

// TestCollusionMixesMarks: the pirate copy contains values from more
// than one colluder (it is not just one of the inputs).
func TestCollusionMixesMarks(t *testing.T) {
	_, fp, copies, ids := fingerprintCopies(t, 3)
	atk := Collusion{Copies: copies[1:], Scope: "db/book"}
	pirate, err := atk.Apply(copies[0], rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	// Each colluder's code should correlate well above chance but below
	// a clean copy's 1.0 — evidence the pirate genuinely mixes.
	res, err := fp.Trace(pirate, ids, fingerprint.TraceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range res.Accusations {
		if a.MatchFraction >= 0.995 {
			t.Errorf("%s matches at %.3f — pirate looks like a verbatim copy", a.Recipient, a.MatchFraction)
		}
		if a.MatchFraction < 0.55 {
			t.Errorf("%s matches at %.3f — colluder mark wiped entirely", a.Recipient, a.MatchFraction)
		}
	}
}

func TestCollusionValidation(t *testing.T) {
	ds := datagen.Publications(datagen.PubConfig{Books: 10, Seed: 72})
	r := rand.New(rand.NewSource(3))
	if _, err := (Collusion{Scope: "db/book"}).Apply(ds.Doc.Clone(), r); err == nil {
		t.Error("single copy must be rejected")
	}
	other := datagen.Publications(datagen.PubConfig{Books: 12, Seed: 72})
	atk := Collusion{Copies: []*xmltree.Node{other.Doc.Clone()}, Scope: "db/book"}
	if _, err := atk.Apply(ds.Doc.Clone(), r); err == nil {
		t.Error("mismatched record counts must be rejected")
	}
	bad := Collusion{Copies: []*xmltree.Node{ds.Doc.Clone()}, Scope: "db/book", Strategy: "nonsense"}
	if _, err := bad.Apply(ds.Doc.Clone(), r); err == nil {
		t.Error("unknown strategy must be rejected")
	}
	none := Collusion{Copies: []*xmltree.Node{ds.Doc.Clone()}}
	if _, err := none.Apply(ds.Doc.Clone(), r); err == nil {
		t.Error("missing scope must be rejected")
	}
}
