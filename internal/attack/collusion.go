package attack

// The collusion adversary of fingerprinting: k recipients pool their
// fingerprinted copies and compose a pirate copy that mixes their
// marks. Under the marking assumption the colluders can only act where
// their copies differ — exactly the carrier values holding differing
// code bits — and these strategies are the classical ways to do it
// (Boneh–Shaw's cut-and-paste, majority voting, random interleaving).
// internal/fingerprint's tracer is designed to survive them;
// exp_collusion measures how well.

import (
	"fmt"
	"math/rand"
	"slices"

	"wmxml/internal/semantics"
	"wmxml/internal/xmltree"
)

// CollusionStrategy names how the coalition composes the pirate copy.
type CollusionStrategy string

const (
	// CollusionMix picks every record independently from a random
	// colluder's copy (record-level interleaving).
	CollusionMix CollusionStrategy = "mix"
	// CollusionSegments cuts the record sequence into contiguous runs
	// and takes each run wholly from one colluder — Boneh–Shaw's
	// cut-and-paste composition.
	CollusionSegments CollusionStrategy = "segments"
	// CollusionMajority sets every leaf value to the majority across
	// the colluders' copies (ties resolved by a random colluder) — the
	// strongest value-level averaging available without breaking the
	// marking assumption.
	CollusionMajority CollusionStrategy = "majority"
)

// Collusion composes the attacked document (colluder 0's copy) with
// the additional Copies into a pirate copy. All copies must be
// fingerprinted versions of the same original: same schema, same
// record count and order under Scope.
type Collusion struct {
	// Copies are the other colluders' documents (k-1 of them).
	Copies []*xmltree.Node
	// Scope is the record set that gets mixed, e.g. "db/book".
	Scope string
	// Strategy is the composition; empty means CollusionMix.
	Strategy CollusionStrategy
	// MeanRunLen is the mean contiguous run length for
	// CollusionSegments (0 = 8 records).
	MeanRunLen int
}

// Name implements Attack.
func (c Collusion) Name() string {
	st := c.Strategy
	if st == "" {
		st = CollusionMix
	}
	return fmt.Sprintf("collusion(%s,k=%d)", st, len(c.Copies)+1)
}

// Apply implements Attack: doc is colluder 0's copy and is rewritten in
// place into the pirate copy.
func (c Collusion) Apply(doc *xmltree.Node, r *rand.Rand) (*xmltree.Node, error) {
	if len(c.Copies) == 0 {
		return nil, fmt.Errorf("attack: collusion needs at least 2 copies (got 1)")
	}
	if c.Scope == "" {
		return nil, fmt.Errorf("attack: collusion needs a record scope")
	}
	all := append([]*xmltree.Node{doc}, c.Copies...)
	insts := make([][]*xmltree.Node, len(all))
	for i, d := range all {
		var err error
		insts[i], err = semantics.Instances(d, c.Scope)
		if err != nil {
			return nil, err
		}
		if len(insts[i]) == 0 {
			return nil, fmt.Errorf("attack: collusion scope %q selects nothing in copy %d", c.Scope, i)
		}
		if len(insts[i]) != len(insts[0]) {
			return nil, fmt.Errorf("attack: copies disagree on record count under %q (%d vs %d) — not copies of the same original",
				c.Scope, len(insts[i]), len(insts[0]))
		}
	}
	switch st := c.Strategy; st {
	case "", CollusionMix:
		for i := range insts[0] {
			c.takeFrom(insts, i, r.Intn(len(all)))
		}
	case CollusionSegments:
		runLen := c.MeanRunLen
		if runLen <= 0 {
			runLen = 8
		}
		cur := r.Intn(len(all))
		for i := range insts[0] {
			if r.Float64() < 1/float64(runLen) {
				cur = r.Intn(len(all))
			}
			c.takeFrom(insts, i, cur)
		}
	case CollusionMajority:
		for i := range insts[0] {
			row := make([]*xmltree.Node, len(all))
			for k := range all {
				row[k] = insts[k][i]
			}
			majorityMerge(row, r)
		}
	default:
		return nil, fmt.Errorf("attack: unknown collusion strategy %q", st)
	}
	return doc, nil
}

// takeFrom swaps record i of colluder src into the pirate copy (which
// starts as colluder 0's document). src 0 keeps the record in place.
func (c Collusion) takeFrom(insts [][]*xmltree.Node, i, src int) {
	if src == 0 {
		return
	}
	old := insts[0][i]
	if old.Parent == nil {
		return
	}
	old.Parent.ReplaceChild(old, insts[src][i].Clone())
}

// majorityMerge rewrites the leaf values of row[0] (the pirate record)
// with the per-value majority across all aligned copies. Copies are
// structurally identical (same original, value-only watermarking), so
// alignment walks children pairwise by position.
func majorityMerge(row []*xmltree.Node, r *rand.Rand) {
	base := row[0]
	for _, a := range base.Attrs {
		vals := make([]string, 0, len(row))
		for _, n := range row {
			if v, ok := n.Attr(a.Name); ok {
				vals = append(vals, v)
			}
		}
		base.SetAttr(a.Name, majorityValue(vals, r))
	}
	kids := base.ChildElements()
	aligned := make([][]*xmltree.Node, len(row))
	aligned[0] = kids
	for k := 1; k < len(row); k++ {
		aligned[k] = row[k].ChildElements()
	}
	for i, kid := range kids {
		sub := make([]*xmltree.Node, 0, len(row))
		sub = append(sub, kid)
		for k := 1; k < len(row); k++ {
			if i < len(aligned[k]) {
				sub = append(sub, aligned[k][i])
			}
		}
		if len(kid.ChildElements()) == 0 {
			vals := make([]string, len(sub))
			for j, n := range sub {
				vals[j] = n.Text()
			}
			kid.SetText(majorityValue(vals, r))
			// Leaves can still carry attributes; merge them too.
			for _, a := range kid.Attrs {
				avals := make([]string, 0, len(sub))
				for _, n := range sub {
					if v, ok := n.Attr(a.Name); ok {
						avals = append(avals, v)
					}
				}
				kid.SetAttr(a.Name, majorityValue(avals, r))
			}
			continue
		}
		majorityMerge(sub, r)
	}
}

// majorityValue returns the most frequent value; ties go to a random
// tied value (the coalition has no better information either).
func majorityValue(vals []string, r *rand.Rand) string {
	if len(vals) == 0 {
		return ""
	}
	counts := make(map[string]int, len(vals))
	for _, v := range vals {
		counts[v]++
	}
	best := -1
	var tied []string
	for _, v := range vals { // iterate vals, not the map: deterministic under seed
		if counts[v] > best {
			best = counts[v]
			tied = tied[:0]
			tied = append(tied, v)
		} else if counts[v] == best && !slices.Contains(tied, v) {
			tied = append(tied, v)
		}
	}
	if len(tied) == 1 {
		return tied[0]
	}
	return tied[r.Intn(len(tied))]
}
