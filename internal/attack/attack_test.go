package attack

import (
	"math/rand"
	"strings"
	"testing"

	"wmxml/internal/datagen"
	"wmxml/internal/rewrite"
	"wmxml/internal/semantics"
	"wmxml/internal/xmltree"
)

func TestValueAlterationFraction(t *testing.T) {
	ds := datagen.Publications(datagen.PubConfig{Books: 200, Seed: 1})
	doc := ds.Doc.Clone()
	out, err := ValueAlteration{Fraction: 0.3}.Apply(doc, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if out != doc {
		t.Errorf("in-place attack returned new document")
	}
	// Count changed leaf values.
	origLeaves := xmltree.LeafElements(ds.Doc)
	newLeaves := xmltree.LeafElements(out)
	if len(origLeaves) != len(newLeaves) {
		t.Fatalf("leaf count changed: %d -> %d", len(origLeaves), len(newLeaves))
	}
	changed := 0
	for i := range origLeaves {
		if origLeaves[i].Text() != newLeaves[i].Text() {
			changed++
		}
	}
	frac := float64(changed) / float64(len(origLeaves))
	if frac < 0.2 || frac > 0.4 {
		t.Errorf("altered fraction = %.2f, want ~0.3", frac)
	}
}

func TestValueAlterationZeroIsNoop(t *testing.T) {
	ds := datagen.Jobs(datagen.JobsConfig{Jobs: 50, Seed: 2})
	doc := ds.Doc.Clone()
	if _, err := (ValueAlteration{Fraction: 0}).Apply(doc, rand.New(rand.NewSource(3))); err != nil {
		t.Fatal(err)
	}
	if !xmltree.Equal(ds.Doc, doc, xmltree.CompareOptions{}) {
		t.Errorf("zero-fraction alteration changed document")
	}
}

func TestValueAlterationValidation(t *testing.T) {
	doc := xmltree.MustParseString(`<a><b>1</b></a>`)
	if _, err := (ValueAlteration{Fraction: 1.5}).Apply(doc, rand.New(rand.NewSource(1))); err == nil {
		t.Errorf("fraction > 1 accepted")
	}
}

func TestAlterValueShapes(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	if v := alterValue("1998", r); v == "1998" {
		t.Errorf("integer not altered")
	}
	if v := alterValue("55.50", r); v == "55.50" || !strings.Contains(v, ".") {
		t.Errorf("decimal alteration = %q", v)
	}
	blob := strings.Repeat("QUJD", 8)
	if v := alterValue(blob, r); v == blob {
		t.Errorf("base64 not altered")
	}
	if v := alterValue("Stonebraker", r); !strings.HasPrefix(v, "altered-") {
		t.Errorf("text alteration = %q", v)
	}
}

func TestStructureAlteration(t *testing.T) {
	ds := datagen.Publications(datagen.PubConfig{Books: 100, Seed: 5})
	doc := ds.Doc.Clone()
	if _, err := (StructureAlteration{DeleteFraction: 0.2, AddFraction: 0.3}).Apply(doc, rand.New(rand.NewSource(6))); err != nil {
		t.Fatal(err)
	}
	so := xmltree.CollectStats(ds.Doc)
	sn := xmltree.CollectStats(doc)
	if sn.Elements >= so.Elements+100 || sn.Elements <= so.Elements-400 {
		t.Errorf("implausible element delta: %d -> %d", so.Elements, sn.Elements)
	}
	noise := 0
	for tag := range sn.Tags {
		if strings.HasPrefix(tag, "noise") {
			noise += sn.Tags[tag]
		}
	}
	if noise == 0 {
		t.Errorf("no noise elements inserted")
	}
}

func TestReduction(t *testing.T) {
	ds := datagen.Publications(datagen.PubConfig{Books: 300, Seed: 7})
	doc := ds.Doc.Clone()
	if _, err := (Reduction{Scope: "db/book", KeepFraction: 0.4}).Apply(doc, rand.New(rand.NewSource(8))); err != nil {
		t.Fatal(err)
	}
	kept := len(doc.Root().ChildElementsNamed("book"))
	if kept < 80 || kept > 160 {
		t.Errorf("kept %d of 300, want ~120", kept)
	}
	// Survivors are intact.
	for _, b := range doc.Root().ChildElementsNamed("book") {
		if b.FirstChildNamed("title") == nil {
			t.Errorf("surviving book lost its title")
		}
	}
}

func TestReductionErrors(t *testing.T) {
	doc := xmltree.MustParseString(`<db><book/></db>`)
	if _, err := (Reduction{Scope: "db/book", KeepFraction: 2}).Apply(doc, rand.New(rand.NewSource(1))); err == nil {
		t.Errorf("bad fraction accepted")
	}
	if _, err := (Reduction{Scope: "db/nothing", KeepFraction: 0.5}).Apply(doc, rand.New(rand.NewSource(1))); err == nil {
		t.Errorf("empty scope accepted")
	}
}

func TestReorganization(t *testing.T) {
	ds := datagen.Publications(datagen.PubConfig{Books: 50, Seed: 9})
	doc := ds.Doc.Clone()
	out, err := Reorganization{Mapping: rewrite.Figure1Mapping()}.Apply(doc, rand.New(rand.NewSource(10)))
	if err != nil {
		t.Fatal(err)
	}
	if out == doc {
		t.Errorf("reorganization should build a new document")
	}
	if out.Root().FirstChildNamed("publisher") == nil {
		t.Errorf("target layout missing publisher groups")
	}
}

func TestReorder(t *testing.T) {
	ds := datagen.Publications(datagen.PubConfig{Books: 80, Seed: 11})
	doc := ds.Doc.Clone()
	if _, err := (Reorder{}).Apply(doc, rand.New(rand.NewSource(12))); err != nil {
		t.Fatal(err)
	}
	// Same content as a bag, different order.
	if !xmltree.Equal(ds.Doc, doc, xmltree.CompareOptions{IgnoreChildOrder: true}) {
		t.Errorf("reorder changed content")
	}
	if xmltree.Equal(ds.Doc, doc, xmltree.CompareOptions{}) {
		t.Errorf("reorder did not change order")
	}
}

func TestRedundancyRemovalNoopWhenConsistent(t *testing.T) {
	// On a document whose FD groups agree, normalization changes nothing.
	ds := datagen.Publications(datagen.PubConfig{Books: 120, Editors: 10, Seed: 13})
	doc := ds.Doc.Clone()
	if _, err := (RedundancyRemoval{FDs: ds.Catalog.FDs}).Apply(doc, rand.New(rand.NewSource(14))); err != nil {
		t.Fatal(err)
	}
	if !xmltree.Equal(ds.Doc, doc, xmltree.CompareOptions{}) {
		t.Errorf("redundancy removal changed a consistent document")
	}
}

func TestRedundancyRemovalNormalizesMajority(t *testing.T) {
	doc := xmltree.MustParseString(`<db>
	  <book publisher="mkp"><title>A</title><editor>H</editor></book>
	  <book publisher="mkp"><title>B</title><editor>H</editor></book>
	  <book publisher="MKP*"><title>C</title><editor>H</editor></book>
	  <book publisher="acm"><title>D</title><editor>G</editor></book>
	</db>`)
	fd := semantics.FD{Scope: "db/book", Determinant: "editor", Dependent: "@publisher"}
	if _, err := (RedundancyRemoval{FDs: []semantics.FD{fd}}).Apply(doc, rand.New(rand.NewSource(1))); err != nil {
		t.Fatal(err)
	}
	for _, b := range doc.Root().ChildElementsNamed("book") {
		ed := b.FirstChildNamed("editor").Text()
		pub, _ := b.Attr("publisher")
		if ed == "H" && pub != "mkp" {
			t.Errorf("group H not normalized to majority: %q", pub)
		}
		if ed == "G" && pub != "acm" {
			t.Errorf("singleton group changed: %q", pub)
		}
	}
}

func TestRedundancyRemovalNeedsFDs(t *testing.T) {
	doc := xmltree.MustParseString(`<db/>`)
	if _, err := (RedundancyRemoval{}).Apply(doc, rand.New(rand.NewSource(1))); err == nil {
		t.Errorf("no FDs accepted")
	}
}

func TestChain(t *testing.T) {
	ds := datagen.Publications(datagen.PubConfig{Books: 60, Seed: 15})
	doc := ds.Doc.Clone()
	c := Chain{Attacks: []Attack{
		ValueAlteration{Fraction: 0.1},
		Reduction{Scope: "db/book", KeepFraction: 0.8},
		Reorder{},
	}}
	out, err := c.Apply(doc, rand.New(rand.NewSource(16)))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(out.Root().ChildElementsNamed("book")); got >= 60 {
		t.Errorf("chain reduction ineffective: %d books", got)
	}
	if !strings.Contains(c.Name(), "->") {
		t.Errorf("chain name = %q", c.Name())
	}
	// A failing link surfaces its error.
	bad := Chain{Attacks: []Attack{Reduction{Scope: "db/none", KeepFraction: 0.5}}}
	if _, err := bad.Apply(ds.Doc.Clone(), rand.New(rand.NewSource(1))); err == nil {
		t.Errorf("chain swallowed error")
	}
}

func TestAttackNames(t *testing.T) {
	names := []string{
		ValueAlteration{Fraction: 0.25}.Name(),
		StructureAlteration{DeleteFraction: 0.1, AddFraction: 0.2}.Name(),
		Reduction{KeepFraction: 0.5}.Name(),
		Reorganization{Mapping: rewrite.Figure1Mapping()}.Name(),
		Reorder{}.Name(),
		RedundancyRemoval{}.Name(),
	}
	for _, n := range names {
		if n == "" {
			t.Errorf("empty attack name")
		}
	}
	if !strings.Contains(names[0], "0.25") {
		t.Errorf("alteration name lacks fraction: %q", names[0])
	}
}

func TestNumericBitFlip(t *testing.T) {
	ds := datagen.Publications(datagen.PubConfig{Books: 150, Seed: 21})
	doc := ds.Doc.Clone()
	if _, err := (NumericBitFlip{Bits: 4}).Apply(doc, rand.New(rand.NewSource(22))); err != nil {
		t.Fatal(err)
	}
	origBooks := ds.Doc.Root().ChildElementsNamed("book")
	newBooks := doc.Root().ChildElementsNamed("book")
	changed := 0
	for i := range origBooks {
		oy := origBooks[i].FirstChildNamed("year").Text()
		ny := newBooks[i].FirstChildNamed("year").Text()
		if oy != ny {
			changed++
		}
		var ov, nv int64
		fmtSscan(t, oy, &ov)
		fmtSscan(t, ny, &nv)
		if d := ov - nv; d > 15 || d < -15 {
			t.Errorf("year perturbed beyond 2^4: %s -> %s", oy, ny)
		}
		// Decimal shape preserved for price.
		np := newBooks[i].FirstChildNamed("price").Text()
		if !strings.Contains(np, ".") || len(strings.SplitN(np, ".", 2)[1]) != 2 {
			t.Errorf("price shape broken: %q", np)
		}
		// Non-numeric untouched.
		if origBooks[i].FirstChildNamed("title").Text() != newBooks[i].FirstChildNamed("title").Text() {
			t.Errorf("bit flip touched a title")
		}
	}
	if changed == 0 {
		t.Errorf("no year changed")
	}
	if _, err := (NumericBitFlip{Bits: 0}).Apply(doc, rand.New(rand.NewSource(1))); err == nil {
		t.Errorf("zero-bit flip accepted")
	}
}

func fmtSscan(t *testing.T, s string, v *int64) {
	t.Helper()
	var n int64
	neg := false
	for i := 0; i < len(s); i++ {
		if i == 0 && s[i] == '-' {
			neg = true
			continue
		}
		if s[i] < '0' || s[i] > '9' {
			t.Fatalf("not a number: %q", s)
		}
		n = n*10 + int64(s[i]-'0')
	}
	if neg {
		n = -n
	}
	*v = n
}

func TestDeterministicUnderSeed(t *testing.T) {
	ds := datagen.Publications(datagen.PubConfig{Books: 100, Seed: 17})
	a1 := ds.Doc.Clone()
	a2 := ds.Doc.Clone()
	if _, err := (ValueAlteration{Fraction: 0.5}).Apply(a1, rand.New(rand.NewSource(99))); err != nil {
		t.Fatal(err)
	}
	if _, err := (ValueAlteration{Fraction: 0.5}).Apply(a2, rand.New(rand.NewSource(99))); err != nil {
		t.Fatal(err)
	}
	if !xmltree.Equal(a1, a2, xmltree.CompareOptions{}) {
		t.Errorf("same seed produced different attacks")
	}
}
