// Package usability measures data usability by the correctness of
// query-template results — the paper's §2.1 metric:
//
//	"WmXML uses the correctness of query results to measure the
//	 usability of XML data. A set of query templates … are specified by
//	 user to depict data usability. After watermarking or attacks, if a
//	 certain fraction of the results to these query templates are
//	 destroyed, the usability of the XML data is regarded destroyed."
//
// A template is an XPath whose record step carries a *parameter
// predicate* — a bare existence test like db/book[title]/author. The
// meter expands the parameter over the original document (one concrete
// probe per distinct title) and records the expected answers. Measuring
// a suspect document runs every probe (optionally through a query
// rewriter when the suspect was re-organized) and reports the fraction
// answered correctly.
//
// Results are compared as value *sets*: data-centric usability is about
// information content, and re-organization legitimately de-duplicates
// FD-redundant values without losing information. Numeric values compare
// within a relative tolerance so the watermark's own low-order
// perturbation never counts as damage (the imperceptibility requirement).
package usability

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"wmxml/internal/xmltree"
	"wmxml/internal/xpath"
)

// Rewriter matches core.Rewriter without importing it (avoids a cycle;
// both are satisfied by rewrite.QueryRewriter).
type Rewriter interface {
	RewriteQuery(q *xpath.Query) (*xpath.Query, error)
}

// Options configures the meter.
type Options struct {
	// RelTol is the relative tolerance for numeric comparison. Default
	// 0.02, generous enough for xi <= 5 low-order embedding, far too
	// tight for value-replacement attacks.
	RelTol float64
	// MaxProbes caps probes per template (0 = unlimited). Large documents
	// yield one probe per key value; capping keeps measurement cheap.
	MaxProbes int
}

func (o Options) withDefaults() Options {
	if o.RelTol == 0 {
		o.RelTol = 0.02
	}
	return o
}

// Probe is one concrete usability check: a query and its expected answer
// on the original document.
type Probe struct {
	Template string
	Query    string
	Expected []string // sorted, de-duplicated
}

// Meter holds the expanded probes of one original document.
type Meter struct {
	opts   Options
	probes []Probe
}

// NewMeter expands the templates over the original document.
func NewMeter(original *xmltree.Node, templates []string, opts Options) (*Meter, error) {
	return NewMeterIndexed(original, templates, opts, nil)
}

// NewMeterIndexed is NewMeter with a document index over the original
// accelerating template expansion (parameter enumeration and expected
// answers both run one query per probe). ix may be nil; the probes are
// identical either way.
func NewMeterIndexed(original *xmltree.Node, templates []string, opts Options, ix xpath.DocIndex) (*Meter, error) {
	m := &Meter{opts: opts.withDefaults()}
	for _, tpl := range templates {
		probes, err := expandTemplate(original, tpl, m.opts.MaxProbes, ix)
		if err != nil {
			return nil, err
		}
		m.probes = append(m.probes, probes...)
	}
	if len(m.probes) == 0 {
		return nil, fmt.Errorf("usability: no probes produced by %d templates", len(templates))
	}
	return m, nil
}

// Probes returns the expanded probes (primarily for reporting).
func (m *Meter) Probes() []Probe { return m.probes }

// expandTemplate turns db/book[title]/author into one probe per distinct
// title value. A template with no parameter predicate becomes a single
// probe over its full result.
func expandTemplate(doc *xmltree.Node, tpl string, maxProbes int, ix xpath.DocIndex) ([]Probe, error) {
	path, err := xpath.ParsePath(tpl)
	if err != nil {
		return nil, fmt.Errorf("usability: template %q: %w", tpl, err)
	}
	paramStep, paramIdx := -1, -1
	for si := range path.Steps {
		for pi, pred := range path.Steps[si].Predicates {
			if pe, ok := pred.(xpath.PathExpr); ok {
				if paramStep >= 0 {
					return nil, fmt.Errorf("usability: template %q has more than one parameter", tpl)
				}
				paramStep, paramIdx = si, pi
				_ = pe
			}
		}
	}
	if paramStep < 0 {
		// Unparameterized template: one probe.
		q := xpath.FromPath(path)
		return []Probe{{Template: tpl, Query: q.String(), Expected: valueSet(q.SelectIndexed(doc, ix), 0)}}, nil
	}

	// Collect distinct parameter values: evaluate the path up to the
	// parameter step with the parameter path appended.
	pe := path.Steps[paramStep].Predicates[paramIdx].(xpath.PathExpr)
	valPath := xpath.Path{Absolute: path.Absolute, Steps: append([]xpath.Step{}, path.Steps[:paramStep+1]...)}
	// Remove the parameter predicate from the step used for enumeration.
	enumStep := valPath.Steps[paramStep]
	enumStep.Predicates = nil
	valPath.Steps[paramStep] = enumStep
	valPath.Steps = append(valPath.Steps, pe.Path.Steps...)
	values := xpath.FromPath(valPath).SelectValuesIndexed(doc, ix)
	seen := make(map[string]bool)
	var probes []Probe
	for _, v := range values {
		if seen[v] {
			continue
		}
		seen[v] = true
		if strings.Contains(v, "'") && strings.Contains(v, `"`) {
			continue // unquotable in XPath 1.0
		}
		concrete := path.Clone()
		concrete.Steps[paramStep].Predicates[paramIdx] = xpath.Binary{
			Op: "=",
			L:  xpath.PathExpr{Path: pe.Path.Clone()},
			R:  xpath.String{Value: v},
		}
		q := xpath.FromPath(concrete)
		probes = append(probes, Probe{Template: tpl, Query: q.String(), Expected: valueSet(q.SelectIndexed(doc, ix), 0)})
		if maxProbes > 0 && len(probes) >= maxProbes {
			break
		}
	}
	return probes, nil
}

// valueSet extracts sorted distinct values from items.
func valueSet(items []xpath.Item, _ int) []string {
	set := make(map[string]bool, len(items))
	for _, it := range items {
		set[it.Value()] = true
	}
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// TemplateScore is the per-template breakdown of a measurement.
type TemplateScore struct {
	Template string
	Probes   int
	Correct  int
}

// Score is a usability measurement.
type Score struct {
	Probes      int
	Correct     int
	PerTemplate []TemplateScore
	// RewriteFailures counts probes whose query could not be rewritten
	// for the suspect document (those probes count as incorrect).
	RewriteFailures int
}

// Usability returns the fraction of correct probes in [0,1].
func (s Score) Usability() float64 {
	if s.Probes == 0 {
		return 0
	}
	return float64(s.Correct) / float64(s.Probes)
}

// Measure runs all probes against a suspect document. rw may be nil when
// the suspect kept the original schema.
func (m *Meter) Measure(suspect *xmltree.Node, rw Rewriter) Score {
	return m.MeasureIndexed(suspect, rw, nil)
}

// MeasureIndexed is Measure with a document index over the suspect
// accelerating probe execution. ix may be nil; the score is identical
// either way.
func (m *Meter) MeasureIndexed(suspect *xmltree.Node, rw Rewriter, ix xpath.DocIndex) Score {
	var sc Score
	per := make(map[string]*TemplateScore)
	order := []string{}
	for _, p := range m.probes {
		ts := per[p.Template]
		if ts == nil {
			ts = &TemplateScore{Template: p.Template}
			per[p.Template] = ts
			order = append(order, p.Template)
		}
		sc.Probes++
		ts.Probes++
		q, err := xpath.Compile(p.Query)
		if err != nil {
			continue // cannot happen for meter-produced probes
		}
		if rw != nil {
			rq, err := rw.RewriteQuery(q)
			if err != nil {
				sc.RewriteFailures++
				continue
			}
			q = rq
		}
		got := valueSet(q.SelectIndexed(suspect, ix), 0)
		if m.setsMatch(p.Expected, got) {
			sc.Correct++
			ts.Correct++
		}
	}
	for _, tpl := range order {
		sc.PerTemplate = append(sc.PerTemplate, *per[tpl])
	}
	return sc
}

// setsMatch compares two sorted value sets under numeric tolerance. The
// sets must have equal cardinality and match one-to-one in sorted order.
func (m *Meter) setsMatch(want, got []string) bool {
	if len(want) != len(got) {
		return false
	}
	for i := range want {
		if !m.valuesMatch(want[i], got[i]) {
			// Sorted order may interleave near-equal numerics; fall back
			// to bipartite greedy match for small sets.
			return m.slowMatch(want, got)
		}
	}
	return true
}

func (m *Meter) slowMatch(want, got []string) bool {
	used := make([]bool, len(got))
outer:
	for _, w := range want {
		for j, g := range got {
			if !used[j] && m.valuesMatch(w, g) {
				used[j] = true
				continue outer
			}
		}
		return false
	}
	return true
}

// valuesMatch compares two scalar values: numerics within RelTol, text
// case-insensitively (the text watermark channel embeds in letter case,
// mirroring the paper's assumption that its chosen channels sit below
// the usability threshold; a value replaced outright still counts as
// damage), everything else exactly.
func (m *Meter) valuesMatch(a, b string) bool {
	if a == b || strings.EqualFold(a, b) {
		return true
	}
	fa, ea := strconv.ParseFloat(strings.TrimSpace(a), 64)
	fb, eb := strconv.ParseFloat(strings.TrimSpace(b), 64)
	if ea != nil || eb != nil {
		return false
	}
	diff := math.Abs(fa - fb)
	scale := math.Max(math.Abs(fa), math.Abs(fb))
	if scale == 0 {
		return diff == 0
	}
	return diff/scale <= m.opts.RelTol
}
