package usability

import (
	"strings"
	"testing"

	"wmxml/internal/datagen"
	"wmxml/internal/rewrite"
	"wmxml/internal/xmltree"
	"wmxml/internal/xpath"
)

const db1 = `<db>
  <book publisher="mkp">
    <title>Readings in Database Systems</title>
    <author>Stonebraker</author>
    <author>Hellerstein</author>
    <year>1998</year>
  </book>
  <book publisher="acm">
    <title>Database Design</title>
    <author>Berstein</author>
    <year>1999</year>
  </book>
</db>`

func TestMeterPerfectOnOriginal(t *testing.T) {
	doc := xmltree.MustParseString(db1)
	m, err := NewMeter(doc, []string{"db/book[title]/author", "db/book[title]/year"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sc := m.Measure(doc, nil)
	if sc.Usability() != 1.0 {
		t.Errorf("usability of original = %.2f, want 1.0 (%+v)", sc.Usability(), sc)
	}
	// 2 titles x 2 templates = 4 probes.
	if sc.Probes != 4 {
		t.Errorf("probes = %d, want 4", sc.Probes)
	}
}

func TestMeterDetectsValueDamage(t *testing.T) {
	doc := xmltree.MustParseString(db1)
	m, err := NewMeter(doc, []string{"db/book[title]/year"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	dmg := xmltree.MustParseString(db1)
	dmg.Root().ChildElements()[0].FirstChildNamed("year").SetText("1000")
	sc := m.Measure(dmg, nil)
	if sc.Correct != 1 || sc.Probes != 2 {
		t.Errorf("score = %+v", sc)
	}
}

func TestNumericTolerance(t *testing.T) {
	doc := xmltree.MustParseString(db1)
	m, err := NewMeter(doc, []string{"db/book[title]/year"}, Options{RelTol: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	// Watermark-scale perturbation: 1998 -> 2006 (0.4%): tolerated.
	wm := xmltree.MustParseString(db1)
	wm.Root().ChildElements()[0].FirstChildNamed("year").SetText("2006")
	if sc := m.Measure(wm, nil); sc.Usability() != 1.0 {
		t.Errorf("watermark-scale perturbation counted as damage: %+v", sc)
	}
	// Attack-scale perturbation: 1998 -> 1200 (40%): damage.
	atk := xmltree.MustParseString(db1)
	atk.Root().ChildElements()[0].FirstChildNamed("year").SetText("1200")
	if sc := m.Measure(atk, nil); sc.Usability() == 1.0 {
		t.Errorf("attack-scale perturbation tolerated")
	}
}

func TestTextDamageExact(t *testing.T) {
	doc := xmltree.MustParseString(db1)
	m, err := NewMeter(doc, []string{"db/book[title]/author"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	dmg := xmltree.MustParseString(db1)
	dmg.Root().ChildElements()[1].FirstChildNamed("author").SetText("Nobody")
	sc := m.Measure(dmg, nil)
	if sc.Correct != 1 {
		t.Errorf("text damage missed: %+v", sc)
	}
}

func TestMissingRecordDamagesProbes(t *testing.T) {
	doc := xmltree.MustParseString(db1)
	m, err := NewMeter(doc, []string{"db/book[title]/author", "db/book[title]/year"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	red := xmltree.MustParseString(db1)
	red.Root().ChildElements()[1].Detach()
	sc := m.Measure(red, nil)
	// Both probes of the deleted book fail; the remaining book's pass.
	if sc.Correct != 2 || sc.Probes != 4 {
		t.Errorf("score after deletion = %+v", sc)
	}
}

func TestUnparameterizedTemplate(t *testing.T) {
	doc := xmltree.MustParseString(db1)
	m, err := NewMeter(doc, []string{"db/book/year"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Probes()) != 1 {
		t.Fatalf("probes = %d, want 1", len(m.Probes()))
	}
	if sc := m.Measure(doc, nil); sc.Usability() != 1.0 {
		t.Errorf("self measure = %+v", sc)
	}
}

func TestMeasureWithRewriter(t *testing.T) {
	ds := datagen.Publications(datagen.PubConfig{Books: 60, Editors: 8, Publishers: 3, Seed: 5})
	// Templates restricted to fields that survive the figure-1 mapping.
	m, err := NewMeter(ds.Doc, []string{
		"db/book[title]/year",
		"db/book[title]/author",
		"db/book[title]/@publisher",
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	reorg, err := rewrite.Transform(ds.Doc, rewrite.Figure1Mapping())
	if err != nil {
		t.Fatal(err)
	}
	rw, err := rewrite.NewQueryRewriter(rewrite.Figure1Mapping())
	if err != nil {
		t.Fatal(err)
	}
	sc := m.Measure(reorg, rw)
	if sc.Usability() != 1.0 {
		t.Errorf("re-organized usability = %.3f (failures %d), want 1.0: reorganization preserves information",
			sc.Usability(), sc.Probes-sc.Correct)
	}
	// Without the rewriter the same measurement collapses.
	raw := m.Measure(reorg, nil)
	if raw.Usability() > 0.1 {
		t.Errorf("un-rewritten usability on re-organized doc = %.3f, expected near 0", raw.Usability())
	}
}

func TestPerTemplateBreakdown(t *testing.T) {
	doc := xmltree.MustParseString(db1)
	m, err := NewMeter(doc, []string{"db/book[title]/author", "db/book[title]/year"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sc := m.Measure(doc, nil)
	if len(sc.PerTemplate) != 2 {
		t.Fatalf("per-template entries = %d", len(sc.PerTemplate))
	}
	for _, ts := range sc.PerTemplate {
		if ts.Probes != 2 || ts.Correct != 2 {
			t.Errorf("template %q: %d/%d", ts.Template, ts.Correct, ts.Probes)
		}
	}
}

func TestMaxProbes(t *testing.T) {
	ds := datagen.Publications(datagen.PubConfig{Books: 100, Seed: 3})
	m, err := NewMeter(ds.Doc, []string{"db/book[title]/year"}, Options{MaxProbes: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Probes()) != 10 {
		t.Errorf("probes = %d, want 10", len(m.Probes()))
	}
}

func TestErrors(t *testing.T) {
	doc := xmltree.MustParseString(db1)
	if _, err := NewMeter(doc, []string{"db/book[ti[tle]/year"}, Options{}); err == nil {
		t.Errorf("bad template accepted")
	}
	if _, err := NewMeter(doc, []string{"db/book[title][author]/year"}, Options{}); err == nil {
		t.Errorf("two-parameter template accepted")
	}
	if _, err := NewMeter(doc, []string{"db/magazine[title]/year"}, Options{}); err == nil {
		t.Errorf("template with zero probes accepted")
	}
}

func TestScoreZeroProbes(t *testing.T) {
	var s Score
	if s.Usability() != 0 {
		t.Errorf("zero-probe usability = %f", s.Usability())
	}
}

func TestQuotingInProbes(t *testing.T) {
	doc := xmltree.MustParseString(`<db>
	  <book><title>It's a title</title><year>2001</year></book>
	  <book><title>Mix ' and " quotes</title><year>2002</year></book>
	</db>`)
	m, err := NewMeter(doc, []string{"db/book[title]/year"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The single-quoted title probes fine (double-quoted literal); the
	// both-quotes title is skipped.
	if len(m.Probes()) != 1 {
		t.Fatalf("probes = %d, want 1", len(m.Probes()))
	}
	if !strings.Contains(m.Probes()[0].Query, `"It's a title"`) {
		t.Errorf("probe query = %q", m.Probes()[0].Query)
	}
	if sc := m.Measure(doc, nil); sc.Usability() != 1.0 {
		t.Errorf("quoted probe failed: %+v", sc)
	}
}

type deadRewriter struct{}

func (deadRewriter) RewriteQuery(*xpath.Query) (*xpath.Query, error) {
	return nil, errDead{}
}

type errDead struct{}

func (errDead) Error() string { return "dead" }

func TestRewriteFailuresCounted(t *testing.T) {
	doc := xmltree.MustParseString(db1)
	m, err := NewMeter(doc, []string{"db/book[title]/year"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sc := m.Measure(doc, deadRewriter{})
	if sc.RewriteFailures != sc.Probes {
		t.Errorf("rewrite failures = %d of %d probes", sc.RewriteFailures, sc.Probes)
	}
	if sc.Correct != 0 {
		t.Errorf("dead rewriter scored %d correct", sc.Correct)
	}
}
