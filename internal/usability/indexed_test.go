package usability

import (
	"reflect"
	"testing"

	"wmxml/internal/datagen"
	"wmxml/internal/index"
)

// Meters built and measured through a document index must produce the
// same probes and the same scores as the tree-walking path.
func TestMeterIndexedEquivalence(t *testing.T) {
	ds := datagen.Publications(datagen.PubConfig{Books: 120, Editors: 12, Publishers: 4, Seed: 5})
	opts := Options{MaxProbes: 100}
	plain, err := NewMeter(ds.Doc, ds.Templates, opts)
	if err != nil {
		t.Fatal(err)
	}
	indexed, err := NewMeterIndexed(ds.Doc, ds.Templates, opts, index.New(ds.Doc))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain.Probes(), indexed.Probes()) {
		t.Fatalf("probes differ: %d vs %d", len(plain.Probes()), len(indexed.Probes()))
	}

	// Measure a perturbed suspect both ways.
	suspect := ds.Doc.Clone()
	books := suspect.Root().ChildElementsNamed("book")
	books[3].FirstChildNamed("title").SetText("Vandalized")
	books[7].FirstChildNamed("year").SetText("1234")
	walked := plain.Measure(suspect, nil)
	fast := plain.MeasureIndexed(suspect, nil, index.New(suspect))
	if !reflect.DeepEqual(walked, fast) {
		t.Fatalf("scores differ:\nwalked  %+v\nindexed %+v", walked, fast)
	}
	if walked.Probes == 0 || walked.Correct == walked.Probes {
		t.Fatalf("perturbation should cost some probes: %+v", walked)
	}
}
