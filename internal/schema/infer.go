package schema

import (
	"sort"
	"strings"

	"wmxml/internal/xmltree"
)

// Infer derives a schema from a document instance. For every element tag
// it records the observed child tags with min/max occurrence across all
// instances, the observed attributes (required when present on every
// instance), and a leaf value type guessed from the values.
//
// Inference exists because the paper has the *user* "identify the
// important keys and FDs from the data schema" — which presumes a schema
// is at hand even for schemaless data. Infer produces that starting
// point; users refine it.
func Infer(name string, doc *xmltree.Node) *Schema {
	root := doc.Root()
	if root == nil {
		return New(name, "")
	}
	s := New(name, root.Name)
	type elemObs struct {
		count      int
		childMin   map[string]int
		childMax   map[string]int
		childSeen  map[string]bool
		attrCount  map[string]int
		leafValues []string
		hasElemKid bool
	}
	obs := make(map[string]*elemObs)
	get := func(tag string) *elemObs {
		o := obs[tag]
		if o == nil {
			o = &elemObs{
				childMin:  make(map[string]int),
				childMax:  make(map[string]int),
				childSeen: make(map[string]bool),
				attrCount: make(map[string]int),
			}
			obs[tag] = o
		}
		return o
	}

	xmltree.WalkElements(doc, func(e *xmltree.Node) {
		o := get(e.Name)
		o.count++
		counts := make(map[string]int)
		for _, c := range e.ChildElements() {
			counts[c.Name]++
			o.hasElemKid = true
		}
		for tag, n := range counts {
			o.childSeen[tag] = true
			if n > o.childMax[tag] {
				o.childMax[tag] = n
			}
		}
		// Min occurrence: recompute lazily below using counts per
		// instance; we track by noting tags missing in this instance.
		for tag := range o.childSeen {
			if o.count == 1 {
				o.childMin[tag] = counts[tag]
			} else if counts[tag] < o.childMin[tag] {
				o.childMin[tag] = counts[tag]
			}
		}
		for _, a := range e.Attrs {
			o.attrCount[a.Name]++
		}
		if !o.hasElemKid {
			o.leafValues = append(o.leafValues, e.Text())
		}
	})

	for tag, o := range obs {
		decl := s.Declare(tag)
		childNames := make([]string, 0, len(o.childSeen))
		for c := range o.childSeen {
			childNames = append(childNames, c)
		}
		sort.Strings(childNames)
		for _, c := range childNames {
			decl.Children = append(decl.Children, ChildDecl{
				Name:      c,
				MinOccurs: o.childMin[c],
				MaxOccurs: Unbounded,
			})
		}
		attrNames := make([]string, 0, len(o.attrCount))
		for a := range o.attrCount {
			attrNames = append(attrNames, a)
		}
		sort.Strings(attrNames)
		for _, a := range attrNames {
			decl.Attrs = append(decl.Attrs, AttrDecl{
				Name:     a,
				Required: o.attrCount[a] == o.count,
				Type:     TypeString,
			})
		}
		if len(decl.Children) == 0 {
			decl.Type = GuessType(o.leafValues)
		} else {
			decl.Type = TypeNone
		}
	}
	return s
}

// GuessType inspects a sample of values and returns the narrowest type
// that accepts all of them: integer ⊂ decimal ⊂ string; long base64
// payloads are classified as images.
func GuessType(values []string) DataType {
	if len(values) == 0 {
		return TypeString
	}
	allInt, allDec := true, true
	allImage := true
	nonEmpty := 0
	for _, v := range values {
		v = strings.TrimSpace(v)
		if v == "" {
			continue
		}
		nonEmpty++
		if allInt && !TypeInteger.ValidValue(v) {
			allInt = false
		}
		if allDec && !TypeDecimal.ValidValue(v) {
			allDec = false
		}
		if allImage && !(len(v) >= 64 && len(v)%4 == 0 && TypeImage.ValidValue(v) && !TypeDecimal.ValidValue(v)) {
			allImage = false
		}
	}
	if nonEmpty == 0 {
		return TypeString
	}
	switch {
	case allInt:
		return TypeInteger
	case allDec:
		return TypeDecimal
	case allImage:
		return TypeImage
	default:
		return TypeString
	}
}
