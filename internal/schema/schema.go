// Package schema models the structural schema of data-centric XML
// documents: which elements exist, how they nest, what attributes they
// carry and what primitive type their values have.
//
// WmXML's scheme begins with "Specify a schema and validate the XML data
// according to the schema" (paper §2.2, step 1). The schema serves three
// masters here: validation (watermarking garbage protects nobody),
// identity-query construction (internal/identity walks the schema's
// element graph), and embedding-algorithm dispatch (the plug-in WA is
// chosen by the declared value type, paper figure 4).
package schema

import (
	"encoding/base64"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"wmxml/internal/xmltree"
)

// DataType is the primitive type of an element's or attribute's value.
// It selects the watermark embedding algorithm (numeric perturbation,
// binary LSB, text) and drives validation.
type DataType uint8

// The supported value types.
const (
	// TypeString is free text; no lexical constraint.
	TypeString DataType = iota
	// TypeInteger is a base-10 integer.
	TypeInteger
	// TypeDecimal is a decimal number (integer or fractional).
	TypeDecimal
	// TypeImage is a base64-encoded opaque binary payload. The paper's
	// system supports watermarking images embedded in XML; binary blobs
	// exercise the same plug-in channel.
	TypeImage
	// TypeNone marks non-leaf elements that carry no direct value.
	TypeNone
)

// String returns the lexical name used in schema files and reports.
func (t DataType) String() string {
	switch t {
	case TypeString:
		return "string"
	case TypeInteger:
		return "integer"
	case TypeDecimal:
		return "decimal"
	case TypeImage:
		return "image"
	case TypeNone:
		return "none"
	default:
		return fmt.Sprintf("type(%d)", uint8(t))
	}
}

// ParseDataType converts a lexical type name back to a DataType.
func ParseDataType(s string) (DataType, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "string", "text":
		return TypeString, nil
	case "integer", "int":
		return TypeInteger, nil
	case "decimal", "number", "float":
		return TypeDecimal, nil
	case "image", "binary":
		return TypeImage, nil
	case "none", "":
		return TypeNone, nil
	default:
		return TypeString, fmt.Errorf("schema: unknown data type %q", s)
	}
}

// ValidValue reports whether s is a valid lexical value of the type.
func (t DataType) ValidValue(s string) bool {
	switch t {
	case TypeInteger:
		_, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
		return err == nil
	case TypeDecimal:
		_, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		return err == nil
	case TypeImage:
		_, err := base64.StdEncoding.DecodeString(strings.TrimSpace(s))
		return err == nil
	default:
		return true
	}
}

// Unbounded is the MaxOccurs value meaning "no upper bound".
const Unbounded = -1

// ChildDecl declares that an element may contain children with a given
// tag, with occurrence bounds. Content models are unordered (bags): data-
// centric XML does not depend on sibling order, and the re-organization
// attacks WmXML defends against permute it freely.
type ChildDecl struct {
	Name      string
	MinOccurs int
	MaxOccurs int // Unbounded for no limit
}

// AttrDecl declares an attribute of an element.
type AttrDecl struct {
	Name     string
	Required bool
	Type     DataType
}

// ElementDecl declares one element type.
type ElementDecl struct {
	Name     string
	Attrs    []AttrDecl
	Children []ChildDecl
	// Type is the value type for leaf elements; TypeNone for elements
	// whose content is other elements.
	Type DataType
}

// Attr returns the declaration of the named attribute, if present.
func (e *ElementDecl) Attr(name string) (AttrDecl, bool) {
	for _, a := range e.Attrs {
		if a.Name == name {
			return a, true
		}
	}
	return AttrDecl{}, false
}

// Child returns the declaration of the named child, if present.
func (e *ElementDecl) Child(name string) (ChildDecl, bool) {
	for _, c := range e.Children {
		if c.Name == name {
			return c, true
		}
	}
	return ChildDecl{}, false
}

// IsLeaf reports whether the element holds a direct value (no element
// children declared).
func (e *ElementDecl) IsLeaf() bool { return len(e.Children) == 0 }

// Schema describes a document type: the root element and all element
// declarations. Element names are global (no two declarations share a
// name), which matches DTD semantics and keeps path reasoning simple.
type Schema struct {
	Name     string
	Root     string
	Elements map[string]*ElementDecl
}

// New creates an empty schema with the given name and root element.
func New(name, root string) *Schema {
	return &Schema{Name: name, Root: root, Elements: make(map[string]*ElementDecl)}
}

// Declare adds (or replaces) an element declaration and returns it for
// fluent construction.
func (s *Schema) Declare(name string) *ElementDecl {
	d := &ElementDecl{Name: name}
	s.Elements[name] = d
	return d
}

// Element returns the declaration for name, or nil.
func (s *Schema) Element(name string) *ElementDecl {
	return s.Elements[name]
}

// ElementNames returns all declared element names, sorted.
func (s *Schema) ElementNames() []string {
	names := make([]string, 0, len(s.Elements))
	for n := range s.Elements {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// PathsTo returns every name path (e.g. "db/book/title") from the root to
// the named element, following child declarations. Cycles in the element
// graph are cut; paths are returned sorted for determinism.
func (s *Schema) PathsTo(name string) []string {
	var out []string
	var walk func(cur string, trail []string)
	walk = func(cur string, trail []string) {
		for _, t := range trail {
			if t == cur {
				return // cycle
			}
		}
		trail = append(trail, cur)
		if cur == name {
			out = append(out, strings.Join(trail, "/"))
			// An element nested under itself is cut by the cycle check, so
			// continuing deeper cannot re-reach name through cur.
		}
		decl := s.Elements[cur]
		if decl == nil {
			return
		}
		for _, c := range decl.Children {
			walk(c.Name, trail)
		}
	}
	walk(s.Root, nil)
	sort.Strings(out)
	return out
}

// Validate checks the document against the schema and returns all
// violations found (empty means valid).
func (s *Schema) Validate(doc *xmltree.Node) []Violation {
	var out []Violation
	root := doc.Root()
	if root == nil {
		return []Violation{{Path: "/", Reason: "document has no root element"}}
	}
	if root.Name != s.Root {
		out = append(out, Violation{Path: root.Path(),
			Reason: fmt.Sprintf("root element is %q, schema expects %q", root.Name, s.Root)})
		return out
	}
	s.validateElement(root, &out)
	return out
}

func (s *Schema) validateElement(n *xmltree.Node, out *[]Violation) {
	decl := s.Elements[n.Name]
	if decl == nil {
		*out = append(*out, Violation{Path: n.Path(), Reason: fmt.Sprintf("undeclared element %q", n.Name)})
		return
	}
	// Attributes.
	for _, a := range n.Attrs {
		ad, ok := decl.Attr(a.Name)
		if !ok {
			*out = append(*out, Violation{Path: n.Path(), Reason: fmt.Sprintf("undeclared attribute %q", a.Name)})
			continue
		}
		if !ad.Type.ValidValue(a.Value) {
			*out = append(*out, Violation{Path: n.Path(),
				Reason: fmt.Sprintf("attribute %q value %q is not a valid %s", a.Name, clip(a.Value), ad.Type)})
		}
	}
	for _, ad := range decl.Attrs {
		if ad.Required && !n.HasAttr(ad.Name) {
			*out = append(*out, Violation{Path: n.Path(), Reason: fmt.Sprintf("missing required attribute %q", ad.Name)})
		}
	}
	// Children.
	counts := make(map[string]int)
	for _, c := range n.ChildElements() {
		counts[c.Name]++
		if _, ok := decl.Child(c.Name); !ok {
			*out = append(*out, Violation{Path: c.Path(),
				Reason: fmt.Sprintf("element %q not allowed under %q", c.Name, n.Name)})
			continue
		}
		s.validateElement(c, out)
	}
	for _, cd := range decl.Children {
		got := counts[cd.Name]
		if got < cd.MinOccurs {
			*out = append(*out, Violation{Path: n.Path(),
				Reason: fmt.Sprintf("element %q requires at least %d %q children, found %d", n.Name, cd.MinOccurs, cd.Name, got)})
		}
		if cd.MaxOccurs != Unbounded && got > cd.MaxOccurs {
			*out = append(*out, Violation{Path: n.Path(),
				Reason: fmt.Sprintf("element %q allows at most %d %q children, found %d", n.Name, cd.MaxOccurs, cd.Name, got)})
		}
	}
	// Leaf value type.
	if decl.IsLeaf() && decl.Type != TypeNone && decl.Type != TypeString {
		if v := n.Text(); v != "" && !decl.Type.ValidValue(v) {
			*out = append(*out, Violation{Path: n.Path(),
				Reason: fmt.Sprintf("value %q is not a valid %s", clip(v), decl.Type)})
		}
	}
}

// Violation is one schema validation failure.
type Violation struct {
	Path   string
	Reason string
}

// Error renders the violation as an error string.
func (v Violation) String() string { return v.Path + ": " + v.Reason }

func clip(s string) string {
	if len(s) > 40 {
		return s[:37] + "..."
	}
	return s
}
